package pathsel

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := socialGraph(t)
	for _, method := range Orderings() {
		est, err := Build(g, Config{MaxPathLength: 3, Ordering: method, Buckets: 5})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := est.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", method, err)
		}
		ce, err := LoadEstimator(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", method, err)
		}
		if ce.Ordering() != method || ce.MaxPathLength() != 3 || ce.Buckets() != est.Buckets() {
			t.Fatalf("%s: metadata lost: %s/%d/%d", method, ce.Ordering(), ce.MaxPathLength(), ce.Buckets())
		}
		labels := ce.Labels()
		if len(labels) != 2 || labels[0] != "knows" || labels[1] != "likes" {
			t.Fatalf("%s: labels lost: %v", method, labels)
		}
		// Every estimate must survive byte-for-byte.
		for _, q := range []string{"knows", "likes", "knows/likes", "likes/likes/knows"} {
			want, err := est.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ce.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: estimate of %s changed: %v → %v", method, q, want, got)
			}
		}
	}
}

func TestSaveLoadPrefixQueries(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 3, Ordering: OrderingLexCard, Buckets: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ce, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"knows", "likes/knows"} {
		want, err := est.EstimatePrefix(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ce.EstimatePrefix(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("prefix estimate of %s changed: %v → %v", q, want, got)
		}
	}
	// Non-lex compact estimators reject prefix queries.
	est2, err := Build(g, Config{MaxPathLength: 2, Ordering: OrderingNumCard, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := est2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ce2, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce2.EstimatePrefix("knows"); err == nil {
		t.Fatal("prefix query on num-card compact estimator should error")
	}
}

func TestCompactEstimatorPrefixErrors(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Ordering: OrderingLexAlph, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ce, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.EstimatePrefix("zzz"); err == nil {
		t.Fatal("unknown label in prefix should error")
	}
	if _, err := ce.EstimatePrefix(""); err == nil {
		t.Fatal("empty prefix should error")
	}
	if _, err := ce.EstimatePrefix("knows/knows/knows"); err == nil {
		t.Fatal("over-length prefix should error")
	}
}

func TestCompactEstimatorErrors(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Ordering: OrderingSumBased, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ce, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Estimate("zzz"); err == nil {
		t.Fatal("unknown label should error")
	}
	if _, err := ce.Estimate(""); err == nil {
		t.Fatal("empty path should error")
	}
	if _, err := ce.Estimate("knows/knows/knows"); err == nil {
		t.Fatal("over-length path should error")
	}
}

func TestLoadEstimatorCorruptInputs(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"garbage":     "this is not a synopsis",
		"truncated 1": "\x02",
	}
	for name, in := range cases {
		if _, err := LoadEstimator(strings.NewReader(in)); err == nil {
			t.Errorf("%s: corrupt input should error", name)
		}
	}
	// A valid blob truncated anywhere must error, never panic.
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Ordering: OrderingNumAlph, Buckets: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for cut := 0; cut < len(blob); cut += 3 {
		if _, err := LoadEstimator(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
}

func TestSaveRejectsEndBiased(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Histogram: "end-biased", Buckets: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err == nil {
		t.Fatal("end-biased synopsis should not be serializable")
	}
}

func TestSavedBlobIsCompact(t *testing.T) {
	// The synopsis must be O(β), not O(|Lk|): a 16-bucket synopsis over a
	// 258-path domain should fit comfortably under a kilobyte.
	g, err := GenerateDataset("Moreno health", 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Build(g, Config{MaxPathLength: 3, Buckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 1024 {
		t.Fatalf("synopsis blob is %d bytes; expected O(β) compactness", buf.Len())
	}
	if int64(buf.Len()) >= est.DomainSize()*8 {
		t.Fatalf("synopsis (%d bytes) not smaller than raw distribution (%d entries)",
			buf.Len(), est.DomainSize())
	}
}
