package pathsel

import (
	"bytes"
	"strings"
	"testing"
)

// socialGraph builds a small deterministic graph for API tests.
func socialGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(6, []string{"knows", "likes"})
	edges := []struct {
		src   int
		label string
		dst   int
	}{
		{0, "knows", 1}, {1, "knows", 2}, {2, "knows", 3},
		{0, "likes", 2}, {1, "likes", 3}, {3, "likes", 4},
		{4, "knows", 5}, {2, "likes", 5},
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e.src, e.label, e.dst); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewGraphBasics(t *testing.T) {
	g := socialGraph(t)
	if g.NumVertices() != 6 || g.NumEdges() != 8 {
		t.Fatalf("sizes = %d/%d", g.NumVertices(), g.NumEdges())
	}
	labels := g.Labels()
	if len(labels) != 2 || labels[0] != "knows" || labels[1] != "likes" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestNewGraphNoLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no labels should panic")
		}
	}()
	NewGraph(3, nil)
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph(2, []string{"a"})
	if _, err := g.AddEdge(0, "b", 1); err == nil {
		t.Fatal("unknown label should error")
	}
	if _, err := g.AddEdge(0, "a", 5); err == nil {
		t.Fatal("out-of-range vertex should error")
	}
	added, err := g.AddEdge(0, "a", 1)
	if err != nil || !added {
		t.Fatal("valid edge should add")
	}
	added, err = g.AddEdge(0, "a", 1)
	if err != nil || added {
		t.Fatal("duplicate edge should be a no-op false")
	}
}

func TestTrueSelectivity(t *testing.T) {
	g := socialGraph(t)
	// knows/knows: 0→1→2, 1→2→3, 3... edges: knows = {0→1,1→2,2→3,4→5}.
	// knows/knows pairs: (0,2), (1,3). knows/knows/knows: (0,3).
	cases := map[string]int64{
		"knows":             4,
		"likes":             4,
		"knows/knows":       2,
		"knows/knows/knows": 1,
		"knows/likes":       3, // (0,3) via 1, (1,5) via 2, (2,4) via 3
	}
	for q, want := range cases {
		got, err := g.TrueSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("f(%s) = %d, want %d", q, got, want)
		}
	}
	if _, err := g.TrueSelectivity("nope"); err == nil {
		t.Fatal("unknown label should error")
	}
	if _, err := g.TrueSelectivity(""); err == nil {
		t.Fatal("empty path should error")
	}
}

func TestBuildAndEstimate(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 3, Buckets: 14})
	if err != nil {
		t.Fatal(err)
	}
	if est.Ordering() != OrderingSumBased {
		t.Fatalf("default ordering = %s", est.Ordering())
	}
	if est.DomainSize() != 2+4+8 {
		t.Fatalf("domain size = %d", est.DomainSize())
	}
	// With β = |Lk| every estimate is exact.
	exact, err := Build(g, Config{MaxPathLength: 3, Buckets: 14, Ordering: OrderingNumAlph})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"knows", "likes/knows", "knows/knows/knows"} {
		e, err := exact.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		f, err := g.TrueSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		if e != float64(f) {
			t.Errorf("exact-budget estimate of %s = %v, want %d", q, e, f)
		}
		fRecorded, err := exact.TrueSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		if fRecorded != f {
			t.Errorf("recorded selectivity of %s = %d, want %d", q, fRecorded, f)
		}
	}
}

func TestBuildConfigDefaultsAndErrors(t *testing.T) {
	g := socialGraph(t)
	if _, err := Build(g, Config{MaxPathLength: 0, Buckets: 4}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Build(g, Config{MaxPathLength: 2, Buckets: 0}); err == nil {
		t.Fatal("β=0 should error")
	}
	if _, err := Build(g, Config{MaxPathLength: 2, Buckets: 4, Ordering: "bogus"}); err == nil {
		t.Fatal("unknown ordering should error")
	}
	if _, err := Build(g, Config{MaxPathLength: 2, Buckets: 4, Histogram: "bogus"}); err == nil {
		t.Fatal("unknown histogram should error")
	}
}

func TestEstimateErrors(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate("knows/knows/knows"); err == nil {
		t.Fatal("over-length path should error")
	}
	if _, err := est.Estimate("zzz"); err == nil {
		t.Fatal("unknown label should error")
	}
	if _, err := est.TrueSelectivity("zzz"); err == nil {
		t.Fatal("unknown label should error in TrueSelectivity")
	}
	if _, err := est.TrueSelectivity("knows/knows/knows"); err == nil {
		t.Fatal("over-length path should error in TrueSelectivity")
	}
}

func TestEvaluate(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 3, Buckets: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc := est.Evaluate()
	if acc.Paths != 14 {
		t.Fatalf("Paths = %d", acc.Paths)
	}
	if acc.MeanErrorRate < 0 || acc.MeanErrorRate > 1 {
		t.Fatalf("MeanErrorRate = %v", acc.MeanErrorRate)
	}
	if acc.MeanQError < 1 {
		t.Fatalf("MeanQError = %v", acc.MeanQError)
	}
	if est.Buckets() < 1 || est.Buckets() > 3 {
		t.Fatalf("Buckets = %d", est.Buckets())
	}
}

func TestOrderingsList(t *testing.T) {
	o := Orderings()
	if len(o) != 5 || o[4] != OrderingSumBased {
		t.Fatalf("Orderings = %v", o)
	}
}

func TestEdgeListRoundTripThroughPublicAPI(t *testing.T) {
	g := socialGraph(t)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	f1, _ := g.TrueSelectivity("knows/likes")
	f2, err := g2.TrueSelectivity("knows/likes")
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("selectivity after round trip %d != %d", f2, f1)
	}
}

func TestLoadEdgeListError(t *testing.T) {
	if _, err := LoadEdgeList(strings.NewReader("not an edge list")); err == nil {
		t.Fatal("malformed input should error")
	}
}

func TestGenerateDataset(t *testing.T) {
	names := DatasetNames()
	if len(names) != 4 {
		t.Fatalf("DatasetNames = %v", names)
	}
	g, err := GenerateDataset("SNAP-ER", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("generated dataset empty")
	}
	if _, err := GenerateDataset("nope", 0.5, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := GenerateDataset("SNAP-ER", 7, 1); err == nil {
		t.Fatal("bad scale should error")
	}
}

func TestOrderingMethodsAgreeOnExactBudget(t *testing.T) {
	// All five orderings must yield identical (exact) estimates when every
	// bucket is a singleton: ordering only matters under compression.
	g := socialGraph(t)
	var ref *Estimator
	for _, method := range Orderings() {
		est, err := Build(g, Config{MaxPathLength: 2, Buckets: 6, Ordering: method})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = est
			continue
		}
		for _, q := range []string{"knows", "likes", "knows/likes", "likes/likes"} {
			a, _ := ref.Estimate(q)
			b, _ := est.Estimate(q)
			if a != b {
				t.Fatalf("%s: estimate of %s = %v, ref %v", method, q, b, a)
			}
		}
	}
}
