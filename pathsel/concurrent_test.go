package pathsel

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// The serving-layer concurrency contract, pinned at the library level:
// many goroutines hammering one estimator — and its one persistent
// segment-relation cache — through ExecuteQueryCtx and ExecuteBatchCtx
// must produce results bit-identical to a single-threaded uncached
// reference, while the cache's byte accounting stays consistent under
// concurrent LRU mutation. Run with -race in CI; test names match the
// chaos-leg regex (Concurrent).

// concurrentHarness is a shared-cache estimator plus a single-threaded
// uncached reference answer for every query in a Zipf pool.
type concurrentHarness struct {
	est   *Estimator
	trace []string         // rendered query per trace arrival
	want  map[string]int64 // uncached single-threaded reference
}

// newConcurrentHarness builds the estimator under test (persistent
// cache, given join workers), a Zipf-distributed query trace over a
// ranked pool, and the reference results from a cache-less twin.
func newConcurrentHarness(t *testing.T, joinWorkers, traceLen int, seed int64) *concurrentHarness {
	t.Helper()
	g := batchTestGraph(t, 31, 60, 3, 900)
	cfg := Config{MaxPathLength: 3, Buckets: 32, Workers: joinWorkers}
	ref, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CacheBytes = DefaultCacheBytes
	est, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	labels := g.Labels()
	pool, err := workload.QueryPool(len(labels), 3, 24, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ZipfTrace(workload.TraceOptions{Pool: pool, N: traceLen, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	h := &concurrentHarness{est: est, want: make(map[string]int64)}
	for _, a := range tr {
		parts := make([]string, len(a.Query))
		for i, l := range a.Query {
			parts[i] = labels[l]
		}
		h.trace = append(h.trace, strings.Join(parts, "/"))
	}
	for _, q := range h.trace {
		if _, ok := h.want[q]; ok {
			continue
		}
		st, err := ref.ExecuteQuery(q)
		if err != nil {
			t.Fatalf("reference execution of %q: %v", q, err)
		}
		h.want[q] = st.Result
	}
	return h
}

// checkCacheAccounting asserts the persistent cache's invariants: the
// byte occupancy never exceeds the budget, live entries are consistent
// with the cumulative put/eviction traffic (puts count overwrites, so
// live entries can only be fewer), and an empty cache holds no bytes.
func checkCacheAccounting(t *testing.T, est *Estimator) CacheStats {
	t.Helper()
	cs, ok := est.CacheStats()
	if !ok {
		t.Fatal("estimator under test has no persistent cache")
	}
	if cs.Bytes < 0 || cs.Bytes > cs.MaxBytes {
		t.Fatalf("cache bytes %d outside [0, %d]", cs.Bytes, cs.MaxBytes)
	}
	if cs.Entries < 0 || uint64(cs.Entries) > cs.Puts-cs.Evictions {
		t.Fatalf("cache entries %d inconsistent with %d puts − %d evictions",
			cs.Entries, cs.Puts, cs.Evictions)
	}
	if cs.Entries == 0 && cs.Bytes != 0 {
		t.Fatalf("empty cache holds %d bytes", cs.Bytes)
	}
	return cs
}

// TestConcurrentQueriesSharedCache fans a Zipf trace across N goroutines
// all calling ExecuteQueryCtx on one estimator, at several worker counts
// (request-level concurrency × join-level parallelism), and asserts
// every result is bit-identical to the uncached single-threaded
// reference while the shared cache mutates under the load.
func TestConcurrentQueriesSharedCache(t *testing.T) {
	for _, goroutines := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("goroutines=%d", goroutines), func(t *testing.T) {
			h := newConcurrentHarness(t, 1, 300, int64(100+goroutines))
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(h.trace); i += goroutines {
						q := h.trace[i]
						st, err := h.est.ExecuteQueryCtx(context.Background(), q)
						if err != nil {
							errs <- fmt.Errorf("query %q: %w", q, err)
							return
						}
						if st.Result != h.want[q] {
							errs <- fmt.Errorf("query %q: result %d, want %d", q, st.Result, h.want[q])
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			cs := checkCacheAccounting(t, h.est)
			if cs.Hits == 0 {
				t.Fatalf("a %d-query Zipf trace warmed no cache entries: %+v", len(h.trace), cs)
			}
		})
	}
}

// TestConcurrentBatchAndQueryMix runs ExecuteBatchCtx workers and
// ExecuteQueryCtx workers simultaneously against one estimator — the
// serving tier's actual regime when interactive queries overlap batch
// replays — and asserts exactness and cache accounting both ways.
func TestConcurrentBatchAndQueryMix(t *testing.T) {
	h := newConcurrentHarness(t, 2, 240, 7)
	batch := make([]Query, 0, 40)
	for _, q := range h.trace[:40] {
		batch = append(batch, Query(q))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := h.est.ExecuteBatchCtx(context.Background(), batch, BatchOptions{Workers: 2})
			if err != nil {
				errs <- err
				return
			}
			for _, r := range res.Results {
				if r.Err != nil {
					errs <- fmt.Errorf("batch worker %d, query %q: %w", w, r.Query, r.Err)
					return
				}
				if want := h.want[string(r.Query)]; r.Result != want {
					errs <- fmt.Errorf("batch worker %d, query %q: result %d, want %d", w, r.Query, r.Result, want)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(h.trace); i += 4 {
				q := h.trace[i]
				st, err := h.est.ExecuteQueryCtx(context.Background(), q)
				if err != nil {
					errs <- fmt.Errorf("query %q: %w", q, err)
					return
				}
				if st.Result != h.want[q] {
					errs <- fmt.Errorf("query %q: result %d, want %d", q, st.Result, h.want[q])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	checkCacheAccounting(t, h.est)
}

// TestConcurrentCacheEvictionChurn shrinks the cache until the Zipf
// tail cannot fit, forcing continuous LRU eviction under concurrent
// readers — the regime where a byte-accounting bug or use-after-evict
// shows up — and asserts exactness throughout.
func TestConcurrentCacheEvictionChurn(t *testing.T) {
	g := batchTestGraph(t, 31, 60, 3, 900)
	ref, err := Build(g, Config{MaxPathLength: 3, Buckets: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately tiny cache: big enough to hold a few relations so
	// puts succeed, far too small for the pool's working set.
	est, err := Build(g, Config{MaxPathLength: 3, Buckets: 32, Workers: 1,
		CacheBytes: 16 << 10, CacheShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := g.Labels()
	pool, err := workload.QueryPool(len(labels), 3, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ZipfTrace(workload.TraceOptions{Pool: pool, N: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int64)
	trace := make([]string, len(tr))
	for i, a := range tr {
		parts := make([]string, len(a.Query))
		for j, l := range a.Query {
			parts[j] = labels[l]
		}
		q := strings.Join(parts, "/")
		trace[i] = q
		if _, ok := want[q]; !ok {
			st, err := ref.ExecuteQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			want[q] = st.Result
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < len(trace); i++ {
				q := trace[(i+rng.Intn(len(trace)))%len(trace)]
				st, err := est.ExecuteQueryCtx(context.Background(), q)
				if err != nil {
					errs <- fmt.Errorf("query %q: %w", q, err)
					return
				}
				if st.Result != want[q] {
					errs <- fmt.Errorf("query %q: result %d, want %d under eviction churn", q, st.Result, want[q])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	cs, ok := est.CacheStats()
	if !ok {
		t.Fatal("no persistent cache")
	}
	if cs.Bytes < 0 || cs.Bytes > cs.MaxBytes {
		t.Fatalf("cache bytes %d outside [0, %d] after eviction churn", cs.Bytes, cs.MaxBytes)
	}
	if cs.Evictions == 0 && cs.Rejected == 0 {
		t.Fatalf("a 16KiB cache absorbed the whole working set (%d puts, %d bytes) — churn never happened",
			cs.Puts, cs.Bytes)
	}
}
