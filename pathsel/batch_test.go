package pathsel

import (
	"math/rand"
	"testing"
)

// batchTestGraph builds a random labeled graph through the public facade.
func batchTestGraph(t testing.TB, seed int64, vertices, labels, edges int) *Graph {
	names := make([]string, labels)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	g := NewGraph(vertices, names)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < edges; i++ {
		if _, err := g.AddEdge(rng.Intn(vertices), names[rng.Intn(labels)], rng.Intn(vertices)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// batchWorkload samples a workload with repeated queries and shared
// segments — the regime the cache exists for.
func batchWorkload(rng *rand.Rand, labels []string, count, maxLen int) []Query {
	pool := make([]string, 0, 8)
	for len(pool) < 8 {
		k := 2 + rng.Intn(maxLen-1)
		q := labels[rng.Intn(len(labels))]
		for i := 1; i < k; i++ {
			q += "/" + labels[rng.Intn(len(labels))]
		}
		pool = append(pool, q)
	}
	out := make([]Query, count)
	for i := range out {
		out[i] = Query(pool[rng.Intn(len(pool))])
	}
	return out
}

// TestExecuteBatchMatchesExecuteQuery pins the batch executor's per-query
// results bit-identical to the per-query API, at every worker count 1–8,
// regardless of cache hit/miss interleaving. Run with -race in CI, this
// is the determinism property test of the batch layer.
func TestExecuteBatchMatchesExecuteQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		g := batchTestGraph(t, int64(trial), 20+rng.Intn(60), 2+rng.Intn(3), 150+rng.Intn(200))
		for _, bushy := range []bool{false, true} {
			est, err := Build(g, Config{MaxPathLength: 3, Buckets: 8, BushyPlans: bushy})
			if err != nil {
				t.Fatal(err)
			}
			queries := batchWorkload(rng, g.Labels(), 30, 3)
			// Reference: the uncached per-query API.
			want := make([]int64, len(queries))
			for i, q := range queries {
				st, err := est.ExecuteQuery(string(q))
				if err != nil {
					t.Fatal(err)
				}
				want[i] = st.Result
			}
			for workers := 1; workers <= 8; workers++ {
				res, err := est.ExecuteBatch(queries, BatchOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Results) != len(queries) {
					t.Fatalf("trial %d workers %d: %d results for %d queries",
						trial, workers, len(res.Results), len(queries))
				}
				for i, r := range res.Results {
					if r.Query != queries[i] {
						t.Fatalf("trial %d workers %d: result %d answers %q, want %q",
							trial, workers, i, r.Query, queries[i])
					}
					if r.Result != want[i] {
						t.Fatalf("trial %d workers %d bushy %v: query %q result %d, want %d",
							trial, workers, bushy, r.Query, r.Result, want[i])
					}
				}
				if !res.Cached || res.Cache.Hits == 0 {
					t.Fatalf("trial %d workers %d: repeated workload never hit the cache (stats %+v)",
						trial, workers, res.Cache)
				}
			}
		}
	}
}

// TestExecuteBatchCacheModes covers the three BatchOptions.CacheBytes
// regimes: private, shared-persistent, and disabled.
func TestExecuteBatchCacheModes(t *testing.T) {
	g := batchTestGraph(t, 5, 40, 3, 200)
	queries := Queries("a/b", "b/c", "a/b", "a/b/c", "a/b/c")

	// Disabled: no cache stats, still correct.
	plain, err := Build(g, Config{MaxPathLength: 3, Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := plain.ExecuteBatch(queries, BatchOptions{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || cold.Cache.Hits != 0 {
		t.Fatalf("uncached batch reported cache stats: %+v", cold.Cache)
	}
	for _, r := range cold.Results {
		if r.CacheHits != 0 || r.CacheMisses != 0 {
			t.Fatalf("uncached query reported cache traffic: %+v", r.ExecStats)
		}
	}

	// Private default cache: repeats hit within the batch.
	warm, err := plain.ExecuteBatch(queries, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.Cache.Hits == 0 {
		t.Fatalf("default batch cache saw no hits: %+v", warm.Cache)
	}
	for i := range queries {
		if warm.Results[i].Result != cold.Results[i].Result {
			t.Fatalf("query %d: cached %d != uncached %d", i,
				warm.Results[i].Result, cold.Results[i].Result)
		}
	}

	// Persistent estimator cache: a second batch starts warm.
	persistent, err := Build(g, Config{MaxPathLength: 3, Buckets: 8, CacheBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := persistent.CacheStats(); !ok {
		t.Fatal("Config.CacheBytes did not create a persistent cache")
	}
	first, err := persistent.ExecuteBatch(queries, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := persistent.ExecuteBatch(queries, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache.Hits <= first.Cache.Hits {
		t.Fatalf("persistent cache did not carry across batches: %d then %d hits",
			first.Cache.Hits, second.Cache.Hits)
	}
	var hits int
	for i, r := range second.Results {
		hits += r.CacheHits
		if r.Result != cold.Results[i].Result {
			t.Fatalf("warm persistent query %d diverged", i)
		}
	}
	if hits != len(queries) {
		t.Fatalf("fully warm batch: %d whole-query hits, want %d", hits, len(queries))
	}

	// ExecuteQuery shares the persistent cache too.
	st, err := persistent.ExecuteQuery("a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.Work != 0 {
		t.Fatalf("ExecuteQuery did not take the warm fast path: %+v", st)
	}
}

// TestExecuteBatchValidation: a malformed workload fails fast, before
// anything executes.
func TestExecuteBatchValidation(t *testing.T) {
	g := batchTestGraph(t, 6, 20, 2, 60)
	est, err := Build(g, Config{MaxPathLength: 2, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.ExecuteBatch(Queries("a/b", "nope"), BatchOptions{}); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := est.ExecuteBatch(Queries("a/b/a"), BatchOptions{}); err == nil {
		t.Fatal("over-length query accepted")
	}
	res, err := est.ExecuteBatch(nil, BatchOptions{Workers: 4})
	if err != nil || len(res.Results) != 0 {
		t.Fatalf("empty workload: %v, %d results", err, len(res.Results))
	}
}

// FuzzBatchCacheEquivalence is the batch determinism fuzz target: on an
// arbitrary small graph and workload, batch execution — any worker count,
// shared cache — must report exactly the per-query results of the
// uncached ExecuteQuery loop, and a second (warm) pass must agree again.
func FuzzBatchCacheEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(2), uint16(80), uint8(10), uint8(3))
	f.Add(int64(9), uint8(50), uint8(4), uint16(300), uint8(20), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, vertices, labels uint8, edges uint16, count, workers uint8) {
		v := 2 + int(vertices)%100
		l := 1 + int(labels)%5
		g := batchTestGraph(t, seed, v, l, 1+int(edges)%(4*v))
		est, err := Build(g, Config{MaxPathLength: 3, Buckets: 6, BushyPlans: seed%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		queries := batchWorkload(rng, g.Labels(), 1+int(count)%24, 3)
		want := make([]int64, len(queries))
		for i, q := range queries {
			st, err := est.ExecuteQuery(string(q))
			if err != nil {
				t.Fatal(err)
			}
			want[i] = st.Result
		}
		w := 1 + int(workers)%8
		for pass := 0; pass < 2; pass++ {
			res, err := est.ExecuteBatch(queries, BatchOptions{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res.Results {
				if r.Result != want[i] {
					t.Fatalf("pass %d workers %d: query %q result %d, want %d",
						pass, w, r.Query, r.Result, want[i])
				}
			}
		}
	})
}
