package pathsel

import (
	"fmt"

	"repro/internal/dataset"
)

// DatasetNames lists the built-in synthetic datasets (the paper's Table 3
// rows; the two real-world datasets are generator-based substitutes, see
// DESIGN.md §4).
func DatasetNames() []string {
	specs := dataset.Table3()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// GenerateDataset builds a named Table 3 dataset at the given scale
// (0 < scale ≤ 1; 1.0 reproduces the published vertex/edge counts) with a
// deterministic seed.
func GenerateDataset(name string, scale float64, seed int64) (*Graph, error) {
	for _, spec := range dataset.Table3() {
		if spec.Name == name {
			if scale <= 0 || scale > 1 {
				return nil, fmt.Errorf("%w: scale %v out of (0,1]", ErrBadConfig, scale)
			}
			return &Graph{g: dataset.Generate(spec, scale, seed)}, nil
		}
	}
	return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownDataset, name, DatasetNames())
}
