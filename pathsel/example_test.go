package pathsel_test

import (
	"bytes"
	"fmt"
	"log"

	"repro/pathsel"
)

// buildExampleGraph constructs the small deterministic graph shared by the
// examples below.
func buildExampleGraph() *pathsel.Graph {
	g := pathsel.NewGraph(6, []string{"knows", "likes"})
	edges := []struct {
		src   int
		label string
		dst   int
	}{
		{0, "knows", 1}, {1, "knows", 2}, {2, "knows", 3},
		{0, "likes", 2}, {1, "likes", 3}, {3, "likes", 4},
		{4, "knows", 5}, {2, "likes", 5},
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e.src, e.label, e.dst); err != nil {
			log.Fatal(err)
		}
	}
	return g
}

// Example demonstrates the basic build-and-estimate flow.
func Example() {
	g := buildExampleGraph()
	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 2,
		Ordering:      pathsel.OrderingSumBased,
		Buckets:       6, // β = |L2| → singleton buckets → exact estimates
	})
	if err != nil {
		log.Fatal(err)
	}
	e, err := est.Estimate("knows/likes")
	if err != nil {
		log.Fatal(err)
	}
	f, err := g.TrueSelectivity("knows/likes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate %.0f, exact %d\n", e, f)
	// Output: estimate 3, exact 3
}

// ExampleEstimator_EstimatePrefix shows a prefix wildcard query: the
// aggregate selectivity of a path and all of its extensions, answered as a
// single histogram range query under a lexicographic ordering.
func ExampleEstimator_EstimatePrefix() {
	g := buildExampleGraph()
	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 2,
		Ordering:      pathsel.OrderingLexCard,
		Buckets:       6,
	})
	if err != nil {
		log.Fatal(err)
	}
	e, err := est.EstimatePrefix("knows")
	if err != nil {
		log.Fatal(err)
	}
	f, err := est.TruePrefixSelectivity("knows")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knows/* ≈ %.0f (exact %d)\n", e, f)
	// Output: knows/* ≈ 9 (exact 9)
}

// ExampleEstimator_Save round-trips a synopsis through its binary form and
// answers a query without the original graph.
func ExampleEstimator_Save() {
	g := buildExampleGraph()
	est, err := pathsel.Build(g, pathsel.Config{MaxPathLength: 2, Buckets: 6})
	if err != nil {
		log.Fatal(err)
	}
	var blob bytes.Buffer
	if err := est.Save(&blob); err != nil {
		log.Fatal(err)
	}
	compact, err := pathsel.LoadEstimator(&blob)
	if err != nil {
		log.Fatal(err)
	}
	e, err := compact.Estimate("likes/likes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s synopsis, %.0f\n", compact.Ordering(), e)
	// Output: sum-based synopsis, 2
}
