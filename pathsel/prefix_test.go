package pathsel

import (
	"math"
	"testing"
)

func TestPrefixQueries(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{
		MaxPathLength: 3,
		Ordering:      OrderingLexCard,
		Buckets:       14, // singleton buckets → exact
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exact-budget estimator: prefix estimate equals the exact aggregate.
	for _, q := range []string{"knows", "likes", "knows/knows", "likes/likes/knows"} {
		e, err := est.EstimatePrefix(q)
		if err != nil {
			t.Fatal(err)
		}
		f, err := est.TruePrefixSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-float64(f)) > 1e-9 {
			t.Errorf("EstimatePrefix(%s) = %v, exact %d", q, e, f)
		}
	}
}

func TestTruePrefixSelectivityIsSumOverExtensions(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Ordering: OrderingLexAlph, Buckets: 6})
	if err != nil {
		t.Fatal(err)
	}
	// f(knows/*) over k ≤ 2 = f(knows) + f(knows/knows) + f(knows/likes).
	var want int64
	for _, q := range []string{"knows", "knows/knows", "knows/likes"} {
		f, err := g.TrueSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		want += f
	}
	got, err := est.TruePrefixSelectivity("knows")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("TruePrefixSelectivity(knows) = %d, want %d", got, want)
	}
}

func TestEstimatePrefixRequiresLexOrdering(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Ordering: OrderingSumBased, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.EstimatePrefix("knows"); err == nil {
		t.Fatal("prefix query under sum-based ordering should error")
	}
}

func TestEstimatePrefixErrors(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Ordering: OrderingLexAlph, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.EstimatePrefix("zzz"); err == nil {
		t.Fatal("unknown label should error")
	}
	if _, err := est.EstimatePrefix("knows/knows/knows"); err == nil {
		t.Fatal("over-length path should error")
	}
	if _, err := est.TruePrefixSelectivity("zzz"); err == nil {
		t.Fatal("unknown label should error in TruePrefixSelectivity")
	}
	if _, err := est.TruePrefixSelectivity("knows/knows/knows"); err == nil {
		t.Fatal("over-length path should error in TruePrefixSelectivity")
	}
}

func TestEstimatePrefixCompressedReasonable(t *testing.T) {
	// Under compression, the prefix estimate should still be within a
	// modest factor of the truth on a decently sized graph.
	g, err := GenerateDataset("Moreno health", 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Build(g, Config{MaxPathLength: 3, Ordering: OrderingLexCard, Buckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"1", "2/3", "6"} {
		e, err := est.EstimatePrefix(q)
		if err != nil {
			t.Fatal(err)
		}
		f, err := est.TruePrefixSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		if f == 0 {
			continue
		}
		ratio := e / float64(f)
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("EstimatePrefix(%s) = %.1f vs exact %d (ratio %.2f) outside sanity band", q, e, f, ratio)
		}
	}
}
