package pathsel

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// robustEstimator builds an estimator over a graph dense enough that
// multi-label queries shard across workers (the regime fault injection
// at exec.shard needs).
func robustEstimator(t *testing.T, cfg Config) *Estimator {
	t.Helper()
	g := batchTestGraph(t, 7, 400, 2, 6000)
	if cfg.MaxPathLength == 0 {
		cfg.MaxPathLength = 3
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 64
	}
	e, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewGraphChecked(t *testing.T) {
	if _, err := NewGraphChecked(4, nil); !errors.Is(err, ErrNoLabels) {
		t.Fatalf("NewGraphChecked(nil labels) = %v, want ErrNoLabels", err)
	}
	gr, err := NewGraphChecked(4, []string{"a"})
	if err != nil || gr == nil {
		t.Fatalf("NewGraphChecked(valid) = %v, %v", gr, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewGraph with no labels should panic")
		}
	}()
	NewGraph(4, nil)
}

// TestTypedSentinels pins that every user-facing error class matches its
// sentinel under errors.Is — the contract that replaces message-text
// matching.
func TestTypedSentinels(t *testing.T) {
	gr := NewGraph(4, []string{"a", "b"})
	if _, err := gr.AddEdge(0, "zzz", 1); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("AddEdge unknown label: %v, want ErrUnknownLabel", err)
	}
	if _, err := gr.AddEdge(0, "a", 99); !errors.Is(err, ErrVertexRange) {
		t.Errorf("AddEdge out of range: %v, want ErrVertexRange", err)
	}
	if _, err := gr.AddEdge(0, "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := gr.AddEdge(1, "b", 2); err != nil {
		t.Fatal(err)
	}
	e, err := Build(gr, Config{MaxPathLength: 2, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(""); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("Estimate empty: %v, want ErrEmptyPath", err)
	}
	if _, err := e.Estimate("a/zzz"); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("Estimate unknown label: %v, want ErrUnknownLabel", err)
	}
	if _, err := e.Estimate("a/b/a"); !errors.Is(err, ErrPathTooLong) {
		t.Errorf("Estimate too long: %v, want ErrPathTooLong", err)
	}
	if _, err := e.ExecuteQuery("a/b/a"); !errors.Is(err, ErrPathTooLong) {
		t.Errorf("ExecuteQuery too long: %v, want ErrPathTooLong", err)
	}
	if _, err := e.EstimatePattern("a/b/*"); !errors.Is(err, ErrPathTooLong) {
		t.Errorf("EstimatePattern too long: %v, want ErrPathTooLong", err)
	}
	if _, err := gr.TruePatternSelectivity("a/qqq"); !errors.Is(err, ErrUnknownLabel) {
		t.Errorf("pattern unknown label: %v, want ErrUnknownLabel", err)
	}
	if _, err := Build(gr, Config{MaxPathLength: 0, Buckets: 4}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Build k=0: %v, want ErrBadConfig", err)
	}
	if _, err := Build(gr, Config{MaxPathLength: 2, Buckets: 4, QueryTimeout: -time.Second}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("Build negative timeout: %v, want ErrBadConfig", err)
	}
	if _, err := GenerateDataset("no-such-dataset", 1, 1); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("GenerateDataset unknown: %v, want ErrUnknownDataset", err)
	}
	if _, err := LoadEstimator(strings.NewReader("\xff\xff garbage")); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("LoadEstimator garbage: %v, want ErrBadSnapshot", err)
	}
}

func TestExecuteQueryCtxPreCancelled(t *testing.T) {
	e := robustEstimator(t, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteQueryCtx(ctx, "a/b/a"); !errors.Is(err, ErrCancelled) {
		t.Fatalf("pre-cancelled ctx: %v, want ErrCancelled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := e.ExecuteQueryCtx(dctx, "a/b/a"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: %v, want ErrDeadlineExceeded", err)
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after refused queries", n)
	}
}

// TestQueryTimeout kills a query mid-flight with an injected per-step
// delay and pins both outcomes: the typed error, and — under
// DegradeToEstimate — the degraded histogram answer.
func TestQueryTimeout(t *testing.T) {
	faultinject.Install(faultinject.NewInjector(faultinject.Rule{
		Site: "exec.step", Action: faultinject.ActDelay, Delay: 10 * time.Millisecond,
	}))
	defer faultinject.Uninstall()

	e := robustEstimator(t, Config{Workers: 2, QueryTimeout: 3 * time.Millisecond})
	if _, err := e.ExecuteQuery("a/b/a"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("timed-out query: %v, want ErrDeadlineExceeded", err)
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after timeout", n)
	}

	e.cfg.DegradeToEstimate = true
	st, err := e.ExecuteQuery("a/b/a")
	if err != nil {
		t.Fatalf("degraded query errored: %v", err)
	}
	if !st.Degraded || !errors.Is(st.DegradedBy, ErrDeadlineExceeded) {
		t.Fatalf("degraded stats = %+v, want Degraded by ErrDeadlineExceeded", st)
	}
	want, err := e.Estimate("a/b/a")
	if err != nil {
		t.Fatal(err)
	}
	if d := float64(st.Result) - want; d > 0.5 || d < -0.5 {
		t.Fatalf("degraded Result = %d, want rounded estimate of %f", st.Result, want)
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after degraded timeout", n)
	}
}

func TestAdmissionGate(t *testing.T) {
	e := robustEstimator(t, Config{Workers: 1, MaxPlanCost: 0.5})
	// Single-label queries have no join steps (estimated cost 0) and must
	// pass the plan-cost gate; multi-label queries on this dense graph
	// estimate far above 0.5 and must be refused without execution.
	if _, err := e.ExecuteQuery("a"); err != nil {
		t.Fatalf("single-label query refused: %v", err)
	}
	_, err := e.ExecuteQuery("a/b/a")
	if !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("expensive query: %v, want ErrAdmissionDenied", err)
	}

	e.cfg.DegradeToEstimate = true
	st, err := e.ExecuteQuery("a/b/a")
	if err != nil {
		t.Fatalf("degraded admission errored: %v", err)
	}
	if !st.Degraded || !errors.Is(st.DegradedBy, ErrAdmissionDenied) {
		t.Fatalf("degraded stats = %+v, want Degraded by ErrAdmissionDenied", st)
	}
	if st.Work != 0 || len(st.Intermediates) != 0 {
		t.Fatalf("admission-refused query did work: %+v", st)
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after admission denials", n)
	}
}

func TestResultByteBudget(t *testing.T) {
	e := robustEstimator(t, Config{Workers: 2, MaxResultBytes: 64})
	_, err := e.ExecuteQuery("a/b/a")
	// The byte budget can trip at admission (histogram projection) or at
	// runtime (an actual relation outgrowing it); both are policy kills.
	if !errors.Is(err, ErrAdmissionDenied) && !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("oversized query: %v, want ErrAdmissionDenied or ErrBudgetExceeded", err)
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after budget kill", n)
	}
}

// TestExecuteQueryPanicContainment injects a worker panic into a sharded
// join step through the public API: the query must come back as a typed
// ErrExecutionFailed — never a crash — and must not degrade (panics are
// bugs, not load).
func TestExecuteQueryPanicContainment(t *testing.T) {
	e := robustEstimator(t, Config{Workers: 4, DegradeToEstimate: true})
	faultinject.Install(faultinject.NewInjector(faultinject.Rule{
		Site: "exec.shard", Skip: 1, Count: 1, Action: faultinject.ActPanic,
		PanicValue: "injected shard failure",
	}))
	defer faultinject.Uninstall()
	_, err := e.ExecuteQueryCtx(context.Background(), "a/b/a")
	if !errors.Is(err, ErrExecutionFailed) {
		t.Fatalf("panicked query: %v, want ErrExecutionFailed", err)
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after contained panic", n)
	}
	// The estimator must stay serviceable after the contained failure.
	faultinject.Uninstall()
	st, err := e.ExecuteQuery("a/b/a")
	if err != nil || st.Degraded {
		t.Fatalf("follow-up query after contained panic: %+v, %v", st, err)
	}
}

// TestExecuteBatchCtxCancel cancels a batch mid-flight and pins the
// containment contract: executed entries carry real stats, refused
// entries carry ErrCancelled, nothing leaks, and the whole call returns
// a complete BatchResult.
func TestExecuteBatchCtxCancel(t *testing.T) {
	e := robustEstimator(t, Config{Workers: 1})
	queries := make([]Query, 40)
	for i := range queries {
		queries[i] = Query([]string{"a/b/a", "b/a/b", "a/a/b"}[i%3])
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every entry must be refused deterministically
	res, err := e.ExecuteBatchCtx(ctx, queries, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(queries) {
		t.Fatalf("got %d results, want %d", len(res.Results), len(queries))
	}
	for i, r := range res.Results {
		if !errors.Is(r.Err, ErrCancelled) {
			t.Fatalf("result %d: Err = %v, want ErrCancelled", i, r.Err)
		}
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after cancelled batch", n)
	}
}

// TestExecuteBatchPerQueryIsolation pins that a per-query policy kill
// never takes the rest of the batch with it: cheap queries succeed
// exactly as ExecuteQuery would, expensive ones carry their own typed
// Err.
func TestExecuteBatchPerQueryIsolation(t *testing.T) {
	e := robustEstimator(t, Config{Workers: 1, MaxPlanCost: 0.5})
	queries := Queries("a", "a/b/a", "b", "b/a/b", "a/b")
	res, err := e.ExecuteBatch(queries, BatchOptions{Workers: 2, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Results {
		long := len(string(r.Query)) > 1
		switch {
		case long && !errors.Is(r.Err, ErrAdmissionDenied):
			t.Fatalf("result %d (%s): Err = %v, want ErrAdmissionDenied", i, r.Query, r.Err)
		case !long && r.Err != nil:
			t.Fatalf("result %d (%s): Err = %v, want nil", i, r.Query, r.Err)
		}
		if !long {
			want, terr := e.gr.TrueSelectivity(string(r.Query))
			if terr != nil {
				t.Fatal(terr)
			}
			if r.Result != want {
				t.Fatalf("result %d (%s): Result = %d, want %d", i, r.Query, r.Result, want)
			}
		}
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after mixed batch", n)
	}
}

// TestExecPolicyBrownout pins the per-call degradation policy: a plan
// above DegradeCostAbove answers the rounded histogram estimate marked
// DegradedBy ErrBrownout — without Config.DegradeToEstimate, without
// touching the graph — while cheap plans and the zero policy execute
// exactly.
func TestExecPolicyBrownout(t *testing.T) {
	e := robustEstimator(t, Config{Workers: 1})
	pol := ExecPolicy{DegradeCostAbove: 0.5}

	// Expensive concrete path: degrades to the estimate, no graph work.
	st, err := e.ExecuteQueryCtxPolicy(context.Background(), "a/b/a", pol)
	if err != nil {
		t.Fatalf("brownout query errored: %v", err)
	}
	if !st.Degraded || !errors.Is(st.DegradedBy, ErrBrownout) {
		t.Fatalf("stats = %+v, want Degraded by ErrBrownout", st)
	}
	if st.Work != 0 || len(st.Intermediates) != 0 {
		t.Fatalf("brownout-degraded query did graph work: %+v", st)
	}
	want, err := e.Estimate("a/b/a")
	if err != nil {
		t.Fatal(err)
	}
	if d := float64(st.Result) - want; d > 0.5 || d < -0.5 {
		t.Fatalf("degraded Result = %d, want rounded estimate of %f", st.Result, want)
	}

	// Cheap plan (single label, zero join cost): unaffected by the policy.
	st, err = e.ExecuteQueryCtxPolicy(context.Background(), "a", pol)
	if err != nil || st.Degraded {
		t.Fatalf("cheap query under policy: %+v, %v — want exact answer", st, err)
	}

	// Zero policy: bit-identical to the plain call, on paths and RPQs.
	for _, q := range []string{"a/b/a", "a/(a|b)/a"} {
		plain, err := e.ExecuteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		zero, err := e.ExecuteQueryCtxPolicy(context.Background(), q, ExecPolicy{})
		if err != nil || zero.Degraded || zero.Result != plain.Result {
			t.Fatalf("zero policy diverged on %s: %+v vs %+v (%v)", q, zero, plain, err)
		}
	}

	// A true RPQ (DAG route) degrades through the same policy.
	x, err := e.Compile("a/(a|b)/a")
	if err != nil {
		t.Fatal(err)
	}
	st, err = x.ExecuteCtxPolicy(context.Background(), pol)
	if err != nil {
		t.Fatalf("brownout RPQ errored: %v", err)
	}
	if !st.Degraded || !errors.Is(st.DegradedBy, ErrBrownout) || st.Work != 0 {
		t.Fatalf("RPQ stats = %+v, want work-free Degraded by ErrBrownout", st)
	}

	// Batch-wide policy: expensive entries degrade with nil Err, cheap
	// entries stay exact.
	res, err := e.ExecuteBatch(Queries("a", "a/b/a"), BatchOptions{CacheBytes: -1, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Results[0]; r.Err != nil || r.Degraded {
		t.Fatalf("cheap batch entry: %+v, %v", r.ExecStats, r.Err)
	}
	if r := res.Results[1]; r.Err != nil || !r.Degraded || !errors.Is(r.DegradedBy, ErrBrownout) {
		t.Fatalf("expensive batch entry: %+v, %v — want Degraded by ErrBrownout", r.ExecStats, r.Err)
	}
	if n := e.pool.InUse(); n != 0 {
		t.Fatalf("pool has %d relations checked out after brownout runs", n)
	}
}
