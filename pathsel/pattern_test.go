package pathsel

import (
	"strings"
	"testing"
)

func TestExpandPattern(t *testing.T) {
	g := socialGraph(t)
	cases := []struct {
		pattern string
		want    int // expansions
	}{
		{"knows", 1},
		{"*", 2},
		{"knows/likes", 1},
		{"*/*", 4},
		{"knows|likes", 2},
		{"knows|likes/knows", 2},
		{"*/knows|likes/*", 8},
	}
	for _, c := range cases {
		ps, err := g.expandPattern(c.pattern)
		if err != nil {
			t.Fatalf("%s: %v", c.pattern, err)
		}
		if len(ps) != c.want {
			t.Errorf("%s expanded to %d paths, want %d", c.pattern, len(ps), c.want)
		}
	}
}

func TestExpandPatternErrors(t *testing.T) {
	g := socialGraph(t)
	for _, bad := range []string{"", "zzz", "knows/zzz", "knows|zzz"} {
		if _, err := g.expandPattern(bad); err == nil {
			t.Errorf("pattern %q should fail", bad)
		}
	}
}

func TestExpandPatternExplosionCapped(t *testing.T) {
	// 26 labels, 4 wildcard segments = 456976 > cap.
	labels := make([]string, 26)
	for i := range labels {
		labels[i] = string(rune('a' + i))
	}
	g := NewGraph(3, labels)
	if _, err := g.expandPattern("*/*/*/*"); err == nil {
		t.Fatal("explosive pattern should be rejected")
	}
	if _, err := g.expandPattern("*/*"); err != nil {
		t.Fatalf("676 expansions should be fine: %v", err)
	}
}

func TestTruePatternSelectivitySetVsBag(t *testing.T) {
	g := socialGraph(t)
	// "knows|likes": set semantics counts distinct pairs once; bag sums.
	set, err := g.TruePatternSelectivity("knows|likes")
	if err != nil {
		t.Fatal(err)
	}
	bag, err := g.TruePatternBagSelectivity("knows|likes")
	if err != nil {
		t.Fatal(err)
	}
	fk, _ := g.TrueSelectivity("knows")
	fl, _ := g.TrueSelectivity("likes")
	if bag != fk+fl {
		t.Fatalf("bag = %d, want %d", bag, fk+fl)
	}
	if set > bag {
		t.Fatalf("set semantics (%d) cannot exceed bag (%d)", set, bag)
	}
	if set <= 0 {
		t.Fatal("set selectivity should be positive")
	}
}

func TestEstimatePatternExactBudget(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Buckets: 6}) // singleton buckets
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"knows", "*", "knows|likes/knows", "*/*"} {
		e, err := est.EstimatePattern(pattern)
		if err != nil {
			t.Fatal(err)
		}
		bag, err := g.TruePatternBagSelectivity(pattern)
		if err != nil {
			t.Fatal(err)
		}
		if e != float64(bag) {
			t.Errorf("exact-budget EstimatePattern(%s) = %v, want %d", pattern, e, bag)
		}
	}
}

func TestEstimatePatternErrors(t *testing.T) {
	g := socialGraph(t)
	est, err := Build(g, Config{MaxPathLength: 2, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.EstimatePattern("*/*/*"); err == nil || !strings.Contains(err.Error(), "MaxPathLength") {
		t.Fatalf("over-length pattern should error on MaxPathLength, got %v", err)
	}
	if _, err := est.EstimatePattern("zzz"); err == nil {
		t.Fatal("unknown label should error")
	}
}

func TestTruePatternSelectivityErrors(t *testing.T) {
	g := socialGraph(t)
	if _, err := g.TruePatternSelectivity("zzz"); err == nil {
		t.Fatal("unknown label should error")
	}
	if _, err := g.TruePatternBagSelectivity("zzz|knows"); err == nil {
		t.Fatal("unknown alternation member should error")
	}
}

func TestTruePatternSelectivityWildcardEqualsUnionOfLabels(t *testing.T) {
	g := socialGraph(t)
	// "*" under set semantics = distinct pairs with any edge.
	set, err := g.TruePatternSelectivity("*")
	if err != nil {
		t.Fatal(err)
	}
	// The social graph has 8 edges with no parallel (src,dst) duplicates
	// except none — count manually: all 8 (src,dst) pairs distinct.
	if set != 8 {
		t.Fatalf("wildcard set selectivity = %d, want 8", set)
	}
}
