package pathsel

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/exec"
)

// Typed sentinels for every error class pathsel returns. Each error the
// package produces wraps exactly one of these, so callers dispatch with
// errors.Is instead of matching message text.
var (
	// ErrNoLabels rejects a graph with an empty label vocabulary.
	ErrNoLabels = errors.New("pathsel: a graph needs at least one edge label")
	// ErrUnknownLabel reports a label name absent from the graph's
	// vocabulary, wherever names are resolved (AddEdge, path queries,
	// patterns).
	ErrUnknownLabel = errors.New("pathsel: unknown label")
	// ErrEmptyPath rejects an empty path query or pattern.
	ErrEmptyPath = errors.New("pathsel: empty path query")
	// ErrPathTooLong reports a query (or pattern expansion) longer than
	// the estimator's covered length (Config.MaxPathLength).
	ErrPathTooLong = errors.New("pathsel: path longer than MaxPathLength")
	// ErrVertexRange reports an edge endpoint outside [0, NumVertices).
	ErrVertexRange = errors.New("pathsel: vertex outside range")
	// ErrBadConfig reports an invalid Config passed to Build.
	ErrBadConfig = errors.New("pathsel: invalid configuration")
	// ErrBadPattern reports an oversized pattern expansion.
	ErrBadPattern = errors.New("pathsel: invalid pattern")
	// ErrBadSnapshot reports a corrupt or implausible synopsis blob in
	// LoadEstimator.
	ErrBadSnapshot = errors.New("pathsel: corrupt estimator snapshot")
	// ErrUnknownDataset reports a dataset name GenerateDataset does not
	// know.
	ErrUnknownDataset = errors.New("pathsel: unknown dataset")

	// ErrCancelled reports a query aborted by its context being
	// cancelled (explicitly, not by deadline).
	ErrCancelled = errors.New("pathsel: query cancelled")
	// ErrDeadlineExceeded reports a query killed mid-flight by its
	// context deadline or Config.QueryTimeout.
	ErrDeadlineExceeded = errors.New("pathsel: query deadline exceeded")
	// ErrBudgetExceeded reports a query killed because a materialized
	// relation outgrew Config.MaxResultBytes.
	ErrBudgetExceeded = errors.New("pathsel: result size budget exceeded")
	// ErrAdmissionDenied reports a query rejected before execution by the
	// cost-based admission gate (Config.MaxPlanCost or the
	// Config.MaxResultBytes size projection).
	ErrAdmissionDenied = errors.New("pathsel: query rejected by admission control")
	// ErrExecutionFailed reports an execution that failed for a reason
	// other than cancellation — a contained worker panic. The wrapped
	// chain retains the execution layer's error for diagnosis.
	ErrExecutionFailed = errors.New("pathsel: query execution failed")
	// ErrBrownout marks an answer degraded by a per-call ExecPolicy: the
	// chosen plan's estimated cost exceeded ExecPolicy.DegradeCostAbove,
	// so the histogram estimate was answered without touching the graph.
	// It only ever appears as ExecStats.DegradedBy — a brownout degrade
	// is a successful (marked) answer, never an error return.
	ErrBrownout = errors.New("pathsel: degraded by brownout policy")
)

// translateExecErr maps the execution layer's typed abort causes onto the
// package's public sentinels. Contained panics (and any other unexpected
// failure) come back wrapping both ErrExecutionFailed and the original
// error, so diagnostic detail survives the translation.
func translateExecErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, exec.ErrDeadlineExceeded):
		return ErrDeadlineExceeded
	case errors.Is(err, exec.ErrBudgetExceeded):
		return ErrBudgetExceeded
	case errors.Is(err, exec.ErrCancelled):
		return ErrCancelled
	default:
		return fmt.Errorf("%w: %w", ErrExecutionFailed, err)
	}
}

// translateCtxErr maps a context error onto the public sentinels, for
// queries refused before execution because their context was already
// dead.
func translateCtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrCancelled
}

// newQueryCanceller bridges a context into the execution layer's
// canceller. An already-dead context cancels synchronously (the bridge's
// watcher goroutine alone would leave a scheduling window in which the
// execution could start), so a pre-cancelled query deterministically
// never touches the graph.
func newQueryCanceller(ctx context.Context) (*exec.Canceller, func()) {
	canc, release := exec.NewCancellerContext(ctx)
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			canc.Cancel(exec.ErrDeadlineExceeded)
		} else {
			canc.Cancel(exec.ErrCancelled)
		}
	}
	return canc, release
}
