package pathsel

import (
	"fmt"
	"strings"

	"repro/internal/paths"
)

// maxPatternExpansions bounds how many concrete label paths one pattern
// may expand to; beyond this the pattern is almost certainly a mistake
// (and summation-based estimation loses meaning anyway).
const maxPatternExpansions = 10000

// expandPattern parses a path pattern and returns every concrete label
// path it matches. Pattern syntax, per '/'-separated segment:
//
//	name       that label
//	*          any single label
//	a|b|c      any of the named labels
//
// Examples: "knows/*/likes", "knows|likes/knows".
func (gr *Graph) expandPattern(pattern string) ([]paths.Path, error) {
	if pattern == "" {
		return nil, fmt.Errorf("%w: empty pattern", ErrEmptyPath)
	}
	segments := strings.Split(pattern, "/")
	// Per segment, the set of admissible labels.
	options := make([][]int, len(segments))
	for i, seg := range segments {
		switch {
		case seg == "*":
			all := make([]int, gr.g.NumLabels())
			for l := range all {
				all[l] = l
			}
			options[i] = all
		case strings.Contains(seg, "|"):
			for _, name := range strings.Split(seg, "|") {
				l := gr.g.LabelByName(name)
				if l < 0 {
					return nil, fmt.Errorf("%w %q in pattern %q", ErrUnknownLabel, name, pattern)
				}
				options[i] = append(options[i], l)
			}
		default:
			l := gr.g.LabelByName(seg)
			if l < 0 {
				return nil, fmt.Errorf("%w %q in pattern %q", ErrUnknownLabel, seg, pattern)
			}
			options[i] = []int{l}
		}
	}
	count := 1
	for _, opts := range options {
		count *= len(opts)
		if count > maxPatternExpansions {
			return nil, fmt.Errorf("%w: pattern %q expands to over %d paths", ErrBadPattern, pattern, maxPatternExpansions)
		}
	}
	out := make([]paths.Path, 0, count)
	cur := make(paths.Path, len(segments))
	var rec func(i int)
	rec = func(i int) {
		if i == len(segments) {
			out = append(out, cur.Clone())
			return
		}
		for _, l := range options[i] {
			cur[i] = l
			rec(i + 1)
		}
	}
	rec(0)
	return out, nil
}

// EstimatePattern estimates the total selectivity of an RPQ pattern
// (the full Compile grammar: wildcards `*`, alternations `(a|b)`,
// optionals `d?`, bounded repetitions `e{1,3}`) under bag semantics: a
// vertex pair connected by two distinct matching paths counts twice.
// It routes through the compiled DAG — patterns whose expansion count
// exceeds maxPatternExpansions are estimated from the DAG plan's
// independence model instead of failing, so cost scales with the
// expression, not the cross product. For the exact set-semantics
// answer, see TruePatternSelectivity.
func (e *Estimator) EstimatePattern(pattern string) (float64, error) {
	x, err := e.Compile(pattern)
	if err != nil {
		return 0, err
	}
	return x.Estimate(), nil
}

// TruePatternSelectivity evaluates a pattern exactly under set semantics:
// the number of distinct vertex pairs connected by at least one matching
// path. It enumerates the pattern's concrete expansions (bounded by
// maxPatternExpansions) — the ground-truth oracle the DAG execution path
// is pinned bit-identical to.
func (gr *Graph) TruePatternSelectivity(pattern string) (int64, error) {
	ps, err := gr.patternExpansions(pattern)
	if err != nil {
		return 0, err
	}
	return paths.UnionSelectivity(gr.csr(), ps), nil
}

// TruePatternBagSelectivity evaluates a pattern exactly under bag
// semantics (the sum of the distinct expansions' selectivities) — the
// quantity EstimatePattern approximates.
func (gr *Graph) TruePatternBagSelectivity(pattern string) (int64, error) {
	ps, err := gr.patternExpansions(pattern)
	if err != nil {
		return 0, err
	}
	var total int64
	csr := gr.csr()
	for _, p := range ps {
		total += paths.Selectivity(csr, p)
	}
	return total, nil
}
