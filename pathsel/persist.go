package pathsel

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/paths"
)

// Save serializes the estimator's synopsis — label vocabulary, ordering
// method, ranking, and bucket list — as a compact versioned binary blob.
// The build-time ground truth (the census) is deliberately *not* saved:
// the whole point of the histogram is that estimation needs only the
// synopsis. Load the result with LoadEstimator.
//
// Only the five paper ordering methods with serial histograms are
// serializable.
func (e *Estimator) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	labels := e.gr.Labels()
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(labels)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, l := range labels {
		n = binary.PutUvarint(buf[:], uint64(len(l)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
	}
	if err := e.ph.Encode(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// CompactEstimator is a loaded synopsis: it answers Estimate and
// EstimatePrefix queries by label-name path without the original graph or
// ground truth (so there is no Evaluate or TrueSelectivity — those need
// the census that only exists at build time).
type CompactEstimator struct {
	labels map[string]int
	names  []string
	ph     *core.PathHistogram
}

// LoadEstimator reads a synopsis written by Estimator.Save.
func LoadEstimator(r io.Reader) (*CompactEstimator, error) {
	br := bufio.NewReader(r)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading label count: %w", ErrBadSnapshot, err)
	}
	if count == 0 || count > 1<<16 {
		return nil, fmt.Errorf("%w: implausible label count %d", ErrBadSnapshot, count)
	}
	ce := &CompactEstimator{labels: make(map[string]int, count)}
	for i := 0; i < int(count); i++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
		if n > 1<<12 {
			return nil, fmt.Errorf("%w: implausible label length %d", ErrBadSnapshot, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
		name := string(b)
		if _, dup := ce.labels[name]; dup {
			return nil, fmt.Errorf("%w: duplicate label %q", ErrBadSnapshot, name)
		}
		ce.labels[name] = i
		ce.names = append(ce.names, name)
	}
	ph, err := core.ReadPathHistogram(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if ph.Ordering().NumLabels() != int(count) {
		return nil, fmt.Errorf("%w: vocabulary size %d disagrees with ordering (%d labels)",
			ErrBadSnapshot, count, ph.Ordering().NumLabels())
	}
	ce.ph = ph
	return ce, nil
}

// parsePath resolves a slash-separated label-name path.
func (ce *CompactEstimator) parsePath(q string) (paths.Path, error) {
	if q == "" {
		return nil, ErrEmptyPath
	}
	var p paths.Path
	start := 0
	for i := 0; i <= len(q); i++ {
		if i == len(q) || q[i] == '/' {
			name := q[start:i]
			l, ok := ce.labels[name]
			if !ok {
				return nil, fmt.Errorf("%w %q in path %q", ErrUnknownLabel, name, q)
			}
			p = append(p, l)
			start = i + 1
		}
	}
	if len(p) > ce.ph.Ordering().K() {
		return nil, fmt.Errorf("%w: %q exceeds covered length %d", ErrPathTooLong, q, ce.ph.Ordering().K())
	}
	return p, nil
}

// Estimate returns e(ℓ) for a slash-separated label-name path.
func (ce *CompactEstimator) Estimate(q string) (float64, error) {
	p, err := ce.parsePath(q)
	if err != nil {
		return 0, err
	}
	return ce.ph.Estimate(p), nil
}

// EstimatePrefix answers a prefix wildcard query (lexicographic orderings
// only, as for Estimator.EstimatePrefix).
func (ce *CompactEstimator) EstimatePrefix(q string) (float64, error) {
	p, err := ce.parsePath(q)
	if err != nil {
		return 0, err
	}
	return ce.ph.EstimatePrefix(p)
}

// Labels returns the label vocabulary.
func (ce *CompactEstimator) Labels() []string { return append([]string(nil), ce.names...) }

// Ordering returns the ordering method name.
func (ce *CompactEstimator) Ordering() string { return ce.ph.Ordering().Name() }

// Buckets returns the bucket count.
func (ce *CompactEstimator) Buckets() int { return ce.ph.Buckets() }

// MaxPathLength returns the covered path length bound k.
func (ce *CompactEstimator) MaxPathLength() int { return ce.ph.Ordering().K() }
