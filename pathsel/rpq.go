package pathsel

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/relcache"
)

// This file is the public regular-path-query surface: the RPQ grammar
// parser and the parse-once query handle (Compile → *Expr) the string
// entry points wrap.
//
// Grammar, per '/'-separated segment:
//
//	atom:        name | * | (a|b|c) | a|b|c
//	quantifier:  ε | ? | {m} | {m,n}      (0 ≤ m ≤ n, 1 ≤ n ≤ 64)
//
// `*` is the whole label vocabulary, bare alternation `a|b` is the
// legacy pattern syntax (equivalent to the grouped form), `?` is {0,1},
// and a quantifier binds to the whole segment atom: `(a|b){2}` matches
// any two-step path whose steps are each a or b. A pattern that could
// match the empty path (every segment optional) is rejected — the empty
// path's relation is the identity, which is never what a selectivity
// query means.

// compileRPQ parses a pattern into the execution layer's expression
// DAG. Errors wrap the package sentinels: ErrEmptyPath for an empty
// pattern, ErrUnknownLabel for unresolvable names, ErrBadPattern for
// grammar violations (empty segments or branches, unclosed or nested
// groups, malformed or inverted repetition bounds, all-optional
// patterns).
func (gr *Graph) compileRPQ(pattern string) (*exec.RPQDag, error) {
	if pattern == "" {
		return nil, fmt.Errorf("%w: empty pattern", ErrEmptyPath)
	}
	d := &exec.RPQDag{}
	for _, seg := range strings.Split(pattern, "/") {
		e, err := gr.parseRPQElem(seg, pattern)
		if err != nil {
			return nil, err
		}
		d.Elems = append(d.Elems, e)
	}
	if d.MinLen() == 0 {
		return nil, fmt.Errorf("%w: pattern %q may match the empty path (every segment optional)",
			ErrBadPattern, pattern)
	}
	return d, nil
}

// parseRPQElem parses one '/'-separated segment into an element.
func (gr *Graph) parseRPQElem(seg, pattern string) (exec.RPQElem, error) {
	bad := func(format string, args ...any) (exec.RPQElem, error) {
		return exec.RPQElem{}, fmt.Errorf("%w: segment %q in pattern %q: %s",
			ErrBadPattern, seg, pattern, fmt.Sprintf(format, args...))
	}
	atom, minRep, maxRep := seg, 1, 1
	switch {
	case strings.HasSuffix(atom, "?"):
		atom, minRep = atom[:len(atom)-1], 0
	case strings.HasSuffix(atom, "}"):
		i := strings.LastIndex(atom, "{")
		if i < 0 {
			return bad("'}' without '{'")
		}
		bounds := strings.Split(atom[i+1:len(atom)-1], ",")
		atom = atom[:i]
		if len(bounds) > 2 {
			return bad("repetition bounds need one or two counts")
		}
		var ok bool
		if minRep, ok = parseCount(bounds[0]); !ok {
			return bad("repetition bound %q is not a count", bounds[0])
		}
		maxRep = minRep
		if len(bounds) == 2 {
			if maxRep, ok = parseCount(bounds[1]); !ok {
				return bad("repetition bound %q is not a count", bounds[1])
			}
		}
		switch {
		case maxRep < minRep:
			return bad("inverted repetition bounds {%d,%d}", minRep, maxRep)
		case maxRep < 1:
			return bad("zero repetitions match nothing")
		case maxRep > exec.MaxRepetition:
			return bad("repetition bound %d exceeds %d", maxRep, exec.MaxRepetition)
		}
	}
	var names []string
	switch {
	case atom == "":
		return bad("no label atom")
	case strings.HasPrefix(atom, "("):
		if !strings.HasSuffix(atom, ")") {
			return bad("unclosed group")
		}
		inner := atom[1 : len(atom)-1]
		if strings.ContainsAny(inner, "()") {
			return bad("nested group")
		}
		names = strings.Split(inner, "|")
	case strings.ContainsAny(atom, "()"):
		return bad("misplaced parenthesis")
	case atom == "*":
		e := exec.RPQElem{Labels: make([]int, gr.g.NumLabels()), MinRep: minRep, MaxRep: maxRep}
		for l := range e.Labels {
			e.Labels[l] = l
		}
		return e, nil
	default:
		names = strings.Split(atom, "|")
	}
	labels := make([]int, 0, len(names))
	for _, name := range names {
		if name == "" {
			return bad("empty alternation branch")
		}
		l := gr.g.LabelByName(name)
		if l < 0 {
			return exec.RPQElem{}, fmt.Errorf("%w %q in pattern %q", ErrUnknownLabel, name, pattern)
		}
		labels = append(labels, l)
	}
	sort.Ints(labels)
	labels = dedupSorted(labels)
	return exec.RPQElem{Labels: labels, MinRep: minRep, MaxRep: maxRep}, nil
}

// parseCount parses a non-negative decimal repetition count (digits
// only — no signs, no spaces, no empty string).
func parseCount(s string) (int, bool) {
	if s == "" || len(s) > 4 {
		return 0, false
	}
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	return n, true
}

// dedupSorted removes adjacent duplicates from a sorted slice in place.
func dedupSorted(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// patternExpansions enumerates a pattern's concrete label paths,
// bounded by maxPatternExpansions — the exact-oracle route, kept for
// ground-truth evaluation; estimation and execution go through the
// compiled DAG, whose cost scales with the expression, not the
// expansion count.
func (gr *Graph) patternExpansions(pattern string) ([]paths.Path, error) {
	d, err := gr.compileRPQ(pattern)
	if err != nil {
		return nil, err
	}
	exps, ok := d.Expansions(maxPatternExpansions)
	if !ok {
		return nil, fmt.Errorf("%w: pattern %q expands to over %d paths",
			ErrBadPattern, pattern, maxPatternExpansions)
	}
	return exps, nil
}

// Expr is a compiled query: the pattern parsed once into an expression
// DAG and planned once against the estimator it was compiled by. It is
// immutable and safe for concurrent use — compile a repeated query (or
// a whole workload, via ExecuteExprBatch) once and execute the handle
// many times; each execution replans against the current cache state
// (warm segments steer plan choice) but never reparses. The string
// entry points (ExecuteQuery, PlanQuery, EstimatePattern,
// ExecuteBatch) are thin wrappers that compile per call.
type Expr struct {
	est     *Estimator
	pattern string
	dag     *exec.RPQDag
	path    paths.Path // non-nil when the pattern is one concrete path
	plan    QueryPlan  // compile-time plan (cold-cache view)
	// estimate is the histogram estimate of the pattern's bag
	// selectivity: the exact sum over expansions when enumerable within
	// maxPatternExpansions, the DAG plan's independence-model estimate
	// otherwise.
	estimate   float64
	enumerable bool
}

// Compile parses and plans a pattern into a reusable query handle. The
// pattern's longest matchable path must fit Config.MaxPathLength (the
// histogram's covered length); beyond it Compile fails with
// ErrPathTooLong before anything is planned.
func (e *Estimator) Compile(pattern string) (*Expr, error) {
	dag, err := e.gr.compileRPQ(pattern)
	if err != nil {
		return nil, err
	}
	if ml := dag.MaxLen(); ml > e.cfg.MaxPathLength {
		return nil, fmt.Errorf("%w: pattern %q may match paths up to length %d, beyond %d",
			ErrPathTooLong, pattern, ml, e.cfg.MaxPathLength)
	}
	x := &Expr{est: e, pattern: pattern, dag: dag}
	if p, ok := dag.ConcretePath(); ok {
		x.path = p
		x.plan = e.planParsed(p, e.cache)
		x.estimate = e.ph.Estimate(p)
		x.enumerable = true
		return x, nil
	}
	if exps, ok := dag.Expansions(maxPatternExpansions); ok {
		x.enumerable = true
		for _, p := range exps {
			x.estimate += e.ph.Estimate(p)
		}
	}
	dp := e.planner(e.cache).PlanDag(dag, e.gr.csr().NumVertices(), e.cfg.BushyPlans)
	if !x.enumerable {
		x.estimate = dp.ResultEst
	}
	x.plan = QueryPlan{Start: -1, Description: "rpq " + dp.Describe(), EstimatedCost: dp.Cost}
	return x, nil
}

// Pattern returns the source pattern.
func (x *Expr) Pattern() string { return x.pattern }

// MinLen and MaxLen bound the concrete path lengths the pattern
// matches.
func (x *Expr) MinLen() int { return x.dag.MinLen() }

// MaxLen is the longest concrete path length the pattern matches.
func (x *Expr) MaxLen() int { return x.dag.MaxLen() }

// Estimate returns the histogram estimate of the pattern's selectivity
// under bag semantics: the exact expansion sum when the pattern
// enumerates within maxPatternExpansions concrete paths, the compiled
// DAG's independence-model estimate otherwise — so estimation cost
// scales with the expression, never the expansion count.
func (x *Expr) Estimate() float64 { return x.estimate }

// Plan returns the compile-time plan: for a concrete path the usual
// zig-zag/bushy choice with its per-start cost spread, for a true RPQ
// the planned DAG fold. Executions replan against the live cache, so a
// warm run may execute a cheaper plan than the one reported here.
func (x *Expr) Plan() QueryPlan { return x.plan }

// Execute runs the compiled query; it is ExecuteCtx with a background
// context.
func (x *Expr) Execute() (ExecStats, error) {
	return x.ExecuteCtx(context.Background())
}

// ExecuteCtx executes the compiled query under ctx with the exact
// semantics of Estimator.ExecuteQueryCtx — per-query deadline
// (Config.QueryTimeout), cost-based admission, degradation, typed
// sentinels — minus the parse: the result is the number of distinct
// vertex pairs connected by a path matching the pattern (set
// semantics; a concrete path degenerates to its selectivity).
func (x *Expr) ExecuteCtx(ctx context.Context) (ExecStats, error) {
	return x.ExecuteCtxPolicy(ctx, ExecPolicy{})
}

// ExecuteCtxPolicy is ExecuteCtx under a per-call degradation policy:
// when pol.DegradeCostAbove is set and the (cache-aware, per-call) plan
// costs more, the call answers the rounded histogram estimate — marked
// Degraded with DegradedBy = ErrBrownout — without touching the graph.
// The zero policy makes it exactly ExecuteCtx.
func (x *Expr) ExecuteCtxPolicy(ctx context.Context, pol ExecPolicy) (ExecStats, error) {
	e := x.est
	if ctx == nil {
		ctx = context.Background()
	}
	if e.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.QueryTimeout)
		defer cancel()
	}
	canc, release := newQueryCanceller(ctx)
	defer release()
	return e.executeExpr(e.gr.csr(), x, e.cache, e.cfg.Workers, canc, pol)
}

// executeExpr executes one compiled query against the given cache — the
// shared core of Expr.ExecuteCtx and the batch executor, mirroring
// executeParsed. Concrete paths take the existing plan machinery
// unchanged; DAGs are replanned cache-aware per call and folded by
// exec.ExecuteDagChecked.
func (e *Estimator) executeExpr(g *graph.CSR, x *Expr, cache *relcache.Cache, workers int, canc *exec.Canceller, pol ExecPolicy) (ExecStats, error) {
	if x.path != nil {
		return e.executeParsed(g, x.path, cache, workers, canc, pol)
	}
	dp := e.planner(cache).PlanDag(x.dag, g.NumVertices(), e.cfg.BushyPlans)
	qp := QueryPlan{Start: -1, Description: "rpq " + dp.Describe(), EstimatedCost: dp.Cost}
	if pol.degrades(qp) {
		return degradeTo(qp, x.estimate, ErrBrownout)
	}
	if err := e.admit(qp, x.estimate); err != nil {
		return e.degrade(qp, x.estimate, err)
	}
	opt := exec.Options{
		DensityThreshold: e.cfg.DensityThreshold,
		Workers:          workers,
		Cache:            cache,
		Cancel:           canc,
		MaxResultBytes:   e.cfg.MaxResultBytes,
		Pool:             e.pool,
	}
	rel, st, err := exec.ExecuteDagChecked(g, x.dag, dp, opt)
	e.pool.Put(rel)
	if err != nil {
		return e.degrade(qp, x.estimate, translateExecErr(err))
	}
	return ExecStats{
		Plan:          qp,
		Intermediates: st.Intermediates,
		Work:          st.Work,
		Result:        st.Result,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
		Sched:         st.Sched,
	}, nil
}
