package pathsel

import (
	"strings"
	"testing"
)

func planTestEstimator(t *testing.T) (*Graph, *Estimator) {
	t.Helper()
	g, err := GenerateDataset("Moreno health", 0.15, 9)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Build(g, Config{MaxPathLength: 3, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	return g, est
}

func TestPlanQueryShape(t *testing.T) {
	_, est := planTestEstimator(t)
	labels := est.gr.Labels()
	q := strings.Join([]string{labels[0], labels[1], labels[0]}, "/")
	plan, err := est.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Start < 0 || plan.Start >= 3 {
		t.Fatalf("plan start %d out of range", plan.Start)
	}
	if len(plan.Costs) != 3 {
		t.Fatalf("expected 3 candidate costs, got %d", len(plan.Costs))
	}
	if plan.EstimatedCost != plan.Costs[plan.Start] {
		t.Fatal("EstimatedCost must be the chosen candidate's cost")
	}
	for s, c := range plan.Costs {
		if c < plan.EstimatedCost {
			t.Fatalf("chose start %d (cost %v) over cheaper start %d (cost %v)",
				plan.Start, plan.EstimatedCost, s, c)
		}
	}
	if plan.Description == "" {
		t.Fatal("plan description empty")
	}
}

func TestExecuteQueryMatchesTrueSelectivity(t *testing.T) {
	g, est := planTestEstimator(t)
	labels := g.Labels()
	queries := []string{
		labels[0],
		labels[0] + "/" + labels[1],
		labels[1] + "/" + labels[0] + "/" + labels[1],
	}
	for _, q := range queries {
		st, err := est.ExecuteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := g.TrueSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.Result != want {
			t.Fatalf("query %q: executed result %d != exact selectivity %d", q, st.Result, want)
		}
		segs := strings.Count(q, "/") + 1
		if len(st.Intermediates) != segs-1 {
			t.Fatalf("query %q: %d intermediates, want %d", q, len(st.Intermediates), segs-1)
		}
		var work int64
		for _, v := range st.Intermediates {
			work += v
		}
		if st.Work != work {
			t.Fatalf("query %q: Work %d != Σ intermediates %d", q, st.Work, work)
		}
	}
}

func TestExecuteQueryHonorsDensityThreshold(t *testing.T) {
	g, err := GenerateDataset("Moreno health", 0.15, 9)
	if err != nil {
		t.Fatal(err)
	}
	var results []int64
	for _, density := range []float64{0, 1e-9, 1.0} {
		est, err := Build(g, Config{MaxPathLength: 3, Buckets: 32, DensityThreshold: density})
		if err != nil {
			t.Fatal(err)
		}
		labels := g.Labels()
		st, err := est.ExecuteQuery(labels[0] + "/" + labels[1] + "/" + labels[0])
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, st.Result)
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("DensityThreshold changed results: %v", results)
	}
}

// TestBushyPlansMatchLinear pins Config.BushyPlans as a pure performance
// knob: the same queries must produce the same exact results with and
// without it, with the plan surfaced through QueryPlan.Tree. The plan
// tree's estimated cost can never exceed the best zig-zag candidate —
// the linear space is contained in the tree space.
func TestBushyPlansMatchLinear(t *testing.T) {
	g, err := GenerateDataset("Moreno health", 0.15, 9)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Build(g, Config{MaxPathLength: 4, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	bushy, err := Build(g, Config{MaxPathLength: 4, Buckets: 32, BushyPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	labels := g.Labels()
	queries := []string{
		labels[0],
		labels[0] + "/" + labels[1],
		labels[1] + "/" + labels[0] + "/" + labels[1],
		labels[0] + "/" + labels[1] + "/" + labels[0] + "/" + labels[1],
	}
	for _, q := range queries {
		lp, err := lin.PlanQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if lp.Tree != nil {
			t.Fatalf("query %q: linear config surfaced a plan tree", q)
		}
		bp, err := bushy.PlanQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if bp.Tree == nil {
			t.Fatalf("query %q: BushyPlans config missing the plan tree", q)
		}
		best := bp.Costs[0]
		for _, c := range bp.Costs[1:] {
			if c < best {
				best = c
			}
		}
		if bp.EstimatedCost > best {
			t.Fatalf("query %q: tree cost %v exceeds best zig-zag cost %v", q, bp.EstimatedCost, best)
		}
		if bp.Tree.IsLeaf() && bp.Start != bp.Tree.Start {
			t.Fatalf("query %q: leaf tree start %d != plan start %d", q, bp.Tree.Start, bp.Start)
		}
		lst, err := lin.ExecuteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		bst, err := bushy.ExecuteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if lst.Result != bst.Result {
			t.Fatalf("query %q: bushy result %d != linear result %d", q, bst.Result, lst.Result)
		}
		want, err := g.TrueSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		if bst.Result != want {
			t.Fatalf("query %q: bushy result %d != exact selectivity %d", q, bst.Result, want)
		}
	}
}

func TestPlanQueryErrors(t *testing.T) {
	_, est := planTestEstimator(t)
	if _, err := est.PlanQuery("no-such-label"); err == nil {
		t.Fatal("unknown label should error")
	}
	labels := est.gr.Labels()
	long := strings.Join([]string{labels[0], labels[0], labels[0], labels[0]}, "/")
	if _, err := est.PlanQuery(long); err == nil {
		t.Fatal("over-length query should error")
	}
	if _, err := est.ExecuteQuery(""); err == nil {
		t.Fatal("empty query should error")
	}
}
