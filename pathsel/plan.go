package pathsel

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/relcache"
)

// QueryPlan is the join strategy an Estimator chooses for a path query: a
// zig-zag plan that starts the join at one label position and grows both
// ways. A length-k query has k candidate plans; the estimator costs each
// as the sum of its estimated intermediate-result sizes and picks the
// cheapest, so histogram quality directly becomes plan quality.
type QueryPlan struct {
	// Start is the label position the join grows from: 0 is the classic
	// forward (left-to-right) join, k−1 the backward join, interior values
	// start at an estimated-selective label and grow both ways.
	Start int
	// Description is "forward", "backward", or "zigzag@i".
	Description string
	// EstimatedCost is the chosen plan's estimated total intermediate
	// volume (sum of estimated segment selectivities, in vertex pairs).
	EstimatedCost float64
	// Costs holds the estimate for every candidate zig-zag plan, indexed
	// by start position, so callers can see the spread the choice was
	// made over.
	Costs []float64
	// Tree is the chosen plan tree when Config.BushyPlans is set, nil
	// otherwise. A leaf tree is exactly the zig-zag plan the other fields
	// describe; a join-node tree is a bushy plan — then Start is −1,
	// Description renders the tree, and EstimatedCost is the tree's cost
	// (never higher than the best zig-zag candidate in Costs, since the
	// linear space is contained in the tree space).
	Tree *exec.PlanTree
}

// ExecStats reports an executed path query.
type ExecStats struct {
	// Plan is the strategy that was executed.
	Plan QueryPlan
	// Intermediates holds the actual distinct-pair count entering each
	// join step: len(path)−1 entries for a linear plan; for a bushy plan
	// every materialized segment relation, including both inputs of each
	// relation×relation join, in the executor's deterministic post-order.
	Intermediates []int64
	// Work is Σ Intermediates — the actual cost the planner tried to
	// minimize.
	Work int64
	// Result is the exact selectivity |ℓ(G)| of the query.
	Result int64
	// CacheHits and CacheMisses count the execution's segment-cache
	// traffic when a cache was in play (Config.CacheBytes, or any
	// ExecuteBatch run): a hit adopted a previously materialized segment
	// relation instead of recomputing it; a miss computed and published
	// one. On a whole-query hit, Intermediates is empty and Work 0 —
	// nothing intermediate was materialized.
	CacheHits, CacheMisses int
}

// planner builds the exec.Planner view over this estimator's histogram.
// With a cache and BushyPlans, the planner is cache-aware: segments whose
// relations are already materialized cost nothing to build, so warm
// workloads steer the DP toward bushy joins of reusable segments.
func (e *Estimator) planner(cache *relcache.Cache) exec.Planner {
	pl := exec.Planner{Est: exec.EstimatorFunc(e.ph.Estimate)}
	if cache != nil && e.cfg.BushyPlans {
		pl.Cached = func(p paths.Path) bool { return cache.Contains(p, false) }
	}
	return pl
}

// parseBounded resolves a query and enforces the build-time length bound.
func (e *Estimator) parseBounded(q string) (paths.Path, error) {
	p, err := e.gr.parsePath(q)
	if err != nil {
		return nil, err
	}
	if len(p) > e.cfg.MaxPathLength {
		return nil, fmt.Errorf("pathsel: path %q longer than MaxPathLength %d", q, e.cfg.MaxPathLength)
	}
	return p, nil
}

// planParsed costs every candidate plan once and picks the winner: the
// cheapest zig-zag plan, or — under Config.BushyPlans — the cheapest plan
// tree, which degenerates to the zig-zag winner whenever linear growth is
// estimated cheaper than every bushy split.
func (e *Estimator) planParsed(p paths.Path, cache *relcache.Cache) QueryPlan {
	pl := e.planner(cache)
	costs := pl.Costs(p)
	plan := exec.CheapestPlan(costs)
	qp := QueryPlan{
		Start:         plan.Start,
		Description:   plan.Describe(len(p)),
		EstimatedCost: costs[plan.Start],
		Costs:         costs,
	}
	if e.cfg.BushyPlans {
		tree, cost := pl.ChooseTreeWithCost(p)
		qp.Tree = tree
		if !tree.IsLeaf() {
			qp.Start = -1
			qp.Description = tree.Describe(len(p))
			qp.EstimatedCost = cost
		}
	}
	return qp
}

// PlanQuery chooses among the query's zig-zag join plans using this
// estimator's histogram, without executing anything. The returned
// QueryPlan carries the estimated cost of every candidate so the caller
// can inspect the margin.
func (e *Estimator) PlanQuery(q string) (QueryPlan, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return QueryPlan{}, err
	}
	return e.planParsed(p, e.cache), nil
}

// ExecuteQuery plans q with the histogram and carries the chosen plan out
// on the hybrid execution engine, honoring Config.DensityThreshold,
// Config.Workers (join steps shard their source rows across that many
// work-stealing workers; results are bit-identical at every setting), and
// Config.BushyPlans (a chosen bushy tree builds its segments
// independently — in parallel when the worker budget allows — and joins
// them with the sharded relation×relation kernel). The
// returned stats hold the exact result count and the actual intermediate
// sizes, so estimate-driven plan quality is measurable against the ground
// truth. Unlike the histogram methods this touches the graph itself, with
// cost proportional to the intermediate volumes.
func (e *Estimator) ExecuteQuery(q string) (ExecStats, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return ExecStats{}, err
	}
	return e.executeParsed(e.gr.csr(), p, e.cache, e.cfg.Workers), nil
}

// executeParsed plans and executes one parsed query against the given
// (possibly nil) segment cache — the shared core of ExecuteQuery and
// ExecuteBatch. g is passed pre-frozen so concurrent batch workers never
// race on the lazy CSR freeze.
func (e *Estimator) executeParsed(g *graph.CSR, p paths.Path, cache *relcache.Cache, workers int) ExecStats {
	plan := e.planParsed(p, cache)
	opt := exec.Options{DensityThreshold: e.cfg.DensityThreshold, Workers: workers, Cache: cache}
	var st exec.Stats
	if plan.Tree != nil {
		_, st = exec.ExecuteTree(g, p, plan.Tree, opt)
	} else {
		_, st = exec.ExecutePlan(g, p, exec.Plan{Start: plan.Start}, opt)
	}
	return ExecStats{
		Plan:          plan,
		Intermediates: st.Intermediates,
		Work:          st.Work,
		Result:        st.Result,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
	}
}
