package pathsel

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/paths"
)

// QueryPlan is the join strategy an Estimator chooses for a path query: a
// zig-zag plan that starts the join at one label position and grows both
// ways. A length-k query has k candidate plans; the estimator costs each
// as the sum of its estimated intermediate-result sizes and picks the
// cheapest, so histogram quality directly becomes plan quality.
type QueryPlan struct {
	// Start is the label position the join grows from: 0 is the classic
	// forward (left-to-right) join, k−1 the backward join, interior values
	// start at an estimated-selective label and grow both ways.
	Start int
	// Description is "forward", "backward", or "zigzag@i".
	Description string
	// EstimatedCost is the chosen plan's estimated total intermediate
	// volume (sum of estimated segment selectivities, in vertex pairs).
	EstimatedCost float64
	// Costs holds the estimate for every candidate plan, indexed by start
	// position, so callers can see the spread the choice was made over.
	Costs []float64
}

// ExecStats reports an executed path query.
type ExecStats struct {
	// Plan is the strategy that was executed.
	Plan QueryPlan
	// Intermediates holds the actual distinct-pair count entering each
	// join step (len(path)−1 entries).
	Intermediates []int64
	// Work is Σ Intermediates — the actual cost the planner tried to
	// minimize.
	Work int64
	// Result is the exact selectivity |ℓ(G)| of the query.
	Result int64
}

// planner builds the exec.Planner view over this estimator's histogram.
func (e *Estimator) planner() exec.Planner {
	return exec.Planner{Est: exec.EstimatorFunc(e.ph.Estimate)}
}

// parseBounded resolves a query and enforces the build-time length bound.
func (e *Estimator) parseBounded(q string) (paths.Path, error) {
	p, err := e.gr.parsePath(q)
	if err != nil {
		return nil, err
	}
	if len(p) > e.cfg.MaxPathLength {
		return nil, fmt.Errorf("pathsel: path %q longer than MaxPathLength %d", q, e.cfg.MaxPathLength)
	}
	return p, nil
}

// planParsed costs every candidate plan once and picks the winner.
func (e *Estimator) planParsed(p paths.Path) QueryPlan {
	costs := e.planner().Costs(p)
	plan := exec.CheapestPlan(costs)
	return QueryPlan{
		Start:         plan.Start,
		Description:   plan.Describe(len(p)),
		EstimatedCost: costs[plan.Start],
		Costs:         costs,
	}
}

// PlanQuery chooses among the query's zig-zag join plans using this
// estimator's histogram, without executing anything. The returned
// QueryPlan carries the estimated cost of every candidate so the caller
// can inspect the margin.
func (e *Estimator) PlanQuery(q string) (QueryPlan, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return QueryPlan{}, err
	}
	return e.planParsed(p), nil
}

// ExecuteQuery plans q with the histogram and carries the chosen plan out
// on the hybrid execution engine, honoring Config.DensityThreshold and
// Config.Workers (join steps shard their source rows across that many
// work-stealing workers; results are bit-identical at every setting). The
// returned stats hold the exact result count and the actual intermediate
// sizes, so estimate-driven plan quality is measurable against the ground
// truth. Unlike the histogram methods this touches the graph itself, with
// cost proportional to the intermediate volumes.
func (e *Estimator) ExecuteQuery(q string) (ExecStats, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return ExecStats{}, err
	}
	plan := e.planParsed(p)
	_, st := exec.ExecutePlan(e.gr.csr(), p, exec.Plan{Start: plan.Start},
		exec.Options{DensityThreshold: e.cfg.DensityThreshold, Workers: e.cfg.Workers})
	return ExecStats{
		Plan:          plan,
		Intermediates: st.Intermediates,
		Work:          st.Work,
		Result:        st.Result,
	}, nil
}
