package pathsel

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/paths"
)

// QueryPlan is the join strategy an Estimator chooses for a path query: a
// zig-zag plan that starts the join at one label position and grows both
// ways. A length-k query has k candidate plans; the estimator costs each
// as the sum of its estimated intermediate-result sizes and picks the
// cheapest, so histogram quality directly becomes plan quality.
type QueryPlan struct {
	// Start is the label position the join grows from: 0 is the classic
	// forward (left-to-right) join, k−1 the backward join, interior values
	// start at an estimated-selective label and grow both ways.
	Start int
	// Description is "forward", "backward", or "zigzag@i".
	Description string
	// EstimatedCost is the chosen plan's estimated total intermediate
	// volume (sum of estimated segment selectivities, in vertex pairs).
	EstimatedCost float64
	// Costs holds the estimate for every candidate zig-zag plan, indexed
	// by start position, so callers can see the spread the choice was
	// made over.
	Costs []float64
	// Tree is the chosen plan tree when Config.BushyPlans is set, nil
	// otherwise. A leaf tree is exactly the zig-zag plan the other fields
	// describe; a join-node tree is a bushy plan — then Start is −1,
	// Description renders the tree, and EstimatedCost is the tree's cost
	// (never higher than the best zig-zag candidate in Costs, since the
	// linear space is contained in the tree space).
	Tree *exec.PlanTree
}

// ExecStats reports an executed path query.
type ExecStats struct {
	// Plan is the strategy that was executed.
	Plan QueryPlan
	// Intermediates holds the actual distinct-pair count entering each
	// join step: len(path)−1 entries for a linear plan; for a bushy plan
	// every materialized segment relation, including both inputs of each
	// relation×relation join, in the executor's deterministic post-order.
	Intermediates []int64
	// Work is Σ Intermediates — the actual cost the planner tried to
	// minimize.
	Work int64
	// Result is the exact selectivity |ℓ(G)| of the query.
	Result int64
}

// planner builds the exec.Planner view over this estimator's histogram.
func (e *Estimator) planner() exec.Planner {
	return exec.Planner{Est: exec.EstimatorFunc(e.ph.Estimate)}
}

// parseBounded resolves a query and enforces the build-time length bound.
func (e *Estimator) parseBounded(q string) (paths.Path, error) {
	p, err := e.gr.parsePath(q)
	if err != nil {
		return nil, err
	}
	if len(p) > e.cfg.MaxPathLength {
		return nil, fmt.Errorf("pathsel: path %q longer than MaxPathLength %d", q, e.cfg.MaxPathLength)
	}
	return p, nil
}

// planParsed costs every candidate plan once and picks the winner: the
// cheapest zig-zag plan, or — under Config.BushyPlans — the cheapest plan
// tree, which degenerates to the zig-zag winner whenever linear growth is
// estimated cheaper than every bushy split.
func (e *Estimator) planParsed(p paths.Path) QueryPlan {
	pl := e.planner()
	costs := pl.Costs(p)
	plan := exec.CheapestPlan(costs)
	qp := QueryPlan{
		Start:         plan.Start,
		Description:   plan.Describe(len(p)),
		EstimatedCost: costs[plan.Start],
		Costs:         costs,
	}
	if e.cfg.BushyPlans {
		tree, cost := pl.ChooseTreeWithCost(p)
		qp.Tree = tree
		if !tree.IsLeaf() {
			qp.Start = -1
			qp.Description = tree.Describe(len(p))
			qp.EstimatedCost = cost
		}
	}
	return qp
}

// PlanQuery chooses among the query's zig-zag join plans using this
// estimator's histogram, without executing anything. The returned
// QueryPlan carries the estimated cost of every candidate so the caller
// can inspect the margin.
func (e *Estimator) PlanQuery(q string) (QueryPlan, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return QueryPlan{}, err
	}
	return e.planParsed(p), nil
}

// ExecuteQuery plans q with the histogram and carries the chosen plan out
// on the hybrid execution engine, honoring Config.DensityThreshold,
// Config.Workers (join steps shard their source rows across that many
// work-stealing workers; results are bit-identical at every setting), and
// Config.BushyPlans (a chosen bushy tree builds its segments
// independently — in parallel when the worker budget allows — and joins
// them with the sharded relation×relation kernel). The
// returned stats hold the exact result count and the actual intermediate
// sizes, so estimate-driven plan quality is measurable against the ground
// truth. Unlike the histogram methods this touches the graph itself, with
// cost proportional to the intermediate volumes.
func (e *Estimator) ExecuteQuery(q string) (ExecStats, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return ExecStats{}, err
	}
	plan := e.planParsed(p)
	opt := exec.Options{DensityThreshold: e.cfg.DensityThreshold, Workers: e.cfg.Workers}
	var st exec.Stats
	if plan.Tree != nil {
		_, st = exec.ExecuteTree(e.gr.csr(), p, plan.Tree, opt)
	} else {
		_, st = exec.ExecutePlan(e.gr.csr(), p, exec.Plan{Start: plan.Start}, opt)
	}
	return ExecStats{
		Plan:          plan,
		Intermediates: st.Intermediates,
		Work:          st.Work,
		Result:        st.Result,
	}, nil
}
