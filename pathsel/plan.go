package pathsel

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/relcache"
)

// QueryPlan is the join strategy an Estimator chooses for a path query: a
// zig-zag plan that starts the join at one label position and grows both
// ways. A length-k query has k candidate plans; the estimator costs each
// as the sum of its estimated intermediate-result sizes and picks the
// cheapest, so histogram quality directly becomes plan quality.
type QueryPlan struct {
	// Start is the label position the join grows from: 0 is the classic
	// forward (left-to-right) join, k−1 the backward join, interior values
	// start at an estimated-selective label and grow both ways.
	Start int
	// Description is "forward", "backward", or "zigzag@i".
	Description string
	// EstimatedCost is the chosen plan's estimated total intermediate
	// volume (sum of estimated segment selectivities, in vertex pairs).
	EstimatedCost float64
	// Costs holds the estimate for every candidate zig-zag plan, indexed
	// by start position, so callers can see the spread the choice was
	// made over.
	Costs []float64
	// Tree is the chosen plan tree when Config.BushyPlans is set, nil
	// otherwise. A leaf tree is exactly the zig-zag plan the other fields
	// describe; a join-node tree is a bushy plan — then Start is −1,
	// Description renders the tree, and EstimatedCost is the tree's cost
	// (never higher than the best zig-zag candidate in Costs, since the
	// linear space is contained in the tree space).
	Tree *exec.PlanTree
}

// ExecStats reports an executed path query.
type ExecStats struct {
	// Plan is the strategy that was executed.
	Plan QueryPlan
	// Intermediates holds the actual distinct-pair count entering each
	// join step: len(path)−1 entries for a linear plan; for a bushy plan
	// every materialized segment relation, including both inputs of each
	// relation×relation join, in the executor's deterministic post-order.
	Intermediates []int64
	// Work is Σ Intermediates — the actual cost the planner tried to
	// minimize.
	Work int64
	// Result is the exact selectivity |ℓ(G)| of the query.
	Result int64
	// CacheHits and CacheMisses count the execution's segment-cache
	// traffic when a cache was in play (Config.CacheBytes, or any
	// ExecuteBatch run): a hit adopted a previously materialized segment
	// relation instead of recomputing it; a miss computed and published
	// one. On a whole-query hit, Intermediates is empty and Work 0 —
	// nothing intermediate was materialized.
	CacheHits, CacheMisses int
	// Sched reports the execution's work-stealing scheduler activity —
	// tasks run (total and per worker), steals, and parks. All-zero when
	// every join step ran sequentially (below the granularity floor, a
	// 1-worker config, or a whole-query cache hit): zeros mean "no
	// parallel work", not "no work". Steals and parks are the contention
	// signals worth watching in production.
	Sched exec.SchedStats
	// Degraded marks a partial result: the query was rejected by the
	// admission gate or killed mid-flight under Config.DegradeToEstimate,
	// and Result holds the rounded histogram estimate instead of the
	// exact selectivity. Intermediates/Work/cache counters are zero — the
	// degraded answer did not (or did not finish) touching the graph.
	Degraded bool
	// DegradedBy is the typed cause behind a degraded result
	// (ErrAdmissionDenied, ErrDeadlineExceeded, ErrBudgetExceeded, or
	// ErrCancelled); nil when Degraded is false.
	DegradedBy error
}

// planner builds the exec.Planner view over this estimator's histogram.
// With a cache and BushyPlans, the planner is cache-aware: segments whose
// relations are already materialized cost nothing to build, so warm
// workloads steer the DP toward bushy joins of reusable segments.
func (e *Estimator) planner(cache *relcache.Cache) exec.Planner {
	pl := exec.Planner{Est: exec.EstimatorFunc(e.ph.Estimate)}
	if cache != nil && e.cfg.BushyPlans {
		pl.Cached = func(p paths.Path) bool { return cache.Contains(p) }
	}
	return pl
}

// parseBounded resolves a query and enforces the build-time length bound.
func (e *Estimator) parseBounded(q string) (paths.Path, error) {
	p, err := e.gr.parsePath(q)
	if err != nil {
		return nil, err
	}
	if len(p) > e.cfg.MaxPathLength {
		return nil, fmt.Errorf("%w: %q exceeds %d", ErrPathTooLong, q, e.cfg.MaxPathLength)
	}
	return p, nil
}

// planParsed costs every candidate plan once and picks the winner: the
// cheapest zig-zag plan, or — under Config.BushyPlans — the cheapest plan
// tree, which degenerates to the zig-zag winner whenever linear growth is
// estimated cheaper than every bushy split.
func (e *Estimator) planParsed(p paths.Path, cache *relcache.Cache) QueryPlan {
	pl := e.planner(cache)
	costs := pl.Costs(p)
	plan := exec.CheapestPlan(costs)
	qp := QueryPlan{
		Start:         plan.Start,
		Description:   plan.Describe(len(p)),
		EstimatedCost: costs[plan.Start],
		Costs:         costs,
	}
	if e.cfg.BushyPlans {
		tree, cost := pl.ChooseTreeWithCost(p)
		qp.Tree = tree
		if !tree.IsLeaf() {
			qp.Start = -1
			qp.Description = tree.Describe(len(p))
			qp.EstimatedCost = cost
		}
	}
	return qp
}

// PlanQuery chooses among the query's join plans using this estimator's
// histogram, without executing anything: for a concrete path the
// zig-zag/bushy choice with the estimated cost of every candidate start
// so the caller can inspect the margin, for an RPQ pattern the planned
// DAG fold. It is a compile-per-call wrapper over Compile + Expr.Plan.
func (e *Estimator) PlanQuery(q string) (QueryPlan, error) {
	x, err := e.Compile(q)
	if err != nil {
		return QueryPlan{}, err
	}
	return x.Plan(), nil
}

// ExecuteQuery plans q with the histogram and carries the chosen plan out
// on the hybrid execution engine, honoring Config.DensityThreshold,
// Config.Workers (join steps shard their source rows across that many
// work-stealing workers; results are bit-identical at every setting), and
// Config.BushyPlans (a chosen bushy tree builds its segments
// independently — in parallel when the worker budget allows — and joins
// them with the sharded relation×relation kernel). The
// returned stats hold the exact result count and the actual intermediate
// sizes, so estimate-driven plan quality is measurable against the ground
// truth. Unlike the histogram methods this touches the graph itself, with
// cost proportional to the intermediate volumes.
//
// ExecuteQuery is ExecuteQueryCtx with a background context: the
// resource-policy knobs (Config.QueryTimeout, MaxResultBytes,
// MaxPlanCost, DegradeToEstimate) still apply; only external
// cancellation needs the Ctx form.
func (e *Estimator) ExecuteQuery(q string) (ExecStats, error) {
	return e.ExecuteQueryCtx(context.Background(), q)
}

// ExecuteQueryCtx is ExecuteQuery under a context: cancelling ctx (or
// passing one whose deadline expires) kills the query mid-flight — the
// abort reaches every join-step worker through the execution layer's
// cooperative flag within a bounded amount of kernel work, pooled
// relations are released, and the call returns ErrCancelled or
// ErrDeadlineExceeded (or a degraded estimate, under
// Config.DegradeToEstimate). Config.QueryTimeout, when set, is applied
// on top of ctx as a per-query deadline.
//
// q may be any RPQ pattern (see Compile), not just a concrete path; the
// call is a compile-per-call wrapper over Compile + Expr.ExecuteCtx, so
// repeated queries should compile once and execute the handle.
func (e *Estimator) ExecuteQueryCtx(ctx context.Context, q string) (ExecStats, error) {
	return e.ExecuteQueryCtxPolicy(ctx, q, ExecPolicy{})
}

// ExecuteQueryCtxPolicy is ExecuteQueryCtx under a per-call degradation
// policy (see ExecPolicy): the compile-per-call wrapper over Compile +
// Expr.ExecuteCtxPolicy. The zero policy makes it exactly
// ExecuteQueryCtx.
func (e *Estimator) ExecuteQueryCtxPolicy(ctx context.Context, q string, pol ExecPolicy) (ExecStats, error) {
	x, err := e.Compile(q)
	if err != nil {
		return ExecStats{}, err
	}
	return x.ExecuteCtxPolicy(ctx, pol)
}

// ExecPolicy is a per-call degradation policy, layered on top of the
// estimator-wide Config knobs by callers whose willingness to pay for
// exact answers varies request to request — a serving tier under load
// pressure (brownout) is the intended client. The zero value imposes
// nothing.
type ExecPolicy struct {
	// DegradeCostAbove, when > 0, degrades any query whose chosen plan's
	// EstimatedCost exceeds it: the call answers the rounded histogram
	// estimate before any graph access, marked Degraded with DegradedBy
	// = ErrBrownout. Unlike Config.DegradeToEstimate this does not
	// require a resource-policy kill and is independent of that flag —
	// the caller opted into estimate answers for expensive queries on
	// this call specifically.
	DegradeCostAbove float64
}

// degrades reports whether the policy degrades a plan of the given
// estimated cost.
func (pol ExecPolicy) degrades(plan QueryPlan) bool {
	return pol.DegradeCostAbove > 0 && plan.EstimatedCost > pol.DegradeCostAbove
}

// admissionBytesPerPair prices one projected vertex pair for the
// admission gate's size projection: a sparse row entry is a 4-byte id,
// doubled to absorb row headers and dense-promotion slack. Deliberately
// conservative — admission may overestimate and reject, never
// underestimate and then be caught anyway by the runtime budget check.
const admissionBytesPerPair = 8

// admit is the cost-based admission gate: it prices the chosen plan with
// the same histogram the planner used and rejects the query before any
// graph access when the estimated cost exceeds Config.MaxPlanCost, or
// when the projected peak relation size (the plan's estimated
// intermediate volume or the query's own estimated selectivity,
// whichever is larger, at admissionBytesPerPair) exceeds
// Config.MaxResultBytes.
func (e *Estimator) admit(plan QueryPlan, finalEst float64) error {
	if e.cfg.MaxPlanCost > 0 && plan.EstimatedCost > e.cfg.MaxPlanCost {
		return fmt.Errorf("%w: estimated plan cost %g exceeds MaxPlanCost %g",
			ErrAdmissionDenied, plan.EstimatedCost, e.cfg.MaxPlanCost)
	}
	if e.cfg.MaxResultBytes > 0 {
		proj := int64(math.Ceil(math.Max(plan.EstimatedCost, finalEst))) * admissionBytesPerPair
		if proj > e.cfg.MaxResultBytes {
			return fmt.Errorf("%w: projected relation size %d B exceeds MaxResultBytes %d B",
				ErrAdmissionDenied, proj, e.cfg.MaxResultBytes)
		}
	}
	return nil
}

// degradable reports whether an abort cause is a resource-policy kill
// that Config.DegradeToEstimate may soften into a histogram answer.
// Execution failures (contained panics) are excluded: those are bugs to
// surface, not load to shed.
func degradable(cause error) bool {
	return errors.Is(cause, ErrAdmissionDenied) || errors.Is(cause, ErrDeadlineExceeded) ||
		errors.Is(cause, ErrBudgetExceeded) || errors.Is(cause, ErrCancelled)
}

// degrade resolves a rejected or killed query: under
// Config.DegradeToEstimate (and a degradable cause) it answers with the
// rounded histogram estimate est, marked Degraded with the typed cause;
// otherwise the cause propagates as the error. est is passed in rather
// than recomputed so compiled RPQs degrade to their compile-time
// estimate.
func (e *Estimator) degrade(plan QueryPlan, est float64, cause error) (ExecStats, error) {
	if !e.cfg.DegradeToEstimate || !degradable(cause) {
		return ExecStats{Plan: plan}, cause
	}
	return degradeTo(plan, est, cause)
}

// degradeTo builds a degraded answer unconditionally: the rounded
// estimate, marked with the typed cause. Shared by Config-driven
// degradation (degrade) and policy-driven brownout, which bypasses the
// Config gate.
func degradeTo(plan QueryPlan, est float64, cause error) (ExecStats, error) {
	r := int64(math.Round(est))
	if r < 0 {
		r = 0
	}
	return ExecStats{Plan: plan, Result: r, Degraded: true, DegradedBy: cause}, nil
}

// executeParsed plans and executes one parsed query against the given
// (possibly nil) segment cache — the shared core of ExecuteQueryCtx and
// ExecuteBatchCtx. g is passed pre-frozen so concurrent batch workers
// never race on the lazy CSR freeze; canc carries the caller's
// cancellation signal into every kernel; pol is the caller's per-call
// degradation policy, checked before the admission gate so a brownout
// degrade costs one plan, never a graph access. The result relation is
// drawn from (and immediately returned to) the estimator's pool — only
// its counters survive into ExecStats.
func (e *Estimator) executeParsed(g *graph.CSR, p paths.Path, cache *relcache.Cache, workers int, canc *exec.Canceller, pol ExecPolicy) (ExecStats, error) {
	plan := e.planParsed(p, cache)
	est := e.ph.Estimate(p)
	if pol.degrades(plan) {
		return degradeTo(plan, est, ErrBrownout)
	}
	if err := e.admit(plan, est); err != nil {
		return e.degrade(plan, est, err)
	}
	opt := exec.Options{
		DensityThreshold: e.cfg.DensityThreshold,
		Workers:          workers,
		Cache:            cache,
		Cancel:           canc,
		MaxResultBytes:   e.cfg.MaxResultBytes,
		Pool:             e.pool,
	}
	var st exec.Stats
	var err error
	if plan.Tree != nil {
		var rel *bitset.HybridRelation
		rel, st, err = exec.ExecuteTreeChecked(g, p, plan.Tree, opt)
		e.pool.Put(rel)
	} else {
		var rel *bitset.HybridRelation
		rel, st, err = exec.ExecutePlanChecked(g, p, exec.Plan{Start: plan.Start}, opt)
		e.pool.Put(rel)
	}
	if err != nil {
		return e.degrade(plan, est, translateExecErr(err))
	}
	return ExecStats{
		Plan:          plan,
		Intermediates: st.Intermediates,
		Work:          st.Work,
		Result:        st.Result,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
		Sched:         st.Sched,
	}, nil
}
