package pathsel

import (
	"bytes"
	"testing"
)

// FuzzLoadEstimator asserts the synopsis decoder never panics on arbitrary
// bytes and that any blob it accepts answers queries without panicking.
func FuzzLoadEstimator(f *testing.F) {
	// Seed with a valid blob and mutations of it.
	g := NewGraph(4, []string{"a", "b"})
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	g.AddEdge(2, "a", 3)
	est, err := Build(g, Config{MaxPathLength: 2, Buckets: 3})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		ce, err := LoadEstimator(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loaded must answer queries robustly.
		for _, q := range []string{"a", "b", "a/b", "zzz"} {
			_, _ = ce.Estimate(q)
		}
		_ = ce.Labels()
		_ = ce.Buckets()
	})
}
