package pathsel

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestCompileErrors pins the parser's rejection surface: every malformed
// pattern fails with the right sentinel and a message naming the
// offending segment.
func TestCompileErrors(t *testing.T) {
	g := batchTestGraph(t, 1, 20, 3, 60)
	est, err := Build(g, Config{MaxPathLength: 3, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pattern string
		want    error
	}{
		{"", ErrEmptyPath},
		{"a//b", ErrBadPattern},   // empty segment
		{"?", ErrBadPattern},      // quantifier without atom
		{"{1,2}", ErrBadPattern},  // quantifier without atom
		{"(|)", ErrBadPattern},    // empty alternation branches
		{"(a|)", ErrBadPattern},   // trailing empty branch
		{"(a", ErrBadPattern},     // unclosed group
		{"a)", ErrBadPattern},     // misplaced parenthesis
		{"((a))", ErrBadPattern},  // nested group
		{"b{3,1}", ErrBadPattern}, // inverted bounds
		{"b{0,0}", ErrBadPattern}, // zero repetitions
		{"b{0}", ErrBadPattern},   // zero repetitions
		{"b{}", ErrBadPattern},    // empty bounds
		{"b{1,2,3}", ErrBadPattern},
		{"b{x}", ErrBadPattern},
		{"b{99999}", ErrBadPattern}, // count too long
		{"b{65}", ErrBadPattern},    // beyond MaxRepetition
		{"a}", ErrBadPattern},       // '}' without '{'
		{"a?", ErrBadPattern},       // whole pattern may match the empty path
		{"a?/b?", ErrBadPattern},
		{"zzz", ErrUnknownLabel},
		{"(a|zzz)", ErrUnknownLabel},
		{"a/b/c/a", ErrPathTooLong},  // concrete, beyond MaxPathLength 3
		{"a{1,4}", ErrPathTooLong},   // repetition reaches length 4
		{"a?/b/c/a", ErrPathTooLong}, // optional still reaches length 4
	}
	for _, tc := range cases {
		if _, err := est.Compile(tc.pattern); !errors.Is(err, tc.want) {
			t.Errorf("Compile(%q): err=%v, want %v", tc.pattern, err, tc.want)
		}
	}
	// Valid corners compile.
	for _, p := range []string{"a", "*", "a|b", "(a|b)", "a?/b", "b{1,3}", "(a|c){2}/b?", "*{1,2}/a"} {
		if _, err := est.Compile(p); err != nil {
			t.Errorf("Compile(%q): unexpected error %v", p, err)
		}
	}
}

// randomRPQPattern draws a random pattern over the label vocabulary:
// 1–3 segments mixing names, groups, wildcards, optionals, and bounded
// repetitions, re-drawn until 1 ≤ MinLen and MaxLen ≤ maxLen.
func randomRPQPattern(rng *rand.Rand, labels []string, maxLen int) string {
	for {
		var segs []string
		minLen, maxTot := 0, 0
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			var atom string
			switch rng.Intn(4) {
			case 0:
				atom = "*"
			case 1:
				a, b := labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))]
				atom = "(" + a + "|" + b + ")"
			default:
				atom = labels[rng.Intn(len(labels))]
			}
			lo, hi := 1, 1
			switch rng.Intn(4) {
			case 0:
				atom += "?"
				lo = 0
			case 1:
				hi = 1 + rng.Intn(2)
				lo = rng.Intn(hi) // may be 0
				atom += "{" + string(rune('0'+lo)) + "," + string(rune('0'+hi)) + "}"
			}
			segs = append(segs, atom)
			minLen += lo
			maxTot += hi
		}
		if minLen >= 1 && maxTot <= maxLen {
			return strings.Join(segs, "/")
		}
	}
}

// TestExprExecuteMatchesTrueSelectivity is the end-to-end property test:
// a compiled RPQ's execution result equals the exact set-semantics
// oracle (union of enumerated expansions) at every worker count, cold
// and warm, linear and bushy. Run with -race in CI this also exercises
// the shared-cache adoption path under concurrency.
func TestExprExecuteMatchesTrueSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := batchTestGraph(t, 7, 40, 3, 260)
	patterns := make([]string, 12)
	for i := range patterns {
		patterns[i] = randomRPQPattern(rng, g.Labels(), 4)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, bushy := range []bool{false, true} {
			est, err := Build(g, Config{
				MaxPathLength: 4, Buckets: 8,
				Workers: workers, BushyPlans: bushy, CacheBytes: 1 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range patterns {
				want, err := g.TruePatternSelectivity(p)
				if err != nil {
					t.Fatalf("oracle %q: %v", p, err)
				}
				x, err := est.Compile(p)
				if err != nil {
					t.Fatalf("Compile(%q): %v", p, err)
				}
				for pass := 0; pass < 2; pass++ { // cold then warm
					st, err := x.Execute()
					if err != nil {
						t.Fatalf("Execute(%q) workers=%d bushy=%v pass=%d: %v", p, workers, bushy, pass, err)
					}
					if st.Result != want {
						t.Fatalf("Execute(%q) workers=%d bushy=%v pass=%d: Result=%d, want %d",
							p, workers, bushy, pass, st.Result, want)
					}
				}
				// The string entry point answers identically.
				st, err := est.ExecuteQuery(p)
				if err != nil {
					t.Fatalf("ExecuteQuery(%q): %v", p, err)
				}
				if st.Result != want {
					t.Fatalf("ExecuteQuery(%q): Result=%d, want %d", p, st.Result, want)
				}
			}
		}
	}
}

// TestExecuteExprBatchMatchesExecute pins the parse-once batch: a batch
// of compiled handles answers bit-identically to per-handle Execute and
// to the string batch, at several worker counts.
func TestExecuteExprBatchMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := batchTestGraph(t, 11, 30, 3, 200)
	est, err := Build(g, Config{MaxPathLength: 4, Buckets: 8, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Query, 16)
	xs := make([]*Expr, len(queries))
	want := make([]int64, len(queries))
	for i := range queries {
		p := randomRPQPattern(rng, g.Labels(), 4)
		queries[i] = Query(p)
		x, err := est.Compile(p)
		if err != nil {
			t.Fatalf("Compile(%q): %v", p, err)
		}
		xs[i] = x
		if want[i], err = g.TruePatternSelectivity(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		br, err := est.ExecuteExprBatch(xs, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sr, err := est.ExecuteBatch(queries, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if br.Results[i].Err != nil || sr.Results[i].Err != nil {
				t.Fatalf("query %d: errs %v / %v", i, br.Results[i].Err, sr.Results[i].Err)
			}
			if br.Results[i].Result != want[i] {
				t.Fatalf("expr batch workers=%d query %q: Result=%d, want %d",
					workers, queries[i], br.Results[i].Result, want[i])
			}
			if sr.Results[i].Result != want[i] {
				t.Fatalf("string batch workers=%d query %q: Result=%d, want %d",
					workers, queries[i], sr.Results[i].Result, want[i])
			}
			if br.Results[i].Query != queries[i] {
				t.Fatalf("expr batch query %d echoes %q, want %q", i, br.Results[i].Query, queries[i])
			}
		}
	}
}

// TestExecuteExprBatchValidation pins the fail-fast checks on compiled
// batches: nil handles and handles compiled by a different estimator are
// rejected upfront, naming the offending index.
func TestExecuteExprBatchValidation(t *testing.T) {
	g := batchTestGraph(t, 3, 20, 3, 80)
	est, err := Build(g, Config{MaxPathLength: 3, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	other, err := Build(g, Config{MaxPathLength: 3, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	x, err := est.Compile("a/b")
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.Compile("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.ExecuteExprBatch([]*Expr{x, nil}, BatchOptions{}); !errors.Is(err, ErrBadPattern) || !strings.Contains(err.Error(), "query 1") {
		t.Fatalf("nil handle: err=%v, want ErrBadPattern naming query 1", err)
	}
	if _, err := est.ExecuteExprBatch([]*Expr{foreign}, BatchOptions{}); !errors.Is(err, ErrBadPattern) || !strings.Contains(err.Error(), "different estimator") {
		t.Fatalf("foreign handle: err=%v, want ErrBadPattern (different estimator)", err)
	}
}

// TestCompileEstimateMatchesEstimatePattern pins that the compiled
// handle's Estimate is exactly what the string entry point reports, and
// that enumerable patterns get the expansion-sum (bag-semantics)
// estimate: the sum of Estimate over the pattern's concrete paths.
// (Exactness under a singleton-bucket budget is pinned separately by
// TestEstimatePatternExactBudget.)
func TestCompileEstimateMatchesEstimatePattern(t *testing.T) {
	g := batchTestGraph(t, 5, 25, 3, 120)
	est, err := Build(g, Config{MaxPathLength: 3, Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		pattern    string
		expansions []string
	}{
		{"a", []string{"a"}},
		{"a/(b|c)", []string{"a/b", "a/c"}},
		{"a?/b", []string{"b", "a/b"}},
		{"b{1,3}", []string{"b", "b/b", "b/b/b"}},
		{"*/a", []string{"a/a", "b/a", "c/a"}},
	} {
		x, err := est.Compile(tc.pattern)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tc.pattern, err)
		}
		got, err := est.EstimatePattern(tc.pattern)
		if err != nil {
			t.Fatal(err)
		}
		if got != x.Estimate() {
			t.Fatalf("EstimatePattern(%q)=%f != Expr.Estimate()=%f", tc.pattern, got, x.Estimate())
		}
		var want float64
		for _, q := range tc.expansions {
			e, err := est.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			want += e
		}
		if got != want {
			t.Fatalf("EstimatePattern(%q)=%f, want expansion sum %f", tc.pattern, got, want)
		}
	}
}

// FuzzRPQParse fuzzes the pattern grammar: Compile must never panic, and
// any pattern it accepts must expose coherent bounds, a plan, and a
// finite estimate.
func FuzzRPQParse(f *testing.F) {
	g := batchTestGraph(f, 13, 20, 3, 80)
	est, err := Build(g, Config{MaxPathLength: 4, Buckets: 4})
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range []string{
		"a", "a/b/c", "a/(b|c)/a?/b{1,3}", "*", "a|b", "(|)", "b{3,1}",
		"((a))", "(a", "a)", "a?", "{0,0}", "a//b", "b{65}", "a}b{",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		x, err := est.Compile(pattern)
		if err != nil {
			return
		}
		if x.MinLen() < 1 || x.MaxLen() < x.MinLen() || x.MaxLen() > 4 {
			t.Fatalf("Compile(%q): bounds [%d,%d] out of range", pattern, x.MinLen(), x.MaxLen())
		}
		if x.Estimate() < 0 {
			t.Fatalf("Compile(%q): negative estimate %f", pattern, x.Estimate())
		}
		if x.Plan().Description == "" {
			t.Fatalf("Compile(%q): empty plan description", pattern)
		}
	})
}
