package pathsel

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/relcache"
)

// DefaultCacheBytes is the segment-relation cache budget ExecuteBatch
// uses when neither Config.CacheBytes nor BatchOptions.CacheBytes set
// one (64 MiB).
const DefaultCacheBytes = relcache.DefaultMaxBytes

// Query is one path query of a batch workload: any RPQ pattern
// ExecuteQuery accepts (e.g. "knows/likes/knows",
// "knows/(likes|follows)/knows?", "knows{1,3}").
type Query string

// Queries converts a list of query strings into a batch workload.
func Queries(qs ...string) []Query {
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = Query(q)
	}
	return out
}

// BatchOptions tunes one ExecuteBatch call.
type BatchOptions struct {
	// Workers is the number of queries executed concurrently (≤ 0 or 1
	// runs the batch sequentially). Per-query results are bit-identical
	// at every setting — concurrent queries share only the thread-safe
	// segment cache, and adopting a cached relation is indistinguishable
	// from recomputing it — so this is a throughput knob, not a semantic
	// one. When Workers > 1, each query's own join steps run
	// single-threaded (the batch already saturates the cores with whole
	// queries); at Workers ≤ 1 each query parallelizes its join steps
	// across Config.Workers as ExecuteQuery does.
	Workers int
	// CacheBytes chooses the batch's segment cache: > 0 runs the batch
	// on a fresh private cache of that byte budget; 0 shares the
	// estimator's persistent cache (Config.CacheBytes), falling back to
	// a fresh DefaultCacheBytes-sized private cache when the estimator
	// has none; < 0 disables caching entirely — the cold-baseline mode
	// the cache benchmark measures against.
	CacheBytes int64
	// CacheShards is the shard count of a batch-private cache (≤ 0
	// selects the default). Ignored when the batch shares the
	// estimator's cache.
	CacheShards int
	// Policy is the per-call degradation policy applied to every query
	// of the batch (see ExecPolicy); the zero value imposes nothing. A
	// brownout-degraded entry carries a nil Err with
	// ExecStats.DegradedBy = ErrBrownout, like any degraded answer.
	Policy ExecPolicy
}

// CacheStats reports a segment-relation cache's counters: cumulative
// traffic (hits, misses, puts, evictions, rejected oversize entries) and
// current occupancy (entries, bytes, budget).
type CacheStats struct {
	Hits, Misses, Puts, Evictions, Rejected uint64
	Entries                                 int
	Bytes, MaxBytes                         int64
	// Shards is the cache's shard count; LockWaitNs is the cumulative
	// time callers spent blocked on shard locks (zero when uncontended —
	// the read-mostly locking means warm concurrent readers should keep
	// it near zero, which is exactly what it exists to verify).
	Shards     int
	LockWaitNs int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cacheStatsOf converts the internal counters to the public mirror.
func cacheStatsOf(c *relcache.Cache) CacheStats {
	st := c.Stats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Puts: st.Puts,
		Evictions: st.Evictions, Rejected: st.Rejected,
		Entries: st.Entries, Bytes: st.Bytes, MaxBytes: st.MaxBytes,
		Shards: st.Shards, LockWaitNs: st.LockWaitNs,
	}
}

// BatchQueryResult is one query's outcome within a batch.
type BatchQueryResult struct {
	// Query is the workload entry this result answers.
	Query Query
	// ExecStats is exactly what ExecuteQuery would report, including the
	// query's own CacheHits/CacheMisses against the shared cache.
	ExecStats
	// Err is this query's execution outcome: nil on success (including a
	// degraded answer — see ExecStats.Degraded), or the typed cause of a
	// per-query kill (ErrDeadlineExceeded, ErrBudgetExceeded,
	// ErrAdmissionDenied, ErrCancelled, ErrExecutionFailed). A per-query
	// failure never aborts the rest of the batch; batch-wide abort is the
	// caller's context's job.
	Err error
}

// BatchResult is a whole workload's outcome.
type BatchResult struct {
	// Results holds one entry per input query, in input order.
	Results []BatchQueryResult
	// Cache snapshots the batch's segment cache after the last query
	// (zero-valued when the batch ran uncached). For a batch on the
	// estimator's persistent cache the counters are cumulative across
	// batches, not per-batch.
	Cache CacheStats
	// Cached reports whether a segment cache was in play at all.
	Cached bool
}

// CacheStats exposes the estimator's persistent segment cache counters
// (Config.CacheBytes). The second return is false when the estimator has
// no persistent cache.
func (e *Estimator) CacheStats() (CacheStats, bool) {
	if e.cache == nil {
		return CacheStats{}, false
	}
	return cacheStatsOf(e.cache), true
}

// ExecuteBatch plans and executes a whole workload of path queries
// through one shared segment-relation cache, so label subsequences that
// recur across the workload are materialized once and adopted everywhere
// else — the amortization a per-query ExecuteQuery loop cannot get
// (unless the estimator itself holds a persistent cache via
// Config.CacheBytes, which ExecuteBatch then reuses and keeps warming).
//
// Every query is validated before anything executes, so a malformed
// workload fails fast without partial results. Per-query results are
// bit-identical to ExecuteQuery at every BatchOptions.Workers setting
// and any cache state — caching and concurrency affect only throughput
// and the per-query CacheHits/CacheMisses accounting. With
// Config.BushyPlans set, plan *choice* is cache-aware (cached segments
// are free to build), so a warm cache may pick different — cheaper —
// plans than a cold one; the results stay identical because every plan
// computes the same relation.
func (e *Estimator) ExecuteBatch(queries []Query, opt BatchOptions) (*BatchResult, error) {
	return e.ExecuteBatchCtx(context.Background(), queries, opt)
}

// ExecuteBatchCtx is ExecuteBatch under a context. Cancelling ctx stops
// the batch promptly: in-flight queries are killed through the same
// cooperative cancellation path as ExecuteQueryCtx, no further query
// starts executing, and every unexecuted entry comes back with Err set
// to ErrCancelled (or ErrDeadlineExceeded, when ctx died of a deadline)
// — the returned BatchResult is complete either way, with per-entry Err
// recording each query's fate. Config.QueryTimeout additionally bounds
// each query individually, and under Config.DegradeToEstimate killed or
// rejected queries degrade to histogram answers instead of carrying an
// Err.
func (e *Estimator) ExecuteBatchCtx(ctx context.Context, queries []Query, opt BatchOptions) (*BatchResult, error) {
	xs := make([]*Expr, len(queries))
	for i, q := range queries {
		x, err := e.Compile(string(q))
		if err != nil {
			return nil, fmt.Errorf("pathsel: batch query %d: %w", i, err)
		}
		xs[i] = x
	}
	return e.ExecuteExprBatchCtx(ctx, xs, opt)
}

// ExecuteExprBatch executes a workload of pre-compiled queries — the
// parse-once counterpart of ExecuteBatch, for workloads that repeat: a
// serving layer compiles its query set once and hands the same handles
// to every batch, so nothing is reparsed or re-validated per round.
// Every Expr must have been compiled by this estimator; a nil or
// foreign handle fails the whole batch before anything executes.
func (e *Estimator) ExecuteExprBatch(exprs []*Expr, opt BatchOptions) (*BatchResult, error) {
	return e.ExecuteExprBatchCtx(context.Background(), exprs, opt)
}

// ExecuteExprBatchCtx is ExecuteExprBatch under a context, with the
// same cancellation semantics as ExecuteBatchCtx.
func (e *Estimator) ExecuteExprBatchCtx(ctx context.Context, exprs []*Expr, opt BatchOptions) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for i, x := range exprs {
		switch {
		case x == nil:
			return nil, fmt.Errorf("pathsel: batch query %d: %w: nil compiled query", i, ErrBadPattern)
		case x.est != e:
			return nil, fmt.Errorf("pathsel: batch query %d: %w: compiled by a different estimator", i, ErrBadPattern)
		}
	}

	var cache *relcache.Cache
	switch {
	case opt.CacheBytes > 0:
		cache = relcache.New(relcache.Options{MaxBytes: opt.CacheBytes, Shards: opt.CacheShards})
	case opt.CacheBytes == 0 && e.cache != nil:
		cache = e.cache
	case opt.CacheBytes == 0:
		cache = relcache.New(relcache.Options{MaxBytes: DefaultCacheBytes, Shards: opt.CacheShards})
	}

	g := e.gr.csr() // freeze once, before any worker goroutine exists
	res := &BatchResult{Results: make([]BatchQueryResult, len(exprs))}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(exprs) {
		workers = len(exprs)
	}
	queryWorkers := e.cfg.Workers
	if workers > 1 {
		queryWorkers = 1
	}
	runOne := func(i int) {
		// A dead batch context stops issuing work: remaining entries are
		// marked with the batch's abort cause without touching the graph.
		if err := ctx.Err(); err != nil {
			res.Results[i] = BatchQueryResult{Query: Query(exprs[i].pattern), Err: translateCtxErr(err)}
			return
		}
		qctx, qcancel := ctx, context.CancelFunc(func() {})
		if e.cfg.QueryTimeout > 0 {
			qctx, qcancel = context.WithTimeout(ctx, e.cfg.QueryTimeout)
		}
		canc, release := newQueryCanceller(qctx)
		st, err := e.executeExpr(g, exprs[i], cache, queryWorkers, canc, opt.Policy)
		release()
		qcancel()
		res.Results[i] = BatchQueryResult{Query: Query(exprs[i].pattern), ExecStats: st, Err: err}
	}
	if workers <= 1 {
		for i := range exprs {
			runOne(i)
		}
	} else {
		// Simple fan-out: workers drain a shared index stream. Each
		// result lands in its own slot, so no two goroutines write the
		// same memory.
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runOne(i)
				}
			}()
		}
		for i := range exprs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	if cache != nil {
		res.Cache = cacheStatsOf(cache)
		res.Cached = true
	}
	return res, nil
}
