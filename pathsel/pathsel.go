// Package pathsel is the public API and top layer of the reproduction
// (graph → bitset → paths → exec → pathsel): histogram-based selectivity
// estimation for label-path queries on directed edge-labeled graphs, with
// the histogram domain arranged by a configurable ordering method (the
// contribution of Yakovets et al., "Histogram Domain Ordering for Path
// Selectivity Estimation", EDBT 2018). Beyond estimation it exposes the
// end-to-end loop the paper motivates: PlanQuery chooses among a query's
// zig-zag join plans from histogram estimates, and ExecuteQuery carries
// the chosen plan out on the hybrid execution engine.
//
// Typical use:
//
//	g := pathsel.NewGraph(numVertices, []string{"knows", "likes"})
//	g.AddEdge(0, "knows", 1)
//	...
//	est, err := pathsel.Build(g, pathsel.Config{
//	    MaxPathLength: 3,
//	    Ordering:      pathsel.OrderingSumBased,
//	    Buckets:       256,
//	})
//	sel, err := est.Estimate("knows/likes")
//
// # Performance
//
// Build's dominant cost is the exact selectivity census: a DFS over the
// label trie that extends each prefix's vertex-pair relation by one label
// via relational composition. The census runs on a hybrid sparse/dense
// engine: each relation row (the target set of one source vertex) starts
// as a sorted sparse id list and promotes to a dense bit array once its
// population exceeds DensityThreshold × |V| (default 1/32, the memory
// crossover point between the two forms); compose kernels are specialized
// per representation (sparse rows scatter through the graph's CSR
// adjacency, dense rows union precomputed successor bit sets
// word-parallel). Relations are pooled per worker so the steady-state DFS
// allocates nothing, and subtrees are distributed by a work-stealing
// scheduler that splits at any trie depth, so skewed label distributions
// scale past |L| workers.
//
// Knobs (Config): Workers is the goroutine count of every parallel stage
// (≤ 0 means GOMAXPROCS) — the census, where workers are not capped at
// the label count, and ExecuteQuery's join steps, which shard source rows
// across the same work-stealing substrate (internal/sched).
// DensityThreshold is the sparse→dense promotion point as a fraction of
// |V| in (0, 1] (≤ 0 selects the 1/32 default; ≥ 1 keeps every row
// sparse); it governs both the census and ExecuteQuery's join relations.
// The census subtree split granularity (paths.CensusOptions.SplitPairs,
// default 128 pairs) is fixed at its default here. Every setting produces
// bit-identical results — these are performance knobs only.
package pathsel

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/ordering"
	"repro/internal/paths"
	"repro/internal/relcache"
)

// Ordering method names.
const (
	OrderingNumAlph  = ordering.MethodNumAlph
	OrderingNumCard  = ordering.MethodNumCard
	OrderingLexAlph  = ordering.MethodLexAlph
	OrderingLexCard  = ordering.MethodLexCard
	OrderingSumBased = ordering.MethodSumBased
)

// Histogram builder names.
const (
	HistogramVOptimal  = core.BuilderVOptimal
	HistogramEquiWidth = core.BuilderEquiWidth
	HistogramEquiDepth = core.BuilderEquiDepth
	HistogramMaxDiff   = core.BuilderMaxDiff
)

// Orderings returns the five ordering method names in the paper's order.
func Orderings() []string { return ordering.PaperMethods() }

// Graph is a directed edge-labeled graph under construction. Vertices are
// dense integers [0, NumVertices); labels are referenced by name.
type Graph struct {
	g      *graph.Graph
	frozen *graph.CSR
}

// NewGraph returns an empty graph with the given vertex count and label
// vocabulary. It panics on an empty vocabulary; NewGraphChecked is the
// error-returning form.
func NewGraph(numVertices int, labels []string) *Graph {
	gr, err := NewGraphChecked(numVertices, labels)
	if err != nil {
		panic(err.Error())
	}
	return gr
}

// NewGraphChecked is NewGraph returning a typed error instead of
// panicking: an empty label vocabulary yields ErrNoLabels.
func NewGraphChecked(numVertices int, labels []string) (*Graph, error) {
	if len(labels) == 0 {
		return nil, ErrNoLabels
	}
	g := graph.New(numVertices, len(labels))
	for i, name := range labels {
		g.SetLabelName(i, name)
	}
	return &Graph{g: g}, nil
}

// LoadEdgeList reads a whitespace-separated `src dst label` edge list
// (lines starting with % or # are comments).
func LoadEdgeList(r io.Reader) (*Graph, error) {
	g, err := dataset.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// AddEdge inserts a directed labeled edge. It returns an error for unknown
// labels or out-of-range vertices (and reports duplicate edges as a no-op
// false).
func (gr *Graph) AddEdge(src int, label string, dst int) (bool, error) {
	l := gr.g.LabelByName(label)
	if l < 0 {
		return false, fmt.Errorf("%w %q", ErrUnknownLabel, label)
	}
	if src < 0 || src >= gr.g.NumVertices() || dst < 0 || dst >= gr.g.NumVertices() {
		return false, fmt.Errorf("%w: edge (%d,%d) outside [0,%d)",
			ErrVertexRange, src, dst, gr.g.NumVertices())
	}
	gr.frozen = nil
	return gr.g.AddEdge(src, l, dst), nil
}

// NumVertices returns |V|.
func (gr *Graph) NumVertices() int { return gr.g.NumVertices() }

// NumEdges returns |E|.
func (gr *Graph) NumEdges() int { return gr.g.NumEdges() }

// Labels returns the label vocabulary.
func (gr *Graph) Labels() []string {
	out := make([]string, gr.g.NumLabels())
	for i := range out {
		out[i] = gr.g.LabelName(i)
	}
	return out
}

// WriteEdgeList writes the graph in the loader's format.
func (gr *Graph) WriteEdgeList(w io.Writer) error {
	return dataset.WriteEdgeList(w, gr.g)
}

// csr freezes (and caches) the CSR form.
func (gr *Graph) csr() *graph.CSR {
	if gr.frozen == nil {
		gr.frozen = gr.g.Freeze()
	}
	return gr.frozen
}

// parsePath resolves a "a/b/c" label-name path against the graph.
func (gr *Graph) parsePath(q string) (paths.Path, error) {
	if q == "" {
		return nil, ErrEmptyPath
	}
	var p paths.Path
	start := 0
	for i := 0; i <= len(q); i++ {
		if i == len(q) || q[i] == '/' {
			name := q[start:i]
			l := gr.g.LabelByName(name)
			if l < 0 {
				return nil, fmt.Errorf("%w %q in path %q", ErrUnknownLabel, name, q)
			}
			p = append(p, l)
			start = i + 1
		}
	}
	return p, nil
}

// TrueSelectivity evaluates the path query exactly: the number of distinct
// vertex pairs connected by the label path (slash-separated label names).
func (gr *Graph) TrueSelectivity(q string) (int64, error) {
	p, err := gr.parsePath(q)
	if err != nil {
		return 0, err
	}
	return paths.Selectivity(gr.csr(), p), nil
}

// Config parameterizes Build.
type Config struct {
	// MaxPathLength is k, the maximum label-path length covered (≥ 1).
	MaxPathLength int
	// Ordering is the domain ordering method (default OrderingSumBased).
	Ordering string
	// Histogram is the bucket builder (default HistogramVOptimal).
	Histogram string
	// Buckets is the bucket budget β (≥ 1).
	Buckets int

	// Workers is the worker-goroutine count of every parallel stage (≤ 0
	// means GOMAXPROCS): the census — a work-stealing scheduler that
	// splits label-trie subtrees at any depth, so worker counts above the
	// label count still help on skewed label distributions — and
	// ExecuteQuery's join steps, which shard each intermediate relation's
	// source rows across the same scheduling substrate. Results are
	// bit-identical at every setting. GOMAXPROCS is re-read at use time
	// (sched.WorkerCount), and each layer clamps the count to the most
	// tasks its workload can produce — asking for more workers than a
	// graph has shardable rows configures nothing but idle goroutines,
	// so the executor refuses to start them.
	Workers int
	// DensityThreshold tunes the census's hybrid relation rows: a row
	// (the target set of one source vertex) is kept as a sorted sparse id
	// list until its population exceeds DensityThreshold × |V|, then
	// promotes to a dense bit array. ≤ 0 selects the default (1/32, the
	// memory crossover between the two forms); ≥ 1 keeps every row
	// sparse. Purely a performance knob — results are identical at any
	// setting.
	DensityThreshold float64
	// BushyPlans widens PlanQuery/ExecuteQuery's search from the k linear
	// zig-zag plans to the full bushy plan-tree space: a dynamic program
	// enumerates every way to split the query into independently built
	// segments joined pairwise (relation×relation), costing interior
	// segments from the histogram, and falls back to the best zig-zag
	// plan whenever linear growth is estimated cheaper. Every plan
	// produces identical results — this knob only changes which plan is
	// chosen, and so how much intermediate work execution does.
	BushyPlans bool
	// CacheBytes, when > 0, gives the estimator a persistent
	// segment-relation cache of that byte budget (internal/relcache):
	// every ExecuteQuery and ExecuteBatch call then reuses label-segment
	// relations materialized by earlier queries instead of recomputing
	// them, trading memory for workload throughput. The cache is bound
	// to this estimator's graph. 0 leaves per-query execution uncached
	// (ExecuteBatch still runs each batch through its own
	// DefaultCacheBytes-sized cache). Caching never changes results —
	// adopted relations are bit-identical to recomputed ones — though
	// with BushyPlans set it can change which plan is chosen (cached
	// segments cost nothing to build, so warm workloads favor bushy
	// joins of reusable segments).
	CacheBytes int64
	// CacheShards is the cache's shard count (≤ 0 selects an
	// 8-shard default). Shards bound lock contention when ExecuteBatch
	// runs queries concurrently; each shard owns an equal slice of
	// CacheBytes.
	CacheShards int

	// QueryTimeout, when > 0, bounds each executed query's wall-clock
	// time: ExecuteQuery, ExecuteQueryCtx, and every query of a batch
	// run under a per-query deadline of this duration (intersected with
	// any caller-supplied context deadline). A query killed by the
	// timeout returns ErrDeadlineExceeded — or degrades to the histogram
	// estimate under DegradeToEstimate. Estimation-only methods
	// (Estimate, EstimatePrefix) never need it: they are a constant-time
	// histogram lookup.
	QueryTimeout time.Duration
	// MaxResultBytes, when > 0, bounds the memory of every relation a
	// query materializes (content bytes, the relation cache's measure).
	// It acts twice: at admission, queries whose histogram-projected
	// peak relation would exceed the budget are rejected with
	// ErrAdmissionDenied before touching the graph; and at runtime,
	// every materialized relation is priced after its join step and the
	// query is killed with ErrBudgetExceeded the moment one outgrows the
	// budget.
	MaxResultBytes int64
	// MaxPlanCost, when > 0, is the admission gate on estimated plan
	// cost: a query whose cheapest plan's estimated total intermediate
	// volume (QueryPlan.EstimatedCost, in vertex pairs) exceeds it is
	// rejected with ErrAdmissionDenied before execution. Because the
	// gate prices the plan with the same histogram the planner uses, its
	// cost is one plan search — no graph access.
	MaxPlanCost float64
	// DegradeToEstimate turns rejected and killed queries into degraded
	// answers instead of errors: when a query is refused by the
	// admission gate or aborted mid-flight (deadline, budget, context
	// cancellation), ExecuteQuery returns the rounded histogram estimate
	// in ExecStats.Result with ExecStats.Degraded set and the typed
	// cause in ExecStats.DegradedBy, and a nil error. Execution
	// *failures* (a contained panic, ErrExecutionFailed) still error:
	// degradation is for resource policy, not for masking bugs.
	DegradeToEstimate bool
}

func (c *Config) fill() error {
	if c.Ordering == "" {
		c.Ordering = OrderingSumBased
	}
	if c.Histogram == "" {
		c.Histogram = HistogramVOptimal
	}
	if c.MaxPathLength < 1 {
		return fmt.Errorf("%w: MaxPathLength must be ≥ 1, got %d", ErrBadConfig, c.MaxPathLength)
	}
	if c.Buckets < 1 {
		return fmt.Errorf("%w: Buckets must be ≥ 1, got %d", ErrBadConfig, c.Buckets)
	}
	if c.QueryTimeout < 0 {
		return fmt.Errorf("%w: QueryTimeout must be ≥ 0, got %v", ErrBadConfig, c.QueryTimeout)
	}
	return nil
}

// Estimator answers approximate path-selectivity queries from a compact
// histogram, without access to the original distribution.
type Estimator struct {
	gr     *Graph
	ph     *core.PathHistogram
	census *paths.Census
	cfg    Config
	cache  *relcache.Cache // persistent segment-relation cache; nil unless Config.CacheBytes > 0
	pool   *exec.RelPool   // shared relation free list; abort paths drain back into it
}

// Build computes the exact selectivity distribution of all label paths up
// to cfg.MaxPathLength, arranges it with the configured ordering, and
// compresses it into a β-bucket histogram.
func Build(gr *Graph, cfg Config) (*Estimator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ph, census, err := core.BuildForGraphOptions(gr.csr(), cfg.Ordering, cfg.Histogram,
		cfg.MaxPathLength, cfg.Buckets,
		paths.CensusOptions{Workers: cfg.Workers, DensityThreshold: cfg.DensityThreshold})
	if err != nil {
		return nil, err
	}
	e := &Estimator{gr: gr, ph: ph, census: census, cfg: cfg}
	// One relation pool for the estimator's lifetime: every ExecuteQuery /
	// ExecuteBatch draws its materialized relations here and releases them
	// on completion and on every abort path, so cancelled queries leave no
	// orphaned buffers behind (and warm workloads stop allocating).
	e.pool = exec.NewRelPool(gr.NumVertices(), cfg.DensityThreshold)
	if cfg.CacheBytes > 0 {
		e.cache = relcache.New(relcache.Options{MaxBytes: cfg.CacheBytes, Shards: cfg.CacheShards})
	}
	return e, nil
}

// Estimate returns e(ℓ) for a slash-separated label-name path, e.g.
// "knows/likes/knows".
func (e *Estimator) Estimate(q string) (float64, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return 0, err
	}
	return e.ph.Estimate(p), nil
}

// EstimatePrefix answers a prefix wildcard query "p/*": the estimated
// total selectivity of the path and every extension of it up to
// MaxPathLength, answered as one histogram range query. Requires a
// lexicographic ordering (OrderingLexAlph or OrderingLexCard) — the only
// domain layout in which a prefix's extensions are contiguous.
func (e *Estimator) EstimatePrefix(q string) (float64, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return 0, err
	}
	return e.ph.EstimatePrefix(p)
}

// TruePrefixSelectivity returns the exact aggregate selectivity of the
// path and all of its extensions, from the build-time ground truth.
func (e *Estimator) TruePrefixSelectivity(q string) (int64, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return 0, err
	}
	return e.census.PrefixSelectivity(p), nil
}

// TrueSelectivity returns the exact f(ℓ) recorded at build time.
func (e *Estimator) TrueSelectivity(q string) (int64, error) {
	p, err := e.parseBounded(q)
	if err != nil {
		return 0, err
	}
	return e.census.Selectivity(p), nil
}

// Accuracy reports estimation quality over the entire path domain.
type Accuracy struct {
	// MeanErrorRate is the mean |err(ℓ)| of the paper's Eq. 6 metric.
	MeanErrorRate float64
	// MeanQError is the mean q-error.
	MeanQError float64
	// MaxAbsError is the worst |err(ℓ)|.
	MaxAbsError float64
	// Paths is |Lk|, the number of queries evaluated.
	Paths int64
}

// Evaluate measures the estimator against its build-time ground truth.
func (e *Estimator) Evaluate() Accuracy {
	ev := core.Evaluate(e.ph, e.census)
	return Accuracy{
		MeanErrorRate: ev.MeanErrorRate,
		MeanQError:    ev.MeanQError,
		MaxAbsError:   ev.MaxAbsError,
		Paths:         e.census.Size(),
	}
}

// Buckets returns the realized bucket count of the histogram.
func (e *Estimator) Buckets() int { return e.ph.Buckets() }

// Ordering returns the ordering method in use.
func (e *Estimator) Ordering() string { return e.ph.Ordering().Name() }

// DomainSize returns |Lk|.
func (e *Estimator) DomainSize() int64 { return e.census.Size() }

// Labels returns the estimator's graph's label vocabulary — what a
// serving tier advertises so clients can form valid queries.
func (e *Estimator) Labels() []string { return e.gr.Labels() }

// MaxPathLength returns the build-time length bound k: the longest
// query Estimate/ExecuteQuery accept.
func (e *Estimator) MaxPathLength() int { return e.cfg.MaxPathLength }
