// Package repro_test is the benchmark harness of the reproduction: one
// benchmark per table and figure of the paper (see DESIGN.md §5 for the
// experiment index), plus ablation benches for the design choices called
// out in DESIGN.md §6.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Accuracy benches report the paper's metric as the custom unit
// "err_rate/op" (mean |err(ℓ)| of Eq. 6); timing benches report the usual
// ns/op. Fixtures run at reduced dataset scale (same code paths, smaller
// graphs — DESIGN.md §4); the cmd/experiments binary with -full reproduces
// the published parameters.
package repro_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/histogram"
	"repro/internal/ordering"
	"repro/internal/paths"
)

// fixture caches a generated graph and its census per (dataset, k, scale).
type fixture struct {
	g      *graph.CSR
	census *paths.Census
}

var (
	fixMu  sync.Mutex
	fixMap = map[string]*fixture{}
)

func getFixture(b *testing.B, specIdx, k int, scale float64) *fixture {
	b.Helper()
	key := fmt.Sprintf("%d/%d/%v", specIdx, k, scale)
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixMap[key]; ok {
		return f
	}
	g := dataset.Generate(dataset.Table3()[specIdx], scale, 1).Freeze()
	f := &fixture{g: g, census: paths.NewCensus(g, k)}
	fixMap[key] = f
	return f
}

// BenchmarkTable2Orderings pins the §3.4 worked example (Tables 1 and 2):
// it measures rank+unrank round trips over the 12-path example domain for
// each ordering method and verifies the Table 2 layout on every run.
func BenchmarkTable2Orderings(b *testing.B) {
	names := []string{"1", "2", "3"}
	freq := []int64{20, 100, 80}
	alph := ordering.AlphabeticalRanking(names)
	card := ordering.CardinalityRanking(freq)
	ords := map[string]ordering.Ordering{
		ordering.MethodNumAlph:  ordering.NewNumerical(alph, 2),
		ordering.MethodNumCard:  ordering.NewNumerical(card, 2),
		ordering.MethodLexAlph:  ordering.NewLexicographic(alph, 2),
		ordering.MethodLexCard:  ordering.NewLexicographic(card, 2),
		ordering.MethodSumBased: ordering.NewSumBased(card, 2),
	}
	for _, method := range ordering.PaperMethods() {
		ord := ords[method]
		b.Run(method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for idx := int64(0); idx < ord.Size(); idx++ {
					p := ord.Path(idx)
					if ord.Index(p) != idx {
						b.Fatal("bijection violated")
					}
				}
			}
		})
	}
}

// BenchmarkFigure1Distribution regenerates the Figure 1 data: the Moreno
// Health k=3 distribution in num-alph order with an equi-width histogram
// over it.
func BenchmarkFigure1Distribution(b *testing.B) {
	f := getFixture(b, 0, 3, 0.1)
	ord, err := ordering.ForGraph(ordering.MethodNumAlph, f.g, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := core.DomainVector(f.census, ord)
		h := histogram.EquiWidth(data, int(f.census.Size()/8))
		if h.Buckets() < 1 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkTable3Datasets measures generation of each Table 3 dataset at
// reduced scale — the substrate cost of every other experiment.
func BenchmarkTable3Datasets(b *testing.B) {
	for _, spec := range dataset.Table3() {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := dataset.Generate(spec, 0.05, int64(i))
				if g.NumEdges() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkTable4EstimationTime reproduces Table 4: per-query estimation
// latency of a V-Optimal label-path histogram for each ordering method at
// each bucket budget (β = |Lk|/2^i). The paper's shape targets: sum-based
// is the slowest method (costlier (un)ranking), and latency shrinks as β
// falls (cheaper bucket search).
func BenchmarkTable4EstimationTime(b *testing.B) {
	const k = 4 // paper: 6; reduced so the fixture builds in seconds
	f := getFixture(b, 0, k, 0.1)
	for _, denom := range []int{2, 8, 32, 128} {
		beta := int(f.census.Size() / int64(denom))
		if beta < 1 {
			beta = 1
		}
		for _, method := range ordering.PaperMethods() {
			ord, err := ordering.ForGraph(method, f.g, k)
			if err != nil {
				b.Fatal(err)
			}
			ph, err := core.Build(f.census, ord, core.BuilderVOptimal, beta)
			if err != nil {
				b.Fatal(err)
			}
			queries := make([]paths.Path, 1024)
			rng := rand.New(rand.NewSource(7))
			for i := range queries {
				queries[i] = ord.Path(rng.Int63n(ord.Size()))
			}
			b.Run(fmt.Sprintf("beta=%d/%s", beta, method), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = ph.Estimate(queries[i%len(queries)])
				}
			})
		}
	}
}

// BenchmarkFigure2Accuracy reproduces Figure 2: it builds a V-Optimal
// histogram per (dataset, method) at a fixed reduced budget and reports
// the mean error rate as err_rate/op alongside construction time. The
// shape target: sum-based reports the lowest err_rate on every dataset,
// with the largest margins on the synthetic datasets.
func BenchmarkFigure2Accuracy(b *testing.B) {
	const k = 3
	for specIdx, spec := range dataset.Table3() {
		f := getFixture(b, specIdx, k, 0.03)
		beta := int(f.census.Size() / 16)
		if beta < 2 {
			beta = 2
		}
		for _, method := range ordering.PaperMethods() {
			ord, err := ordering.ForGraph(method, f.g, k)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", spec.Name, method), func(b *testing.B) {
				var ev core.Evaluation
				for i := 0; i < b.N; i++ {
					ph, err := core.Build(f.census, ord, core.BuilderVOptimal, beta)
					if err != nil {
						b.Fatal(err)
					}
					ev = core.Evaluate(ph, f.census)
				}
				b.ReportMetric(ev.MeanErrorRate, "err_rate/op")
			})
		}
	}
}

// BenchmarkAblationBuilders compares histogram construction algorithms on
// the same sum-based domain — the DESIGN.md §6 ablation of "how much is
// the bucketing algorithm vs the ordering".
func BenchmarkAblationBuilders(b *testing.B) {
	const k = 3
	f := getFixture(b, 0, k, 0.1)
	ord, err := ordering.ForGraph(ordering.MethodSumBased, f.g, k)
	if err != nil {
		b.Fatal(err)
	}
	data := core.DomainVector(f.census, ord)
	beta := len(data) / 16
	builders := map[string]func([]int64, int) *histogram.Histogram{
		"v-optimal":  histogram.VOptimal,
		"equi-width": histogram.EquiWidth,
		"equi-depth": histogram.EquiDepth,
		"max-diff":   histogram.MaxDiff,
	}
	for _, name := range []string{"v-optimal", "equi-width", "equi-depth", "max-diff"} {
		build := builders[name]
		b.Run(name, func(b *testing.B) {
			var sse float64
			for i := 0; i < b.N; i++ {
				h := build(data, beta)
				sse = h.TotalSSE()
			}
			b.ReportMetric(sse, "sse/op")
		})
	}
}

// BenchmarkOrderingIndex isolates the (un)ranking function cost per
// ordering method — the mechanism behind Table 4's "sum-based ≈ 20%
// slower" row (the paper's O(k) native vs O(log(|L|)^k) sum-based
// complexity claim).
func BenchmarkOrderingIndex(b *testing.B) {
	const k = 6
	f := getFixture(b, 0, 2, 0.1) // graph only used for rankings
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, f.g, k)
		if err != nil {
			b.Fatal(err)
		}
		queries := make([]paths.Path, 1024)
		rng := rand.New(rand.NewSource(3))
		for i := range queries {
			queries[i] = ord.Path(rng.Int63n(ord.Size()))
		}
		b.Run("Index/"+method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ord.Index(queries[i%len(queries)])
			}
		})
		b.Run("Unrank/"+method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ord.Path(int64(i) % ord.Size())
			}
		})
	}
}

// BenchmarkCensus measures the exact selectivity engine — the substrate
// every experiment pays once per (dataset, k).
func BenchmarkCensus(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("moreno/k=%d", k), func(b *testing.B) {
			g := dataset.Generate(dataset.Table3()[0], 0.1, 1).Freeze()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := paths.NewCensus(g, k)
				if c.Total() == 0 {
					b.Fatal("empty census")
				}
			}
		})
	}
}

// BenchmarkCensusParallel compares the sequential and parallel selectivity
// engines — the scale lever for paper-size runs.
func BenchmarkCensusParallel(b *testing.B) {
	g := dataset.Generate(dataset.Table3()[0], 0.15, 1).Freeze()
	const k = 3
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := paths.NewCensusParallel(g, k, workers)
				if c.Total() == 0 {
					b.Fatal("empty census")
				}
			}
		})
	}
}

// BenchmarkPrefixRangeQuery measures the prefix wildcard query path (lex
// ordering + histogram range query) against summing point estimates.
func BenchmarkPrefixRangeQuery(b *testing.B) {
	f := getFixture(b, 0, 4, 0.1)
	ord, err := ordering.ForGraph(ordering.MethodLexCard, f.g, 4)
	if err != nil {
		b.Fatal(err)
	}
	ph, err := core.Build(f.census, ord, core.BuilderVOptimal, int(f.census.Size()/16))
	if err != nil {
		b.Fatal(err)
	}
	prefix := paths.Path{0, 1}
	b.Run("range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ph.EstimatePrefix(prefix); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSynopsisCodec measures persistence round trips of the synopsis.
func BenchmarkSynopsisCodec(b *testing.B) {
	f := getFixture(b, 0, 3, 0.1)
	ord, err := ordering.ForGraph(ordering.MethodSumBased, f.g, 3)
	if err != nil {
		b.Fatal(err)
	}
	ph, err := core.Build(f.census, ord, core.BuilderVOptimal, 64)
	if err != nil {
		b.Fatal(err)
	}
	var blob bytes.Buffer
	if err := ph.Encode(&blob); err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := ph.Encode(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ReadPathHistogram(bytes.NewReader(blob.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkloadAccuracy runs the per-workload accuracy extension.
func BenchmarkWorkloadAccuracy(b *testing.B) {
	opt := experiments.Options{
		Scale: 0.03, Seed: 1, TimingK: 3,
		AccuracyKs: []int{3}, BetaDenoms: []int{16},
		Queries: 512, Repeats: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WorkloadAccuracy(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentSuite times the end-to-end reduced-scale reproduction
// of Table 4 and Figure 2 — what `cmd/experiments` runs.
func BenchmarkExperimentSuite(b *testing.B) {
	opt := experiments.Options{
		Scale:      0.02,
		Seed:       1,
		TimingK:    3,
		AccuracyKs: []int{2},
		BetaDenoms: []int{4, 32},
		Queries:    256,
		Repeats:    1,
	}
	b.Run("table4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunTable4(opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("figure2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunFigure2(opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComposeKernels isolates one relational-composition step — the
// innermost operation of the census — on a Table 3 dataset relation,
// comparing the legacy dense row walk against the hybrid engine's
// specialized kernels (sparse×CSR scatter vs dense×CSR word-parallel
// union).
func BenchmarkComposeKernels(b *testing.B) {
	g := dataset.Generate(dataset.Table3()[3], 0.1, 1).Freeze() // SNAP-FF: sparse
	op := g.LabelOperand(0)
	b.Run("legacy-dense", func(b *testing.B) {
		rel := g.EdgeRelation(0)
		succ := g.SuccessorSets(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = rel.Compose(succ)
		}
	})
	b.Run("hybrid-sparse", func(b *testing.B) {
		rel := bitset.HybridFromCSR(op, 1.0) // all rows sparse
		dst := bitset.NewHybrid(op.N, 1.0)
		scr := bitset.NewComposeScratch(op.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.ComposeInto(dst, op, scr)
		}
	})
	b.Run("hybrid-dense", func(b *testing.B) {
		rel := bitset.HybridFromCSR(op, 1e-9) // all rows dense
		dst := bitset.NewHybrid(op.N, 1e-9)
		scr := bitset.NewComposeScratch(op.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.ComposeInto(dst, op, scr)
		}
	})
	b.Run("hybrid-adaptive", func(b *testing.B) {
		rel := bitset.HybridFromCSR(op, 0) // default promotion threshold
		dst := bitset.NewHybrid(op.N, 0)
		scr := bitset.NewComposeScratch(op.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel.ComposeInto(dst, op, scr)
		}
	})
}

// BenchmarkCensusEngines compares the legacy allocating census against the
// pooled hybrid engine, single-worker, on the synthetic Table 3 datasets —
// the ISSUE 1 ≥3× target measured apples-to-apples (same graph, same k,
// parallelism taken out of the picture).
func BenchmarkCensusEngines(b *testing.B) {
	for _, specIdx := range []int{2, 3} { // SNAP-ER, SNAP-FF
		spec := dataset.Table3()[specIdx]
		g := dataset.Generate(spec, 0.05, 1).Freeze()
		const k = 3
		b.Run(spec.Name+"/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := paths.NewCensus(g, k)
				if c.Total() == 0 {
					b.Fatal("empty census")
				}
			}
		})
		b.Run(spec.Name+"/hybrid", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := paths.NewCensusHybrid(g, k, paths.CensusOptions{Workers: 1})
				if c.Total() == 0 {
					b.Fatal("empty census")
				}
			}
		})
	}
}

// BenchmarkCensusSkewedScaling measures worker scaling on the skewed-label
// workload shared with the BENCH_*.json emitter (one Zipf label carries
// most edges), the case where per-first-label parallelism load-imbalances
// and the work-stealing scheduler should not.
func BenchmarkCensusSkewedScaling(b *testing.B) {
	g := experiments.SkewedScalingGraph()
	const k = experiments.PerfBenchK
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := paths.NewCensusHybrid(g, k, paths.CensusOptions{Workers: workers})
				if c.Total() == 0 {
					b.Fatal("empty census")
				}
			}
		})
	}
}

// BenchmarkExecEngines measures query execution on SNAP-FF — the same
// workload the BENCH_exec.json emitter times: the retired dense executor
// against the hybrid engine for both endpoint plans, plus the
// hybrid-only interior zig-zag start.
func BenchmarkExecEngines(b *testing.B) {
	g := dataset.Generate(dataset.Table3()[3], 0.1, 1).Freeze() // SNAP-FF
	queries := experiments.ExecBenchQueries
	b.Run("legacy-dense/forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				exec.ExecuteDense(g, q, exec.Forward)
			}
		}
	})
	b.Run("hybrid/forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				exec.ExecutePlan(g, q, exec.Plan{Start: 0}, exec.Options{})
			}
		}
	})
	b.Run("legacy-dense/backward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				exec.ExecuteDense(g, q, exec.Backward)
			}
		}
	})
	b.Run("hybrid/backward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				exec.ExecutePlan(g, q, exec.Plan{Start: len(q) - 1}, exec.Options{})
			}
		}
	})
	b.Run("hybrid/zigzag", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				exec.ExecutePlan(g, q, exec.Plan{Start: 1}, exec.Options{})
			}
		}
	})
}
