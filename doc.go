// Package repro reproduces and extends "Histogram Domain Ordering for
// Path Selectivity Estimation" (Yakovets et al., EDBT 2018). The module
// root holds only the cross-layer benchmark harness (bench_test.go) and
// the committed BENCH_*.json perf artifacts; the system itself is layered
// graph → bitset → paths → exec → pathsel with the evaluation under
// internal/experiments and cmd. See ARCHITECTURE.md for the full map and
// docs/benchmarks.md for the artifact schema.
package repro
