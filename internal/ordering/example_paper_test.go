package ordering

import (
	"testing"

	"repro/internal/paths"
)

// The paper's §3.4 worked example: an artificial dataset with 3 edge
// labels "1", "2", "3" of cardinality 20, 100, 80, and Lk with k = 2.
// These golden tests pin Table 1 (summed ranks) and Table 2 (all five
// orderings) exactly.

var (
	exampleNames = []string{"1", "2", "3"}
	exampleFreq  = []int64{20, 100, 80}
	exampleK     = 2
)

func exampleRankings() (alph, card *Ranking) {
	return AlphabeticalRanking(exampleNames), CardinalityRanking(exampleFreq)
}

func TestTable1SummedRanks(t *testing.T) {
	_, card := exampleRankings()
	want := map[string]int64{
		"1": 1, "2": 3, "3": 2,
		"1/1": 2, "1/2": 4, "1/3": 3,
		"2/1": 4, "2/2": 6, "2/3": 5,
		"3/1": 3, "3/2": 5, "3/3": 4,
	}
	for key, wantSum := range want {
		p, err := paths.Parse(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, l := range p {
			sum += card.Rank(l)
		}
		if sum != wantSum {
			t.Errorf("summed rank of %s = %d, want %d", key, sum, wantSum)
		}
	}
}

// table2 lists the paper's Table 2 verbatim: for each method, the label
// paths at domain indexes 0…11.
var table2 = map[string][]string{
	MethodNumAlph:  {"1", "2", "3", "1/1", "1/2", "1/3", "2/1", "2/2", "2/3", "3/1", "3/2", "3/3"},
	MethodNumCard:  {"1", "3", "2", "1/1", "1/3", "1/2", "3/1", "3/3", "3/2", "2/1", "2/3", "2/2"},
	MethodLexAlph:  {"1", "1/1", "1/2", "1/3", "2", "2/1", "2/2", "2/3", "3", "3/1", "3/2", "3/3"},
	MethodLexCard:  {"1", "1/1", "1/3", "1/2", "3", "3/1", "3/3", "3/2", "2", "2/1", "2/3", "2/2"},
	MethodSumBased: {"1", "3", "2", "1/1", "1/3", "3/1", "3/3", "1/2", "2/1", "3/2", "2/3", "2/2"},
}

func exampleOrdering(t *testing.T, method string) Ordering {
	t.Helper()
	alph, card := exampleRankings()
	switch method {
	case MethodNumAlph:
		return NewNumerical(alph, exampleK)
	case MethodNumCard:
		return NewNumerical(card, exampleK)
	case MethodLexAlph:
		return NewLexicographic(alph, exampleK)
	case MethodLexCard:
		return NewLexicographic(card, exampleK)
	case MethodSumBased:
		return NewSumBased(card, exampleK)
	}
	t.Fatalf("unknown method %s", method)
	return nil
}

func TestTable2GoldenOrderings(t *testing.T) {
	for method, row := range table2 {
		ord := exampleOrdering(t, method)
		if ord.Name() != method {
			t.Errorf("%s: Name() = %q", method, ord.Name())
		}
		if ord.Size() != 12 {
			t.Fatalf("%s: Size() = %d, want 12", method, ord.Size())
		}
		for idx, key := range row {
			p, err := paths.Parse(key, 3)
			if err != nil {
				t.Fatal(err)
			}
			if got := ord.Index(p); got != int64(idx) {
				t.Errorf("%s: Index(%s) = %d, want %d", method, key, got, idx)
			}
			if got := ord.Path(int64(idx)); got.Key() != key {
				t.Errorf("%s: Path(%d) = %s, want %s", method, idx, got.Key(), key)
			}
		}
	}
}
