package ordering

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/paths"
)

func TestProductOrderingIsBijection(t *testing.T) {
	freq := []int64{500, 20, 80, 300}
	ord := NewProduct(freq, 3)
	if ord.Name() != "product" {
		t.Fatal("name wrong")
	}
	seen := make([]bool, ord.Size())
	for idx := int64(0); idx < ord.Size(); idx++ {
		p := ord.Path(idx)
		if ord.Index(p) != idx {
			t.Fatalf("round trip failed at %d", idx)
		}
		can := paths.CanonicalIndex(p, 4, 3)
		if seen[can] {
			t.Fatal("duplicate path")
		}
		seen[can] = true
	}
}

func TestProductOrderingLengthFirst(t *testing.T) {
	ord := NewProduct([]int64{10, 20, 30}, 3)
	prevLen := 0
	for idx := int64(0); idx < ord.Size(); idx++ {
		l := len(ord.Path(idx))
		if l < prevLen {
			t.Fatalf("product ordering not length-first at %d", idx)
		}
		prevLen = l
	}
}

func TestProductOrderingSortsByLogProduct(t *testing.T) {
	// Within a length class the product of frequencies must be
	// non-decreasing (up to fixed-point rounding ties).
	freq := []int64{1000, 10, 100}
	ord := NewProduct(freq, 2)
	var prevProd float64 = -1
	for idx := int64(0); idx < ord.Size(); idx++ {
		p := ord.Path(idx)
		if len(p) != 2 {
			continue
		}
		prod := float64(freq[p[0]]) * float64(freq[p[1]])
		if prevProd > 0 && prod < prevProd/1.01 { // rounding slack
			t.Fatalf("product not monotone at %d: %v (%.0f) after %.0f", idx, p, prod, prevProd)
		}
		prevProd = prod
	}
}

func TestProductOrderingAccuracyOnIndependentLabels(t *testing.T) {
	// On an ER graph (independent labels), the product proxy must order
	// the domain at least as coherently as num-alph: compare V-Optimal
	// SSE via error rates indirectly through monotone-run statistics is
	// overkill — instead check it beats num-alph's mean error with the
	// same bucket budget, which is what the proxy exists for.
	g := dataset.ErdosRenyi(200, 3000, dataset.NewZipfLabels(3, 1.2), 21).Freeze()
	c := paths.NewCensus(g, 3)
	prod := NewProduct(c.LabelFrequencies(), 3)

	names := make([]string, 3)
	for l := range names {
		names[l] = g.LabelName(l)
	}
	numAlph := NewNumerical(AlphabeticalRanking(names), 3)

	sse := func(ord Ordering) float64 {
		// Lay out the census and measure the best-8-bucket SSE with a
		// simple equi-width proxy (cheap, monotone in ordering quality).
		data := make([]int64, ord.Size())
		c.ForEach(func(p paths.Path, f int64) bool {
			data[ord.Index(p)] = f
			return true
		})
		var total float64
		buckets := 8
		n := len(data)
		for b := 0; b < buckets; b++ {
			lo, hi := b*n/buckets, (b+1)*n/buckets
			var sum float64
			for _, x := range data[lo:hi] {
				sum += float64(x)
			}
			mean := sum / float64(hi-lo)
			for _, x := range data[lo:hi] {
				d := float64(x) - mean
				total += d * d
			}
		}
		return total
	}
	if sse(prod) > sse(numAlph) {
		t.Fatalf("product ordering SSE %.0f worse than num-alph %.0f on independent labels",
			sse(prod), sse(numAlph))
	}
}
