// Package ordering implements the paper's histogram domain-ordering
// framework — its primary contribution.
//
// An ordering method is the combination of a *ranking rule* (a bijection
// between the base label set and ranks [1, |B|]) and an *ordering rule* (a
// bijection between the label path set Lk and the integer domain
// [0, |Lk|)). The five complete methods studied in the paper are num-alph,
// num-card, lex-alph, lex-card, and sum-based (always with cardinality
// ranking); all are provided here, together with the impractical "ideal"
// ordering as an accuracy upper bound and a base-set extension (§5 future
// work).
//
// In the layer map (graph → bitset → paths → exec → pathsel) this package
// sits beside internal/histogram under internal/core: it permutes the
// census's canonical frequency vector into the domain layout the
// histogram buckets are built over.
package ordering

import (
	"fmt"
	"sort"
)

// Ranking is a bijection between edge labels [0, |L|) and ranks [1, |L|].
// Rank 1 is the "front" of the ordering (for cardinality ranking, the
// least frequent label — the paper's l1 <card l2 ⇔ f(l1) < f(l2)).
type Ranking struct {
	name    string
	rankOf  []int64 // rankOf[label] = rank ∈ [1, |L|]
	labelOf []int   // labelOf[rank-1] = label
}

// NumLabels returns |L|.
func (r *Ranking) NumLabels() int { return len(r.rankOf) }

// Name returns the rule name ("alph" or "card", or a custom name).
func (r *Ranking) Name() string { return r.name }

// Rank returns the rank of label l, in [1, |L|].
func (r *Ranking) Rank(l int) int64 {
	if l < 0 || l >= len(r.rankOf) {
		panic(fmt.Sprintf("ordering: label %d out of range [0,%d)", l, len(r.rankOf)))
	}
	return r.rankOf[l]
}

// Label returns the label with the given rank ∈ [1, |L|].
func (r *Ranking) Label(rank int64) int {
	if rank < 1 || rank > int64(len(r.labelOf)) {
		panic(fmt.Sprintf("ordering: rank %d out of range [1,%d]", rank, len(r.labelOf)))
	}
	return r.labelOf[rank-1]
}

// newRanking builds a Ranking from labelOf (labels listed front to back).
func newRanking(name string, labelOf []int) *Ranking {
	r := &Ranking{
		name:    name,
		rankOf:  make([]int64, len(labelOf)),
		labelOf: append([]int(nil), labelOf...),
	}
	seen := make([]bool, len(labelOf))
	for i, l := range labelOf {
		if l < 0 || l >= len(labelOf) || seen[l] {
			panic(fmt.Sprintf("ordering: labelOf %v is not a permutation of [0,%d)", labelOf, len(labelOf)))
		}
		seen[l] = true
		r.rankOf[l] = int64(i + 1)
	}
	return r
}

// AlphabeticalRanking ranks labels by the lexicographic order of their
// display names: the alphabetically first name gets rank 1. Numeric names
// like the paper's "1".."6" sort in the expected order for up to 9 labels;
// callers with ≥10 numeric labels should zero-pad names.
func AlphabeticalRanking(labelNames []string) *Ranking {
	labels := make([]int, len(labelNames))
	for i := range labels {
		labels[i] = i
	}
	sort.SliceStable(labels, func(i, j int) bool {
		return labelNames[labels[i]] < labelNames[labels[j]]
	})
	return newRanking("alph", labels)
}

// CardinalityRanking ranks labels by their selectivity f(l), least
// frequent first (rank 1). Ties break by label id so the ranking is a
// deterministic bijection.
func CardinalityRanking(freq []int64) *Ranking {
	labels := make([]int, len(freq))
	for i := range labels {
		labels[i] = i
	}
	sort.SliceStable(labels, func(i, j int) bool {
		if freq[labels[i]] != freq[labels[j]] {
			return freq[labels[i]] < freq[labels[j]]
		}
		return labels[i] < labels[j]
	})
	return newRanking("card", labels)
}

// IdentityRanking ranks label i with rank i+1; useful for tests and for
// graphs whose label ids already encode the desired order.
func IdentityRanking(numLabels int) *Ranking {
	labels := make([]int, numLabels)
	for i := range labels {
		labels[i] = i
	}
	return newRanking("id", labels)
}

// RankingFromOrder reconstructs a Ranking from its front-to-back label
// order (the inverse of Order). Used by the persistence codec. It returns
// an error — rather than panicking — because the input typically comes
// from a file.
func RankingFromOrder(name string, labelOf []int) (r *Ranking, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("ordering: invalid ranking order: %v", rec)
		}
	}()
	return newRanking(name, labelOf), nil
}

// Order returns the labels from front (rank 1) to back (rank |L|) — the
// serializable form of the ranking.
func (r *Ranking) Order() []int {
	return append([]int(nil), r.labelOf...)
}
