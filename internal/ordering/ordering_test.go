package ordering

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/paths"
)

func TestAlphabeticalRanking(t *testing.T) {
	r := AlphabeticalRanking([]string{"c", "a", "b"})
	if r.Name() != "alph" || r.NumLabels() != 3 {
		t.Fatal("metadata wrong")
	}
	// "a" (label 1) → rank 1, "b" (label 2) → 2, "c" (label 0) → 3.
	if r.Rank(1) != 1 || r.Rank(2) != 2 || r.Rank(0) != 3 {
		t.Fatalf("ranks wrong: %d %d %d", r.Rank(0), r.Rank(1), r.Rank(2))
	}
	if r.Label(1) != 1 || r.Label(3) != 0 {
		t.Fatal("Label inverse wrong")
	}
}

func TestCardinalityRanking(t *testing.T) {
	r := CardinalityRanking([]int64{20, 100, 80})
	// Least frequent in front: label 0 (f=20) rank 1, label 2 (80) rank 2,
	// label 1 (100) rank 3 — the paper's example.
	if r.Rank(0) != 1 || r.Rank(2) != 2 || r.Rank(1) != 3 {
		t.Fatalf("card ranks wrong: %d %d %d", r.Rank(0), r.Rank(1), r.Rank(2))
	}
	if r.Name() != "card" {
		t.Fatal("name wrong")
	}
}

func TestCardinalityRankingTies(t *testing.T) {
	r := CardinalityRanking([]int64{5, 5, 1})
	if r.Rank(2) != 1 {
		t.Fatal("least frequent should be rank 1")
	}
	// Ties break by label id.
	if r.Rank(0) != 2 || r.Rank(1) != 3 {
		t.Fatalf("tie-break wrong: %d %d", r.Rank(0), r.Rank(1))
	}
}

func TestRankingBijection(t *testing.T) {
	r := CardinalityRanking([]int64{9, 3, 7, 1, 5})
	for l := 0; l < 5; l++ {
		if r.Label(r.Rank(l)) != l {
			t.Fatalf("Label(Rank(%d)) != %d", l, l)
		}
	}
	for rank := int64(1); rank <= 5; rank++ {
		if r.Rank(r.Label(rank)) != rank {
			t.Fatalf("Rank(Label(%d)) != %d", rank, rank)
		}
	}
}

func TestRankingPanics(t *testing.T) {
	r := IdentityRanking(3)
	for name, fn := range map[string]func(){
		"Rank(-1)": func() { r.Rank(-1) },
		"Rank(3)":  func() { r.Rank(3) },
		"Label(0)": func() { r.Label(0) },
		"Label(4)": func() { r.Label(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// allOrderings builds every ordering implementation over a random ranking
// for cross-cutting property tests.
func allOrderings(numLabels, k int, seed int64) []Ordering {
	rng := rand.New(rand.NewSource(seed))
	freq := make([]int64, numLabels)
	for i := range freq {
		freq[i] = int64(rng.Intn(1000))
	}
	names := make([]string, numLabels)
	for i := range names {
		names[i] = string(rune('a' + numLabels - 1 - i)) // reversed names
	}
	alph := AlphabeticalRanking(names)
	card := CardinalityRanking(freq)
	return []Ordering{
		NewNumerical(alph, k),
		NewNumerical(card, k),
		NewLexicographic(alph, k),
		NewLexicographic(card, k),
		NewSumBased(card, k),
		NewSumBased(IdentityRanking(numLabels), k),
	}
}

func TestOrderingsAreBijections(t *testing.T) {
	// Exhaustive: over the full domain, Path(Index(p)) == p, Index(Path(i))
	// == i, and every index is hit exactly once.
	for _, cfg := range []struct{ l, k int }{{2, 4}, {3, 3}, {4, 2}, {6, 2}, {5, 3}} {
		for _, ord := range allOrderings(cfg.l, cfg.k, int64(cfg.l*10+cfg.k)) {
			seen := make([]bool, ord.Size())
			for idx := int64(0); idx < ord.Size(); idx++ {
				p := ord.Path(idx)
				if len(p) == 0 || len(p) > cfg.k {
					t.Fatalf("%s(L=%d,k=%d): Path(%d) has bad length %d", ord.Name(), cfg.l, cfg.k, idx, len(p))
				}
				back := ord.Index(p)
				if back != idx {
					t.Fatalf("%s(L=%d,k=%d): Index(Path(%d)) = %d", ord.Name(), cfg.l, cfg.k, idx, back)
				}
				if seen[idx] {
					t.Fatalf("%s: index %d hit twice", ord.Name(), idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestOrderingMetadata(t *testing.T) {
	for _, ord := range allOrderings(4, 3, 1) {
		if ord.NumLabels() != 4 || ord.K() != 3 {
			t.Fatalf("%s: NumLabels/K = %d/%d", ord.Name(), ord.NumLabels(), ord.K())
		}
		if ord.Size() != 4+16+64 {
			t.Fatalf("%s: Size = %d", ord.Name(), ord.Size())
		}
	}
}

func TestOrderingPanics(t *testing.T) {
	for _, ord := range allOrderings(3, 2, 2) {
		for name, fn := range map[string]func(){
			"empty path": func() { ord.Index(paths.Path{}) },
			"long path":  func() { ord.Index(paths.Path{0, 1, 2}) },
			"bad label":  func() { ord.Index(paths.Path{5}) },
			"neg index":  func() { ord.Path(-1) },
			"big index":  func() { ord.Path(ord.Size()) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: %s should panic", ord.Name(), name)
					}
				}()
				fn()
			}()
		}
	}
}

func TestNumericalLengthFirst(t *testing.T) {
	// All length-1 paths precede all length-2 paths, etc.
	ord := NewNumerical(IdentityRanking(3), 3)
	prevLen := 0
	for idx := int64(0); idx < ord.Size(); idx++ {
		l := len(ord.Path(idx))
		if l < prevLen {
			t.Fatalf("numerical ordering not length-first at %d", idx)
		}
		prevLen = l
	}
}

func TestLexicographicPrefixFirst(t *testing.T) {
	// Every path appears immediately before its rank-least extensions:
	// dictionary property — a prefix precedes all its extensions.
	ord := NewLexicographic(IdentityRanking(3), 3)
	for idx := int64(0); idx < ord.Size(); idx++ {
		p := ord.Path(idx)
		if len(p) < 3 {
			ext := append(p.Clone(), 0)
			if ord.Index(ext) <= idx {
				t.Fatalf("extension %v does not follow prefix %v", ext, p)
			}
		}
	}
}

func TestSumBasedStageMonotonicity(t *testing.T) {
	// Within one length class, summed ranks must be non-decreasing as the
	// domain index grows — the stage-two property.
	card := CardinalityRanking([]int64{50, 10, 30, 20})
	ord := NewSumBased(card, 3)
	sums := map[int][]int64{}
	for idx := int64(0); idx < ord.Size(); idx++ {
		p := ord.Path(idx)
		var sr int64
		for _, l := range p {
			sr += card.Rank(l)
		}
		sums[len(p)] = append(sums[len(p)], sr)
	}
	for length, seq := range sums {
		if !sort.SliceIsSorted(seq, func(i, j int) bool { return seq[i] < seq[j] }) {
			t.Fatalf("length-%d summed ranks not sorted", length)
		}
	}
}

func TestForGraph(t *testing.T) {
	g := dataset.ErdosRenyi(50, 250, dataset.UniformLabels{L: 4}, 3).Freeze()
	for _, method := range PaperMethods() {
		ord, err := ForGraph(method, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ord.Name() != method {
			t.Errorf("ForGraph(%s).Name() = %s", method, ord.Name())
		}
		// Spot-check bijection on random paths.
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 50; i++ {
			n := 1 + rng.Intn(3)
			p := make(paths.Path, n)
			for j := range p {
				p[j] = rng.Intn(4)
			}
			if !ord.Path(ord.Index(p)).Equal(p) {
				t.Fatalf("%s: round trip failed for %v", method, p)
			}
		}
	}
	if _, err := ForGraph("nonsense", g, 3); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestForGraphCardUsesFrequencies(t *testing.T) {
	// Build a graph with a known dominant label and check num-card places
	// the rare label first.
	g := dataset.ErdosRenyi(30, 60, dataset.NewZipfLabels(3, 2.0), 8)
	freq := g.LabelFrequencies()
	rare := 0
	for l, f := range freq {
		if f < freq[rare] {
			rare = l
		}
	}
	ord, err := ForGraph(MethodNumCard, g.Freeze(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ord.Path(0); got[0] != rare {
		t.Fatalf("num-card Path(0) = label %d, want rarest %d (freq %v)", got[0], rare, freq)
	}
}

func TestNewCommonBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 should panic")
		}
	}()
	NewNumerical(IdentityRanking(2), 0)
}
