package ordering

import (
	"repro/internal/paths"
)

// Lexicographic is the paper's lexicographical ordering rule (§3.2):
// dictionary order over rank sequences, where a path precedes all of its
// extensions (the paper pads paths with blank symbols to length k; its
// own worked example, Table 2 — `1, 1/1, 1/2, 1/3, 2, …` — places each
// prefix *before* its extensions, i.e. the blank sorts before every label.
// We follow Table 2; see DESIGN.md §3.1 for the note on the formula's
// stated blank-rank direction.)
//
// Equivalently this is a preorder walk of the |L|-ary label trie visiting
// children in rank order. Both directions run in O(k).
type Lexicographic struct {
	common
	name string
	// subtree[h] = number of domain positions in a subtree of height h:
	// the node itself plus all descendants down to depth k, i.e.
	// Σ_{j=0..h} |L|^j.
	subtree []int64
}

// NewLexicographic builds the lexicographical ordering rule over the given
// ranking.
func NewLexicographic(rank *Ranking, k int) *Lexicographic {
	c := newCommon(rank, k)
	base := int64(rank.NumLabels())
	subtree := make([]int64, k+1)
	subtree[0] = 1
	for h := 1; h <= k; h++ {
		subtree[h] = subtree[h-1]*base + 1
	}
	return &Lexicographic{common: c, name: "lex-" + rank.Name(), subtree: subtree}
}

// Name implements Ordering.
func (o *Lexicographic) Name() string { return o.name }

// Index implements Ordering.
func (o *Lexicographic) Index(p paths.Path) int64 {
	o.checkPath(p)
	var idx int64
	for i, l := range p {
		digit := o.rank.Rank(l) - 1
		// Every lower-ranked sibling's entire subtree precedes p, and so
		// does each proper prefix node of p itself.
		idx += digit * o.subtree[o.k-1-i]
		if i > 0 {
			idx++
		}
	}
	return idx
}

// PrefixRange returns the half-open domain interval [lo, hi) occupied by
// p and all of its extensions. In lexicographic (dictionary) order a
// prefix and its extensions form one contiguous block — the property that
// lets a histogram answer prefix wildcard queries ("p/*", aggregate
// selectivity of every path starting with p) as a single range query.
// The other ordering rules scatter extensions across the domain, so this
// operation is unique to Lexicographic.
func (o *Lexicographic) PrefixRange(p paths.Path) (lo, hi int64) {
	o.checkPath(p)
	lo = o.Index(p)
	return lo, lo + o.subtree[o.k-len(p)]
}

// Path implements Ordering.
func (o *Lexicographic) Path(idx int64) paths.Path {
	o.checkIndex(idx)
	p := make(paths.Path, 0, o.k)
	for depth := 1; ; depth++ {
		per := o.subtree[o.k-depth]
		digit := idx / per
		idx -= digit * per
		p = append(p, o.rank.Label(digit+1))
		if idx == 0 {
			return p
		}
		idx-- // skip the prefix node itself
	}
}
