package ordering

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/paths"
)

func TestMaterializedIsBijection(t *testing.T) {
	// Key = canonical index reversed → a valid, distinct permutation.
	numLabels, k := 3, 2
	size := int64(12)
	m := NewMaterialized("rev", numLabels, k, func(can int64) int64 { return size - can })
	if m.Size() != size || m.Name() != "rev" || m.NumLabels() != 3 || m.K() != 2 {
		t.Fatal("metadata wrong")
	}
	seen := make([]bool, size)
	for idx := int64(0); idx < size; idx++ {
		p := m.Path(idx)
		if got := m.Index(p); got != idx {
			t.Fatalf("round trip failed at %d", idx)
		}
		can := paths.CanonicalIndex(p, numLabels, k)
		if seen[can] {
			t.Fatalf("canonical %d seen twice", can)
		}
		seen[can] = true
	}
	// Reversed: domain position 0 must hold the highest canonical index.
	if got := paths.CanonicalIndex(m.Path(0), numLabels, k); got != size-1 {
		t.Fatalf("Path(0) canonical = %d, want %d", got, size-1)
	}
}

func TestMaterializedTieBreakByCanonical(t *testing.T) {
	m := NewMaterialized("const", 3, 1, func(int64) int64 { return 7 })
	for idx := int64(0); idx < 3; idx++ {
		if got := paths.CanonicalIndex(m.Path(idx), 3, 1); got != idx {
			t.Fatalf("constant key should preserve canonical order; Path(%d) canonical = %d", idx, got)
		}
	}
}

func TestMaterializedPathPanics(t *testing.T) {
	m := NewMaterialized("id", 2, 1, func(c int64) int64 { return c })
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Path should panic")
		}
	}()
	m.Path(2)
}

func TestIdealOrderingSortsBySelectivity(t *testing.T) {
	g := dataset.ErdosRenyi(40, 200, dataset.UniformLabels{L: 3}, 4).Freeze()
	c := paths.NewCensus(g, 3)
	ideal := NewIdeal(c)
	if ideal.Name() != "ideal" {
		t.Fatal("name wrong")
	}
	var prev int64 = -1
	for idx := int64(0); idx < ideal.Size(); idx++ {
		f := c.Selectivity(ideal.Path(idx))
		if f < prev {
			t.Fatalf("ideal ordering not monotone at %d: %d < %d", idx, f, prev)
		}
		prev = f
	}
}

func TestBaseSetL2Decompose(t *testing.T) {
	// Uniform weights: every piece of length ≤ 2 is in B, so the greedy
	// rule always cuts length-2 pieces while possible — the paper's
	// "4/4/3/3/6" → "4/4", "3/3", "6" example.
	b := NewBaseSetL2(6, func(paths.Path) int64 { return 1 })
	if b.Size() != 6+36 {
		t.Fatalf("|B| = %d, want 42", b.Size())
	}
	p, err := paths.Parse("4/4/3/3/6", 6)
	if err != nil {
		t.Fatal(err)
	}
	got := b.Decompose(p)
	want := []string{"4/4", "3/3", "6"}
	if len(got) != len(want) {
		t.Fatalf("Decompose = %d pieces, want %d", len(got), len(want))
	}
	for i, piece := range got {
		if piece.Key() != want[i] {
			t.Fatalf("piece %d = %s, want %s", i, piece.Key(), want[i])
		}
	}
}

func TestBaseSetRanksSortedByWeight(t *testing.T) {
	// Weight = selectivity proxy; rank 1 must be the lightest piece.
	weights := map[string]int64{"1": 50, "2": 10, "1/1": 5, "1/2": 90, "2/1": 20, "2/2": 70}
	b := NewBaseSetL2(2, func(p paths.Path) int64 { return weights[p.Key()] })
	type pr struct {
		key  string
		rank int64
	}
	var got []pr
	for key := range weights {
		p, _ := paths.Parse(key, 2)
		got = append(got, pr{key, b.Rank(p)})
	}
	sort.Slice(got, func(i, j int) bool { return got[i].rank < got[j].rank })
	for i := 1; i < len(got); i++ {
		if weights[got[i].key] < weights[got[i-1].key] {
			t.Fatalf("ranks not sorted by weight: %v", got)
		}
	}
}

func TestBaseSetRankUnknownPiecePanics(t *testing.T) {
	b := NewBaseSetL2(2, func(paths.Path) int64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("length-3 piece should panic")
		}
	}()
	b.Rank(paths.Path{0, 0, 0})
}

func TestNewSumL2IsBijection(t *testing.T) {
	g := dataset.ErdosRenyi(30, 150, dataset.UniformLabels{L: 3}, 6).Freeze()
	c := paths.NewCensus(g, 3)
	ord := NewSumL2(c)
	if ord.Name() != "sum-L2" {
		t.Fatal("name wrong")
	}
	seen := make([]bool, ord.Size())
	for idx := int64(0); idx < ord.Size(); idx++ {
		p := ord.Path(idx)
		if ord.Index(p) != idx {
			t.Fatalf("round trip failed at %d", idx)
		}
		can := paths.CanonicalIndex(p, 3, 3)
		if seen[can] {
			t.Fatal("duplicate path")
		}
		seen[can] = true
	}
	// Length-first property inherited from SumKey's high-order term.
	prevLen := 0
	for idx := int64(0); idx < ord.Size(); idx++ {
		l := len(ord.Path(idx))
		if l < prevLen {
			t.Fatalf("sum-L2 not length-first at %d", idx)
		}
		prevLen = l
	}
}

func TestNewSumL2RequiresK2(t *testing.T) {
	g := dataset.ErdosRenyi(10, 20, dataset.UniformLabels{L: 2}, 1).Freeze()
	c := paths.NewCensus(g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("k=1 census should panic")
		}
	}()
	NewSumL2(c)
}
