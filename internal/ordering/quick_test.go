package ordering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/paths"
)

// randomRanking builds a random permutation ranking over numLabels labels.
func randomRanking(rng *rand.Rand, numLabels int) *Ranking {
	order := rng.Perm(numLabels)
	r, err := RankingFromOrder("rnd", order)
	if err != nil {
		panic(err)
	}
	return r
}

// TestQuickOrderingRoundTrips drives randomized round-trip checks at
// configurations too large for the exhaustive bijection test (|L| up to
// 16, k up to 6): Path(Index(p)) == p for random paths, and
// Index(Path(i)) == i for random indexes.
func TestQuickOrderingRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rng,
		Values:   nil,
	}
	makeOrds := func(numLabels, k int) []Ordering {
		rank := randomRanking(rng, numLabels)
		return []Ordering{
			NewNumerical(rank, k),
			NewLexicographic(rank, k),
			NewSumBased(rank, k),
		}
	}
	for _, c := range []struct{ l, k int }{{8, 4}, {12, 5}, {16, 6}} {
		for _, ord := range makeOrds(c.l, c.k) {
			ord := ord
			pathRoundTrip := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				n := 1 + r.Intn(ord.K())
				p := make(paths.Path, n)
				for i := range p {
					p[i] = r.Intn(ord.NumLabels())
				}
				return ord.Path(ord.Index(p)).Equal(p)
			}
			if err := quick.Check(pathRoundTrip, cfg); err != nil {
				t.Fatalf("%s (L=%d,k=%d): path round trip: %v", ord.Name(), c.l, c.k, err)
			}
			idxRoundTrip := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				idx := r.Int63n(ord.Size())
				return ord.Index(ord.Path(idx)) == idx
			}
			if err := quick.Check(idxRoundTrip, cfg); err != nil {
				t.Fatalf("%s (L=%d,k=%d): index round trip: %v", ord.Name(), c.l, c.k, err)
			}
		}
	}
}

// TestQuickSumBasedSumMonotone checks on large random configurations that
// sum-based ordering never places a higher summed rank before a lower one
// within a length class.
func TestQuickSumBasedSumMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 20; trial++ {
		numLabels := 2 + rng.Intn(14)
		k := 2 + rng.Intn(4)
		rank := randomRanking(rng, numLabels)
		ord := NewSumBased(rank, k)
		sumOf := func(p paths.Path) int64 {
			var s int64
			for _, l := range p {
				s += rank.Rank(l)
			}
			return s
		}
		// Sample ordered index pairs.
		for i := 0; i < 200; i++ {
			a := rng.Int63n(ord.Size())
			b := rng.Int63n(ord.Size())
			if a > b {
				a, b = b, a
			}
			pa, pb := ord.Path(a), ord.Path(b)
			if len(pa) > len(pb) {
				t.Fatalf("length not monotone: idx %d len %d before idx %d len %d",
					a, len(pa), b, len(pb))
			}
			if len(pa) == len(pb) && sumOf(pa) > sumOf(pb) {
				t.Fatalf("summed rank not monotone within length class: %v (sum %d) before %v (sum %d)",
					pa, sumOf(pa), pb, sumOf(pb))
			}
		}
	}
}

// TestQuickLexAgreesWithStringOrder cross-checks the lexicographic index
// against direct string comparison of rank sequences (with the prefix-
// first convention of Table 2).
func TestQuickLexAgreesWithStringOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 20; trial++ {
		numLabels := 2 + rng.Intn(10)
		k := 2 + rng.Intn(4)
		rank := randomRanking(rng, numLabels)
		ord := NewLexicographic(rank, k)
		key := func(p paths.Path) string {
			// Rank sequence as a byte string: prefix-first order is exactly
			// byte-wise comparison of these keys.
			b := make([]byte, len(p))
			for i, l := range p {
				b[i] = byte(rank.Rank(l))
			}
			return string(b)
		}
		for i := 0; i < 300; i++ {
			a := rng.Int63n(ord.Size())
			b := rng.Int63n(ord.Size())
			pa, pb := ord.Path(a), ord.Path(b)
			if (a < b) != (key(pa) < key(pb)) && a != b {
				t.Fatalf("lex order disagrees with string order: idx %d (%v) vs %d (%v)",
					a, pa, b, pb)
			}
		}
	}
}
