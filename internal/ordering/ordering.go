package ordering

import (
	"fmt"

	"repro/internal/combinat"
	"repro/internal/graph"
	"repro/internal/paths"
)

// Ordering is a bijection between the label path set Lk (all paths of
// length 1…k over |L| labels) and the histogram domain [0, Size()).
//
// Index is the ranking direction (used at histogram *construction* time to
// place each path's frequency on the domain) and Path is the unranking
// direction (used at *estimation* time only when a consumer needs to map a
// domain position back to a path). Both must be total on their domains and
// mutually inverse.
type Ordering interface {
	// Name identifies the method, e.g. "num-alph" or "sum-based".
	Name() string
	// NumLabels returns |L|.
	NumLabels() int
	// K returns the maximum path length.
	K() int
	// Size returns |Lk| = Σ_{i=1..k} |L|^i.
	Size() int64
	// Index returns the domain position of p. It panics when p is empty,
	// longer than K, or contains an out-of-range label.
	Index(p paths.Path) int64
	// Path returns the label path at domain position idx. It panics when
	// idx ∉ [0, Size()).
	Path(idx int64) paths.Path
}

// common carries the fields shared by all ordering rules.
type common struct {
	rank *Ranking
	k    int
	size int64
}

func newCommon(rank *Ranking, k int) common {
	if k < 1 {
		panic(fmt.Sprintf("ordering: k must be ≥ 1, got %d", k))
	}
	return common{
		rank: rank,
		k:    k,
		size: combinat.GeometricSum(int64(rank.NumLabels()), int64(k)),
	}
}

func (c common) NumLabels() int { return c.rank.NumLabels() }
func (c common) K() int         { return c.k }
func (c common) Size() int64    { return c.size }

// Ranking returns the ranking rule underlying this ordering — needed by
// the persistence codec to reconstruct the bijection.
func (c common) Ranking() *Ranking { return c.rank }

func (c common) checkPath(p paths.Path) {
	if len(p) == 0 || len(p) > c.k {
		panic(fmt.Sprintf("ordering: path length %d out of [1,%d]", len(p), c.k))
	}
	for _, l := range p {
		if l < 0 || l >= c.rank.NumLabels() {
			panic(fmt.Sprintf("ordering: label %d out of range [0,%d)", l, c.rank.NumLabels()))
		}
	}
}

func (c common) checkIndex(idx int64) {
	if idx < 0 || idx >= c.size {
		panic(fmt.Sprintf("ordering: index %d out of range [0,%d)", idx, c.size))
	}
}

// Method names of the five complete ordering methods evaluated in the
// paper, in its presentation order.
const (
	MethodNumAlph  = "num-alph"
	MethodNumCard  = "num-card"
	MethodLexAlph  = "lex-alph"
	MethodLexCard  = "lex-card"
	MethodSumBased = "sum-based"
)

// PaperMethods lists the five method names in the paper's order.
func PaperMethods() []string {
	return []string{MethodNumAlph, MethodNumCard, MethodLexAlph, MethodLexCard, MethodSumBased}
}

// ForGraph constructs the named ordering method for a graph: rankings are
// derived from the graph's label names (alph) or label frequencies (card).
// Sum-based always uses cardinality ranking, as in the paper.
func ForGraph(method string, g *graph.CSR, k int) (Ordering, error) {
	alph := func() *Ranking {
		names := make([]string, g.NumLabels())
		for l := range names {
			names[l] = g.LabelName(l)
		}
		return AlphabeticalRanking(names)
	}
	card := func() *Ranking { return CardinalityRanking(g.LabelFrequencies()) }
	switch method {
	case MethodNumAlph:
		return NewNumerical(alph(), k), nil
	case MethodNumCard:
		return NewNumerical(card(), k), nil
	case MethodLexAlph:
		return NewLexicographic(alph(), k), nil
	case MethodLexCard:
		return NewLexicographic(card(), k), nil
	case MethodSumBased:
		return NewSumBased(card(), k), nil
	default:
		return nil, fmt.Errorf("ordering: unknown method %q", method)
	}
}
