package ordering

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/paths"
)

// benchOrderings builds the three ordering rules over a fixed cardinality
// ranking at the given scale.
func benchOrderings(numLabels, k int) []Ordering {
	rng := rand.New(rand.NewSource(9))
	freq := make([]int64, numLabels)
	for i := range freq {
		freq[i] = int64(rng.Intn(100000))
	}
	card := CardinalityRanking(freq)
	return []Ordering{
		NewNumerical(card, k),
		NewLexicographic(card, k),
		NewSumBased(card, k),
	}
}

// BenchmarkIndexByK isolates how (un)ranking cost scales with the path
// length bound — the complexity claim of the paper's §3.2/§3.3 (O(k) for
// numerical/lexicographic; higher for sum-based).
func BenchmarkIndexByK(b *testing.B) {
	const numLabels = 6
	for _, k := range []int{2, 4, 6, 8} {
		for _, ord := range benchOrderings(numLabels, k) {
			queries := make([]paths.Path, 256)
			rng := rand.New(rand.NewSource(11))
			for i := range queries {
				queries[i] = ord.Path(rng.Int63n(ord.Size()))
			}
			b.Run(fmt.Sprintf("%s/k=%d", ord.Name(), k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = ord.Index(queries[i%len(queries)])
				}
			})
		}
	}
}

func BenchmarkUnrankByK(b *testing.B) {
	const numLabels = 6
	for _, k := range []int{2, 4, 6, 8} {
		for _, ord := range benchOrderings(numLabels, k) {
			b.Run(fmt.Sprintf("%s/k=%d", ord.Name(), k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = ord.Path(int64(i) % ord.Size())
				}
			})
		}
	}
}

// BenchmarkSumBasedConstruction measures the one-time stage-table build.
func BenchmarkSumBasedConstruction(b *testing.B) {
	for _, cfg := range []struct{ l, k int }{{6, 6}, {8, 6}, {16, 8}} {
		rank := IdentityRanking(cfg.l)
		b.Run(fmt.Sprintf("L=%d/k=%d", cfg.l, cfg.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = NewSumBased(rank, cfg.k)
			}
		})
	}
}

// BenchmarkMaterializedBuild measures the O(|Lk|) cost of materialized
// orderings (ideal, sum-L2, product) that the closed-form rules avoid.
func BenchmarkMaterializedBuild(b *testing.B) {
	for _, cfg := range []struct{ l, k int }{{6, 4}, {6, 6}} {
		b.Run(fmt.Sprintf("L=%d/k=%d", cfg.l, cfg.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = NewMaterialized("bench", cfg.l, cfg.k, func(can int64) int64 { return -can })
			}
		})
	}
}
