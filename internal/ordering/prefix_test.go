package ordering

import (
	"testing"

	"repro/internal/paths"
)

func TestPrefixRangeContiguous(t *testing.T) {
	// For every path p, [lo, hi) must contain exactly p and its
	// extensions, and nothing else — verified exhaustively.
	ord := NewLexicographic(IdentityRanking(3), 3)
	for idx := int64(0); idx < ord.Size(); idx++ {
		p := ord.Path(idx)
		lo, hi := ord.PrefixRange(p)
		if lo != idx {
			t.Fatalf("PrefixRange(%v) starts at %d, want %d", p.Key(), lo, idx)
		}
		for j := int64(0); j < ord.Size(); j++ {
			q := ord.Path(j)
			isExt := len(q) >= len(p) && q[:len(p)].Equal(p)
			inRange := j >= lo && j < hi
			if isExt != inRange {
				t.Fatalf("path %s (idx %d) vs prefix %s: extension=%v inRange=%v [%d,%d)",
					q.Key(), j, p.Key(), isExt, inRange, lo, hi)
			}
		}
	}
}

func TestPrefixRangeSizes(t *testing.T) {
	ord := NewLexicographic(IdentityRanking(2), 4)
	// A length-m prefix block holds Σ_{j=0..k-m} 2^j positions.
	cases := []struct {
		path paths.Path
		want int64
	}{
		{paths.Path{0}, 1 + 2 + 4 + 8},
		{paths.Path{0, 1}, 1 + 2 + 4},
		{paths.Path{1, 1, 0}, 1 + 2},
		{paths.Path{1, 1, 0, 1}, 1},
	}
	for _, c := range cases {
		lo, hi := ord.PrefixRange(c.path)
		if hi-lo != c.want {
			t.Errorf("PrefixRange(%s) width = %d, want %d", c.path.Key(), hi-lo, c.want)
		}
	}
}

func TestPrefixRangeWithCardRanking(t *testing.T) {
	// The property must hold under any ranking, not just identity.
	card := CardinalityRanking([]int64{50, 10, 30})
	ord := NewLexicographic(card, 2)
	for idx := int64(0); idx < ord.Size(); idx++ {
		p := ord.Path(idx)
		lo, hi := ord.PrefixRange(p)
		count := int64(0)
		for j := lo; j < hi; j++ {
			q := ord.Path(j)
			if len(q) < len(p) || !q[:len(p)].Equal(p) {
				t.Fatalf("index %d in PrefixRange(%s) is %s, not an extension", j, p.Key(), q.Key())
			}
			count++
		}
		if count != hi-lo {
			t.Fatal("range width mismatch")
		}
	}
}

func TestPrefixRangePanicsOnBadPath(t *testing.T) {
	ord := NewLexicographic(IdentityRanking(2), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("empty path should panic")
		}
	}()
	ord.PrefixRange(paths.Path{})
}
