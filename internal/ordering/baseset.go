package ordering

import (
	"fmt"
	"math"

	"repro/internal/paths"
)

// BaseSet implements the paper's base-label-set concept (§3.1) and the
// richer-base-set direction of its concluding remarks: a base set B ⊆ Lk
// such that every label path decomposes into pieces from B, with the
// greedy splitting rule — at each step cut the longest prefix that is in
// B. Because L ⊆ B is required (otherwise some paths cannot be
// decomposed), the greedy rule always terminates.
type BaseSet struct {
	numLabels int
	maxLen    int
	// member maps a piece's canonical index to its rank position.
	rankOf map[int64]int64
	size   int
}

// NewBaseSetL2 returns the base set L2 (all paths of length ≤ 2), the
// example base set named by the paper, with pieces ranked by the given
// per-piece weight (e.g. exact selectivities from a census): lower weight
// → lower rank, ties by canonical order. Ranks are in [1, |B|].
func NewBaseSetL2(numLabels int, weight func(p paths.Path) int64) *BaseSet {
	b := &BaseSet{numLabels: numLabels, maxLen: 2, rankOf: map[int64]int64{}}
	type piece struct {
		can int64
		w   int64
	}
	var pieces []piece
	for l := 0; l < numLabels; l++ {
		p := paths.Path{l}
		pieces = append(pieces, piece{paths.CanonicalIndex(p, numLabels, 2), weight(p)})
	}
	for l1 := 0; l1 < numLabels; l1++ {
		for l2 := 0; l2 < numLabels; l2++ {
			p := paths.Path{l1, l2}
			pieces = append(pieces, piece{paths.CanonicalIndex(p, numLabels, 2), weight(p)})
		}
	}
	// Insertion sort by (weight, canonical); |B| = |L| + |L|² is small.
	for i := 1; i < len(pieces); i++ {
		for j := i; j > 0; j-- {
			a, c := pieces[j-1], pieces[j]
			if c.w < a.w || (c.w == a.w && c.can < a.can) {
				pieces[j-1], pieces[j] = c, a
			} else {
				break
			}
		}
	}
	for i, pc := range pieces {
		b.rankOf[pc.can] = int64(i + 1)
	}
	b.size = len(pieces)
	return b
}

// Size returns |B|.
func (b *BaseSet) Size() int { return b.size }

// Rank returns the rank of a piece in [1, |B|]. It panics when the piece
// is not in the base set.
func (b *BaseSet) Rank(p paths.Path) int64 {
	r, ok := b.rankOf[paths.CanonicalIndex(p, b.numLabels, b.maxLen)]
	if !ok {
		panic(fmt.Sprintf("ordering: piece %v not in base set", p))
	}
	return r
}

// Decompose splits p into base pieces with the greedy longest-prefix rule:
// "4/4/3/3/6" over B = L2 becomes "4/4", "3/3", "6".
func (b *BaseSet) Decompose(p paths.Path) []paths.Path {
	var out []paths.Path
	for len(p) > 0 {
		n := b.maxLen
		if n > len(p) {
			n = len(p)
		}
		// Greedy: longest prefix present in B. Since L ⊆ B, n = 1 always
		// succeeds.
		for ; n > 1; n-- {
			if _, ok := b.rankOf[paths.CanonicalIndex(p[:n], b.numLabels, b.maxLen)]; ok {
				break
			}
		}
		out = append(out, p[:n].Clone())
		p = p[n:]
	}
	return out
}

// SumKey returns the summed rank of p's greedy decomposition — the sort
// key of a base-set sum ordering. Combine with NewMaterialized to obtain a
// complete ordering method over richer base sets:
//
//	ord := ordering.NewMaterialized("sum-L2", L, k, func(can int64) int64 {
//	    return baseSet.SumKey(paths.FromCanonicalIndex(can, L, k))
//	})
//
// (Materialization is needed because decomposition lengths vary by path,
// so stage sizes are no longer closed-form.)
func (b *BaseSet) SumKey(p paths.Path) int64 {
	var sum int64
	for _, piece := range b.Decompose(p) {
		sum += b.Rank(piece)
	}
	// Keep shorter decompositions (longer pieces) grouped first within a
	// length class by weighting the piece count lightly; the dominant
	// term remains the summed rank, mirroring the paper's stage order
	// (length, then sum).
	return int64(len(p))<<40 + sum
}

// NewSumL2 builds the "sum-based over base set L2" ordering suggested by
// the paper's concluding remarks, using exact piece selectivities from the
// census as ranking weights.
func NewSumL2(c *paths.Census) *Materialized {
	if c.K() < 2 {
		panic("ordering: sum-L2 needs a census with k ≥ 2")
	}
	base := NewBaseSetL2(c.NumLabels(), c.Selectivity)
	return NewMaterialized("sum-L2", c.NumLabels(), c.K(), func(can int64) int64 {
		return base.SumKey(paths.FromCanonicalIndex(can, c.NumLabels(), c.K()))
	})
}

// NewProduct builds a product-based ordering — an additional strategy in
// the framework beyond the paper (its concluding remarks invite exactly
// such extensions). Under an independence assumption the selectivity of
// l1/…/lm scales like Π f(li) (normalized per join step), so sorting a
// length class by Σ log f(li) — the log of that product — is a finer
// cardinality proxy than the sum of ranks: it uses the actual frequency
// magnitudes, not just their order. Like sum-L2 it requires
// materialization, costing O(|Lk|) memory.
func NewProduct(freq []int64, k int) *Materialized {
	numLabels := len(freq)
	// Fixed-point log2(f+1) with 10 fractional bits keeps the key integral
	// and monotone in the product.
	logf := make([]int64, numLabels)
	for l, f := range freq {
		logf[l] = int64(1024 * math.Log2(float64(f)+1))
	}
	return NewMaterialized("product", numLabels, k, func(can int64) int64 {
		p := paths.FromCanonicalIndex(can, numLabels, k)
		var sum int64
		for _, l := range p {
			sum += logf[l]
		}
		// Length-first (stage-one analogue), then by log-product.
		return int64(len(p))<<40 + sum
	})
}
