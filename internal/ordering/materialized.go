package ordering

import (
	"fmt"
	"sort"

	"repro/internal/paths"
)

// Materialized is an ordering defined by an explicit permutation of the
// canonical domain. It is the framework's extension point for ordering
// strategies whose index function cannot be computed positionally — at the
// cost the paper highlights: O(|Lk|) memory, the same budget that would
// store the exact selectivities outright.
type Materialized struct {
	name      string
	numLabels int
	k         int
	// toDomain[canonicalIndex] = domain position; fromDomain is inverse.
	toDomain   []int64
	fromDomain []int64
}

// NewMaterialized builds an ordering from a key function: paths are sorted
// by ascending key, ties broken by canonical index so the result is a
// bijection. size must be Σ_{i=1..k} |L|^i (callers usually have a Census
// or another Ordering to take it from).
func NewMaterialized(name string, numLabels, k int, key func(canonicalIdx int64) int64) *Materialized {
	size := int64(0)
	block := int64(1)
	for i := 0; i < k; i++ {
		block *= int64(numLabels)
		size += block
	}
	order := make([]int64, size)
	for i := range order {
		order[i] = int64(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := key(order[a]), key(order[b])
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	m := &Materialized{
		name:       name,
		numLabels:  numLabels,
		k:          k,
		toDomain:   make([]int64, size),
		fromDomain: order,
	}
	for pos, can := range order {
		m.toDomain[can] = int64(pos)
	}
	return m
}

// NewIdeal builds the paper's "ideal ordering": paths sorted by their
// exact selectivity. It is impractical as a real strategy (§3: the index
// table costs as much memory as storing the exact answer) but serves as
// the accuracy upper bound against which practical orderings are judged.
func NewIdeal(c *paths.Census) *Materialized {
	return NewMaterialized("ideal", c.NumLabels(), c.K(), c.AtCanonical)
}

// Name implements Ordering.
func (m *Materialized) Name() string { return m.name }

// NumLabels implements Ordering.
func (m *Materialized) NumLabels() int { return m.numLabels }

// K implements Ordering.
func (m *Materialized) K() int { return m.k }

// Size implements Ordering.
func (m *Materialized) Size() int64 { return int64(len(m.toDomain)) }

// Index implements Ordering.
func (m *Materialized) Index(p paths.Path) int64 {
	return m.toDomain[paths.CanonicalIndex(p, m.numLabels, m.k)]
}

// Path implements Ordering.
func (m *Materialized) Path(idx int64) paths.Path {
	if idx < 0 || idx >= m.Size() {
		panic(fmt.Sprintf("ordering: index %d out of range [0,%d)", idx, m.Size()))
	}
	return paths.FromCanonicalIndex(m.fromDomain[idx], m.numLabels, m.k)
}
