package ordering

import (
	"repro/internal/combinat"
	"repro/internal/paths"
)

// SumBased is the paper's sum-based ordering rule (§3.3): the domain is
// partitioned in three stages —
//
//  1. by path length (shorter first), each stage-one partition holding
//     |L|^m positions;
//  2. within a length, by the summed rank sr = Σ rank(l_i) (lower sums
//     first), each stage-two partition holding dist(sr, m, |L|) positions
//     (Eq. 3, inclusion–exclusion over bounded compositions);
//  3. within a (length, sum) group, by the integer partition (combination)
//     of sr into m parts ≤ |L| in Formula-4 enumeration order, each
//     holding nop (Eq. 5) positions, and finally by the ascending
//     lexicographic rank of the path's rank-permutation within its
//     combination (Algorithm 1).
//
// With cardinality ranking, summed rank approximates path cardinality, so
// paths of similar selectivity land near each other — the property that
// shrinks intra-bucket variance.
//
// The stage layout depends only on (k, |L|), so the constructor
// precomputes the stage boundaries and per-group combination tables once —
// O(k²·|L|·P) memory where P is the number of bounded partitions, far
// below the O(|Lk|) the paper rules out. Index then costs one group
// lookup, one combination scan, and one permutation ranking (Algorithm 1
// inverse); Path is Algorithm 2 driven by the same tables.
type SumBased struct {
	common
	// stage1[m-1] = domain offset of the length-m block.
	stage1 []int64
	// groups[m-1][sr-m] describes the (m, sr) stage-two group.
	groups [][]sumGroup
}

// sumGroup is one stage-two partition: its absolute domain offset and its
// stage-three combinations in Formula-4 order.
type sumGroup struct {
	offset int64
	parts  []partEntry
}

// partEntry is one stage-three combination: the ascending parts, its
// permutation count (Eq. 5), and the cumulative permutation count of the
// combinations preceding it within the group.
type partEntry struct {
	parts []int64
	nop   int64
	cum   int64
}

// NewSumBased builds the sum-based ordering rule over the given ranking.
// The paper always pairs it with cardinality ranking, but any ranking is
// accepted (IdentityRanking is useful in tests).
func NewSumBased(rank *Ranking, k int) *SumBased {
	o := &SumBased{common: newCommon(rank, k)}
	base := int64(rank.NumLabels())
	o.stage1 = make([]int64, k)
	o.groups = make([][]sumGroup, k)
	var offset int64
	for m := int64(1); m <= int64(k); m++ {
		o.stage1[m-1] = offset
		groups := make([]sumGroup, 0, m*base-m+1)
		for sr := m; sr <= m*base; sr++ {
			g := sumGroup{offset: offset}
			var cum int64
			combinat.Partitions(sr, m, base, func(parts []int64) bool {
				cp := make([]int64, len(parts))
				copy(cp, parts)
				n := combinat.NumPermutations(cp)
				g.parts = append(g.parts, partEntry{parts: cp, nop: n, cum: cum})
				cum += n
				return true
			})
			offset += cum // cum == dist(sr, m, base) by the tiling property
			groups = append(groups, g)
		}
		o.groups[m-1] = groups
	}
	return o
}

// Name implements Ordering. The paper refers to the method simply as
// "sum-based" (cardinality ranking implied); we keep that name for the
// canonical cardinality pairing and qualify other rankings.
func (o *SumBased) Name() string {
	if o.rank.Name() == "card" {
		return MethodSumBased
	}
	return "sum-" + o.rank.Name()
}

// Index implements Ordering.
func (o *SumBased) Index(p paths.Path) int64 {
	o.checkPath(p)
	m := int64(len(p))

	// Rank permutation and summed rank of p.
	perm := make([]int64, m)
	var sr int64
	for i, l := range p {
		perm[i] = o.rank.Rank(l)
		sr += perm[i]
	}
	g := &o.groups[m-1][sr-m]

	// Locate p's combination: the multiset of perm, compared against the
	// group's few ascending-sorted entries.
	sorted := make([]int64, m)
	copy(sorted, perm)
	sortAscending(sorted)
	for i := range g.parts {
		e := &g.parts[i]
		if equalInt64(e.parts, sorted) {
			return g.offset + e.cum + combinat.RankPermutation(perm)
		}
	}
	panic("ordering: sum-based combination table is missing a multiset (corrupt state)")
}

// Path implements Ordering. This is Algorithm 2 of the paper
// (unranking_in_sumbased) followed by Algorithm 1 for the final
// permutation step, driven by the precomputed stage tables.
func (o *SumBased) Path(idx int64) paths.Path {
	o.checkIndex(idx)
	// Stage 1: find the length block (stage1 is ascending).
	m := len(o.stage1)
	for m > 1 && o.stage1[m-1] > idx {
		m--
	}
	groups := o.groups[m-1]
	// Stage 2: find the (m, sr) group by offset (ascending; linear scan is
	// fine — there are at most m·|L| groups — but binary search keeps it
	// O(log) for large alphabets).
	lo, hi := 0, len(groups)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if groups[mid].offset <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	g := &groups[lo]
	rem := idx - g.offset
	// Stage 3: find the combination, then unrank the permutation within it
	// (Algorithm 1).
	for i := range g.parts {
		e := &g.parts[i]
		if rem < e.cum+e.nop {
			perm := combinat.UnrankPermutation(rem-e.cum, e.parts)
			p := make(paths.Path, len(perm))
			for j, r := range perm {
				p[j] = o.rank.Label(r)
			}
			return p
		}
	}
	panic("ordering: sum-based unranking fell through (corrupt state)")
}

// sortAscending is insertion sort for tiny slices (length ≤ k).
func sortAscending(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
