package ordering

import (
	"repro/internal/combinat"
	"repro/internal/paths"
)

// Numerical is the paper's numerical ordering rule (§3.2): paths are
// compared by length first (shorter before longer), then positionally by
// label rank. Equivalently, a length-m path is the m-digit number whose
// digits are (rank−1) in a base-|L| numeral system, offset by the count of
// all shorter paths. Both directions run in O(k).
type Numerical struct {
	common
	name string
}

// NewNumerical builds the numerical ordering rule over the given ranking.
func NewNumerical(rank *Ranking, k int) *Numerical {
	return &Numerical{common: newCommon(rank, k), name: "num-" + rank.Name()}
}

// Name implements Ordering.
func (o *Numerical) Name() string { return o.name }

// Index implements Ordering.
func (o *Numerical) Index(p paths.Path) int64 {
	o.checkPath(p)
	base := int64(o.rank.NumLabels())
	var offset int64
	for i := 1; i < len(p); i++ {
		offset += combinat.Pow(base, int64(i))
	}
	var val int64
	for _, l := range p {
		val = val*base + (o.rank.Rank(l) - 1)
	}
	return offset + val
}

// Path implements Ordering.
func (o *Numerical) Path(idx int64) paths.Path {
	o.checkIndex(idx)
	base := int64(o.rank.NumLabels())
	length := 1
	for {
		block := combinat.Pow(base, int64(length))
		if idx < block {
			break
		}
		idx -= block
		length++
	}
	p := make(paths.Path, length)
	for i := length - 1; i >= 0; i-- {
		p[i] = o.rank.Label(idx%base + 1)
		idx /= base
	}
	return p
}
