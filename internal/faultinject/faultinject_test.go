package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestNoInjectorIsInert(t *testing.T) {
	Uninstall()
	Fire("some.site") // must not panic
	if Fail("some.site") {
		t.Fatal("Fail reported true with no injector installed")
	}
	if Enabled() {
		t.Fatal("Enabled with nothing installed")
	}
}

func TestPanicRuleSkipAndCount(t *testing.T) {
	inj := NewInjector(Rule{Site: "s", Skip: 2, Count: 1, Action: ActPanic})
	Install(inj)
	t.Cleanup(Uninstall)

	fire := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		Fire("s")
		return false
	}
	got := []bool{fire(), fire(), fire(), fire(), fire()}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit %d: panicked=%v, want %v (full: %v)", i+1, got[i], want[i], got)
		}
	}
	if v := inj.Visits("s"); v != 5 {
		t.Fatalf("Visits = %d, want 5", v)
	}
	if tr := inj.Triggered("s"); tr != 1 {
		t.Fatalf("Triggered = %d, want 1", tr)
	}
}

func TestPanicValue(t *testing.T) {
	inj := NewInjector(Rule{Site: "s", Action: ActPanic, PanicValue: "boom"})
	Install(inj)
	t.Cleanup(Uninstall)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Fire("s")
	t.Fatal("Fire did not panic")
}

func TestDelayRule(t *testing.T) {
	inj := NewInjector(Rule{Site: "s", Action: ActDelay, Delay: 20 * time.Millisecond, Count: 1})
	Install(inj)
	t.Cleanup(Uninstall)
	start := time.Now()
	Fire("s")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delayed visit took only %v", d)
	}
	start = time.Now()
	Fire("s") // rule exhausted
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("exhausted rule still delayed: %v", d)
	}
}

func TestFailRule(t *testing.T) {
	inj := NewInjector(Rule{Site: "alloc", Action: ActFail, Count: 2})
	Install(inj)
	t.Cleanup(Uninstall)
	got := []bool{Fail("alloc"), Fail("alloc"), Fail("alloc")}
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Fail visit %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	// Fire never serves Fail rules.
	Fire("alloc")
	if tr := inj.Triggered("alloc"); tr != 2 {
		t.Fatalf("Triggered = %d, want 2", tr)
	}
}

func TestUnlimitedCount(t *testing.T) {
	inj := NewInjector(Rule{Site: "s", Action: ActFail})
	Install(inj)
	t.Cleanup(Uninstall)
	for i := 0; i < 10; i++ {
		if !Fail("s") {
			t.Fatalf("visit %d did not trigger the unlimited rule", i+1)
		}
	}
}

func TestConcurrentVisits(t *testing.T) {
	const workers, per = 8, 1000
	inj := NewInjector(Rule{Site: "s", Skip: 100, Count: 50, Action: ActFail})
	Install(inj)
	t.Cleanup(Uninstall)
	var wg sync.WaitGroup
	var triggered sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for i := 0; i < per; i++ {
				if Fail("s") {
					n++
				}
			}
			triggered.Store(w, n)
		}(w)
	}
	wg.Wait()
	total := 0
	triggered.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 50 {
		t.Fatalf("triggered %d times across workers, want exactly 50", total)
	}
	if v := inj.Visits("s"); v != workers*per {
		t.Fatalf("Visits = %d, want %d", v, workers*per)
	}
}

// FuzzRuleAccounting pins the trigger-window arithmetic: for any
// skip/count/visits triple, the number of triggered visits is exactly
// the overlap of the visit sequence with the armed window, and counters
// stay consistent.
func FuzzRuleAccounting(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint8(5))
	f.Add(uint8(0), uint8(0), uint8(9))
	f.Add(uint8(7), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, skip, count, visits uint8) {
		inj := NewInjector(Rule{Site: "f", Skip: int(skip), Count: int(count), Action: ActFail})
		Install(inj)
		defer Uninstall()
		got := 0
		for i := 0; i < int(visits); i++ {
			if Fail("f") {
				got++
			}
		}
		armed := int(visits) - int(skip)
		if armed < 0 {
			armed = 0
		}
		want := armed
		if count > 0 && want > int(count) {
			want = int(count)
		}
		if got != want {
			t.Fatalf("skip=%d count=%d visits=%d: triggered %d, want %d", skip, count, visits, got, want)
		}
		if v := inj.Visits("f"); v != int(visits) {
			t.Fatalf("Visits = %d, want %d", v, visits)
		}
		if tr := inj.Triggered("f"); tr != got {
			t.Fatalf("Triggered = %d, observed %d", tr, got)
		}
	})
}
