// Package faultinject is the engine's build-tag-free fault-injection
// hook: named sites in the scheduling, execution, and caching layers
// (internal/sched, internal/exec, internal/relcache) call Fire or Fail at
// points where real deployments fail — a worker body about to run, a
// compose step about to start, a cache entry about to be cloned — and an
// installed Injector decides whether that visit panics, sleeps, or
// reports a simulated allocation failure. In production nothing is
// installed and every site costs one atomic load and a nil check, so the
// hooks stay compiled in (no build tags, no test-only binaries) without
// measurable overhead.
//
// Chaos tests install an Injector with deterministic rules ("panic on
// the 3rd visit to sched.task", "fail every relcache.put"), drive the
// engine under -race, and assert the containment contract: injected
// panics surface as typed errors instead of crashing the process,
// injected delays trip deadlines into typed cancellations, injected
// allocation failures degrade service (a skipped cache insert) without
// corrupting results, and every abort path releases its goroutines and
// pooled relations. Survival runs — rules that never trigger — must be
// bit-identical to runs with no injector at all, which pins that the
// hooks themselves are behavior-free.
//
// Site names are plain strings owned by the host packages (the package
// deliberately defines no site registry — a site is whatever a caller
// names). The sites currently wired in:
//
//	sched.task      before each scheduler task body   (Fire)
//	exec.step       before each compose/join step     (Fire)
//	exec.shard      inside each sharded kernel task   (Fire)
//	relcache.put    before cloning a cache entry      (Fail)
//	serve.admit     before overload admission control (Fire)
package faultinject

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what a triggered rule does to the visiting goroutine.
type Action int

const (
	// ActPanic makes the visit panic with the rule's PanicValue (or a
	// descriptive default), exercising the host layer's containment.
	ActPanic Action = iota
	// ActDelay makes the visit sleep for the rule's Delay, exercising
	// deadline and cancellation paths.
	ActDelay
	// ActFail makes a Fail call report true, simulating a resource
	// allocation failure the site must degrade around.
	ActFail
)

// Rule arms one site: after Skip non-triggering visits, the next Count
// visits trigger the Action (Count ≤ 0 means every visit from then on).
type Rule struct {
	// Site is the injection point's name.
	Site string
	// Skip is the number of visits that pass through before the rule
	// starts triggering.
	Skip int
	// Count is how many visits trigger once armed; ≤ 0 means unlimited.
	Count int
	// Action is what a triggered visit does.
	Action Action
	// PanicValue is the value a Panic action panics with (nil selects a
	// descriptive default naming the site).
	PanicValue any
	// Delay is the sleep duration of a Delay action.
	Delay time.Duration
	// Jitter widens a Delay action: each triggered visit sleeps Delay
	// plus a uniform random extra in [0, Jitter), drawn from the
	// injector's own seeded source so a chaos run stays reproducible.
	// Jittered delays model the realistic overload pattern — service
	// times that vary visit to visit instead of stalling uniformly.
	Jitter time.Duration
}

// ruleState is one armed rule plus its visit counters.
type ruleState struct {
	Rule
	visits    int
	triggered int
}

// Injector is a set of armed rules plus per-site visit counters. Install
// it to activate; all methods are safe for concurrent use (injected
// sites run on scheduler workers).
type Injector struct {
	mu     sync.Mutex
	rules  map[string][]*ruleState
	visits map[string]int
	rng    *rand.Rand // jitter source; fixed seed keeps chaos runs reproducible
}

// NewInjector returns an empty injector; arm it with Add and activate it
// with Install.
func NewInjector(rules ...Rule) *Injector {
	inj := &Injector{
		rules:  map[string][]*ruleState{},
		visits: map[string]int{},
		rng:    rand.New(rand.NewSource(1)),
	}
	for _, r := range rules {
		inj.Add(r)
	}
	return inj
}

// Add arms one rule.
func (inj *Injector) Add(r Rule) {
	inj.mu.Lock()
	inj.rules[r.Site] = append(inj.rules[r.Site], &ruleState{Rule: r})
	inj.mu.Unlock()
}

// Visits returns how many times the site has been visited (Fire or Fail)
// since installation — the assertion hook of chaos tests.
func (inj *Injector) Visits(site string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.visits[site]
}

// Triggered returns how many visits to the site actually triggered a
// rule.
func (inj *Injector) Triggered(site string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for _, rs := range inj.rules[site] {
		n += rs.triggered
	}
	return n
}

// visit records one visit and returns the rule to trigger, if any, plus
// the visit's jitter draw (the rng lives under the lock). The
// panic/sleep itself happens outside the lock so a delayed or panicking
// site never blocks other sites.
func (inj *Injector) visit(site string, want Action) (*Rule, time.Duration) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.visits[site]++
	for _, rs := range inj.rules[site] {
		if rs.Action != want && !(want == ActPanic && rs.Action == ActDelay) {
			// Fire serves Panic and Delay rules; Fail serves Fail rules.
			continue
		}
		rs.visits++
		if rs.visits <= rs.Skip {
			continue
		}
		if rs.Count > 0 && rs.triggered >= rs.Count {
			continue
		}
		rs.triggered++
		var jitter time.Duration
		if rs.Action == ActDelay && rs.Jitter > 0 {
			jitter = time.Duration(inj.rng.Int63n(int64(rs.Jitter)))
		}
		return &rs.Rule, jitter
	}
	return nil, 0
}

// active is the process-wide installed injector; nil in production.
var active atomic.Pointer[Injector]

// Install activates the injector process-wide. Tests must Uninstall
// (typically via t.Cleanup) before the next test runs.
func Install(inj *Injector) { active.Store(inj) }

// Uninstall deactivates fault injection.
func Uninstall() { active.Store(nil) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Fire visits a site that can absorb a panic or a delay. With no
// injector installed it is a single atomic load. A triggered Panic rule
// panics with its value; a triggered Delay rule sleeps.
func Fire(site string) {
	inj := active.Load()
	if inj == nil {
		return
	}
	r, jitter := inj.visit(site, ActPanic)
	if r == nil {
		return
	}
	switch r.Action {
	case ActDelay:
		time.Sleep(r.Delay + jitter)
	case ActPanic:
		v := r.PanicValue
		if v == nil {
			v = "faultinject: injected panic at " + site
		}
		panic(v)
	}
}

// Fail visits a site that can degrade around a simulated allocation
// failure and reports whether the site should fail this visit. With no
// injector installed it is a single atomic load returning false.
func Fail(site string) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	r, _ := inj.visit(site, ActFail)
	return r != nil
}
