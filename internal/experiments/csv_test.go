package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return records
}

func TestTable4CSV(t *testing.T) {
	res, err := RunTable4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	wantRows := 1 + len(res.Rows)*len(res.Methods)
	if len(records) != wantRows {
		t.Fatalf("rows = %d, want %d", len(records), wantRows)
	}
	if strings.Join(records[0], ",") != "dataset,k,domain_size,beta,method,avg_micros" {
		t.Fatalf("header = %v", records[0])
	}
	for _, rec := range records[1:] {
		if rec[0] != "Moreno health" {
			t.Fatalf("dataset column = %q", rec[0])
		}
	}
}

func TestFigure2CSV(t *testing.T) {
	res, err := RunFigure2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 1+len(res.Cells) {
		t.Fatalf("rows = %d, want %d", len(records), 1+len(res.Cells))
	}
}

func TestFigure1CSV(t *testing.T) {
	res, err := RunFigure1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 1+len(res.Frequencies) {
		t.Fatalf("rows = %d, want %d", len(records), 1+len(res.Frequencies))
	}
	if records[1][0] != "0" || records[1][1] != "1" {
		t.Fatalf("first data row = %v", records[1])
	}
}

func TestDatasetFilter(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"SNAP-ER"}
	res, err := RunFigure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Dataset != "SNAP-ER" {
			t.Fatalf("dataset filter leaked %q", c.Dataset)
		}
	}
	if len(res.Cells) == 0 {
		t.Fatal("filtered run produced no cells")
	}
	rows, err := RunTable3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Spec.Name != "SNAP-ER" {
		t.Fatalf("Table 3 filter wrong: %d rows", len(rows))
	}
	// Unknown name filters everything out.
	opt.Datasets = []string{"nope"}
	rows, err = RunTable3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatal("unknown dataset name should match nothing")
	}
}

// failWriter errors after n bytes, exercising the CSV writers' error
// paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		return 0, bytes.ErrTooLarge
	}
	w.n -= len(p)
	return len(p), nil
}

func TestCSVWriteFailures(t *testing.T) {
	opt := tinyOptions()
	t4, err := RunTable4(opt)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := RunFigure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := OrderingBounds(opt)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := BuilderAblation(opt)
	if err != nil {
		t.Fatal(err)
	}
	writers := map[string]func(w *failWriter) error{
		"table4":   func(w *failWriter) error { return t4.WriteCSV(w) },
		"figure2":  func(w *failWriter) error { return f2.WriteCSV(w) },
		"bounds":   func(w *failWriter) error { return WriteBoundsCSV(w, bounds) },
		"ablation": func(w *failWriter) error { return WriteAblationCSV(w, cells) },
	}
	for name, fn := range writers {
		if err := fn(&failWriter{n: 10}); err == nil {
			t.Errorf("%s: failing writer should surface an error", name)
		}
	}
}

func TestBoundsAndAblationCSV(t *testing.T) {
	opt := tinyOptions()
	bounds, err := OrderingBounds(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBoundsCSV(&buf, bounds); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, &buf)); got != 1+len(bounds) {
		t.Fatalf("bounds rows = %d", got)
	}

	cells, err := BuilderAblation(opt)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteAblationCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, &buf)); got != 1+len(cells) {
		t.Fatalf("ablation rows = %d", got)
	}
}
