package experiments

import (
	"bytes"
	"testing"

	"repro/internal/ordering"
)

func TestPlanQuality(t *testing.T) {
	opt := tinyOptions()
	opt.Queries = 60
	cells, err := PlanQuality(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(cells))
	}
	for _, c := range cells {
		if c.Agreement < 0 || c.Agreement > 1 {
			t.Fatalf("agreement %v outside [0,1]: %+v", c.Agreement, c)
		}
		if c.WorkRatio < 1 {
			t.Fatalf("work ratio %v below 1 (cannot beat the oracle): %+v", c.WorkRatio, c)
		}
		if c.TreeAgreement < 0 || c.TreeAgreement > 1 {
			t.Fatalf("tree agreement %v outside [0,1]: %+v", c.TreeAgreement, c)
		}
		if c.TreeWorkRatio < 1 {
			t.Fatalf("tree work ratio %v below 1 (cannot beat the tree oracle): %+v", c.TreeWorkRatio, c)
		}
		if c.OracleBushyWins < 0 || c.OracleBushyWins > 1 {
			t.Fatalf("oracle bushy wins %v outside [0,1]: %+v", c.OracleBushyWins, c)
		}
		if c.OracleBushyWins != cells[0].OracleBushyWins {
			t.Fatalf("OracleBushyWins is workload-level and must not vary by method: %+v", c)
		}
		if c.CacheBushyWins < 0 || c.CacheBushyWins > 1 {
			t.Fatalf("cache bushy wins %v outside [0,1]: %+v", c.CacheBushyWins, c)
		}
		if c.CacheBushyWins != cells[0].CacheBushyWins {
			t.Fatalf("CacheBushyWins is workload-level and must not vary by method: %+v", c)
		}
	}
	var buf bytes.Buffer
	if err := WritePlanCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty CSV")
	}
}

func TestPlanQualityEstimatesHelp(t *testing.T) {
	// Histogram-driven planning must beat random planning. A length-4
	// query has 4 zig-zag plans, so picking one uniformly at random finds
	// the optimum on ≥ 1/4 of queries (ties only help); every ordering
	// method must clear even the old 3-plan bar of 1/3, and the better
	// half of the field must be decisively above it — the spread between
	// methods is the point of the widened plan space.
	opt := Options{
		Scale: 0.08, Seed: 1, TimingK: 3,
		AccuracyKs: []int{3}, BetaDenoms: []int{16},
		Queries: 100, Repeats: 1,
	}
	cells, err := PlanQuality(opt)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, c := range cells {
		if c.Agreement <= 1.0/3 {
			t.Errorf("%s: oracle agreement %.3f not better than random plan choice", c.Method, c.Agreement)
		}
		if c.Agreement > best {
			best = c.Agreement
		}
	}
	if best <= 0.6 {
		t.Errorf("no ordering method clears 0.6 oracle agreement (best %.3f)", best)
	}
	// And sum-based should not be clearly worse than the field, given its
	// Figure 2 accuracy edge.
	var sum, worst float64
	worst = 2
	for _, c := range cells {
		if c.Method == ordering.MethodSumBased {
			sum = c.WorkRatio
		} else if c.WorkRatio < worst {
			worst = c.WorkRatio
		}
	}
	if sum > worst*1.25 {
		t.Errorf("sum-based work ratio %.3f clearly worse than best rival %.3f", sum, worst)
	}
}
