package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ordering"
)

// tinyOptions keeps experiment tests fast.
func tinyOptions() Options {
	return Options{
		Scale:      0.02,
		Seed:       1,
		TimingK:    3,
		AccuracyKs: []int{2},
		BetaDenoms: []int{4, 32},
		Queries:    200,
		Repeats:    1,
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Scale: 0, TimingK: 3, AccuracyKs: []int{2}, BetaDenoms: []int{2}, Queries: 1, Repeats: 1},
		{Scale: 0.5, TimingK: 0, AccuracyKs: []int{2}, BetaDenoms: []int{2}, Queries: 1, Repeats: 1},
		{Scale: 0.5, TimingK: 3, AccuracyKs: nil, BetaDenoms: []int{2}, Queries: 1, Repeats: 1},
		{Scale: 0.5, TimingK: 3, AccuracyKs: []int{2}, BetaDenoms: nil, Queries: 1, Repeats: 1},
		{Scale: 2, TimingK: 3, AccuracyKs: []int{2}, BetaDenoms: []int{2}, Queries: 1, Repeats: 1},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("options %d should be invalid", i)
		}
	}
	if err := DefaultOptions().validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	if err := PaperOptions().validate(); err != nil {
		t.Fatalf("paper options invalid: %v", err)
	}
}

func TestBetasDerivation(t *testing.T) {
	o := Options{BetaDenoms: []int{2, 4, 8, 16, 32, 64, 128}}
	// The paper's Moreno k=6 domain: 55986 → 27993, 13996, 6998, 3499,
	// 1749, 874, 437.
	got := o.betas(55986)
	want := []int{27993, 13996, 6998, 3499, 1749, 874, 437}
	if len(got) != len(want) {
		t.Fatalf("betas = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("betas[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Degenerate budgets are dropped.
	if bs := o.betas(100); len(bs) != len(want) {
		for _, b := range bs {
			if b < 1 {
				t.Fatal("budget below 1 not dropped")
			}
		}
	}
}

func TestRunTables12MatchesPaper(t *testing.T) {
	res := RunTables12()
	if res.SummedRanks["2/2"] != 6 || res.SummedRanks["1"] != 1 || res.SummedRanks["3/1"] != 3 {
		t.Fatalf("summed ranks wrong: %v", res.SummedRanks)
	}
	wantSum := []string{"1", "3", "2", "1/1", "1/3", "3/1", "3/3", "1/2", "2/1", "3/2", "2/3", "2/2"}
	got := res.Orderings[ordering.MethodSumBased]
	for i := range wantSum {
		if got[i] != wantSum[i] {
			t.Fatalf("sum-based row = %v, want %v", got, wantSum)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "sum-based") {
		t.Fatalf("render missing sections:\n%s", out)
	}
}

func TestRunTable3(t *testing.T) {
	rows, err := RunTable3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredLabels != r.Spec.Labels {
			t.Errorf("%s: labels %d != %d", r.Spec.Name, r.MeasuredLabels, r.Spec.Labels)
		}
		if r.MeasuredEdges <= 0 || r.MeasuredVertices <= 0 {
			t.Errorf("%s: empty graph", r.Spec.Name)
		}
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Moreno health") {
		t.Fatal("render missing dataset name")
	}
}

func TestRunTable4Shape(t *testing.T) {
	res, err := RunTable4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 5 {
		t.Fatalf("methods = %v", res.Methods)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, m := range res.Methods {
			v, ok := row.AvgMicros[m]
			if !ok || v <= 0 {
				t.Fatalf("β=%d method %s: bad timing %v", row.Beta, m, v)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Fatal("render missing title")
	}
}

func TestRunFigure2ShapeAndSumBasedWins(t *testing.T) {
	opt := tinyOptions()
	res, err := RunFigure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 4 datasets × 1 k × 2 betas × 5 methods.
	if len(res.Cells) != 4*1*2*5 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.MeanErrorRate < 0 || c.MeanErrorRate > 1 {
			t.Fatalf("error rate %v outside [0,1]: %+v", c.MeanErrorRate, c)
		}
	}
	if res.Cell("SNAP-ER", 2, 0, ordering.MethodNumAlph) != nil {
		t.Fatal("Cell with unknown beta should be nil")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Fatal("render missing title")
	}
}

func TestRunFigure1(t *testing.T) {
	res, err := RunFigure1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatal("Figure 1 is a k=3 visualization")
	}
	if len(res.Labels) != len(res.Frequencies) || len(res.Labels) != len(res.BucketMeans) {
		t.Fatal("series lengths disagree")
	}
	// Domain must be all non-empty paths in num-alph order: first label
	// path is "1".
	if res.Labels[0] != "1" {
		t.Fatalf("first domain label = %q", res.Labels[0])
	}
	var buf bytes.Buffer
	res.Render(&buf, 20)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestBuilderAblation(t *testing.T) {
	cells, err := BuilderAblation(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5*5 {
		t.Fatalf("cells = %d, want 25", len(cells))
	}
	for _, c := range cells {
		if c.MeanErrorRate < 0 || c.MeanErrorRate > 1 {
			t.Fatalf("bad error rate %+v", c)
		}
	}
}

func TestOrderingBounds(t *testing.T) {
	cells, err := OrderingBounds(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 2 betas × 8 orderings (5 paper methods + ideal + sum-L2 + product).
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	want := map[string]bool{"ideal": false, "sum-L2": false, "product": false}
	for _, c := range cells {
		if _, ok := want[c.Method]; ok {
			want[c.Method] = true
		}
	}
	for m, found := range want {
		if !found {
			t.Errorf("%s ordering missing from bounds", m)
		}
	}
}

func TestRenderTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	RenderTable(&buf, []string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatal("missing separator")
	}
}

func TestRenderBars(t *testing.T) {
	var buf bytes.Buffer
	RenderBars(&buf, []string{"x", "yy"}, []float64{1, 2}, 10)
	out := buf.String()
	if !strings.Contains(out, "██████████") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched lengths should panic")
			}
		}()
		RenderBars(&buf, []string{"x"}, []float64{1, 2}, 10)
	}()
}
