package experiments

import (
	"fmt"
	"testing"
)

// TestRunOverloadBenchSchema runs the overload bench at a tiny scale and
// pins the report structure the committed BENCH_overload.json and
// cmd/benchdiff's gate consume: per overdrive multiple an uncontrolled
// baseline row (no ratio, nothing shed or degraded — there is no
// controller) and a controlled row whose speedup_vs_baseline is the
// goodput ratio and whose overload columns show the controller and the
// retrying client actually working.
func TestRunOverloadBenchSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("perf bench measurement in -short mode")
	}
	rep, err := RunOverloadBench(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, BenchSchemaVersion)
	}
	byName := map[string]PerfResult{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.QPS <= 0 || r.GoodputQPS <= 0 {
			t.Fatalf("overload row without pass timing or throughput: %+v", r)
		}
		if r.P50Ns <= 0 || r.P50Ns > r.P95Ns || r.P95Ns > r.P99Ns {
			t.Fatalf("accepted-sojourn percentiles missing or out of order: %+v", r)
		}
		if r.Workers != 1 {
			t.Fatalf("overload rows must record workers 1 for cross-host gating: %+v", r)
		}
		byName[r.Name] = r
	}
	if len(byName) != len(rep.Results) {
		t.Fatalf("duplicate row names in %d results", len(rep.Results))
	}
	controllerWorked := false
	for _, mult := range overloadMultiples {
		unc, ok := byName[fmt.Sprintf("overload/uncontrolled-%dx", mult)]
		if !ok {
			t.Fatalf("missing uncontrolled %dx row", mult)
		}
		if unc.Speedup != 0 || unc.Shed != 0 || unc.Retries != 0 || unc.Degraded != 0 {
			t.Fatalf("uncontrolled row is the baseline and has no controller: %+v", unc)
		}
		ctl, ok := byName[fmt.Sprintf("overload/controlled-%dx", mult)]
		if !ok {
			t.Fatalf("missing controlled %dx row", mult)
		}
		if ctl.Speedup <= 0 {
			t.Fatalf("controlled row missing its goodput ratio: %+v", ctl)
		}
		if ctl.Shed > 0 || ctl.Retries > 0 || ctl.Degraded > 0 {
			controllerWorked = true
		}
	}
	if !controllerWorked {
		t.Fatal("no controlled row shows any shed, retry, or degraded work — the bench exercised nothing")
	}
}
