package experiments

import "testing"

// TestRunRPQBenchShape pins the artifact's rows: cold baseline, warm
// pass with nonzero repetition-unroll cache hits and a positive
// speedup ratio, and an estimate row with a finite q-error ≥ 1.
func TestRunRPQBenchShape(t *testing.T) {
	rep, err := RunRPQBench(0.02, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]int{}
	for _, r := range rep.Results {
		rows[r.Name]++
		switch r.Name {
		case "rpq/cold":
			if r.NsPerOp <= 0 {
				t.Errorf("%s on %s: ns_per_op %d", r.Name, r.Dataset, r.NsPerOp)
			}
		case "rpq/warm":
			if r.Speedup <= 0 {
				t.Errorf("%s on %s: speedup %f", r.Name, r.Dataset, r.Speedup)
			}
			if r.CacheHits == 0 {
				t.Errorf("%s on %s: no cache hits — repetition unroll not sharing", r.Name, r.Dataset)
			}
		case "rpq/estimate":
			if r.QError < 1 {
				t.Errorf("%s on %s: q-error %f < 1", r.Name, r.Dataset, r.QError)
			}
		}
	}
	for _, name := range []string{"rpq/cold", "rpq/warm", "rpq/estimate"} {
		if rows[name] != len(cacheBenchDatasets) {
			t.Errorf("row %s appears %d times, want %d", name, rows[name], len(cacheBenchDatasets))
		}
	}
}
