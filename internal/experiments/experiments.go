// Package experiments reproduces the paper's evaluation: the §3.4 worked
// example (Tables 1–2), the Figure 1 distribution visualization, the
// Table 3 dataset inventory, the Table 4 estimation-time study, and the
// Figure 2 accuracy study, plus ablations beyond the paper (histogram
// builder comparison, ideal-ordering bound, sum-L2 base sets).
//
// Every experiment takes an Options value; DefaultOptions runs at reduced
// dataset scale so the full suite finishes in seconds (same code paths,
// smaller graphs — DESIGN.md §4), while PaperOptions matches the published
// parameters.
//
// In the layer map (graph → bitset → paths → exec → pathsel) this is the
// evaluation harness over the top: it drives every layer end to end
// (censuses, histograms, planners, executors) and emits the committed
// BENCH_*.json perf artifacts via RunPerfBench/RunExecBench.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/ordering"
	"repro/internal/paths"
)

// Options parameterizes the experiment suite.
type Options struct {
	// Scale shrinks every Table 3 dataset proportionally, in (0, 1].
	Scale float64
	// Seed drives all dataset generation and query sampling.
	Seed int64
	// TimingK is the path length bound of the Table 4 timing study
	// (paper: 6).
	TimingK int
	// AccuracyKs are the path length bounds swept by Figure 2.
	AccuracyKs []int
	// BetaDenoms derive bucket budgets as β = |Lk|/d for each denominator
	// d (paper: 2, 4, 8, 16, 32, 64, 128).
	BetaDenoms []int
	// Queries is the number of estimation calls timed per Table 4 cell.
	Queries int
	// Repeats is the number of timing repetitions averaged (paper: 100).
	Repeats int
	// Datasets optionally restricts multi-dataset experiments (Figure 2,
	// Table 3) to the named Table 3 rows; nil means all four.
	Datasets []string
}

// wantDataset reports whether the named dataset is selected.
func (o Options) wantDataset(name string) bool {
	if len(o.Datasets) == 0 {
		return true
	}
	for _, d := range o.Datasets {
		if d == name {
			return true
		}
	}
	return false
}

// DefaultOptions returns the fast reduced-scale configuration.
func DefaultOptions() Options {
	return Options{
		Scale:      0.04,
		Seed:       1,
		TimingK:    4,
		AccuracyKs: []int{2, 3},
		BetaDenoms: []int{2, 8, 32, 128},
		Queries:    2000,
		Repeats:    3,
	}
}

// PaperOptions returns the published experiment parameters. The full
// Figure 2 sweep at this setting recomputes exact selectivities of up to
// |L8|=k6 censuses on ~200k-edge graphs — expect hours, not minutes.
func PaperOptions() Options {
	return Options{
		Scale:      1.0,
		Seed:       1,
		TimingK:    6,
		AccuracyKs: []int{2, 3, 4, 5, 6},
		BetaDenoms: []int{2, 4, 8, 16, 32, 64, 128},
		Queries:    10000,
		Repeats:    100,
	}
}

func (o Options) validate() error {
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("experiments: scale %v out of (0,1]", o.Scale)
	}
	if o.TimingK < 1 || o.Queries < 1 || o.Repeats < 1 {
		return fmt.Errorf("experiments: non-positive timing parameters %+v", o)
	}
	if len(o.AccuracyKs) == 0 || len(o.BetaDenoms) == 0 {
		return fmt.Errorf("experiments: empty sweep lists")
	}
	return nil
}

// betas derives the bucket budgets for a domain of size n, dropping
// degenerate (< 1) entries.
func (o Options) betas(n int64) []int {
	var out []int
	for _, d := range o.BetaDenoms {
		b := int(n / int64(d))
		if b >= 1 {
			out = append(out, b)
		}
	}
	return out
}

// samplePaths draws q uniform random label paths from the domain of ord.
func samplePaths(ord ordering.Ordering, q int, seed int64) []paths.Path {
	rng := rand.New(rand.NewSource(seed))
	out := make([]paths.Path, q)
	for i := range out {
		out[i] = ord.Path(rng.Int63n(ord.Size()))
	}
	return out
}

// Table4Result is the estimation-time study: average per-query estimation
// latency for each ordering method at each bucket budget.
type Table4Result struct {
	Dataset    string
	K          int
	DomainSize int64
	Methods    []string
	Rows       []Table4Row
}

// Table4Row is one β row of Table 4.
type Table4Row struct {
	Beta int
	// AvgMicros[method] is the mean per-estimate latency in microseconds.
	// (The paper reports milliseconds for its Java implementation; shape,
	// not absolute scale, is the reproduction target.)
	AvgMicros map[string]float64
}

// RunTable4 reproduces Table 4: V-Optimal histograms for the five ordering
// methods on the Moreno Health dataset, estimation latency vs β.
func RunTable4(opt Options) (*Table4Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	spec := dataset.Table3()[0] // Moreno health
	g := dataset.Generate(spec, opt.Scale, opt.Seed).Freeze()
	census := paths.NewCensusParallel(g, opt.TimingK, 0)

	res := &Table4Result{
		Dataset:    spec.Name,
		K:          opt.TimingK,
		DomainSize: census.Size(),
		Methods:    ordering.PaperMethods(),
	}
	for _, beta := range opt.betas(census.Size()) {
		row := Table4Row{Beta: beta, AvgMicros: map[string]float64{}}
		for _, method := range res.Methods {
			ord, err := ordering.ForGraph(method, g, opt.TimingK)
			if err != nil {
				return nil, err
			}
			ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
			if err != nil {
				return nil, err
			}
			queries := samplePaths(ord, opt.Queries, opt.Seed+int64(beta))
			var total time.Duration
			for r := 0; r < opt.Repeats; r++ {
				start := time.Now()
				for _, q := range queries {
					_ = ph.Estimate(q)
				}
				total += time.Since(start)
			}
			perQuery := total / time.Duration(opt.Repeats*len(queries))
			row.AvgMicros[method] = float64(perQuery.Nanoseconds()) / 1e3
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Figure2Cell is one point of the Figure 2 accuracy study.
type Figure2Cell struct {
	Dataset string
	K       int
	Beta    int
	Method  string
	// MeanErrorRate is the mean |err(ℓ)| (Eq. 6) over all ℓ ∈ Lk.
	MeanErrorRate float64
}

// Figure2Result is the full accuracy sweep.
type Figure2Result struct {
	Methods []string
	Cells   []Figure2Cell
}

// Cell returns the cell for (dataset, k, beta, method), or nil.
func (r *Figure2Result) Cell(ds string, k, beta int, method string) *Figure2Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Dataset == ds && c.K == k && c.Beta == beta && c.Method == method {
			return c
		}
	}
	return nil
}

// RunFigure2 reproduces Figure 2: mean error rate of V-Optimal estimation
// under each ordering method, across datasets, path length bounds and
// bucket budgets.
func RunFigure2(opt Options) (*Figure2Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	res := &Figure2Result{Methods: ordering.PaperMethods()}
	for _, spec := range dataset.Table3() {
		if !opt.wantDataset(spec.Name) {
			continue
		}
		g := dataset.Generate(spec, opt.Scale, opt.Seed).Freeze()
		for _, k := range opt.AccuracyKs {
			census := paths.NewCensusParallel(g, k, 0)
			for _, beta := range opt.betas(census.Size()) {
				for _, method := range res.Methods {
					ord, err := ordering.ForGraph(method, g, k)
					if err != nil {
						return nil, err
					}
					ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
					if err != nil {
						return nil, err
					}
					ev := core.Evaluate(ph, census)
					res.Cells = append(res.Cells, Figure2Cell{
						Dataset: spec.Name, K: k, Beta: beta,
						Method: method, MeanErrorRate: ev.MeanErrorRate,
					})
				}
			}
		}
	}
	return res, nil
}

// Figure1Result is the Figure 1 visualization data: the Moreno Health
// label-path distribution in num-alph order with an equi-width histogram
// over it.
type Figure1Result struct {
	Dataset     string
	K           int
	Labels      []string // path keys in domain order
	Frequencies []int64
	BucketMeans []float64 // per domain position, the equi-width estimate
	Beta        int
}

// RunFigure1 reproduces Figure 1 (k = 3 on Moreno Health, equi-width
// histogram over the num-alph domain). Beta is chosen as |Lk|/8 to make
// the staircase visible at any scale.
func RunFigure1(opt Options) (*Figure1Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	spec := dataset.Table3()[0]
	g := dataset.Generate(spec, opt.Scale, opt.Seed).Freeze()
	k := 3
	census := paths.NewCensusParallel(g, k, 0)
	ord, err := ordering.ForGraph(ordering.MethodNumAlph, g, k)
	if err != nil {
		return nil, err
	}
	beta := int(census.Size() / 8)
	if beta < 2 {
		beta = 2
	}
	ph, err := core.Build(census, ord, core.BuilderEquiWidth, beta)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{Dataset: spec.Name, K: k, Beta: beta}
	data := core.DomainVector(census, ord)
	for idx := int64(0); idx < ord.Size(); idx++ {
		res.Labels = append(res.Labels, ord.Path(idx).String(csrNamer{g}))
		res.Frequencies = append(res.Frequencies, data[idx])
		res.BucketMeans = append(res.BucketMeans, ph.Estimator().Estimate(idx))
	}
	return res, nil
}

// csrNamer adapts graph.CSR to the paths.Path String interface.
type csrNamer struct{ g *graph.CSR }

func (n csrNamer) LabelName(l int) string { return n.g.LabelName(l) }

// Table3Row reports the measured statistics of one generated dataset.
type Table3Row struct {
	Spec             dataset.Spec
	MeasuredVertices int
	MeasuredEdges    int
	MeasuredLabels   int
	LabelFrequencies []int64
}

// RunTable3 regenerates the four datasets at the configured scale and
// reports their measured statistics alongside the published ones.
func RunTable3(opt Options) ([]Table3Row, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, spec := range dataset.Table3() {
		if !opt.wantDataset(spec.Name) {
			continue
		}
		g := dataset.Generate(spec, opt.Scale, opt.Seed)
		rows = append(rows, Table3Row{
			Spec:             spec,
			MeasuredVertices: g.NumVertices(),
			MeasuredEdges:    g.NumEdges(),
			MeasuredLabels:   g.NumLabels(),
			LabelFrequencies: g.LabelFrequencies(),
		})
	}
	return rows, nil
}

// Tables12Result is the §3.4 worked example.
type Tables12Result struct {
	// SummedRanks maps each path key to its cardinality-ranking summed
	// rank (Table 1).
	SummedRanks map[string]int64
	// Orderings maps each method to its domain row (Table 2).
	Orderings map[string][]string
}

// RunTables12 reproduces the worked example: 3 labels with cardinalities
// 20, 100, 80 and k = 2.
func RunTables12() *Tables12Result {
	names := []string{"1", "2", "3"}
	freq := []int64{20, 100, 80}
	k := 2
	alph := ordering.AlphabeticalRanking(names)
	card := ordering.CardinalityRanking(freq)

	res := &Tables12Result{
		SummedRanks: map[string]int64{},
		Orderings:   map[string][]string{},
	}
	all := []paths.Path{}
	for l := 0; l < 3; l++ {
		all = append(all, paths.Path{l})
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			all = append(all, paths.Path{a, b})
		}
	}
	for _, p := range all {
		var sum int64
		for _, l := range p {
			sum += card.Rank(l)
		}
		res.SummedRanks[p.Key()] = sum
	}
	ords := map[string]ordering.Ordering{
		ordering.MethodNumAlph:  ordering.NewNumerical(alph, k),
		ordering.MethodNumCard:  ordering.NewNumerical(card, k),
		ordering.MethodLexAlph:  ordering.NewLexicographic(alph, k),
		ordering.MethodLexCard:  ordering.NewLexicographic(card, k),
		ordering.MethodSumBased: ordering.NewSumBased(card, k),
	}
	for name, ord := range ords {
		row := make([]string, ord.Size())
		for idx := int64(0); idx < ord.Size(); idx++ {
			row[idx] = ord.Path(idx).Key()
		}
		res.Orderings[name] = row
	}
	return res
}
