package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/paths"
)

// PerfBenchK is the path-length bound every perf-bench census runs at.
const PerfBenchK = 3

// SkewedScalingGraph is the worker-scaling workload shared by RunPerfBench
// and the top-level BenchmarkCensusSkewedScaling, so `go test -bench` and
// the committed BENCH_*.json measure the same graph: an Erdős–Rényi
// topology whose labels follow Zipf s=1.8 (one label carries most edges —
// the distribution that load-imbalances per-first-label parallelism).
func SkewedScalingGraph() *graph.CSR {
	return dataset.ErdosRenyi(600, 7000, dataset.NewZipfLabels(6, 1.8), 3).Freeze()
}

// PerfResult is one timed perf-bench measurement: a named operation on a
// named dataset at a worker count, averaged over Iters runs.
type PerfResult struct {
	Name    string  `json:"name"`    // e.g. "census/hybrid" or "compose/sparse-csr"
	Dataset string  `json:"dataset"` // Table 3 dataset or synthetic generator name
	K       int     `json:"k,omitempty"`
	Workers int     `json:"workers,omitempty"`
	Iters   int     `json:"iters"`
	NsPerOp int64   `json:"ns_per_op"`
	Speedup float64 `json:"speedup_vs_baseline,omitempty"` // filled for engine pairs
}

// PerfReport is the committed BENCH_*.json artifact: a snapshot of the
// census and compose-kernel performance so the trajectory is tracked
// across PRs.
type PerfReport struct {
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Scale      float64      `json:"scale"`
	Results    []PerfResult `json:"results"`
}

// WriteJSON encodes the report, indented, to w.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExecBenchQueries are the SNAP-FF label paths the exec bench executes:
// length-3 and length-4 queries mixing frequent (Zipf-head) and rare
// labels, so both sparse and dense row regimes appear mid-join.
var ExecBenchQueries = []paths.Path{
	{0, 1, 2},
	{1, 0, 0},
	{2, 1, 0, 3},
	{0, 0, 1, 2},
}

// benchSnapFF builds the shared SNAP-FF graph of the exec and
// compose-kernel sections at twice the census scale, clamped to the
// generator's (0, 1] domain.
func benchSnapFF(scale float64) *graph.CSR {
	s := 2 * scale
	if s > 1 {
		s = 1
	}
	return dataset.Generate(dataset.Table3()[3], s, 1).Freeze()
}

// execBenchResults measures query execution on SNAP-FF: the legacy dense
// executor against the hybrid engine for the forward and backward
// endpoint plans, plus the hybrid-only interior zig-zag start and the
// union (disjunction) evaluator. Each measurement runs every
// ExecBenchQueries path once per iteration.
func execBenchResults(g *graph.CSR, iters int) []PerfResult {
	execIters := iters * 5
	var out []PerfResult

	run := func(name string, ns, baseline int64) {
		// K is omitted: the workload mixes path lengths 3 and 4.
		r := PerfResult{Name: name, Dataset: "SNAP-FF", Iters: execIters, NsPerOp: ns}
		if baseline > 0 {
			r.Speedup = float64(baseline) / float64(ns)
		}
		out = append(out, r)
	}

	legacyFwd := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecuteDense(g, q, exec.Forward)
		}
	})
	run("exec/legacy-dense-forward", legacyFwd, 0)
	hybridFwd := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecutePlan(g, q, exec.Plan{Start: 0}, exec.Options{})
		}
	})
	run("exec/hybrid-forward", hybridFwd, legacyFwd)

	legacyBwd := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecuteDense(g, q, exec.Backward)
		}
	})
	run("exec/legacy-dense-backward", legacyBwd, 0)
	hybridBwd := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecutePlan(g, q, exec.Plan{Start: len(q) - 1}, exec.Options{})
		}
	})
	run("exec/hybrid-backward", hybridBwd, legacyBwd)

	// Interior zig-zag start: no legacy counterpart; baseline against the
	// hybrid forward plan so the reversal overhead is visible.
	zigzag := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecutePlan(g, q, exec.Plan{Start: 1}, exec.Options{})
		}
	})
	run("exec/hybrid-zigzag@1", zigzag, hybridFwd)

	// Union (pattern disjunction) over all bench queries.
	union := timeOp(execIters, func() {
		paths.UnionSelectivity(g, ExecBenchQueries)
	})
	run("exec/union-selectivity", union, 0)
	return out
}

// RunExecBench measures only the query-execution section — the
// BENCH_exec.json artifact. scale/iters default to 0.05/3 when ≤ 0.
func RunExecBench(scale float64, iters int) *PerfReport {
	if scale <= 0 {
		scale = 0.05
	}
	if iters <= 0 {
		iters = 3
	}
	return &PerfReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Results:    execBenchResults(benchSnapFF(scale), iters),
	}
}

// timeOp runs fn iters times and returns the mean ns/op.
func timeOp(iters int, fn func()) int64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Nanoseconds() / int64(iters)
}

// RunPerfBench measures the census engines (legacy sequential vs hybrid
// work-stealing at several worker counts) on the synthetic Table 3
// datasets plus a skewed-label scaling graph, and the compose kernels in
// isolation. scale/iters default to 0.05/3 when ≤ 0.
func RunPerfBench(scale float64, iters int) *PerfReport {
	if scale <= 0 {
		scale = 0.05
	}
	if iters <= 0 {
		iters = 3
	}
	rep := &PerfReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	const k = PerfBenchK

	// Census engines on the synthetic Table 3 datasets.
	for _, specIdx := range []int{2, 3} { // SNAP-ER, SNAP-FF
		spec := dataset.Table3()[specIdx]
		g := dataset.Generate(spec, scale, 1).Freeze()
		legacy := timeOp(iters, func() { paths.NewCensus(g, k) })
		rep.Results = append(rep.Results, PerfResult{
			Name: "census/legacy", Dataset: spec.Name, K: k, Workers: 1,
			Iters: iters, NsPerOp: legacy,
		})
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			ns := timeOp(iters, func() {
				paths.NewCensusHybrid(g, k, paths.CensusOptions{Workers: workers})
			})
			rep.Results = append(rep.Results, PerfResult{
				Name: "census/hybrid", Dataset: spec.Name, K: k, Workers: workers,
				Iters: iters, NsPerOp: ns,
				Speedup: float64(legacy) / float64(ns),
			})
			if workers == runtime.GOMAXPROCS(0) && workers == 1 {
				break // avoid duplicate row on single-core hosts
			}
		}
	}

	// Worker scaling on a skewed label distribution — the load-imbalance
	// case the work-stealing scheduler exists for.
	skew := SkewedScalingGraph()
	var base int64
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		ns := timeOp(iters, func() {
			paths.NewCensusHybrid(skew, k, paths.CensusOptions{Workers: workers})
		})
		res := PerfResult{
			Name: "census/hybrid-skewed", Dataset: "erdos-renyi-zipf1.8",
			K: k, Workers: workers, Iters: iters, NsPerOp: ns,
		}
		if base == 0 {
			base = ns
		} else {
			res.Speedup = float64(base) / float64(ns)
		}
		rep.Results = append(rep.Results, res)
	}

	// Query execution on SNAP-FF: the forward-join benchmark the exec
	// port is judged by, plus the other plan shapes. See RunExecBench.
	// The same frozen graph also serves the compose-kernel section below.
	g := benchSnapFF(scale)
	rep.Results = append(rep.Results, execBenchResults(g, iters)...)

	// Compose kernels in isolation on SNAP-FF label 0.
	op := g.LabelOperand(0)
	kernIters := iters * 20
	legacyRel := g.EdgeRelation(0)
	succ := g.SuccessorSets(0)
	legacyNs := timeOp(kernIters, func() { legacyRel.Compose(succ) })
	rep.Results = append(rep.Results, PerfResult{
		Name: "compose/legacy-dense", Dataset: "SNAP-FF", Iters: kernIters, NsPerOp: legacyNs,
	})
	for _, kern := range []struct {
		name    string
		density float64
	}{
		{"compose/sparse-csr", 1.0},
		{"compose/dense-csr", 1e-9},
		{"compose/adaptive", 0},
	} {
		rel := bitset.HybridFromCSR(op, kern.density)
		dst := bitset.NewHybrid(op.N, kern.density)
		scr := bitset.NewComposeScratch(op.N)
		ns := timeOp(kernIters, func() { rel.ComposeInto(dst, op, scr) })
		rep.Results = append(rep.Results, PerfResult{
			Name: kern.name, Dataset: "SNAP-FF", Iters: kernIters, NsPerOp: ns,
			Speedup: float64(legacyNs) / float64(ns),
		})
	}
	return rep
}
