package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/sched"
)

// PerfBenchK is the path-length bound every perf-bench census runs at.
const PerfBenchK = 3

// BenchSchemaVersion is the schema_version stamped into every PerfReport.
// Version history (see docs/benchmarks.md):
//
//	1 — go_version, gomaxprocs, scale, results (implicit; the field did
//	    not exist).
//	2 — adds schema_version, num_cpu (host core count), and workers (the
//	    configured worker-count override the emitters ran with), making
//	    the 1-core caveat machine-readable.
const BenchSchemaVersion = 2

// SkewedScalingGraph is the worker-scaling workload shared by RunPerfBench
// and the top-level BenchmarkCensusSkewedScaling, so `go test -bench` and
// the committed BENCH_*.json measure the same graph: an Erdős–Rényi
// topology whose labels follow Zipf s=1.8 (one label carries most edges —
// the distribution that load-imbalances per-first-label parallelism).
func SkewedScalingGraph() *graph.CSR {
	return dataset.ErdosRenyi(600, 7000, dataset.NewZipfLabels(6, 1.8), 3).Freeze()
}

// PerfResult is one timed perf-bench measurement: a named operation on a
// named dataset at a worker count, averaged over Iters runs.
type PerfResult struct {
	Name    string  `json:"name"`    // e.g. "census/hybrid" or "compose/sparse-csr"
	Dataset string  `json:"dataset"` // Table 3 dataset or synthetic generator name
	K       int     `json:"k,omitempty"`
	Workers int     `json:"workers,omitempty"`
	Iters   int     `json:"iters"`
	NsPerOp int64   `json:"ns_per_op"`
	Speedup float64 `json:"speedup_vs_baseline,omitempty"` // filled for engine pairs

	// Latency percentiles and achieved throughput, filled only by the
	// serving bench (serve/* rows), whose operation is a whole load pass
	// rather than a single call. Additive and omitempty, so the schema
	// version is unchanged and non-serving rows are byte-identical.
	P50Ns int64   `json:"p50_ns,omitempty"`
	P95Ns int64   `json:"p95_ns,omitempty"`
	P99Ns int64   `json:"p99_ns,omitempty"`
	QPS   float64 `json:"qps,omitempty"`

	// Cache traffic of one workload pass and estimate quality versus the
	// enumerated oracle, filled only by the RPQ bench (rpq/* rows).
	// Additive and omitempty like the serving fields above.
	CacheHits   int64   `json:"cache_hits,omitempty"`
	CacheMisses int64   `json:"cache_misses,omitempty"`
	QError      float64 `json:"q_error,omitempty"`

	// Overload-bench columns (overload/* rows), additive and omitempty:
	// how one load pass under an overdriven arrival process resolved.
	// GoodputQPS counts only answered (OK + degraded) arrivals per second
	// — the figure the controlled rows' speedup_vs_baseline is the ratio
	// of; Shed, Retries, and Degraded are the controller's and the
	// retrying client's visible work.
	GoodputQPS float64 `json:"goodput_qps,omitempty"`
	Shed       int64   `json:"shed,omitempty"`
	Retries    int64   `json:"retries,omitempty"`
	Degraded   int64   `json:"degraded,omitempty"`
}

// PerfReport is the committed BENCH_*.json artifact: a snapshot of the
// census, executor, and compose-kernel performance so the trajectory is
// tracked across PRs. GOMAXPROCS, NumCPU, and Workers make the
// measurement host's parallelism machine-readable: a report with
// gomaxprocs 1 cannot show wall-clock worker scaling no matter what the
// workers field says (docs/benchmarks.md, "The 1-core caveat").
type PerfReport struct {
	SchemaVersion int          `json:"schema_version"`
	GoVersion     string       `json:"go_version"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	NumCPU        int          `json:"num_cpu"`
	Workers       int          `json:"workers"`
	Scale         float64      `json:"scale"`
	Results       []PerfResult `json:"results"`
}

// newPerfReport stamps the environment fields of a report. scale must
// already be defaulted; workers must already be resolved through
// sched.WorkerCount.
func newPerfReport(scale float64, workers int) *PerfReport {
	return &PerfReport{
		SchemaVersion: BenchSchemaVersion,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Workers:       workers,
		Scale:         scale,
	}
}

// benchDefaults normalizes the shared emitter knobs: scale defaults to
// 0.05, iters to 3, workers (≤ 0) to GOMAXPROCS.
func benchDefaults(scale float64, iters, workers int) (float64, int, int) {
	if scale <= 0 {
		scale = 0.05
	}
	if iters <= 0 {
		iters = 3
	}
	return scale, iters, sched.WorkerCount(workers)
}

// WriteJSON encodes the report, indented, to w.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExecBenchQueries are the SNAP-FF label paths the exec bench executes:
// length-3 and length-4 queries mixing frequent (Zipf-head) and rare
// labels, so both sparse and dense row regimes appear mid-join.
var ExecBenchQueries = []paths.Path{
	{0, 1, 2},
	{1, 0, 0},
	{2, 1, 0, 3},
	{0, 0, 1, 2},
}

// benchSnapFF builds the shared SNAP-FF graph of the exec and
// compose-kernel sections at twice the census scale, clamped to the
// generator's (0, 1] domain.
func benchSnapFF(scale float64) *graph.CSR {
	s := 2 * scale
	if s > 1 {
		s = 1
	}
	return dataset.Generate(dataset.Table3()[3], s, 1).Freeze()
}

// execBenchResults measures query execution on SNAP-FF: the legacy dense
// executor against the hybrid engine for the forward and backward
// endpoint plans, plus the hybrid-only interior zig-zag start and the
// union (disjunction) evaluator. Each measurement runs every
// ExecBenchQueries path once per iteration. Hybrid rows execute at the
// given (already resolved) worker count and record it.
func execBenchResults(g *graph.CSR, iters, workers int) []PerfResult {
	execIters := iters * 5
	opt := exec.Options{Workers: workers}
	var out []PerfResult

	run := func(name string, ns, baseline int64, w int) {
		// K is omitted: the workload mixes path lengths 3 and 4.
		r := PerfResult{Name: name, Dataset: "SNAP-FF", Workers: w, Iters: execIters, NsPerOp: ns}
		if baseline > 0 {
			r.Speedup = float64(baseline) / float64(ns)
		}
		out = append(out, r)
	}

	legacyFwd := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecuteDense(g, q, exec.Forward)
		}
	})
	run("exec/legacy-dense-forward", legacyFwd, 0, 0)
	hybridFwd := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecutePlan(g, q, exec.Plan{Start: 0}, opt)
		}
	})
	run("exec/hybrid-forward", hybridFwd, legacyFwd, workers)

	legacyBwd := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecuteDense(g, q, exec.Backward)
		}
	})
	run("exec/legacy-dense-backward", legacyBwd, 0, 0)
	hybridBwd := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecutePlan(g, q, exec.Plan{Start: len(q) - 1}, opt)
		}
	})
	run("exec/hybrid-backward", hybridBwd, legacyBwd, workers)

	// Interior zig-zag start: no legacy counterpart; baseline against the
	// hybrid forward plan so the reversal overhead is visible.
	zigzag := timeOp(execIters, func() {
		for _, q := range ExecBenchQueries {
			exec.ExecutePlan(g, q, exec.Plan{Start: 1}, opt)
		}
	})
	run("exec/hybrid-zigzag@1", zigzag, hybridFwd, workers)

	// Union (pattern disjunction) over all bench queries.
	union := timeOp(execIters, func() {
		paths.UnionSelectivity(g, ExecBenchQueries)
	})
	run("exec/union-selectivity", union, 0, 0)
	return out
}

// RunExecBench measures only the query-execution section — the
// BENCH_exec.json artifact. scale/iters default to 0.05/3 when ≤ 0;
// workers ≤ 0 selects GOMAXPROCS.
func RunExecBench(scale float64, iters, workers int) *PerfReport {
	scale, iters, workers = benchDefaults(scale, iters, workers)
	rep := newPerfReport(scale, workers)
	rep.Results = execBenchResults(benchSnapFF(scale), iters, workers)
	return rep
}

// workerLadder measures one operation across the deduplicated worker
// counts (rungs < 1 are skipped), reporting each rung's speedup against
// the first — sequential — rung. template supplies the constant fields
// (Name, Dataset, K, Iters); Workers, NsPerOp, and Speedup are filled per
// rung. Both scaling sections (census/hybrid-skewed, parexec/*) emit
// through this one helper so their rung sets cannot drift apart.
func workerLadder(counts []int, template PerfResult, measure func(w int) int64) []PerfResult {
	var out []PerfResult
	var base int64
	seen := map[int]bool{}
	for _, w := range counts {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		r := template
		r.Workers = w
		r.NsPerOp = measure(w)
		if base == 0 {
			base = r.NsPerOp
		} else {
			r.Speedup = float64(base) / float64(r.NsPerOp)
		}
		out = append(out, r)
	}
	return out
}

// parExecBenchResults measures the parallel executor's worker scaling on
// SNAP-FF: every plan shape at worker counts 1, 2, 4, and the configured
// override, with each shape's 1-worker (sequential) run as its speedup
// baseline. On a GOMAXPROCS=1 host the >1-worker rows time the same
// single-core execution plus scheduling overhead — that is the point of
// recording gomaxprocs/num_cpu in the report header.
func parExecBenchResults(g *graph.CSR, iters, workers int) []PerfResult {
	execIters := iters * 5
	var out []PerfResult
	shapes := []struct {
		name  string
		start func(q paths.Path) int
	}{
		{"parexec/forward", func(paths.Path) int { return 0 }},
		{"parexec/backward", func(q paths.Path) int { return len(q) - 1 }},
		{"parexec/zigzag@1", func(paths.Path) int { return 1 }},
	}
	// Warm the graph's lazy operands (successor and predecessor CSRs)
	// outside the timed region so the 1-worker baseline, which runs
	// first, is not charged for them. One untimed pass per measured plan
	// shape guarantees coverage structurally — every operand a timed run
	// can touch has been built — rather than relying on the current query
	// set's labels happening to appear in both directions.
	for _, shape := range shapes {
		for _, q := range ExecBenchQueries {
			exec.ExecutePlan(g, q, exec.Plan{Start: shape.start(q)}, exec.Options{Workers: 1})
		}
	}
	counts := []int{1, 2, 4, workers}
	for _, shape := range shapes {
		out = append(out, workerLadder(counts,
			PerfResult{Name: shape.name, Dataset: "SNAP-FF", Iters: execIters},
			func(w int) int64 {
				opt := exec.Options{Workers: w}
				return timeOp(execIters, func() {
					for _, q := range ExecBenchQueries {
						exec.ExecutePlan(g, q, exec.Plan{Start: shape.start(q)}, opt)
					}
				})
			})...)
	}
	return out
}

// RunParExecBench measures only the parallel-executor scaling section —
// the BENCH_parexec.json artifact. scale/iters default to 0.05/3 when
// ≤ 0; workers ≤ 0 selects GOMAXPROCS.
func RunParExecBench(scale float64, iters, workers int) *PerfReport {
	scale, iters, workers = benchDefaults(scale, iters, workers)
	rep := newPerfReport(scale, workers)
	rep.Results = parExecBenchResults(benchSnapFF(scale), iters, workers)
	return rep
}

// BushyBenchQueries are the SNAP-FF label paths the bushy bench executes:
// longer queries (length 4 and 5) where splitting the path into two
// independently built segments is actually available to the planner.
var BushyBenchQueries = []paths.Path{
	{2, 1, 0, 3},
	{0, 0, 1, 2},
	{1, 0, 2, 1, 0},
}

// balancedTree is the canonical bushy plan for a length-k query: split at
// k/2 and build both halves as forward linear segments. k must be ≥ 2.
func balancedTree(k int) *exec.PlanTree {
	m := k / 2
	return &exec.PlanTree{Lo: 0, Hi: k, Start: -1,
		Left:  &exec.PlanTree{Lo: 0, Hi: m, Start: 0},
		Right: &exec.PlanTree{Lo: m, Hi: k, Start: m},
	}
}

// bushyBenchResults measures the bushy executor and the isolated
// relation×relation join kernel on SNAP-FF: the linear forward plan as
// the baseline, the balanced two-segment tree against it, the join kernel
// at each density regime, and the bushy executor's worker-scaling ladder.
// The balanced tree is a fixed plan shape, not the planner's choice, so
// the row measures the bushy machinery, not estimator quality.
func bushyBenchResults(g *graph.CSR, iters, workers int) []PerfResult {
	execIters := iters * 5
	opt := exec.Options{Workers: workers}
	var out []PerfResult

	linear := timeOp(execIters, func() {
		for _, q := range BushyBenchQueries {
			exec.ExecutePlan(g, q, exec.Plan{Start: 0}, opt)
		}
	})
	out = append(out, PerfResult{Name: "bushy/linear-forward", Dataset: "SNAP-FF",
		Workers: workers, Iters: execIters, NsPerOp: linear})
	tree := timeOp(execIters, func() {
		for _, q := range BushyBenchQueries {
			exec.ExecuteTree(g, q, balancedTree(len(q)), opt)
		}
	})
	out = append(out, PerfResult{Name: "bushy/balanced-tree", Dataset: "SNAP-FF",
		Workers: workers, Iters: execIters, NsPerOp: tree,
		Speedup: float64(linear) / float64(tree)})

	// Isolated relation×relation join kernel: join the two halves of the
	// first length-4 query at each density regime. The segments are built
	// once outside the timed region; the destination and scratch are
	// reused, so the rows time exactly one JoinInto.
	q := BushyBenchQueries[0]
	kernIters := iters * 20
	var sparseNs int64
	for _, kern := range []struct {
		name    string
		density float64
	}{
		{"join/sparse", 1.0},
		{"join/dense", 1e-9},
		{"join/adaptive", 0},
	} {
		kopt := exec.Options{DensityThreshold: kern.density, Workers: 1}
		left, _ := exec.ExecutePlan(g, q[:2], exec.Plan{Start: 0}, kopt)
		right, _ := exec.ExecutePlan(g, q[2:], exec.Plan{Start: 0}, kopt)
		dst := bitset.NewHybrid(g.NumVertices(), kern.density)
		scr := bitset.NewComposeScratch(g.NumVertices())
		ns := timeOp(kernIters, func() { left.JoinInto(dst, right, scr) })
		r := PerfResult{Name: kern.name, Dataset: "SNAP-FF", Iters: kernIters, NsPerOp: ns}
		if sparseNs == 0 {
			sparseNs = ns
		} else {
			r.Speedup = float64(sparseNs) / float64(ns)
		}
		out = append(out, r)
	}

	// Worker scaling of the full bushy execution (concurrent segment
	// builds + sharded final join). Warm the lazy graph operands outside
	// the timed region so the 1-worker baseline is not charged for them.
	for _, q := range BushyBenchQueries {
		exec.ExecuteTree(g, q, balancedTree(len(q)), exec.Options{Workers: 1})
	}
	out = append(out, workerLadder([]int{1, 2, 4, workers},
		PerfResult{Name: "bushyexec/balanced-tree", Dataset: "SNAP-FF", Iters: execIters},
		func(w int) int64 {
			wopt := exec.Options{Workers: w}
			return timeOp(execIters, func() {
				for _, q := range BushyBenchQueries {
					exec.ExecuteTree(g, q, balancedTree(len(q)), wopt)
				}
			})
		})...)
	return out
}

// RunBushyBench measures only the bushy-plan section — the
// BENCH_bushy.json artifact. scale/iters default to 0.05/3 when ≤ 0;
// workers ≤ 0 selects GOMAXPROCS.
func RunBushyBench(scale float64, iters, workers int) *PerfReport {
	scale, iters, workers = benchDefaults(scale, iters, workers)
	rep := newPerfReport(scale, workers)
	rep.Results = bushyBenchResults(benchSnapFF(scale), iters, workers)
	return rep
}

// timeOp runs fn iters times and returns the mean ns/op.
func timeOp(iters int, fn func()) int64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Nanoseconds() / int64(iters)
}

// RunPerfBench measures the census engines (legacy sequential vs hybrid
// work-stealing at several worker counts) on the synthetic Table 3
// datasets plus a skewed-label scaling graph, the query executors, and
// the compose kernels in isolation. scale/iters default to 0.05/3 when
// ≤ 0; workers ≤ 0 selects GOMAXPROCS, and the resolved count joins the
// fixed {1, 2, 4} rungs of every scaling ladder (deduplicated).
func RunPerfBench(scale float64, iters, workers int) *PerfReport {
	scale, iters, workers = benchDefaults(scale, iters, workers)
	rep := newPerfReport(scale, workers)
	const k = PerfBenchK

	// Census engines on the synthetic Table 3 datasets.
	for _, specIdx := range []int{2, 3} { // SNAP-ER, SNAP-FF
		spec := dataset.Table3()[specIdx]
		g := dataset.Generate(spec, scale, 1).Freeze()
		legacy := timeOp(iters, func() { paths.NewCensus(g, k) })
		rep.Results = append(rep.Results, PerfResult{
			Name: "census/legacy", Dataset: spec.Name, K: k,
			Iters: iters, NsPerOp: legacy,
		})
		for _, w := range []int{1, workers} {
			ns := timeOp(iters, func() {
				paths.NewCensusHybrid(g, k, paths.CensusOptions{Workers: w})
			})
			rep.Results = append(rep.Results, PerfResult{
				Name: "census/hybrid", Dataset: spec.Name, K: k, Workers: w,
				Iters: iters, NsPerOp: ns,
				Speedup: float64(legacy) / float64(ns),
			})
			if workers == 1 {
				break // avoid duplicate row on single-worker runs
			}
		}
	}

	// Worker scaling on a skewed label distribution — the load-imbalance
	// case the work-stealing scheduler exists for.
	skew := SkewedScalingGraph()
	rep.Results = append(rep.Results, workerLadder([]int{1, 2, 4, workers},
		PerfResult{Name: "census/hybrid-skewed", Dataset: "erdos-renyi-zipf1.8", K: k, Iters: iters},
		func(w int) int64 {
			return timeOp(iters, func() {
				paths.NewCensusHybrid(skew, k, paths.CensusOptions{Workers: w})
			})
		})...)

	// Query execution on SNAP-FF: the forward-join benchmark the exec
	// port is judged by, plus the other plan shapes and the parallel
	// executor's scaling ladder. See RunExecBench / RunParExecBench.
	// The same frozen graph also serves the compose-kernel section below.
	g := benchSnapFF(scale)
	rep.Results = append(rep.Results, execBenchResults(g, iters, workers)...)
	rep.Results = append(rep.Results, parExecBenchResults(g, iters, workers)...)

	// Compose kernels in isolation on SNAP-FF label 0.
	op := g.LabelOperand(0)
	kernIters := iters * 20
	legacyRel := g.EdgeRelation(0)
	succ := g.SuccessorSets(0)
	legacyNs := timeOp(kernIters, func() { legacyRel.Compose(succ) })
	rep.Results = append(rep.Results, PerfResult{
		Name: "compose/legacy-dense", Dataset: "SNAP-FF", Iters: kernIters, NsPerOp: legacyNs,
	})
	for _, kern := range []struct {
		name    string
		density float64
	}{
		{"compose/sparse-csr", 1.0},
		{"compose/dense-csr", 1e-9},
		{"compose/adaptive", 0},
	} {
		rel := bitset.HybridFromCSR(op, kern.density)
		dst := bitset.NewHybrid(op.N, kern.density)
		scr := bitset.NewComposeScratch(op.N)
		ns := timeOp(kernIters, func() { rel.ComposeInto(dst, op, scr) })
		rep.Results = append(rep.Results, PerfResult{
			Name: kern.name, Dataset: "SNAP-FF", Iters: kernIters, NsPerOp: ns,
			Speedup: float64(legacyNs) / float64(ns),
		})
	}
	return rep
}
