package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderTable writes a fixed-width ASCII table: header row, separator,
// data rows. Columns are sized to their widest cell.
func RenderTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	seps := make([]string, len(widths))
	for i, width := range widths {
		seps[i] = strings.Repeat("-", width)
	}
	line(seps)
	for _, row := range rows {
		line(row)
	}
}

// RenderBars writes a horizontal ASCII bar chart: one bar per (label,
// value), scaled to maxWidth characters.
func RenderBars(w io.Writer, labels []string, values []float64, maxWidth int) {
	if len(labels) != len(values) {
		panic("experiments: label/value length mismatch")
	}
	var max float64
	labelW := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(maxWidth))
		}
		fmt.Fprintf(w, "%-*s |%s %.4g\n", labelW, labels[i], strings.Repeat("█", n), v)
	}
}

// Render writes Table 4 in the paper's layout: β rows, one column per
// ordering method, per-estimate latency.
func (r *Table4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 4: average estimation time (µs/query), %s, k=%d, |Lk|=%d, V-Optimal\n",
		r.Dataset, r.K, r.DomainSize)
	header := append([]string{"beta"}, r.Methods...)
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%d", row.Beta)}
		for _, m := range r.Methods {
			cells = append(cells, fmt.Sprintf("%.3f", row.AvgMicros[m]))
		}
		rows = append(rows, cells)
	}
	RenderTable(w, header, rows)
}

// Render writes Figure 2 as one table per (dataset, k): β rows × method
// columns of mean error rates.
func (r *Figure2Result) Render(w io.Writer) {
	type group struct {
		ds string
		k  int
	}
	groups := []group{}
	seen := map[group]bool{}
	for _, c := range r.Cells {
		g := group{c.Dataset, c.K}
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	for _, g := range groups {
		fmt.Fprintf(w, "\nFigure 2: mean error rate — %s, k=%d (V-Optimal)\n", g.ds, g.k)
		betas := []int{}
		bseen := map[int]bool{}
		for _, c := range r.Cells {
			if c.Dataset == g.ds && c.K == g.k && !bseen[c.Beta] {
				bseen[c.Beta] = true
				betas = append(betas, c.Beta)
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(betas)))
		header := append([]string{"beta"}, r.Methods...)
		var rows [][]string
		for _, b := range betas {
			cells := []string{fmt.Sprintf("%d", b)}
			for _, m := range r.Methods {
				if c := r.Cell(g.ds, g.k, b, m); c != nil {
					cells = append(cells, fmt.Sprintf("%.4f", c.MeanErrorRate))
				} else {
					cells = append(cells, "-")
				}
			}
			rows = append(rows, cells)
		}
		RenderTable(w, header, rows)
	}
}

// Render writes the Figure 1 distribution as an ASCII chart: the true
// frequency and the equi-width bucket mean per domain position, downsampled
// to at most maxRows rows.
func (r *Figure1Result) Render(w io.Writer, maxRows int) {
	fmt.Fprintf(w, "Figure 1: %s, k=%d, num-alph domain, equi-width β=%d\n", r.Dataset, r.K, r.Beta)
	n := len(r.Frequencies)
	step := 1
	if maxRows > 0 && n > maxRows {
		step = (n + maxRows - 1) / maxRows
	}
	var max int64
	for _, f := range r.Frequencies {
		if f > max {
			max = f
		}
	}
	const width = 60
	for i := 0; i < n; i += step {
		bar := 0
		if max > 0 {
			bar = int(float64(r.Frequencies[i]) / float64(max) * width)
		}
		est := 0
		if max > 0 {
			est = int(r.BucketMeans[i] / float64(max) * width)
		}
		marks := []rune(strings.Repeat("█", bar) + strings.Repeat(" ", width+2-bar))
		if est >= 0 && est < len(marks) {
			marks[est] = '|' // histogram staircase overlay
		}
		fmt.Fprintf(w, "%-12s %s f=%d e=%.1f\n", r.Labels[i], string(marks), r.Frequencies[i], r.BucketMeans[i])
	}
}

// RenderTable3 writes the dataset inventory with published vs measured
// statistics.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: datasets (published → measured at current scale)")
	header := []string{"dataset", "#labels", "#vertices(pub)", "#vertices", "#edges(pub)", "#edges", "real world"}
	var cells [][]string
	for _, r := range rows {
		real := "no"
		if r.Spec.RealWorld {
			real = "yes"
		}
		cells = append(cells, []string{
			r.Spec.Name,
			fmt.Sprintf("%d", r.MeasuredLabels),
			fmt.Sprintf("%d", r.Spec.Vertices),
			fmt.Sprintf("%d", r.MeasuredVertices),
			fmt.Sprintf("%d", r.Spec.Edges),
			fmt.Sprintf("%d", r.MeasuredEdges),
			real,
		})
	}
	RenderTable(w, header, cells)
}

// Render writes the worked example in the paper's Table 1 + Table 2 form.
func (r *Tables12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: summed ranks (labels 1,2,3 with f = 20,100,80; cardinality ranking)")
	keys := make([]string, 0, len(r.SummedRanks))
	for k := range r.SummedRanks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	row := make([]string, len(keys))
	for i, k := range keys {
		row[i] = fmt.Sprintf("%d", r.SummedRanks[k])
	}
	RenderTable(w, keys, [][]string{row})

	fmt.Fprintln(w, "\nTable 2: ordered label paths per method")
	methods := make([]string, 0, len(r.Orderings))
	for m := range r.Orderings {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	header := []string{"index"}
	for i := 0; i < 12; i++ {
		header = append(header, fmt.Sprintf("%d", i))
	}
	var rows [][]string
	for _, m := range methods {
		rows = append(rows, append([]string{m}, r.Orderings[m]...))
	}
	RenderTable(w, header, rows)
}
