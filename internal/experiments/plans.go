package experiments

import (
	"encoding/csv"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/ordering"
	"repro/internal/paths"
)

// PlanCell is one ordering method's plan-quality measurement, over both
// plan spaces: the k linear zig-zag plans and the full bushy tree space.
type PlanCell struct {
	Method string
	Beta   int
	// Agreement is the fraction of queries where the histogram-driven
	// planner's chosen zig-zag plan costs exactly as much actual work as
	// the exact-statistics oracle's best zig-zag plan (equal-work ties
	// count as agreement — the planner lost nothing).
	Agreement float64
	// WorkRatio is (total work of chosen plans) / (total work of optimal
	// plans) — 1.0 means estimation errors never cost any actual work.
	WorkRatio float64
	// TreeAgreement and TreeWorkRatio are the same two measurements over
	// the bushy space: the planner's ChooseTree against the oracle's best
	// plan tree (every shape enumerated and executed).
	TreeAgreement float64
	TreeWorkRatio float64
	// OracleBushyWins is workload-level (identical in every cell): the
	// fraction of queries where the best bushy tree does strictly less
	// actual work than the best zig-zag plan — how often the wider plan
	// space matters at all, independent of estimator quality.
	OracleBushyWins float64
	// CacheBushyWins is the same workload measured in the warm-cache
	// regime (identical in every cell): the fraction of queries where
	// the exact-statistics planner, made cache-aware by a probe that
	// marks every length-2 segment as cached (the steady state of a
	// workload whose two-label subsequences recur), chooses a bushy join
	// over every zig-zag plan. Cold, a length-4 split always pays to
	// materialize both halves, so bushy rarely wins (OracleBushyWins);
	// warm, the halves are free and only the join's consume costs
	// remain — this measures how often that flips the choice.
	CacheBushyWins float64
}

// enumerateTrees lists every plan tree over segment [lo, hi) — all
// zig-zag leaves and all bushy splits, recursively. For the experiment's
// length-4 queries that is 31 trees.
func enumerateTrees(lo, hi int) []*exec.PlanTree {
	var out []*exec.PlanTree
	for s := lo; s < hi; s++ {
		out = append(out, &exec.PlanTree{Lo: lo, Hi: hi, Start: s})
	}
	for m := lo + 1; m < hi; m++ {
		for _, l := range enumerateTrees(lo, m) {
			for _, r := range enumerateTrees(m, hi) {
				out = append(out, &exec.PlanTree{Lo: lo, Hi: hi, Start: -1, Left: l, Right: r})
			}
		}
	}
	return out
}

// PlanQuality is the end-to-end experiment the paper's introduction
// motivates but does not run: feed each ordering method's histogram
// estimates into the planner and measure how often the resulting plans
// match the exact-statistics oracle's work, and how much extra work the
// mistakes cost. It measures two plan spaces per method: the k zig-zag
// plans of a length-k query (one per join start position), and the full
// bushy tree space (every way to split the query into independently
// built segments joined relation×relation), whose oracle is computed by
// executing every tree shape. The larger spaces widen the spread between
// good and bad estimators: a mediocre histogram can still get a binary
// direction right, but ranking interior starts — and interior segment
// pairs — correctly demands accurate segment estimates.
//
// Queries are length 4 over a census (and histogram) bounded at k = 3:
// a length-4 plan — linear or bushy — only ever feeds segments of length
// ≤ 3 into its cost, so planning queries one step beyond the statistics
// bound is exactly what the plan search is for. Length 4 also matters
// structurally: it is the shortest query where a bushy tree can beat
// every zig-zag plan (a k = 3 split always has a single-label side,
// whose materialization a zig-zag step gets for free). Dataset: Moreno
// Health substitute, queries with non-empty answers.
func PlanQuality(opt Options) ([]PlanCell, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	g := dataset.Generate(dataset.Table3()[0], opt.Scale, opt.Seed).Freeze()
	const censusK = 3          // statistics bound
	const queryK = censusK + 1 // plan-search bound: segments stay ≤ censusK
	census := paths.NewCensusParallel(g, censusK, 0)
	beta := int(census.Size() / 16)
	if beta < 2 {
		beta = 2
	}

	// Query workload: length-4 paths with non-empty answers (plans for
	// empty queries are all equally cheap).
	rng := rand.New(rand.NewSource(opt.Seed))
	k := queryK
	var queries []paths.Path
	for len(queries) < opt.Queries {
		p := make(paths.Path, k)
		for i := range p {
			p[i] = rng.Intn(g.NumLabels())
		}
		if paths.Selectivity(g, p) > 0 {
			queries = append(queries, p)
		}
	}

	// Actual work per query for every zig-zag start and every tree shape,
	// measured once on the hybrid executor; the per-query optima are the
	// two oracles' floors, and the per-shape works (keyed by the tree's
	// canonical description) are the lookup the per-method loop below
	// reads instead of re-executing each chosen tree.
	trees := enumerateTrees(0, k)
	works := make([][]int64, len(queries))              // by zig-zag start
	treeWorks := make([]map[string]int64, len(queries)) // by tree shape
	optima := make([]int64, len(queries))
	treeOptima := make([]int64, len(queries))
	bushyWins := 0
	for i, q := range queries {
		works[i] = make([]int64, k)
		for s := 0; s < k; s++ {
			_, st := exec.ExecutePlan(g, q, exec.Plan{Start: s}, exec.Options{})
			works[i][s] = st.Work
		}
		optima[i] = works[i][0]
		for _, w := range works[i][1:] {
			if w < optima[i] {
				optima[i] = w
			}
		}
		treeWorks[i] = make(map[string]int64, len(trees))
		treeOptima[i] = optima[i]
		for _, tree := range trees {
			var w int64
			if tree.IsLeaf() {
				w = works[i][tree.Start]
			} else {
				_, st := exec.ExecuteTree(g, q, tree, exec.Options{})
				w = st.Work
				if w < treeOptima[i] {
					treeOptima[i] = w
				}
			}
			treeWorks[i][tree.Describe(k)] = w
		}
		if treeOptima[i] < optima[i] {
			bushyWins++
		}
	}
	oracleBushyWins := float64(bushyWins) / float64(len(queries))

	// Warm-cache regime: the exact-statistics planner with every length-2
	// segment marked cached (free to build). How often does the DP now
	// choose a bushy join? This is the measured answer to the ROADMAP's
	// "bushy rarely wins — cache segment relations" item: the same
	// workload, the same exact estimates, only reuse added.
	exactPlanner := exec.Planner{
		Est:    exec.EstimatorFunc(func(p paths.Path) float64 { return float64(census.Selectivity(p)) }),
		Cached: func(p paths.Path) bool { return len(p) == 2 },
	}
	cacheWins := 0
	for _, q := range queries {
		if !exactPlanner.ChooseTree(q).IsLeaf() {
			cacheWins++
		}
	}
	cacheBushyWins := float64(cacheWins) / float64(len(queries))

	var out []PlanCell
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, g, censusK)
		if err != nil {
			return nil, err
		}
		ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
		if err != nil {
			return nil, err
		}
		planner := exec.Planner{Est: exec.EstimatorFunc(ph.Estimate)}
		agree, treeAgree := 0, 0
		var chosenWork, optimalWork, chosenTreeWork, optimalTreeWork int64
		for i, q := range queries {
			chosen := planner.ChoosePlan(q)
			w := works[i][chosen.Start]
			if w == optima[i] {
				agree++
			}
			chosenWork += w
			optimalWork += optima[i]

			tw, ok := treeWorks[i][planner.ChooseTree(q).Describe(k)]
			if !ok {
				panic("experiments: chosen tree outside the enumerated shape space")
			}
			if tw == treeOptima[i] {
				treeAgree++
			}
			chosenTreeWork += tw
			optimalTreeWork += treeOptima[i]
		}
		ratio := func(chosen, optimal int64) float64 {
			if optimal > 0 {
				return float64(chosen) / float64(optimal)
			}
			return 1.0
		}
		out = append(out, PlanCell{
			Method: method, Beta: beta,
			Agreement:       float64(agree) / float64(len(queries)),
			WorkRatio:       ratio(chosenWork, optimalWork),
			TreeAgreement:   float64(treeAgree) / float64(len(queries)),
			TreeWorkRatio:   ratio(chosenTreeWork, optimalTreeWork),
			OracleBushyWins: oracleBushyWins,
			CacheBushyWins:  cacheBushyWins,
		})
	}
	return out, nil
}

// WritePlanCSV exports a PlanQuality run.
func WritePlanCSV(w io.Writer, cells []PlanCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "beta", "agreement", "work_ratio",
		"tree_agreement", "tree_work_ratio", "oracle_bushy_wins", "cache_bushy_wins"}); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, c := range cells {
		if err := cw.Write([]string{
			c.Method, strconv.Itoa(c.Beta),
			ff(c.Agreement), ff(c.WorkRatio),
			ff(c.TreeAgreement), ff(c.TreeWorkRatio), ff(c.OracleBushyWins), ff(c.CacheBushyWins),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
