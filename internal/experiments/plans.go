package experiments

import (
	"encoding/csv"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/ordering"
	"repro/internal/paths"
)

// PlanCell is one ordering method's plan-quality measurement.
type PlanCell struct {
	Method string
	Beta   int
	// Agreement is the fraction of queries where the histogram-driven
	// planner picked the same direction as the exact-statistics oracle.
	Agreement float64
	// WorkRatio is (total work of chosen plans) / (total work of optimal
	// plans) — 1.0 means estimation errors never cost any actual work.
	WorkRatio float64
}

// PlanQuality is the end-to-end experiment the paper's introduction
// motivates but does not run: feed each ordering method's histogram
// estimates into a join-direction planner and measure how often the
// resulting plans match the exact-statistics oracle, and how much extra
// work the mistakes cost. Dataset: Moreno Health substitute, length-3
// queries with non-empty answers.
func PlanQuality(opt Options) ([]PlanCell, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	g := dataset.Generate(dataset.Table3()[0], opt.Scale, opt.Seed).Freeze()
	k := 3
	census := paths.NewCensusParallel(g, k, 0)
	beta := int(census.Size() / 16)
	if beta < 2 {
		beta = 2
	}

	// Query workload: length-3 paths with non-empty answers (plans for
	// empty queries are all equally cheap).
	rng := rand.New(rand.NewSource(opt.Seed))
	var queries []paths.Path
	for len(queries) < opt.Queries {
		p := make(paths.Path, k)
		for i := range p {
			p[i] = rng.Intn(g.NumLabels())
		}
		if census.Selectivity(p) > 0 {
			queries = append(queries, p)
		}
	}

	// Oracle work per query and direction, measured once.
	type workPair struct{ fwd, bwd int64 }
	works := make([]workPair, len(queries))
	for i, q := range queries {
		_, fst := exec.Execute(g, q, exec.Forward)
		_, bst := exec.Execute(g, q, exec.Backward)
		works[i] = workPair{fst.Work, bst.Work}
	}
	optimal := func(w workPair) int64 {
		if w.bwd < w.fwd {
			return w.bwd
		}
		return w.fwd
	}

	var out []PlanCell
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, g, k)
		if err != nil {
			return nil, err
		}
		ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
		if err != nil {
			return nil, err
		}
		planner := exec.Planner{Est: exec.EstimatorFunc(ph.Estimate)}
		oracle := exec.Planner{Est: exec.EstimatorFunc(func(p paths.Path) float64 {
			return float64(census.Selectivity(p))
		})}
		agree := 0
		var chosenWork, optimalWork int64
		for i, q := range queries {
			chosen := planner.Choose(q)
			if chosen == oracle.Choose(q) {
				agree++
			}
			if chosen == exec.Forward {
				chosenWork += works[i].fwd
			} else {
				chosenWork += works[i].bwd
			}
			optimalWork += optimal(works[i])
		}
		ratio := 1.0
		if optimalWork > 0 {
			ratio = float64(chosenWork) / float64(optimalWork)
		}
		out = append(out, PlanCell{
			Method: method, Beta: beta,
			Agreement: float64(agree) / float64(len(queries)),
			WorkRatio: ratio,
		})
	}
	return out, nil
}

// WritePlanCSV exports a PlanQuality run.
func WritePlanCSV(w io.Writer, cells []PlanCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "beta", "agreement", "work_ratio"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			c.Method, strconv.Itoa(c.Beta),
			strconv.FormatFloat(c.Agreement, 'f', 4, 64),
			strconv.FormatFloat(c.WorkRatio, 'f', 4, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
