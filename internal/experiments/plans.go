package experiments

import (
	"encoding/csv"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/ordering"
	"repro/internal/paths"
)

// PlanCell is one ordering method's plan-quality measurement.
type PlanCell struct {
	Method string
	Beta   int
	// Agreement is the fraction of queries where the histogram-driven
	// planner's chosen zig-zag plan costs exactly as much actual work as
	// the exact-statistics oracle's best plan (equal-work ties count as
	// agreement — the planner lost nothing).
	Agreement float64
	// WorkRatio is (total work of chosen plans) / (total work of optimal
	// plans) — 1.0 means estimation errors never cost any actual work.
	WorkRatio float64
}

// PlanQuality is the end-to-end experiment the paper's introduction
// motivates but does not run: feed each ordering method's histogram
// estimates into the zig-zag planner — which chooses among k plans per
// length-k query, one per join start position, not just
// forward/backward — and measure how often the resulting plans match the
// exact-statistics oracle's work, and how much extra work the mistakes
// cost. The larger plan space widens the spread between good and bad
// estimators: a mediocre histogram can still get a binary direction
// right, but ranking k interior starts correctly demands accurate
// segment estimates. Dataset: Moreno Health substitute, length-3 queries
// with non-empty answers.
func PlanQuality(opt Options) ([]PlanCell, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	g := dataset.Generate(dataset.Table3()[0], opt.Scale, opt.Seed).Freeze()
	k := 3
	census := paths.NewCensusParallel(g, k, 0)
	beta := int(census.Size() / 16)
	if beta < 2 {
		beta = 2
	}

	// Query workload: length-3 paths with non-empty answers (plans for
	// empty queries are all equally cheap).
	rng := rand.New(rand.NewSource(opt.Seed))
	var queries []paths.Path
	for len(queries) < opt.Queries {
		p := make(paths.Path, k)
		for i := range p {
			p[i] = rng.Intn(g.NumLabels())
		}
		if census.Selectivity(p) > 0 {
			queries = append(queries, p)
		}
	}

	// Actual work per query and plan start, measured once on the hybrid
	// executor; the per-query optimum is the oracle's floor.
	works := make([][]int64, len(queries))
	optima := make([]int64, len(queries))
	for i, q := range queries {
		works[i] = make([]int64, k)
		for s := 0; s < k; s++ {
			_, st := exec.ExecutePlan(g, q, exec.Plan{Start: s}, exec.Options{})
			works[i][s] = st.Work
		}
		optima[i] = works[i][0]
		for _, w := range works[i][1:] {
			if w < optima[i] {
				optima[i] = w
			}
		}
	}

	var out []PlanCell
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, g, k)
		if err != nil {
			return nil, err
		}
		ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
		if err != nil {
			return nil, err
		}
		planner := exec.Planner{Est: exec.EstimatorFunc(ph.Estimate)}
		agree := 0
		var chosenWork, optimalWork int64
		for i, q := range queries {
			chosen := planner.ChoosePlan(q)
			w := works[i][chosen.Start]
			if w == optima[i] {
				agree++
			}
			chosenWork += w
			optimalWork += optima[i]
		}
		ratio := 1.0
		if optimalWork > 0 {
			ratio = float64(chosenWork) / float64(optimalWork)
		}
		out = append(out, PlanCell{
			Method: method, Beta: beta,
			Agreement: float64(agree) / float64(len(queries)),
			WorkRatio: ratio,
		})
	}
	return out, nil
}

// WritePlanCSV exports a PlanQuality run.
func WritePlanCSV(w io.Writer, cells []PlanCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "beta", "agreement", "work_ratio"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			c.Method, strconv.Itoa(c.Beta),
			strconv.FormatFloat(c.Agreement, 'f', 4, 64),
			strconv.FormatFloat(c.WorkRatio, 'f', 4, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
