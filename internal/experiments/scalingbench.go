package experiments

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/pathsel"
)

// This file measures multi-core scaling end to end — the committed
// BENCH_scaling.json artifact (ROADMAP item: demonstrate worker scaling
// in an artifact, not just in the machinery). One report carries a
// worker ladder for each layer where parallelism enters: the sharded
// join executor (scaling/exec), the batch API's query-level concurrency
// over a shared segment cache, cold and warm (scaling/cache-*), and the
// serving layer's request concurrency against one warm server
// (scaling/serve-warm). Every rung's speedup is against the same
// section's 1-worker rung, so the ladder reads as a scaling curve. The
// report header's num_cpu/gomaxprocs say whether the curve can climb at
// all: on a 1-core host every rung times the same serial execution plus
// coordination overhead, which is why the CI gate compares these rows
// only across matching num_cpu (cmd/benchdiff skips the rest).

// scalingConcurrencies are the ladder rungs every section measures; the
// resolved workers override joins them, deduplicated, as in the other
// scaling sections (parexec, bushyexec).
var scalingConcurrencies = []int{1, 2, 4}

// scalingLadder is the shared rung set: the fixed {1, 2, 4} plus the
// resolved override.
func scalingLadder(workers int) []int {
	return append(append([]int(nil), scalingConcurrencies...), workers)
}

// scalingExecResults is the executor ladder: every ExecBenchQueries plan
// at each worker count, speedup against the sequential rung. The same
// measurement as parexec/forward but run at the scaling bench's iters,
// alongside the other layers, so one artifact answers "which layer stops
// scaling first".
func scalingExecResults(g *graph.CSR, iters, workers int) []PerfResult {
	execIters := iters * 5
	// Warm the graph's lazy operands outside the timed region so the
	// 1-worker baseline is not charged for one-time construction.
	for _, q := range ExecBenchQueries {
		exec.ExecutePlan(g, q, exec.Plan{Start: 0}, exec.Options{Workers: 1})
	}
	return workerLadder(scalingLadder(workers),
		PerfResult{Name: "scaling/exec", Dataset: serveBenchDataset, Iters: execIters},
		func(w int) int64 {
			opt := exec.Options{Workers: w}
			return timeOp(execIters, func() {
				for _, q := range ExecBenchQueries {
					exec.ExecutePlan(g, q, exec.Plan{Start: 0}, opt)
				}
			})
		})
}

// scalingCacheResults is the batch ladder: the cache bench's
// repeated-segment workload executed with BatchOptions.Workers at each
// rung — query-level concurrency, each query's own join steps
// single-threaded, exactly the regime the read-locked cache shards serve.
// Two rows per rung set:
//
//   - scaling/cache-cold — caching disabled: pure batch-parallelism
//     scaling, no shared mutable state beyond the pool.
//   - scaling/cache-warm — a persistent cache warmed by one untimed
//     pass: every worker hits the same hot shards concurrently, which is
//     the contention the relcache RWMutex conversion targets.
func scalingCacheResults(g *pathsel.Graph, iters, workers int) ([]PerfResult, error) {
	queries := CacheBenchWorkload(g.Labels(), CacheBenchQueryCount)
	build := func(cacheBytes int64) (*pathsel.Estimator, error) {
		return pathsel.Build(g, pathsel.Config{
			MaxPathLength: 3,
			Buckets:       32,
			Workers:       1,
			CacheBytes:    cacheBytes,
		})
	}
	run := func(e *pathsel.Estimator, opt pathsel.BatchOptions) error {
		res, err := e.ExecuteBatch(queries, opt)
		if err != nil {
			return err
		}
		if len(res.Results) != len(queries) {
			return fmt.Errorf("scaling bench: %d results for %d queries", len(res.Results), len(queries))
		}
		return nil
	}
	passIters := iters * 3
	var firstErr error
	timePass := func(e *pathsel.Estimator, opt pathsel.BatchOptions) int64 {
		return timeOp(passIters, func() {
			if err := run(e, opt); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}

	cold, err := build(0)
	if err != nil {
		return nil, err
	}
	// Untimed warmup: build the graph's lazy operands before any timed
	// rung (the 1-worker baseline runs first).
	if err := run(cold, pathsel.BatchOptions{CacheBytes: -1}); err != nil {
		return nil, err
	}
	out := workerLadder(scalingLadder(workers),
		PerfResult{Name: "scaling/cache-cold", Dataset: serveBenchDataset, K: 3, Iters: passIters},
		func(w int) int64 {
			return timePass(cold, pathsel.BatchOptions{CacheBytes: -1, Workers: w})
		})

	warm, err := build(pathsel.DefaultCacheBytes)
	if err != nil {
		return nil, err
	}
	if err := run(warm, pathsel.BatchOptions{}); err != nil {
		return nil, err
	}
	out = append(out, workerLadder(scalingLadder(workers),
		PerfResult{Name: "scaling/cache-warm", Dataset: serveBenchDataset, K: 3, Iters: passIters},
		func(w int) int64 {
			return timePass(warm, pathsel.BatchOptions{Workers: w})
		})...)
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// scalingServeResults is the serving ladder: one server over one warm
// persistent cache, the serve bench's Zipf trace replayed at each
// request-concurrency rung (the Workers column carries the concurrency,
// as in BENCH_serve.json). NsPerOp is the averaged whole-pass wall
// clock; the final pass's latency percentiles and QPS ride along.
// Speedup against the concurrency-1 rung is the artifact's answer to
// whether request concurrency recovers the cache win on real cores.
func scalingServeResults(g *pathsel.Graph, iters, workers int) ([]PerfResult, error) {
	trace, err := serveBenchTrace(g.Labels(), ServeBenchQueryCount, 1)
	if err != nil {
		return nil, err
	}
	url, stop, err := startServeBench(g, pathsel.DefaultCacheBytes)
	if err != nil {
		return nil, err
	}
	defer stop()
	run := func(concurrency int) (*serve.LoadReport, error) {
		rep, err := serve.RunLoad(url, trace, serve.LoadOptions{Concurrency: concurrency})
		if err != nil {
			return nil, err
		}
		if bad := int64(rep.Queries) - rep.OK; bad != 0 {
			return nil, fmt.Errorf("scaling bench: %d of %d requests not OK at concurrency %d",
				bad, rep.Queries, concurrency)
		}
		return rep, nil
	}
	// Untimed warming replay: the persistent cache is hot before the
	// first rung, so every rung measures the same steady state.
	if _, err := run(1); err != nil {
		return nil, err
	}

	var out []PerfResult
	var base int64
	seen := map[int]bool{}
	for _, c := range scalingLadder(workers) {
		if c < 1 || seen[c] {
			continue
		}
		seen[c] = true
		var ns int64
		var last *serve.LoadReport
		for i := 0; i < iters; i++ {
			rep, err := run(c)
			if err != nil {
				return nil, err
			}
			ns += rep.ElapsedNs
			last = rep
		}
		ns /= int64(iters)
		if last.HitRate() == 0 {
			return nil, fmt.Errorf("scaling bench: warm pass at concurrency %d saw no cache hits", c)
		}
		r := PerfResult{Name: "scaling/serve-warm", Dataset: serveBenchDataset, K: 3,
			Workers: c, Iters: iters, NsPerOp: ns,
			P50Ns: last.Service.P50Ns, P95Ns: last.Service.P95Ns,
			P99Ns: last.Service.P99Ns, QPS: last.QPS}
		if base == 0 {
			base = ns
		} else {
			r.Speedup = float64(base) / float64(ns)
		}
		out = append(out, r)
	}
	return out, nil
}

// RunScalingBench measures every layer's worker/concurrency ladder — the
// BENCH_scaling.json artifact: the sharded executor, cold and warm batch
// execution, and warm serving, each at workers ∈ {1, 2, 4} plus the
// resolved override. scale/iters default to 0.05/3 when ≤ 0; workers ≤ 0
// selects GOMAXPROCS (re-read at call time).
func RunScalingBench(scale float64, iters, workers int) (*PerfReport, error) {
	scale, iters, workers = benchDefaults(scale, iters, workers)
	pg, err := genServeGraph(scale)
	if err != nil {
		return nil, err
	}
	rep := newPerfReport(scale, workers)
	rep.Results = scalingExecResults(benchSnapFF(scale), iters, workers)
	cacheRows, err := scalingCacheResults(pg, iters, workers)
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, cacheRows...)
	serveRows, err := scalingServeResults(pg, iters, workers)
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, serveRows...)
	return rep, nil
}
