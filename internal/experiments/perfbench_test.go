package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunBushyBenchSchema runs the bushy bench at a tiny scale and pins
// the report's schema-v2 header and section structure — the contract
// cmd/benchdiff's regression gate consumes.
func TestRunBushyBenchSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("perf bench measurement in -short mode")
	}
	rep := RunBushyBench(0.02, 1, 2)
	if rep.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, BenchSchemaVersion)
	}
	if rep.NumCPU < 1 || rep.GOMAXPROCS < 1 || rep.Workers != 2 {
		t.Fatalf("bad header: %+v", rep)
	}
	want := map[string]bool{
		"bushy/linear-forward":    false,
		"bushy/balanced-tree":     false,
		"join/sparse":             false,
		"join/dense":              false,
		"join/adaptive":           false,
		"bushyexec/balanced-tree": false,
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
		if r.Name == "bushy/balanced-tree" && r.Speedup <= 0 {
			t.Fatalf("balanced-tree row missing its speedup vs linear: %+v", r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("bushy bench missing section %q", name)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round PerfReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if round.SchemaVersion != rep.SchemaVersion || len(round.Results) != len(rep.Results) {
		t.Fatal("report round-trip lost fields")
	}
}
