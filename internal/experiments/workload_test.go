package experiments

import (
	"bytes"
	"testing"

	"repro/internal/ordering"
)

func TestWorkloadAccuracy(t *testing.T) {
	cells, err := WorkloadAccuracy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 5 methods × 4 workloads.
	if len(cells) != 20 {
		t.Fatalf("cells = %d, want 20", len(cells))
	}
	workloads := map[string]bool{}
	for _, c := range cells {
		workloads[c.Workload] = true
		if c.MeanErrorRate < 0 || c.MeanErrorRate > 1 {
			t.Fatalf("bad error rate %+v", c)
		}
		if c.MeanQError < 1 {
			t.Fatalf("q-error below 1: %+v", c)
		}
	}
	for _, w := range []string{"uniform", "non-empty", "freq-weighted", "len-3"} {
		if !workloads[w] {
			t.Errorf("workload %s missing", w)
		}
	}
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty CSV")
	}
}

func TestErrorProfiles(t *testing.T) {
	rows, err := ErrorProfiles(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Per method: 3 length rows + up to 10 decile rows.
	byMethod := map[string]int{}
	for _, r := range rows {
		byMethod[r.Method]++
		if r.Axis != "length" && r.Axis != "decile" {
			t.Fatalf("unknown axis %q", r.Axis)
		}
		if r.MeanErrorRate < 0 || r.MeanErrorRate > 1 {
			t.Fatalf("bad error rate %+v", r)
		}
	}
	if len(byMethod) != 5 {
		t.Fatalf("methods = %d, want 5", len(byMethod))
	}
	for m, n := range byMethod {
		if n < 4 || n > 13 {
			t.Fatalf("%s has %d profile rows", m, n)
		}
	}
}

func TestWorkloadSumBasedStillWinsUniform(t *testing.T) {
	// On the uniform workload the result must agree with Figure 2's
	// finding at this budget: sum-based at least matches the best rival.
	cells, err := WorkloadAccuracy(Options{
		Scale: 0.06, Seed: 1, TimingK: 3,
		AccuracyKs: []int{3}, BetaDenoms: []int{16},
		Queries: 4000, Repeats: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum, best float64
	best = -1
	for _, c := range cells {
		if c.Workload != "uniform" {
			continue
		}
		if c.Method == ordering.MethodSumBased {
			sum = c.MeanErrorRate
		} else if best < 0 || c.MeanErrorRate < best {
			best = c.MeanErrorRate
		}
	}
	if sum > best+0.03 {
		t.Fatalf("sum-based %.4f clearly loses to best rival %.4f on uniform workload", sum, best)
	}
}
