package experiments

import (
	"fmt"

	"repro/pathsel"
)

// This file measures the workload-level segment-relation cache
// (internal/relcache, pathsel.Estimator.ExecuteBatch): cold-vs-warm
// throughput of a repeated-segment workload — the regime the cache
// exists for — emitted as the committed BENCH_cache.json artifact.

// CacheBenchQueryCount is the workload size of every cache bench pass.
const CacheBenchQueryCount = 50

// CacheBenchWorkload builds the repeated-segment workload: count queries
// cycling through a fixed pool of eight distinct length-3 label paths
// that share length-2 subsequences (every pool entry overlaps another in
// a two-label segment, and the pool itself repeats ~6× in a 50-query
// workload). labels is the graph's label vocabulary; pool paths use only
// the first min(4, len(labels)) labels so the workload fits every Table 3
// dataset.
func CacheBenchWorkload(labels []string, count int) []pathsel.Query {
	l := func(i int) string { return labels[i%len(labels)] }
	pool := []string{
		l(0) + "/" + l(1) + "/" + l(2),
		l(1) + "/" + l(2) + "/" + l(0),
		l(0) + "/" + l(1) + "/" + l(3),
		l(2) + "/" + l(0) + "/" + l(1),
		l(1) + "/" + l(2) + "/" + l(3),
		l(3) + "/" + l(0) + "/" + l(1),
		l(0) + "/" + l(0) + "/" + l(1),
		l(2) + "/" + l(3) + "/" + l(0),
	}
	out := make([]pathsel.Query, count)
	for i := range out {
		out[i] = pathsel.Query(pool[i%len(pool)])
	}
	return out
}

// cacheBenchDatasets are the two workloads the artifact commits: the
// synthetic SNAP-FF forest fire (the repo's standard perf graph) and the
// Moreno Health substitute (the paper's smallest real-world shape).
var cacheBenchDatasets = []string{"SNAP-FF", "Moreno health"}

// cacheBenchResults measures one dataset's workload three ways, all at
// batch Workers 1 (per-query join parallelism = the resolved workers):
//
//   - cache/cold — caching disabled: every query materializes every
//     segment from scratch. The baseline row.
//   - cache/populate — a fresh private cache per pass: every miss pays a
//     clone to publish its segment, so this row prices the cache's write
//     overhead against cold.
//   - cache/warm — a persistent cache warmed by one untimed pass:
//     repeated queries take the whole-query fast path. The committed
//     speedup_vs_baseline of this row is the workload-throughput claim
//     the cache is judged by (≥ 2× on the SNAP-FF repeated-segment
//     workload at 1 core).
func cacheBenchResults(name string, scale float64, iters, workers int) ([]PerfResult, error) {
	s := 2 * scale
	if s > 1 {
		s = 1
	}
	g, err := pathsel.GenerateDataset(name, s, 1)
	if err != nil {
		return nil, err
	}
	queries := CacheBenchWorkload(g.Labels(), CacheBenchQueryCount)
	build := func(cacheBytes int64) (*pathsel.Estimator, error) {
		return pathsel.Build(g, pathsel.Config{
			MaxPathLength: 3,
			Buckets:       32,
			Workers:       workers,
			CacheBytes:    cacheBytes,
		})
	}
	cold, err := build(0)
	if err != nil {
		return nil, err
	}
	warm, err := build(pathsel.DefaultCacheBytes)
	if err != nil {
		return nil, err
	}
	run := func(e *pathsel.Estimator, opt pathsel.BatchOptions) error {
		res, err := e.ExecuteBatch(queries, opt)
		if err != nil {
			return err
		}
		// Guard the measurement's integrity: a pass that silently dropped
		// queries would "speed up" meaninglessly.
		if len(res.Results) != len(queries) {
			return fmt.Errorf("cache bench: %d results for %d queries", len(res.Results), len(queries))
		}
		return nil
	}

	passIters := iters * 3
	var out []PerfResult
	var firstErr error
	timePass := func(e *pathsel.Estimator, opt pathsel.BatchOptions) int64 {
		return timeOp(passIters, func() {
			if err := run(e, opt); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}

	// Warm the graph's lazy operands (successor/predecessor CSRs and
	// dense sets) outside the timed region, as every other bench section
	// does: the cold baseline runs first and must not be charged for
	// one-time construction its ratios would then overstate.
	if err := run(cold, pathsel.BatchOptions{CacheBytes: -1}); err != nil {
		return nil, err
	}
	coldNs := timePass(cold, pathsel.BatchOptions{CacheBytes: -1})
	out = append(out, PerfResult{Name: "cache/cold", Dataset: name, K: 3,
		Workers: workers, Iters: passIters, NsPerOp: coldNs})

	populateNs := timePass(cold, pathsel.BatchOptions{}) // fresh private cache per pass
	out = append(out, PerfResult{Name: "cache/populate", Dataset: name, K: 3,
		Workers: workers, Iters: passIters, NsPerOp: populateNs,
		Speedup: float64(coldNs) / float64(populateNs)})

	// Warm the persistent cache once, untimed, then measure steady state.
	if err := run(warm, pathsel.BatchOptions{}); err != nil {
		return nil, err
	}
	warmNs := timePass(warm, pathsel.BatchOptions{})
	out = append(out, PerfResult{Name: "cache/warm", Dataset: name, K: 3,
		Workers: workers, Iters: passIters, NsPerOp: warmNs,
		Speedup: float64(coldNs) / float64(warmNs)})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// RunCacheBench measures only the segment-relation cache section — the
// BENCH_cache.json artifact: cold vs populate vs warm workload passes on
// SNAP-FF and Moreno. scale/iters default to 0.05/3 when ≤ 0; workers
// ≤ 0 selects GOMAXPROCS.
func RunCacheBench(scale float64, iters, workers int) (*PerfReport, error) {
	scale, iters, workers = benchDefaults(scale, iters, workers)
	rep := newPerfReport(scale, workers)
	for _, name := range cacheBenchDatasets {
		rows, err := cacheBenchResults(name, scale, iters, workers)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, rows...)
	}
	return rep, nil
}
