package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV exports Table 4 as machine-readable CSV with one row per
// (beta, method) cell — the format plotting scripts expect.
func (r *Table4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "k", "domain_size", "beta", "method", "avg_micros"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		for _, m := range r.Methods {
			rec := []string{
				r.Dataset,
				strconv.Itoa(r.K),
				strconv.FormatInt(r.DomainSize, 10),
				strconv.Itoa(row.Beta),
				m,
				strconv.FormatFloat(row.AvgMicros[m], 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Figure 2 as one row per cell.
func (r *Figure2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "k", "beta", "method", "mean_error_rate"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		rec := []string{
			c.Dataset,
			strconv.Itoa(c.K),
			strconv.Itoa(c.Beta),
			c.Method,
			strconv.FormatFloat(c.MeanErrorRate, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports the Figure 1 series: one row per domain position.
func (r *Figure1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "label_path", "frequency", "bucket_mean"}); err != nil {
		return err
	}
	for i := range r.Frequencies {
		rec := []string{
			strconv.Itoa(i),
			r.Labels[i],
			strconv.FormatInt(r.Frequencies[i], 10),
			strconv.FormatFloat(r.BucketMeans[i], 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBoundsCSV exports an OrderingBounds run.
func WriteBoundsCSV(w io.Writer, cells []BoundCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"beta", "method", "mean_error_rate"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			strconv.Itoa(c.Beta), c.Method,
			strconv.FormatFloat(c.MeanErrorRate, 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAblationCSV exports a BuilderAblation run.
func WriteAblationCSV(w io.Writer, cells []AblationCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "builder", "beta", "mean_error_rate"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			c.Method, c.Builder, strconv.Itoa(c.Beta),
			strconv.FormatFloat(c.MeanErrorRate, 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
