package experiments

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ordering"
	"repro/internal/paths"
	"repro/internal/stats"
	"repro/internal/workload"
)

// WorkloadCell is one (workload, method) accuracy measurement.
type WorkloadCell struct {
	Workload      string
	Method        string
	Beta          int
	MeanErrorRate float64
	MeanQError    float64
}

// WorkloadAccuracy extends Figure 2 with realistic query workloads
// (DESIGN.md §6): instead of averaging |err| uniformly over all of Lk, it
// averages over queries drawn from biased samplers — non-empty paths only,
// frequency-weighted paths, and a fixed-length template — on the Moreno
// Health substitute at k = 3.
func WorkloadAccuracy(opt Options) ([]WorkloadCell, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	g := dataset.Generate(dataset.Table3()[0], opt.Scale, opt.Seed).Freeze()
	k := 3
	census := paths.NewCensusParallel(g, k, 0)
	beta := int(census.Size() / 16)
	if beta < 2 {
		beta = 2
	}
	nonEmpty, err := workload.NewNonEmpty(census)
	if err != nil {
		return nil, err
	}
	freqWeighted, err := workload.NewFrequencyWeighted(census)
	if err != nil {
		return nil, err
	}

	var out []WorkloadCell
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, g, k)
		if err != nil {
			return nil, err
		}
		ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
		if err != nil {
			return nil, err
		}
		samplers := []workload.Sampler{
			workload.Uniform{Ord: ord},
			nonEmpty,
			freqWeighted,
			workload.FixedLength{NumLabels: g.NumLabels(), Length: k},
		}
		for _, s := range samplers {
			queries := workload.Generate(s, opt.Queries, opt.Seed)
			var sumErr, sumQ float64
			for _, q := range queries {
				e := ph.Estimate(q)
				f := float64(census.Selectivity(q))
				abs := stats.Err(e, f)
				if abs < 0 {
					abs = -abs
				}
				sumErr += abs
				sumQ += stats.QError(e, f)
			}
			out = append(out, WorkloadCell{
				Workload:      s.Name(),
				Method:        method,
				Beta:          beta,
				MeanErrorRate: sumErr / float64(len(queries)),
				MeanQError:    sumQ / float64(len(queries)),
			})
		}
	}
	return out, nil
}

// WriteWorkloadCSV exports a WorkloadAccuracy run.
func WriteWorkloadCSV(w io.Writer, cells []WorkloadCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "method", "beta", "mean_error_rate", "mean_q_error"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			c.Workload, c.Method, strconv.Itoa(c.Beta),
			strconv.FormatFloat(c.MeanErrorRate, 'f', 6, 64),
			strconv.FormatFloat(c.MeanQError, 'f', 4, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
