package experiments

import (
	"fmt"
	"math"

	"repro/pathsel"
)

// This file measures the regular-path-query pipeline (pathsel.Compile →
// exec.ExecuteDagChecked): cold-vs-warm throughput of an RPQ workload
// whose bounded repetitions share relation-cache entries with each
// other and with concrete queries, plus the compiled DAG's estimate
// quality against the enumerated-expansion oracle — emitted as the
// committed BENCH_rpq.json artifact.

// RPQBenchWorkload builds the RPQ workload: patterns mixing bounded
// repetition (whose unrolled powers b², b³ publish under the same
// repeated-label cache keys concrete queries use), grouped alternation,
// optionals, and wildcards, all matching paths of length ≤ 3. labels is
// the graph's vocabulary; only the first min(4, len(labels)) labels are
// used so the workload fits every Table 3 dataset.
func RPQBenchWorkload(labels []string) []string {
	l := func(i int) string { return labels[i%len(labels)] }
	return []string{
		l(0) + "{1,3}",
		l(1) + "{1,3}",
		"(" + l(0) + "|" + l(1) + ")/" + l(2),
		l(0) + "/(" + l(1) + "|" + l(2) + ")/" + l(3) + "?",
		l(1) + "{2}/" + l(0),
		l(0) + "?/" + l(1) + "/" + l(2),
		"*/" + l(0),
		l(2) + "/" + l(1) + "{1,2}",
	}
}

// rpqBenchResults measures one dataset's RPQ workload three ways:
//
//   - rpq/cold — caching disabled: every repetition unrolls from
//     scratch. The baseline row.
//   - rpq/warm — a persistent cache warmed by one untimed pass: the
//     unrolled powers and shared segments are adopted instead of
//     recomputed. CacheHits/CacheMisses record one steady-state pass's
//     traffic — nonzero hits are the repetition-unroll sharing claim
//     (exec.TestExecuteDagRepetitionSharesCache pins the mechanism;
//     this row prices it).
//   - rpq/estimate — Compile + Estimate over the pool; QError is the
//     mean q-error of the compiled estimate against the exact
//     bag-semantics oracle (TruePatternBagSelectivity), +1-smoothed so
//     empty patterns cannot divide by zero.
func rpqBenchResults(name string, scale float64, iters, workers int) ([]PerfResult, error) {
	s := 2 * scale
	if s > 1 {
		s = 1
	}
	g, err := pathsel.GenerateDataset(name, s, 1)
	if err != nil {
		return nil, err
	}
	patterns := RPQBenchWorkload(g.Labels())
	build := func(cacheBytes int64) (*pathsel.Estimator, error) {
		return pathsel.Build(g, pathsel.Config{
			MaxPathLength: 3,
			Buckets:       32,
			Workers:       workers,
			CacheBytes:    cacheBytes,
		})
	}
	cold, err := build(0)
	if err != nil {
		return nil, err
	}
	warm, err := build(pathsel.DefaultCacheBytes)
	if err != nil {
		return nil, err
	}
	compileAll := func(e *pathsel.Estimator) ([]*pathsel.Expr, error) {
		xs := make([]*pathsel.Expr, len(patterns))
		for i, p := range patterns {
			x, err := e.Compile(p)
			if err != nil {
				return nil, fmt.Errorf("rpq bench: compiling %q: %w", p, err)
			}
			xs[i] = x
		}
		return xs, nil
	}
	coldXs, err := compileAll(cold)
	if err != nil {
		return nil, err
	}
	warmXs, err := compileAll(warm)
	if err != nil {
		return nil, err
	}
	run := func(e *pathsel.Estimator, xs []*pathsel.Expr, opt pathsel.BatchOptions) (*pathsel.BatchResult, error) {
		res, err := e.ExecuteExprBatch(xs, opt)
		if err != nil {
			return nil, err
		}
		for i, r := range res.Results {
			if r.Err != nil {
				return nil, fmt.Errorf("rpq bench: query %q: %w", patterns[i], r.Err)
			}
		}
		return res, nil
	}

	passIters := iters * 3
	var out []PerfResult
	var firstErr error
	timePass := func(e *pathsel.Estimator, xs []*pathsel.Expr, opt pathsel.BatchOptions) int64 {
		return timeOp(passIters, func() {
			if _, err := run(e, xs, opt); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}

	// Warm the graph's lazy operands outside the timed region, as every
	// other bench section does.
	if _, err := run(cold, coldXs, pathsel.BatchOptions{CacheBytes: -1}); err != nil {
		return nil, err
	}
	coldNs := timePass(cold, coldXs, pathsel.BatchOptions{CacheBytes: -1})
	out = append(out, PerfResult{Name: "rpq/cold", Dataset: name, K: 3,
		Workers: workers, Iters: passIters, NsPerOp: coldNs})

	// Warm the persistent cache once, untimed, then measure steady
	// state; a final untimed pass snapshots one pass's cache traffic.
	if _, err := run(warm, warmXs, pathsel.BatchOptions{}); err != nil {
		return nil, err
	}
	warmNs := timePass(warm, warmXs, pathsel.BatchOptions{})
	traffic, err := run(warm, warmXs, pathsel.BatchOptions{})
	if err != nil {
		return nil, err
	}
	var hits, misses int64
	for _, r := range traffic.Results {
		hits += int64(r.CacheHits)
		misses += int64(r.CacheMisses)
	}
	out = append(out, PerfResult{Name: "rpq/warm", Dataset: name, K: 3,
		Workers: workers, Iters: passIters, NsPerOp: warmNs,
		Speedup:   float64(coldNs) / float64(warmNs),
		CacheHits: hits, CacheMisses: misses})

	// Estimate quality: the compiled estimate against the enumerated
	// exact bag oracle, and the cost of the Compile+Estimate round trip.
	var qsum float64
	for _, p := range patterns {
		est, err := cold.EstimatePattern(p)
		if err != nil {
			return nil, err
		}
		truth, err := g.TruePatternBagSelectivity(p)
		if err != nil {
			return nil, err
		}
		qsum += math.Max((est+1)/(float64(truth)+1), (float64(truth)+1)/(est+1))
	}
	estNs := timeOp(passIters, func() {
		for _, p := range patterns {
			if _, err := cold.EstimatePattern(p); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	out = append(out, PerfResult{Name: "rpq/estimate", Dataset: name, K: 3,
		Workers: workers, Iters: passIters, NsPerOp: estNs,
		QError: qsum / float64(len(patterns))})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// RunRPQBench measures only the RPQ section — the BENCH_rpq.json
// artifact: cold vs warm compiled-workload passes (with the warm pass's
// cache traffic) and estimate quality, on the cache bench's two
// datasets. scale/iters default to 0.05/3 when ≤ 0; workers ≤ 0 selects
// GOMAXPROCS.
func RunRPQBench(scale float64, iters, workers int) (*PerfReport, error) {
	scale, iters, workers = benchDefaults(scale, iters, workers)
	rep := newPerfReport(scale, workers)
	for _, name := range cacheBenchDatasets {
		rows, err := rpqBenchResults(name, scale, iters, workers)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, rows...)
	}
	return rep, nil
}
