package experiments

import (
	"testing"

	"repro/pathsel"
)

// TestRunCacheBenchSchema runs the cache bench at a tiny scale and pins
// the report's header and section structure — the contract the committed
// BENCH_cache.json and cmd/benchdiff's gate consume.
func TestRunCacheBenchSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("perf bench measurement in -short mode")
	}
	rep, err := RunCacheBench(0.01, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, BenchSchemaVersion)
	}
	want := map[string]int{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
		want[r.Name]++
		switch r.Name {
		case "cache/cold":
			if r.Speedup != 0 {
				t.Fatalf("cold row is the baseline and must carry no ratio: %+v", r)
			}
		case "cache/populate", "cache/warm":
			if r.Speedup <= 0 {
				t.Fatalf("%s row missing its speedup vs cold: %+v", r.Name, r)
			}
		default:
			t.Fatalf("unexpected section %q", r.Name)
		}
	}
	for _, name := range []string{"cache/cold", "cache/populate", "cache/warm"} {
		if want[name] != len(cacheBenchDatasets) {
			t.Fatalf("section %q appears %d times, want one per dataset (%d)",
				name, want[name], len(cacheBenchDatasets))
		}
	}
}

// TestCacheBenchWorkloadRepeats pins the workload's defining property:
// every query recurs, so a warmed cache serves every pass entirely from
// whole-query hits.
func TestCacheBenchWorkloadRepeats(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e"}
	qs := CacheBenchWorkload(labels, CacheBenchQueryCount)
	if len(qs) != CacheBenchQueryCount {
		t.Fatalf("workload size %d", len(qs))
	}
	distinct := map[pathsel.Query]int{}
	for _, q := range qs {
		distinct[q]++
	}
	if len(distinct) != 8 {
		t.Fatalf("workload has %d distinct queries, want the 8-query pool", len(distinct))
	}
	for q, n := range distinct {
		if n < 2 {
			t.Fatalf("query %q does not recur (%d occurrence)", q, n)
		}
	}
	// Few-label vocabularies must still produce valid paths.
	two := CacheBenchWorkload([]string{"x", "y"}, 10)
	for _, q := range two {
		if q == "" {
			t.Fatal("empty query from a two-label vocabulary")
		}
	}
}

// TestCacheBenchWarmBeatsCold is the end-to-end sanity check of the
// artifact's claim at test scale: a warmed persistent cache must serve
// the repeated workload strictly faster than the uncached baseline. The
// committed artifact asserts ≥ 2× at bench scale; at the tiny test scale
// we only require a genuine win to keep the test robust.
func TestCacheBenchWarmBeatsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive measurement in -short mode")
	}
	rows, err := cacheBenchResults("SNAP-FF", 0.02, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Name == "cache/warm" && r.Speedup <= 1 {
			t.Fatalf("warm pass not faster than cold at all: %+v", r)
		}
	}
}
