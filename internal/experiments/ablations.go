package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ordering"
	"repro/internal/paths"
)

// AblationCell is one (ordering, builder) accuracy measurement.
type AblationCell struct {
	Method        string
	Builder       string
	Beta          int
	MeanErrorRate float64
}

// BuilderAblation goes beyond the paper: it crosses the five ordering
// methods with every histogram builder at a fixed budget, isolating how
// much accuracy comes from the ordering versus the bucketing algorithm
// (DESIGN.md §6). Dataset: Moreno Health substitute at opt.Scale, k = 3.
func BuilderAblation(opt Options) ([]AblationCell, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	g := dataset.Generate(dataset.Table3()[0], opt.Scale, opt.Seed).Freeze()
	k := 3
	census := paths.NewCensusParallel(g, k, 0)
	beta := int(census.Size() / 16)
	if beta < 2 {
		beta = 2
	}
	builders := []string{core.BuilderVOptimal, core.BuilderEquiWidth,
		core.BuilderEquiDepth, core.BuilderMaxDiff, core.BuilderEndBiased}
	var out []AblationCell
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, g, k)
		if err != nil {
			return nil, err
		}
		for _, builder := range builders {
			ph, err := core.Build(census, ord, builder, beta)
			if err != nil {
				return nil, err
			}
			ev := core.Evaluate(ph, census)
			out = append(out, AblationCell{
				Method: method, Builder: builder, Beta: beta,
				MeanErrorRate: ev.MeanErrorRate,
			})
		}
	}
	return out, nil
}

// ProfileRow is one (method, axis, bucket) row of the error-profile study.
type ProfileRow struct {
	Method string
	// Axis is "length" or "decile".
	Axis          string
	Bucket        int
	Paths         int64
	MeanErrorRate float64
}

// ErrorProfiles runs the diagnostic decomposition of estimation error
// (by path length and by true-selectivity decile) for every ordering
// method on the Moreno Health substitute at k = 3 — the analysis lens of
// the thesis underlying the paper.
func ErrorProfiles(opt Options) ([]ProfileRow, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	g := dataset.Generate(dataset.Table3()[0], opt.Scale, opt.Seed).Freeze()
	k := 3
	census := paths.NewCensusParallel(g, k, 0)
	beta := int(census.Size() / 16)
	if beta < 2 {
		beta = 2
	}
	var out []ProfileRow
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, g, k)
		if err != nil {
			return nil, err
		}
		ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
		if err != nil {
			return nil, err
		}
		prof := core.Profile(ph, census)
		for _, lb := range prof.ByLength {
			out = append(out, ProfileRow{
				Method: method, Axis: "length", Bucket: lb.Length,
				Paths: lb.Paths, MeanErrorRate: lb.MeanErrorRate,
			})
		}
		for _, db := range prof.ByDecile {
			out = append(out, ProfileRow{
				Method: method, Axis: "decile", Bucket: db.Decile,
				Paths: db.Paths, MeanErrorRate: db.MeanErrorRate,
			})
		}
	}
	return out, nil
}

// BoundCell is one row of the ordering upper/lower bound study.
type BoundCell struct {
	Method        string
	Beta          int
	MeanErrorRate float64
}

// OrderingBounds extends Figure 2 with the paper's impractical "ideal"
// ordering (accuracy lower envelope), the concluding remarks' sum-L2
// base-set ordering, and the product ordering, on the Moreno Health
// substitute at k = 3.
func OrderingBounds(opt Options) ([]BoundCell, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	g := dataset.Generate(dataset.Table3()[0], opt.Scale, opt.Seed).Freeze()
	k := 3
	census := paths.NewCensusParallel(g, k, 0)

	ords := make([]ordering.Ordering, 0, 8)
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, g, k)
		if err != nil {
			return nil, err
		}
		ords = append(ords, ord)
	}
	ords = append(ords,
		ordering.NewIdeal(census),
		ordering.NewSumL2(census),
		ordering.NewProduct(census.LabelFrequencies(), k))

	var out []BoundCell
	for _, beta := range opt.betas(census.Size()) {
		for _, ord := range ords {
			ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
			if err != nil {
				return nil, err
			}
			ev := core.Evaluate(ph, census)
			out = append(out, BoundCell{
				Method: ord.Name(), Beta: beta, MeanErrorRate: ev.MeanErrorRate,
			})
		}
	}
	return out, nil
}
