package experiments

import (
	"testing"

	"repro/internal/ordering"
)

// TestFigure2SumBasedDominatesSynthetic pins the paper's headline claim at
// integration level: on the synthetic datasets, at moderate bucket
// budgets, sum-based ordering must beat every other method by a clear
// factor; on all datasets it must be at least competitive.
func TestFigure2SumBasedDominatesSynthetic(t *testing.T) {
	opt := Options{
		Scale:      0.04,
		Seed:       1,
		TimingK:    3,
		AccuracyKs: []int{3},
		BetaDenoms: []int{8}, // β = |L3|/8 = 32 over 6 labels — the mid-budget regime
		Queries:    10,
		Repeats:    1,
	}
	res, err := RunFigure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	check := func(ds string, minFactor float64) {
		t.Helper()
		var sum, bestOther float64
		bestOther = -1
		for _, c := range res.Cells {
			if c.Dataset != ds || c.K != 3 {
				continue
			}
			if c.Method == ordering.MethodSumBased {
				sum = c.MeanErrorRate
			} else if bestOther < 0 || c.MeanErrorRate < bestOther {
				bestOther = c.MeanErrorRate
			}
		}
		if bestOther < 0 {
			t.Fatalf("%s: no cells", ds)
		}
		if sum*minFactor > bestOther {
			t.Errorf("%s: sum-based %.4f not %.1fx better than best other %.4f",
				ds, sum, minFactor, bestOther)
		}
	}
	// Synthetic datasets: clear dominance (paper: "far superior").
	check("SNAP-ER", 2.0)
	check("SNAP-FF", 1.3)
	// Real-world-like: still competitive (paper: "not as significant, but
	// still observable").
	check("Moreno health", 1.0)
	check("DBpedia (subgraph)", 1.0)
}

// TestTable4SumBasedSlowest pins the Table 4 speed ordering: sum-based is
// the slowest method at every bucket budget.
func TestTable4SumBasedSlowest(t *testing.T) {
	res, err := RunTable4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		sum := row.AvgMicros[ordering.MethodSumBased]
		for _, m := range res.Methods {
			if m == ordering.MethodSumBased {
				continue
			}
			if row.AvgMicros[m] > sum {
				t.Errorf("β=%d: %s (%.3fµs) slower than sum-based (%.3fµs)",
					row.Beta, m, row.AvgMicros[m], sum)
			}
		}
	}
}

// TestFigure2ErrorShrinksWithBeta pins the sweep-end behaviour: for every
// (dataset, method), more buckets must not hurt accuracy (the paper's
// curves fall monotonically with β).
func TestFigure2ErrorShrinksWithBeta(t *testing.T) {
	opt := tinyOptions() // BetaDenoms 4, 32 → β large, small
	res, err := RunFigure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		ds, m string
		k     int
	}
	best := map[key]map[int]float64{}
	for _, c := range res.Cells {
		kk := key{c.Dataset, c.Method, c.K}
		if best[kk] == nil {
			best[kk] = map[int]float64{}
		}
		best[kk][c.Beta] = c.MeanErrorRate
	}
	for kk, byBeta := range best {
		var largeBeta, smallBeta int
		for b := range byBeta {
			if b > largeBeta {
				largeBeta = b
			}
		}
		smallBeta = largeBeta
		for b := range byBeta {
			if b < smallBeta {
				smallBeta = b
			}
		}
		// Allow small noise: greedy V-Optimal is approximate.
		if byBeta[largeBeta] > byBeta[smallBeta]+0.05 {
			t.Errorf("%v: error at β=%d (%.4f) exceeds β=%d (%.4f)",
				kk, largeBeta, byBeta[largeBeta], smallBeta, byBeta[smallBeta])
		}
	}
}
