package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/pathsel"
)

// This file measures overload resilience (internal/serve's admission
// controller and brownout tiers) — the committed BENCH_overload.json
// artifact. The question it answers for the trajectory: when the
// arrival process overdrives the server's measured capacity in bursts,
// does the controlled server — adaptive admission, bounded queue,
// brownout degradation, retrying clients — keep the p99 sojourn of the
// arrivals it accepts bounded and its goodput at or above the
// uncontrolled server's, instead of letting every request's latency
// grow without bound?
//
// Per overdrive multiple (1×, 2×, 4× of a probed capacity), two legs
// replay the same ON/OFF bursty trace:
//
//   - overload/uncontrolled-Nx — no controller: every arrival executes,
//     latency absorbs the whole backlog. Baseline rows (speedup 0).
//   - overload/controlled-Nx — the overload controller plus a retrying
//     client; speedup_vs_baseline is the goodput ratio against the same
//     multiple's uncontrolled leg, and the shed / retry / degraded
//     columns carry the controller's visible work.
//
// NsPerOp is the pass's wall clock; the latency columns carry the
// accepted-sojourn percentiles — the population an overload controller
// promises a bounded experience to. All rows record Workers 1 (the
// overdrive multiple is in the name) so cross-host benchdiff runs can
// still gate the goodput ratios.
//
// Every leg — probe, uncontrolled, controlled — runs with the same
// deterministic injected per-step delay (faultinject, jittered from a
// fixed seed). Raw estimator service is tens of microseconds of pure
// CPU, and on a single-core host CPU-bound handlers serialize at the Go
// scheduler, so server-side concurrency — and with it queue depth, the
// thing an admission controller manages — never builds. The padding
// models a backend whose requests block (I/O, real datasets), which is
// the regime overload control exists for; both legs pay it identically,
// so the goodput ratio still isolates the controller. Brownout answers
// skip execution and therefore the padding — that asymmetry is the
// mechanism being measured, not a confound.

// Overload bench shape.
const (
	// OverloadBenchQueryCount is the trace length of every overdriven
	// pass.
	OverloadBenchQueryCount = 240
	// overloadBenchPoolSize is the number of distinct queries in the
	// Zipf pool; length-4 heads make individual requests expensive
	// enough that the admission queue, not the HTTP stack, is the
	// contended resource.
	overloadBenchPoolSize = 16
	overloadBenchMaxLen   = 4
	// overloadConcurrency is the client worker count — comfortably
	// above the controller's slots + queue, so saturation bursts have
	// something to shed.
	overloadConcurrency = 16
	// Burst windows: 50ms ON every 200ms makes the ON-window arrival
	// rate 4× the trace's mean rate.
	overloadOnDur  = 50 * time.Millisecond
	overloadOffDur = 150 * time.Millisecond
	// Injected per-join-step service padding (see the file comment):
	// 1–2ms per step puts whole-query service in the low-millisecond
	// band where handlers block and overlap.
	overloadStepDelay  = time.Millisecond
	overloadStepJitter = time.Millisecond
)

// overloadMultiples are the offered-load multiples of probed capacity.
var overloadMultiples = []int{1, 2, 4}

// overloadControllerConfig is the controlled leg's configuration,
// shared with the bench docs: a deliberately small slot count so the
// bench's client concurrency can overdrive it, a queue that sheds
// predictively well inside the burst window, and fast brownout ticks so
// tiers move within one ON/OFF cycle.
func overloadControllerConfig() serve.OverloadConfig {
	return serve.OverloadConfig{
		MaxInFlight:   4,
		LatencyTarget: 20 * time.Millisecond,
		QueueLimit:    8,
		QueueTimeout:  10 * time.Millisecond,
		Brownout:      true,
		TickEvery:     5 * time.Millisecond,
		BrownoutUp:    1,
		BrownoutDown:  2,
	}
}

// overloadRetryPolicy is the controlled leg's client: two re-issues
// with small backoff, honoring the server's Retry-After hints.
func overloadRetryPolicy() serve.RetryPolicy {
	return serve.RetryPolicy{Max: 2, Base: 2 * time.Millisecond, Cap: 100 * time.Millisecond, Seed: 1}
}

// startOverloadServer serves a fresh caching-disabled estimator (every
// request recomputes — the service times the controller has to manage)
// on a loopback listener, with or without the overload controller.
func startOverloadServer(g *pathsel.Graph, controlled bool) (baseURL string, stop func(), err error) {
	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: overloadBenchMaxLen,
		Buckets:       32,
		Workers:       1,
	})
	if err != nil {
		return "", nil, err
	}
	var opt serve.Options
	if controlled {
		cfg := overloadControllerConfig()
		opt.Overload = &cfg
	}
	srv := serve.NewWithOptions(est, opt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = hs.Serve(ln)
	}()
	return "http://" + ln.Addr().String(), func() {
		_ = hs.Close()
		<-done
	}, nil
}

// overloadTrace builds the bursty ON/OFF trace at the given mean rate
// (rate 0 selects the saturation trace the capacity probe replays).
func overloadTrace(labels []string, n int, rate float64, seed int64) ([]serve.TimedQuery, error) {
	pool, err := workload.QueryPool(len(labels), overloadBenchMaxLen, overloadBenchPoolSize, seed)
	if err != nil {
		return nil, err
	}
	opt := workload.TraceOptions{Pool: pool, N: n, Seed: seed, Rate: rate}
	if rate > 0 {
		opt.Arrival = workload.ArrivalOnOff
		opt.OnDur = overloadOnDur
		opt.OffDur = overloadOffDur
	}
	tr, err := workload.ZipfTrace(opt)
	if err != nil {
		return nil, err
	}
	return serve.TraceQueries(tr, labels)
}

// goodput is answered (OK + degraded) arrivals per second of the pass.
func goodput(rep *serve.LoadReport) float64 {
	if rep.ElapsedNs <= 0 {
		return 0
	}
	return float64(rep.OK+rep.Degraded) / (float64(rep.ElapsedNs) / float64(time.Second))
}

// overloadRow renders one leg's load report as a PerfResult. shed is
// the server-side shed count — every 429-overloaded answer issued, not
// just the arrivals whose *final* outcome was a shed, since the
// retrying client recovers most sheds and would otherwise hide the
// controller's work from the artifact.
func overloadRow(name string, rep *serve.LoadReport, shed int64, speedup float64) PerfResult {
	return PerfResult{
		Name: name, Dataset: serveBenchDataset, K: overloadBenchMaxLen,
		Workers: 1, Iters: 1, NsPerOp: rep.ElapsedNs, Speedup: speedup,
		P50Ns: rep.SojournAccepted.P50Ns, P95Ns: rep.SojournAccepted.P95Ns,
		P99Ns: rep.SojournAccepted.P99Ns, QPS: rep.QPS,
		GoodputQPS: goodput(rep), Shed: shed, Retries: rep.Retries,
		Degraded: rep.Degraded,
	}
}

// fetchShed reads the server's total shed count from /stats.
func fetchShed(baseURL string) (int64, error) {
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.Overload == nil {
		return 0, fmt.Errorf("overload bench: /stats has no overload section")
	}
	return st.Overload.Shed, nil
}

// RunOverloadBench measures overload resilience — the
// BENCH_overload.json artifact: per overdrive multiple of a probed
// capacity, an uncontrolled and a controlled replay of the same bursty
// trace. scale defaults to 0.05 when ≤ 0; iters is accepted for flag
// symmetry but each leg is a single pass (a pass is already hundreds of
// requests, and averaging passes would smear the burst alignment the
// bench exists to measure).
func RunOverloadBench(scale float64, iters int) (*PerfReport, error) {
	scale, _, _ = benchDefaults(scale, iters, 1)
	g, err := genServeGraph(scale)
	if err != nil {
		return nil, err
	}

	// The blocking-service padding every leg runs under (file comment).
	faultinject.Install(faultinject.NewInjector(faultinject.Rule{
		Site: "exec.step", Action: faultinject.ActDelay,
		Delay: overloadStepDelay, Jitter: overloadStepJitter,
	}))
	defer faultinject.Uninstall()

	// Capacity probe: a saturation pass against an uncontrolled server.
	// Its achieved QPS is the pipeline's capacity ceiling; the overdrive
	// multiples are meant relative to it. The first, untimed pass warms
	// the shared graph's lazy operands.
	probe, err := overloadTrace(g.Labels(), OverloadBenchQueryCount/2, 0, 1)
	if err != nil {
		return nil, err
	}
	url, stop, err := startOverloadServer(g, false)
	if err != nil {
		return nil, err
	}
	if _, err := serve.RunLoad(url, probe, serve.LoadOptions{Concurrency: overloadConcurrency}); err != nil {
		stop()
		return nil, err
	}
	capRep, err := serve.RunLoad(url, probe, serve.LoadOptions{Concurrency: overloadConcurrency})
	stop()
	if err != nil {
		return nil, err
	}
	if capRep.OK != int64(capRep.Queries) || capRep.QPS <= 0 {
		return nil, fmt.Errorf("overload bench: capacity probe unusable: %+v", capRep)
	}

	rep := newPerfReport(scale, 1)
	for _, mult := range overloadMultiples {
		trace, err := overloadTrace(g.Labels(), OverloadBenchQueryCount, float64(mult)*capRep.QPS, 1)
		if err != nil {
			return nil, err
		}

		// Uncontrolled leg: every arrival is served, however late.
		url, stop, err := startOverloadServer(g, false)
		if err != nil {
			return nil, err
		}
		unc, err := serve.RunLoad(url, trace, serve.LoadOptions{Concurrency: overloadConcurrency})
		stop()
		if err != nil {
			return nil, err
		}
		if unc.OK != int64(unc.Queries) {
			return nil, fmt.Errorf("overload bench: uncontrolled %dx leg not all-OK: %+v", mult, unc)
		}

		// Controlled leg: overload controller + retrying client.
		url, stop, err = startOverloadServer(g, true)
		if err != nil {
			return nil, err
		}
		ctl, err := serve.RunLoad(url, trace, serve.LoadOptions{
			Concurrency: overloadConcurrency, Retry: overloadRetryPolicy(),
		})
		var shed int64
		if err == nil {
			shed, err = fetchShed(url)
		}
		stop()
		if err != nil {
			return nil, err
		}
		if ctl.TransportErrors > 0 {
			return nil, fmt.Errorf("overload bench: controlled %dx leg dropped connections: %+v", mult, ctl)
		}
		if ctl.OK+ctl.Degraded == 0 {
			return nil, fmt.Errorf("overload bench: controlled %dx leg served nothing: %+v", mult, ctl)
		}

		uncG, ctlG := goodput(unc), goodput(ctl)
		speedup := 0.0
		if uncG > 0 {
			speedup = ctlG / uncG
		}
		rep.Results = append(rep.Results,
			overloadRow(fmt.Sprintf("overload/uncontrolled-%dx", mult), unc, 0, 0),
			overloadRow(fmt.Sprintf("overload/controlled-%dx", mult), ctl, shed, speedup),
		)
	}
	return rep, nil
}
