package experiments

import (
	"testing"
)

// TestRunServeBenchSchema runs the serving bench at a tiny scale and
// pins the report structure the committed BENCH_serve.json and
// cmd/benchdiff's gate consume: a cold and a warm row per concurrency
// level, positive pass timings, latency percentiles on every serve row,
// a speedup ratio only on warm rows.
func TestRunServeBenchSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("perf bench measurement in -short mode")
	}
	rep, err := RunServeBench(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, BenchSchemaVersion)
	}
	byName := map[string][]int{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Fatalf("non-positive pass timing in %+v", r)
		}
		if r.P50Ns <= 0 || r.P50Ns > r.P95Ns || r.P95Ns > r.P99Ns {
			t.Fatalf("latency percentiles missing or out of order: %+v", r)
		}
		if r.QPS <= 0 {
			t.Fatalf("serve row without throughput: %+v", r)
		}
		byName[r.Name] = append(byName[r.Name], r.Workers)
		switch r.Name {
		case "serve/nocache":
			if r.Speedup != 0 {
				t.Fatalf("nocache row is the baseline and must carry no ratio: %+v", r)
			}
		case "serve/cold", "serve/warm":
			if r.Speedup <= 0 {
				t.Fatalf("%s row missing its speedup vs nocache: %+v", r.Name, r)
			}
		default:
			t.Fatalf("unexpected section %q", r.Name)
		}
	}
	for _, name := range []string{"serve/nocache", "serve/cold", "serve/warm"} {
		if got := len(byName[name]); got != len(serveBenchConcurrencies) {
			t.Fatalf("section %q has %d rows, want one per concurrency level (%d)",
				name, got, len(serveBenchConcurrencies))
		}
		for i, c := range serveBenchConcurrencies {
			if byName[name][i] != c {
				t.Fatalf("section %q row %d at concurrency %d, want %d",
					name, i, byName[name][i], c)
			}
		}
	}
}

// TestServeBenchWarmBeatsCold is the end-to-end sanity check of the
// artifact's claim at test scale: the warmed persistent cache must beat
// the cold server even through the HTTP stack under a Zipf trace. The
// committed artifact records the exact ratio; here we only require a
// genuine win to keep the test robust on noisy hosts.
func TestServeBenchWarmBeatsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive measurement in -short mode")
	}
	g, err := genServeGraph(0.02)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := serveBenchTrace(g.Labels(), ServeBenchQueryCount, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := serveBenchResults(g, trace, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Name == "serve/warm" && r.Speedup <= 1 {
			t.Fatalf("warm serving pass not faster than cold at all: %+v", r)
		}
	}
}
