package experiments

import (
	"bytes"
	"testing"
)

func TestCorrelationSweepShape(t *testing.T) {
	cells, err := CorrelationSweep(tinyOptions(), []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 couplings × 5 methods.
	if len(cells) != 10 {
		t.Fatalf("cells = %d, want 10", len(cells))
	}
	for _, c := range cells {
		if c.MeanErrorRate < 0 || c.MeanErrorRate > 1 {
			t.Fatalf("bad cell %+v", c)
		}
	}
	var buf bytes.Buffer
	if err := WriteCorrelationCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty CSV")
	}
}

func TestCorrelationShrinksSumBasedAdvantage(t *testing.T) {
	// The paper's §4 explanation, tested directly: the sum-based advantage
	// under independent labels (coupling 0) must exceed the advantage
	// under fully correlated labels (coupling 1).
	opt := Options{
		Scale: 0.08, Seed: 1, TimingK: 3,
		AccuracyKs: []int{3}, BetaDenoms: []int{16},
		Queries: 10, Repeats: 1,
	}
	cells, err := CorrelationSweep(opt, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	adv := SumBasedAdvantage(cells)
	if adv[0] <= 1.0 {
		t.Fatalf("sum-based should win at coupling 0, advantage %.2f", adv[0])
	}
	if adv[0] <= adv[1] {
		t.Fatalf("advantage should shrink with coupling: %.2f (c=0) vs %.2f (c=1)",
			adv[0], adv[1])
	}
}

func TestCorrelationSweepDefaultCouplings(t *testing.T) {
	cells, err := CorrelationSweep(tinyOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 default couplings × 5 methods.
	if len(cells) != 25 {
		t.Fatalf("cells = %d, want 25", len(cells))
	}
}

func TestSumBasedAdvantageReduction(t *testing.T) {
	cells := []CorrelationCell{
		{Coupling: 0, Method: "num-alph", MeanErrorRate: 0.4},
		{Coupling: 0, Method: "sum-based", MeanErrorRate: 0.2},
		{Coupling: 1, Method: "num-alph", MeanErrorRate: 0.4},
		{Coupling: 1, Method: "sum-based", MeanErrorRate: 0.4},
	}
	adv := SumBasedAdvantage(cells)
	if adv[0] != 2.0 {
		t.Fatalf("advantage at 0 = %v, want 2.0", adv[0])
	}
	if adv[1] != 1.0 {
		t.Fatalf("advantage at 1 = %v, want 1.0", adv[1])
	}
}
