package experiments

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ordering"
	"repro/internal/paths"
)

// CorrelationCell is one (coupling, method) accuracy measurement.
type CorrelationCell struct {
	// Coupling is the label–degree coupling strength of the generator
	// (0 = independent skewed labels, 1 = fully degree-driven).
	Coupling      float64
	Method        string
	Beta          int
	MeanErrorRate float64
}

// CorrelationSweep tests the paper's *explanation* for Figure 2's
// real-vs-synthetic gap head-on. Section 4 attributes the smaller
// sum-based advantage on real data to "the presence of edge-label
// cardinality correlations in real-life data". Here we hold everything
// fixed (graph family, size, label skew, k, β) and sweep only the
// label–degree coupling of the generator from 0 (independent labels, like
// the synthetic datasets) to 1 (fully correlated, an exaggerated
// real-world regime). If the paper's explanation is right, sum-based
// ordering's relative advantage must shrink as coupling grows.
func CorrelationSweep(opt Options, couplings []float64) ([]CorrelationCell, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(couplings) == 0 {
		couplings = []float64{0, 0.25, 0.5, 0.75, 1.0}
	}
	spec := dataset.Table3()[0]
	v := int(float64(spec.Vertices) * opt.Scale)
	e := int(float64(spec.Edges) * opt.Scale)
	if v < 10 {
		v = 10
	}
	if e < spec.Labels {
		e = spec.Labels
	}
	k := 3

	var out []CorrelationCell
	for _, coupling := range couplings {
		model := &dataset.CorrelatedLabels{
			Zipf:     dataset.NewZipfLabels(spec.Labels, 1.1),
			Coupling: coupling,
		}
		g := dataset.PreferentialAttachment(v, e, model, opt.Seed).Freeze()
		census := paths.NewCensusParallel(g, k, 0)
		beta := int(census.Size() / 16)
		if beta < 2 {
			beta = 2
		}
		for _, method := range ordering.PaperMethods() {
			ord, err := ordering.ForGraph(method, g, k)
			if err != nil {
				return nil, err
			}
			ph, err := core.Build(census, ord, core.BuilderVOptimal, beta)
			if err != nil {
				return nil, err
			}
			ev := core.Evaluate(ph, census)
			out = append(out, CorrelationCell{
				Coupling: coupling, Method: method, Beta: beta,
				MeanErrorRate: ev.MeanErrorRate,
			})
		}
	}
	return out, nil
}

// SumBasedAdvantage reduces a CorrelationSweep to, per coupling value, the
// ratio (best non-sum-based error) / (sum-based error) — > 1 means
// sum-based wins, and the paper's explanation predicts the ratio falls
// toward 1 as coupling grows.
func SumBasedAdvantage(cells []CorrelationCell) map[float64]float64 {
	type agg struct {
		sum  float64
		best float64
	}
	byCoupling := map[float64]*agg{}
	for _, c := range cells {
		a := byCoupling[c.Coupling]
		if a == nil {
			a = &agg{best: -1}
			byCoupling[c.Coupling] = a
		}
		if c.Method == ordering.MethodSumBased {
			a.sum = c.MeanErrorRate
		} else if a.best < 0 || c.MeanErrorRate < a.best {
			a.best = c.MeanErrorRate
		}
	}
	out := map[float64]float64{}
	for coupling, a := range byCoupling {
		if a.sum > 0 {
			out[coupling] = a.best / a.sum
		} else {
			out[coupling] = 1
		}
	}
	return out
}

// WriteCorrelationCSV exports a CorrelationSweep run.
func WriteCorrelationCSV(w io.Writer, cells []CorrelationCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"coupling", "method", "beta", "mean_error_rate"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			strconv.FormatFloat(c.Coupling, 'f', 2, 64),
			c.Method, strconv.Itoa(c.Beta),
			strconv.FormatFloat(c.MeanErrorRate, 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
