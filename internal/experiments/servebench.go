package experiments

import (
	"fmt"
	"net"
	"net/http"

	"repro/internal/serve"
	"repro/internal/workload"
	"repro/pathsel"
)

// This file measures the serving layer (internal/serve): a pathserve-
// shaped HTTP server over one persistent estimator, driven by the
// open-loop Zipf load harness in saturation mode — the committed
// BENCH_serve.json artifact. The question it answers for the trajectory:
// does the workload cache's warm speedup survive when the workload is a
// skewed concurrent request stream over real HTTP instead of a
// single-threaded batch of repeats?

// Serve bench workload shape. The pool is larger than the cache bench's
// eight-query cycle on purpose: a Zipf-ranked pool of 24 distinct
// queries has a head the cache holds and a tail that keeps missing, so
// the warm row measures a realistic mixed hit rate, not a pure replay.
const (
	// ServeBenchQueryCount is the trace length of every timed pass.
	ServeBenchQueryCount = 300
	// serveBenchPoolSize is the number of distinct queries in the pool.
	serveBenchPoolSize = 24
	// serveBenchDataset is the artifact's graph: the repo's standard
	// perf dataset.
	serveBenchDataset = "SNAP-FF"
)

// serveBenchConcurrencies are the request-concurrency levels the
// artifact commits. The 1-level row is cross-host comparable (and the
// one the CI gate judges); the 4-level row shows whether concurrent LRU
// mutation erodes the cache win.
var serveBenchConcurrencies = []int{1, 4}

// genServeGraph generates the bench graph at the cache bench's doubled
// scale (the serving rows share its dataset and scale convention).
func genServeGraph(scale float64) (*pathsel.Graph, error) {
	s := 2 * scale
	if s > 1 {
		s = 1
	}
	return pathsel.GenerateDataset(serveBenchDataset, s, 1)
}

// serveBenchTrace builds the saturation-mode Zipf trace over the
// graph's vocabulary.
func serveBenchTrace(labels []string, n int, seed int64) ([]serve.TimedQuery, error) {
	pool, err := workload.QueryPool(len(labels), 3, serveBenchPoolSize, seed)
	if err != nil {
		return nil, err
	}
	tr, err := workload.ZipfTrace(workload.TraceOptions{Pool: pool, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	return serve.TraceQueries(tr, labels)
}

// startServeBench builds a fresh estimator (persistent cache, join
// workers 1 — request-level concurrency is the parallelism under test)
// and serves it on a loopback listener. The returned stop function
// blocks until the listener is closed.
func startServeBench(g *pathsel.Graph, cacheBytes int64) (baseURL string, stop func(), err error) {
	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 3,
		Buckets:       32,
		Workers:       1,
		CacheBytes:    cacheBytes,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: serve.New(est)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = hs.Serve(ln)
	}()
	return "http://" + ln.Addr().String(), func() {
		_ = hs.Close()
		<-done
	}, nil
}

// serveBenchResults measures one concurrency level three ways:
//
//   - serve/nocache — caching disabled: every request recomputes its
//     query from scratch. The baseline row, matching the cache bench's
//     cold semantics, so the warm row's ratio is directly comparable to
//     the batch-level warm speedup.
//   - serve/cold — a fresh persistent cache per pass: the first replay
//     of the trace, misses populating the cache and Zipf-head repeats
//     already hitting it mid-pass.
//   - serve/warm — steady state: one server whose persistent cache was
//     warmed by an untimed replay.
//
// NsPerOp is the whole pass's wall clock (the gateable ms-scale
// figure); the latency percentiles and QPS of the final timed pass ride
// along in the serve-only columns. The cold and warm rows'
// speedup_vs_baseline divide the nocache pass by their own — the warm
// one is the serving-layer counterpart of the cache bench's warm
// speedup, and how far it falls short of the batch number is the HTTP
// stack's share of request time plus the Zipf tail's misses.
func serveBenchResults(g *pathsel.Graph, trace []serve.TimedQuery, concurrency, iters int) ([]PerfResult, error) {
	run := func(baseURL string) (*serve.LoadReport, error) {
		rep, err := serve.RunLoad(baseURL, trace, serve.LoadOptions{Concurrency: concurrency})
		if err != nil {
			return nil, err
		}
		if bad := int64(rep.Queries) - rep.OK; bad != 0 {
			return nil, fmt.Errorf("serve bench: %d of %d requests not OK at concurrency %d: %+v",
				bad, rep.Queries, concurrency, rep)
		}
		return rep, nil
	}
	row := func(name string, ns int64, rep *serve.LoadReport, speedup float64) PerfResult {
		return PerfResult{Name: name, Dataset: serveBenchDataset, K: 3,
			Workers: concurrency, Iters: iters, NsPerOp: ns, Speedup: speedup,
			P50Ns: rep.Service.P50Ns, P95Ns: rep.Service.P95Ns,
			P99Ns: rep.Service.P99Ns, QPS: rep.QPS}
	}

	// Baseline: cache disabled. The first, untimed pass also warms the
	// shared graph's lazy operands (successor/predecessor CSRs), so no
	// later pass — of any row — is charged for one-time construction.
	url, stop, err := startServeBench(g, 0)
	if err != nil {
		return nil, err
	}
	if _, err := run(url); err != nil {
		stop()
		return nil, err
	}
	var nocacheNs int64
	var nocacheRep *serve.LoadReport
	for i := 0; i < iters; i++ {
		rep, err := run(url)
		if err != nil {
			stop()
			return nil, err
		}
		nocacheNs += rep.ElapsedNs
		nocacheRep = rep
	}
	stop()
	nocacheNs /= int64(iters)

	// Cold: a fresh server per iteration, so every pass starts with an
	// empty cache. The estimator rebuild stays outside the timed pass.
	var coldNs int64
	var coldRep *serve.LoadReport
	for i := 0; i < iters; i++ {
		url, stop, err := startServeBench(g, pathsel.DefaultCacheBytes)
		if err != nil {
			return nil, err
		}
		rep, err := run(url)
		stop()
		if err != nil {
			return nil, err
		}
		coldNs += rep.ElapsedNs
		coldRep = rep
	}
	coldNs /= int64(iters)

	// Warm: one server, one untimed warming replay, then timed passes
	// over the now-hot persistent cache.
	url, stop, err = startServeBench(g, pathsel.DefaultCacheBytes)
	if err != nil {
		return nil, err
	}
	defer stop()
	if _, err := run(url); err != nil {
		return nil, err
	}
	var warmNs int64
	var warmRep *serve.LoadReport
	for i := 0; i < iters; i++ {
		rep, err := run(url)
		if err != nil {
			return nil, err
		}
		warmNs += rep.ElapsedNs
		warmRep = rep
	}
	warmNs /= int64(iters)
	if warmRep.HitRate() == 0 {
		return nil, fmt.Errorf("serve bench: warm pass at concurrency %d saw no cache hits", concurrency)
	}

	return []PerfResult{
		row("serve/nocache", nocacheNs, nocacheRep, 0),
		row("serve/cold", coldNs, coldRep, float64(nocacheNs)/float64(coldNs)),
		row("serve/warm", warmNs, warmRep, float64(nocacheNs)/float64(warmNs)),
	}, nil
}

// RunServeBench measures the serving layer — the BENCH_serve.json
// artifact: nocache vs cold vs warm saturation passes of a Zipf query
// trace over real HTTP at each committed concurrency level. scale and
// iters default to 0.05/3 when ≤ 0. There is no join-workers knob: the
// parallelism under test is request concurrency, and each row's Workers
// field carries its concurrency level.
func RunServeBench(scale float64, iters int) (*PerfReport, error) {
	scale, iters, _ = benchDefaults(scale, iters, 1)
	g, err := genServeGraph(scale)
	if err != nil {
		return nil, err
	}
	trace, err := serveBenchTrace(g.Labels(), ServeBenchQueryCount, 1)
	if err != nil {
		return nil, err
	}
	rep := newPerfReport(scale, 1)
	for _, c := range serveBenchConcurrencies {
		rows, err := serveBenchResults(g, trace, c, iters)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, rows...)
	}
	return rep, nil
}
