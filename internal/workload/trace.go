package workload

// This file generates query-arrival traces for the serving layer
// (internal/serve, cmd/pathserve): a ranked pool of distinct path
// queries whose popularity follows a Zipf law, replayed as an open-loop
// arrival process with exponential inter-arrival times. The fixed
// cycling pool the cache benchmark uses (experiments.CacheBenchWorkload)
// visits every query equally often; real query streams are skewed — a
// few hot queries dominate, with a long cold tail — and whether the
// relation cache's warm speedup survives that skew under concurrent LRU
// mutation is exactly what the trace exists to measure.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/paths"
)

// Zipf parameter defaults: s is the skew exponent (rank r is drawn with
// probability ∝ 1/(v+r)^s; larger s = hotter head), v the offset. Go's
// rand.Zipf requires s > 1 and v ≥ 1.
const (
	DefaultZipfS = 1.2
	DefaultZipfV = 1.0
)

// Arrival-process modes of TraceOptions.Arrival. All three share the
// same mean rate (TraceOptions.Rate); they differ in how arrivals clump,
// which is what overload control is judged against — a Poisson stream
// never concentrates load the way real traffic does.
const (
	// ArrivalExp is the default: exponential inter-arrival gaps, i.e. a
	// Poisson process — maximally memoryless, no bursts beyond chance.
	ArrivalExp = "exp"
	// ArrivalOnOff alternates ON windows (arrivals at the elevated peak
	// rate that preserves the mean) with silent OFF windows: the classic
	// bursty source model. Within an ON window arrivals are Poisson at
	// Rate × (OnDur+OffDur)/OnDur.
	ArrivalOnOff = "onoff"
	// ArrivalGamma draws inter-arrival gaps from a Gamma distribution
	// with mean 1/Rate and shape GammaShape: shape < 1 clumps arrivals
	// tighter than Poisson (heavier burst head and longer gaps), shape 1
	// degenerates to ArrivalExp, shape > 1 smooths toward a pacing clock.
	ArrivalGamma = "gamma"
)

// ON/OFF and Gamma defaults: a 1:3 duty cycle (4× peak factor) and a
// shape that roughly doubles the variance of a Poisson stream.
const (
	DefaultOnDur      = 100 * time.Millisecond
	DefaultOffDur     = 300 * time.Millisecond
	DefaultGammaShape = 0.5
)

// TraceOptions parameterizes ZipfTrace.
type TraceOptions struct {
	// Pool is the ranked query pool: rank 0 is the hottest query. Must be
	// non-empty; QueryPool builds a deterministic one.
	Pool []paths.Path
	// S and V are the Zipf parameters (≤ 0 selects DefaultZipfS /
	// DefaultZipfV). S must resolve > 1 and V ≥ 1.
	S, V float64
	// Rate is the open-loop arrival rate in queries per second:
	// inter-arrival gaps are exponential with mean 1/Rate, so the trace
	// models a Poisson stream whose arrival times are fixed ahead of
	// execution — a replayer must not slow arrivals down when the server
	// lags (that is what "open loop" means; queue wait counts as
	// latency). Rate ≤ 0 puts every arrival at time 0: saturation mode,
	// where a concurrency-bounded replayer measures capacity instead.
	Rate float64
	// N is the number of arrivals (≥ 1).
	N int
	// Seed makes the trace deterministic: same options, same trace.
	Seed int64

	// Arrival selects the arrival-process shape: ArrivalExp (the
	// default, also selected by ""), ArrivalOnOff, or ArrivalGamma. The
	// bursty modes need a positive Rate — a burst shape is meaningless
	// in saturation mode, where every arrival is already at time 0.
	Arrival string
	// OnDur and OffDur are the ON/OFF window lengths of ArrivalOnOff
	// (≤ 0 selects DefaultOnDur / DefaultOffDur). The trace starts at
	// the beginning of an ON window.
	OnDur, OffDur time.Duration
	// GammaShape is the Gamma shape parameter of ArrivalGamma (≤ 0
	// selects DefaultGammaShape). Must resolve to a finite value in
	// (0, 64].
	GammaShape float64
}

// Arrival is one trace entry: a query and the instant, relative to the
// trace start, at which it enters the system.
type Arrival struct {
	// At is the arrival time as an offset from the trace start.
	At time.Duration
	// Rank is the query's popularity rank — its index into the pool.
	Rank int
	// Query is the pool entry at Rank.
	Query paths.Path
}

// ZipfTrace draws an open-loop query-arrival trace: N arrivals whose
// queries are Zipf-ranked draws from the pool and whose arrival times
// form a Poisson process at Rate. The trace is a pure function of its
// options — replaying, benchmarking, and fuzzing all see the same
// arrivals for the same seed.
func ZipfTrace(opt TraceOptions) ([]Arrival, error) {
	if len(opt.Pool) == 0 {
		return nil, fmt.Errorf("workload: trace needs a non-empty query pool")
	}
	out, err := ZipfRankTrace(len(opt.Pool), opt)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i].Query = opt.Pool[out[i].Rank]
	}
	return out, nil
}

// ZipfRankTrace is ZipfTrace for pools this package does not hold (RPQ
// pattern strings, pre-compiled handles): it draws arrival times and
// popularity ranks over a pool of the given size, leaving each
// Arrival.Query nil — callers bind Rank to their own pool entries (the
// serving layer's RankQueries does this for wire-format pools).
// opt.Pool is ignored.
func ZipfRankTrace(poolSize int, opt TraceOptions) ([]Arrival, error) {
	if poolSize < 1 {
		return nil, fmt.Errorf("workload: trace needs a pool of ≥ 1 queries, got %d", poolSize)
	}
	if opt.N < 1 {
		return nil, fmt.Errorf("workload: trace needs N ≥ 1 arrivals, got %d", opt.N)
	}
	s, v := opt.S, opt.V
	if s <= 0 {
		s = DefaultZipfS
	}
	if v <= 0 {
		v = DefaultZipfV
	}
	if !(s > 1) || !(v >= 1) || math.IsInf(s, 0) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("workload: zipf needs finite s > 1 and v ≥ 1, got s=%v v=%v", s, v)
	}
	// A positive rate below one query per ~17 minutes (or a non-finite
	// one) is a caller bug, and tiny rates would overflow the Duration
	// arithmetic — reject instead of generating a nonsense trace.
	if opt.Rate > 0 && (opt.Rate < 1e-3 || math.IsInf(opt.Rate, 0)) {
		return nil, fmt.Errorf("workload: rate %v outside [1e-3, +Inf)", opt.Rate)
	}
	if math.IsNaN(opt.Rate) {
		return nil, fmt.Errorf("workload: rate is NaN")
	}
	mode := opt.Arrival
	if mode == "" {
		mode = ArrivalExp
	}
	switch mode {
	case ArrivalExp, ArrivalOnOff, ArrivalGamma:
	default:
		return nil, fmt.Errorf("workload: unknown arrival mode %q", opt.Arrival)
	}
	if mode != ArrivalExp && opt.Rate <= 0 {
		return nil, fmt.Errorf("workload: %s arrivals need a positive rate (saturation mode has no burst shape)", mode)
	}
	onDur, offDur := opt.OnDur, opt.OffDur
	if onDur <= 0 {
		onDur = DefaultOnDur
	}
	if offDur <= 0 {
		offDur = DefaultOffDur
	}
	shape := opt.GammaShape
	if shape <= 0 {
		shape = DefaultGammaShape
	}
	if mode == ArrivalGamma && (math.IsNaN(shape) || math.IsInf(shape, 0) || shape > 64) {
		return nil, fmt.Errorf("workload: gamma shape %v outside (0, 64]", opt.GammaShape)
	}
	// The ON/OFF peak rate preserves the requested mean over a full
	// ON+OFF cycle: all arrivals land in the ON fraction of the time.
	peak := opt.Rate * float64(onDur+offDur) / float64(onDur)
	rng := rand.New(rand.NewSource(opt.Seed))
	zipf := rand.NewZipf(rng, s, v, uint64(poolSize-1))
	out := make([]Arrival, opt.N)
	var at time.Duration
	var onTime time.Duration // ArrivalOnOff: cumulative ON-window time
	for i := range out {
		if opt.Rate > 0 {
			switch mode {
			case ArrivalExp:
				gap := time.Duration(rng.ExpFloat64() / opt.Rate * float64(time.Second))
				if next := at + gap; next >= at {
					at = next // saturate instead of wrapping on absurd traces
				}
			case ArrivalGamma:
				// Gamma(shape, θ) with θ = 1/(Rate·shape), so the mean gap
				// stays 1/Rate at every shape.
				gap := time.Duration(gammaRand(rng, shape) / (opt.Rate * shape) * float64(time.Second))
				if next := at + gap; next >= at {
					at = next
				}
			case ArrivalOnOff:
				// Arrivals are Poisson at the peak rate within ON windows;
				// mapping cumulative ON-time onto the ON/OFF cycle makes the
				// OFF windows silent by construction.
				gap := time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
				if next := onTime + gap; next >= onTime {
					onTime = next
					cycles := int64(onTime / onDur)
					if t := time.Duration(cycles)*(onDur+offDur) + onTime%onDur; t >= at {
						at = t // monotone; saturates if the cycle mapping overflows
					}
				}
			}
		}
		// math/rand's Zipf overflows internally at extreme s and can
		// return ranks past imax; such a distribution is a delta at rank
		// 0 anyway, so clamp to the hottest query.
		rank := int(zipf.Uint64())
		if rank < 0 || rank >= poolSize {
			rank = 0
		}
		out[i] = Arrival{At: at, Rank: rank}
	}
	return out, nil
}

// gammaRand draws one Gamma(k, 1) variate via Marsaglia–Tsang squeeze
// rejection. Shapes below 1 are boosted through Gamma(k+1)·U^(1/k);
// U = 0 (possible from Float64) yields a zero gap, which is harmless.
func gammaRand(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		return gammaRand(rng, k+1) * math.Pow(rng.Float64(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// QueryPool builds a deterministic ranked pool of n distinct label paths
// with lengths in [1, maxLen] over numLabels labels. Ranks are assigned
// in draw order, so the pool is already in popularity order for
// ZipfTrace. When the path domain holds fewer than n distinct paths the
// pool is the whole domain (shuffled), so callers may ask for more than
// a small graph can supply.
func QueryPool(numLabels, maxLen, n int, seed int64) ([]paths.Path, error) {
	if numLabels < 1 || maxLen < 1 || n < 1 {
		return nil, fmt.Errorf("workload: pool needs numLabels, maxLen, n ≥ 1 (got %d, %d, %d)",
			numLabels, maxLen, n)
	}
	// Domain size Σ numLabels^len for len in [1, maxLen], saturating so
	// huge vocabularies cannot overflow.
	domain := 0
	pow := 1
	for l := 1; l <= maxLen; l++ {
		if pow > (1<<31)/numLabels {
			domain = 1 << 31
			break
		}
		pow *= numLabels
		domain += pow
		if domain >= 1<<31 {
			domain = 1 << 31
			break
		}
	}
	if n > domain {
		n = domain
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]paths.Path, 0, n)
	for len(out) < n {
		p := make(paths.Path, 1+rng.Intn(maxLen))
		for i := range p {
			p[i] = rng.Intn(numLabels)
		}
		k := fmt.Sprint(p)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out, nil
}
