package workload

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ordering"
	"repro/internal/paths"
)

func testCensus(t *testing.T) *paths.Census {
	t.Helper()
	g := dataset.ErdosRenyi(50, 200, dataset.NewZipfLabels(3, 1.2), 3).Freeze()
	return paths.NewCensus(g, 3)
}

func TestGenerateDeterministic(t *testing.T) {
	c := testCensus(t)
	s, err := NewNonEmpty(c)
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(s, 50, 7)
	b := Generate(s, 50, 7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different workloads")
		}
	}
	cDiff := Generate(s, 50, 8)
	same := true
	for i := range a {
		if !a[i].Equal(cDiff[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestUniformSampler(t *testing.T) {
	ord := ordering.NewNumerical(ordering.IdentityRanking(3), 2)
	s := Uniform{Ord: ord}
	if s.Name() != "uniform" {
		t.Fatal("name wrong")
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 6000; i++ {
		p := s.Sample(rng)
		if len(p) < 1 || len(p) > 2 {
			t.Fatalf("bad path length %d", len(p))
		}
		counts[p.Key()]++
	}
	// 12 domain positions, each ≈ 500 draws.
	if len(counts) != 12 {
		t.Fatalf("uniform sampler covered %d/12 paths", len(counts))
	}
	for key, n := range counts {
		if n < 300 || n > 800 {
			t.Fatalf("path %s drawn %d times, far from 500", key, n)
		}
	}
}

func TestNonEmptySamplerOnlyPositive(t *testing.T) {
	c := testCensus(t)
	s, err := NewNonEmpty(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := s.Sample(rng)
		if c.Selectivity(p) == 0 {
			t.Fatalf("non-empty sampler drew empty path %s", p.Key())
		}
	}
}

func TestNonEmptyEmptyCensusErrors(t *testing.T) {
	empty := paths.FromFrequencies(2, 1, []int64{0, 0})
	if _, err := NewNonEmpty(empty); err == nil {
		t.Fatal("empty census should error")
	}
}

func TestFrequencyWeightedBias(t *testing.T) {
	// A census with one dominant path must dominate the sample.
	freq := []int64{1000, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0} // |L2| over 3 labels
	c := paths.FromFrequencies(3, 2, freq)
	s, err := NewFrequencyWeighted(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "freq-weighted" {
		t.Fatal("name wrong")
	}
	rng := rand.New(rand.NewSource(3))
	hot := 0
	for i := 0; i < 1000; i++ {
		p := s.Sample(rng)
		if c.Selectivity(p) == 0 {
			t.Fatal("zero-frequency path sampled")
		}
		if paths.CanonicalIndex(p, 3, 2) == 0 {
			hot++
		}
	}
	if hot < 950 {
		t.Fatalf("dominant path drawn only %d/1000 times", hot)
	}
}

func TestFrequencyWeightedZeroTotalErrors(t *testing.T) {
	empty := paths.FromFrequencies(2, 1, []int64{0, 0})
	if _, err := NewFrequencyWeighted(empty); err == nil {
		t.Fatal("zero-mass census should error")
	}
}

func TestFrequencyWeightedMatchesDistribution(t *testing.T) {
	c := testCensus(t)
	s, err := NewFrequencyWeighted(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	const draws = 50000
	counts := make([]int64, c.Size())
	for i := 0; i < draws; i++ {
		counts[paths.CanonicalIndex(s.Sample(rng), c.NumLabels(), c.K())]++
	}
	total := float64(c.Total())
	for idx := int64(0); idx < c.Size(); idx++ {
		expected := float64(c.AtCanonical(idx)) / total * draws
		if expected < 100 {
			continue // too rare to assert tightly
		}
		got := float64(counts[idx])
		if got < expected*0.7 || got > expected*1.3 {
			t.Fatalf("path %d drawn %v times, expected ≈ %v", idx, got, expected)
		}
	}
}

func TestFixedLengthSampler(t *testing.T) {
	s := FixedLength{NumLabels: 4, Length: 3}
	if s.Name() != "len-3" {
		t.Fatal("name wrong")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		p := s.Sample(rng)
		if len(p) != 3 {
			t.Fatalf("length %d, want 3", len(p))
		}
		for _, l := range p {
			if l < 0 || l >= 4 {
				t.Fatalf("label %d out of range", l)
			}
		}
	}
}
