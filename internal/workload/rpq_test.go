package workload

import (
	"strings"
	"testing"
)

func TestRPQPoolDeterministicAndDistinct(t *testing.T) {
	labels := []string{"a", "b", "c"}
	p1, err := RPQPool(labels, 3, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RPQPool(labels, 3, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 40 {
		t.Fatalf("pool size %d, want 40", len(p1))
	}
	seen := map[string]bool{}
	for i, p := range p1 {
		if p != p2[i] {
			t.Fatalf("pool not deterministic at %d: %q vs %q", i, p, p2[i])
		}
		if seen[p] {
			t.Fatalf("duplicate pattern %q", p)
		}
		seen[p] = true
		if p == "" || strings.HasPrefix(p, "/") || strings.HasSuffix(p, "/") {
			t.Fatalf("malformed pattern %q", p)
		}
	}
	if _, err := RPQPool(nil, 3, 10, 1); err == nil {
		t.Fatal("empty vocabulary should error")
	}
}

// TestRPQPoolSmallDomain pins the exhaustion behavior: a tiny domain
// yields fewer patterns than asked, not a spin.
func TestRPQPoolSmallDomain(t *testing.T) {
	pool, err := RPQPool([]string{"a"}, 1, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) == 0 || len(pool) >= 1000 {
		t.Fatalf("1-label length-1 domain gave %d patterns", len(pool))
	}
}

func TestZipfRankTraceMatchesZipfTrace(t *testing.T) {
	pool, err := QueryPool(3, 3, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := TraceOptions{Pool: pool, N: 200, Seed: 9, Rate: 1000}
	full, err := ZipfTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := ZipfRankTrace(len(pool), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if full[i].Rank != ranks[i].Rank || full[i].At != ranks[i].At {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, full[i], ranks[i])
		}
		if ranks[i].Query != nil {
			t.Fatalf("rank trace bound a query at %d", i)
		}
		if !full[i].Query.Equal(pool[full[i].Rank]) {
			t.Fatalf("full trace query %d not the ranked pool entry", i)
		}
	}
	if _, err := ZipfRankTrace(0, opt); err == nil {
		t.Fatal("empty pool should error")
	}
}
