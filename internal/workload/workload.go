// Package workload generates path-query workloads for evaluating
// selectivity estimators. The paper's Figure 2 averages the error over
// *every* path in Lk — an implicit uniform workload. Real optimizers see
// biased streams: queries that mostly have non-empty answers, or that
// concentrate on popular paths. The samplers here make that bias explicit
// so the evaluation can report per-workload accuracy (an extension beyond
// the paper; see DESIGN.md §6). In the layer map (graph → bitset → paths
// → exec → pathsel) it is an evaluation-side utility feeding
// internal/experiments.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ordering"
	"repro/internal/paths"
)

// Sampler draws one label path per call.
type Sampler interface {
	// Name identifies the workload shape.
	Name() string
	// Sample draws a path using the supplied source of randomness.
	Sample(rng *rand.Rand) paths.Path
}

// Generate draws n queries deterministically for a seed.
func Generate(s Sampler, n int, seed int64) []paths.Path {
	rng := rand.New(rand.NewSource(seed))
	out := make([]paths.Path, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// Uniform samples uniformly over the whole domain of an ordering — the
// implicit workload of the paper's Figure 2 and Table 4.
type Uniform struct {
	Ord ordering.Ordering
}

// Name implements Sampler.
func (u Uniform) Name() string { return "uniform" }

// Sample implements Sampler.
func (u Uniform) Sample(rng *rand.Rand) paths.Path {
	return u.Ord.Path(rng.Int63n(u.Ord.Size()))
}

// NonEmpty samples uniformly over paths with f(ℓ) > 0 — "queries that
// return answers", the typical shape of user-issued queries.
type NonEmpty struct {
	indices []int64 // canonical indices with positive selectivity
	c       *paths.Census
}

// NewNonEmpty builds the sampler from a census. It returns an error when
// the census is entirely empty.
func NewNonEmpty(c *paths.Census) (*NonEmpty, error) {
	s := &NonEmpty{c: c}
	for idx := int64(0); idx < c.Size(); idx++ {
		if c.AtCanonical(idx) > 0 {
			s.indices = append(s.indices, idx)
		}
	}
	if len(s.indices) == 0 {
		return nil, fmt.Errorf("workload: census has no non-empty paths")
	}
	return s, nil
}

// Name implements Sampler.
func (s *NonEmpty) Name() string { return "non-empty" }

// Sample implements Sampler.
func (s *NonEmpty) Sample(rng *rand.Rand) paths.Path {
	idx := s.indices[rng.Intn(len(s.indices))]
	return paths.FromCanonicalIndex(idx, s.c.NumLabels(), s.c.K())
}

// FrequencyWeighted samples paths proportionally to their selectivity —
// the "popular paths get queried more" regime, where estimation error on
// heavy hitters dominates plan quality.
type FrequencyWeighted struct {
	cum []int64 // cumulative selectivity by canonical index
	c   *paths.Census
}

// NewFrequencyWeighted builds the sampler from a census. It returns an
// error when total selectivity is zero.
func NewFrequencyWeighted(c *paths.Census) (*FrequencyWeighted, error) {
	s := &FrequencyWeighted{cum: make([]int64, c.Size()), c: c}
	var total int64
	for idx := int64(0); idx < c.Size(); idx++ {
		total += c.AtCanonical(idx)
		s.cum[idx] = total
	}
	if total == 0 {
		return nil, fmt.Errorf("workload: census has zero total selectivity")
	}
	return s, nil
}

// Name implements Sampler.
func (s *FrequencyWeighted) Name() string { return "freq-weighted" }

// Sample implements Sampler.
func (s *FrequencyWeighted) Sample(rng *rand.Rand) paths.Path {
	target := rng.Int63n(s.cum[len(s.cum)-1]) + 1
	// Binary search the cumulative array.
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return paths.FromCanonicalIndex(int64(lo), s.c.NumLabels(), s.c.K())
}

// FixedLength samples uniformly over the paths of exactly one length —
// the shape of a workload dominated by a single query template.
type FixedLength struct {
	NumLabels int
	Length    int
}

// Name implements Sampler.
func (s FixedLength) Name() string { return fmt.Sprintf("len-%d", s.Length) }

// Sample implements Sampler.
func (s FixedLength) Sample(rng *rand.Rand) paths.Path {
	p := make(paths.Path, s.Length)
	for i := range p {
		p[i] = rng.Intn(s.NumLabels)
	}
	return p
}
