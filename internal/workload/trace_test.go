package workload

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func TestQueryPoolDistinctAndBounded(t *testing.T) {
	pool, err := QueryPool(3, 3, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 20 {
		t.Fatalf("pool size %d, want 20", len(pool))
	}
	seen := map[string]bool{}
	for _, p := range pool {
		if len(p) < 1 || len(p) > 3 {
			t.Fatalf("path length %d outside [1,3]", len(p))
		}
		for _, l := range p {
			if l < 0 || l >= 3 {
				t.Fatalf("label %d outside [0,3)", l)
			}
		}
		k := fmt.Sprint(p)
		if seen[k] {
			t.Fatalf("duplicate pool entry %v", p)
		}
		seen[k] = true
	}
}

func TestQueryPoolClampsToDomain(t *testing.T) {
	// 2 labels, maxLen 2 → domain 2 + 4 = 6 distinct paths.
	pool, err := QueryPool(2, 2, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 6 {
		t.Fatalf("pool size %d, want the whole 6-path domain", len(pool))
	}
}

func TestQueryPoolRejectsBadArgs(t *testing.T) {
	for _, args := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if _, err := QueryPool(args[0], args[1], args[2], 1); err == nil {
			t.Fatalf("QueryPool(%v) accepted invalid args", args)
		}
	}
}

func TestZipfTraceDeterministic(t *testing.T) {
	pool, err := QueryPool(4, 3, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	opt := TraceOptions{Pool: pool, Rate: 1000, N: 500, Seed: 42}
	a, err := ZipfTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ZipfTrace(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("trace lengths %d, %d, want 500", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Rank != b[i].Rank {
			t.Fatalf("arrival %d differs between identical traces: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestZipfTraceShape(t *testing.T) {
	pool, err := QueryPool(4, 3, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ZipfTrace(TraceOptions{Pool: pool, S: 1.5, Rate: 10000, N: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(pool))
	var prev time.Duration
	for i, a := range tr {
		if a.At < prev {
			t.Fatalf("arrival %d at %v before predecessor %v: times must be nondecreasing", i, a.At, prev)
		}
		prev = a.At
		if a.Rank < 0 || a.Rank >= len(pool) {
			t.Fatalf("arrival %d rank %d outside pool", i, a.Rank)
		}
		if fmt.Sprint(a.Query) != fmt.Sprint(pool[a.Rank]) {
			t.Fatalf("arrival %d query %v does not match pool rank %d", i, a.Query, a.Rank)
		}
		counts[a.Rank]++
	}
	// Zipf skew: rank 0 must dominate the tail's average.
	tail := 0
	for _, c := range counts[1:] {
		tail += c
	}
	if counts[0] <= tail/len(counts[1:]) {
		t.Fatalf("rank 0 drawn %d times, no hotter than the tail mean %d — not Zipf-skewed",
			counts[0], tail/len(counts[1:]))
	}
	// Mean inter-arrival should be near 1/rate (Poisson at 10k qps over
	// 5k arrivals: generous 3x tolerance either way).
	mean := float64(tr[len(tr)-1].At) / float64(len(tr)-1)
	want := float64(time.Second) / 10000
	if mean < want/3 || mean > want*3 {
		t.Fatalf("mean inter-arrival %v implausible for rate 10000 (want ≈ %v)",
			time.Duration(mean), time.Duration(want))
	}
	if math.IsNaN(mean) {
		t.Fatal("NaN mean inter-arrival")
	}
}

func TestZipfTraceSaturationMode(t *testing.T) {
	pool, err := QueryPool(2, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ZipfTrace(TraceOptions{Pool: pool, N: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range tr {
		if a.At != 0 {
			t.Fatalf("saturation-mode arrival %d at %v, want 0", i, a.At)
		}
	}
}

func TestZipfTraceRejectsBadOptions(t *testing.T) {
	pool, _ := QueryPool(2, 2, 4, 1)
	for name, opt := range map[string]TraceOptions{
		"empty pool": {N: 10},
		"zero n":     {Pool: pool},
		"s ≤ 1":      {Pool: pool, N: 10, S: 0.9},
		"v < 1":      {Pool: pool, N: 10, V: 0.5},
	} {
		if _, err := ZipfTrace(opt); err == nil {
			t.Fatalf("%s: ZipfTrace accepted invalid options", name)
		}
	}
}

// TestBurstyTraceDeterministic pins that both bursty modes are pure
// functions of their options.
func TestBurstyTraceDeterministic(t *testing.T) {
	pool, err := QueryPool(4, 3, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{ArrivalOnOff, ArrivalGamma} {
		opt := TraceOptions{Pool: pool, Rate: 2000, N: 400, Seed: 11, Arrival: mode}
		a, err := ZipfTrace(opt)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		b, err := ZipfTrace(opt)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		for i := range a {
			if a[i].At != b[i].At || a[i].Rank != b[i].Rank {
				t.Fatalf("%s arrival %d nondeterministic: %+v vs %+v", mode, i, a[i], b[i])
			}
		}
	}
}

// TestOnOffTraceShape pins the ON/OFF structure: every arrival lands in
// an ON window, the mean rate stays near the requested one, and within-ON
// arrivals run at the elevated peak rate.
func TestOnOffTraceShape(t *testing.T) {
	pool, err := QueryPool(4, 3, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	on, off := 50*time.Millisecond, 150*time.Millisecond
	tr, err := ZipfTrace(TraceOptions{
		Pool: pool, Rate: 4000, N: 4000, Seed: 3,
		Arrival: ArrivalOnOff, OnDur: on, OffDur: off,
	})
	if err != nil {
		t.Fatal(err)
	}
	cycle := on + off
	var prev time.Duration
	for i, a := range tr {
		if a.At < prev {
			t.Fatalf("arrival %d at %v before predecessor %v", i, a.At, prev)
		}
		prev = a.At
		if pos := a.At % cycle; pos >= on {
			t.Fatalf("arrival %d at %v falls %v into the cycle — inside the OFF window [%v,%v)",
				i, a.At, pos, on, cycle)
		}
	}
	// Mean rate over the whole trace ≈ Rate (generous 3× tolerance).
	mean := float64(tr[len(tr)-1].At) / float64(len(tr)-1)
	want := float64(time.Second) / 4000
	if mean < want/3 || mean > want*3 {
		t.Fatalf("mean inter-arrival %v implausible for mean rate 4000 (want ≈ %v)",
			time.Duration(mean), time.Duration(want))
	}
}

// TestGammaTraceShape pins that the gamma mode keeps the requested mean
// rate and, at shape < 1, is burstier than Poisson (higher gap variance).
func TestGammaTraceShape(t *testing.T) {
	pool, err := QueryPool(4, 3, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	gaps := func(arrival string, shape float64) []float64 {
		tr, err := ZipfTrace(TraceOptions{
			Pool: pool, Rate: 10000, N: 6000, Seed: 5,
			Arrival: arrival, GammaShape: shape,
		})
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		out := make([]float64, len(tr)-1)
		for i := 1; i < len(tr); i++ {
			out[i-1] = float64(tr[i].At - tr[i-1].At)
		}
		return out
	}
	stats := func(xs []float64) (mean, variance float64) {
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		return mean, variance / float64(len(xs))
	}
	gMean, gVar := stats(gaps(ArrivalGamma, 0.25))
	eMean, eVar := stats(gaps(ArrivalExp, 0))
	want := float64(time.Second) / 10000
	if gMean < want/3 || gMean > want*3 {
		t.Fatalf("gamma mean gap %v implausible for rate 10000 (want ≈ %v)",
			time.Duration(gMean), time.Duration(want))
	}
	// Squared coefficient of variation: shape 0.25 should have ~4× the
	// relative variance of exponential; require a clear 2× margin.
	gCV, eCV := gVar/(gMean*gMean), eVar/(eMean*eMean)
	if gCV < 2*eCV {
		t.Fatalf("gamma(0.25) CV² %.2f not burstier than exponential CV² %.2f", gCV, eCV)
	}
}

func TestBurstyTraceRejectsBadOptions(t *testing.T) {
	pool, _ := QueryPool(2, 2, 4, 1)
	for name, opt := range map[string]TraceOptions{
		"unknown mode":         {Pool: pool, N: 10, Rate: 100, Arrival: "square"},
		"onoff in saturation":  {Pool: pool, N: 10, Arrival: ArrivalOnOff},
		"gamma in saturation":  {Pool: pool, N: 10, Arrival: ArrivalGamma},
		"gamma shape too high": {Pool: pool, N: 10, Rate: 100, Arrival: ArrivalGamma, GammaShape: 65},
	} {
		if _, err := ZipfTrace(opt); err == nil {
			t.Fatalf("%s: ZipfTrace accepted invalid options", name)
		}
	}
}

// FuzzBurstyTrace extends the trace contract to the bursty arrival
// modes: any finite options either error fast or yield a deterministic,
// nondecreasing, in-pool trace — and ON/OFF arrivals never land in an
// OFF window.
func FuzzBurstyTrace(f *testing.F) {
	f.Add(1, 200, int64(1), 500.0, int64(50), int64(150), 0.5)
	f.Add(2, 64, int64(9), 2000.0, int64(0), int64(0), 0.25)
	f.Add(1, 16, int64(3), -1.0, int64(-5), int64(7), 64.0)
	f.Fuzz(func(t *testing.T, modeSel, n int, seed int64, rate float64, onMs, offMs int64, shape float64) {
		if n > 512 {
			t.Skip()
		}
		mode := ArrivalOnOff
		if modeSel%2 == 0 {
			mode = ArrivalGamma
		}
		pool, err := QueryPool(3, 3, 16, seed)
		if err != nil {
			t.Fatal(err)
		}
		opt := TraceOptions{
			Pool: pool, Rate: rate, N: n, Seed: seed, Arrival: mode,
			OnDur: time.Duration(onMs) * time.Millisecond, OffDur: time.Duration(offMs) * time.Millisecond,
			GammaShape: shape,
		}
		tr, err := ZipfTrace(opt)
		if err != nil {
			return // invalid options must error, never panic
		}
		if len(tr) != n {
			t.Fatalf("trace has %d arrivals, want %d", len(tr), n)
		}
		onDur, offDur := opt.OnDur, opt.OffDur
		if onDur <= 0 {
			onDur = DefaultOnDur
		}
		if offDur <= 0 {
			offDur = DefaultOffDur
		}
		var prev time.Duration
		for i, a := range tr {
			if a.At < prev {
				t.Fatalf("arrival %d time %v < predecessor %v", i, a.At, prev)
			}
			prev = a.At
			if a.Rank < 0 || a.Rank >= len(pool) {
				t.Fatalf("arrival %d rank %d outside pool of %d", i, a.Rank, len(pool))
			}
			if mode == ArrivalOnOff && a.At%(onDur+offDur) >= onDur {
				t.Fatalf("arrival %d at %v inside the OFF window", i, a.At)
			}
		}
		again, err := ZipfTrace(opt)
		if err != nil {
			t.Fatalf("second generation errored: %v", err)
		}
		for i := range tr {
			if tr[i].At != again[i].At || tr[i].Rank != again[i].Rank {
				t.Fatalf("arrival %d nondeterministic: %+v vs %+v", i, tr[i], again[i])
			}
		}
	})
}

// FuzzZipfTrace pins the trace generator's contract over arbitrary
// parameters: generation either fails fast with an error or yields
// exactly n arrivals with nondecreasing times, in-pool ranks, and
// rank-consistent queries — and is deterministic for a seed.
func FuzzZipfTrace(f *testing.F) {
	f.Add(3, 3, 16, 200, int64(1), 1.2, 1.0, 1000.0)
	f.Add(1, 1, 1, 1, int64(0), 0.0, 0.0, 0.0)
	f.Add(5, 2, 40, 64, int64(9), 2.5, 3.0, -1.0)
	f.Fuzz(func(t *testing.T, numLabels, maxLen, poolN, n int, seed int64, s, v, rate float64) {
		// Bound the work, not the value space: the generator must behave
		// for any finite parameters, but the fuzzer should not spend its
		// budget building million-entry pools.
		if numLabels > 8 || maxLen > 4 || poolN > 64 || n > 512 {
			t.Skip()
		}
		pool, err := QueryPool(numLabels, maxLen, poolN, seed)
		if err != nil {
			if numLabels >= 1 && maxLen >= 1 && poolN >= 1 {
				t.Fatalf("QueryPool rejected valid args: %v", err)
			}
			return
		}
		opt := TraceOptions{Pool: pool, S: s, V: v, Rate: rate, N: n, Seed: seed}
		tr, err := ZipfTrace(opt)
		if err != nil {
			return // invalid options must error, never panic
		}
		if len(tr) != n {
			t.Fatalf("trace has %d arrivals, want %d", len(tr), n)
		}
		var prev time.Duration
		for i, a := range tr {
			if a.At < prev {
				t.Fatalf("arrival %d time %v < predecessor %v", i, a.At, prev)
			}
			prev = a.At
			if a.Rank < 0 || a.Rank >= len(pool) {
				t.Fatalf("arrival %d rank %d outside pool of %d", i, a.Rank, len(pool))
			}
			if fmt.Sprint(a.Query) != fmt.Sprint(pool[a.Rank]) {
				t.Fatalf("arrival %d query %v mismatches pool rank %d", i, a.Query, a.Rank)
			}
		}
		again, err := ZipfTrace(opt)
		if err != nil {
			t.Fatalf("second generation errored: %v", err)
		}
		for i := range tr {
			if tr[i].At != again[i].At || tr[i].Rank != again[i].Rank {
				t.Fatalf("arrival %d nondeterministic: %+v vs %+v", i, tr[i], again[i])
			}
		}
	})
}
