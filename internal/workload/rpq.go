package workload

// RPQ workload generation: ranked pools of regular path *patterns*
// rather than concrete label paths, for driving the serving layer's
// pattern grammar (pathsel.Compile) — alternation, optionals, bounded
// repetition — the way QueryPool drives the concrete-path surface.

import (
	"fmt"
	"math/rand"
	"strings"
)

// RPQPool builds a deterministic ranked pool of n distinct RPQ patterns
// over the label vocabulary, each matching only paths of length in
// [1, maxLen]. Segments mix plain labels, grouped alternations `(a|b)`,
// wildcards `*`, optionals `?`, and bounded repetitions `{m,k}`. Ranks
// are assigned in draw order (pool[0] is the hottest for ZipfTrace).
// When the pattern domain is too small to supply n distinct patterns
// the pool is whatever the domain yielded, so callers may over-ask on
// tiny vocabularies.
func RPQPool(labels []string, maxLen, n int, seed int64) ([]string, error) {
	if len(labels) < 1 || maxLen < 1 || n < 1 {
		return nil, fmt.Errorf("workload: RPQ pool needs labels, maxLen, n ≥ 1 (got %d, %d, %d)",
			len(labels), maxLen, n)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	// A duplicate streak this long means the domain is (close to)
	// exhausted — stop instead of spinning.
	for misses := 0; len(out) < n && misses < 64+16*n; {
		p := randomPattern(rng, labels, maxLen)
		if seen[p] {
			misses++
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out, nil
}

// randomPattern draws one pattern with 1 ≤ MinLen and MaxLen ≤ maxLen.
func randomPattern(rng *rand.Rand, labels []string, maxLen int) string {
	for {
		var segs []string
		minLen, maxTot := 0, 0
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			var atom string
			switch rng.Intn(5) {
			case 0:
				atom = "*"
			case 1:
				a, b := labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))]
				if a != b {
					atom = "(" + a + "|" + b + ")"
				} else {
					atom = a
				}
			default:
				atom = labels[rng.Intn(len(labels))]
			}
			lo, hi := 1, 1
			switch rng.Intn(4) {
			case 0:
				atom += "?"
				lo = 0
			case 1:
				hi = 1 + rng.Intn(2)
				lo = rng.Intn(hi + 1)
				if lo == hi {
					atom += fmt.Sprintf("{%d}", hi)
				} else {
					atom += fmt.Sprintf("{%d,%d}", lo, hi)
				}
			}
			segs = append(segs, atom)
			minLen += lo
			maxTot += hi
		}
		if minLen >= 1 && maxTot <= maxLen {
			return strings.Join(segs, "/")
		}
	}
}
