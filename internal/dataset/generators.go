// Package dataset provides the data substrate of the reproduction: loaders
// and writers for edge-list files, and deterministic synthetic generators
// for the four evaluation datasets of Table 3. In the layer map (graph →
// bitset → paths → exec → pathsel) it sits beside internal/graph,
// producing the graphs every layer above evaluates.
//
// The two real-world datasets of the paper (Moreno Health from Konect and a
// DBpedia subgraph) are not redistributable/downloadable in this offline
// environment. Per DESIGN.md §4 they are substituted with generators from
// the same family of graphs: scale-free preferential-attachment digraphs
// with skewed, degree-correlated edge labels, matching the published
// |V|/|E|/|L| counts. The two synthetic datasets (SNAP-ER and SNAP-FF) are
// direct reimplementations of their generative models.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// LabelModel chooses the label of a generated edge.
type LabelModel interface {
	// Label returns a label in [0, numLabels) for an edge src→dst. The
	// model may use endpoint degrees to correlate labels with topology.
	Label(rng *rand.Rand, src, dst, srcOutDeg, dstInDeg int) int
	// NumLabels returns the size of the label alphabet.
	NumLabels() int
}

// UniformLabels assigns labels uniformly at random — the model of the
// paper's purely synthetic datasets (SNAP-ER, SNAP-FF), whose label
// cardinalities are near-equal and uncorrelated.
type UniformLabels struct{ L int }

// Label implements LabelModel.
func (u UniformLabels) Label(rng *rand.Rand, _, _, _, _ int) int { return rng.Intn(u.L) }

// NumLabels implements LabelModel.
func (u UniformLabels) NumLabels() int { return u.L }

// ZipfLabels assigns labels with Zipf-distributed frequency, f(l) ∝
// 1/(rank+1)^S, independent of topology. Real graph datasets have highly
// skewed label cardinalities; this is the simplest model of that fact.
type ZipfLabels struct {
	L int
	S float64 // skew exponent; 0 degenerates to uniform

	cdf []float64
}

// NewZipfLabels builds a ZipfLabels model over l labels with exponent s.
func NewZipfLabels(l int, s float64) *ZipfLabels {
	if l <= 0 {
		panic(fmt.Sprintf("dataset: non-positive label count %d", l))
	}
	z := &ZipfLabels{L: l, S: s, cdf: make([]float64, l)}
	total := 0.0
	for i := 0; i < l; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	return z
}

// Label implements LabelModel.
func (z *ZipfLabels) Label(rng *rand.Rand, _, _, _, _ int) int {
	u := rng.Float64()
	for i, c := range z.cdf {
		if u <= c {
			return i
		}
	}
	return z.L - 1
}

// NumLabels implements LabelModel.
func (z *ZipfLabels) NumLabels() int { return z.L }

// CorrelatedLabels couples label choice to endpoint degree: high-degree
// (hub) endpoints preferentially receive low-rank (frequent) labels. This
// reproduces the "edge-label cardinality correlations in real-life data"
// that §4 of the paper credits for the smaller accuracy gap on real
// datasets: paths through hubs repeat the same frequent labels, so label
// frequency becomes predictive of path frequency.
type CorrelatedLabels struct {
	Zipf *ZipfLabels
	// Coupling in [0,1]: 0 = pure Zipf, 1 = fully degree-driven.
	Coupling float64
}

// Label implements LabelModel.
func (c *CorrelatedLabels) Label(rng *rand.Rand, src, dst, srcOut, dstIn int) int {
	if rng.Float64() >= c.Coupling {
		return c.Zipf.Label(rng, src, dst, srcOut, dstIn)
	}
	// Map combined endpoint degree to a label rank: hubs → rank 0.
	deg := srcOut + dstIn
	// Smooth, deterministic-in-expectation bucketing of log-degree.
	rank := int(float64(c.Zipf.L) / (1 + math.Log1p(float64(deg))))
	if rank >= c.Zipf.L {
		rank = c.Zipf.L - 1
	}
	if rank < 0 {
		rank = 0
	}
	// Jitter by ±1 to avoid hard label boundaries.
	switch rng.Intn(3) {
	case 0:
		if rank > 0 {
			rank--
		}
	case 2:
		if rank < c.Zipf.L-1 {
			rank++
		}
	}
	return rank
}

// NumLabels implements LabelModel.
func (c *CorrelatedLabels) NumLabels() int { return c.Zipf.L }

// ErdosRenyi generates a directed G(n, m) graph: m distinct labeled edges
// chosen uniformly among all (src, label, dst) triples. Deterministic for a
// given seed.
func ErdosRenyi(n, m int, labels LabelModel, seed int64) *graph.Graph {
	if m > n*n*labels.NumLabels() {
		panic(fmt.Sprintf("dataset: cannot place %d distinct edges in %d slots", m, n*n*labels.NumLabels()))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n, labels.NumLabels())
	for g.NumEdges() < m {
		src, dst := rng.Intn(n), rng.Intn(n)
		l := labels.Label(rng, src, dst, 0, 0)
		g.AddEdge(src, l, dst)
	}
	return g
}

// PreferentialAttachment generates a directed scale-free graph by degree-
// biased endpoint selection (a labeled variant of the Bollobás et al.
// directed PA model): each new edge picks its source proportional to
// out-degree+1 and its target proportional to in-degree+1, then asks the
// label model for a label (which may observe those degrees). The generator
// is used to emulate the two real-world datasets of Table 3.
func PreferentialAttachment(n, m int, labels LabelModel, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n, labels.NumLabels())
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	// Repeated-endpoint urns: vertex v appears outDeg[v] extra times.
	srcUrn := make([]int, 0, n+m)
	dstUrn := make([]int, 0, n+m)
	for v := 0; v < n; v++ {
		srcUrn = append(srcUrn, v)
		dstUrn = append(dstUrn, v)
	}
	attempts := 0
	maxAttempts := 50 * m
	for g.NumEdges() < m && attempts < maxAttempts {
		attempts++
		src := srcUrn[rng.Intn(len(srcUrn))]
		dst := dstUrn[rng.Intn(len(dstUrn))]
		l := labels.Label(rng, src, dst, outDeg[src], inDeg[dst])
		if g.AddEdge(src, l, dst) {
			outDeg[src]++
			inDeg[dst]++
			srcUrn = append(srcUrn, src)
			dstUrn = append(dstUrn, dst)
		}
	}
	if g.NumEdges() < m {
		// Dense corner: fill remaining edges uniformly.
		for g.NumEdges() < m {
			src, dst := rng.Intn(n), rng.Intn(n)
			l := labels.Label(rng, src, dst, outDeg[src], inDeg[dst])
			if g.AddEdge(src, l, dst) {
				outDeg[src]++
				inDeg[dst]++
			}
		}
	}
	return g
}

// ForestFire generates a directed graph with the Leskovec et al. forest-
// fire model: each new vertex picks an ambassador, then "burns" through the
// ambassador's neighborhood with forward probability fwd and backward
// factor bwd, linking to every burned vertex. Labels come from the label
// model. The process stops adding burn edges per vertex once the target
// total edge budget m is exhausted, so published |E| counts can be matched
// exactly.
func ForestFire(n, m int, fwd, bwd float64, labels LabelModel, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n, labels.NumLabels())
	out := make([][]int, n) // unlabeled forward adjacency for burning
	in := make([][]int, n)

	link := func(src, dst int) bool {
		l := labels.Label(rng, src, dst, len(out[src]), len(in[dst]))
		if g.AddEdge(src, l, dst) {
			out[src] = append(out[src], dst)
			in[dst] = append(in[dst], src)
			return true
		}
		return false
	}

	for v := 1; v < n && g.NumEdges() < m; v++ {
		ambassador := rng.Intn(v)
		link(v, ambassador)
		// Burn outward from the ambassador (geometric fan-out).
		visited := map[int]bool{v: true, ambassador: true}
		frontier := []int{ambassador}
		for len(frontier) > 0 && g.NumEdges() < m {
			cur := frontier[0]
			frontier = frontier[1:]
			nf := geometric(rng, fwd)
			nb := int(float64(geometric(rng, fwd)) * bwd)
			burn := pickDistinct(rng, out[cur], nf, visited)
			burn = append(burn, pickDistinct(rng, in[cur], nb, visited)...)
			for _, b := range burn {
				visited[b] = true
				link(v, b)
				frontier = append(frontier, b)
			}
		}
	}
	// Forest fire under-generates on sparse targets; top up uniformly to
	// reach the published edge count (same trick SNAP itself documents for
	// matching dataset sizes).
	for g.NumEdges() < m {
		src, dst := rng.Intn(n), rng.Intn(n)
		link(src, dst)
	}
	return g
}

// geometric samples the number of successes before failure with success
// probability p (mean p/(1-p)), capped to avoid pathological burns.
func geometric(rng *rand.Rand, p float64) int {
	n := 0
	for n < 16 && rng.Float64() < p {
		n++
	}
	return n
}

// pickDistinct selects up to n unvisited members of candidates, without
// replacement.
func pickDistinct(rng *rand.Rand, candidates []int, n int, visited map[int]bool) []int {
	if n <= 0 || len(candidates) == 0 {
		return nil
	}
	perm := rng.Perm(len(candidates))
	var out []int
	for _, i := range perm {
		c := candidates[i]
		if visited[c] {
			continue
		}
		out = append(out, c)
		if len(out) == n {
			break
		}
	}
	return out
}
