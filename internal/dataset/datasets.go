package dataset

import (
	"fmt"

	"repro/internal/graph"
)

// Spec describes one evaluation dataset (a row of the paper's Table 3).
type Spec struct {
	Name      string
	Labels    int
	Vertices  int
	Edges     int
	RealWorld bool // "Real world data" column: whether the original was real data
}

// Table3 lists the four datasets with the paper's published statistics.
func Table3() []Spec {
	return []Spec{
		{Name: "Moreno health", Labels: 6, Vertices: 2539, Edges: 12969, RealWorld: true},
		{Name: "DBpedia (subgraph)", Labels: 8, Vertices: 37374, Edges: 209068, RealWorld: true},
		{Name: "SNAP-ER", Labels: 6, Vertices: 12333, Edges: 147996, RealWorld: false},
		{Name: "SNAP-FF", Labels: 8, Vertices: 50000, Edges: 132673, RealWorld: false},
	}
}

// Generate builds the dataset described by spec at the given scale with a
// deterministic seed. Scale 1.0 reproduces the published vertex/edge
// counts; smaller scales shrink both proportionally (used for fast default
// experiment runs; see DESIGN.md §4). Scale must be in (0, 1].
func Generate(spec Spec, scale float64, seed int64) *graph.Graph {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("dataset: scale %v out of (0,1]", scale))
	}
	v := int(float64(spec.Vertices) * scale)
	e := int(float64(spec.Edges) * scale)
	if v < 10 {
		v = 10
	}
	if e < spec.Labels {
		e = spec.Labels
	}
	switch spec.Name {
	case "Moreno health":
		return morenoHealthLike(v, e, spec.Labels, seed)
	case "DBpedia (subgraph)":
		return dbpediaLike(v, e, spec.Labels, seed)
	case "SNAP-ER":
		// Synthetic datasets carry skewed but topology-independent labels:
		// the paper's strongest sum-based wins are on synthetic data, and
		// attributes the *smaller* real-world gap to edge-label cardinality
		// correlations — implying its synthetic labels were skewed yet
		// uncorrelated.
		return ErdosRenyi(v, e, NewZipfLabels(spec.Labels, 1.2), seed)
	case "SNAP-FF":
		return ForestFire(v, e, 0.35, 0.32, NewZipfLabels(spec.Labels, 1.2), seed)
	default:
		panic(fmt.Sprintf("dataset: unknown spec %q", spec.Name))
	}
}

// MorenoHealthLike returns the Moreno Health substitute at full published
// scale. See the package comment for the substitution rationale.
func MorenoHealthLike(seed int64) *graph.Graph {
	return Generate(Table3()[0], 1.0, seed)
}

// DBpediaLike returns the DBpedia-subgraph substitute at full published
// scale.
func DBpediaLike(seed int64) *graph.Graph {
	return Generate(Table3()[1], 1.0, seed)
}

// SnapER returns the SNAP-ER synthetic dataset at full published scale.
func SnapER(seed int64) *graph.Graph {
	return Generate(Table3()[2], 1.0, seed)
}

// SnapFF returns the SNAP-FF synthetic dataset at full published scale.
func SnapFF(seed int64) *graph.Graph {
	return Generate(Table3()[3], 1.0, seed)
}

// morenoHealthLike emulates the Moreno Health friendship network: a social
// graph (moderate degree skew) whose six answer-rank labels have strongly
// skewed, degree-correlated frequencies — friend #1 nominations (label "1")
// vastly outnumber friend #6 ones, and sociable vertices produce the
// frequent labels. This skew+correlation is exactly the structure Figure 1
// of the paper visualizes.
func morenoHealthLike(v, e, labels int, seed int64) *graph.Graph {
	model := &CorrelatedLabels{Zipf: NewZipfLabels(labels, 1.1), Coupling: 0.5}
	return PreferentialAttachment(v, e, model, seed)
}

// dbpediaLike emulates a DBpedia subgraph: a heavy-tailed knowledge graph
// with hub entities and strongly skewed predicate frequencies.
func dbpediaLike(v, e, labels int, seed int64) *graph.Graph {
	model := &CorrelatedLabels{Zipf: NewZipfLabels(labels, 1.4), Coupling: 0.6}
	return PreferentialAttachment(v, e, model, seed)
}
