package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the loader never panics and, when it succeeds,
// produces a graph that survives a write/read round trip. Runs its seed
// corpus as a normal test; `go test -fuzz=FuzzReadEdgeList ./internal/dataset`
// explores further.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"% comment only\n",
		"1 2 a\n2 3 b\n",
		"1 2\n",
		"x y z\n",
		"1 2 a\n1 2 a\n", // duplicate edge
		"9999999 1 l\n",  // sparse ids
		"1 1 self\n",     // self loop
		"1 2 a b c\n",    // extra fields ignored? (no: field 3 only)
		"-5 3 neg\n",     // negative id
		strings.Repeat("1 2 a\n", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count %d → %d", g.NumEdges(), g2.NumEdges())
		}
		if g2.NumLabels() != g.NumLabels() {
			t.Fatalf("round trip changed label count %d → %d", g.NumLabels(), g2.NumLabels())
		}
	})
}
