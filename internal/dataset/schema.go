package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// This file implements a gMark-inspired schema-driven generator (Bagan et
// al., "gMark: Schema-driven generation of graphs and queries", TKDE 2017
// — the paper's citation [4] for synthetic graph generation): the user
// declares, per edge label, its share of the edge budget and the shape of
// its out-/in-degree distributions, and the generator materializes a graph
// honouring the schema. This gives experiments precise control over the
// two properties the paper's evaluation turns on — label-frequency skew
// and label/topology correlation.

// DegreeDist is the shape of a degree distribution in a Schema.
type DegreeDist int

// Degree distribution shapes.
const (
	// DegreeUniform spreads endpoints uniformly over vertices.
	DegreeUniform DegreeDist = iota
	// DegreeZipfian concentrates endpoints on a few hub vertices with
	// weight ∝ 1/rank^s (s = the spec's Skew, default 1).
	DegreeZipfian
	// DegreeConstant gives every vertex (as nearly as possible) the same
	// degree.
	DegreeConstant
)

// String returns the shape name.
func (d DegreeDist) String() string {
	switch d {
	case DegreeUniform:
		return "uniform"
	case DegreeZipfian:
		return "zipfian"
	case DegreeConstant:
		return "constant"
	default:
		return fmt.Sprintf("DegreeDist(%d)", int(d))
	}
}

// MarshalJSON encodes the shape as its name, so schema files read
// naturally ("outDist": "zipfian").
func (d DegreeDist) MarshalJSON() ([]byte, error) {
	switch d {
	case DegreeUniform, DegreeZipfian, DegreeConstant:
		return []byte(`"` + d.String() + `"`), nil
	default:
		return nil, fmt.Errorf("dataset: unknown degree distribution %d", int(d))
	}
}

// UnmarshalJSON accepts the shape name.
func (d *DegreeDist) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"uniform"`, `""`:
		*d = DegreeUniform
	case `"zipfian"`:
		*d = DegreeZipfian
	case `"constant"`:
		*d = DegreeConstant
	default:
		return fmt.Errorf("dataset: unknown degree distribution %s (want uniform, zipfian, or constant)", b)
	}
	return nil
}

// LabelSpec declares one edge label of a Schema.
type LabelSpec struct {
	// Name is the label's display name.
	Name string
	// Proportion is the label's share of the edge budget; proportions are
	// normalized over the schema, so any positive weights work.
	Proportion float64
	// OutDist shapes the distribution of edge sources.
	OutDist DegreeDist
	// InDist shapes the distribution of edge targets.
	InDist DegreeDist
	// Skew is the Zipf exponent used by DegreeZipfian (0 means 1.0).
	Skew float64
}

// Schema is a declarative description of a labeled graph.
type Schema struct {
	Vertices int
	Edges    int
	Labels   []LabelSpec
}

// Validate reports whether the schema is generatable.
func (s Schema) Validate() error {
	if s.Vertices < 1 {
		return fmt.Errorf("dataset: schema needs ≥ 1 vertex, got %d", s.Vertices)
	}
	if s.Edges < 0 {
		return fmt.Errorf("dataset: negative edge budget %d", s.Edges)
	}
	if len(s.Labels) == 0 {
		return fmt.Errorf("dataset: schema needs ≥ 1 label")
	}
	total := 0.0
	for i, l := range s.Labels {
		if l.Proportion <= 0 {
			return fmt.Errorf("dataset: label %d (%q) has non-positive proportion %v", i, l.Name, l.Proportion)
		}
		if l.Name == "" {
			return fmt.Errorf("dataset: label %d has empty name", i)
		}
		total += l.Proportion
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return fmt.Errorf("dataset: proportions sum to %v", total)
	}
	return nil
}

// endpointSampler draws vertices under one degree distribution. Each label
// gets its own random vertex permutation, so "the hubs of label A" are not
// automatically "the hubs of label B" — labels stay topology-independent
// unless the caller wires them together.
type endpointSampler struct {
	dist DegreeDist
	perm []int
	cum  []float64 // cumulative weights for zipfian
	next int       // round-robin cursor for constant
}

func newEndpointSampler(rng *rand.Rand, n int, dist DegreeDist, skew float64) *endpointSampler {
	s := &endpointSampler{dist: dist, perm: rng.Perm(n)}
	if dist == DegreeZipfian {
		if skew <= 0 {
			skew = 1.0
		}
		s.cum = make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			total += 1 / math.Pow(float64(i+1), skew)
			s.cum[i] = total
		}
	}
	return s
}

func (s *endpointSampler) sample(rng *rand.Rand) int {
	n := len(s.perm)
	switch s.dist {
	case DegreeZipfian:
		u := rng.Float64() * s.cum[n-1]
		i := sort.SearchFloat64s(s.cum, u)
		if i >= n {
			i = n - 1
		}
		return s.perm[i]
	case DegreeConstant:
		v := s.perm[s.next%n]
		s.next++
		return v
	default:
		return s.perm[rng.Intn(n)]
	}
}

// GenerateSchema materializes a schema deterministically for a seed. Edge
// counts per label follow the normalized proportions exactly (subject to
// rounding, with the remainder assigned to the highest-proportion labels);
// duplicate (src, label, dst) draws are retried, falling back to uniform
// placement if a label's slot space is nearly saturated.
func GenerateSchema(s Schema, seed int64) (*graph.Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(s.Vertices, len(s.Labels))
	for i, l := range s.Labels {
		g.SetLabelName(i, l.Name)
	}
	// Apportion the edge budget: floor shares first, then remainders by
	// largest fractional part (deterministic tie-break by index).
	total := 0.0
	for _, l := range s.Labels {
		total += l.Proportion
	}
	counts := make([]int, len(s.Labels))
	type frac struct {
		idx  int
		part float64
	}
	var fracs []frac
	assigned := 0
	for i, l := range s.Labels {
		exact := float64(s.Edges) * l.Proportion / total
		counts[i] = int(exact)
		assigned += counts[i]
		fracs = append(fracs, frac{i, exact - float64(counts[i])})
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].part != fracs[b].part {
			return fracs[a].part > fracs[b].part
		}
		return fracs[a].idx < fracs[b].idx
	})
	for r := 0; assigned < s.Edges; r++ {
		counts[fracs[r%len(fracs)].idx]++
		assigned++
	}

	maxPerLabel := s.Vertices * s.Vertices
	for li, l := range s.Labels {
		want := counts[li]
		if want > maxPerLabel {
			return nil, fmt.Errorf("dataset: label %q needs %d edges but only %d slots exist", l.Name, want, maxPerLabel)
		}
		out := newEndpointSampler(rng, s.Vertices, l.OutDist, l.Skew)
		in := newEndpointSampler(rng, s.Vertices, l.InDist, l.Skew)
		placed := 0
		attempts := 0
		for placed < want {
			src := out.sample(rng)
			dst := in.sample(rng)
			if g.AddEdge(src, li, dst) {
				placed++
			}
			attempts++
			if attempts > 50*want+1000 {
				// Heavy-tailed samplers saturate their hub slots; place the
				// rest uniformly so the schema's edge counts stay exact.
				for placed < want {
					if g.AddEdge(rng.Intn(s.Vertices), li, rng.Intn(s.Vertices)) {
						placed++
					}
				}
			}
		}
	}
	return g, nil
}
