package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteEdgeList writes g in the Konect-style whitespace-separated format
// used by the loader:
//
//	% comment lines start with '%' or '#'
//	src dst label
//
// Vertices are written 1-based (Konect convention) and labels by display
// name. Edges appear in deterministic (label, src, dst) order.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% directed labeled graph: %d vertices, %d labels, %d edges\n",
		g.NumVertices(), g.NumLabels(), g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d %s\n", e.Src+1, e.Dst+1, g.LabelName(e.Label))
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Vertex ids may
// be arbitrary positive integers (they are densified); labels may be
// arbitrary tokens (densified alphabetically, so that alphabetical ranking
// over the loaded graph matches the file's label names). Lines starting
// with '%' or '#' and blank lines are skipped. A missing label column
// defaults to the single label "1".
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	type rawEdge struct {
		src, dst int
		label    string
	}
	var raw []rawEdge
	vertexIDs := map[int]struct{}{}
	labelSet := map[string]struct{}{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: line %d: want `src dst [label]`, got %q", lineNo, line)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		dst, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		label := "1"
		if len(fields) >= 3 {
			label = fields[2]
		}
		raw = append(raw, rawEdge{src, dst, label})
		vertexIDs[src] = struct{}{}
		vertexIDs[dst] = struct{}{}
		labelSet[label] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %v", err)
	}

	// Densify vertices in ascending id order and labels alphabetically.
	vids := make([]int, 0, len(vertexIDs))
	for v := range vertexIDs {
		vids = append(vids, v)
	}
	sort.Ints(vids)
	vmap := make(map[int]int, len(vids))
	for i, v := range vids {
		vmap[v] = i
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	lmap := make(map[string]int, len(labels))
	for i, l := range labels {
		lmap[l] = i
	}

	g := graph.New(len(vids), len(labels))
	for i, l := range labels {
		g.SetLabelName(i, l)
	}
	for _, e := range raw {
		g.AddEdge(vmap[e.src], lmap[e.label], vmap[e.dst])
	}
	return g, nil
}
