package dataset

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestUniformLabels(t *testing.T) {
	u := UniformLabels{L: 4}
	if u.NumLabels() != 4 {
		t.Fatal("NumLabels wrong")
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		l := u.Label(rng, 0, 0, 0, 0)
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for l, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("uniform label %d count %d far from 1000", l, c)
		}
	}
}

func TestZipfLabelsSkew(t *testing.T) {
	z := NewZipfLabels(6, 1.2)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 6)
	for i := 0; i < 20000; i++ {
		counts[z.Label(rng, 0, 0, 0, 0)]++
	}
	// Frequencies must be monotone decreasing in rank (with slack) and
	// label 0 clearly dominant over label 5.
	if counts[0] < 3*counts[5] {
		t.Fatalf("Zipf skew too weak: %v", counts)
	}
	for i := 1; i < 6; i++ {
		if float64(counts[i]) > 1.15*float64(counts[i-1]) {
			t.Fatalf("Zipf counts not roughly monotone: %v", counts)
		}
	}
}

func TestZipfLabelsZeroSkewIsUniform(t *testing.T) {
	z := NewZipfLabels(4, 0)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[z.Label(rng, 0, 0, 0, 0)]++
	}
	for _, c := range counts {
		if c < 1600 || c > 2400 {
			t.Fatalf("s=0 Zipf should be near uniform: %v", counts)
		}
	}
}

func TestNewZipfLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipfLabels(0, 1) should panic")
		}
	}()
	NewZipfLabels(0, 1)
}

func TestCorrelatedLabelsRange(t *testing.T) {
	c := &CorrelatedLabels{Zipf: NewZipfLabels(6, 1.1), Coupling: 0.7}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		l := c.Label(rng, 0, 0, rng.Intn(1000), rng.Intn(1000))
		if l < 0 || l >= 6 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestCorrelatedLabelsHubsGetFrequentLabels(t *testing.T) {
	c := &CorrelatedLabels{Zipf: NewZipfLabels(6, 1.1), Coupling: 1.0}
	rng := rand.New(rand.NewSource(5))
	hub, leaf := 0.0, 0.0
	const trials = 4000
	for i := 0; i < trials; i++ {
		hub += float64(c.Label(rng, 0, 0, 500, 500))
		leaf += float64(c.Label(rng, 0, 0, 0, 0))
	}
	if hub/trials >= leaf/trials {
		t.Fatalf("hub mean label rank %.2f should be below leaf %.2f", hub/trials, leaf/trials)
	}
}

func TestErdosRenyiCounts(t *testing.T) {
	g := ErdosRenyi(100, 500, UniformLabels{L: 4}, 42)
	if g.NumVertices() != 100 || g.NumLabels() != 4 {
		t.Fatal("sizes wrong")
	}
	if g.NumEdges() != 500 {
		t.Fatalf("NumEdges = %d, want 500", g.NumEdges())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 200, UniformLabels{L: 3}, 7)
	b := ErdosRenyi(50, 200, UniformLabels{L: 3}, 7)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("different edge counts for same seed")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := ErdosRenyi(50, 200, UniformLabels{L: 3}, 8)
	same := true
	ec := c.Edges()
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestErdosRenyiImpossiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("impossible edge count should panic")
		}
	}()
	ErdosRenyi(2, 100, UniformLabels{L: 1}, 1)
}

func TestPreferentialAttachmentCountsAndSkew(t *testing.T) {
	g := PreferentialAttachment(500, 3000, UniformLabels{L: 4}, 13)
	if g.NumEdges() != 3000 {
		t.Fatalf("NumEdges = %d, want 3000", g.NumEdges())
	}
	// Degree skew: max out-degree should far exceed the mean (6).
	out := make([]int, 500)
	for _, e := range g.Edges() {
		out[e.Src]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	if out[0] < 20 {
		t.Fatalf("max out-degree %d too small for a scale-free graph", out[0])
	}
}

func TestForestFireCounts(t *testing.T) {
	g := ForestFire(1000, 2500, 0.35, 0.32, UniformLabels{L: 4}, 21)
	if g.NumVertices() != 1000 {
		t.Fatal("vertex count wrong")
	}
	if g.NumEdges() != 2500 {
		t.Fatalf("NumEdges = %d, want 2500", g.NumEdges())
	}
}

func TestForestFireDeterministic(t *testing.T) {
	a := ForestFire(300, 800, 0.35, 0.32, UniformLabels{L: 3}, 5)
	b := ForestFire(300, 800, 0.35, 0.32, UniformLabels{L: 3}, 5)
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("forest fire not deterministic")
		}
	}
}

func TestTable3Specs(t *testing.T) {
	specs := Table3()
	if len(specs) != 4 {
		t.Fatalf("Table3 has %d rows, want 4", len(specs))
	}
	want := []Spec{
		{"Moreno health", 6, 2539, 12969, true},
		{"DBpedia (subgraph)", 8, 37374, 209068, true},
		{"SNAP-ER", 6, 12333, 147996, false},
		{"SNAP-FF", 8, 50000, 132673, false},
	}
	for i, w := range want {
		if specs[i] != w {
			t.Errorf("Table3[%d] = %+v, want %+v", i, specs[i], w)
		}
	}
}

func TestGenerateScaled(t *testing.T) {
	for _, spec := range Table3() {
		g := Generate(spec, 0.05, 99)
		wantV := int(float64(spec.Vertices) * 0.05)
		wantE := int(float64(spec.Edges) * 0.05)
		if g.NumVertices() != wantV {
			t.Errorf("%s: vertices = %d, want %d", spec.Name, g.NumVertices(), wantV)
		}
		if g.NumEdges() != wantE {
			t.Errorf("%s: edges = %d, want %d", spec.Name, g.NumEdges(), wantE)
		}
		if g.NumLabels() != spec.Labels {
			t.Errorf("%s: labels = %d, want %d", spec.Name, g.NumLabels(), spec.Labels)
		}
	}
}

func TestGenerateBadScalePanics(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v should panic", s)
				}
			}()
			Generate(Table3()[0], s, 1)
		}()
	}
}

func TestMorenoLikeLabelSkew(t *testing.T) {
	// The Moreno substitute must have clearly skewed label frequencies —
	// the property Figure 1 and cardinality ranking depend on.
	g := Generate(Table3()[0], 0.2, 7)
	freq := g.LabelFrequencies()
	mx, mn := freq[0], freq[0]
	for _, f := range freq {
		if f > mx {
			mx = f
		}
		if f < mn {
			mn = f
		}
	}
	if mn == 0 {
		t.Fatalf("a label is unused: %v", freq)
	}
	if float64(mx) < 2*float64(mn) {
		t.Fatalf("label skew too weak for Moreno-like data: %v", freq)
	}
}

func TestSnapERLabelSkewedIndependent(t *testing.T) {
	// Synthetic datasets have skewed label frequencies (rank-1 label
	// clearly dominates the rarest) — see datasets.go for the rationale.
	g := Generate(Table3()[2], 0.1, 7)
	freq := g.LabelFrequencies()
	mx, mn := freq[0], freq[0]
	for _, f := range freq {
		if f > mx {
			mx = f
		}
		if f < mn {
			mn = f
		}
	}
	if mn == 0 || float64(mx) < 2*float64(mn) {
		t.Fatalf("SNAP-ER labels should be skewed: %v", freq)
	}
}

func TestFullScaleConstructorsMatchTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	g := MorenoHealthLike(1)
	if g.NumVertices() != 2539 || g.NumEdges() != 12969 || g.NumLabels() != 6 {
		t.Fatalf("MorenoHealthLike = %d/%d/%d", g.NumVertices(), g.NumEdges(), g.NumLabels())
	}
	ff := SnapFF(1)
	if ff.NumVertices() != 50000 || ff.NumEdges() != 132673 {
		t.Fatalf("SnapFF = %d/%d", ff.NumVertices(), ff.NumEdges())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := ErdosRenyi(40, 150, UniformLabels{L: 3}, 17)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	if g2.NumLabels() != g.NumLabels() {
		t.Fatalf("round trip labels = %d, want %d", g2.NumLabels(), g.NumLabels())
	}
	// Vertex ids can be renumbered if some vertices are isolated, but the
	// multiset of (src, dst, labelName) triples must survive. The writer's
	// 1-based ids are densified in ascending order, so edges survive with
	// a monotone vertex relabeling; compare label-name streams per edge.
	ea, eb := g.Edges(), g2.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge lists differ in length")
	}
	for i := range ea {
		if g.LabelName(ea[i].Label) != g2.LabelName(eb[i].Label) {
			t.Fatalf("edge %d label %q != %q", i, g.LabelName(ea[i].Label), g2.LabelName(eb[i].Label))
		}
	}
}

func TestReadEdgeListParsing(t *testing.T) {
	in := `% a comment
# another comment

1 2 knows
2 3 likes
3 1 knows
5 5
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.NumLabels() != 3 { // "1" (default), "knows", "likes" sorted
		t.Fatalf("NumLabels = %d, want 3", g.NumLabels())
	}
	if g.LabelByName("knows") == -1 || g.LabelByName("likes") == -1 || g.LabelByName("1") == -1 {
		t.Fatal("label names missing")
	}
	if g.NumVertices() != 4 { // ids 1,2,3,5 densified
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",
		"a 2 l\n",
		"1 b l\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("% only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty input should produce empty graph")
	}
}

func TestWriteEdgeListFormat(t *testing.T) {
	g := graph.New(3, 2)
	g.SetLabelName(0, "a")
	g.SetLabelName(1, "b")
	g.AddEdge(0, 0, 1)
	g.AddEdge(2, 1, 0)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1 2 a") || !strings.Contains(out, "3 1 b") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.HasPrefix(out, "%") {
		t.Fatal("should start with a comment header")
	}
}
