package dataset

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

func validSchema() Schema {
	return Schema{
		Vertices: 200,
		Edges:    1000,
		Labels: []LabelSpec{
			{Name: "a", Proportion: 0.5, OutDist: DegreeZipfian, InDist: DegreeUniform, Skew: 1.2},
			{Name: "b", Proportion: 0.3, OutDist: DegreeUniform, InDist: DegreeUniform},
			{Name: "c", Proportion: 0.2, OutDist: DegreeConstant, InDist: DegreeConstant},
		},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := validSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{Vertices: 0, Edges: 1, Labels: validSchema().Labels},
		{Vertices: 10, Edges: -1, Labels: validSchema().Labels},
		{Vertices: 10, Edges: 5, Labels: nil},
		{Vertices: 10, Edges: 5, Labels: []LabelSpec{{Name: "a", Proportion: 0}}},
		{Vertices: 10, Edges: 5, Labels: []LabelSpec{{Name: "", Proportion: 1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %d should be invalid", i)
		}
	}
}

func TestGenerateSchemaCountsExact(t *testing.T) {
	s := validSchema()
	g, err := GenerateSchema(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 || g.NumEdges() != 1000 || g.NumLabels() != 3 {
		t.Fatalf("sizes = %d/%d/%d", g.NumVertices(), g.NumEdges(), g.NumLabels())
	}
	freq := g.LabelFrequencies()
	// Proportions 0.5/0.3/0.2 over 1000 edges, exact by apportionment.
	if freq[0] != 500 || freq[1] != 300 || freq[2] != 200 {
		t.Fatalf("label frequencies %v, want [500 300 200]", freq)
	}
	if g.LabelName(0) != "a" || g.LabelName(2) != "c" {
		t.Fatal("label names lost")
	}
}

func TestGenerateSchemaRoundingRemainder(t *testing.T) {
	s := Schema{
		Vertices: 50,
		Edges:    10,
		Labels: []LabelSpec{
			{Name: "x", Proportion: 1},
			{Name: "y", Proportion: 1},
			{Name: "z", Proportion: 1},
		},
	}
	g, err := GenerateSchema(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 10 {
		t.Fatalf("edges = %d, want 10", g.NumEdges())
	}
	freq := g.LabelFrequencies()
	var total int64
	for _, f := range freq {
		if f < 3 || f > 4 {
			t.Fatalf("apportionment uneven: %v", freq)
		}
		total += f
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
}

func TestGenerateSchemaDeterministic(t *testing.T) {
	a, err := GenerateSchema(validSchema(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchema(validSchema(), 5)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestGenerateSchemaZipfianSkew(t *testing.T) {
	// The zipfian out-distribution must concentrate out-degree far more
	// than the uniform one at equal edge counts.
	mk := func(dist DegreeDist) int {
		s := Schema{
			Vertices: 300,
			Edges:    2000,
			Labels:   []LabelSpec{{Name: "l", Proportion: 1, OutDist: dist, InDist: DegreeUniform, Skew: 1.3}},
		}
		g, err := GenerateSchema(s, 11)
		if err != nil {
			t.Fatal(err)
		}
		deg := make([]int, 300)
		for _, e := range g.Edges() {
			deg[e.Src]++
		}
		sort.Sort(sort.Reverse(sort.IntSlice(deg)))
		top := 0
		for _, d := range deg[:15] { // top 5% of vertices
			top += d
		}
		return top
	}
	zipf, unif := mk(DegreeZipfian), mk(DegreeUniform)
	if zipf < 2*unif {
		t.Fatalf("zipfian top-degree mass %d not clearly above uniform %d", zipf, unif)
	}
}

func TestGenerateSchemaConstantDegree(t *testing.T) {
	s := Schema{
		Vertices: 100,
		Edges:    400,
		Labels:   []LabelSpec{{Name: "l", Proportion: 1, OutDist: DegreeConstant, InDist: DegreeUniform}},
	}
	g, err := GenerateSchema(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, 100)
	for _, e := range g.Edges() {
		deg[e.Src]++
	}
	for v, d := range deg {
		if d < 2 || d > 6 { // target 4 per vertex, allow duplicate retries
			t.Fatalf("vertex %d out-degree %d far from constant 4", v, d)
		}
	}
}

func TestGenerateSchemaSaturation(t *testing.T) {
	// Dense corner: nearly all slots used; must still terminate with the
	// exact count via the uniform fallback.
	s := Schema{
		Vertices: 4,
		Edges:    15, // of 16 possible (4×4 incl. self loops) for one label
		Labels:   []LabelSpec{{Name: "l", Proportion: 1, OutDist: DegreeZipfian, InDist: DegreeZipfian, Skew: 2}},
	}
	g, err := GenerateSchema(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 15 {
		t.Fatalf("edges = %d, want 15", g.NumEdges())
	}
}

func TestGenerateSchemaImpossible(t *testing.T) {
	s := Schema{
		Vertices: 2,
		Edges:    100,
		Labels:   []LabelSpec{{Name: "l", Proportion: 1}},
	}
	if _, err := GenerateSchema(s, 1); err == nil {
		t.Fatal("over-capacity schema should error")
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := validSchema()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"zipfian"`) {
		t.Fatalf("degree shapes should serialize as names: %s", data)
	}
	var back Schema
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Vertices != s.Vertices || len(back.Labels) != len(s.Labels) {
		t.Fatal("schema lost in round trip")
	}
	for i := range s.Labels {
		if back.Labels[i] != s.Labels[i] {
			t.Fatalf("label %d: %+v != %+v", i, back.Labels[i], s.Labels[i])
		}
	}
}

func TestDegreeDistJSONErrors(t *testing.T) {
	var d DegreeDist
	if err := json.Unmarshal([]byte(`"pareto"`), &d); err == nil {
		t.Fatal("unknown shape should fail to parse")
	}
	if err := json.Unmarshal([]byte(`""`), &d); err != nil {
		t.Fatal("empty shape should default to uniform")
	}
	if d != DegreeUniform {
		t.Fatal("empty shape should be uniform")
	}
	bad := DegreeDist(42)
	if _, err := json.Marshal(bad); err == nil {
		t.Fatal("unknown shape should fail to marshal")
	}
}

func TestDegreeDistString(t *testing.T) {
	if DegreeUniform.String() != "uniform" || DegreeZipfian.String() != "zipfian" ||
		DegreeConstant.String() != "constant" {
		t.Fatal("names wrong")
	}
	if DegreeDist(9).String() != "DegreeDist(9)" {
		t.Fatal("unknown shape name wrong")
	}
}
