// Package combinat implements the combinatorial machinery behind the
// sum-based histogram domain ordering of Yakovets et al. (EDBT 2018) — a
// leaf utility of the layer map (graph → bitset → paths → exec →
// pathsel), consumed by internal/paths for canonical path indexing and by
// internal/ordering for sum-based ranking:
//
//   - binomial coefficients,
//   - Dist — the number of bounded compositions (Eq. 3 of the paper): how
//     many length-m sequences of ranks in [1, b] sum to a given value,
//   - Partitions — ordered enumeration of integer partitions of v into
//     exactly m parts bounded by b (Eq. 4), in the paper's stage-three
//     order,
//   - NumPermutations — the number of distinct permutations of a multiset
//     (Eq. 5),
//   - permutation unranking within a combination (Algorithm 1) and its
//     inverse ranking.
//
// All quantities in the target workloads are small (k ≤ 8, |L| ≤ 64), so
// int64 arithmetic suffices; functions panic on overflow rather than return
// wrong answers.
package combinat

import "fmt"

// Binomial returns C(n, k). It returns 0 when k < 0 or k > n, matching the
// combinatorial convention used by inclusion–exclusion sums. It panics on
// int64 overflow.
func Binomial(n, k int64) int64 {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var r int64 = 1
	for i := int64(1); i <= k; i++ {
		hi, lo := mulCheck(r, n-k+i)
		if hi {
			panic(fmt.Sprintf("combinat: Binomial(%d,%d) overflows int64", n, k))
		}
		r = lo / i
	}
	return r
}

// mulCheck multiplies a*b and reports overflow.
func mulCheck(a, b int64) (overflow bool, prod int64) {
	if a == 0 || b == 0 {
		return false, 0
	}
	p := a * b
	if p/b != a {
		return true, 0
	}
	return false, p
}

// Dist returns the number of length-m sequences (r1, …, rm) with every
// ri ∈ [1, b] and Σri = sum. This is Eq. 3 of the paper — the size of a
// stage-two partition of the sum-based domain — computed by
// inclusion–exclusion:
//
//	dist(sum, m, b) = Σ_{j≥0} (−1)^j · C(m, j) · C(sum − j·b − 1, m − 1)
//
// Dist returns 0 for impossible inputs (sum < m or sum > m·b or m ≤ 0,
// except Dist(0, 0, b) = 1).
func Dist(sum, m, b int64) int64 {
	if m == 0 {
		if sum == 0 {
			return 1
		}
		return 0
	}
	if m < 0 || b <= 0 || sum < m || sum > m*b {
		return 0
	}
	var total int64
	for j := int64(0); ; j++ {
		top := sum - j*b - 1
		if top < m-1 {
			break
		}
		term := Binomial(m, j) * Binomial(top, m-1)
		if j%2 == 0 {
			total += term
		} else {
			total -= term
		}
		if j == m {
			break
		}
	}
	return total
}

// DistNaive counts the same quantity by brute-force recursion; it exists to
// cross-check Dist in tests and to document the semantics directly.
func DistNaive(sum, m, b int64) int64 {
	if m == 0 {
		if sum == 0 {
			return 1
		}
		return 0
	}
	if sum < m || sum > m*b {
		return 0
	}
	var total int64
	for r := int64(1); r <= b; r++ {
		total += DistNaive(sum-r, m-1, b)
	}
	return total
}

// Partitions enumerates the integer partitions of v into exactly m parts,
// every part in [1, b], in the paper's Formula-4 order: the outer loop
// ascends over i = number of parts equal to the current bound b (i = 0
// first), recursing with bound b−1 on the remainder. Each emitted partition
// is sorted ascending. The slice passed to emit is reused; callers must copy
// it if they retain it. Enumeration stops early when emit returns false.
//
// This exact order is what makes the stage-three domain layout of sum-based
// ordering deterministic, so it is part of the package contract and is
// pinned by golden tests (including the paper's worked example in Table 2).
func Partitions(v, m, b int64, emit func(parts []int64) bool) {
	buf := make([]int64, 0, m)
	partitionsRec(v, m, b, buf, emit)
}

// partitionsRec appends parts (all equal to bounds > current b are already
// in buf, largest last) and reports whether enumeration should continue.
func partitionsRec(v, m, b int64, buf []int64, emit func([]int64) bool) bool {
	if m == 0 {
		if v != 0 {
			return true
		}
		// buf holds parts from smallest bound to largest; emit ascending.
		out := make([]int64, len(buf))
		for i, p := range buf {
			out[len(buf)-1-i] = p
		}
		return emit(out)
	}
	if b <= 0 || v < m || v > m*b {
		return true
	}
	for i := int64(0); i*b <= v && i <= m; i++ {
		// i copies of b, recurse on the rest with bound b−1.
		next := buf
		for j := int64(0); j < i; j++ {
			next = append(next, b)
		}
		if !partitionsRec(v-i*b, m-i, b-1, next, emit) {
			return false
		}
	}
	return true
}

// NumPermutations returns the number of distinct permutations of the
// multiset parts (Eq. 5): |parts|! / Π_i d_i! where d_i is the multiplicity
// of value i.
func NumPermutations(parts []int64) int64 {
	counts := map[int64]int64{}
	for _, p := range parts {
		counts[p]++
	}
	var r int64 = 1
	// Build n!/Πd_i! incrementally to keep intermediates small: treat the
	// multiset as a sequence of draws, r *= position / (draws of this value
	// so far). Equivalent closed form, less overflow-prone.
	pos := int64(0)
	for v, c := range counts {
		_ = v
		for i := int64(1); i <= c; i++ {
			pos++
			hi, p := mulCheck(r, pos)
			if hi {
				panic("combinat: NumPermutations overflows int64")
			}
			r = p / i
		}
	}
	return r
}

// UnrankPermutation returns the index-th (0-based) distinct permutation of
// the multiset parts, in ascending lexicographic order. parts must be
// sorted ascending. It returns nil when index is out of range. This is
// Algorithm 1 of the paper; the block size below a candidate leading
// element x is computed in O(1) from the identity
//
//	nop(S \ {x}) = nop(S) · d_x / |S|
//
// instead of re-deriving Eq. 5 per step, so the whole unranking is O(k²)
// with a single output allocation.
func UnrankPermutation(index int64, parts []int64) []int64 {
	if index < 0 || index >= NumPermutations(parts) {
		return nil
	}
	remaining := make([]int64, len(parts))
	copy(remaining, parts)
	nop := NumPermutations(parts)
	n := int64(len(remaining))
	out := make([]int64, 0, len(parts))
	for n > 0 {
		i := 0
		for {
			// Count duplicates of the candidate leading element.
			v := remaining[i]
			d := int64(0)
			j := i
			for j < len(remaining) && remaining[j] == v {
				d++
				j++
			}
			block := nop * d / n
			if index >= block {
				index -= block
				i = j
				continue
			}
			out = append(out, v)
			nop = block
			n--
			// Remove one occurrence of v, keeping the slice sorted.
			copy(remaining[i:], remaining[i+1:])
			remaining = remaining[:len(remaining)-1]
			break
		}
	}
	return out
}

// RankPermutation is the inverse of UnrankPermutation: it returns the
// 0-based position of perm among the distinct ascending-lexicographic
// permutations of its own multiset. perm need not be sorted. It panics if
// perm is empty. Like UnrankPermutation it uses the O(1) block-size
// identity, so ranking is O(k²).
func RankPermutation(perm []int64) int64 {
	if len(perm) == 0 {
		panic("combinat: RankPermutation of empty permutation")
	}
	remaining := make([]int64, len(perm))
	copy(remaining, perm)
	sortInt64(remaining)
	nop := NumPermutations(remaining)
	n := int64(len(remaining))
	var rank int64
	for _, v := range perm {
		i := 0
		for {
			x := remaining[i]
			d := int64(0)
			j := i
			for j < len(remaining) && remaining[j] == x {
				d++
				j++
			}
			block := nop * d / n
			if x != v {
				rank += block
				i = j
				continue
			}
			nop = block
			n--
			copy(remaining[i:], remaining[i+1:])
			remaining = remaining[:len(remaining)-1]
			break
		}
	}
	return rank
}

// sortInt64 is insertion sort; inputs have length ≤ k (tiny).
func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Pow returns base^exp for non-negative exp, panicking on overflow.
func Pow(base, exp int64) int64 {
	if exp < 0 {
		panic("combinat: negative exponent")
	}
	var r int64 = 1
	for i := int64(0); i < exp; i++ {
		hi, p := mulCheck(r, base)
		if hi {
			panic(fmt.Sprintf("combinat: Pow(%d,%d) overflows int64", base, exp))
		}
		r = p
	}
	return r
}

// GeometricSum returns Σ_{i=1..k} base^i, the number of non-empty sequences
// of length ≤ k over a base-sized alphabet — i.e. |Lk|.
func GeometricSum(base, k int64) int64 {
	var total int64
	for i := int64(1); i <= k; i++ {
		total += Pow(base, i)
	}
	return total
}
