package combinat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBinomialTable(t *testing.T) {
	cases := []struct{ n, k, want int64 }{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {6, 3, 20},
		{10, 5, 252}, {52, 5, 2598960}, {4, 5, 0}, {3, -1, 0}, {-1, 0, 0},
		{60, 30, 118264581564861424},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n, k := int64(n8%50), int64(k8%50)
		return Binomial(n, k) == Binomial(n, n-k) || k > n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := int64(1); n < 40; n++ {
		for k := int64(1); k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at (%d,%d)", n, k)
			}
		}
	}
}

func TestDistSmall(t *testing.T) {
	// m=2, b=3, sum=4 → (1,3),(3,1),(2,2) = 3 (worked in the paper's
	// Table 1/2 example scale).
	if got := Dist(4, 2, 3); got != 3 {
		t.Fatalf("Dist(4,2,3) = %d, want 3", got)
	}
	cases := []struct{ sum, m, b, want int64 }{
		{0, 0, 3, 1}, // empty sequence
		{1, 0, 3, 0}, // nothing sums to 1 with 0 parts
		{2, 2, 3, 1}, // (1,1)
		{3, 2, 3, 2}, // (1,2),(2,1)
		{6, 2, 3, 1}, // (3,3)
		{7, 2, 3, 0}, // above max
		{1, 2, 3, 0}, // below min
		{3, 3, 1, 1}, // (1,1,1)
		{4, 3, 1, 0}, // parts capped at 1
		{10, 3, 6, 27},
	}
	for _, c := range cases {
		if got := Dist(c.sum, c.m, c.b); got != c.want {
			t.Errorf("Dist(%d,%d,%d) = %d, want %d", c.sum, c.m, c.b, got, c.want)
		}
	}
}

func TestDistMatchesNaive(t *testing.T) {
	for b := int64(1); b <= 8; b++ {
		for m := int64(0); m <= 5; m++ {
			for sum := int64(0); sum <= m*b+2; sum++ {
				got, want := Dist(sum, m, b), DistNaive(sum, m, b)
				if got != want {
					t.Fatalf("Dist(%d,%d,%d) = %d, naive = %d", sum, m, b, got, want)
				}
			}
		}
	}
}

func TestDistTotalsToPow(t *testing.T) {
	// Σ_sum Dist(sum, m, b) must equal b^m: every sequence has some sum.
	for b := int64(1); b <= 8; b++ {
		for m := int64(1); m <= 6; m++ {
			var total int64
			for sum := m; sum <= m*b; sum++ {
				total += Dist(sum, m, b)
			}
			if want := Pow(b, m); total != want {
				t.Fatalf("Σ Dist(·,%d,%d) = %d, want %d", m, b, total, want)
			}
		}
	}
}

func collectPartitions(v, m, b int64) [][]int64 {
	var out [][]int64
	Partitions(v, m, b, func(p []int64) bool {
		cp := make([]int64, len(p))
		copy(cp, p)
		out = append(out, cp)
		return true
	})
	return out
}

func TestPartitionsPaperExample(t *testing.T) {
	// Stage-three order for v=4, m=2, b=3 must be [2,2] then [1,3] — this
	// pins Table 2's sum-based row (3/3 before 1/2, 2/1).
	got := collectPartitions(4, 2, 3)
	want := [][]int64{{2, 2}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Partitions(4,2,3) = %v, want %v", got, want)
	}
}

func TestPartitionsEnumeration(t *testing.T) {
	cases := []struct {
		v, m, b int64
		want    [][]int64
	}{
		{2, 2, 3, [][]int64{{1, 1}}},
		{3, 2, 3, [][]int64{{1, 2}}},
		{5, 2, 3, [][]int64{{2, 3}}},
		{6, 2, 3, [][]int64{{3, 3}}},
		{7, 2, 3, nil},
		{1, 2, 3, nil},
		{3, 3, 3, [][]int64{{1, 1, 1}}},
		// v=6, m=3, b=3: i(# of 3s)=0 → partitions of 6 into 3 parts ≤2:
		// {2,2,2}; i=1 → partitions of 3 into 2 parts ≤2: {1,2}+3; i=2 →
		// partitions of 0 into 1 part: none.
		{6, 3, 3, [][]int64{{2, 2, 2}, {1, 2, 3}}},
		// v=9, m=3, b=3: only all-3s.
		{9, 3, 3, [][]int64{{3, 3, 3}}},
	}
	for _, c := range cases {
		got := collectPartitions(c.v, c.m, c.b)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Partitions(%d,%d,%d) = %v, want %v", c.v, c.m, c.b, got, c.want)
		}
	}
}

func TestPartitionsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		b := int64(1 + rng.Intn(8))
		m := int64(1 + rng.Intn(5))
		v := m + int64(rng.Intn(int(m*b-m+1)))
		seen := map[string]bool{}
		var totalPerms int64
		Partitions(v, m, b, func(p []int64) bool {
			if int64(len(p)) != m {
				t.Fatalf("partition %v has %d parts, want %d", p, len(p), m)
			}
			var sum int64
			for i, part := range p {
				if part < 1 || part > b {
					t.Fatalf("partition %v has out-of-range part", p)
				}
				if i > 0 && p[i] < p[i-1] {
					t.Fatalf("partition %v not ascending", p)
				}
				sum += part
			}
			if sum != v {
				t.Fatalf("partition %v sums to %d, want %d", p, sum, v)
			}
			key := ""
			for _, part := range p {
				key += string(rune('a' + part))
			}
			if seen[key] {
				t.Fatalf("duplicate partition %v", p)
			}
			seen[key] = true
			totalPerms += NumPermutations(p)
			return true
		})
		// Partitions × their permutation counts must tile the whole
		// stage-two group: Σ nop == dist.
		if want := Dist(v, m, b); totalPerms != want {
			t.Fatalf("Σ nop over Partitions(%d,%d,%d) = %d, want Dist = %d",
				v, m, b, totalPerms, want)
		}
	}
}

func TestPartitionsEarlyStop(t *testing.T) {
	n := 0
	Partitions(6, 3, 3, func([]int64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop emitted %d partitions, want 1", n)
	}
}

func TestNumPermutations(t *testing.T) {
	cases := []struct {
		parts []int64
		want  int64
	}{
		{[]int64{1}, 1},
		{[]int64{1, 2}, 2},
		{[]int64{2, 2}, 1},
		{[]int64{1, 2, 3}, 6},
		{[]int64{1, 1, 2}, 3},
		{[]int64{1, 1, 2, 2}, 6},
		{[]int64{1, 1, 1, 1}, 1},
		{[]int64{1, 2, 3, 4, 5, 6}, 720},
	}
	for _, c := range cases {
		if got := NumPermutations(c.parts); got != c.want {
			t.Errorf("NumPermutations(%v) = %d, want %d", c.parts, got, c.want)
		}
	}
}

func TestUnrankPermutationFull(t *testing.T) {
	// All permutations of {1,1,2}: (1,1,2), (1,2,1), (2,1,1).
	want := [][]int64{{1, 1, 2}, {1, 2, 1}, {2, 1, 1}}
	for i, w := range want {
		got := UnrankPermutation(int64(i), []int64{1, 1, 2})
		if !reflect.DeepEqual(got, w) {
			t.Errorf("UnrankPermutation(%d) = %v, want %v", i, got, w)
		}
	}
	if UnrankPermutation(3, []int64{1, 1, 2}) != nil {
		t.Error("out-of-range index should return nil")
	}
	if UnrankPermutation(-1, []int64{1, 1, 2}) != nil {
		t.Error("negative index should return nil")
	}
}

func TestUnrankPermutationSingleton(t *testing.T) {
	got := UnrankPermutation(0, []int64{7})
	if !reflect.DeepEqual(got, []int64{7}) {
		t.Fatalf("UnrankPermutation(0,[7]) = %v", got)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	multisets := [][]int64{
		{1, 2}, {1, 1, 2}, {1, 2, 3}, {1, 1, 2, 2}, {1, 2, 3, 4},
		{1, 1, 1, 2, 3}, {2, 2, 2}, {1, 2, 2, 3, 3, 3},
	}
	for _, ms := range multisets {
		n := NumPermutations(ms)
		var prev []int64
		for i := int64(0); i < n; i++ {
			p := UnrankPermutation(i, ms)
			if p == nil {
				t.Fatalf("UnrankPermutation(%d, %v) = nil", i, ms)
			}
			if got := RankPermutation(p); got != i {
				t.Fatalf("RankPermutation(UnrankPermutation(%d,%v)) = %d", i, ms, got)
			}
			if prev != nil && !lexLess(prev, p) {
				t.Fatalf("permutations of %v not ascending: %v then %v", ms, prev, p)
			}
			prev = p
		}
	}
}

func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestRankPermutationEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RankPermutation(nil) should panic")
		}
	}()
	RankPermutation(nil)
}

func TestPow(t *testing.T) {
	cases := []struct{ b, e, want int64 }{
		{2, 0, 1}, {2, 10, 1024}, {6, 6, 46656}, {1, 100, 1}, {0, 3, 0}, {10, 18, 1000000000000000000},
	}
	for _, c := range cases {
		if got := Pow(c.b, c.e); got != c.want {
			t.Errorf("Pow(%d,%d) = %d, want %d", c.b, c.e, got, c.want)
		}
	}
}

func TestPowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow with negative exponent should panic")
		}
	}()
	Pow(2, -1)
}

func TestPowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow overflow should panic")
		}
	}()
	Pow(10, 19)
}

func TestGeometricSum(t *testing.T) {
	// |L6| over 6 labels: 6+36+216+1296+7776+46656 = 55986 (the paper's
	// stated 55996 is a typo; see DESIGN.md).
	if got := GeometricSum(6, 6); got != 55986 {
		t.Fatalf("GeometricSum(6,6) = %d, want 55986", got)
	}
	if got := GeometricSum(3, 2); got != 12 {
		t.Fatalf("GeometricSum(3,2) = %d, want 12", got)
	}
	if got := GeometricSum(5, 0); got != 0 {
		t.Fatalf("GeometricSum(5,0) = %d, want 0", got)
	}
}
