// Package sched is the shared scheduling layer of the reproduction
// (graph → bitset → sched → {paths, exec} → pathsel): a generic
// work-stealing task scheduler plus per-worker object pooling, hoisted out
// of the census engine so every parallel workload — the selectivity census
// (paths.NewCensusHybrid), parallel query execution (exec.ExecutePlan),
// and future bushy-plan builders — schedules through one engine instead of
// growing a private copy of the deque machinery.
//
// The model is a fixed set of workers, each owning a deque of tasks. A
// worker pushes and pops at its own deque's tail (LIFO, preserving DFS
// locality) and steals from other deques' heads (FIFO, so the shallowest —
// typically largest — tasks migrate first). Idle workers park on a
// condition variable instead of busy-polling; Spawn wakes them, and the
// worker that retires the last outstanding task broadcasts termination.
//
// Usage: build a Scheduler with New(workers, body), enqueue work with
// Spawn (before Drain to seed, or from inside a task body to split
// dynamically — spawn onto the body's own worker so the task is popped
// LIFO locally and stolen FIFO globally), and call Drain to run the
// worker goroutines until every task has completed. Drain is reusable:
// clients with barrier-structured work (the parallel executor runs one
// sharded composition per join step) seed and drain repeatedly on the
// same scheduler, keeping worker-indexed state alive across rounds.
//
// Drains are cancellable and panic-contained. Cancel sets an atomic stop
// flag that every worker checks before popping or stealing another task
// and that parked workers are woken to observe; the interrupted drain
// hands still-queued tasks to the Abandon hook (so clients can release
// task-owned resources such as pooled relations) and returns ErrStopped.
// A panic inside a task body is recovered on its worker, recorded as a
// *PanicError carrying the worker id, panic value, and stack, and
// converted into a cancellation of the sibling workers — one poisoned
// task aborts the drain with a typed error instead of crashing the
// process. Both signals are consumed by the drain that observes them:
// the scheduler resets and remains reusable.
//
// Determinism is the client's contract, and the scheduler is designed to
// make it cheap: task bodies that write only to task-owned state (disjoint
// slots indexed by task identity, as both current clients do) produce
// bit-identical results at every worker count and under every steal
// interleaving — FuzzSchedulerDeterminism pins this property.
//
// Pool[T] is the companion per-worker free list: each worker owns one, so
// Get/Put need no synchronization, and objects handed across workers
// inside stolen tasks simply retire into the thief's pool.
package sched
