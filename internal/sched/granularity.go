package sched

import "runtime"

// Granularity is an adaptive task-sizing policy for divisible work: given
// how many independent items a round has and how much weighted work they
// carry in total, it decides how many shards the round should split into —
// including the answer "one", which means the caller should skip the
// scheduler entirely and run sequentially. The floors exist because a
// spawn/steal handoff has a fixed cost: a round whose whole work is
// comparable to a few handoffs loses time to sharding (and feeds the
// steal path pure contention), which is exactly what profiles of short
// join segments show. Both floors must clear by a factor of two before
// any sharding happens, so a round is only split when at least two
// shards' worth of work exists on both axes.
type Granularity struct {
	// MinItems is the fewest items worth a shard of their own: a shard
	// never covers fewer (so shard count ≤ items/MinItems), and a round
	// with fewer than 2×MinItems items runs sequentially.
	MinItems int
	// MinWork is the least weighted work (in the caller's unit — the
	// executor uses relation pair counts) worth a shard: shard count is
	// additionally capped at work/MinWork, and a round carrying less
	// than 2×MinWork total runs sequentially no matter how many items
	// it has. Zero disables the work axis.
	MinWork int64
	// PerWorker oversubscribes the shard count (shards ≈
	// workers×PerWorker) so stolen shards can rebalance a skewed
	// item-weight distribution. Values < 1 are treated as 1.
	PerWorker int
}

// Shards returns the shard count for a round of items carrying the given
// total weighted work on the given worker count: 1 when the round is
// below either sequential floor (or workers ≤ 1), otherwise
// workers×PerWorker capped by both items/MinItems and work/MinWork.
func (g Granularity) Shards(items int, work int64, workers int) int {
	if workers <= 1 || items < 2*g.MinItems {
		return 1
	}
	if g.MinWork > 0 && work < 2*g.MinWork {
		return 1
	}
	per := g.PerWorker
	if per < 1 {
		per = 1
	}
	shards := workers * per
	if g.MinItems > 0 {
		if m := items / g.MinItems; shards > m {
			shards = m
		}
	}
	if g.MinWork > 0 {
		if m := int(work / g.MinWork); shards > m {
			shards = m
		}
	}
	if shards < 1 {
		return 1
	}
	return shards
}

// WorkerCount normalizes a worker-count knob: values ≤ 0 select
// GOMAXPROCS, re-read at call time — a process that adjusts GOMAXPROCS
// after start (container managers and tests do) gets the current value,
// not a stale snapshot. Every layer that exposes a Workers option
// (pathsel.Config, paths.CensusOptions, exec.Options) resolves it through
// this one rule.
func WorkerCount(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ClampWorkers bounds a resolved worker count by the most shards any
// round of the caller's workload can produce. A scheduler built with more
// workers than its rounds have tasks silently idles the surplus — they
// start, scan every deque, park, and wake on every broadcast without ever
// holding work — so callers that know their shard ceiling (the parallel
// executor caps shards at universe/MinItems) clamp before constructing
// the scheduler instead of paying for dead workers every drain.
func ClampWorkers(workers, maxTasks int) int {
	if maxTasks < 1 {
		maxTasks = 1
	}
	if workers > maxTasks {
		workers = maxTasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
