package sched

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// ErrStopped is the typed result of a drain that ended early because
// Cancel was called: the worker set exited promptly, every undrained
// task was discarded (through the Abandon hook when set), and the
// scheduler was reset for reuse. Compare with errors.Is.
var ErrStopped = errors.New("sched: drain cancelled")

// PanicError is the typed result of a drain in which a task body
// panicked: the panic was recovered on the worker, the remaining workers
// were cancelled, and the first recovered panic — value, worker id, and
// stack — is carried here instead of crashing the process. It unwraps to
// ErrStopped, so callers that only distinguish "completed" from
// "aborted" can errors.Is(err, ErrStopped) for both.
type PanicError struct {
	// Worker is the scheduler worker id whose task body panicked.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic with its origin worker.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task body panicked on worker %d: %v", e.Worker, e.Value)
}

// Unwrap makes every PanicError match ErrStopped.
func (e *PanicError) Unwrap() error { return ErrStopped }

// deque is a mutex-guarded work-stealing deque: the owner pushes and pops
// at the tail (LIFO), thieves take from the head (FIFO). The mutex is
// uncontended in the common case — owners touch their own deque far more
// often than thieves do — so a lock-free deque would buy little here.
type deque[T any] struct {
	mu    sync.Mutex
	tasks []T
	head  int
}

func (d *deque[T]) push(t T) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque[T]) pop() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.tasks) {
		var zero T
		return zero, false
	}
	t := d.tasks[len(d.tasks)-1]
	var zero T
	d.tasks[len(d.tasks)-1] = zero
	d.tasks = d.tasks[:len(d.tasks)-1]
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t, true
}

func (d *deque[T]) steal() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.tasks) {
		var zero T
		return zero, false
	}
	t := d.tasks[d.head]
	var zero T
	d.tasks[d.head] = zero
	d.head++
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t, true
}

// size returns the number of queued tasks, briefly taking the lock.
func (d *deque[T]) size() int {
	d.mu.Lock()
	n := len(d.tasks) - d.head
	d.mu.Unlock()
	return n
}

// Scheduler runs tasks of type T over a fixed worker set with per-worker
// deques and FIFO stealing. The task body is fixed at construction; per
// task it receives the executing worker's index, so clients key per-worker
// scratch state (pools, accumulators) by that index without
// synchronization.
type Scheduler[T any] struct {
	body   func(worker int, task T)
	deques []deque[T]

	// Abandon, when non-nil, receives every task a cancelled or panicked
	// drain discards without running, on the coordinator goroutine after
	// all workers have exited — the hook through which clients release
	// resources owned by in-flight tasks (the census returns pooled
	// relations). Set it before the first Spawn; it is never called by a
	// drain that completes normally.
	Abandon func(task T)

	// outstanding counts spawned-but-not-yet-completed tasks; Drain
	// terminates when it reaches zero.
	outstanding atomic.Int64

	// stop is the drain cancellation signal: set by Cancel (or by the
	// panic handler), checked by the owner pop/steal loop before every
	// task and by park before sleeping, and consumed — reset — by the
	// drain that observes it.
	stop atomic.Bool

	// failure holds the first recovered task-body panic of the current
	// drain; the drain returns it and resets the slot.
	failure atomic.Pointer[PanicError]

	// Idle workers park on cond instead of busy-polling; Spawn signals it
	// when sleeping > 0, and the worker that retires the last task
	// broadcasts so parked workers observe termination.
	mu       sync.Mutex
	cond     *sync.Cond
	sleeping atomic.Int64

	// Scheduling-activity counters, cumulative across drains: per-worker
	// executed-task counts, successful steals, and actual parks
	// (cond.Wait entries, not mere park attempts). Atomics so Counters
	// may snapshot them while a drain runs; each increment sits next to
	// a task execution or a deque lock, so the cost disappears into the
	// operation being counted.
	tasks  []atomic.Int64
	steals atomic.Int64
	parks  atomic.Int64
}

// Counters is a snapshot of a scheduler's cumulative scheduling activity
// — the observability the contention suspects are judged by: a
// steals/tasks ratio near zero means shards ran where they were spawned
// (good locality, or no imbalance to fix), a high parks count means
// workers kept running dry (shards too few or too skewed for the worker
// count).
type Counters struct {
	// Tasks is the number of tasks each worker executed, indexed by
	// worker id. Σ Tasks is every task that ran.
	Tasks []int64
	// Steals counts tasks obtained from another worker's deque.
	Steals int64
	// Parks counts workers actually blocking to await work.
	Parks int64
}

// TotalTasks returns Σ Tasks.
func (c Counters) TotalTasks() int64 {
	var n int64
	for _, t := range c.Tasks {
		n += t
	}
	return n
}

// Counters snapshots the scheduler's cumulative activity counters. Safe
// at any time; a snapshot taken mid-drain is internally consistent per
// counter, not across counters.
func (s *Scheduler[T]) Counters() Counters {
	c := Counters{
		Tasks:  make([]int64, len(s.tasks)),
		Steals: s.steals.Load(),
		Parks:  s.parks.Load(),
	}
	for i := range s.tasks {
		c.Tasks[i] = s.tasks[i].Load()
	}
	return c
}

// New returns a scheduler with WorkerCount(workers) workers that executes
// every task with body. No goroutines start until Drain.
func New[T any](workers int, body func(worker int, task T)) *Scheduler[T] {
	n := WorkerCount(workers)
	s := &Scheduler[T]{body: body, deques: make([]deque[T], n), tasks: make([]atomic.Int64, n)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers returns the fixed worker count.
func (s *Scheduler[T]) Workers() int { return len(s.deques) }

// Spawn enqueues a task on the given worker's deque (modulo the worker
// count) and wakes a parked worker if any. Call it before Drain to seed
// the initial task set, or from inside a running task body — normally with
// the body's own worker index, so the child is popped LIFO locally and
// stolen FIFO by idle workers.
func (s *Scheduler[T]) Spawn(worker int, task T) {
	s.outstanding.Add(1)
	s.deques[worker%len(s.deques)].push(task)
	if s.sleeping.Load() > 0 {
		s.mu.Lock()
		s.cond.Signal()
		s.mu.Unlock()
	}
}

// Cancel asks the current (or next) drain to stop: workers exit before
// popping or stealing another task, parked workers are woken to observe
// the signal, and the drain discards every task still queued (through
// Abandon when set) before returning ErrStopped. Tasks whose bodies are
// already running are not interrupted — cancellation is cooperative at
// task granularity; bodies that need finer abort latency must check
// their own flag (the execution kernels do, via bitset.CancelFlag).
// Cancel is safe from any goroutine, including task bodies, and is a
// no-op once the signal is already set.
func (s *Scheduler[T]) Cancel() {
	if s.stop.Swap(true) {
		return
	}
	s.wakeAll()
}

// Stopping reports whether the cancellation signal is currently set.
// Task bodies may poll it to cut long-running work short.
func (s *Scheduler[T]) Stopping() bool { return s.stop.Load() }

// Drain runs one worker goroutine per deque until every spawned task —
// including tasks spawned from inside task bodies — has completed, then
// returns nil. The full worker set must start because bodies may Spawn:
// a single seed can fan out to fill every worker (the census regularly
// seeds fewer tasks than workers and splits deeper in the trie). For
// rounds whose task set is fully seeded up front, DrainStatic is
// cheaper. Drain is a no-op when nothing is outstanding, and reusable:
// seed and drain any number of rounds on the same scheduler.
//
// A drain ends early on two signals, both of which it consumes (the
// scheduler is reset and reusable afterwards): Cancel makes it return
// ErrStopped, and a panicking task body makes it return the recovered
// *PanicError — the panic is caught on the worker, the sibling workers
// are cancelled, and the process survives. Either way, every task still
// queued when the workers exit is handed to the Abandon hook and
// dropped, and no worker goroutine outlives the call.
func (s *Scheduler[T]) Drain() error { return s.drain(len(s.deques)) }

// DrainStatic is Drain for rounds whose tasks are all Spawned before the
// call and whose bodies never Spawn: it starts only min(workers,
// outstanding) goroutines, skipping the spawn and park/broadcast churn
// of goroutines that could never find work. Started goroutines use
// worker ids 0..n−1, so worker-indexed client state still applies;
// tasks seeded onto higher deques are reached by stealing. With
// dynamically-spawning bodies it would serialize the surplus fan-out —
// use Drain there. Cancellation and panic containment behave exactly as
// in Drain.
func (s *Scheduler[T]) DrainStatic() error {
	n := len(s.deques)
	if o := s.outstanding.Load(); o < int64(n) {
		n = int(o)
	}
	return s.drain(n)
}

func (s *Scheduler[T]) drain(workers int) error {
	if s.outstanding.Load() == 0 && !s.stop.Load() {
		return nil
	}
	if !s.stop.Load() {
		var wg sync.WaitGroup
		for id := 0; id < workers; id++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.run(id)
			}()
		}
		wg.Wait()
	}
	if !s.stop.Load() {
		return nil
	}
	// The drain ended on the stop signal (Cancel, a recovered panic, or a
	// Cancel that arrived before this drain started). Discard what never
	// ran, then reset the signal state so the scheduler is reusable.
	for i := range s.deques {
		for {
			t, ok := s.deques[i].steal()
			if !ok {
				break
			}
			s.outstanding.Add(-1)
			if s.Abandon != nil {
				s.Abandon(t)
			}
		}
	}
	s.stop.Store(false)
	if pe := s.failure.Swap(nil); pe != nil {
		return pe
	}
	return ErrStopped
}

// run is the worker loop: drain the local deque LIFO, steal FIFO from
// others when empty, park when no work is visible, exit when no task is
// outstanding anywhere or the stop signal is set.
func (s *Scheduler[T]) run(id int) {
	for {
		if s.stop.Load() {
			return
		}
		t, ok := s.deques[id].pop()
		if !ok {
			if t, ok = s.steal(id); ok {
				s.steals.Add(1)
			}
		}
		if !ok {
			if s.outstanding.Load() == 0 {
				s.wakeAll()
				return
			}
			if !s.park(id) {
				s.wakeAll()
				return
			}
			continue
		}
		s.exec(id, t)
		if s.outstanding.Add(-1) == 0 {
			s.wakeAll()
		}
	}
}

// exec runs one task body with panic containment: a panic is recovered
// here on the worker, recorded as the drain's typed failure (first one
// wins), and converted into a cancellation so sibling workers stop
// instead of the process dying. The faultinject site lets chaos tests
// force this path deterministically.
func (s *Scheduler[T]) exec(id int, t T) {
	defer func() {
		if r := recover(); r != nil {
			s.failure.CompareAndSwap(nil, &PanicError{Worker: id, Value: r, Stack: debug.Stack()})
			s.Cancel()
		}
	}()
	faultinject.Fire("sched.task")
	s.tasks[id].Add(1)
	s.body(id, t)
}

// park blocks until new work may exist. It returns false when the drain is
// complete or cancelled. Announcing sleeping before the final re-scan
// closes the race with Spawn: a spawner that missed the sleeping count
// pushed before our announcement, so the re-scan (which acquires the same
// deque locks) observes its task. The same ordering closes the race with
// Cancel: a canceller that missed the sleeping count set stop before our
// announcement, so the pre-wait stop check observes it.
func (s *Scheduler[T]) park(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sleeping.Add(1)
	defer s.sleeping.Add(-1)
	if s.stop.Load() {
		return false
	}
	if s.hasWork(id) {
		return true // let the caller re-scan and actually steal it
	}
	if s.outstanding.Load() == 0 {
		return false
	}
	s.parks.Add(1)
	s.cond.Wait()
	return true
}

// hasWork reports whether any deque — including the caller's own, which
// another worker may Spawn onto — is non-empty, without consuming
// anything.
func (s *Scheduler[T]) hasWork(id int) bool {
	for i := 0; i < len(s.deques); i++ {
		if s.deques[(id+i)%len(s.deques)].size() > 0 {
			return true
		}
	}
	return false
}

func (s *Scheduler[T]) wakeAll() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// steal scans the other deques round-robin from the caller's position and
// takes the first available head task.
func (s *Scheduler[T]) steal(id int) (T, bool) {
	for i := 1; i < len(s.deques); i++ {
		if t, ok := s.deques[(id+i)%len(s.deques)].steal(); ok {
			return t, ok
		}
	}
	var zero T
	return zero, false
}

// Pool is a per-worker free list. Each worker owns one, so Get and Put
// need no synchronization; objects that cross workers inside stolen tasks
// retire into the thief's pool. The zero Pool with New set is ready to
// use.
type Pool[T any] struct {
	// New constructs a fresh object when the free list is empty.
	New  func() T
	free []T
}

// Get returns a pooled object, constructing one with New if none is free.
func (p *Pool[T]) Get() T {
	if k := len(p.free); k > 0 {
		t := p.free[k-1]
		var zero T
		p.free[k-1] = zero
		p.free = p.free[:k-1]
		return t
	}
	return p.New()
}

// Put retires an object into the free list for reuse.
func (p *Pool[T]) Put(t T) { p.free = append(p.free, t) }
