package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerCount normalizes a worker-count knob: values ≤ 0 select
// GOMAXPROCS. Every layer that exposes a Workers option (pathsel.Config,
// paths.CensusOptions, exec.Options) resolves it through this one rule.
func WorkerCount(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// deque is a mutex-guarded work-stealing deque: the owner pushes and pops
// at the tail (LIFO), thieves take from the head (FIFO). The mutex is
// uncontended in the common case — owners touch their own deque far more
// often than thieves do — so a lock-free deque would buy little here.
type deque[T any] struct {
	mu    sync.Mutex
	tasks []T
	head  int
}

func (d *deque[T]) push(t T) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque[T]) pop() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.tasks) {
		var zero T
		return zero, false
	}
	t := d.tasks[len(d.tasks)-1]
	var zero T
	d.tasks[len(d.tasks)-1] = zero
	d.tasks = d.tasks[:len(d.tasks)-1]
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t, true
}

func (d *deque[T]) steal() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.tasks) {
		var zero T
		return zero, false
	}
	t := d.tasks[d.head]
	var zero T
	d.tasks[d.head] = zero
	d.head++
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t, true
}

// size returns the number of queued tasks, briefly taking the lock.
func (d *deque[T]) size() int {
	d.mu.Lock()
	n := len(d.tasks) - d.head
	d.mu.Unlock()
	return n
}

// Scheduler runs tasks of type T over a fixed worker set with per-worker
// deques and FIFO stealing. The task body is fixed at construction; per
// task it receives the executing worker's index, so clients key per-worker
// scratch state (pools, accumulators) by that index without
// synchronization.
type Scheduler[T any] struct {
	body   func(worker int, task T)
	deques []deque[T]

	// outstanding counts spawned-but-not-yet-completed tasks; Drain
	// terminates when it reaches zero.
	outstanding atomic.Int64

	// Idle workers park on cond instead of busy-polling; Spawn signals it
	// when sleeping > 0, and the worker that retires the last task
	// broadcasts so parked workers observe termination.
	mu       sync.Mutex
	cond     *sync.Cond
	sleeping atomic.Int64
}

// New returns a scheduler with WorkerCount(workers) workers that executes
// every task with body. No goroutines start until Drain.
func New[T any](workers int, body func(worker int, task T)) *Scheduler[T] {
	s := &Scheduler[T]{body: body, deques: make([]deque[T], WorkerCount(workers))}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers returns the fixed worker count.
func (s *Scheduler[T]) Workers() int { return len(s.deques) }

// Spawn enqueues a task on the given worker's deque (modulo the worker
// count) and wakes a parked worker if any. Call it before Drain to seed
// the initial task set, or from inside a running task body — normally with
// the body's own worker index, so the child is popped LIFO locally and
// stolen FIFO by idle workers.
func (s *Scheduler[T]) Spawn(worker int, task T) {
	s.outstanding.Add(1)
	s.deques[worker%len(s.deques)].push(task)
	if s.sleeping.Load() > 0 {
		s.mu.Lock()
		s.cond.Signal()
		s.mu.Unlock()
	}
}

// Drain runs one worker goroutine per deque until every spawned task —
// including tasks spawned from inside task bodies — has completed, then
// returns. The full worker set must start because bodies may Spawn: a
// single seed can fan out to fill every worker (the census regularly
// seeds fewer tasks than workers and splits deeper in the trie). For
// rounds whose task set is fully seeded up front, DrainStatic is
// cheaper. Drain is a no-op when nothing is outstanding, and reusable:
// seed and drain any number of rounds on the same scheduler.
func (s *Scheduler[T]) Drain() { s.drain(len(s.deques)) }

// DrainStatic is Drain for rounds whose tasks are all Spawned before the
// call and whose bodies never Spawn: it starts only min(workers,
// outstanding) goroutines, skipping the spawn and park/broadcast churn
// of goroutines that could never find work. Started goroutines use
// worker ids 0..n−1, so worker-indexed client state still applies;
// tasks seeded onto higher deques are reached by stealing. With
// dynamically-spawning bodies it would serialize the surplus fan-out —
// use Drain there.
func (s *Scheduler[T]) DrainStatic() {
	n := len(s.deques)
	if o := s.outstanding.Load(); o < int64(n) {
		n = int(o)
	}
	s.drain(n)
}

func (s *Scheduler[T]) drain(workers int) {
	if s.outstanding.Load() == 0 {
		return
	}
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.run(id)
		}()
	}
	wg.Wait()
}

// run is the worker loop: drain the local deque LIFO, steal FIFO from
// others when empty, park when no work is visible, exit when no task is
// outstanding anywhere.
func (s *Scheduler[T]) run(id int) {
	for {
		t, ok := s.deques[id].pop()
		if !ok {
			t, ok = s.steal(id)
		}
		if !ok {
			if s.outstanding.Load() == 0 {
				s.wakeAll()
				return
			}
			if !s.park(id) {
				s.wakeAll()
				return
			}
			continue
		}
		s.body(id, t)
		if s.outstanding.Add(-1) == 0 {
			s.wakeAll()
		}
	}
}

// park blocks until new work may exist. It returns false when the drain is
// complete. Announcing sleeping before the final re-scan closes the race
// with Spawn: a spawner that missed the sleeping count pushed before our
// announcement, so the re-scan (which acquires the same deque locks)
// observes its task.
func (s *Scheduler[T]) park(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sleeping.Add(1)
	defer s.sleeping.Add(-1)
	if s.hasWork(id) {
		return true // let the caller re-scan and actually steal it
	}
	if s.outstanding.Load() == 0 {
		return false
	}
	s.cond.Wait()
	return true
}

// hasWork reports whether any deque — including the caller's own, which
// another worker may Spawn onto — is non-empty, without consuming
// anything.
func (s *Scheduler[T]) hasWork(id int) bool {
	for i := 0; i < len(s.deques); i++ {
		if s.deques[(id+i)%len(s.deques)].size() > 0 {
			return true
		}
	}
	return false
}

func (s *Scheduler[T]) wakeAll() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// steal scans the other deques round-robin from the caller's position and
// takes the first available head task.
func (s *Scheduler[T]) steal(id int) (T, bool) {
	for i := 1; i < len(s.deques); i++ {
		if t, ok := s.deques[(id+i)%len(s.deques)].steal(); ok {
			return t, ok
		}
	}
	var zero T
	return zero, false
}

// Pool is a per-worker free list. Each worker owns one, so Get and Put
// need no synchronization; objects that cross workers inside stolen tasks
// retire into the thief's pool. The zero Pool with New set is ready to
// use.
type Pool[T any] struct {
	// New constructs a fresh object when the free list is empty.
	New  func() T
	free []T
}

// Get returns a pooled object, constructing one with New if none is free.
func (p *Pool[T]) Get() T {
	if k := len(p.free); k > 0 {
		t := p.free[k-1]
		var zero T
		p.free[k-1] = zero
		p.free = p.free[:k-1]
		return t
	}
	return p.New()
}

// Put retires an object into the free list for reuse.
func (p *Pool[T]) Put(t T) { p.free = append(p.free, t) }
