package sched

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
)

// TestSchedulerRunsEveryTask seeds tasks round-robin and verifies each
// executes exactly once, across worker counts (including more workers than
// tasks, so some park immediately and must still terminate).
func TestSchedulerRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 32} {
		const n = 100
		var ran [n]atomic.Int32
		s := New(workers, func(_ int, task int) { ran[task].Add(1) })
		for i := 0; i < n; i++ {
			s.Spawn(i, i)
		}
		s.Drain()
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestSchedulerRecursiveSpawn builds a task tree entirely from inside task
// bodies — the census's dynamic-split pattern — and verifies every node
// runs exactly once.
func TestSchedulerRecursiveSpawn(t *testing.T) {
	const depth, fanout = 6, 3
	total := 0
	for d, width := 0, 1; d <= depth; d, width = d+1, width*fanout {
		total += width
	}
	var ran atomic.Int64
	type node struct{ depth int }
	var s *Scheduler[node]
	s = New(4, func(w int, nd node) {
		ran.Add(1)
		if nd.depth < depth {
			for c := 0; c < fanout; c++ {
				s.Spawn(w, node{depth: nd.depth + 1})
			}
		}
	})
	s.Spawn(0, node{})
	s.Drain()
	if got := ran.Load(); got != int64(total) {
		t.Fatalf("ran %d tasks, want %d", got, total)
	}
}

// TestSchedulerCrossWorkerSpawn exercises the park/wake path with Spawns
// targeted at other workers' deques: a long chain where each task spawns
// its successor onto the next worker keeps at most one task live, so most
// workers sit parked and every handoff must wake someone. A lost wakeup
// (e.g. a parked worker whose own deque received the task and whose
// re-scan skipped it) shows up as a test-binary timeout.
func TestSchedulerCrossWorkerSpawn(t *testing.T) {
	const links = 500
	var ran atomic.Int64
	var s *Scheduler[int]
	s = New(4, func(w int, remaining int) {
		ran.Add(1)
		if remaining > 0 {
			s.Spawn(w+1, remaining-1) // deliberately another worker's deque
		}
	})
	s.Spawn(0, links)
	s.Drain()
	if got := ran.Load(); got != links+1 {
		t.Fatalf("ran %d chain links, want %d", got, links+1)
	}
}

// TestSchedulerDrainStatic pins the static drain's contract: a fully
// pre-seeded round completes every task even when outstanding < workers
// (only that many goroutines start) and when outstanding > workers.
func TestSchedulerDrainStatic(t *testing.T) {
	for _, n := range []int{1, 3, 40} {
		var ran atomic.Int64
		s := New(8, func(_ int, _ int) { ran.Add(1) })
		for i := 0; i < n; i++ {
			s.Spawn(i, i)
		}
		s.DrainStatic()
		if got := ran.Load(); got != int64(n) {
			t.Fatalf("n=%d: ran %d tasks", n, got)
		}
	}
}

// TestSchedulerDrainReuse runs several seed/drain rounds on one scheduler
// — the parallel executor's per-join-step barrier pattern.
func TestSchedulerDrainReuse(t *testing.T) {
	var sum atomic.Int64
	s := New(3, func(_ int, v int64) { sum.Add(v) })
	want := int64(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			v := int64(round*100 + i)
			want += v
			s.Spawn(i, v)
		}
		s.Drain()
	}
	if got := sum.Load(); got != want {
		t.Fatalf("sum %d after 5 rounds, want %d", got, want)
	}
	s.Drain() // nothing outstanding: must return immediately
}

// TestWorkerCount pins the ≤0 → GOMAXPROCS normalization.
func TestWorkerCount(t *testing.T) {
	if got := WorkerCount(5); got != 5 {
		t.Fatalf("WorkerCount(5) = %d", got)
	}
	if got := WorkerCount(0); got < 1 {
		t.Fatalf("WorkerCount(0) = %d, want ≥ 1", got)
	}
	if got := WorkerCount(-3); got != WorkerCount(0) {
		t.Fatalf("WorkerCount(-3) = %d != WorkerCount(0) = %d", got, WorkerCount(0))
	}
}

// TestWorkerCountTracksGOMAXPROCS pins the call-time re-read: a process
// that adjusts GOMAXPROCS after start (container managers and tests do)
// must see the current value, not a boot-time snapshot.
func TestWorkerCountTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(3)
	if got := WorkerCount(0); got != 3 {
		t.Fatalf("WorkerCount(0) = %d after GOMAXPROCS(3)", got)
	}
	runtime.GOMAXPROCS(5)
	if got := WorkerCount(-1); got != 5 {
		t.Fatalf("WorkerCount(-1) = %d after GOMAXPROCS(5)", got)
	}
}

// TestClampWorkers pins the idle-worker guard: a worker count is bounded
// by the workload's task ceiling and never drops below one.
func TestClampWorkers(t *testing.T) {
	cases := []struct{ workers, maxTasks, want int }{
		{8, 4, 4},  // more workers than tasks: clamp
		{4, 8, 4},  // enough tasks: unchanged
		{4, 0, 1},  // no tasks at all: one worker, never zero
		{4, -3, 1}, // negative ceiling behaves like none
		{0, 5, 1},  // degenerate worker count floors at one
		{16, 16, 16},
	}
	for _, c := range cases {
		if got := ClampWorkers(c.workers, c.maxTasks); got != c.want {
			t.Fatalf("ClampWorkers(%d, %d) = %d, want %d", c.workers, c.maxTasks, got, c.want)
		}
	}
}

// TestGranularityShards pins the adaptive floor policy: sequential below
// twice either floor, otherwise workers×PerWorker capped by both the
// item and work ceilings.
func TestGranularityShards(t *testing.T) {
	g := Granularity{MinItems: 32, MinWork: 2048, PerWorker: 4}
	cases := []struct {
		items   int
		work    int64
		workers int
		want    int
	}{
		{1000, 100000, 1, 1},  // one worker: always sequential
		{63, 100000, 4, 1},    // under 2×MinItems
		{1000, 4095, 4, 1},    // under 2×MinWork
		{1000, 100000, 4, 16}, // wide open: workers×PerWorker
		{128, 100000, 4, 4},   // item-capped: 128/32
		{1000, 8192, 4, 4},    // work-capped: 8192/2048
		{64, 4096, 16, 2},     // both floors just cleared
	}
	for _, c := range cases {
		if got := g.Shards(c.items, c.work, c.workers); got != c.want {
			t.Fatalf("Shards(%d, %d, %d) = %d, want %d", c.items, c.work, c.workers, got, c.want)
		}
	}
	// Zero MinWork disables the work axis entirely.
	noWork := Granularity{MinItems: 32, PerWorker: 4}
	if got := noWork.Shards(1000, 0, 4); got != 16 {
		t.Fatalf("work axis not disabled: %d", got)
	}
	// PerWorker < 1 is treated as 1.
	flat := Granularity{MinItems: 1, PerWorker: 0}
	if got := flat.Shards(100, 0, 4); got != 4 {
		t.Fatalf("PerWorker floor: %d", got)
	}
}

// TestSchedulerCounters verifies the observability counters: every task
// is attributed to the worker that ran it, the total matches the spawn
// count, and a multi-worker drain with deliberately unbalanced spawning
// records steals.
func TestSchedulerCounters(t *testing.T) {
	var ran atomic.Int64
	s := New[int](4, func(worker, task int) { ran.Add(1) })
	const tasks = 400
	for i := 0; i < tasks; i++ {
		s.Spawn(0, i) // all on worker 0: the others must steal to help
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.TotalTasks() != tasks || ran.Load() != tasks {
		t.Fatalf("counted %d tasks (ran %d), want %d", c.TotalTasks(), ran.Load(), tasks)
	}
	if len(c.Tasks) != 4 {
		t.Fatalf("per-worker breakdown has %d slots, want 4", len(c.Tasks))
	}
	var sum int64
	for _, v := range c.Tasks {
		sum += v
	}
	if sum != c.TotalTasks() {
		t.Fatalf("per-worker sum %d != total %d", sum, c.TotalTasks())
	}
	// Counters accumulate across rounds on a reused scheduler.
	s.Spawn(1, 1)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := s.Counters().TotalTasks(); got != tasks+1 {
		t.Fatalf("counters reset between rounds: %d", got)
	}
}

// TestPool verifies the free-list round trip and that Get falls back to
// New when empty.
func TestPool(t *testing.T) {
	made := 0
	p := Pool[*int]{New: func() *int { made++; v := new(int); return v }}
	a := p.Get()
	b := p.Get()
	if made != 2 {
		t.Fatalf("made %d objects, want 2", made)
	}
	p.Put(a)
	p.Put(b)
	if c := p.Get(); c != b {
		t.Fatal("Get did not return the most recently Put object")
	}
	if d := p.Get(); d != a {
		t.Fatal("Get did not drain the free list LIFO")
	}
	if made != 2 {
		t.Fatalf("made %d objects after reuse, want 2", made)
	}
}

// splitmix64 is a deterministic hash for the determinism harness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// determinismRun executes a seed-derived task tree at the given worker
// count: each task owns slot idx of the result slice and spawns a
// pseudorandom (but seed-deterministic) number of children with
// pre-assigned slots. The returned slice must be identical at every worker
// count and under every steal interleaving, because each slot is written
// by exactly one task.
func determinismRun(seed uint64, workers, tasks int) []uint64 {
	out := make([]uint64, tasks)
	next := atomic.Int64{}
	type job struct{ idx int }
	var s *Scheduler[job]
	s = New(workers, func(w int, j job) {
		out[j.idx] = splitmix64(seed ^ uint64(j.idx))
		children := int(out[j.idx] % 4)
		for c := 0; c < children; c++ {
			idx := int(next.Add(1)) - 1
			if idx >= tasks {
				return
			}
			s.Spawn(w, job{idx: idx})
		}
	})
	// Seed the roots: the first min(4, tasks) slots.
	roots := 4
	if tasks < roots {
		roots = tasks
	}
	next.Store(int64(roots))
	for i := 0; i < roots; i++ {
		s.Spawn(i, job{idx: i})
	}
	s.Drain()
	// The set of executed slots is the least fixed point of the claim
	// process (child counts depend only on the slot index), so it is the
	// same at every worker count; unclaimed tail slots stay zero
	// everywhere. Each executed slot's value depends only on (seed, idx).
	return out
}

// FuzzSchedulerDeterminism pins the scheduler's determinism contract: a
// task graph whose bodies write only task-owned slots produces
// bit-identical output at every worker count, regardless of how stealing
// interleaves. This is the property both clients (census, parallel
// executor) rely on for bit-identical parallel results.
func FuzzSchedulerDeterminism(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint16(50))
	f.Add(uint64(42), uint8(7), uint16(300))
	f.Add(uint64(0xdead), uint8(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed uint64, workers uint8, tasks uint16) {
		w := int(workers%16) + 1
		n := int(tasks%512) + 1
		ref := determinismRun(seed, 1, n)
		got := determinismRun(seed, w, n)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("seed=%d workers=%d tasks=%d: slot %d = %d, sequential ref %d",
					seed, w, n, i, got[i], ref[i])
			}
		}
		// And again at the same worker count: steal interleavings differ,
		// results must not.
		again := determinismRun(seed, w, n)
		for i := range ref {
			if again[i] != ref[i] {
				t.Fatalf("seed=%d workers=%d tasks=%d: rerun slot %d diverged", seed, w, n, i)
			}
		}
	})
}

// TestSchedulerCancelMidDrain cancels from inside a task body and checks
// the full abort contract: Drain returns ErrStopped, every seeded task
// either ran or was handed to Abandon, and the scheduler is reusable for
// a clean follow-up round.
func TestSchedulerCancelMidDrain(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 200
		var ran, abandoned atomic.Int64
		var s *Scheduler[int]
		s = New(workers, func(_ int, task int) {
			if ran.Add(1) == 10 {
				s.Cancel()
			}
		})
		s.Abandon = func(int) { abandoned.Add(1) }
		for i := 0; i < n; i++ {
			s.Spawn(i, i)
		}
		err := s.Drain()
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("workers=%d: Drain = %v, want ErrStopped", workers, err)
		}
		if got := ran.Load() + abandoned.Load(); got != n {
			t.Fatalf("workers=%d: ran %d + abandoned %d = %d, want %d",
				workers, ran.Load(), abandoned.Load(), got, n)
		}
		if ran.Load() >= n {
			t.Fatalf("workers=%d: cancellation did not abandon anything", workers)
		}
		// The signal must be consumed: a fresh round runs clean.
		ran.Store(0)
		abandoned.Store(0)
		s2ran := 0
		s.Abandon = func(int) { t.Error("Abandon called on a clean round") }
		s.body = func(_ int, _ int) { s2ran++ }
		if workers == 1 {
			for i := 0; i < 5; i++ {
				s.Spawn(i, i)
			}
			if err := s.Drain(); err != nil {
				t.Fatalf("post-cancel Drain = %v, want nil", err)
			}
			if s2ran != 5 {
				t.Fatalf("post-cancel round ran %d tasks, want 5", s2ran)
			}
		}
	}
}

// TestSchedulerCancelBeforeDrain pins that a Cancel issued with no drain
// running makes the next drain abandon everything and return ErrStopped.
func TestSchedulerCancelBeforeDrain(t *testing.T) {
	var ran, abandoned atomic.Int64
	s := New(4, func(_ int, _ int) { ran.Add(1) })
	s.Abandon = func(int) { abandoned.Add(1) }
	for i := 0; i < 20; i++ {
		s.Spawn(i, i)
	}
	s.Cancel()
	if !s.Stopping() {
		t.Fatal("Stopping() = false after Cancel")
	}
	if err := s.Drain(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Drain = %v, want ErrStopped", err)
	}
	if ran.Load() != 0 || abandoned.Load() != 20 {
		t.Fatalf("ran=%d abandoned=%d, want 0/20", ran.Load(), abandoned.Load())
	}
	if s.Stopping() {
		t.Fatal("Stopping() = true after the drain consumed the signal")
	}
}

// TestSchedulerPanicContainment injects a panicking task body and checks
// the containment contract: the process survives, Drain returns a
// *PanicError that unwraps to ErrStopped and carries the worker id,
// panic value, and a stack trace, sibling tasks are abandoned rather
// than run, and the scheduler is reusable.
func TestSchedulerPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 100
		var ran, abandoned atomic.Int64
		s := New(workers, func(_ int, task int) {
			if task == 7 {
				panic("poisoned task")
			}
			ran.Add(1)
		})
		s.Abandon = func(int) { abandoned.Add(1) }
		for i := 0; i < n; i++ {
			s.Spawn(i, i)
		}
		err := s.Drain()
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: Drain = %v, want *PanicError", workers, err)
		}
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("workers=%d: PanicError does not unwrap to ErrStopped", workers)
		}
		if pe.Value != "poisoned task" {
			t.Fatalf("workers=%d: panic value %v", workers, pe.Value)
		}
		if pe.Worker < 0 || pe.Worker >= workers {
			t.Fatalf("workers=%d: panic attributed to worker %d", workers, pe.Worker)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError carries no stack", workers)
		}
		if got := ran.Load() + abandoned.Load(); got != n-1 {
			t.Fatalf("workers=%d: ran %d + abandoned %d = %d, want %d",
				workers, ran.Load(), abandoned.Load(), got, n-1)
		}
		// Reusable after containment.
		var again atomic.Int64
		s.body = func(_ int, _ int) { again.Add(1) }
		s.Abandon = nil
		for i := 0; i < 10; i++ {
			s.Spawn(i, i)
		}
		if err := s.Drain(); err != nil {
			t.Fatalf("workers=%d: post-panic Drain = %v, want nil", workers, err)
		}
		if again.Load() != 10 {
			t.Fatalf("workers=%d: post-panic round ran %d, want 10", workers, again.Load())
		}
	}
}

// TestSchedulerInjectedPanic drives the containment path through the
// faultinject site instead of a panicking body — the chaos-test shape:
// production task bodies, injected failure.
func TestSchedulerInjectedPanic(t *testing.T) {
	inj := faultinject.NewInjector(faultinject.Rule{
		Site: "sched.task", Skip: 5, Count: 1, Action: faultinject.ActPanic,
	})
	faultinject.Install(inj)
	t.Cleanup(faultinject.Uninstall)
	var ran atomic.Int64
	s := New(2, func(_ int, _ int) { ran.Add(1) })
	for i := 0; i < 50; i++ {
		s.Spawn(i, i)
	}
	err := s.Drain()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Drain = %v, want *PanicError from injected panic", err)
	}
	if inj.Triggered("sched.task") != 1 {
		t.Fatalf("injector triggered %d times, want 1", inj.Triggered("sched.task"))
	}
	if ran.Load() >= 50 {
		t.Fatal("injected panic did not abort the drain")
	}
}

// TestSchedulerDrainStaticCancel pins that the static drain honors the
// same cancellation contract as Drain.
func TestSchedulerDrainStaticCancel(t *testing.T) {
	var ran, abandoned atomic.Int64
	var s *Scheduler[int]
	s = New(4, func(_ int, _ int) {
		if ran.Add(1) == 3 {
			s.Cancel()
		}
	})
	s.Abandon = func(int) { abandoned.Add(1) }
	for i := 0; i < 100; i++ {
		s.Spawn(i, i)
	}
	if err := s.DrainStatic(); !errors.Is(err, ErrStopped) {
		t.Fatalf("DrainStatic = %v, want ErrStopped", err)
	}
	if got := ran.Load() + abandoned.Load(); got != 100 {
		t.Fatalf("ran %d + abandoned %d ≠ 100", ran.Load(), abandoned.Load())
	}
}
