package serve

// Chaos suite for the serving layer: fault injection at the engine's
// execution and caching sites while the server is under concurrent
// load. The containment contract being pinned: the process never
// crashes, every failed request surfaces as a typed error response, the
// accounting stays consistent, and once the faults stop the same server
// keeps answering correctly — no poisoned cache, no leaked goroutines.

import (
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/pathsel"
)

// TestServeChaosInjectedPanics drives concurrent load while exec.step
// visits panic periodically. Contained panics must answer 500 with the
// execution_failed code — never kill the server — and the server must
// answer correctly once the injector is gone.
func TestServeChaosInjectedPanics(t *testing.T) {
	g, srv, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	trace := buildTrace(t, g.Labels(), 150, 0, 13)

	inj := faultinject.NewInjector(
		// Panic on every 7th step visit, indefinitely.
		faultinject.Rule{Site: "exec.step", Skip: 3, Count: 0, Action: faultinject.ActPanic},
	)
	// Arm the panic rule modulo-style by reinstalling a fresh injector
	// being unnecessary: Count 0 with Skip 3 panics every visit after the
	// third, so the early queries succeed and later ones fail — both
	// outcomes appear under load.
	faultinject.Install(inj)
	t.Cleanup(faultinject.Uninstall)

	rep, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors — the server dropped connections under injected panics", rep.TransportErrors)
	}
	sum := rep.OK + rep.Degraded + rep.BadRequest + rep.Rejected + rep.Overload + rep.Timeout + rep.Failed
	if sum != int64(rep.Queries) {
		t.Fatalf("outcomes sum to %d, want %d: %+v", sum, rep.Queries, rep)
	}
	if rep.Failed == 0 {
		t.Fatalf("no 500s despite an armed always-panic rule (triggered %d times): %+v",
			inj.Triggered("exec.step"), rep)
	}
	// Typed-body check: with the rule still armed, a cache-missing query
	// must answer a JSON execution_failed error, not a bare 500.
	var er ErrorResponse
	if st := getJSON(t, ts.URL+"/query?q="+g.Labels()[2]+"/"+g.Labels()[2]+"/"+g.Labels()[2], &er); st != http.StatusInternalServerError {
		t.Fatalf("status %d under armed panic rule, want 500", st)
	} else if er.Code != CodeExecutionFailed {
		t.Fatalf("error code %q, want %q", er.Code, CodeExecutionFailed)
	}

	// Faults stop; the same server must answer every query correctly.
	faultinject.Uninstall()
	for _, q := range []string{"a/b", "b/c/a", "c/a"} {
		want, err := g.TrueSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		var qr QueryResponse
		if st := getJSON(t, ts.URL+"/query?q="+q, &qr); st != http.StatusOK {
			t.Fatalf("post-chaos query %q status %d, want 200", q, st)
		}
		if qr.Result != want {
			t.Fatalf("post-chaos query %q result %d, want %d — chaos corrupted state", q, qr.Result, want)
		}
	}
	if c := srv.Counters(); c.InFlight != 0 {
		t.Fatalf("in-flight %d after quiescence", c.InFlight)
	}
}

// TestServeChaosCacheAllocFailures fails every relcache publish while
// concurrent load runs: the cache degrades to a no-op (every miss
// recomputes) but results must stay exact and no request may fail.
func TestServeChaosCacheAllocFailures(t *testing.T) {
	g, _, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	trace := buildTrace(t, g.Labels(), 100, 0, 17)

	faultinject.Install(faultinject.NewInjector(
		faultinject.Rule{Site: "relcache.put", Count: 0, Action: faultinject.ActFail},
	))
	t.Cleanup(faultinject.Uninstall)

	rep, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 0 || rep.OK != int64(rep.Queries) {
		t.Fatalf("cache alloc failures must be invisible to clients: %+v", rep)
	}
	// Spot-check exactness against the ground truth while the rule is
	// still armed.
	q := g.Labels()[0] + "/" + g.Labels()[1]
	want, err := g.TrueSelectivity(q)
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if st := getJSON(t, ts.URL+"/query?q="+q, &qr); st != http.StatusOK || qr.Result != want {
		t.Fatalf("query %q under cache failures: status %d result %d, want 200/%d", q, st, qr.Result, want)
	}
}

// TestServeChaosDelayTimeout delays execution past QueryTimeout under
// load: delayed requests must answer 504 (typed), fast-path cache hits
// may still succeed, and recovery must be immediate once the delays
// stop.
func TestServeChaosDelayTimeout(t *testing.T) {
	g, srv, ts := newTestServer(t, pathsel.Config{
		CacheBytes:   pathsel.DefaultCacheBytes,
		QueryTimeout: 50 * time.Millisecond,
	})
	trace := buildTrace(t, g.Labels(), 40, 0, 19)

	faultinject.Install(faultinject.NewInjector(
		faultinject.Rule{Site: "exec.step", Count: 0, Action: faultinject.ActDelay, Delay: 80 * time.Millisecond},
	))
	t.Cleanup(faultinject.Uninstall)

	rep, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors under injected delays", rep.TransportErrors)
	}
	if rep.Timeout == 0 {
		t.Fatalf("no 504s despite every step sleeping past QueryTimeout: %+v", rep)
	}
	faultinject.Uninstall()
	var qr QueryResponse
	if st := getJSON(t, ts.URL+"/query?q=a/b", &qr); st != http.StatusOK {
		t.Fatalf("post-delay query status %d, want 200", st)
	}
	if c := srv.Counters(); c.InFlight != 0 {
		t.Fatalf("in-flight %d after quiescence", c.InFlight)
	}
}

// TestServeChaosLeakHygiene runs a panic-heavy chaos burst and asserts
// the goroutine count returns to baseline after server shutdown — the
// serving layer's no-leak acceptance criterion under faults.
func TestServeChaosLeakHygiene(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		g, _, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
		trace := buildTrace(t, g.Labels(), 80, 0, 23)
		faultinject.Install(faultinject.NewInjector(
			faultinject.Rule{Site: "exec.step", Skip: 2, Count: 0, Action: faultinject.ActPanic},
			faultinject.Rule{Site: "relcache.put", Skip: 1, Count: 0, Action: faultinject.ActFail},
		))
		defer faultinject.Uninstall()
		if _, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 8}); err != nil {
			t.Fatal(err)
		}
		ts.Close()
		http.DefaultClient.CloseIdleConnections()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count %d did not return to baseline %d after chaos shutdown",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
