package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/pathsel"
)

// postJSON posts a body and decodes the response, returning the status.
func postJSON(t *testing.T, u string, body, into any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", u, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("POST %s: decoding body: %v", u, err)
		}
	}
	return resp.StatusCode
}

// TestQueryPatternParam pins the v2 wire surface: the pattern parameter
// executes the full RPQ grammar and answers with the exact
// set-semantics selectivity.
func TestQueryPatternParam(t *testing.T) {
	g, _, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	for _, pattern := range []string{"a/(b|c)", "a?/b", "b{1,3}", "*/a"} {
		want, err := g.TruePatternSelectivity(pattern)
		if err != nil {
			t.Fatal(err)
		}
		var qr QueryResponse
		if st := getJSON(t, ts.URL+"/query?pattern="+url.QueryEscape(pattern), &qr); st != http.StatusOK {
			t.Fatalf("pattern %q: status %d, want 200", pattern, st)
		}
		if qr.Result != want {
			t.Fatalf("pattern %q: result %d, want %d", pattern, qr.Result, want)
		}
		if qr.Query != pattern {
			t.Fatalf("pattern %q echoed as %q", pattern, qr.Query)
		}
	}
}

// TestBatchEndpoint pins POST /batch: per-item results identical to
// per-query /query answers, the Batches counter, and the upfront
// compile check naming the offending query.
func TestBatchEndpoint(t *testing.T) {
	_, srv, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	queries := []string{"a/b", "a/(b|c)", "b{1,2}", "a/b"}

	want := make([]QueryResponse, len(queries))
	for i, q := range queries {
		if st := getJSON(t, ts.URL+"/query?pattern="+url.QueryEscape(q), &want[i]); st != http.StatusOK {
			t.Fatalf("reference query %q: status %d", q, st)
		}
	}

	var br BatchResponse
	if st := postJSON(t, ts.URL+"/batch", BatchRequest{Queries: queries, Workers: 2}, &br); st != http.StatusOK {
		t.Fatalf("/batch status %d, want 200", st)
	}
	if len(br.Results) != len(queries) {
		t.Fatalf("/batch returned %d results, want %d", len(br.Results), len(queries))
	}
	for i, item := range br.Results {
		if item.Error != "" {
			t.Fatalf("batch item %d: unexpected error %q", i, item.Error)
		}
		if item.Query != queries[i] {
			t.Fatalf("batch item %d echoes %q, want %q", i, item.Query, queries[i])
		}
		if item.Result != want[i].Result {
			t.Fatalf("batch item %d (%q): result %d, want %d", i, queries[i], item.Result, want[i].Result)
		}
	}
	if c := srv.Counters(); c.Batches != 1 {
		t.Fatalf("Batches counter = %d, want 1", c.Batches)
	}

	// A malformed workload fails fast, naming the first bad query.
	var er ErrorResponse
	if st := postJSON(t, ts.URL+"/batch", BatchRequest{Queries: []string{"a", "b{3,1}"}}, &er); st != http.StatusBadRequest {
		t.Fatalf("bad batch status %d, want 400", st)
	}
	if er.Code != CodeBadPattern || !strings.Contains(er.Error, "query 1") {
		t.Fatalf("bad batch error %+v, want bad_pattern naming query 1", er)
	}

	// Degenerate requests.
	if st := postJSON(t, ts.URL+"/batch", BatchRequest{}, &er); st != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", st)
	}
	resp, err := http.Get(ts.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch status %d, want 405", resp.StatusCode)
	}
	over := BatchRequest{Queries: make([]string, maxBatchQueries+1)}
	for i := range over.Queries {
		over.Queries[i] = "a"
	}
	if st := postJSON(t, ts.URL+"/batch", over, &er); st != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d, want 400", st)
	}
}

// TestRunLoadBatchMode pins the harness's batch driving: an RPQ pool
// replayed through POST /batch accounts every query and reports the
// batch count.
func TestRunLoadBatchMode(t *testing.T) {
	g, _, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	_ = g
	queries := []string{"a/b", "a/(b|c)", "b{1,2}", "a?/c", "a/b", "c"}
	trace := make([]TimedQuery, 24)
	for i := range trace {
		trace[i] = TimedQuery{Query: queries[i%len(queries)]}
	}
	rep, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 2, Batch: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != int64(len(trace)) {
		t.Fatalf("ok=%d of %d queries (report %+v)", rep.OK, len(trace), rep)
	}
	if rep.Batches != 5 { // ceil(24/5)
		t.Fatalf("batches=%d, want 5", rep.Batches)
	}
	if rep.CacheHits == 0 {
		t.Fatalf("repeated workload over a persistent cache reported no hits: %+v", rep)
	}
}
