// Package serve is the engine's serving layer: an HTTP front end over
// one persistent pathsel.Estimator, shared — statistics, relation
// cache, and relation pool alike — by every concurrent request. It
// turns the library's per-query contract (context cancellation,
// Config.QueryTimeout deadlines, cost-based admission, degradation to
// estimate) into wire semantics: each resource-policy outcome maps to a
// distinct HTTP status code and a typed JSON body, so clients and load
// balancers can tell an overloaded server (429/503) from a slow query
// (504) from a bug (500).
//
// The package also hosts the open-loop load harness (load.go): a
// replayer that drives a server with a Zipf-distributed query-arrival
// trace (internal/workload.ZipfTrace) at configurable concurrency and
// arrival rate, recording latency percentiles, throughput, cache hit
// rate, and degradation/timeout counts. cmd/pathserve and cmd/serveload
// are thin flag wrappers; internal/experiments emits the committed
// BENCH_serve.json from the same harness.
//
// In the layer map (graph → bitset → paths → exec → pathsel → serve)
// this package sits above the public facade and below cmd; it imports
// only pathsel and internal/workload.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/pathsel"
)

// QueryResponse is the JSON body of a successful (or degraded) query.
type QueryResponse struct {
	// Query echoes the executed query.
	Query string `json:"query"`
	// Result is the exact selectivity — or the rounded histogram
	// estimate when Degraded is set.
	Result int64 `json:"result"`
	// Plan describes the executed join strategy.
	Plan string `json:"plan"`
	// EstimatedCost is the chosen plan's histogram-estimated cost.
	EstimatedCost float64 `json:"estimated_cost"`
	// Work is the actual total intermediate volume.
	Work int64 `json:"work"`
	// CacheHits and CacheMisses count the query's traffic against the
	// estimator's shared segment-relation cache.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Degraded marks a resource-policy kill answered with the histogram
	// estimate (Config.DegradeToEstimate); DegradedBy names the cause.
	Degraded   bool   `json:"degraded,omitempty"`
	DegradedBy string `json:"degraded_by,omitempty"`
	// LatencyNs is the server-side handling time.
	LatencyNs int64 `json:"latency_ns"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	// Error is the human-readable cause.
	Error string `json:"error"`
	// Code is the machine-readable error class: one of bad_request,
	// bad_pattern, admission_denied, budget_exceeded, deadline_exceeded,
	// cancelled, execution_failed.
	Code string `json:"code"`
}

// Error codes of ErrorResponse.Code.
const (
	CodeBadRequest      = "bad_request"
	CodeBadPattern      = "bad_pattern" // RPQ grammar violation (still a 400)
	CodeAdmissionDenied = "admission_denied"
	CodeBudgetExceeded  = "budget_exceeded"
	CodeDeadline        = "deadline_exceeded"
	CodeCancelled       = "cancelled"
	CodeExecutionFailed = "execution_failed"
)

// maxBatchQueries bounds one /batch request; larger workloads should be
// split client-side (the cache amortization batches exist for saturates
// well below this).
const maxBatchQueries = 1024

// Counters is a snapshot of the server's request accounting, reported
// by /stats and asserted by the end-to-end tests.
type Counters struct {
	Requests   int64 `json:"requests"`
	Batches    int64 `json:"batches"`
	OK         int64 `json:"ok"`
	Degraded   int64 `json:"degraded"`
	BadRequest int64 `json:"bad_request"`
	Rejected   int64 `json:"rejected"` // admission denied (429)
	Overload   int64 `json:"overload"` // budget exceeded / cancelled (503)
	Timeout    int64 `json:"timeout"`  // deadline exceeded (504)
	Failed     int64 `json:"failed"`   // execution failed (500)
	InFlight   int64 `json:"in_flight"`
	// Scheduler activity summed over every successfully answered query:
	// parallel join-step tasks executed, tasks stolen across workers, and
	// worker parks. All-zero when every request ran its steps
	// sequentially (1-worker config or all steps below the granularity
	// floor). Steals and parks are the contention signals; cache-shard
	// lock waits are reported alongside in StatsResponse.Cache.
	SchedTasks  int64 `json:"sched_tasks"`
	SchedSteals int64 `json:"sched_steals"`
	SchedParks  int64 `json:"sched_parks"`
}

// StatsResponse is the JSON body of /stats: graph metadata (what a
// client needs to form valid queries), request counters, and the
// estimator's persistent cache counters when one is configured.
type StatsResponse struct {
	Labels        []string            `json:"labels"`
	MaxPathLength int                 `json:"max_path_length"`
	Counters      Counters            `json:"counters"`
	Cache         *pathsel.CacheStats `json:"cache,omitempty"`
	UptimeNs      int64               `json:"uptime_ns"`
}

// Server wraps one persistent estimator behind an http.Handler. All
// methods are safe for concurrent use; the zero value is not usable —
// construct with New.
type Server struct {
	est     *pathsel.Estimator
	mux     *http.ServeMux
	started time.Time

	requests, batches                   atomic.Int64
	ok, degraded, badRequest            atomic.Int64
	rejected, overload, timeout, failed atomic.Int64
	inFlight                            atomic.Int64
	schedTasks, schedSteals, schedParks atomic.Int64
}

// New wraps est. The estimator's Config decides the serving policy:
// CacheBytes shares a relation cache across requests, QueryTimeout
// bounds each request, MaxPlanCost/MaxResultBytes gate admission, and
// DegradeToEstimate turns kills into degraded 200s.
func New(est *pathsel.Estimator) *Server {
	s := &Server{est: est, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Counters snapshots the request accounting.
func (s *Server) Counters() Counters {
	return Counters{
		Requests:    s.requests.Load(),
		Batches:     s.batches.Load(),
		OK:          s.ok.Load(),
		Degraded:    s.degraded.Load(),
		BadRequest:  s.badRequest.Load(),
		Rejected:    s.rejected.Load(),
		Overload:    s.overload.Load(),
		Timeout:     s.timeout.Load(),
		Failed:      s.failed.Load(),
		InFlight:    s.inFlight.Load(),
		SchedTasks:  s.schedTasks.Load(),
		SchedSteals: s.schedSteals.Load(),
		SchedParks:  s.schedParks.Load(),
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors past the header are undeliverable; clients see a
	// truncated body and their decoder reports it.
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.started).Nanoseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Labels:        s.est.Labels(),
		MaxPathLength: s.est.MaxPathLength(),
		Counters:      s.Counters(),
		UptimeNs:      time.Since(s.started).Nanoseconds(),
	}
	if cs, ok := s.est.CacheStats(); ok {
		resp.Cache = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// errClass maps a pathsel error onto its HTTP status and wire code. The
// mapping is the serving tier's contract: 400 for malformed queries,
// 429 for admission rejections (retry later, against another replica),
// 503 for mid-flight resource kills and cancellations, 504 for
// deadline expiry, 500 only for contained execution failures.
func errClass(err error) (status int, code string) {
	switch {
	case errors.Is(err, pathsel.ErrBadPattern):
		// RPQ grammar violations get their own wire code so clients can
		// tell a malformed pattern (fix the query) from an unknown label
		// or a missing parameter (fix the request).
		return http.StatusBadRequest, CodeBadPattern
	case errors.Is(err, pathsel.ErrAdmissionDenied):
		return http.StatusTooManyRequests, CodeAdmissionDenied
	case errors.Is(err, pathsel.ErrBudgetExceeded):
		return http.StatusServiceUnavailable, CodeBudgetExceeded
	case errors.Is(err, pathsel.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadline
	case errors.Is(err, pathsel.ErrCancelled):
		return http.StatusServiceUnavailable, CodeCancelled
	case errors.Is(err, pathsel.ErrExecutionFailed):
		return http.StatusInternalServerError, CodeExecutionFailed
	default:
		// Parse/validation errors: unknown label, empty path, too long.
		return http.StatusBadRequest, CodeBadRequest
	}
}

// countError attributes one non-2xx response to its counter.
func (s *Server) countError(status int) {
	switch status {
	case http.StatusBadRequest:
		s.badRequest.Add(1)
	case http.StatusTooManyRequests:
		s.rejected.Add(1)
	case http.StatusGatewayTimeout:
		s.timeout.Add(1)
	case http.StatusInternalServerError:
		s.failed.Add(1)
	default:
		s.overload.Add(1)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed,
			ErrorResponse{Error: "use GET or POST", Code: CodeBadRequest})
		return
	}
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	// v2 wire API: `pattern` carries a regular path query (the full RPQ
	// grammar — alternation, optional, bounded repetition); `q` is the
	// v1 name, which the estimator now accepts the same grammar under.
	// Exactly one must be present.
	q, pattern := r.URL.Query().Get("q"), r.URL.Query().Get("pattern")
	switch {
	case q != "" && pattern != "":
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "give either q or pattern, not both", Code: CodeBadRequest})
		return
	case q == "" && pattern == "":
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "missing q or pattern parameter (RPQ such as a/(b|c)/d?/e{1,3})", Code: CodeBadRequest})
		return
	case pattern != "":
		q = pattern
	}
	start := time.Now()
	st, err := s.est.ExecuteQueryCtx(r.Context(), q)
	if err != nil {
		status, code := errClass(err)
		s.countError(status)
		writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
		return
	}
	s.schedTasks.Add(st.Sched.Tasks)
	s.schedSteals.Add(st.Sched.Steals)
	s.schedParks.Add(st.Sched.Parks)
	resp := QueryResponse{
		Query:         q,
		Result:        st.Result,
		Plan:          st.Plan.Description,
		EstimatedCost: st.Plan.EstimatedCost,
		Work:          st.Work,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
		Degraded:      st.Degraded,
		LatencyNs:     time.Since(start).Nanoseconds(),
	}
	if st.Degraded {
		s.degraded.Add(1)
		_, resp.DegradedBy = errClass(st.DegradedBy)
	} else {
		s.ok.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchRequest is the JSON body of POST /batch: a workload of RPQ
// patterns executed through one shared relation cache, so segments
// recurring across the batch are materialized once.
type BatchRequest struct {
	// Queries are the patterns (same grammar as /query).
	Queries []string `json:"queries"`
	// Workers is the number of queries executed concurrently (≤ 0
	// selects 1). Results are bit-identical at every setting.
	Workers int `json:"workers,omitempty"`
}

// BatchItem is one query's outcome within a batch response: a
// QueryResponse on success, or Error/Code (the same classes /query
// answers with) on a per-query kill. A per-query failure never fails
// the batch.
type BatchItem struct {
	QueryResponse
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// BatchResponse is the JSON body of a successful POST /batch.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	// LatencyNs is the server-side handling time of the whole batch.
	LatencyNs int64 `json:"latency_ns"`
}

// handleBatch executes a whole workload per request. Every pattern is
// compiled before anything executes — a malformed workload is a 400
// naming the first offending query — then the batch runs through the
// estimator's parse-once batch executor under the request context.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed,
			ErrorResponse{Error: "use POST with a JSON body", Code: CodeBadRequest})
		return
	}
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "malformed batch body: " + err.Error(), Code: CodeBadRequest})
		return
	}
	if len(req.Queries) == 0 {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "batch needs at least one query", Code: CodeBadRequest})
		return
	}
	if len(req.Queries) > maxBatchQueries {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("batch of %d queries exceeds %d", len(req.Queries), maxBatchQueries), Code: CodeBadRequest})
		return
	}
	s.batches.Add(1)
	start := time.Now()
	xs := make([]*pathsel.Expr, len(req.Queries))
	for i, q := range req.Queries {
		x, err := s.est.Compile(q)
		if err != nil {
			_, code := errClass(err)
			s.badRequest.Add(1)
			writeJSON(w, http.StatusBadRequest,
				ErrorResponse{Error: fmt.Sprintf("query %d: %s", i, err), Code: code})
			return
		}
		xs[i] = x
	}
	br, err := s.est.ExecuteExprBatchCtx(r.Context(), xs, pathsel.BatchOptions{Workers: req.Workers})
	if err != nil {
		// Unreachable with handles we just compiled; classify defensively.
		status, code := errClass(err)
		s.countError(status)
		writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
		return
	}
	resp := BatchResponse{Results: make([]BatchItem, len(br.Results))}
	for i, qr := range br.Results {
		item := BatchItem{QueryResponse: QueryResponse{
			Query:         string(qr.Query),
			Result:        qr.Result,
			Plan:          qr.Plan.Description,
			EstimatedCost: qr.Plan.EstimatedCost,
			Work:          qr.Work,
			CacheHits:     qr.CacheHits,
			CacheMisses:   qr.CacheMisses,
			Degraded:      qr.Degraded,
		}}
		switch {
		case qr.Err != nil:
			status, code := errClass(qr.Err)
			s.countError(status)
			item.Error, item.Code = qr.Err.Error(), code
		case qr.Degraded:
			s.degraded.Add(1)
			_, item.DegradedBy = errClass(qr.DegradedBy)
		default:
			s.ok.Add(1)
		}
		s.schedTasks.Add(qr.Sched.Tasks)
		s.schedSteals.Add(qr.Sched.Steals)
		s.schedParks.Add(qr.Sched.Parks)
		resp.Results[i] = item
	}
	resp.LatencyNs = time.Since(start).Nanoseconds()
	writeJSON(w, http.StatusOK, resp)
}
