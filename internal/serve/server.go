// Package serve is the engine's serving layer: an HTTP front end over
// one persistent pathsel.Estimator, shared — statistics, relation
// cache, and relation pool alike — by every concurrent request. It
// turns the library's per-query contract (context cancellation,
// Config.QueryTimeout deadlines, cost-based admission, degradation to
// estimate) into wire semantics: each resource-policy outcome maps to a
// distinct HTTP status code and a typed JSON body, so clients and load
// balancers can tell an overloaded server (429/503) from a slow query
// (504) from a bug (500).
//
// The package also hosts the open-loop load harness (load.go): a
// replayer that drives a server with a Zipf-distributed query-arrival
// trace (internal/workload.ZipfTrace) at configurable concurrency and
// arrival rate, recording latency percentiles, throughput, cache hit
// rate, and degradation/timeout counts. cmd/pathserve and cmd/serveload
// are thin flag wrappers; internal/experiments emits the committed
// BENCH_serve.json from the same harness.
//
// In the layer map (graph → bitset → paths → exec → pathsel → serve)
// this package sits above the public facade and below cmd; it imports
// only pathsel and internal/workload.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/pathsel"
)

// QueryResponse is the JSON body of a successful (or degraded) query.
type QueryResponse struct {
	// Query echoes the executed query.
	Query string `json:"query"`
	// Result is the exact selectivity — or the rounded histogram
	// estimate when Degraded is set.
	Result int64 `json:"result"`
	// Plan describes the executed join strategy.
	Plan string `json:"plan"`
	// EstimatedCost is the chosen plan's histogram-estimated cost.
	EstimatedCost float64 `json:"estimated_cost"`
	// Work is the actual total intermediate volume.
	Work int64 `json:"work"`
	// CacheHits and CacheMisses count the query's traffic against the
	// estimator's shared segment-relation cache.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Degraded marks a resource-policy kill answered with the histogram
	// estimate (Config.DegradeToEstimate); DegradedBy names the cause.
	Degraded   bool   `json:"degraded,omitempty"`
	DegradedBy string `json:"degraded_by,omitempty"`
	// LatencyNs is the server-side handling time.
	LatencyNs int64 `json:"latency_ns"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	// Error is the human-readable cause.
	Error string `json:"error"`
	// Code is the machine-readable error class: one of bad_request,
	// bad_pattern, admission_denied, budget_exceeded, deadline_exceeded,
	// cancelled, execution_failed, overloaded, draining.
	Code string `json:"code"`
	// RetryAfterMs, when > 0, is the server's hint of when capacity
	// should exist again — present on overload sheds (429, alongside a
	// Retry-After header) and drain refusals (503). Clients that honor
	// it (serveload's retry mode does) converge instead of hammering.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// Error codes of ErrorResponse.Code.
const (
	CodeBadRequest      = "bad_request"
	CodeBadPattern      = "bad_pattern" // RPQ grammar violation (still a 400)
	CodeAdmissionDenied = "admission_denied"
	CodeBudgetExceeded  = "budget_exceeded"
	CodeDeadline        = "deadline_exceeded"
	CodeCancelled       = "cancelled"
	CodeExecutionFailed = "execution_failed"
	// CodeOverloaded marks a request shed by the overload controller
	// (429 + Retry-After): distinct from CodeAdmissionDenied, which is
	// the per-query cost gate — an overloaded shed says "come back
	// later", a cost rejection says "this query is too expensive here".
	CodeOverloaded = "overloaded"
	// CodeDraining refuses a request arriving during graceful shutdown
	// (503 + Retry-After) so load balancers retry against a peer.
	CodeDraining = "draining"
	// CodeBrownout marks a degraded answer produced by the brownout
	// controller (QueryResponse.DegradedBy, never an error code): the
	// query was answered with its histogram estimate because load, not
	// its own cost, demanded it.
	CodeBrownout = "brownout"
)

// maxBatchQueries bounds one /batch request; larger workloads should be
// split client-side (the cache amortization batches exist for saturates
// well below this).
const maxBatchQueries = 1024

// Counters is a snapshot of the server's request accounting, reported
// by /stats and asserted by the end-to-end tests.
type Counters struct {
	Requests   int64 `json:"requests"`
	Batches    int64 `json:"batches"`
	OK         int64 `json:"ok"`
	Degraded   int64 `json:"degraded"`
	BadRequest int64 `json:"bad_request"`
	Rejected   int64 `json:"rejected"` // admission denied (429)
	Overload   int64 `json:"overload"` // budget exceeded / cancelled / draining (503)
	Timeout    int64 `json:"timeout"`  // deadline exceeded (504)
	Failed     int64 `json:"failed"`   // execution failed (500)
	// Shed counts requests refused by the overload controller (429 +
	// Retry-After); BrownoutDegraded counts answers the brownout
	// controller degraded to estimates (a subset of Degraded). Both stay
	// zero with the controller disabled.
	Shed             int64 `json:"shed"`
	BrownoutDegraded int64 `json:"brownout_degraded"`
	InFlight         int64 `json:"in_flight"`
	// Scheduler activity summed over every successfully answered query:
	// parallel join-step tasks executed, tasks stolen across workers, and
	// worker parks. All-zero when every request ran its steps
	// sequentially (1-worker config or all steps below the granularity
	// floor). Steals and parks are the contention signals; cache-shard
	// lock waits are reported alongside in StatsResponse.Cache.
	SchedTasks  int64 `json:"sched_tasks"`
	SchedSteals int64 `json:"sched_steals"`
	SchedParks  int64 `json:"sched_parks"`
}

// StatsResponse is the JSON body of /stats: graph metadata (what a
// client needs to form valid queries), request counters, and the
// estimator's persistent cache counters when one is configured.
type StatsResponse struct {
	Labels        []string            `json:"labels"`
	MaxPathLength int                 `json:"max_path_length"`
	Counters      Counters            `json:"counters"`
	Cache         *pathsel.CacheStats `json:"cache,omitempty"`
	// Overload is the overload controller's live state (queue depth,
	// adaptive limit, brownout tier, shed counters); absent when the
	// controller is disabled.
	Overload *OverloadStats `json:"overload,omitempty"`
	UptimeNs int64          `json:"uptime_ns"`
}

// Server wraps one persistent estimator behind an http.Handler. All
// methods are safe for concurrent use; the zero value is not usable —
// construct with New.
type Server struct {
	est     *pathsel.Estimator
	mux     *http.ServeMux
	started time.Time
	// lim is the overload controller; nil when disabled (the default),
	// in which case every request executes immediately as before.
	lim *limiter
	// draining refuses new work after StartDrain even with no
	// controller, so graceful shutdown always has a readiness signal.
	draining atomic.Bool

	requests, batches                   atomic.Int64
	ok, degraded, badRequest            atomic.Int64
	rejected, overload, timeout, failed atomic.Int64
	shed, brownoutDegraded              atomic.Int64
	inFlight                            atomic.Int64
	schedTasks, schedSteals, schedParks atomic.Int64
}

// Options tunes a server beyond the estimator's own Config.
type Options struct {
	// Overload enables the server-wide overload controller (adaptive
	// concurrency limit, bounded admission queue, brownout degradation —
	// see OverloadConfig). nil, or a config with MaxInFlight ≤ 0,
	// disables it.
	Overload *OverloadConfig
}

// New wraps est. The estimator's Config decides the serving policy:
// CacheBytes shares a relation cache across requests, QueryTimeout
// bounds each request, MaxPlanCost/MaxResultBytes gate admission, and
// DegradeToEstimate turns kills into degraded 200s.
func New(est *pathsel.Estimator) *Server {
	return NewWithOptions(est, Options{})
}

// NewWithOptions is New plus server-level options.
func NewWithOptions(est *pathsel.Estimator, opt Options) *Server {
	s := &Server{est: est, mux: http.NewServeMux(), started: time.Now()}
	if opt.Overload != nil && opt.Overload.MaxInFlight > 0 {
		s.lim = newLimiter(*opt.Overload)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// StartDrain moves the server into draining: /healthz turns 503 so load
// balancers rotate the replica out, new queries are refused with
// CodeDraining + Retry-After, and in-flight (and queued) work finishes
// normally. Call it before http.Server.Shutdown, which handles the
// connection-level part of the same story.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	if s.lim != nil {
		s.lim.startDrain()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Counters snapshots the request accounting.
func (s *Server) Counters() Counters {
	return Counters{
		Requests:         s.requests.Load(),
		Batches:          s.batches.Load(),
		OK:               s.ok.Load(),
		Degraded:         s.degraded.Load(),
		BadRequest:       s.badRequest.Load(),
		Rejected:         s.rejected.Load(),
		Overload:         s.overload.Load(),
		Timeout:          s.timeout.Load(),
		Failed:           s.failed.Load(),
		Shed:             s.shed.Load(),
		BrownoutDegraded: s.brownoutDegraded.Load(),
		InFlight:         s.inFlight.Load(),
		SchedTasks:       s.schedTasks.Load(),
		SchedSteals:      s.schedSteals.Load(),
		SchedParks:       s.schedParks.Load(),
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors past the header are undeliverable; clients see a
	// truncated body and their decoder reports it.
	_ = json.NewEncoder(w).Encode(body)
}

// handleHealthz distinguishes liveness from readiness: 200 "ok" when
// the replica should receive traffic, 503 "draining" during graceful
// shutdown, 503 "overloaded" while the controller is saturated (full
// queue or deepest brownout tier) — the signal load balancers use to
// rotate the replica out before clients feel it.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status, state := http.StatusOK, "ok"
	switch {
	case s.draining.Load():
		status, state = http.StatusServiceUnavailable, "draining"
	case s.lim != nil && s.lim.hardOverloaded():
		status, state = http.StatusServiceUnavailable, "overloaded"
	}
	writeJSON(w, status, map[string]any{
		"status":    state,
		"uptime_ns": time.Since(s.started).Nanoseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		Labels:        s.est.Labels(),
		MaxPathLength: s.est.MaxPathLength(),
		Counters:      s.Counters(),
		UptimeNs:      time.Since(s.started).Nanoseconds(),
	}
	if cs, ok := s.est.CacheStats(); ok {
		resp.Cache = &cs
	}
	if s.lim != nil {
		os := s.lim.stats()
		os.Shed = s.shed.Load()
		os.BrownoutDegraded = s.brownoutDegraded.Load()
		os.Draining = os.Draining || s.draining.Load()
		resp.Overload = &os
	}
	writeJSON(w, http.StatusOK, resp)
}

// errClass maps a pathsel error onto its HTTP status and wire code. The
// mapping is the serving tier's contract: 400 for malformed queries,
// 429 for admission rejections (retry later, against another replica),
// 503 for mid-flight resource kills and cancellations, 504 for
// deadline expiry, 500 only for contained execution failures.
func errClass(err error) (status int, code string) {
	switch {
	case errors.Is(err, pathsel.ErrBadPattern):
		// RPQ grammar violations get their own wire code so clients can
		// tell a malformed pattern (fix the query) from an unknown label
		// or a missing parameter (fix the request).
		return http.StatusBadRequest, CodeBadPattern
	case errors.Is(err, pathsel.ErrAdmissionDenied):
		return http.StatusTooManyRequests, CodeAdmissionDenied
	case errors.Is(err, pathsel.ErrBudgetExceeded):
		return http.StatusServiceUnavailable, CodeBudgetExceeded
	case errors.Is(err, pathsel.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadline
	case errors.Is(err, pathsel.ErrCancelled):
		return http.StatusServiceUnavailable, CodeCancelled
	case errors.Is(err, pathsel.ErrExecutionFailed):
		return http.StatusInternalServerError, CodeExecutionFailed
	default:
		// Parse/validation errors: unknown label, empty path, too long.
		return http.StatusBadRequest, CodeBadRequest
	}
}

// countError attributes one non-2xx response to its counter.
func (s *Server) countError(status int) {
	switch status {
	case http.StatusBadRequest:
		s.badRequest.Add(1)
	case http.StatusTooManyRequests:
		s.rejected.Add(1)
	case http.StatusGatewayTimeout:
		s.timeout.Add(1)
	case http.StatusInternalServerError:
		s.failed.Add(1)
	default:
		s.overload.Add(1)
	}
}

// degradedCode renders ExecStats.DegradedBy as a wire code, including
// the brownout cause errClass never sees (brownout is not an error).
func degradedCode(err error) string {
	if errors.Is(err, pathsel.ErrBrownout) {
		return CodeBrownout
	}
	_, code := errClass(err)
	return code
}

// retryAfterHeader renders a duration as the Retry-After header's
// integer seconds, rounded up so the hint never undershoots.
func retryAfterHeader(d time.Duration) string {
	secs := (d + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(int64(secs), 10)
}

// writeError renders one execution error, counting it: overload sheds
// get 429 + CodeOverloaded with the Retry-After hint in both header
// (whole seconds) and body (milliseconds — the precise form), drain
// refusals 503 + CodeDraining + Retry-After, everything else the
// errClass contract.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var sh *shedError
	switch {
	case errors.As(err, &sh):
		s.shed.Add(1)
		ms := sh.retryAfter.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		w.Header().Set("Retry-After", retryAfterHeader(sh.retryAfter))
		writeJSON(w, http.StatusTooManyRequests,
			ErrorResponse{Error: err.Error(), Code: CodeOverloaded, RetryAfterMs: ms})
	case errors.Is(err, errDraining):
		s.overload.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			ErrorResponse{Error: err.Error(), Code: CodeDraining, RetryAfterMs: time.Second.Milliseconds()})
	default:
		status, code := errClass(err)
		s.countError(status)
		writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
	}
}

// admit gates one request through drain state and the overload
// controller: on success the returned policy carries the brownout tier
// and release must be called when the execution finishes (it feeds the
// observed service time back into the limiter). With the controller
// disabled both are trivial and requests flow exactly as before.
func (s *Server) admit(ctx context.Context) (pathsel.ExecPolicy, func(), error) {
	faultinject.Fire("serve.admit")
	if s.lim == nil {
		if s.draining.Load() {
			return pathsel.ExecPolicy{}, nil, errDraining
		}
		return pathsel.ExecPolicy{}, func() {}, nil
	}
	pol, err := s.lim.acquire(ctx)
	if err != nil {
		return pathsel.ExecPolicy{}, nil, err
	}
	start := time.Now()
	return pol, func() { s.lim.release(time.Since(start)) }, nil
}

// observeCost feeds an answered query's plan cost into the brownout
// percentile window.
func (s *Server) observeCost(cost float64) {
	if s.lim != nil {
		s.lim.recordCost(cost)
	}
}

// execute runs one query under the overload regime: admission (shed /
// drain / queue), the brownout policy, service-time feedback, and
// handler-level panic containment — net/http's own recover would sever
// the connection, turning an injected serve.admit panic into a client
// transport error instead of a typed 500.
func (s *Server) execute(ctx context.Context, q string) (st pathsel.ExecStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = pathsel.ExecStats{}, fmt.Errorf("%w: contained serving-layer panic: %v",
				pathsel.ErrExecutionFailed, r)
		}
	}()
	pol, release, err := s.admit(ctx)
	if err != nil {
		return pathsel.ExecStats{}, err
	}
	defer release()
	st, err = s.est.ExecuteQueryCtxPolicy(ctx, q, pol)
	if err == nil {
		s.observeCost(st.Plan.EstimatedCost)
	}
	return st, err
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed,
			ErrorResponse{Error: "use GET or POST", Code: CodeBadRequest})
		return
	}
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	// v2 wire API: `pattern` carries a regular path query (the full RPQ
	// grammar — alternation, optional, bounded repetition); `q` is the
	// v1 name, which the estimator now accepts the same grammar under.
	// Exactly one must be present.
	q, pattern := r.URL.Query().Get("q"), r.URL.Query().Get("pattern")
	switch {
	case q != "" && pattern != "":
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "give either q or pattern, not both", Code: CodeBadRequest})
		return
	case q == "" && pattern == "":
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "missing q or pattern parameter (RPQ such as a/(b|c)/d?/e{1,3})", Code: CodeBadRequest})
		return
	case pattern != "":
		q = pattern
	}
	start := time.Now()
	st, err := s.execute(r.Context(), q)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.schedTasks.Add(st.Sched.Tasks)
	s.schedSteals.Add(st.Sched.Steals)
	s.schedParks.Add(st.Sched.Parks)
	resp := QueryResponse{
		Query:         q,
		Result:        st.Result,
		Plan:          st.Plan.Description,
		EstimatedCost: st.Plan.EstimatedCost,
		Work:          st.Work,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
		Degraded:      st.Degraded,
		LatencyNs:     time.Since(start).Nanoseconds(),
	}
	if st.Degraded {
		s.degraded.Add(1)
		resp.DegradedBy = degradedCode(st.DegradedBy)
		if resp.DegradedBy == CodeBrownout {
			s.brownoutDegraded.Add(1)
		}
	} else {
		s.ok.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchRequest is the JSON body of POST /batch: a workload of RPQ
// patterns executed through one shared relation cache, so segments
// recurring across the batch are materialized once.
type BatchRequest struct {
	// Queries are the patterns (same grammar as /query).
	Queries []string `json:"queries"`
	// Workers is the number of queries executed concurrently (≤ 0
	// selects 1). Results are bit-identical at every setting.
	Workers int `json:"workers,omitempty"`
}

// BatchItem is one query's outcome within a batch response: a
// QueryResponse on success, or Error/Code (the same classes /query
// answers with) on a per-query kill. A per-query failure never fails
// the batch.
type BatchItem struct {
	QueryResponse
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// BatchResponse is the JSON body of a successful POST /batch.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	// LatencyNs is the server-side handling time of the whole batch.
	LatencyNs int64 `json:"latency_ns"`
}

// handleBatch executes a whole workload per request. Every pattern is
// compiled before anything executes — a malformed workload is a 400
// naming the first offending query — then the batch runs through the
// estimator's parse-once batch executor under the request context.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed,
			ErrorResponse{Error: "use POST with a JSON body", Code: CodeBadRequest})
		return
	}
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "malformed batch body: " + err.Error(), Code: CodeBadRequest})
		return
	}
	if len(req.Queries) == 0 {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: "batch needs at least one query", Code: CodeBadRequest})
		return
	}
	if len(req.Queries) > maxBatchQueries {
		s.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("batch of %d queries exceeds %d", len(req.Queries), maxBatchQueries), Code: CodeBadRequest})
		return
	}
	s.batches.Add(1)
	start := time.Now()
	xs := make([]*pathsel.Expr, len(req.Queries))
	for i, q := range req.Queries {
		x, err := s.est.Compile(q)
		if err != nil {
			_, code := errClass(err)
			s.badRequest.Add(1)
			writeJSON(w, http.StatusBadRequest,
				ErrorResponse{Error: fmt.Sprintf("query %d: %s", i, err), Code: code})
			return
		}
		xs[i] = x
	}
	br, err := s.executeBatch(r.Context(), xs, req.Workers)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := BatchResponse{Results: make([]BatchItem, len(br.Results))}
	for i, qr := range br.Results {
		item := BatchItem{QueryResponse: QueryResponse{
			Query:         string(qr.Query),
			Result:        qr.Result,
			Plan:          qr.Plan.Description,
			EstimatedCost: qr.Plan.EstimatedCost,
			Work:          qr.Work,
			CacheHits:     qr.CacheHits,
			CacheMisses:   qr.CacheMisses,
			Degraded:      qr.Degraded,
		}}
		switch {
		case qr.Err != nil:
			status, code := errClass(qr.Err)
			s.countError(status)
			item.Error, item.Code = qr.Err.Error(), code
		case qr.Degraded:
			s.degraded.Add(1)
			item.DegradedBy = degradedCode(qr.DegradedBy)
			if item.DegradedBy == CodeBrownout {
				s.brownoutDegraded.Add(1)
			}
			s.observeCost(qr.Plan.EstimatedCost)
		default:
			s.ok.Add(1)
			s.observeCost(qr.Plan.EstimatedCost)
		}
		s.schedTasks.Add(qr.Sched.Tasks)
		s.schedSteals.Add(qr.Sched.Steals)
		s.schedParks.Add(qr.Sched.Parks)
		resp.Results[i] = item
	}
	resp.LatencyNs = time.Since(start).Nanoseconds()
	writeJSON(w, http.StatusOK, resp)
}

// executeBatch runs one batch under the overload regime: the whole
// batch occupies a single in-flight slot (its queries already share the
// estimator's internal parallelism), the brownout policy applies to
// every entry, and panics are contained exactly as in execute.
func (s *Server) executeBatch(ctx context.Context, xs []*pathsel.Expr, workers int) (br *pathsel.BatchResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			br, err = nil, fmt.Errorf("%w: contained serving-layer panic: %v",
				pathsel.ErrExecutionFailed, r)
		}
	}()
	pol, release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return s.est.ExecuteExprBatchCtx(ctx, xs, pathsel.BatchOptions{Workers: workers, Policy: pol})
}
