package serve

import (
	"testing"
	"time"

	"repro/internal/workload"
	"repro/pathsel"
)

// buildTrace renders a deterministic Zipf trace against the test
// graph's vocabulary.
func buildTrace(t testing.TB, labels []string, n int, rate float64, seed int64) []TimedQuery {
	t.Helper()
	pool, err := workload.QueryPool(len(labels), 3, 16, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ZipfTrace(workload.TraceOptions{Pool: pool, Rate: rate, N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	tq, err := TraceQueries(tr, labels)
	if err != nil {
		t.Fatal(err)
	}
	return tq
}

// TestRunLoadSaturation pins the capacity-mode harness: every trace
// entry is answered, outcomes partition the trace, latency summaries
// are ordered, and a second pass over the warmed persistent cache
// reports hits.
func TestRunLoadSaturation(t *testing.T) {
	g, srv, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	trace := buildTrace(t, g.Labels(), 120, 0, 5)
	cold, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Queries != len(trace) {
		t.Fatalf("report covers %d queries, want %d", cold.Queries, len(trace))
	}
	if cold.TransportErrors != 0 {
		t.Fatalf("%d transport errors against a live server", cold.TransportErrors)
	}
	sum := cold.OK + cold.Degraded + cold.BadRequest + cold.Rejected + cold.Overload + cold.Timeout + cold.Failed
	if sum != int64(cold.Queries) {
		t.Fatalf("outcomes sum to %d, want %d: %+v", sum, cold.Queries, cold)
	}
	if cold.OK != int64(cold.Queries) {
		t.Fatalf("cold pass had %d non-OK outcomes: %+v", int64(cold.Queries)-cold.OK, cold)
	}
	if cold.QPS <= 0 || cold.ElapsedNs <= 0 {
		t.Fatalf("degenerate throughput: %+v", cold)
	}
	for _, s := range []LatencySummary{cold.Service, cold.Sojourn} {
		if !(s.P50Ns > 0 && s.P50Ns <= s.P95Ns && s.P95Ns <= s.P99Ns && s.P99Ns <= s.MaxNs) {
			t.Fatalf("latency summary out of order: %+v", s)
		}
	}
	warm, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if warm.HitRate() == 0 {
		t.Fatalf("warm pass over a persistent cache reported hit rate 0: %+v", warm)
	}
	if c := srv.Counters(); c.Requests != int64(2*len(trace)) || c.InFlight != 0 {
		t.Fatalf("server counters %+v after two %d-query passes", c, len(trace))
	}
}

// TestRunLoadOpenLoop pins the open-loop contract: the run takes at
// least as long as the trace's arrival span, and sojourn latency (which
// charges queue wait from the scheduled arrival) dominates service
// latency.
func TestRunLoadOpenLoop(t *testing.T) {
	g, _, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	trace := buildTrace(t, g.Labels(), 60, 2000, 7)
	span := trace[len(trace)-1].At
	rep, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 0 || rep.OK != int64(len(trace)) {
		t.Fatalf("open-loop pass not clean: %+v", rep)
	}
	if time.Duration(rep.ElapsedNs) < span {
		t.Fatalf("elapsed %v shorter than the trace's arrival span %v — the replayer closed the loop",
			time.Duration(rep.ElapsedNs), span)
	}
	if rep.Sojourn.P99Ns < rep.Service.P50Ns {
		t.Fatalf("sojourn p99 %v below service p50 %v — queue wait went uncharged",
			time.Duration(rep.Sojourn.P99Ns), time.Duration(rep.Service.P50Ns))
	}
}

func TestRunLoadEmptyTrace(t *testing.T) {
	rep, err := RunLoad("http://127.0.0.1:0", nil, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 0 {
		t.Fatalf("empty trace produced %d queries", rep.Queries)
	}
}

func TestRunLoadCountsTransportErrors(t *testing.T) {
	// A port nothing listens on: every request must be counted as a
	// transport error, none dropped, and the call itself must not fail.
	trace := []TimedQuery{{Query: "a/b"}, {Query: "b/c"}}
	rep, err := RunLoad("http://127.0.0.1:1", trace, LoadOptions{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != int64(len(trace)) {
		t.Fatalf("transport errors %d, want %d", rep.TransportErrors, len(trace))
	}
}

func TestTraceQueriesRejectsForeignLabels(t *testing.T) {
	tr := []workload.Arrival{{Query: []int{0, 7}}}
	if _, err := TraceQueries(tr, []string{"a", "b"}); err == nil {
		t.Fatal("TraceQueries accepted a label id outside the vocabulary")
	}
}
