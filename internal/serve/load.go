package serve

// The open-loop load harness: replay a query-arrival trace against a
// running server over real HTTP, measuring what the serving layer is
// judged by — latency percentiles at a given offered load, achieved
// throughput, cache hit rate, and how many requests were shed, degraded,
// or timed out. Open loop means arrival times come from the trace, not
// from the server: when the server lags, arrivals queue (and the queue
// wait is charged to sojourn latency) instead of the harness politely
// slowing down — the coordinated-omission mistake closed-loop harnesses
// make.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/workload"
)

// TimedQuery is one load-harness arrival: a wire-format query string and
// its scheduled offset from the run start.
type TimedQuery struct {
	At    time.Duration `json:"at_ns"`
	Query string        `json:"query"`
}

// TraceQueries renders a workload trace into wire-format timed queries,
// joining each path's label ids through the vocabulary.
func TraceQueries(tr []workload.Arrival, labels []string) ([]TimedQuery, error) {
	out := make([]TimedQuery, len(tr))
	for i, a := range tr {
		parts := make([]string, len(a.Query))
		for j, l := range a.Query {
			if l < 0 || l >= len(labels) {
				return nil, fmt.Errorf("serve: trace arrival %d label id %d outside vocabulary of %d", i, l, len(labels))
			}
			parts[j] = labels[l]
		}
		out[i] = TimedQuery{At: a.At, Query: strings.Join(parts, "/")}
	}
	return out, nil
}

// RankQueries renders a rank-only trace (workload.ZipfRankTrace) into
// timed queries over a wire-format pool — the RPQ-pattern counterpart
// of TraceQueries, since patterns are strings rather than label paths.
func RankQueries(tr []workload.Arrival, pool []string) ([]TimedQuery, error) {
	out := make([]TimedQuery, len(tr))
	for i, a := range tr {
		if a.Rank < 0 || a.Rank >= len(pool) {
			return nil, fmt.Errorf("serve: trace arrival %d rank %d outside pool of %d", i, a.Rank, len(pool))
		}
		out[i] = TimedQuery{At: a.At, Query: pool[a.Rank]}
	}
	return out, nil
}

// LoadOptions tunes one RunLoad call.
type LoadOptions struct {
	// Concurrency is the number of replayer workers — the maximum
	// in-flight requests (≥ 1; 0 selects 1). Arrivals past that queue.
	Concurrency int
	// Batch groups consecutive arrivals into POST /batch requests of
	// this size (≤ 1 issues per-query GET /query requests). A batch is
	// released once its last member has arrived, so batching trades
	// per-query latency for the server-side cache amortization the
	// batch endpoint exists for.
	Batch int
	// Client issues the requests (nil selects http.DefaultClient).
	Client *http.Client
}

// LatencySummary is a latency distribution in nanoseconds.
type LatencySummary struct {
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
}

// LoadReport is one load run's outcome.
type LoadReport struct {
	// Queries is the trace length; the outcome counters below partition
	// it.
	Queries    int   `json:"queries"`
	OK         int64 `json:"ok"`
	Degraded   int64 `json:"degraded"`
	BadRequest int64 `json:"bad_request"`
	Rejected   int64 `json:"rejected"`
	Overload   int64 `json:"overload"`
	Timeout    int64 `json:"timeout"`
	Failed     int64 `json:"failed"`
	// TransportErrors counts requests that never produced an HTTP
	// response (connection refused, client-side timeout).
	TransportErrors int64 `json:"transport_errors"`
	// Batches counts the /batch requests issued (0 in per-query mode);
	// the outcome counters above still partition individual queries.
	Batches int64 `json:"batches,omitempty"`

	// CacheHits/CacheMisses sum the per-response cache counters of every
	// 2xx answer.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// Elapsed is first-arrival to last-response; QPS is Queries/Elapsed —
	// achieved throughput, which under an open-loop rate only matches the
	// offered rate while the server keeps up.
	ElapsedNs int64   `json:"elapsed_ns"`
	QPS       float64 `json:"qps"`

	// Service is the request-issue → response latency distribution;
	// Sojourn additionally charges each arrival its queue wait (scheduled
	// arrival → response). In saturation mode (a trace with all arrivals
	// at 0) sojourn mostly measures the harness's own backlog — capacity
	// runs read Service, open-loop runs read Sojourn.
	Service LatencySummary `json:"service"`
	Sojourn LatencySummary `json:"sojourn"`
}

// HitRate returns CacheHits / (CacheHits + CacheMisses), or 0.
func (r *LoadReport) HitRate() float64 {
	if r.CacheHits+r.CacheMisses == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.CacheHits+r.CacheMisses)
}

// summarize reduces a latency sample to its summary. ns is consumed
// (sorted in place).
func summarize(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	pct := func(q float64) int64 {
		i := int(q*float64(len(ns))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ns) {
			i = len(ns) - 1
		}
		return ns[i]
	}
	var sum int64
	for _, v := range ns {
		sum += v
	}
	return LatencySummary{
		P50Ns:  pct(0.50),
		P95Ns:  pct(0.95),
		P99Ns:  pct(0.99),
		MaxNs:  ns[len(ns)-1],
		MeanNs: sum / int64(len(ns)),
	}
}

// RunLoad replays the trace against the server at baseURL and collects
// the report. The trace must be sorted by arrival time (ZipfTrace
// output is). RunLoad returns an error only for a malformed baseURL —
// per-request failures are counted, not fatal, because measuring how a
// server fails under load is the point.
func RunLoad(baseURL string, trace []TimedQuery, opt LoadOptions) (*LoadReport, error) {
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("serve: bad base URL %q: %w", baseURL, err)
	}
	if len(trace) == 0 {
		return &LoadReport{}, nil
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	workers := opt.Concurrency
	if workers < 1 {
		workers = 1
	}
	step := opt.Batch
	if step < 1 {
		step = 1
	}

	var mu sync.Mutex
	rep := &LoadReport{Queries: len(trace)}
	service := make([]int64, 0, len(trace))
	sojourn := make([]int64, 0, len(trace))

	// count attributes one query outcome to its counter (mu held).
	count := func(status int, degraded bool) {
		switch status {
		case http.StatusOK:
			if degraded {
				rep.Degraded++
			} else {
				rep.OK++
			}
		case http.StatusBadRequest:
			rep.BadRequest++
		case http.StatusTooManyRequests:
			rep.Rejected++
		case http.StatusGatewayTimeout:
			rep.Timeout++
		case http.StatusInternalServerError:
			rep.Failed++
		default:
			rep.Overload++
		}
	}

	// The dispatcher owns the clock: it releases each arrival (or batch
	// of consecutive arrivals, once the last member has arrived) at its
	// scheduled time into a queue deep enough to never block, so a slow
	// server cannot slow the arrival process down. Workers drain the
	// queue; an arrival's sojourn starts at its *scheduled* time whether
	// or not a worker was free then.
	jobs := make(chan int, len(trace))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lo := range jobs {
				hi := lo + step
				if hi > len(trace) {
					hi = len(trace)
				}
				issued := time.Now()
				if step == 1 {
					tq := trace[lo]
					st, hits, misses, transportErr := doQuery(client, baseURL, tq.Query)
					done := time.Now()
					mu.Lock()
					if transportErr {
						rep.TransportErrors++
					} else {
						count(st.status, st.degraded)
						if st.status == http.StatusOK {
							rep.CacheHits += int64(hits)
							rep.CacheMisses += int64(misses)
						}
					}
					service = append(service, done.Sub(issued).Nanoseconds())
					soj := done.Sub(start.Add(tq.At)).Nanoseconds()
					if soj < 0 {
						soj = 0
					}
					sojourn = append(sojourn, soj)
					mu.Unlock()
					continue
				}
				qs := make([]string, hi-lo)
				for i := lo; i < hi; i++ {
					qs[i-lo] = trace[i].Query
				}
				items, status, transportErr := doBatch(client, baseURL, qs)
				done := time.Now()
				mu.Lock()
				rep.Batches++
				for i := lo; i < hi; i++ {
					switch {
					case transportErr:
						rep.TransportErrors++
					case status != http.StatusOK || i-lo >= len(items):
						// A whole-batch rejection (e.g. a 400 naming one
						// bad query) charges every member.
						count(status, false)
					default:
						it := items[i-lo]
						if it.Error != "" {
							count(codeStatus(it.Code), false)
						} else {
							count(http.StatusOK, it.Degraded)
							rep.CacheHits += int64(it.CacheHits)
							rep.CacheMisses += int64(it.CacheMisses)
						}
					}
					service = append(service, done.Sub(issued).Nanoseconds())
					soj := done.Sub(start.Add(trace[i].At)).Nanoseconds()
					if soj < 0 {
						soj = 0
					}
					sojourn = append(sojourn, soj)
				}
				mu.Unlock()
			}
		}()
	}
	for lo := 0; lo < len(trace); lo += step {
		hi := lo + step
		if hi > len(trace) {
			hi = len(trace)
		}
		if d := time.Until(start.Add(trace[hi-1].At)); d > 0 {
			time.Sleep(d)
		}
		jobs <- lo
	}
	close(jobs)
	wg.Wait()

	rep.ElapsedNs = time.Since(start).Nanoseconds()
	if rep.ElapsedNs > 0 {
		rep.QPS = float64(rep.Queries) / (float64(rep.ElapsedNs) / float64(time.Second))
	}
	rep.Service = summarize(service)
	rep.Sojourn = summarize(sojourn)
	return rep, nil
}

// codeStatus maps a wire error code back to the HTTP status its class
// answers with — per-item batch outcomes carry only the code.
func codeStatus(code string) int {
	switch code {
	case CodeAdmissionDenied:
		return http.StatusTooManyRequests
	case CodeBudgetExceeded, CodeCancelled:
		return http.StatusServiceUnavailable
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeBadRequest, CodeBadPattern:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// doBatch issues one POST /batch and decodes the per-item outcomes.
// items is nil unless the batch answered 200.
func doBatch(client *http.Client, baseURL string, qs []string) (items []BatchItem, status int, transportErr bool) {
	body, err := json.Marshal(BatchRequest{Queries: qs})
	if err != nil {
		return nil, 0, true
	}
	resp, err := client.Post(baseURL+"/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, 0, true
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	if status == http.StatusOK {
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err == nil {
			items = br.Results
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return items, status, false
}

// queryOutcome is the slice of a response RunLoad classifies on.
type queryOutcome struct {
	status   int
	degraded bool
}

// doQuery issues one query and decodes just enough of the answer.
func doQuery(client *http.Client, baseURL, q string) (out queryOutcome, hits, misses int, transportErr bool) {
	resp, err := client.Get(baseURL + "/query?q=" + url.QueryEscape(q))
	if err != nil {
		return queryOutcome{}, 0, 0, true
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err == nil {
			out.degraded = qr.Degraded
			hits, misses = qr.CacheHits, qr.CacheMisses
		}
	} else {
		// Drain so the connection is reusable.
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return out, hits, misses, false
}

// WriteJSON encodes the report, indented, to w — the serveload CLI's
// -json output.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
