package serve

// The open-loop load harness: replay a query-arrival trace against a
// running server over real HTTP, measuring what the serving layer is
// judged by — latency percentiles at a given offered load, achieved
// throughput, cache hit rate, and how many requests were shed, degraded,
// or timed out. Open loop means arrival times come from the trace, not
// from the server: when the server lags, arrivals queue (and the queue
// wait is charged to sojourn latency) instead of the harness politely
// slowing down — the coordinated-omission mistake closed-loop harnesses
// make.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/workload"
)

// TimedQuery is one load-harness arrival: a wire-format query string and
// its scheduled offset from the run start.
type TimedQuery struct {
	At    time.Duration `json:"at_ns"`
	Query string        `json:"query"`
}

// TraceQueries renders a workload trace into wire-format timed queries,
// joining each path's label ids through the vocabulary.
func TraceQueries(tr []workload.Arrival, labels []string) ([]TimedQuery, error) {
	out := make([]TimedQuery, len(tr))
	for i, a := range tr {
		parts := make([]string, len(a.Query))
		for j, l := range a.Query {
			if l < 0 || l >= len(labels) {
				return nil, fmt.Errorf("serve: trace arrival %d label id %d outside vocabulary of %d", i, l, len(labels))
			}
			parts[j] = labels[l]
		}
		out[i] = TimedQuery{At: a.At, Query: strings.Join(parts, "/")}
	}
	return out, nil
}

// RankQueries renders a rank-only trace (workload.ZipfRankTrace) into
// timed queries over a wire-format pool — the RPQ-pattern counterpart
// of TraceQueries, since patterns are strings rather than label paths.
func RankQueries(tr []workload.Arrival, pool []string) ([]TimedQuery, error) {
	out := make([]TimedQuery, len(tr))
	for i, a := range tr {
		if a.Rank < 0 || a.Rank >= len(pool) {
			return nil, fmt.Errorf("serve: trace arrival %d rank %d outside pool of %d", i, a.Rank, len(pool))
		}
		out[i] = TimedQuery{At: a.At, Query: pool[a.Rank]}
	}
	return out, nil
}

// LoadOptions tunes one RunLoad call.
type LoadOptions struct {
	// Concurrency is the number of replayer workers — the maximum
	// in-flight requests (≥ 1; 0 selects 1). Arrivals past that queue.
	Concurrency int
	// Batch groups consecutive arrivals into POST /batch requests of
	// this size (≤ 1 issues per-query GET /query requests). A batch is
	// released once its last member has arrived, so batching trades
	// per-query latency for the server-side cache amortization the
	// batch endpoint exists for.
	Batch int
	// Client issues the requests (nil selects http.DefaultClient).
	Client *http.Client
	// Retry re-issues shed requests with capped jittered exponential
	// backoff, honoring the server's Retry-After hint (per-query mode
	// only; batch requests are never retried). Retries run on the
	// worker that owns the arrival, so the time they take is charged to
	// the original arrival's sojourn — the open-loop methodology stays
	// honest about what a retrying client actually experiences.
	Retry RetryPolicy
}

// RetryPolicy tunes the load client's handling of retryable answers —
// any response carrying a retry_after_ms hint (overload sheds, drain
// refusals).
type RetryPolicy struct {
	// Max is how many times one arrival may be re-issued (0 disables
	// retrying).
	Max int
	// Base seeds the exponential backoff: before re-issue n the client
	// waits max(server hint, Base·2^(n−1)) plus up to 50% jitter (≤ 0
	// selects 5ms).
	Base time.Duration
	// Cap bounds any single wait (≤ 0 selects 500ms).
	Cap time.Duration
	// Seed makes the jitter deterministic (each worker derives its own
	// stream from it).
	Seed int64
}

// Retry wait defaults.
const (
	defaultRetryBase = 5 * time.Millisecond
	defaultRetryCap  = 500 * time.Millisecond
)

// retryWait computes the wait before re-issue n (1-based): the larger
// of the server's hint and the exponential backoff, jittered up to
// +50%, capped.
func retryWait(rng *rand.Rand, pol RetryPolicy, attempt int, hintMs int64) time.Duration {
	base, ceil := pol.Base, pol.Cap
	if base <= 0 {
		base = defaultRetryBase
	}
	if ceil <= 0 {
		ceil = defaultRetryCap
	}
	shift := attempt - 1
	if shift > 20 {
		shift = 20 // past the cap regardless; avoid overflow
	}
	wait := base << shift
	if hint := time.Duration(hintMs) * time.Millisecond; hint > wait {
		wait = hint
	}
	wait += time.Duration(rng.Int63n(int64(wait)/2 + 1))
	if wait > ceil {
		wait = ceil
	}
	return wait
}

// LatencySummary is a latency distribution in nanoseconds.
type LatencySummary struct {
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
}

// LoadReport is one load run's outcome.
type LoadReport struct {
	// Queries is the trace length; the outcome counters below partition
	// it.
	Queries    int   `json:"queries"`
	OK         int64 `json:"ok"`
	Degraded   int64 `json:"degraded"`
	BadRequest int64 `json:"bad_request"`
	Rejected   int64 `json:"rejected"`
	Overload   int64 `json:"overload"`
	Timeout    int64 `json:"timeout"`
	Failed     int64 `json:"failed"`
	// Shed counts arrivals whose final answer was an overload shed (429
	// + code "overloaded" + Retry-After) — kept apart from Rejected,
	// the per-query cost gate, because sheds say "the server was busy"
	// while rejections say "the query was expensive".
	Shed int64 `json:"shed"`
	// DegradedBrownout counts the subset of Degraded answered with
	// degraded_by == "brownout" — load-driven estimates rather than the
	// query's own resource policy.
	DegradedBrownout int64 `json:"degraded_brownout"`
	// Retries counts re-issues (an arrival retried twice adds 2); each
	// arrival still lands in exactly one outcome counter above, for its
	// final answer.
	Retries int64 `json:"retries"`
	// TransportErrors counts requests that never produced an HTTP
	// response (connection refused, client-side timeout).
	TransportErrors int64 `json:"transport_errors"`
	// Batches counts the /batch requests issued (0 in per-query mode);
	// the outcome counters above still partition individual queries.
	Batches int64 `json:"batches,omitempty"`

	// CacheHits/CacheMisses sum the per-response cache counters of every
	// 2xx answer.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// Elapsed is first-arrival to last-response; QPS is Queries/Elapsed —
	// achieved throughput, which under an open-loop rate only matches the
	// offered rate while the server keeps up.
	ElapsedNs int64   `json:"elapsed_ns"`
	QPS       float64 `json:"qps"`

	// Service is the request-issue → response latency distribution;
	// Sojourn additionally charges each arrival its queue wait (scheduled
	// arrival → response). In saturation mode (a trace with all arrivals
	// at 0) sojourn mostly measures the harness's own backlog — capacity
	// runs read Service, open-loop runs read Sojourn. With retries
	// enabled, Service spans first issue → final response and Sojourn
	// charges every backoff wait to the original arrival.
	Service LatencySummary `json:"service"`
	Sojourn LatencySummary `json:"sojourn"`
	// SojournAccepted is the sojourn distribution of answered (2xx)
	// arrivals only — the population an overload controller promises a
	// bounded experience to; shed and failed arrivals are excluded here
	// and visible in the counters instead.
	SojournAccepted LatencySummary `json:"sojourn_accepted"`
}

// HitRate returns CacheHits / (CacheHits + CacheMisses), or 0.
func (r *LoadReport) HitRate() float64 {
	if r.CacheHits+r.CacheMisses == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.CacheHits+r.CacheMisses)
}

// summarize reduces a latency sample to its summary. ns is consumed
// (sorted in place).
func summarize(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	pct := func(q float64) int64 {
		i := int(q*float64(len(ns))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ns) {
			i = len(ns) - 1
		}
		return ns[i]
	}
	var sum int64
	for _, v := range ns {
		sum += v
	}
	return LatencySummary{
		P50Ns:  pct(0.50),
		P95Ns:  pct(0.95),
		P99Ns:  pct(0.99),
		MaxNs:  ns[len(ns)-1],
		MeanNs: sum / int64(len(ns)),
	}
}

// RunLoad replays the trace against the server at baseURL and collects
// the report. The trace must be sorted by arrival time (ZipfTrace
// output is). RunLoad returns an error only for a malformed baseURL —
// per-request failures are counted, not fatal, because measuring how a
// server fails under load is the point.
func RunLoad(baseURL string, trace []TimedQuery, opt LoadOptions) (*LoadReport, error) {
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("serve: bad base URL %q: %w", baseURL, err)
	}
	if len(trace) == 0 {
		return &LoadReport{}, nil
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	workers := opt.Concurrency
	if workers < 1 {
		workers = 1
	}
	step := opt.Batch
	if step < 1 {
		step = 1
	}

	var mu sync.Mutex
	rep := &LoadReport{Queries: len(trace)}
	service := make([]int64, 0, len(trace))
	sojourn := make([]int64, 0, len(trace))
	sojournAccepted := make([]int64, 0, len(trace))

	// count attributes one query's final outcome to its counter (mu
	// held). The wire code splits the 429s: "overloaded" is a shed,
	// anything else the per-query cost rejection.
	count := func(out queryOutcome) {
		switch {
		case out.status == http.StatusOK && out.degraded:
			rep.Degraded++
			if out.degradedBy == CodeBrownout {
				rep.DegradedBrownout++
			}
		case out.status == http.StatusOK:
			rep.OK++
		case out.status == http.StatusBadRequest:
			rep.BadRequest++
		case out.status == http.StatusTooManyRequests && out.code == CodeOverloaded:
			rep.Shed++
		case out.status == http.StatusTooManyRequests:
			rep.Rejected++
		case out.status == http.StatusGatewayTimeout:
			rep.Timeout++
		case out.status == http.StatusInternalServerError:
			rep.Failed++
		default:
			rep.Overload++
		}
	}

	// The dispatcher owns the clock: it releases each arrival (or batch
	// of consecutive arrivals, once the last member has arrived) at its
	// scheduled time into a queue deep enough to never block, so a slow
	// server cannot slow the arrival process down. Workers drain the
	// queue; an arrival's sojourn starts at its *scheduled* time whether
	// or not a worker was free then.
	jobs := make(chan int, len(trace))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		rng := rand.New(rand.NewSource(opt.Retry.Seed + int64(w)*0x9e3779b9 + 1))
		go func() {
			defer wg.Done()
			for lo := range jobs {
				hi := lo + step
				if hi > len(trace) {
					hi = len(trace)
				}
				issued := time.Now()
				if step == 1 {
					tq := trace[lo]
					// Issue, then re-issue while the server hints a retry
					// wait (overload sheds, drain refusals) and the budget
					// lasts. The worker stays occupied through the backoff,
					// so the retries' cost lands where it belongs: on this
					// arrival's sojourn and on the harness's capacity to
					// absorb the next arrivals.
					out, hits, misses, transportErr := doQuery(client, baseURL, tq.Query)
					for attempt := 1; attempt <= opt.Retry.Max && !transportErr && out.retryAfterMs > 0; attempt++ {
						time.Sleep(retryWait(rng, opt.Retry, attempt, out.retryAfterMs))
						mu.Lock()
						rep.Retries++
						mu.Unlock()
						out, hits, misses, transportErr = doQuery(client, baseURL, tq.Query)
					}
					done := time.Now()
					mu.Lock()
					if transportErr {
						rep.TransportErrors++
					} else {
						count(out)
						if out.status == http.StatusOK {
							rep.CacheHits += int64(hits)
							rep.CacheMisses += int64(misses)
						}
					}
					service = append(service, done.Sub(issued).Nanoseconds())
					soj := done.Sub(start.Add(tq.At)).Nanoseconds()
					if soj < 0 {
						soj = 0
					}
					sojourn = append(sojourn, soj)
					if !transportErr && out.status == http.StatusOK {
						sojournAccepted = append(sojournAccepted, soj)
					}
					mu.Unlock()
					continue
				}
				qs := make([]string, hi-lo)
				for i := lo; i < hi; i++ {
					qs[i-lo] = trace[i].Query
				}
				items, status, code, transportErr := doBatch(client, baseURL, qs)
				done := time.Now()
				mu.Lock()
				rep.Batches++
				for i := lo; i < hi; i++ {
					accepted := false
					switch {
					case transportErr:
						rep.TransportErrors++
					case status != http.StatusOK || i-lo >= len(items):
						// A whole-batch rejection (e.g. a 400 naming one
						// bad query, or a shed of the whole batch) charges
						// every member.
						count(queryOutcome{status: status, code: code})
					default:
						it := items[i-lo]
						if it.Error != "" {
							count(queryOutcome{status: codeStatus(it.Code), code: it.Code})
						} else {
							count(queryOutcome{status: http.StatusOK, degraded: it.Degraded, degradedBy: it.DegradedBy})
							rep.CacheHits += int64(it.CacheHits)
							rep.CacheMisses += int64(it.CacheMisses)
							accepted = true
						}
					}
					service = append(service, done.Sub(issued).Nanoseconds())
					soj := done.Sub(start.Add(trace[i].At)).Nanoseconds()
					if soj < 0 {
						soj = 0
					}
					sojourn = append(sojourn, soj)
					if accepted {
						sojournAccepted = append(sojournAccepted, soj)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for lo := 0; lo < len(trace); lo += step {
		hi := lo + step
		if hi > len(trace) {
			hi = len(trace)
		}
		if d := time.Until(start.Add(trace[hi-1].At)); d > 0 {
			time.Sleep(d)
		}
		jobs <- lo
	}
	close(jobs)
	wg.Wait()

	rep.ElapsedNs = time.Since(start).Nanoseconds()
	if rep.ElapsedNs > 0 {
		rep.QPS = float64(rep.Queries) / (float64(rep.ElapsedNs) / float64(time.Second))
	}
	rep.Service = summarize(service)
	rep.Sojourn = summarize(sojourn)
	rep.SojournAccepted = summarize(sojournAccepted)
	return rep, nil
}

// codeStatus maps a wire error code back to the HTTP status its class
// answers with — per-item batch outcomes carry only the code.
func codeStatus(code string) int {
	switch code {
	case CodeAdmissionDenied, CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeBudgetExceeded, CodeCancelled, CodeDraining:
		return http.StatusServiceUnavailable
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeBadRequest, CodeBadPattern:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// doBatch issues one POST /batch and decodes the per-item outcomes.
// items is nil unless the batch answered 200; code carries the wire
// error class of a whole-batch refusal.
func doBatch(client *http.Client, baseURL string, qs []string) (items []BatchItem, status int, code string, transportErr bool) {
	body, err := json.Marshal(BatchRequest{Queries: qs})
	if err != nil {
		return nil, 0, "", true
	}
	resp, err := client.Post(baseURL+"/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, 0, "", true
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	if status == http.StatusOK {
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err == nil {
			items = br.Results
		}
	} else {
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err == nil {
			code = er.Code
		}
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return items, status, code, false
}

// queryOutcome is the slice of a response RunLoad classifies on.
type queryOutcome struct {
	status     int
	degraded   bool
	degradedBy string
	// code is the wire error class of a non-2xx answer; retryAfterMs is
	// the server's capacity hint when it sent one — nonzero marks the
	// answer retryable.
	code         string
	retryAfterMs int64
}

// doQuery issues one query and decodes just enough of the answer.
func doQuery(client *http.Client, baseURL, q string) (out queryOutcome, hits, misses int, transportErr bool) {
	resp, err := client.Get(baseURL + "/query?q=" + url.QueryEscape(q))
	if err != nil {
		return queryOutcome{}, 0, 0, true
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err == nil {
			out.degraded = qr.Degraded
			out.degradedBy = qr.DegradedBy
			hits, misses = qr.CacheHits, qr.CacheMisses
		}
	} else {
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err == nil {
			out.code = er.Code
			out.retryAfterMs = er.RetryAfterMs
		}
		// Drain so the connection is reusable.
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return out, hits, misses, false
}

// WriteJSON encodes the report, indented, to w — the serveload CLI's
// -json output.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
