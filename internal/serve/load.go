package serve

// The open-loop load harness: replay a query-arrival trace against a
// running server over real HTTP, measuring what the serving layer is
// judged by — latency percentiles at a given offered load, achieved
// throughput, cache hit rate, and how many requests were shed, degraded,
// or timed out. Open loop means arrival times come from the trace, not
// from the server: when the server lags, arrivals queue (and the queue
// wait is charged to sojourn latency) instead of the harness politely
// slowing down — the coordinated-omission mistake closed-loop harnesses
// make.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/workload"
)

// TimedQuery is one load-harness arrival: a wire-format query string and
// its scheduled offset from the run start.
type TimedQuery struct {
	At    time.Duration `json:"at_ns"`
	Query string        `json:"query"`
}

// TraceQueries renders a workload trace into wire-format timed queries,
// joining each path's label ids through the vocabulary.
func TraceQueries(tr []workload.Arrival, labels []string) ([]TimedQuery, error) {
	out := make([]TimedQuery, len(tr))
	for i, a := range tr {
		parts := make([]string, len(a.Query))
		for j, l := range a.Query {
			if l < 0 || l >= len(labels) {
				return nil, fmt.Errorf("serve: trace arrival %d label id %d outside vocabulary of %d", i, l, len(labels))
			}
			parts[j] = labels[l]
		}
		out[i] = TimedQuery{At: a.At, Query: strings.Join(parts, "/")}
	}
	return out, nil
}

// LoadOptions tunes one RunLoad call.
type LoadOptions struct {
	// Concurrency is the number of replayer workers — the maximum
	// in-flight requests (≥ 1; 0 selects 1). Arrivals past that queue.
	Concurrency int
	// Client issues the requests (nil selects http.DefaultClient).
	Client *http.Client
}

// LatencySummary is a latency distribution in nanoseconds.
type LatencySummary struct {
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
}

// LoadReport is one load run's outcome.
type LoadReport struct {
	// Queries is the trace length; the outcome counters below partition
	// it.
	Queries    int   `json:"queries"`
	OK         int64 `json:"ok"`
	Degraded   int64 `json:"degraded"`
	BadRequest int64 `json:"bad_request"`
	Rejected   int64 `json:"rejected"`
	Overload   int64 `json:"overload"`
	Timeout    int64 `json:"timeout"`
	Failed     int64 `json:"failed"`
	// TransportErrors counts requests that never produced an HTTP
	// response (connection refused, client-side timeout).
	TransportErrors int64 `json:"transport_errors"`

	// CacheHits/CacheMisses sum the per-response cache counters of every
	// 2xx answer.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// Elapsed is first-arrival to last-response; QPS is Queries/Elapsed —
	// achieved throughput, which under an open-loop rate only matches the
	// offered rate while the server keeps up.
	ElapsedNs int64   `json:"elapsed_ns"`
	QPS       float64 `json:"qps"`

	// Service is the request-issue → response latency distribution;
	// Sojourn additionally charges each arrival its queue wait (scheduled
	// arrival → response). In saturation mode (a trace with all arrivals
	// at 0) sojourn mostly measures the harness's own backlog — capacity
	// runs read Service, open-loop runs read Sojourn.
	Service LatencySummary `json:"service"`
	Sojourn LatencySummary `json:"sojourn"`
}

// HitRate returns CacheHits / (CacheHits + CacheMisses), or 0.
func (r *LoadReport) HitRate() float64 {
	if r.CacheHits+r.CacheMisses == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.CacheHits+r.CacheMisses)
}

// summarize reduces a latency sample to its summary. ns is consumed
// (sorted in place).
func summarize(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	pct := func(q float64) int64 {
		i := int(q*float64(len(ns))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ns) {
			i = len(ns) - 1
		}
		return ns[i]
	}
	var sum int64
	for _, v := range ns {
		sum += v
	}
	return LatencySummary{
		P50Ns:  pct(0.50),
		P95Ns:  pct(0.95),
		P99Ns:  pct(0.99),
		MaxNs:  ns[len(ns)-1],
		MeanNs: sum / int64(len(ns)),
	}
}

// RunLoad replays the trace against the server at baseURL and collects
// the report. The trace must be sorted by arrival time (ZipfTrace
// output is). RunLoad returns an error only for a malformed baseURL —
// per-request failures are counted, not fatal, because measuring how a
// server fails under load is the point.
func RunLoad(baseURL string, trace []TimedQuery, opt LoadOptions) (*LoadReport, error) {
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("serve: bad base URL %q: %w", baseURL, err)
	}
	if len(trace) == 0 {
		return &LoadReport{}, nil
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	workers := opt.Concurrency
	if workers < 1 {
		workers = 1
	}

	var mu sync.Mutex
	rep := &LoadReport{Queries: len(trace)}
	service := make([]int64, 0, len(trace))
	sojourn := make([]int64, 0, len(trace))

	// The dispatcher owns the clock: it releases each arrival at its
	// scheduled time into a queue deep enough to never block, so a slow
	// server cannot slow the arrival process down. Workers drain the
	// queue; an arrival's sojourn starts at its *scheduled* time whether
	// or not a worker was free then.
	jobs := make(chan int, len(trace))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				tq := trace[i]
				issued := time.Now()
				st, hits, misses, transportErr := doQuery(client, baseURL, tq.Query)
				done := time.Now()
				mu.Lock()
				if transportErr {
					rep.TransportErrors++
				} else {
					switch st.status {
					case http.StatusOK:
						if st.degraded {
							rep.Degraded++
						} else {
							rep.OK++
						}
						rep.CacheHits += int64(hits)
						rep.CacheMisses += int64(misses)
					case http.StatusBadRequest:
						rep.BadRequest++
					case http.StatusTooManyRequests:
						rep.Rejected++
					case http.StatusGatewayTimeout:
						rep.Timeout++
					case http.StatusInternalServerError:
						rep.Failed++
					default:
						rep.Overload++
					}
				}
				service = append(service, done.Sub(issued).Nanoseconds())
				soj := done.Sub(start.Add(tq.At)).Nanoseconds()
				if soj < 0 {
					soj = 0
				}
				sojourn = append(sojourn, soj)
				mu.Unlock()
			}
		}()
	}
	for i, tq := range trace {
		if d := time.Until(start.Add(tq.At)); d > 0 {
			time.Sleep(d)
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep.ElapsedNs = time.Since(start).Nanoseconds()
	if rep.ElapsedNs > 0 {
		rep.QPS = float64(rep.Queries) / (float64(rep.ElapsedNs) / float64(time.Second))
	}
	rep.Service = summarize(service)
	rep.Sojourn = summarize(sojourn)
	return rep, nil
}

// queryOutcome is the slice of a response RunLoad classifies on.
type queryOutcome struct {
	status   int
	degraded bool
}

// doQuery issues one query and decodes just enough of the answer.
func doQuery(client *http.Client, baseURL, q string) (out queryOutcome, hits, misses int, transportErr bool) {
	resp, err := client.Get(baseURL + "/query?q=" + url.QueryEscape(q))
	if err != nil {
		return queryOutcome{}, 0, 0, true
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err == nil {
			out.degraded = qr.Degraded
			hits, misses = qr.CacheHits, qr.CacheMisses
		}
	} else {
		// Drain so the connection is reusable.
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return out, hits, misses, false
}

// WriteJSON encodes the report, indented, to w — the serveload CLI's
// -json output.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
