package serve

// Overload-control suite: the 429-vs-degraded-vs-503 wire contract for
// every outcome path (including mid-drain), shed/brownout/retry cycles
// under bursty load with fault injection, brownout escalation and
// recovery, and the leak-hygiene criterion across 100 overload cycles.

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/workload"
	"repro/pathsel"
)

// newOverloadServer is newTestServer with the overload controller
// enabled.
func newOverloadServer(t testing.TB, cfg pathsel.Config, oc OverloadConfig) (*pathsel.Graph, *Server, *httptest.Server) {
	t.Helper()
	g := testGraph(t, 11, 40, 3, 300)
	if cfg.MaxPathLength == 0 {
		cfg.MaxPathLength = 3
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 16
	}
	est, err := pathsel.Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(est, Options{Overload: &oc})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return g, srv, ts
}

// burstyTrace builds an ON/OFF bursty arrival trace over the standard
// label vocabulary.
func burstyTrace(t testing.TB, labels []string, n int, rate float64, seed int64) []TimedQuery {
	t.Helper()
	pool, err := workload.QueryPool(len(labels), 3, 16, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ZipfTrace(workload.TraceOptions{
		Pool: pool, Rate: rate, N: n, Seed: seed,
		Arrival: workload.ArrivalOnOff, OnDur: 20 * time.Millisecond, OffDur: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tq, err := TraceQueries(tr, labels)
	if err != nil {
		t.Fatal(err)
	}
	return tq
}

// getWire fetches a URL and returns status, decoded bodies, and whether
// a Retry-After header was present.
func getWire(t *testing.T, url string) (status int, qr QueryResponse, er ErrorResponse, retryAfter bool) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	retryAfter = resp.Header.Get("Retry-After") != ""
	if status == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	} else if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("GET %s: decoding error body: %v", url, err)
	}
	return status, qr, er, retryAfter
}

// TestOverloadWireContract pins status code, wire code, and Retry-After
// presence for every outcome path the overload layer can answer with —
// including requests arriving mid-drain.
func TestOverloadWireContract(t *testing.T) {
	// An inert controller config: ticks effectively never fire, so
	// pre-seeded limiter state stays put for the duration of a case.
	inert := OverloadConfig{MaxInFlight: 2, QueueLimit: 2, QueueTimeout: 50 * time.Millisecond, TickEvery: time.Hour}

	t.Run("ok exact", func(t *testing.T) {
		g, _, ts := newOverloadServer(t, pathsel.Config{}, inert)
		want, err := g.TrueSelectivity("a/b")
		if err != nil {
			t.Fatal(err)
		}
		st, qr, _, ra := getWire(t, ts.URL+"/query?q=a/b")
		if st != http.StatusOK || qr.Degraded || ra {
			t.Fatalf("status %d degraded %v retry-after %v, want plain 200", st, qr.Degraded, ra)
		}
		if qr.Result != want {
			t.Fatalf("result %d, want %d", qr.Result, want)
		}
	})

	t.Run("degraded by admission", func(t *testing.T) {
		_, _, ts := newOverloadServer(t, pathsel.Config{MaxPlanCost: 1e-12, DegradeToEstimate: true}, inert)
		st, qr, _, ra := getWire(t, ts.URL+"/query?q=a/b")
		if st != http.StatusOK || !qr.Degraded || qr.DegradedBy != CodeAdmissionDenied || ra {
			t.Fatalf("status %d body %+v retry-after %v, want degraded 200 by %q", st, qr, ra, CodeAdmissionDenied)
		}
	})

	t.Run("degraded by brownout", func(t *testing.T) {
		_, srv, ts := newOverloadServer(t, pathsel.Config{}, OverloadConfig{
			MaxInFlight: 2, Brownout: true, TickEvery: time.Hour,
		})
		// Pre-seed the deepest tier: any query with join cost degrades.
		srv.lim.mu.Lock()
		srv.lim.tier = maxBrownoutTier
		srv.lim.costThreshold = 1e-12
		srv.lim.mu.Unlock()
		st, qr, _, ra := getWire(t, ts.URL+"/query?q=a/b")
		if st != http.StatusOK || !qr.Degraded || qr.DegradedBy != CodeBrownout || ra {
			t.Fatalf("status %d body %+v retry-after %v, want degraded 200 by %q", st, qr, ra, CodeBrownout)
		}
		if qr.Work != 0 {
			t.Fatalf("brownout answer did graph work: %+v", qr)
		}
		if c := srv.Counters(); c.BrownoutDegraded != 1 || c.Degraded != 1 {
			t.Fatalf("counters %+v, want one brownout-degraded", c)
		}
	})

	t.Run("cost rejection keeps admission_denied without retry-after", func(t *testing.T) {
		_, _, ts := newOverloadServer(t, pathsel.Config{MaxPlanCost: 1e-12}, inert)
		st, _, er, ra := getWire(t, ts.URL+"/query?q=a/b")
		if st != http.StatusTooManyRequests || er.Code != CodeAdmissionDenied || ra || er.RetryAfterMs != 0 {
			t.Fatalf("status %d code %q retry-after %v/%d, want plain 429 %q",
				st, er.Code, ra, er.RetryAfterMs, CodeAdmissionDenied)
		}
	})

	t.Run("shed on full queue", func(t *testing.T) {
		_, srv, ts := newOverloadServer(t, pathsel.Config{}, inert)
		// Pre-seed saturation: every slot busy, queue at its limit.
		srv.lim.mu.Lock()
		srv.lim.inFlight = srv.lim.limit
		for i := 0; i < srv.lim.cfg.QueueLimit; i++ {
			srv.lim.queue = append(srv.lim.queue, &waiter{ready: make(chan struct{})})
		}
		srv.lim.mu.Unlock()
		st, _, er, ra := getWire(t, ts.URL+"/query?q=a/b")
		if st != http.StatusTooManyRequests || er.Code != CodeOverloaded {
			t.Fatalf("status %d code %q, want 429 %q", st, er.Code, CodeOverloaded)
		}
		if !ra || er.RetryAfterMs < 1 {
			t.Fatalf("shed without a usable hint: header %v, retry_after_ms %d", ra, er.RetryAfterMs)
		}
		if c := srv.Counters(); c.Shed != 1 || c.Rejected != 0 {
			t.Fatalf("counters %+v, want exactly one shed", c)
		}
	})

	t.Run("queued request served when capacity frees", func(t *testing.T) {
		g, _, ts := newOverloadServer(t, pathsel.Config{}, OverloadConfig{
			MaxInFlight: 1, QueueLimit: 4, QueueTimeout: 2 * time.Second, TickEvery: time.Hour,
		})
		faultinject.Install(faultinject.NewInjector(
			faultinject.Rule{Site: "exec.step", Count: 1, Action: faultinject.ActDelay, Delay: 60 * time.Millisecond},
		))
		t.Cleanup(faultinject.Uninstall)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?q=a/b/c") // occupies the only slot
			if err == nil {
				resp.Body.Close()
			}
		}()
		time.Sleep(20 * time.Millisecond) // let the slow query take the slot
		want, err := g.TrueSelectivity("b/a")
		if err != nil {
			t.Fatal(err)
		}
		st, qr, _, _ := getWire(t, ts.URL+"/query?q=b/a")
		wg.Wait()
		if st != http.StatusOK || qr.Result != want {
			t.Fatalf("queued query: status %d result %d, want 200/%d", st, qr.Result, want)
		}
	})

	t.Run("draining refuses with retry-after", func(t *testing.T) {
		for _, withController := range []bool{true, false} {
			name := map[bool]string{true: "controller", false: "bare"}[withController]
			var srv *Server
			var ts *httptest.Server
			if withController {
				_, srv, ts = newOverloadServer(t, pathsel.Config{}, inert)
			} else {
				_, srv, ts = newTestServer(t, pathsel.Config{})
			}
			srv.StartDrain()
			st, _, er, ra := getWire(t, ts.URL+"/query?q=a/b")
			if st != http.StatusServiceUnavailable || er.Code != CodeDraining || !ra || er.RetryAfterMs < 1 {
				t.Fatalf("%s mid-drain: status %d code %q retry-after %v/%d, want 503 %q with hints",
					name, st, er.Code, ra, er.RetryAfterMs, CodeDraining)
			}
			var body map[string]any
			if hst := getJSON(t, ts.URL+"/healthz", &body); hst != http.StatusServiceUnavailable || body["status"] != "draining" {
				t.Fatalf("%s mid-drain healthz: status %d body %v, want 503 draining", name, hst, body)
			}
		}
	})

	t.Run("deadline still 504", func(t *testing.T) {
		_, _, ts := newOverloadServer(t, pathsel.Config{QueryTimeout: time.Nanosecond}, inert)
		st, _, er, ra := getWire(t, ts.URL+"/query?q=a/b/c")
		if st != http.StatusGatewayTimeout || er.Code != CodeDeadline || ra {
			t.Fatalf("status %d code %q retry-after %v, want plain 504 %q", st, er.Code, ra, CodeDeadline)
		}
	})

	t.Run("admit-site panic contained as 500", func(t *testing.T) {
		_, srv, ts := newOverloadServer(t, pathsel.Config{}, inert)
		faultinject.Install(faultinject.NewInjector(
			faultinject.Rule{Site: "serve.admit", Count: 1, Action: faultinject.ActPanic},
		))
		t.Cleanup(faultinject.Uninstall)
		st, _, er, _ := getWire(t, ts.URL+"/query?q=a/b")
		if st != http.StatusInternalServerError || er.Code != CodeExecutionFailed {
			t.Fatalf("status %d code %q, want typed 500 %q — a severed connection means the panic escaped",
				st, er.Code, CodeExecutionFailed)
		}
		faultinject.Uninstall()
		// The slot accounting must survive the contained panic.
		st, _, _, _ = getWire(t, ts.URL+"/query?q=a/b")
		if st != http.StatusOK {
			t.Fatalf("follow-up query status %d, want 200", st)
		}
		if c := srv.Counters(); c.InFlight != 0 {
			t.Fatalf("in-flight %d after contained panic", c.InFlight)
		}
	})
}

// loadPartition asserts the report's outcome counters exactly partition
// the trace.
func loadPartition(t *testing.T, rep *LoadReport) {
	t.Helper()
	sum := rep.OK + rep.Degraded + rep.BadRequest + rep.Rejected + rep.Shed +
		rep.Overload + rep.Timeout + rep.Failed + rep.TransportErrors
	if sum != int64(rep.Queries) {
		t.Fatalf("outcomes sum to %d, want %d: %+v", sum, rep.Queries, rep)
	}
}

// TestOverloadShedsUnderBurst saturates a 1-slot server with slow
// (jitter-delayed) queries and pins: sheds happen and carry usable
// hints, the retrying client's accounting partitions the trace, no
// connection is dropped, and shed requests never held execution
// capacity (peak in-flight stays at the limit).
func TestOverloadShedsUnderBurst(t *testing.T) {
	g, srv, ts := newOverloadServer(t, pathsel.Config{}, OverloadConfig{
		MaxInFlight: 1, QueueLimit: 2, QueueTimeout: 5 * time.Millisecond, TickEvery: 5 * time.Millisecond,
	})
	faultinject.Install(faultinject.NewInjector(
		faultinject.Rule{Site: "exec.step", Count: 0, Action: faultinject.ActDelay,
			Delay: 10 * time.Millisecond, Jitter: 10 * time.Millisecond},
	))
	t.Cleanup(faultinject.Uninstall)

	trace := buildTrace(t, g.Labels(), 60, 0, 29) // saturation: all arrivals at once
	rep, err := RunLoad(ts.URL, trace, LoadOptions{
		Concurrency: 16,
		Retry:       RetryPolicy{Max: 2, Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	loadPartition(t, rep)
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors under overload — sheds must be clean responses: %+v", rep.TransportErrors, rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("no sheds despite 16-way saturation of a 1-slot queue-2 server: %+v", rep)
	}
	if rep.Retries == 0 {
		t.Fatalf("retrying client never retried despite %d sheds: %+v", rep.Shed, rep)
	}
	if rep.OK+rep.Degraded == 0 {
		t.Fatalf("nothing was served at all: %+v", rep)
	}

	var stats StatsResponse
	if st := getJSON(t, ts.URL+"/stats", &stats); st != http.StatusOK || stats.Overload == nil {
		t.Fatalf("/stats status %d overload %v, want populated overload section", st, stats.Overload)
	}
	ov := stats.Overload
	if ov.PeakInFlight > 1 {
		t.Fatalf("peak in-flight %d above the limit 1 — queued or shed requests held execution capacity", ov.PeakInFlight)
	}
	if ov.Shed != srv.Counters().Shed || ov.Shed == 0 {
		t.Fatalf("stats shed %d vs counters %d, want equal and nonzero", ov.Shed, srv.Counters().Shed)
	}
	if c := srv.Counters(); c.InFlight != 0 {
		t.Fatalf("in-flight %d after quiescence", c.InFlight)
	}
}

// TestBrownoutEscalatesAndRecovers drives sustained shed pressure until
// the brownout tier escalates, then removes the pressure and pins the
// recovery criterion: the tier de-escalates to 0, the queue drains,
// /healthz returns to 200, and a paced follow-up run is served cleanly
// and exactly.
func TestBrownoutEscalatesAndRecovers(t *testing.T) {
	g, _, ts := newOverloadServer(t, pathsel.Config{}, OverloadConfig{
		MaxInFlight: 1, QueueLimit: 2, QueueTimeout: 2 * time.Millisecond,
		Brownout: true, TickEvery: 5 * time.Millisecond, BrownoutUp: 1, BrownoutDown: 2,
	})
	faultinject.Install(faultinject.NewInjector(
		faultinject.Rule{Site: "exec.step", Count: 0, Action: faultinject.ActDelay,
			Delay: 8 * time.Millisecond, Jitter: 8 * time.Millisecond},
	))
	t.Cleanup(faultinject.Uninstall)

	// Pressure phase: concurrent slow load until the tier escalates.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qs := []string{"a/b/c", "b/a", "c/b/a", "a/c"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/query?q=" + qs[(i+w)%len(qs)])
				if err == nil {
					resp.Body.Close()
				}
			}
		}(w)
	}
	escalated := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var stats StatsResponse
		getJSON(t, ts.URL+"/stats", &stats)
		if stats.Overload != nil && stats.Overload.BrownoutTier > 0 {
			escalated = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !escalated {
		t.Fatal("brownout tier never escalated under sustained shed pressure")
	}

	// Recovery phase: pressure and faults gone, the tier must fall back
	// to 0 and the queue drain (stats reads advance the controller).
	faultinject.Uninstall()
	deadline = time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		var stats StatsResponse
		getJSON(t, ts.URL+"/stats", &stats)
		if ov := stats.Overload; ov != nil && ov.BrownoutTier == 0 && ov.QueueDepth == 0 && ov.InFlight == 0 {
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		var stats StatsResponse
		getJSON(t, ts.URL+"/stats", &stats)
		t.Fatalf("brownout did not de-escalate after pressure cleared: %+v", stats.Overload)
	}
	if st := getJSON(t, ts.URL+"/healthz", nil); st != http.StatusOK {
		t.Fatalf("healthz %d after recovery, want 200", st)
	}

	// Clean paced run: every answer exact and undegraded. One worker so
	// the fast path always has a free slot — the service-time EWMA is
	// still polluted by the chaos phase and would shed colliding
	// arrivals against the 2ms queue budget.
	trace := burstyTrace(t, g.Labels(), 30, 400, 31)
	rep, err := RunLoad(ts.URL, trace, LoadOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	loadPartition(t, rep)
	if rep.OK != int64(rep.Queries) {
		t.Fatalf("post-recovery run not clean: %+v", rep)
	}
	for _, q := range []string{"a/b", "b/c/a", "c/a"} {
		want, err := g.TrueSelectivity(q)
		if err != nil {
			t.Fatal(err)
		}
		st, qr, _, _ := getWire(t, ts.URL+"/query?q="+q)
		if st != http.StatusOK || qr.Degraded || qr.Result != want {
			t.Fatalf("post-recovery %q: status %d %+v, want exact %d", q, st, qr, want)
		}
	}
}

// TestOverloadCyclesLeakFree runs 100 shed/brownout/retry cycles against
// one server and pins the leak criteria: goroutines return to baseline,
// nothing stays in flight or queued, and every non-degraded answer stays
// bit-identical to the ground truth afterwards.
func TestOverloadCyclesLeakFree(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		g, srv, ts := newOverloadServer(t, pathsel.Config{}, OverloadConfig{
			MaxInFlight: 1, QueueLimit: 2, QueueTimeout: time.Millisecond,
			Brownout: true, TickEvery: 2 * time.Millisecond, BrownoutUp: 1, BrownoutDown: 1,
		})
		faultinject.Install(faultinject.NewInjector(
			faultinject.Rule{Site: "exec.step", Count: 0, Action: faultinject.ActDelay,
				Delay: time.Millisecond, Jitter: 2 * time.Millisecond},
		))
		defer faultinject.Uninstall()

		qs := []string{"a/b/c", "b/a", "c/b/a", "a/c", "b/c", "a/b"}
		client := &http.Client{}
		for cycle := 0; cycle < 100; cycle++ {
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// One retry per request, honoring the server hint —
					// each cycle mixes served, shed, degraded, and retried
					// outcomes.
					for attempt := 0; attempt < 2; attempt++ {
						out, _, _, transportErr := doQuery(client, ts.URL, qs[(cycle+w)%len(qs)])
						if transportErr {
							t.Errorf("cycle %d: transport error", cycle)
							return
						}
						if out.retryAfterMs == 0 {
							return
						}
						time.Sleep(time.Duration(out.retryAfterMs) * time.Millisecond)
					}
				}(w)
			}
			wg.Wait()
		}
		faultinject.Uninstall()

		// Post-chaos: exactness and drained controller state.
		for _, q := range []string{"a/b", "b/c/a"} {
			want, err := g.TrueSelectivity(q)
			if err != nil {
				t.Fatal(err)
			}
			// Brownout may still be escalated right after the cycles; poll
			// until the controller has relaxed enough to answer exactly.
			deadline := time.Now().Add(5 * time.Second)
			for {
				st, qr, _, _ := getWire(t, ts.URL+"/query?q="+q)
				if st == http.StatusOK && !qr.Degraded {
					if qr.Result != want {
						t.Fatalf("post-cycles %q: result %d, want %d — overload cycles corrupted state", q, qr.Result, want)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("post-cycles %q: no exact answer before deadline (status %d)", q, st)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		var stats StatsResponse
		getJSON(t, ts.URL+"/stats", &stats)
		if ov := stats.Overload; ov == nil || ov.InFlight != 0 || ov.QueueDepth != 0 {
			t.Fatalf("controller not drained after cycles: %+v", stats.Overload)
		}
		if ov := stats.Overload; ov.Shed == 0 && ov.BrownoutDegraded == 0 {
			t.Fatalf("100 cycles produced neither sheds nor brownout degrades — the test exercised nothing: %+v", ov)
		}
		if c := srv.Counters(); c.InFlight != 0 {
			t.Fatalf("in-flight %d after cycles", c.InFlight)
		}
		ts.Close()
		client.CloseIdleConnections()
		http.DefaultClient.CloseIdleConnections()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count %d did not return to baseline %d after overload cycles",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchShedsAsOneUnit pins that a /batch occupies a single slot and
// is shed wholesale with the overloaded code when the queue is full.
func TestBatchShedsAsOneUnit(t *testing.T) {
	_, srv, ts := newOverloadServer(t, pathsel.Config{}, OverloadConfig{
		MaxInFlight: 1, QueueLimit: 1, QueueTimeout: 10 * time.Millisecond, TickEvery: time.Hour,
	})
	srv.lim.mu.Lock()
	srv.lim.inFlight = srv.lim.limit
	srv.lim.queue = append(srv.lim.queue, &waiter{ready: make(chan struct{})})
	srv.lim.mu.Unlock()
	items, status, code, transportErr := doBatch(http.DefaultClient, ts.URL, []string{"a/b", "b/c"})
	if transportErr {
		t.Fatal("transport error on shed batch")
	}
	if status != http.StatusTooManyRequests || code != CodeOverloaded || items != nil {
		t.Fatalf("batch shed: status %d code %q items %v, want 429 %q", status, code, items, CodeOverloaded)
	}
}

// TestRetryWaitContract pins the client backoff: the wait honors the
// server hint, grows exponentially from Base, and never exceeds Cap.
func TestRetryWaitContract(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pol := RetryPolicy{Max: 3, Base: 2 * time.Millisecond, Cap: 40 * time.Millisecond}
	if w := retryWait(rng, pol, 1, 20); w < 20*time.Millisecond {
		t.Fatalf("wait %v ignored a 20ms server hint", w)
	}
	if w := retryWait(rng, pol, 3, 0); w < 8*time.Millisecond {
		t.Fatalf("attempt-3 wait %v below exponential floor 8ms", w)
	}
	for attempt := 1; attempt < 30; attempt++ {
		if w := retryWait(rng, pol, attempt, 1000); w > pol.Cap {
			t.Fatalf("attempt-%d wait %v exceeds cap %v", attempt, w, pol.Cap)
		}
	}
}
