package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/pathsel"
)

// testGraph builds a random labeled graph through the public facade.
func testGraph(t testing.TB, seed int64, vertices, labels, edges int) *pathsel.Graph {
	t.Helper()
	names := make([]string, labels)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	g := pathsel.NewGraph(vertices, names)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < edges; i++ {
		if _, err := g.AddEdge(rng.Intn(vertices), names[rng.Intn(labels)], rng.Intn(vertices)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// newTestServer builds an estimator over a standard small graph and
// stands a Server up behind httptest.
func newTestServer(t testing.TB, cfg pathsel.Config) (*pathsel.Graph, *Server, *httptest.Server) {
	t.Helper()
	g := testGraph(t, 11, 40, 3, 300)
	if cfg.MaxPathLength == 0 {
		cfg.MaxPathLength = 3
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 16
	}
	est, err := pathsel.Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(est)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return g, srv, ts
}

// getJSON fetches a URL and decodes the body, returning the status.
func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, _, ts := newTestServer(t, pathsel.Config{})
	var body map[string]any
	if st := getJSON(t, ts.URL+"/healthz", &body); st != http.StatusOK {
		t.Fatalf("/healthz status %d, want 200", st)
	}
	if body["status"] != "ok" {
		t.Fatalf("/healthz body %v, want status ok", body)
	}
}

// TestQueryHappyPathWarmCache pins the tentpole's serving contract: a
// valid query answers 200 with the exact selectivity, and the second
// identical request against the estimator-persistent cache reports
// nonzero cache hits while returning the same result.
func TestQueryHappyPathWarmCache(t *testing.T) {
	g, _, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	const q = "a/b/c"
	want, err := g.TrueSelectivity(q)
	if err != nil {
		t.Fatal(err)
	}
	var first, second QueryResponse
	if st := getJSON(t, ts.URL+"/query?q="+q, &first); st != http.StatusOK {
		t.Fatalf("first query status %d, want 200", st)
	}
	if first.Result != want {
		t.Fatalf("first query result %d, want exact selectivity %d", first.Result, want)
	}
	if first.CacheMisses == 0 {
		t.Fatalf("first query reported no cache misses against an empty cache: %+v", first)
	}
	if st := getJSON(t, ts.URL+"/query?q="+q, &second); st != http.StatusOK {
		t.Fatalf("second query status %d, want 200", st)
	}
	if second.Result != want {
		t.Fatalf("second query result %d, want %d", second.Result, want)
	}
	if second.CacheHits == 0 {
		t.Fatalf("second identical query reported no cache hits: %+v", second)
	}
	if second.Degraded {
		t.Fatalf("cached query reported degraded: %+v", second)
	}
}

func TestQueryMalformed(t *testing.T) {
	_, srv, ts := newTestServer(t, pathsel.Config{})
	cases := []struct {
		name, url, code string
	}{
		{"missing q", ts.URL + "/query", CodeBadRequest},
		{"both q and pattern", ts.URL + "/query?q=a&pattern=a", CodeBadRequest},
		{"unknown label", ts.URL + "/query?q=zzz", CodeBadRequest},
		{"empty segment", ts.URL + "/query?q=a%2F%2Fb", CodeBadPattern},
		{"unclosed group", ts.URL + "/query?pattern=%28a%7Cb", CodeBadPattern},
		{"inverted bounds", ts.URL + "/query?pattern=a%7B3%2C1%7D", CodeBadPattern},
		{"too long", ts.URL + "/query?q=a/a/a/a/a/a", CodeBadRequest},
	}
	for _, c := range cases {
		var er ErrorResponse
		if st := getJSON(t, c.url, &er); st != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, st)
		}
		if er.Code != c.code {
			t.Fatalf("%s: code %q, want %q", c.name, er.Code, c.code)
		}
		if er.Error == "" {
			t.Fatalf("%s: empty error message", c.name)
		}
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/query?q=a", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d, want 405", resp.StatusCode)
	}
	if c := srv.Counters(); c.BadRequest != int64(len(cases)) {
		t.Fatalf("bad-request counter %d, want %d", c.BadRequest, len(cases))
	}
}

// TestQueryAdmissionKill pins the 429-vs-degraded contract: with an
// unsatisfiable admission gate, DegradeToEstimate off answers 429 with
// the typed code, and on answers 200 with the degraded-estimate body.
func TestQueryAdmissionKill(t *testing.T) {
	t.Run("rejected", func(t *testing.T) {
		_, srv, ts := newTestServer(t, pathsel.Config{MaxPlanCost: 1e-12})
		var er ErrorResponse
		if st := getJSON(t, ts.URL+"/query?q=a/b", &er); st != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", st)
		}
		if er.Code != CodeAdmissionDenied {
			t.Fatalf("code %q, want %q", er.Code, CodeAdmissionDenied)
		}
		if c := srv.Counters(); c.Rejected != 1 {
			t.Fatalf("rejected counter %d, want 1", c.Rejected)
		}
	})
	t.Run("degraded", func(t *testing.T) {
		_, srv, ts := newTestServer(t, pathsel.Config{MaxPlanCost: 1e-12, DegradeToEstimate: true})
		var qr QueryResponse
		if st := getJSON(t, ts.URL+"/query?q=a/b", &qr); st != http.StatusOK {
			t.Fatalf("status %d, want 200 (degraded)", st)
		}
		if !qr.Degraded || qr.DegradedBy != CodeAdmissionDenied {
			t.Fatalf("want degraded body with cause %q, got %+v", CodeAdmissionDenied, qr)
		}
		if qr.Result < 0 {
			t.Fatalf("degraded estimate is negative: %+v", qr)
		}
		if c := srv.Counters(); c.Degraded != 1 || c.Rejected != 0 {
			t.Fatalf("counters %+v, want exactly one degraded", c)
		}
	})
}

// TestQueryTimeout pins QueryTimeout expiry to 504 (or a degraded 200
// when DegradeToEstimate is on). A 1ns timeout is expired by the time
// the estimator checks it, so the kill is deterministic.
func TestQueryTimeout(t *testing.T) {
	t.Run("expired", func(t *testing.T) {
		_, srv, ts := newTestServer(t, pathsel.Config{QueryTimeout: time.Nanosecond})
		var er ErrorResponse
		if st := getJSON(t, ts.URL+"/query?q=a/b/c", &er); st != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", st)
		}
		if er.Code != CodeDeadline {
			t.Fatalf("code %q, want %q", er.Code, CodeDeadline)
		}
		if c := srv.Counters(); c.Timeout != 1 {
			t.Fatalf("timeout counter %d, want 1", c.Timeout)
		}
	})
	t.Run("degraded", func(t *testing.T) {
		_, _, ts := newTestServer(t, pathsel.Config{QueryTimeout: time.Nanosecond, DegradeToEstimate: true})
		var qr QueryResponse
		if st := getJSON(t, ts.URL+"/query?q=a/b/c", &qr); st != http.StatusOK {
			t.Fatalf("status %d, want 200 (degraded)", st)
		}
		if !qr.Degraded || qr.DegradedBy != CodeDeadline {
			t.Fatalf("want degraded body with cause %q, got %+v", CodeDeadline, qr)
		}
	})
}

func TestStatsEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	// Drive one good and one bad request so the counters are nonzero.
	getJSON(t, ts.URL+"/query?q=a/b", nil)
	getJSON(t, ts.URL+"/query?q=zzz", nil)
	var stats StatsResponse
	if st := getJSON(t, ts.URL+"/stats", &stats); st != http.StatusOK {
		t.Fatalf("/stats status %d, want 200", st)
	}
	if len(stats.Labels) != 3 || stats.MaxPathLength != 3 {
		t.Fatalf("stats metadata %v k=%d, want 3 labels and k=3", stats.Labels, stats.MaxPathLength)
	}
	if stats.Counters.Requests != 2 || stats.Counters.OK != 1 || stats.Counters.BadRequest != 1 {
		t.Fatalf("counters %+v, want requests=2 ok=1 bad_request=1", stats.Counters)
	}
	if stats.Counters.InFlight != 0 {
		t.Fatalf("in-flight %d after all responses, want 0", stats.Counters.InFlight)
	}
	if stats.Cache == nil || stats.Cache.Misses == 0 {
		t.Fatalf("cache stats %+v, want a populated persistent-cache snapshot", stats.Cache)
	}
}

// TestCountersPartitionRequests drives a mixed request stream
// concurrently and asserts the counters exactly partition the total —
// the accounting invariant the /stats endpoint is trusted for.
func TestCountersPartitionRequests(t *testing.T) {
	g, srv, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
	labels := g.Labels()
	urls := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 0:
			urls = append(urls, ts.URL+"/query?q="+labels[0]+"/"+labels[1])
		case 1:
			urls = append(urls, ts.URL+"/query?q="+labels[i%3]+"/"+labels[(i+1)%3]+"/"+labels[(i+2)%3])
		case 2:
			urls = append(urls, ts.URL+"/query?q=nosuchlabel")
		default:
			urls = append(urls, ts.URL+"/query")
		}
	}
	done := make(chan error, len(urls))
	for _, u := range urls {
		go func(u string) {
			resp, err := http.Get(u)
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}(u)
	}
	for range urls {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	c := srv.Counters()
	if c.Requests != int64(len(urls)) {
		t.Fatalf("requests %d, want %d", c.Requests, len(urls))
	}
	sum := c.OK + c.Degraded + c.BadRequest + c.Rejected + c.Overload + c.Timeout + c.Failed
	if sum != c.Requests {
		t.Fatalf("outcome counters sum to %d, want %d: %+v", sum, c.Requests, c)
	}
	if c.InFlight != 0 {
		t.Fatalf("in-flight %d after quiescence, want 0", c.InFlight)
	}
}

// TestServerShutdownLeavesNoGoroutines pins the acceptance criterion
// that serving leaves nothing behind: after a concurrent request burst
// and server close, the goroutine count returns to its baseline.
func TestServerShutdownLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		g, _, ts := newTestServer(t, pathsel.Config{CacheBytes: pathsel.DefaultCacheBytes})
		labels := g.Labels()
		done := make(chan struct{}, 32)
		for i := 0; i < 32; i++ {
			go func(i int) {
				defer func() { done <- struct{}{} }()
				q := fmt.Sprintf("%s/%s", labels[i%3], labels[(i+1)%3])
				resp, err := http.Get(ts.URL + "/query?q=" + q)
				if err == nil {
					resp.Body.Close()
				}
			}(i)
		}
		for i := 0; i < 32; i++ {
			<-done
		}
		ts.Close()
		http.DefaultClient.CloseIdleConnections()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count %d did not return to baseline %d after shutdown",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
