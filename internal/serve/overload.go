package serve

// This file is the server-wide overload controller: an adaptive
// concurrency limiter with a bounded, deadline-aware admission queue
// (shed with a Retry-After hint once a request's remaining budget
// cannot cover the queue's observed service time), plus the brownout
// state machine that escalates estimate-degradation under sustained
// pressure and de-escalates when it clears. The controller is entirely
// event-driven — admissions, completions, and stats reads advance it —
// so an enabled server runs no background goroutine and an idle server
// does no work.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/pathsel"
)

// OverloadConfig tunes the server-wide overload controller. The zero
// value (and a nil *OverloadConfig in Options) disables it entirely:
// every request executes immediately, exactly as before the controller
// existed.
type OverloadConfig struct {
	// MaxInFlight > 0 enables the controller: at most this many query
	// executions run concurrently (a /batch counts as one). It is also
	// the adaptive limit's ceiling.
	MaxInFlight int
	// MinInFlight floors the adaptive limit (≤ 0 selects 1).
	MinInFlight int
	// LatencyTarget > 0 enables adaptation: when the observed
	// service-time EWMA exceeds the target the in-flight limit decays
	// multiplicatively toward MinInFlight; when requests queue while the
	// EWMA is within target it grows additively back toward MaxInFlight.
	// Zero pins the limit at MaxInFlight.
	LatencyTarget time.Duration
	// QueueLimit bounds the admission queue (≤ 0 selects
	// 4×MaxInFlight). A request arriving to a full queue is shed
	// immediately with 429 + Retry-After.
	QueueLimit int
	// QueueTimeout is the longest a request may wait queued (≤ 0
	// selects 100ms). The effective budget is the smaller of this and
	// the request's own remaining context deadline, and shedding is
	// predictive: a request whose expected wait — queue position times
	// the service-time EWMA over the limit — exceeds its budget is shed
	// on arrival instead of timing out in line.
	QueueTimeout time.Duration
	// Brownout enables the degradation tiers. Under sustained pressure
	// (queue depth or shed rate above BrownoutHi across BrownoutUp
	// ticks) the server escalates a tier; each tier above 0 answers
	// queries whose plan cost exceeds a percentile of recently observed
	// costs with marked histogram estimates (tier 1: p90, tier 2: p50,
	// tier 3: everything) instead of shedding them. Pressure below
	// BrownoutLo across BrownoutDown ticks de-escalates one tier.
	Brownout bool
	// BrownoutHi and BrownoutLo are the escalate/de-escalate pressure
	// watermarks in [0,1] (defaults 0.75 and 0.25); the gap between
	// them is the hysteresis band that keeps the tier from flapping.
	BrownoutHi, BrownoutLo float64
	// BrownoutUp and BrownoutDown are how many consecutive ticks the
	// pressure signal must sit past a watermark before the tier moves
	// (defaults 2 and 3 — de-escalation is deliberately slower).
	BrownoutUp, BrownoutDown int
	// TickEvery is the minimum interval between brownout evaluations
	// (≤ 0 selects 20ms). Ticks piggyback on admissions, completions,
	// and stats reads; there is no timer goroutine.
	TickEvery time.Duration
}

// Defaults resolved by withDefaults.
const (
	defaultQueueTimeout = 100 * time.Millisecond
	defaultTickEvery    = 20 * time.Millisecond
	defaultBrownoutHi   = 0.75
	defaultBrownoutLo   = 0.25
	defaultBrownoutUp   = 2
	defaultBrownoutDown = 3
	// maxBrownoutTier is the deepest degradation tier: every query with
	// any join cost answers its estimate.
	maxBrownoutTier = 3
	// costRingSize is how many recent plan costs the brownout
	// percentile thresholds are computed over.
	costRingSize = 256
	// adaptEvery is how many completions pass between adaptive-limit
	// adjustments — enough samples for the EWMA to mean something,
	// small enough to track bursts.
	adaptEvery = 16
	// ewmaAlpha weights the newest service-time observation.
	ewmaAlpha = 0.3
	// maxRetryAfter caps the Retry-After hint handed to shed clients.
	maxRetryAfter = 5 * time.Second
)

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.MinInFlight <= 0 {
		c.MinInFlight = 1
	}
	if c.MinInFlight > c.MaxInFlight {
		c.MinInFlight = c.MaxInFlight
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4 * c.MaxInFlight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = defaultQueueTimeout
	}
	if c.BrownoutHi <= 0 || c.BrownoutHi > 1 {
		c.BrownoutHi = defaultBrownoutHi
	}
	if c.BrownoutLo <= 0 || c.BrownoutLo >= c.BrownoutHi {
		c.BrownoutLo = math.Min(defaultBrownoutLo, c.BrownoutHi/2)
	}
	if c.BrownoutUp <= 0 {
		c.BrownoutUp = defaultBrownoutUp
	}
	if c.BrownoutDown <= 0 {
		c.BrownoutDown = defaultBrownoutDown
	}
	if c.TickEvery <= 0 {
		c.TickEvery = defaultTickEvery
	}
	return c
}

// shedError reports a request shed by the admission queue; RetryAfter
// is the server's estimate of when capacity will exist again. It maps
// to 429 + CodeOverloaded + a Retry-After header on the wire.
type shedError struct {
	retryAfter time.Duration
	reason     string
}

func (e *shedError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %v", e.reason, e.retryAfter)
}

// errDraining refuses work arriving after StartDrain; it maps to 503 +
// CodeDraining so load balancers rotate the replica out while in-flight
// requests finish.
var errDraining = errors.New("serve: draining, not accepting new queries")

// waiter is one queued request. ready is closed exactly once, by the
// promoter that hands the waiter an in-flight slot; admitted
// disambiguates the promote-vs-abandon race under the limiter's lock.
type waiter struct {
	ready    chan struct{}
	admitted bool
}

// limiter is the controller's state, all under one mutex — every
// operation is a few comparisons, so a single lock outperforms anything
// cleverer at the request rates one estimator can serve.
type limiter struct {
	cfg OverloadConfig

	mu       sync.Mutex
	limit    int
	inFlight int
	peak     int
	queue    []*waiter
	draining bool

	svcEWMA     float64 // observed service time, ns
	completions int     // since the last adaptation

	// Brownout state: pressure accumulators since the last tick, the
	// hysteresis counters, and the cost ring the tier thresholds are
	// cut from.
	tier          int
	upTicks       int
	downTicks     int
	lastTick      time.Time
	admittedTick  int64
	shedTick      int64
	costRing      [costRingSize]float64
	costN, costLn int
	costThreshold float64
}

func newLimiter(cfg OverloadConfig) *limiter {
	cfg = cfg.withDefaults()
	return &limiter{cfg: cfg, limit: cfg.MaxInFlight, lastTick: time.Now()}
}

// acquire admits the request (returning the brownout policy to execute
// it under), queues it, or refuses it: a *shedError once the queue
// cannot serve it in budget, errDraining after StartDrain, or the
// request's own context error if it dies while queued. On a nil error
// the caller owns one in-flight slot and must call release.
func (l *limiter) acquire(ctx context.Context) (pathsel.ExecPolicy, error) {
	l.mu.Lock()
	now := time.Now()
	l.tickLocked(now)
	if l.draining {
		l.mu.Unlock()
		return pathsel.ExecPolicy{}, errDraining
	}
	if l.inFlight < l.limit && len(l.queue) == 0 {
		l.admitLocked()
		pol := l.policyLocked()
		l.mu.Unlock()
		return pol, nil
	}

	// No free slot: decide, on arrival, whether the queue can serve this
	// request within its budget.
	budget := l.cfg.QueueTimeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := dl.Sub(now); rem < budget {
			budget = rem
		}
	}
	expected := l.expectedWaitLocked(len(l.queue) + 1)
	if len(l.queue) >= l.cfg.QueueLimit || expected > budget || budget <= 0 {
		err := l.shedLocked(expected, "admission queue over budget")
		l.mu.Unlock()
		return pathsel.ExecPolicy{}, err
	}
	w := &waiter{ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	timer := time.NewTimer(budget)
	defer timer.Stop()
	var abandonErr error
	select {
	case <-w.ready:
		// Promoted: the slot is already ours (counted by the promoter).
		l.mu.Lock()
		pol := l.policyLocked()
		l.mu.Unlock()
		return pol, nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			abandonErr = fmt.Errorf("%w: while queued for admission", pathsel.ErrDeadlineExceeded)
		} else {
			abandonErr = fmt.Errorf("%w: while queued for admission", pathsel.ErrCancelled)
		}
	case <-timer.C:
		abandonErr = nil // queue budget expired → shed below
	}

	// Abandon path. A promotion may have raced the timer/cancel: if the
	// slot is already ours, keep it — the execution observes the dead
	// context (if any) itself, and giving the slot back here would just
	// re-run the same race one queue position later.
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.admitted {
		return l.policyLocked(), nil
	}
	for i, qw := range l.queue {
		if qw == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	if abandonErr != nil {
		return pathsel.ExecPolicy{}, abandonErr
	}
	return pathsel.ExecPolicy{}, l.shedLocked(l.expectedWaitLocked(len(l.queue)+1), "queue budget expired")
}

// admitLocked counts one request into an in-flight slot.
func (l *limiter) admitLocked() {
	l.inFlight++
	l.admittedTick++
	if l.inFlight > l.peak {
		l.peak = l.inFlight
	}
}

// shedLocked counts one shed and builds its retry hint.
func (l *limiter) shedLocked(expected time.Duration, reason string) error {
	l.shedTick++
	retry := expected
	if retry <= 0 {
		retry = l.cfg.QueueTimeout
	}
	if retry > maxRetryAfter {
		retry = maxRetryAfter
	}
	if retry < time.Millisecond {
		retry = time.Millisecond
	}
	return &shedError{retryAfter: retry, reason: reason}
}

// expectedWaitLocked estimates how long the request at the given queue
// position will wait for a slot: position × EWMA service time, spread
// over the current limit. Before any completion the EWMA is zero and
// the estimate optimistic — the queue budget still bounds the wait.
func (l *limiter) expectedWaitLocked(position int) time.Duration {
	if l.svcEWMA <= 0 || l.limit <= 0 {
		return 0
	}
	return time.Duration(float64(position) * l.svcEWMA / float64(l.limit))
}

// release returns a slot after an execution took service long, promotes
// queued waiters, and runs the adaptation and brownout machinery.
func (l *limiter) release(service time.Duration) {
	l.mu.Lock()
	l.inFlight--
	if service > 0 {
		if l.svcEWMA == 0 {
			l.svcEWMA = float64(service)
		} else {
			l.svcEWMA += ewmaAlpha * (float64(service) - l.svcEWMA)
		}
	}
	l.completions++
	if l.completions >= adaptEvery {
		l.adaptLocked()
	}
	l.promoteLocked()
	l.tickLocked(time.Now())
	l.mu.Unlock()
}

// promoteLocked hands free slots to the queue head, FIFO.
func (l *limiter) promoteLocked() {
	for l.inFlight < l.limit && len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		w.admitted = true
		l.admitLocked()
		close(w.ready)
	}
}

// adaptLocked is the AIMD step: decay the limit multiplicatively while
// the service-time EWMA overshoots the target, regrow it additively
// while requests queue within target.
func (l *limiter) adaptLocked() {
	l.completions = 0
	if l.cfg.LatencyTarget <= 0 {
		return
	}
	switch {
	case l.svcEWMA > float64(l.cfg.LatencyTarget):
		step := l.limit / 8
		if step < 1 {
			step = 1
		}
		if l.limit -= step; l.limit < l.cfg.MinInFlight {
			l.limit = l.cfg.MinInFlight
		}
	case len(l.queue) > 0 && l.limit < l.cfg.MaxInFlight:
		l.limit++
	}
}

// recordCost feeds one answered query's plan cost into the ring the
// brownout thresholds are computed from.
func (l *limiter) recordCost(cost float64) {
	if !l.cfg.Brownout || math.IsNaN(cost) || cost < 0 {
		return
	}
	l.mu.Lock()
	l.costRing[l.costN%costRingSize] = cost
	l.costN++
	if l.costLn < costRingSize {
		l.costLn++
	}
	l.mu.Unlock()
}

// policyLocked is the brownout tier rendered as a per-call execution
// policy.
func (l *limiter) policyLocked() pathsel.ExecPolicy {
	return pathsel.ExecPolicy{DegradeCostAbove: l.costThreshold}
}

// tickLocked advances the brownout state machine when at least
// TickEvery has passed: the pressure signal is the worse of queue
// occupancy and the shed fraction since the last tick, pushed through
// the hysteresis counters; the cost threshold is recut from the ring on
// every tick so the tier tracks the workload actually being served.
func (l *limiter) tickLocked(now time.Time) {
	if !l.cfg.Brownout || now.Sub(l.lastTick) < l.cfg.TickEvery {
		return
	}
	l.lastTick = now
	sig := float64(len(l.queue)) / float64(l.cfg.QueueLimit)
	if total := l.admittedTick + l.shedTick; total > 0 {
		if f := float64(l.shedTick) / float64(total); f > sig {
			sig = f
		}
	}
	l.admittedTick, l.shedTick = 0, 0
	switch {
	case sig >= l.cfg.BrownoutHi:
		l.downTicks = 0
		if l.upTicks++; l.upTicks >= l.cfg.BrownoutUp && l.tier < maxBrownoutTier {
			l.tier++
			l.upTicks = 0
		}
	case sig <= l.cfg.BrownoutLo:
		l.upTicks = 0
		if l.downTicks++; l.downTicks >= l.cfg.BrownoutDown && l.tier > 0 {
			l.tier--
			l.downTicks = 0
		}
	default:
		l.upTicks, l.downTicks = 0, 0
	}
	l.costThreshold = l.thresholdLocked()
}

// thresholdLocked cuts the current tier's cost threshold from the
// observed-cost ring: tier 1 degrades above p90, tier 2 above p50,
// tier 3 degrades every query with any join cost at all.
func (l *limiter) thresholdLocked() float64 {
	if l.tier == 0 || l.costLn == 0 {
		return 0
	}
	sorted := make([]float64, l.costLn)
	copy(sorted, l.costRing[:l.costLn])
	sort.Float64s(sorted)
	var q float64
	switch l.tier {
	case 1:
		q = 0.9
	case 2:
		q = 0.5
	default:
		q = 0
	}
	idx := int(q * float64(l.costLn-1))
	th := sorted[idx]
	if th <= 0 {
		// Everything observed so far was free (single-label plans);
		// degrade anything costlier than that.
		th = math.SmallestNonzeroFloat64
	}
	return th
}

// startDrain refuses all future admissions; queued waiters are shed as
// their budgets expire and in-flight work finishes normally.
func (l *limiter) startDrain() {
	l.mu.Lock()
	l.draining = true
	l.mu.Unlock()
}

// hardOverloaded reports whether the controller is saturated right now
// — the queue is full or brownout is at its deepest tier — the signal
// /healthz turns into a 503 so load balancers rotate the replica out.
func (l *limiter) hardOverloaded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tickLocked(time.Now())
	return l.tier >= maxBrownoutTier || len(l.queue) >= l.cfg.QueueLimit
}

// OverloadStats is the controller section of /stats.
type OverloadStats struct {
	Enabled bool `json:"enabled"`
	// Limit is the current adaptive in-flight limit; MaxInFlight its
	// configured ceiling.
	Limit       int `json:"limit"`
	MaxInFlight int `json:"max_in_flight"`
	// InFlight and PeakInFlight count concurrent executions holding
	// slots (peak since start — the test hook pinning that shed and
	// queued requests never hold execution capacity).
	InFlight     int `json:"in_flight"`
	PeakInFlight int `json:"peak_in_flight"`
	// QueueDepth is the current admission-queue occupancy.
	QueueDepth int `json:"queue_depth"`
	QueueLimit int `json:"queue_limit"`
	// BrownoutTier is the current degradation tier (0 = off).
	BrownoutTier int `json:"brownout_tier"`
	// CostThreshold is the plan-cost cut above which queries currently
	// degrade to estimates; 0 when brownout is off or at tier 0.
	CostThreshold float64 `json:"cost_threshold,omitempty"`
	// SvcEwmaNs is the observed service-time EWMA the shedding rule and
	// adaptation run on.
	SvcEwmaNs int64 `json:"svc_ewma_ns"`
	// Shed counts requests refused with 429 + Retry-After;
	// BrownoutDegraded counts answers degraded by the brownout policy
	// (they also count in Counters.Degraded).
	Shed             int64 `json:"shed"`
	BrownoutDegraded int64 `json:"brownout_degraded"`
	Draining         bool  `json:"draining"`
}

// stats snapshots the limiter (ticking first, so a pressure change is
// observable by polling /stats alone).
func (l *limiter) stats() OverloadStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tickLocked(time.Now())
	return OverloadStats{
		Enabled:       true,
		Limit:         l.limit,
		MaxInFlight:   l.cfg.MaxInFlight,
		InFlight:      l.inFlight,
		PeakInFlight:  l.peak,
		QueueDepth:    len(l.queue),
		QueueLimit:    l.cfg.QueueLimit,
		BrownoutTier:  l.tier,
		CostThreshold: l.costThreshold,
		SvcEwmaNs:     int64(l.svcEWMA),
		Draining:      l.draining,
	}
}
