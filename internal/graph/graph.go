// Package graph is the bottom layer of the reproduction (graph → bitset →
// paths → exec → pathsel): the directed edge-labeled multigraph
// G = (V, L, E) with E ⊆ V × L × V. It provides a mutable builder and an
// immutable, concurrency-safe CSR (compressed sparse row) form that
// serves every engine above it with per-label adjacency in the shapes
// their kernels consume:
//
//   - LabelOperand / LabelCSR: forward adjacency as a dual-form compose
//     operand (CSR arrays for the sparse scatter kernel, dense successor
//     sets for the word-parallel kernel) — the census and the rightward
//     join steps of execution.
//   - PredecessorOperand / PredecessorCSR: reversed adjacency in the same
//     dual form — the leftward (prepend) join steps of backward and
//     zig-zag execution.
//   - SuccessorSets / PredecessorSets / EdgeRelation: dense-only forms,
//     retained for the legacy reference implementations the equivalence
//     tests pin the hybrid engines against.
//
// All lazily built tables are sync.Once-guarded, so first use is safe
// under concurrent callers and the hot loops never pay initialization.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitset"
)

// Edge is one directed labeled edge (Src --Label--> Dst).
type Edge struct {
	Src   int
	Label int
	Dst   int
}

// Graph is a mutable directed edge-labeled graph. Vertices are dense
// integers [0, NumVertices) and labels are dense integers [0, NumLabels).
// Duplicate (src, label, dst) triples are ignored: E is a set, matching the
// paper's definition.
type Graph struct {
	numVertices int
	numLabels   int
	labelNames  []string
	edges       map[Edge]struct{}
}

// New returns an empty graph with the given number of vertices and labels.
// Labels receive default names "1", "2", … matching the paper's Moreno
// Health convention; use SetLabelName to override.
func New(numVertices, numLabels int) *Graph {
	if numVertices < 0 || numLabels < 0 {
		panic(fmt.Sprintf("graph: negative size (%d vertices, %d labels)", numVertices, numLabels))
	}
	names := make([]string, numLabels)
	for i := range names {
		names[i] = fmt.Sprintf("%d", i+1)
	}
	return &Graph{
		numVertices: numVertices,
		numLabels:   numLabels,
		labelNames:  names,
		edges:       make(map[Edge]struct{}),
	}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.numVertices }

// NumLabels returns |L|.
func (g *Graph) NumLabels() int { return g.numLabels }

// NumEdges returns |E| (distinct labeled edges).
func (g *Graph) NumEdges() int { return len(g.edges) }

// LabelName returns the display name of label l.
func (g *Graph) LabelName(l int) string {
	g.checkLabel(l)
	return g.labelNames[l]
}

// SetLabelName overrides the display name of label l.
func (g *Graph) SetLabelName(l int, name string) {
	g.checkLabel(l)
	g.labelNames[l] = name
}

// LabelByName returns the label id with the given display name, or -1.
func (g *Graph) LabelByName(name string) int {
	for i, n := range g.labelNames {
		if n == name {
			return i
		}
	}
	return -1
}

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.numVertices {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.numVertices))
	}
}

func (g *Graph) checkLabel(l int) {
	if l < 0 || l >= g.numLabels {
		panic(fmt.Sprintf("graph: label %d out of range [0,%d)", l, g.numLabels))
	}
}

// AddEdge inserts the edge (src, label, dst). It reports whether the edge
// was new. Self-loops are allowed; duplicates are not stored twice.
func (g *Graph) AddEdge(src, label, dst int) bool {
	g.checkVertex(src)
	g.checkVertex(dst)
	g.checkLabel(label)
	e := Edge{Src: src, Label: label, Dst: dst}
	if _, ok := g.edges[e]; ok {
		return false
	}
	g.edges[e] = struct{}{}
	return true
}

// HasEdge reports whether (src, label, dst) ∈ E.
func (g *Graph) HasEdge(src, label, dst int) bool {
	_, ok := g.edges[Edge{Src: src, Label: label, Dst: dst}]
	return ok
}

// Edges returns all edges sorted by (label, src, dst). The slice is a copy.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return out
}

// LabelFrequencies returns f(l) for every edge label l: the number of edges
// carrying that label. This is the length-1 path selectivity used by the
// cardinality ranking rule.
func (g *Graph) LabelFrequencies() []int64 {
	freq := make([]int64, g.numLabels)
	for e := range g.edges {
		freq[e.Label]++
	}
	return freq
}

// Freeze converts the graph into its immutable CSR form used by the
// selectivity engine.
func (g *Graph) Freeze() *CSR {
	edges := g.Edges()
	c := &CSR{
		numVertices: g.numVertices,
		numLabels:   g.numLabels,
		labelNames:  append([]string(nil), g.labelNames...),
		numEdges:    len(edges),
		offsets:     make([][]int32, g.numLabels),
		targets:     make([][]int32, g.numLabels),
		roffsets:    make([][]int32, g.numLabels),
		rtargets:    make([][]int32, g.numLabels),
		succ:        make([][]*bitset.Set, g.numLabels),
		pred:        make([][]*bitset.Set, g.numLabels),
		succOnce:    make([]sync.Once, g.numLabels),
		predOnce:    make([]sync.Once, g.numLabels),
		revOnce:     make([]sync.Once, g.numLabels),
	}
	for l := 0; l < g.numLabels; l++ {
		c.offsets[l] = make([]int32, g.numVertices+1)
	}
	// Count per (label, src), then prefix-sum into offsets.
	for _, e := range edges {
		c.offsets[e.Label][e.Src+1]++
	}
	for l := 0; l < g.numLabels; l++ {
		for v := 0; v < g.numVertices; v++ {
			c.offsets[l][v+1] += c.offsets[l][v]
		}
		c.targets[l] = make([]int32, c.offsets[l][g.numVertices])
	}
	fill := make([][]int32, g.numLabels)
	for l := range fill {
		fill[l] = make([]int32, g.numVertices)
	}
	for _, e := range edges {
		pos := c.offsets[e.Label][e.Src] + fill[e.Label][e.Src]
		c.targets[e.Label][pos] = int32(e.Dst)
		fill[e.Label][e.Src]++
	}
	return c
}

// CSR is the immutable compressed-sparse-row form of a Graph: for each
// label, a per-source adjacency array. It is safe for concurrent readers.
type CSR struct {
	numVertices int
	numLabels   int
	numEdges    int
	labelNames  []string

	// offsets[l][v]..offsets[l][v+1] index targets[l] with the successors
	// of v via label l, sorted ascending.
	offsets [][]int32
	targets [][]int32

	// roffsets/rtargets are the reverse CSR per label — incoming edges,
	// indexed by target — built lazily by PredecessorCSR for backward and
	// zig-zag join steps.
	roffsets [][]int32
	rtargets [][]int32

	// succ[l] is built lazily by SuccessorSets; pred[l] by
	// PredecessorSets; roffsets/rtargets by PredecessorCSR. The sync.Once
	// guards make the first build per label safe under concurrent callers.
	succ     [][]*bitset.Set
	pred     [][]*bitset.Set
	succOnce []sync.Once
	predOnce []sync.Once
	revOnce  []sync.Once
}

// NumVertices returns |V|.
func (c *CSR) NumVertices() int { return c.numVertices }

// NumLabels returns |L|.
func (c *CSR) NumLabels() int { return c.numLabels }

// NumEdges returns |E|.
func (c *CSR) NumEdges() int { return c.numEdges }

// LabelName returns the display name of label l.
func (c *CSR) LabelName(l int) string { return c.labelNames[l] }

// Successors returns the sorted successor vertices of v via label l. The
// returned slice aliases internal storage and must not be modified.
func (c *CSR) Successors(v, l int) []int32 {
	return c.targets[l][c.offsets[l][v]:c.offsets[l][v+1]]
}

// OutDegree returns the number of out-edges of v with label l.
func (c *CSR) OutDegree(v, l int) int {
	return int(c.offsets[l][v+1] - c.offsets[l][v])
}

// LabelFrequencies returns f(l) for every edge label.
func (c *CSR) LabelFrequencies() []int64 {
	freq := make([]int64, c.numLabels)
	for l := 0; l < c.numLabels; l++ {
		freq[l] = int64(len(c.targets[l]))
	}
	return freq
}

// SuccessorSets returns, for label l, a per-vertex successor bit set
// table: the dense half of LabelOperand (driving the dense×CSR compose
// kernel) and the input of the legacy bitset.Relation.Compose reference
// path. Rows for vertices with no successors are nil. The table is built
// once per label and cached behind a sync.Once, so concurrent first calls
// are safe.
func (c *CSR) SuccessorSets(l int) []*bitset.Set {
	c.succOnce[l].Do(func() {
		tab := make([]*bitset.Set, c.numVertices)
		for v := 0; v < c.numVertices; v++ {
			ts := c.Successors(v, l)
			if len(ts) == 0 {
				continue
			}
			s := bitset.New(c.numVertices)
			for _, t := range ts {
				s.Add(int(t))
			}
			tab[v] = s
		}
		c.succ[l] = tab
	})
	return c.succ[l]
}

// PredecessorSets returns, for label l, a per-vertex predecessor bit set
// table: pred[v] contains every u with (u, l, v) ∈ E. Used by backward
// (right-to-left) path evaluation. Built once per label and cached behind a
// sync.Once, so concurrent first calls are safe.
func (c *CSR) PredecessorSets(l int) []*bitset.Set {
	c.predOnce[l].Do(func() {
		tab := make([]*bitset.Set, c.numVertices)
		for v := 0; v < c.numVertices; v++ {
			for _, t := range c.Successors(v, l) {
				if tab[t] == nil {
					tab[t] = bitset.New(c.numVertices)
				}
				tab[t].Add(v)
			}
		}
		c.pred[l] = tab
	})
	return c.pred[l]
}

// PredecessorCSR returns label l's reversed adjacency as a CSR-only
// compose operand: operand row v holds every u with (u, l, v) ∈ E, sorted
// ascending. Composing a reversed relation with it is the prepend step of
// backward and zig-zag execution. Built once per label (counting sort of
// the forward CSR) behind a sync.Once, so concurrent first calls are safe.
func (c *CSR) PredecessorCSR(l int) bitset.CSROperand {
	c.revOnce[l].Do(func() {
		off := make([]int32, c.numVertices+1)
		for _, t := range c.targets[l] {
			off[t+1]++
		}
		for v := 0; v < c.numVertices; v++ {
			off[v+1] += off[v]
		}
		rt := make([]int32, len(c.targets[l]))
		fill := make([]int32, c.numVertices)
		// Scanning sources ascending emits each target's predecessors in
		// ascending order, preserving the sorted-row invariant.
		for v := 0; v < c.numVertices; v++ {
			for _, t := range c.Successors(v, l) {
				rt[off[t]+fill[t]] = int32(v)
				fill[t]++
			}
		}
		c.roffsets[l] = off
		c.rtargets[l] = rt
	})
	return bitset.CSROperand{
		N:       c.numVertices,
		Offsets: c.roffsets[l],
		Targets: c.rtargets[l],
	}
}

// PredecessorOperand returns label l's reversed adjacency as a dual-form
// compose operand: the reverse CSR arrays for the sparse scatter kernel
// plus the dense predecessor sets for the word-parallel kernel. Safe for
// concurrent callers.
func (c *CSR) PredecessorOperand(l int) bitset.CSROperand {
	op := c.PredecessorCSR(l)
	op.Dense = c.PredecessorSets(l)
	return op
}

// LabelOperand returns label l's adjacency as a dual-form compose operand:
// the CSR arrays for the sparse scatter kernel plus the dense successor
// sets for the word-parallel kernel. The CSR slices alias internal storage
// and must not be modified. Safe for concurrent callers.
func (c *CSR) LabelOperand(l int) bitset.CSROperand {
	op := c.LabelCSR(l)
	op.Dense = c.SuccessorSets(l)
	return op
}

// LabelCSR returns label l's adjacency as a CSR-only compose operand, with
// no dense successor sets. Sufficient for engines configured to keep every
// relation row sparse, which never touch the dense kernel.
func (c *CSR) LabelCSR(l int) bitset.CSROperand {
	return bitset.CSROperand{
		N:       c.numVertices,
		Offsets: c.offsets[l],
		Targets: c.targets[l],
	}
}

// Operands eagerly builds and returns the compose operands of every label.
// The census engines call this once up front so the hot loop never pays
// (or races on) lazy initialization. withDense selects the dual-form
// operands; false skips building the per-label dense successor tables
// (O(|L|·sources·|V|/8) bytes) for sparse-only configurations.
func (c *CSR) Operands(withDense bool) []bitset.CSROperand {
	ops := make([]bitset.CSROperand, c.numLabels)
	for l := 0; l < c.numLabels; l++ {
		if withDense {
			ops[l] = c.LabelOperand(l)
		} else {
			ops[l] = c.LabelCSR(l)
		}
	}
	return ops
}

// EdgeRelation returns label l's edge set as a dense bitset.Relation (the
// set of pairs (s, t) with (s, l, t) ∈ E) — the length-1 path relation in
// the legacy representation. Only the sequential reference census and the
// retired dense executors use it; hybrid engines start from
// bitset.HybridFromCSR(LabelOperand(l), …) instead.
func (c *CSR) EdgeRelation(l int) *bitset.Relation {
	r := bitset.NewRelation(c.numVertices)
	for v := 0; v < c.numVertices; v++ {
		for _, t := range c.Successors(v, l) {
			r.Add(v, int(t))
		}
	}
	return r
}
