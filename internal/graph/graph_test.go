package graph

import (
	"math/rand"
	"sync"
	"testing"
)

func TestNewGraph(t *testing.T) {
	g := New(5, 3)
	if g.NumVertices() != 5 || g.NumLabels() != 3 || g.NumEdges() != 0 {
		t.Fatalf("unexpected sizes: %d/%d/%d", g.NumVertices(), g.NumLabels(), g.NumEdges())
	}
	if g.LabelName(0) != "1" || g.LabelName(2) != "3" {
		t.Fatal("default label names should be 1-based integers")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) should panic")
		}
	}()
	New(-1, 2)
}

func TestAddEdge(t *testing.T) {
	g := New(3, 2)
	if !g.AddEdge(0, 1, 2) {
		t.Fatal("first AddEdge should report new")
	}
	if g.AddEdge(0, 1, 2) {
		t.Fatal("duplicate AddEdge should report false")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1, 2) || g.HasEdge(2, 1, 0) {
		t.Fatal("HasEdge wrong")
	}
	// Self-loop allowed.
	if !g.AddEdge(1, 0, 1) {
		t.Fatal("self-loop should be accepted")
	}
	// Same endpoints, different label is a distinct edge.
	if !g.AddEdge(0, 0, 2) {
		t.Fatal("same endpoints different label should be new")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3, 2)
	for name, fn := range map[string]func(){
		"bad src":   func() { g.AddEdge(3, 0, 0) },
		"bad dst":   func() { g.AddEdge(0, 0, -1) },
		"bad label": func() { g.AddEdge(0, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLabelNames(t *testing.T) {
	g := New(2, 2)
	g.SetLabelName(0, "knows")
	if g.LabelName(0) != "knows" {
		t.Fatal("SetLabelName did not stick")
	}
	if g.LabelByName("knows") != 0 {
		t.Fatal("LabelByName(knows) != 0")
	}
	if g.LabelByName("missing") != -1 {
		t.Fatal("LabelByName(missing) != -1")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4, 2)
	g.AddEdge(3, 1, 0)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 0)
	g.AddEdge(2, 1, 3)
	es := g.Edges()
	want := []Edge{{0, 0, 0}, {0, 0, 1}, {2, 1, 3}, {3, 1, 0}}
	if len(es) != len(want) {
		t.Fatalf("Edges() len = %d", len(es))
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestLabelFrequencies(t *testing.T) {
	g := New(4, 3)
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 0, 2)
	g.AddEdge(2, 2, 3)
	freq := g.LabelFrequencies()
	if freq[0] != 2 || freq[1] != 0 || freq[2] != 1 {
		t.Fatalf("LabelFrequencies = %v", freq)
	}
}

func TestFreezeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New(50, 4)
	type key struct{ s, l, d int }
	want := map[key]bool{}
	for i := 0; i < 300; i++ {
		s, l, d := rng.Intn(50), rng.Intn(4), rng.Intn(50)
		g.AddEdge(s, l, d)
		want[key{s, l, d}] = true
	}
	c := g.Freeze()
	if c.NumVertices() != 50 || c.NumLabels() != 4 || c.NumEdges() != len(want) {
		t.Fatalf("CSR sizes wrong: %d/%d/%d", c.NumVertices(), c.NumLabels(), c.NumEdges())
	}
	got := map[key]bool{}
	for l := 0; l < 4; l++ {
		for v := 0; v < 50; v++ {
			succ := c.Successors(v, l)
			for i, tgt := range succ {
				if i > 0 && succ[i-1] > tgt {
					t.Fatalf("successors of (%d,%d) not sorted: %v", v, l, succ)
				}
				got[key{v, l, int(tgt)}] = true
			}
			if c.OutDegree(v, l) != len(succ) {
				t.Fatal("OutDegree mismatch")
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("CSR has %d edges, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing edge %v in CSR", k)
		}
	}
}

func TestFreezeEmptyGraph(t *testing.T) {
	c := New(3, 2).Freeze()
	if c.NumEdges() != 0 {
		t.Fatal("empty graph should freeze to empty CSR")
	}
	if len(c.Successors(0, 0)) != 0 {
		t.Fatal("no successors expected")
	}
}

func TestCSRLabelFrequencies(t *testing.T) {
	g := New(4, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 0, 2)
	g.AddEdge(0, 1, 3)
	c := g.Freeze()
	freq := c.LabelFrequencies()
	if freq[0] != 2 || freq[1] != 1 {
		t.Fatalf("CSR LabelFrequencies = %v", freq)
	}
	if c.LabelName(1) != "2" {
		t.Fatal("CSR should preserve label names")
	}
}

func TestSuccessorSets(t *testing.T) {
	g := New(4, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 2)
	g.AddEdge(3, 0, 0)
	c := g.Freeze()
	tab := c.SuccessorSets(0)
	if tab[0] == nil || tab[0].Count() != 2 || !tab[0].Contains(1) || !tab[0].Contains(2) {
		t.Fatalf("succ[0] wrong: %v", tab[0])
	}
	if tab[1] != nil || tab[2] != nil {
		t.Fatal("vertices without successors should have nil sets")
	}
	if tab[3] == nil || !tab[3].Contains(0) {
		t.Fatal("succ[3] wrong")
	}
	// Cached: same slice on second call.
	if &c.SuccessorSets(0)[0] != &tab[0] {
		t.Fatal("SuccessorSets should be cached")
	}
}

func TestPredecessorSets(t *testing.T) {
	g := New(4, 2)
	g.AddEdge(0, 0, 2)
	g.AddEdge(1, 0, 2)
	g.AddEdge(3, 0, 0)
	c := g.Freeze()
	tab := c.PredecessorSets(0)
	if tab[2] == nil || tab[2].Count() != 2 || !tab[2].Contains(0) || !tab[2].Contains(1) {
		t.Fatalf("pred[2] wrong: %v", tab[2])
	}
	if tab[0] == nil || !tab[0].Contains(3) {
		t.Fatal("pred[0] wrong")
	}
	if tab[1] != nil || tab[3] != nil {
		t.Fatal("vertices without predecessors should have nil sets")
	}
	// Cached on second call.
	if &c.PredecessorSets(0)[0] != &tab[0] {
		t.Fatal("PredecessorSets should be cached")
	}
	// Predecessors must mirror successors exactly.
	for l := 0; l < 2; l++ {
		pred := c.PredecessorSets(l)
		for v := 0; v < 4; v++ {
			for _, tgt := range c.Successors(v, l) {
				if pred[tgt] == nil || !pred[tgt].Contains(v) {
					t.Fatalf("edge (%d,%d,%d) missing from predecessor sets", v, l, tgt)
				}
			}
		}
	}
}

func TestEdgeRelation(t *testing.T) {
	g := New(4, 2)
	g.AddEdge(0, 1, 3)
	g.AddEdge(2, 1, 2)
	c := g.Freeze()
	r := c.EdgeRelation(1)
	if r.Pairs() != 2 || !r.Contains(0, 3) || !r.Contains(2, 2) {
		t.Fatal("EdgeRelation wrong")
	}
	if c.EdgeRelation(0).Pairs() != 0 {
		t.Fatal("label 0 relation should be empty")
	}
}

// TestLazyInitConcurrent hammers the lazily built successor/predecessor
// tables from many goroutines at once. Run under -race this pins the
// sync.Once guard that replaced the old "force construction up front"
// workaround in the parallel census.
func TestLazyInitConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := New(60, 4)
	for i := 0; i < 400; i++ {
		g.AddEdge(rng.Intn(60), rng.Intn(4), rng.Intn(60))
	}
	c := g.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for l := 0; l < 4; l++ {
				succ := c.SuccessorSets(l)
				pred := c.PredecessorSets(l)
				op := c.LabelOperand(l)
				if len(succ) != 60 || len(pred) != 60 || op.N != 60 {
					t.Errorf("worker %d label %d: bad table sizes", w, l)
				}
			}
		}(w)
	}
	wg.Wait()
	// All goroutines must have observed the same cached tables.
	for l := 0; l < 4; l++ {
		if &c.SuccessorSets(l)[0] != &c.LabelOperand(l).Dense[0] {
			t.Fatalf("label %d: operand does not share the cached successor table", l)
		}
	}
}

// TestLabelOperandMatchesCSR checks the dual forms of an operand agree.
func TestLabelOperandMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := New(40, 3)
	for i := 0; i < 200; i++ {
		g.AddEdge(rng.Intn(40), rng.Intn(3), rng.Intn(40))
	}
	c := g.Freeze()
	ops := c.Operands(true)
	if len(ops) != 3 {
		t.Fatalf("got %d operands", len(ops))
	}
	for l, op := range ops {
		for v := 0; v < 40; v++ {
			ts := op.Targets[op.Offsets[v]:op.Offsets[v+1]]
			if len(ts) != c.OutDegree(v, l) || op.OutDegree(v) != c.OutDegree(v, l) {
				t.Fatalf("label %d vertex %d: CSR degree mismatch", l, v)
			}
			d := op.Dense[v]
			if (d == nil) != (len(ts) == 0) {
				t.Fatalf("label %d vertex %d: dense row nil-ness disagrees", l, v)
			}
			for _, tgt := range ts {
				if !d.Contains(int(tgt)) {
					t.Fatalf("label %d: dense row missing target %d of %d", l, tgt, v)
				}
			}
		}
	}
}

func TestPredecessorCSRMirrorsForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(60)
		labels := 1 + rng.Intn(3)
		g := New(n, labels)
		for i := 0; i < rng.Intn(4*n); i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(labels), rng.Intn(n))
		}
		c := g.Freeze()
		for l := 0; l < labels; l++ {
			op := c.PredecessorCSR(l)
			if op.N != n {
				t.Fatalf("operand universe %d != %d", op.N, n)
			}
			// Every reverse pair (v, u) must be a forward edge (u, l, v),
			// rows must be sorted, and the pair counts must match.
			total := 0
			for v := 0; v < n; v++ {
				row := op.Targets[op.Offsets[v]:op.Offsets[v+1]]
				for i, u := range row {
					if i > 0 && row[i-1] >= u {
						t.Fatalf("label %d: predecessor row %d not strictly ascending", l, v)
					}
					if !g.HasEdge(int(u), l, v) {
						t.Fatalf("label %d: reverse pair (%d,%d) has no forward edge", l, v, u)
					}
				}
				total += len(row)
			}
			if total != len(c.targets[l]) {
				t.Fatalf("label %d: reverse CSR has %d pairs, forward has %d", l, total, len(c.targets[l]))
			}
		}
	}
}

func TestPredecessorOperandDenseAgrees(t *testing.T) {
	g := New(6, 2)
	g.AddEdge(0, 1, 3)
	g.AddEdge(2, 1, 3)
	g.AddEdge(5, 1, 0)
	c := g.Freeze()
	op := c.PredecessorOperand(1)
	if op.Dense == nil {
		t.Fatal("dual-form operand should carry dense predecessor sets")
	}
	for v := 0; v < 6; v++ {
		row := op.Targets[op.Offsets[v]:op.Offsets[v+1]]
		want := op.Dense[v]
		if want == nil {
			if len(row) != 0 {
				t.Fatalf("vertex %d: CSR row non-empty but dense row nil", v)
			}
			continue
		}
		if want.Count() != len(row) {
			t.Fatalf("vertex %d: dense count %d != CSR row length %d", v, want.Count(), len(row))
		}
		for _, u := range row {
			if !want.Contains(int(u)) {
				t.Fatalf("vertex %d: dense set missing predecessor %d", v, u)
			}
		}
	}
}

func TestPredecessorCSRConcurrent(t *testing.T) {
	g := New(40, 2)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		g.AddEdge(rng.Intn(40), rng.Intn(2), rng.Intn(40))
	}
	c := g.Freeze()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := 0; l < 2; l++ {
				c.PredecessorCSR(l)
				c.PredecessorOperand(l)
			}
		}()
	}
	wg.Wait()
}
