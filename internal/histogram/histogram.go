// Package histogram implements the bucket synopses used for path
// selectivity estimation: V-Optimal (exact dynamic programming and a
// greedy approximation), equi-width, equi-depth, and MaxDiff histograms
// over an integer frequency vector, plus an end-biased synopsis.
//
// A histogram here follows the paper's setting: the domain is the ordered
// label-path sequence produced by an ordering of Lk, the data distribution
// is the frequency vector f(ℓ) laid out in that order, and a point query
// for domain position i is answered with the average frequency of the
// bucket containing i (the uniform-within-bucket assumption).
//
// In the layer map (graph → bitset → paths → exec → pathsel) this package
// sits beside internal/ordering under internal/core: ordering lays the
// census out on the integer domain, histogram compresses that layout into
// the β-bucket synopsis estimates are answered from.
package histogram

import (
	"fmt"
	"sort"
)

// Estimator answers point queries over a frequency domain [0, N).
type Estimator interface {
	// Estimate returns the estimated frequency at domain position idx.
	Estimate(idx int64) float64
	// Buckets returns the number of buckets (synopsis size driver).
	Buckets() int
}

// Bucket is one histogram bucket: the half-open domain range [Lo, Hi),
// the sum of frequencies inside it, and the within-bucket sum of squared
// errors around the bucket mean (the variance the orderings try to
// minimize).
type Bucket struct {
	Lo, Hi int64
	Sum    int64
	SSE    float64
}

// Width returns the number of domain positions in the bucket.
func (b Bucket) Width() int64 { return b.Hi - b.Lo }

// Mean returns the bucket's average frequency — the estimate it yields.
func (b Bucket) Mean() float64 { return float64(b.Sum) / float64(b.Width()) }

// Histogram is a serial histogram: a partition of the domain [0, N) into
// contiguous buckets.
type Histogram struct {
	kind    string
	n       int64
	buckets []Bucket
	// bounds caches bucket Lo values for binary search at estimation time.
	bounds []int64
}

// Kind returns the construction algorithm name ("v-optimal",
// "v-optimal-dp", "equi-width", "equi-depth", "max-diff").
func (h *Histogram) Kind() string { return h.kind }

// DomainSize returns N.
func (h *Histogram) DomainSize() int64 { return h.n }

// Buckets implements Estimator.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Bucket returns the i-th bucket.
func (h *Histogram) Bucket(i int) Bucket { return h.buckets[i] }

// Find returns the index of the bucket containing domain position idx.
func (h *Histogram) Find(idx int64) int {
	if idx < 0 || idx >= h.n {
		panic(fmt.Sprintf("histogram: position %d out of domain [0,%d)", idx, h.n))
	}
	// First bucket whose Lo is > idx, minus one.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] > idx })
	return i - 1
}

// Estimate implements Estimator: the mean frequency of idx's bucket.
func (h *Histogram) Estimate(idx int64) float64 {
	return h.buckets[h.Find(idx)].Mean()
}

// TotalSSE returns the total within-bucket sum of squared errors — the
// quantity V-Optimal minimizes and domain ordering tries to shrink.
func (h *Histogram) TotalSSE() float64 {
	var t float64
	for _, b := range h.buckets {
		t += b.SSE
	}
	return t
}

// prefixes holds prefix sums of the data and its squares for O(1) range
// sums and SSEs.
type prefixes struct {
	sum   []int64
	sumSq []float64
}

func newPrefixes(data []int64) *prefixes {
	p := &prefixes{sum: make([]int64, len(data)+1), sumSq: make([]float64, len(data)+1)}
	for i, x := range data {
		p.sum[i+1] = p.sum[i] + x
		p.sumSq[i+1] = p.sumSq[i] + float64(x)*float64(x)
	}
	return p
}

// rangeSum returns Σ data[lo:hi].
func (p *prefixes) rangeSum(lo, hi int64) int64 { return p.sum[hi] - p.sum[lo] }

// rangeSSE returns Σ (data[i] − mean)² over [lo, hi).
func (p *prefixes) rangeSSE(lo, hi int64) float64 {
	if hi <= lo {
		return 0
	}
	n := float64(hi - lo)
	s := float64(p.rangeSum(lo, hi))
	return (p.sumSq[hi] - p.sumSq[lo]) - s*s/n
}

// fromBoundaries assembles a histogram from sorted bucket start positions
// (the first must be 0).
func fromBoundaries(kind string, data []int64, starts []int64) *Histogram {
	p := newPrefixes(data)
	n := int64(len(data))
	h := &Histogram{kind: kind, n: n}
	// Drop degenerate boundaries at or past the domain end (they would
	// create empty buckets; equi-depth on zero-mass data produces them).
	for len(starts) > 1 && starts[len(starts)-1] >= n {
		starts = starts[:len(starts)-1]
	}
	for i, lo := range starts {
		hi := n
		if i+1 < len(starts) {
			hi = starts[i+1]
		}
		h.buckets = append(h.buckets, Bucket{
			Lo: lo, Hi: hi,
			Sum: p.rangeSum(lo, hi),
			SSE: p.rangeSSE(lo, hi),
		})
		h.bounds = append(h.bounds, lo)
	}
	return h
}

// FromBuckets reconstructs a serial histogram from explicit buckets (the
// persistence path). Buckets must form a contiguous partition of [0, n).
// Unlike the builders this returns an error instead of panicking, because
// the input typically comes from a file.
func FromBuckets(kind string, n int64, buckets []Bucket) (*Histogram, error) {
	if n < 1 || len(buckets) == 0 {
		return nil, fmt.Errorf("histogram: empty reconstruction (n=%d, %d buckets)", n, len(buckets))
	}
	h := &Histogram{kind: kind, n: n}
	var prev int64
	for i, b := range buckets {
		if b.Lo != prev || b.Hi <= b.Lo {
			return nil, fmt.Errorf("histogram: bucket %d [%d,%d) breaks the partition at %d", i, b.Lo, b.Hi, prev)
		}
		prev = b.Hi
		h.buckets = append(h.buckets, b)
		h.bounds = append(h.bounds, b.Lo)
	}
	if prev != n {
		return nil, fmt.Errorf("histogram: buckets end at %d, want %d", prev, n)
	}
	return h, nil
}

func validate(data []int64, beta int) {
	if len(data) == 0 {
		panic("histogram: empty data distribution")
	}
	if beta < 1 {
		panic(fmt.Sprintf("histogram: need at least 1 bucket, got %d", beta))
	}
}

// clampBeta caps the bucket count at the domain size (every bucket must be
// non-empty).
func clampBeta(beta int, n int) int {
	if beta > n {
		return n
	}
	return beta
}
