package histogram

import (
	"math"
	"math/rand"
	"testing"
)

// naiveSSE computes Σ(x−mean)² directly.
func naiveSSE(data []int64) float64 {
	if len(data) == 0 {
		return 0
	}
	var sum float64
	for _, x := range data {
		sum += float64(x)
	}
	mean := sum / float64(len(data))
	var sse float64
	for _, x := range data {
		d := float64(x) - mean
		sse += d * d
	}
	return sse
}

func checkPartition(t *testing.T, h *Histogram, n int64) {
	t.Helper()
	var prev int64
	for i := 0; i < h.Buckets(); i++ {
		b := h.Bucket(i)
		if b.Lo != prev {
			t.Fatalf("bucket %d starts at %d, want %d (non-contiguous)", i, b.Lo, prev)
		}
		if b.Hi <= b.Lo {
			t.Fatalf("bucket %d empty: [%d,%d)", i, b.Lo, b.Hi)
		}
		prev = b.Hi
	}
	if prev != n {
		t.Fatalf("buckets end at %d, want %d", prev, n)
	}
}

func TestPrefixes(t *testing.T) {
	data := []int64{3, 1, 4, 1, 5}
	p := newPrefixes(data)
	if p.rangeSum(0, 5) != 14 || p.rangeSum(1, 3) != 5 || p.rangeSum(2, 2) != 0 {
		t.Fatal("rangeSum wrong")
	}
	if got, want := p.rangeSSE(0, 5), naiveSSE(data); math.Abs(got-want) > 1e-9 {
		t.Fatalf("rangeSSE = %v, want %v", got, want)
	}
	if p.rangeSSE(3, 3) != 0 {
		t.Fatal("empty range SSE should be 0")
	}
	if p.rangeSSE(2, 3) != 0 {
		t.Fatal("singleton SSE should be 0")
	}
}

func TestEquiWidthBasics(t *testing.T) {
	data := []int64{1, 1, 1, 9, 9, 9}
	h := EquiWidth(data, 2)
	if h.Kind() != "equi-width" || h.Buckets() != 2 || h.DomainSize() != 6 {
		t.Fatal("metadata wrong")
	}
	checkPartition(t, h, 6)
	if h.Estimate(0) != 1 || h.Estimate(5) != 9 {
		t.Fatalf("estimates wrong: %v %v", h.Estimate(0), h.Estimate(5))
	}
	if h.TotalSSE() != 0 {
		t.Fatalf("perfectly split data should have SSE 0, got %v", h.TotalSSE())
	}
}

func TestEquiWidthWidths(t *testing.T) {
	data := make([]int64, 100)
	h := EquiWidth(data, 7)
	checkPartition(t, h, 100)
	for i := 0; i < h.Buckets(); i++ {
		w := h.Bucket(i).Width()
		if w < 100/7 || w > 100/7+1 {
			t.Fatalf("bucket %d width %d not near-equal", i, w)
		}
	}
}

func TestEquiDepthMass(t *testing.T) {
	// Mass concentrated at the front: equi-depth must cut the front finely.
	data := []int64{100, 100, 1, 1, 1, 1, 1, 1, 1, 1}
	h := EquiDepth(data, 2)
	checkPartition(t, h, 10)
	if h.Bucket(0).Width() >= h.Bucket(1).Width() {
		t.Fatalf("equi-depth should make the heavy region narrow: widths %d, %d",
			h.Bucket(0).Width(), h.Bucket(1).Width())
	}
	// Bucket masses should be roughly balanced.
	m0, m1 := h.Bucket(0).Sum, h.Bucket(1).Sum
	if m0 < m1/3 || m1 < m0/3 {
		t.Fatalf("bucket masses too skewed: %d vs %d", m0, m1)
	}
}

func TestEquiDepthAllZeros(t *testing.T) {
	data := make([]int64, 20)
	h := EquiDepth(data, 4)
	checkPartition(t, h, 20)
	if h.Estimate(7) != 0 {
		t.Fatal("all-zero data should estimate 0")
	}
}

func TestMaxDiffBoundaries(t *testing.T) {
	// Jumps at 3 and 6: with β=3 the boundaries must land there.
	data := []int64{1, 1, 1, 50, 50, 50, 9, 9, 9}
	h := MaxDiff(data, 3)
	checkPartition(t, h, 9)
	if h.Buckets() != 3 {
		t.Fatalf("buckets = %d, want 3", h.Buckets())
	}
	if h.Bucket(1).Lo != 3 || h.Bucket(2).Lo != 6 {
		t.Fatalf("boundaries at %d, %d; want 3, 6", h.Bucket(1).Lo, h.Bucket(2).Lo)
	}
	if h.TotalSSE() != 0 {
		t.Fatal("piecewise-constant data should have zero SSE")
	}
}

func TestVOptimalDPExactOnPiecewise(t *testing.T) {
	data := []int64{5, 5, 5, 5, 2, 2, 2, 8, 8, 8, 8, 8}
	h := VOptimalDP(data, 3)
	checkPartition(t, h, int64(len(data)))
	if h.TotalSSE() > 1e-9 {
		t.Fatalf("DP should find the zero-SSE partition, got %v", h.TotalSSE())
	}
	if h.Bucket(1).Lo != 4 || h.Bucket(2).Lo != 7 {
		t.Fatalf("DP boundaries %d, %d; want 4, 7", h.Bucket(1).Lo, h.Bucket(2).Lo)
	}
}

// bruteForceVOptimalSSE finds the true minimal SSE by trying all
// partitions (exponential; tiny inputs only).
func bruteForceVOptimalSSE(data []int64, beta int) float64 {
	n := len(data)
	p := newPrefixes(data)
	best := math.Inf(1)
	// Choose beta-1 boundaries among positions 1..n-1.
	var rec func(startIdx int, starts []int64)
	rec = func(startIdx int, starts []int64) {
		if len(starts) == beta {
			var sse float64
			for i, lo := range starts {
				hi := int64(n)
				if i+1 < len(starts) {
					hi = starts[i+1]
				}
				sse += p.rangeSSE(lo, hi)
			}
			if sse < best {
				best = sse
			}
			return
		}
		for s := startIdx; s < n; s++ {
			rec(s+1, append(starts, int64(s)))
		}
	}
	rec(1, []int64{0})
	return best
}

func TestVOptimalDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(rng.Intn(30))
		}
		for beta := 1; beta <= 4; beta++ {
			h := VOptimalDP(data, beta)
			want := bruteForceVOptimalSSE(data, clampBeta(beta, n))
			if math.Abs(h.TotalSSE()-want) > 1e-6 {
				t.Fatalf("trial %d β=%d: DP SSE %v, brute force %v (data %v)",
					trial, beta, h.TotalSSE(), want, data)
			}
		}
	}
}

func TestVOptimalGreedyNearOptimal(t *testing.T) {
	// Greedy must be within a modest factor of the DP optimum and always a
	// valid partition with the requested bucket count.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(50)
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(rng.Intn(100))
		}
		for _, beta := range []int{2, 4, 8, 16} {
			g := VOptimal(data, beta)
			d := VOptimalDP(data, beta)
			checkPartition(t, g, int64(n))
			if g.Buckets() != beta {
				t.Fatalf("greedy buckets = %d, want %d", g.Buckets(), beta)
			}
			if d.TotalSSE() > 1e-9 && g.TotalSSE() > 3*d.TotalSSE()+1e-9 {
				t.Fatalf("greedy SSE %v more than 3× optimum %v (β=%d)",
					g.TotalSSE(), d.TotalSSE(), beta)
			}
		}
	}
}

func TestVOptimalFlatData(t *testing.T) {
	data := make([]int64, 16)
	for i := range data {
		data[i] = 7
	}
	h := VOptimal(data, 4)
	checkPartition(t, h, 16)
	if h.Buckets() != 4 {
		t.Fatalf("flat data should still split to 4 buckets, got %d", h.Buckets())
	}
	if h.Estimate(3) != 7 {
		t.Fatal("flat estimate wrong")
	}
}

func TestVOptimalSingleBucket(t *testing.T) {
	data := []int64{1, 2, 3, 4}
	h := VOptimal(data, 1)
	if h.Buckets() != 1 {
		t.Fatalf("buckets = %d, want 1", h.Buckets())
	}
	if h.Estimate(0) != 2.5 {
		t.Fatalf("mean estimate = %v, want 2.5", h.Estimate(0))
	}
}

func TestBetaLargerThanDomain(t *testing.T) {
	data := []int64{4, 8, 15}
	for _, build := range []func([]int64, int) *Histogram{EquiWidth, EquiDepth, MaxDiff, VOptimal, VOptimalDP} {
		h := build(data, 10)
		checkPartition(t, h, 3)
		if h.Buckets() > 3 {
			t.Fatalf("%s: %d buckets exceed domain size", h.Kind(), h.Buckets())
		}
		// With β ≥ N every estimate is exact.
		for i := int64(0); i < 3; i++ {
			if h.Estimate(i) != float64(data[i]) {
				t.Fatalf("%s: singleton estimate wrong at %d", h.Kind(), i)
			}
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty data": func() { VOptimal(nil, 3) },
		"zero beta":  func() { VOptimal([]int64{1}, 0) },
		"neg beta":   func() { EquiWidth([]int64{1}, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFindAndEstimatePanics(t *testing.T) {
	h := EquiWidth([]int64{1, 2, 3, 4}, 2)
	if h.Find(0) != 0 || h.Find(3) != 1 {
		t.Fatal("Find wrong")
	}
	for _, idx := range []int64{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Find(%d) should panic", idx)
				}
			}()
			h.Find(idx)
		}()
	}
}

func TestBucketAccessors(t *testing.T) {
	b := Bucket{Lo: 2, Hi: 6, Sum: 12}
	if b.Width() != 4 || b.Mean() != 3 {
		t.Fatalf("Width/Mean = %d/%v", b.Width(), b.Mean())
	}
}

func TestHistogramSSEConsistency(t *testing.T) {
	// TotalSSE must equal Σ naive SSE over bucket slices.
	rng := rand.New(rand.NewSource(4))
	data := make([]int64, 200)
	for i := range data {
		data[i] = int64(rng.Intn(50))
	}
	for _, h := range []*Histogram{EquiWidth(data, 9), EquiDepth(data, 9), VOptimal(data, 9), MaxDiff(data, 9)} {
		var want float64
		for i := 0; i < h.Buckets(); i++ {
			b := h.Bucket(i)
			want += naiveSSE(data[b.Lo:b.Hi])
		}
		if math.Abs(h.TotalSSE()-want) > 1e-6 {
			t.Fatalf("%s: TotalSSE %v != naive %v", h.Kind(), h.TotalSSE(), want)
		}
	}
}

func TestVOptimalBeatsEquiWidthOnSkew(t *testing.T) {
	// On a skewed distribution, V-Optimal must achieve ≤ equi-width SSE.
	rng := rand.New(rand.NewSource(5))
	data := make([]int64, 300)
	for i := range data {
		if rng.Intn(10) == 0 {
			data[i] = int64(1000 + rng.Intn(1000))
		} else {
			data[i] = int64(rng.Intn(10))
		}
	}
	for _, beta := range []int{4, 16, 64} {
		vo, ew := VOptimal(data, beta), EquiWidth(data, beta)
		if vo.TotalSSE() > ew.TotalSSE()+1e-9 {
			t.Fatalf("β=%d: V-Optimal SSE %v worse than equi-width %v",
				beta, vo.TotalSSE(), ew.TotalSSE())
		}
	}
}

func TestEndBiased(t *testing.T) {
	data := []int64{1, 100, 2, 90, 3}
	e := NewEndBiased(data, 3) // 2 singletons + rest
	if e.Buckets() != 3 {
		t.Fatalf("Buckets = %d, want 3", e.Buckets())
	}
	if e.Estimate(1) != 100 || e.Estimate(3) != 90 {
		t.Fatal("top values must be exact")
	}
	if got := e.Estimate(0); got != 2 { // (1+2+3)/3
		t.Fatalf("rest mean = %v, want 2", got)
	}
}

func TestEndBiasedAllSingleton(t *testing.T) {
	data := []int64{5, 6}
	e := NewEndBiased(data, 10)
	if e.Estimate(0) != 5 || e.Estimate(1) != 6 {
		t.Fatal("β ≥ N must be exact")
	}
}

func TestEstimatorInterface(t *testing.T) {
	var _ Estimator = &Histogram{}
	var _ Estimator = &EndBiased{}
}
