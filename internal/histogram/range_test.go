package histogram

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimateRangeExactOnBucketBoundaries(t *testing.T) {
	data := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	h := EquiWidth(data, 4) // buckets [0,2) [2,4) [4,6) [6,8)
	// Whole domain is always exact.
	if got := h.EstimateRange(0, 8); got != 36 {
		t.Fatalf("EstimateRange(0,8) = %v, want 36", got)
	}
	// Bucket-aligned ranges are exact.
	if got := h.EstimateRange(2, 6); got != 3+4+5+6 {
		t.Fatalf("EstimateRange(2,6) = %v, want 18", got)
	}
	if got := h.EstimateRange(0, 2); got != 3 {
		t.Fatalf("EstimateRange(0,2) = %v, want 3", got)
	}
}

func TestEstimateRangePartialBuckets(t *testing.T) {
	data := []int64{10, 20, 30, 40}
	h := EquiWidth(data, 2) // [0,2) sum 30, [2,4) sum 70
	// [1,3): half of bucket 0 (mean 15) + half of bucket 1 (mean 35).
	if got := h.EstimateRange(1, 3); math.Abs(got-50) > 1e-9 {
		t.Fatalf("EstimateRange(1,3) = %v, want 50", got)
	}
	// Range inside one bucket.
	if got := h.EstimateRange(2, 3); math.Abs(got-35) > 1e-9 {
		t.Fatalf("EstimateRange(2,3) = %v, want 35", got)
	}
}

func TestEstimateRangeEmptyAndPanics(t *testing.T) {
	h := EquiWidth([]int64{1, 2, 3}, 2)
	if got := h.EstimateRange(1, 1); got != 0 {
		t.Fatalf("empty range = %v, want 0", got)
	}
	for name, fn := range map[string]func(){
		"lo<0":  func() { h.EstimateRange(-1, 2) },
		"hi>n":  func() { h.EstimateRange(0, 4) },
		"lo>hi": func() { h.EstimateRange(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEstimateRangeConsistentWithPoints(t *testing.T) {
	// A range estimate must equal the sum of its point estimates (both are
	// bucket means under the uniform assumption).
	rng := rand.New(rand.NewSource(8))
	data := make([]int64, 97)
	for i := range data {
		data[i] = int64(rng.Intn(50))
	}
	for _, h := range []*Histogram{VOptimal(data, 7), EquiDepth(data, 7), MaxDiff(data, 7)} {
		for trial := 0; trial < 50; trial++ {
			lo := int64(rng.Intn(len(data)))
			hi := lo + int64(rng.Intn(len(data)-int(lo)+1))
			var want float64
			for i := lo; i < hi; i++ {
				want += h.Estimate(i)
			}
			if got := h.EstimateRange(lo, hi); math.Abs(got-want) > 1e-6 {
				t.Fatalf("%s: EstimateRange(%d,%d) = %v, point-sum %v", h.Kind(), lo, hi, got, want)
			}
		}
	}
}

func TestEstimateRangeFullDomainAlwaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]int64, 64)
	var total float64
	for i := range data {
		data[i] = int64(rng.Intn(100))
		total += float64(data[i])
	}
	for _, beta := range []int{1, 3, 16, 64} {
		h := VOptimal(data, beta)
		if got := h.EstimateRange(0, 64); math.Abs(got-total) > 1e-6 {
			t.Fatalf("β=%d: full-domain range %v, want %v", beta, got, total)
		}
	}
}
