package histogram

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchData synthesizes a skewed frequency vector of n positions,
// resembling a label-path census distribution.
func benchData(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]int64, n)
	for i := range data {
		if rng.Intn(8) == 0 {
			data[i] = int64(rng.Intn(10000))
		} else {
			data[i] = int64(rng.Intn(50))
		}
	}
	return data
}

func BenchmarkBuilders(b *testing.B) {
	builders := []struct {
		name  string
		build func([]int64, int) *Histogram
	}{
		{"equi-width", EquiWidth},
		{"equi-depth", EquiDepth},
		{"max-diff", MaxDiff},
		{"v-optimal", VOptimal},
	}
	for _, n := range []int{1000, 10000, 55986} {
		data := benchData(n, int64(n))
		beta := n / 64
		for _, bl := range builders {
			b.Run(fmt.Sprintf("%s/N=%d", bl.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					h := bl.build(data, beta)
					if h.Buckets() == 0 {
						b.Fatal("no buckets")
					}
				}
			})
		}
	}
}

func BenchmarkVOptimalDP(b *testing.B) {
	// The exact DP is O(N²β); bench at the scale it is actually used
	// (validation-sized domains).
	data := benchData(400, 1)
	b.Run("N=400/beta=16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = VOptimalDP(data, 16)
		}
	})
}

func BenchmarkEstimate(b *testing.B) {
	data := benchData(55986, 2)
	for _, beta := range []int{437, 6998, 27993} {
		h := VOptimal(data, beta)
		b.Run(fmt.Sprintf("beta=%d", beta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = h.Estimate(int64(i) % h.DomainSize())
			}
		})
	}
}

func BenchmarkEstimateRange(b *testing.B) {
	data := benchData(55986, 3)
	h := VOptimal(data, 1749)
	n := h.DomainSize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i) % (n / 2)
		_ = h.EstimateRange(lo, lo+n/4)
	}
}
