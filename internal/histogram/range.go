package histogram

import "fmt"

// EstimateRange answers a range query: the estimated total frequency over
// the domain interval [lo, hi). Fully covered buckets contribute their
// exact stored sums; the two edge buckets contribute their mean times the
// overlap width (the uniform-within-bucket assumption, as for point
// queries). EstimateRange(0, N) is exact.
func (h *Histogram) EstimateRange(lo, hi int64) float64 {
	if lo < 0 || hi > h.n || lo > hi {
		panic(fmt.Sprintf("histogram: range [%d,%d) outside domain [0,%d)", lo, hi, h.n))
	}
	if lo == hi {
		return 0
	}
	var total float64
	for i := h.Find(lo); i < len(h.buckets); i++ {
		b := h.buckets[i]
		if b.Lo >= hi {
			break
		}
		from, to := b.Lo, b.Hi
		if lo > from {
			from = lo
		}
		if hi < to {
			to = hi
		}
		if from == b.Lo && to == b.Hi {
			total += float64(b.Sum)
		} else {
			total += b.Mean() * float64(to-from)
		}
	}
	return total
}
