package histogram

import (
	"container/heap"
	"sort"
)

// EquiWidth builds a histogram whose buckets span (near-)equal numbers of
// domain positions — the classic baseline shown in the paper's Figure 1.
func EquiWidth(data []int64, beta int) *Histogram {
	validate(data, beta)
	n := int64(len(data))
	beta = clampBeta(beta, len(data))
	starts := make([]int64, 0, beta)
	for i := 0; i < beta; i++ {
		starts = append(starts, int64(i)*n/int64(beta))
	}
	return fromBoundaries("equi-width", data, dedupe(starts))
}

// EquiDepth builds a histogram whose buckets hold (near-)equal total
// frequency mass.
func EquiDepth(data []int64, beta int) *Histogram {
	validate(data, beta)
	beta = clampBeta(beta, len(data))
	p := newPrefixes(data)
	n := int64(len(data))
	total := p.rangeSum(0, n)
	starts := []int64{0}
	for b := 1; b < beta; b++ {
		target := total * int64(b) / int64(beta)
		// First position whose cumulative mass exceeds the target.
		lo := sort.Search(len(data), func(i int) bool { return p.sum[i+1] > target })
		starts = append(starts, int64(lo))
	}
	return fromBoundaries("equi-depth", data, dedupe(starts))
}

// MaxDiff places bucket boundaries at the β−1 largest adjacent differences
// |data[i] − data[i−1]| in the (ordered) distribution.
func MaxDiff(data []int64, beta int) *Histogram {
	validate(data, beta)
	beta = clampBeta(beta, len(data))
	type gap struct {
		pos  int64
		size int64
	}
	gaps := make([]gap, 0, len(data)-1)
	for i := 1; i < len(data); i++ {
		d := data[i] - data[i-1]
		if d < 0 {
			d = -d
		}
		gaps = append(gaps, gap{pos: int64(i), size: d})
	}
	sort.Slice(gaps, func(i, j int) bool {
		if gaps[i].size != gaps[j].size {
			return gaps[i].size > gaps[j].size
		}
		return gaps[i].pos < gaps[j].pos
	})
	starts := []int64{0}
	for i := 0; i < beta-1 && i < len(gaps); i++ {
		starts = append(starts, gaps[i].pos)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return fromBoundaries("max-diff", data, dedupe(starts))
}

// VOptimalDP builds the exact V-Optimal histogram — the β-bucket partition
// minimizing total within-bucket SSE — with the Jagadish et al. dynamic
// program. O(N²·β) time, O(N·β) space: use for modest domains and as the
// quality reference for VOptimal.
func VOptimalDP(data []int64, beta int) *Histogram {
	validate(data, beta)
	n := len(data)
	beta = clampBeta(beta, n)
	p := newPrefixes(data)

	// cost[j][i] = minimal SSE of data[0:i] with exactly j buckets; i ≥ j.
	// choice[j][i] = start of the last bucket in that optimum.
	cost := make([][]float64, beta+1)
	choice := make([][]int32, beta+1)
	for j := range cost {
		cost[j] = make([]float64, n+1)
		choice[j] = make([]int32, n+1)
	}
	for i := 1; i <= n; i++ {
		cost[1][i] = p.rangeSSE(0, int64(i))
	}
	for j := 2; j <= beta; j++ {
		for i := j; i <= n; i++ {
			best, bestL := -1.0, -1
			for l := j - 1; l < i; l++ {
				c := cost[j-1][l] + p.rangeSSE(int64(l), int64(i))
				if bestL < 0 || c < best {
					best, bestL = c, l
				}
			}
			cost[j][i], choice[j][i] = best, int32(bestL)
		}
	}
	// Recover boundaries.
	starts := make([]int64, beta)
	i := n
	for j := beta; j >= 2; j-- {
		l := int(choice[j][i])
		starts[j-1] = int64(l)
		i = l
	}
	starts[0] = 0
	return fromBoundaries("v-optimal-dp", data, dedupe(starts))
}

// splitItem is a heap entry: the best split of one current bucket.
type splitItem struct {
	lo, hi    int64
	splitAt   int64
	reduction float64
}

type splitHeap []splitItem

func (h splitHeap) Len() int            { return len(h) }
func (h splitHeap) Less(i, j int) bool  { return h[i].reduction > h[j].reduction }
func (h splitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *splitHeap) Push(x interface{}) { *h = append(*h, x.(splitItem)) }
func (h *splitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// bestSplit scans bucket [lo, hi) for the split point minimizing the sum
// of the two halves' SSEs.
func bestSplit(p *prefixes, lo, hi int64) splitItem {
	whole := p.rangeSSE(lo, hi)
	best := splitItem{lo: lo, hi: hi, splitAt: -1}
	for s := lo + 1; s < hi; s++ {
		after := p.rangeSSE(lo, s) + p.rangeSSE(s, hi)
		red := whole - after
		if best.splitAt < 0 || red > best.reduction {
			best.splitAt, best.reduction = s, red
		}
	}
	return best
}

// VOptimal builds an approximate V-Optimal histogram by greedy top-down
// splitting: starting from one bucket, repeatedly split the bucket whose
// best split yields the largest SSE reduction, until β buckets exist.
// Zero-reduction splits (flat data) still proceed, so the result always
// has min(β, N) buckets, matching the paper's bucket-count sweeps.
//
// Runtime is O(N log β) amortized for balanced splits (worst case O(N·β)),
// which is what makes the paper-scale domains (N ≈ 56 000, β up to N/2)
// tractable; VOptimalDP is the exact reference. Tests bound the greedy
// SSE against the DP optimum on small inputs.
func VOptimal(data []int64, beta int) *Histogram {
	validate(data, beta)
	beta = clampBeta(beta, len(data))
	p := newPrefixes(data)
	n := int64(len(data))

	h := &splitHeap{}
	heap.Init(h)
	if first := bestSplit(p, 0, n); first.splitAt >= 0 {
		heap.Push(h, first)
	}
	starts := []int64{0}
	for len(starts) < beta && h.Len() > 0 {
		it := heap.Pop(h).(splitItem)
		starts = append(starts, it.splitAt)
		if left := bestSplit(p, it.lo, it.splitAt); left.splitAt >= 0 {
			heap.Push(h, left)
		}
		if right := bestSplit(p, it.splitAt, it.hi); right.splitAt >= 0 {
			heap.Push(h, right)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return fromBoundaries("v-optimal", data, dedupe(starts))
}

// dedupe sorts and removes duplicate boundary starts (duplicates arise on
// degenerate inputs, e.g. more buckets than mass positions in EquiDepth).
func dedupe(starts []int64) []int64 {
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := starts[:0]
	for i, s := range starts {
		if i == 0 || s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
