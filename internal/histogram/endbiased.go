package histogram

import "sort"

// EndBiased is an end-biased synopsis: the β−1 highest-frequency domain
// positions are stored exactly (singleton "buckets") and all remaining
// positions share one average. Unlike serial histograms its buckets are
// not contiguous, so it is a separate Estimator rather than a Histogram.
// It serves as an ablation baseline: it is insensitive to domain ordering,
// so comparing it against V-Optimal isolates how much of the accuracy win
// comes from ordering at all.
type EndBiased struct {
	exact    map[int64]int64
	restMean float64
	n        int64
}

// NewEndBiased builds an end-biased synopsis with beta total buckets
// (beta−1 singletons plus the catch-all).
func NewEndBiased(data []int64, beta int) *EndBiased {
	validate(data, beta)
	type pv struct {
		pos int64
		val int64
	}
	items := make([]pv, len(data))
	for i, v := range data {
		items[i] = pv{int64(i), v}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].val != items[j].val {
			return items[i].val > items[j].val
		}
		return items[i].pos < items[j].pos
	})
	k := beta - 1
	if k > len(items) {
		k = len(items)
	}
	e := &EndBiased{exact: make(map[int64]int64, k), n: int64(len(data))}
	var restSum int64
	for i, it := range items {
		if i < k {
			e.exact[it.pos] = it.val
		} else {
			restSum += it.val
		}
	}
	if rest := len(items) - k; rest > 0 {
		e.restMean = float64(restSum) / float64(rest)
	}
	return e
}

// Estimate implements Estimator.
func (e *EndBiased) Estimate(idx int64) float64 {
	if v, ok := e.exact[idx]; ok {
		return float64(v)
	}
	return e.restMean
}

// Buckets implements Estimator.
func (e *EndBiased) Buckets() int { return len(e.exact) + 1 }
