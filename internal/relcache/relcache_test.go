package relcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/paths"
)

// rel builds a small relation over n vertices with the given edges.
func rel(n int, edges ...[2]int) *bitset.HybridRelation {
	bysrc := map[int][]int32{}
	for _, e := range edges {
		bysrc[e[0]] = append(bysrc[e[0]], int32(e[1]))
	}
	op := bitset.CSROperand{N: n, Offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		op.Offsets[v+1] = op.Offsets[v]
		seen := map[int32]bool{}
		for _, t := range bysrc[v] {
			if seen[t] {
				continue
			}
			seen[t] = true
		}
		var ts []int32
		for t := range seen {
			ts = append(ts, t)
		}
		for i := range ts { // insertion sort: tiny lists
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		for _, t := range ts {
			op.Targets = append(op.Targets, t)
			op.Offsets[v+1]++
		}
	}
	return bitset.HybridFromCSR(op, 0)
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New(Options{})
	p := paths.Path{1, 2, 3}
	r := rel(16, [2]int{0, 1}, [2]int{3, 7})
	if _, _, ok := c.Get(p); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put(p, false, r)
	got, reversed, ok := c.Get(p)
	if !ok || reversed || !got.Equal(r) {
		t.Fatal("round trip lost the relation or its orientation")
	}
	// Different label sequence, different entry.
	if _, _, ok := c.Get(paths.Path{1, 2, 4}); ok {
		t.Fatal("wrong labels hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOrientationCanonical pins the single-orientation storage contract:
// one entry serves both build directions (the consumer derives the other
// form), a cross-orientation Put replaces rather than duplicates, and
// the byte accounting therefore holds one relation per label sequence
// where the direction-keyed scheme held two.
func TestOrientationCanonical(t *testing.T) {
	c := New(Options{Shards: 1})
	p := paths.Path{1, 2}
	fwd := rel(16, [2]int{0, 1}, [2]int{3, 7})
	c.Put(p, false, fwd)
	oneEntry := c.Stats().Bytes

	// A consumer wanting the reversed form still hits: it gets the stored
	// forward relation plus the orientation flag and derives the inverse.
	got, reversed, ok := c.Get(p)
	if !ok || reversed {
		t.Fatalf("lookup after forward put: ok=%v reversed=%v", ok, reversed)
	}
	inv := bitset.NewHybrid(16, 0)
	got.ReverseInto(inv)
	if inv.Pairs() != 2 || !inv.Contains(1, 0) || !inv.Contains(7, 3) {
		t.Fatal("derived inverse is wrong")
	}

	// Publishing the reversed form replaces the entry instead of storing a
	// second relation for the same labels.
	c.Put(p, true, inv)
	if c.Len() != 1 {
		t.Fatalf("cross-orientation put duplicated: %d entries", c.Len())
	}
	if got, reversed, ok = c.Get(p); !ok || !reversed || !got.Equal(inv) {
		t.Fatal("replacement lost the reversed relation")
	}
	if bytes := c.Stats().Bytes; bytes != oneEntry {
		t.Fatalf("both-orientation workload accounts %d bytes, want single-entry %d", bytes, oneEntry)
	}
}

// TestPutFaultInjection drives the relcache.put fault site: a simulated
// clone-allocation failure must degrade to a counted rejection — no
// entry, no corruption, service continues — and stores succeed again
// once the fault clears.
func TestPutFaultInjection(t *testing.T) {
	faultinject.Install(faultinject.NewInjector(faultinject.Rule{
		Site: "relcache.put", Action: faultinject.ActFail,
	}))
	defer faultinject.Uninstall()
	c := New(Options{Shards: 1})
	p := paths.Path{3, 4}
	c.Put(p, false, rel(16, [2]int{0, 1}))
	if c.Len() != 0 {
		t.Fatal("entry stored despite injected allocation failure")
	}
	st := c.Stats()
	if st.Rejected != 1 || st.Puts != 0 {
		t.Fatalf("stats = %+v, want 1 rejection and 0 puts", st)
	}
	faultinject.Uninstall()
	c.Put(p, false, rel(16, [2]int{0, 1}))
	if _, _, ok := c.Get(p); !ok {
		t.Fatal("store failed after fault cleared")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	// Equal label subsequences share an entry regardless of the slice they
	// came from, and multi-byte labels never collide with label pairs.
	c := New(Options{})
	long := paths.Path{9, 1, 2, 9}
	c.Put(long[1:3], false, rel(8, [2]int{0, 1}))
	if _, _, ok := c.Get(paths.Path{1, 2}); !ok {
		t.Fatal("same labels from a different slice missed")
	}
	// Varint encoding is self-delimiting: {300} must not alias {44, 2} or
	// any other pair that would collide under naive byte concatenation.
	c.Put(paths.Path{300}, false, rel(8, [2]int{1, 2}))
	if _, _, ok := c.Get(paths.Path{172, 2}); ok {
		t.Fatal("multi-byte label aliased a label pair")
	}
}

func TestPutClonesAndGetIsImmutable(t *testing.T) {
	c := New(Options{})
	p := paths.Path{4, 5}
	r := rel(16, [2]int{2, 3}, [2]int{2, 4})
	c.Put(p, false, r)
	r.Reset() // caller's pooled buffer is reused...
	got, _, ok := c.Get(p)
	if !ok || got.Pairs() != 2 || !got.Contains(2, 3) {
		t.Fatal("cache entry aliased the caller's buffer")
	}
}

func TestLRUEvictionOrderAndAccounting(t *testing.T) {
	// Single shard so eviction order is observable. Budget fits ~3 of the
	// identical-size entries.
	base := rel(64, [2]int{0, 1}).MemSize()
	c := New(Options{MaxBytes: int64(base+200) * 3, Shards: 1})
	ps := []paths.Path{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	for _, p := range ps[:3] {
		c.Put(p, false, rel(64, [2]int{0, 1}))
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("expected 3 entries, have %d (budget %d, entry ~%d)", got, (base+200)*3, base)
	}
	// Touch {1,1} so {2,2} becomes the LRU victim.
	if _, _, ok := c.Get(ps[0]); !ok {
		t.Fatal("entry 0 missing")
	}
	c.Put(ps[3], false, rel(64, [2]int{0, 1}))
	if _, _, ok := c.Get(ps[1]); ok {
		t.Fatal("LRU victim {2,2} survived")
	}
	for _, p := range []paths.Path{ps[0], ps[2], ps[3]} {
		if _, _, ok := c.Get(p); !ok {
			t.Fatalf("entry %v wrongly evicted", p)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("eviction not counted")
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("accounting over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
}

func TestOversizeRejected(t *testing.T) {
	small := New(Options{MaxBytes: 128, Shards: 1})
	var edges [][2]int
	for i := 0; i < 60; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 64})
	}
	small.Put(paths.Path{1, 2}, false, rel(64, edges...))
	if small.Len() != 0 {
		t.Fatal("oversize entry inserted")
	}
	st := small.Stats()
	if st.Rejected != 1 || st.Puts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	c := New(Options{Shards: 1})
	p := paths.Path{7, 8}
	c.Put(p, false, rel(16, [2]int{0, 1}))
	c.Put(p, false, rel(16, [2]int{0, 1}, [2]int{0, 2}))
	got, _, ok := c.Get(p)
	if !ok || got.Pairs() != 2 {
		t.Fatal("overwrite did not replace the entry")
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate entries after overwrite: %d", c.Len())
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(Options{})
	p := paths.Path{1}
	if c.Contains(p) {
		t.Fatal("empty cache contains")
	}
	c.Put(p, false, rel(8, [2]int{0, 1}))
	if !c.Contains(p) {
		t.Fatal("Contains missed the entry")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Contains touched hit/miss counters: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				p := paths.Path{rng.Intn(8), rng.Intn(8)}
				if rng.Intn(2) == 0 {
					c.Put(p, rng.Intn(2) == 0, rel(32, [2]int{rng.Intn(32), rng.Intn(32)}))
				} else if got, _, ok := c.Get(p); ok && got.Universe() != 32 {
					t.Error("corrupt entry")
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("over budget after concurrent load: %d > %d", st.Bytes, st.MaxBytes)
	}
}

// checkInvariants walks every shard and verifies the byte accounting and
// recency stamps agree with the map: accounted bytes equal the summed
// entry costs and stay under the shard cap, every entry's map key matches
// its recorded key, and no stamp is ahead of the cache clock (stamps are
// unique ticks of it).
func checkInvariants(t *testing.T, c *Cache) {
	t.Helper()
	clock := c.clock.Load()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var bytes int64
		seen := map[int64]string{}
		for k, e := range sh.entries {
			if e.key != k {
				sh.mu.Unlock()
				t.Fatalf("shard %d: entry %q stored under key %q", i, e.key, k)
			}
			bytes += e.cost
			u := e.used.Load()
			if u <= 0 || u > clock {
				sh.mu.Unlock()
				t.Fatalf("shard %d: entry %q stamp %d outside (0, clock=%d]", i, k, u, clock)
			}
			if prev, dup := seen[u]; dup {
				sh.mu.Unlock()
				t.Fatalf("shard %d: entries %q and %q share stamp %d", i, prev, k, u)
			}
			seen[u] = k
		}
		if bytes != sh.bytes.Load() {
			sh.mu.Unlock()
			t.Fatalf("shard %d: map holds %d bytes, accounted %d", i, bytes, sh.bytes.Load())
		}
		if sh.bytes.Load() > sh.cap {
			sh.mu.Unlock()
			t.Fatalf("shard %d: %d bytes over cap %d", i, sh.bytes.Load(), sh.cap)
		}
		sh.mu.Unlock()
	}
}

// FuzzCacheInvariants drives a random Put/Get sequence and checks the LRU
// list, map, and byte accounting stay mutually consistent and under
// budget at every step.
func FuzzCacheInvariants(f *testing.F) {
	f.Add(int64(1), uint16(4096), uint8(1), []byte{0, 1, 2, 3})
	f.Add(int64(7), uint16(600), uint8(3), []byte{9, 9, 9, 1, 250})
	f.Fuzz(func(t *testing.T, seed int64, budget uint16, shards uint8, ops []byte) {
		c := New(Options{MaxBytes: int64(budget), Shards: int(shards)})
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			p := paths.Path{int(op) % 5, int(op) / 5 % 5}
			switch op % 3 {
			case 0:
				c.Put(p, op%2 == 0, rel(16+rng.Intn(32), [2]int{rng.Intn(16), rng.Intn(16)}))
			case 1:
				c.Get(p)
			default:
				c.Contains(p)
			}
			checkInvariants(t, c)
		}
		st := c.Stats()
		if st.Entries != c.Len() {
			t.Fatalf("Stats.Entries %d != Len %d", st.Entries, c.Len())
		}
	})
}

// TestGetStampsRecency pins the clock-LRU contract at the stamp level:
// a Get refreshes its entry's stamp to a fresh clock tick, so the entry
// outlives untouched neighbors at the next eviction.
func TestGetStampsRecency(t *testing.T) {
	c := New(Options{Shards: 1})
	a, b := paths.Path{1, 1}, paths.Path{2, 2}
	c.Put(a, false, rel(16, [2]int{0, 1}))
	c.Put(b, false, rel(16, [2]int{0, 1}))
	sh := &c.shards[0]
	ua0 := sh.entries[key(a)].used.Load()
	if _, _, ok := c.Get(a); !ok {
		t.Fatal("entry missing")
	}
	ua1 := sh.entries[key(a)].used.Load()
	ub := sh.entries[key(b)].used.Load()
	if ua1 <= ua0 || ua1 <= ub {
		t.Fatalf("Get did not refresh recency: a %d→%d, b %d", ua0, ua1, ub)
	}
	if got := c.clock.Load(); ua1 != got {
		t.Fatalf("refreshed stamp %d is not the latest clock tick %d", ua1, got)
	}
}

// TestLockWaitTallies verifies contended acquisitions are measured: a
// reader blocked behind a held write lock must add to the shard's
// lock-wait tally, and an uncontended history must not.
func TestLockWaitTallies(t *testing.T) {
	c := New(Options{Shards: 1})
	p := paths.Path{1, 2}
	c.Put(p, false, rel(16, [2]int{0, 1}))
	c.Get(p)
	st := c.Stats()
	if st.Shards != 1 || len(st.ShardLockWaitNs) != 1 {
		t.Fatalf("shard accounting: %+v", st)
	}
	if st.LockWaitNs != 0 {
		t.Fatalf("uncontended workload tallied %dns of lock wait", st.LockWaitNs)
	}
	sh := &c.shards[0]
	sh.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Get(p) // blocks: TryRLock fails, timed RLock waits
	}()
	time.Sleep(2 * time.Millisecond)
	sh.mu.Unlock()
	<-done
	st = c.Stats()
	if st.LockWaitNs <= 0 {
		t.Fatal("blocked reader tallied no lock wait")
	}
	if st.ShardLockWaitNs[0] != st.LockWaitNs {
		t.Fatalf("aggregate %d != single shard tally %d", st.LockWaitNs, st.ShardLockWaitNs[0])
	}
}

func TestStatsString(t *testing.T) {
	// Smoke: Stats fields render; guards against accidental field removal.
	c := New(Options{MaxBytes: 1 << 16, Shards: 2})
	c.Put(paths.Path{1, 2}, false, rel(16, [2]int{0, 1}))
	c.Get(paths.Path{1, 2})
	s := fmt.Sprintf("%+v", c.Stats())
	if s == "" {
		t.Fatal("empty stats")
	}
}
