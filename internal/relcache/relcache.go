// Package relcache is the workload-level segment-relation cache: a
// sharded, size-bounded LRU of materialized label-segment relations
// (bitset.HybridRelation), keyed by the canonical label sequence alone
// — one entry per sequence, whichever direction it was built in. The
// executor (internal/exec) consults it at every
// segment boundary — a query that re-walks a label subsequence another
// query already materialized adopts the finished relation instead of
// recomputing it — and the batch API (pathsel.Estimator.ExecuteBatch)
// runs a whole workload through one shared cache, which is where the
// amortization pays: real path-query workloads repeat label subsequences
// constantly.
//
// # Immutability and the pools
//
// Execution relations live in per-call pooled buffers that are reused and
// rewritten step after step, so the cache can alias nothing: Put clones
// the relation into a private exact-size copy (copy-on-adopt going in),
// and consumers copy a Get result into their own pooled buffer before
// touching it (copy-on-adopt coming out). Cached relations are therefore
// immutable for their whole lifetime, which is what makes a cache hit
// bit-identical to recomputation: relation construction is deterministic
// and representation (sparse/dense per row, active order) is a pure
// function of the pair set and the promotion limit, so a copied cache
// entry is structurally indistinguishable from a freshly built relation.
//
// # Keys and eviction
//
// Keys are position-independent: the segment p[2:4) of one query and
// p[0:2) of another share an entry when their label sequences match.
// Keys are also orientation-canonical: the executor's leftward growth
// operates on reversed relations — reversed(p[i:k)) is the inverse pair
// set of p[i:k) — but the two forms are pure derivations of each other
// (bitset.HybridRelation.ReverseInto), so the cache stores exactly one
// relation per label sequence, tagged with the orientation it holds, and
// a consumer wanting the other form derives it on adoption. One entry
// then serves forward and backward plans alike, which both halves the
// byte footprint of mixed-direction workloads and turns what used to be
// a cross-orientation miss into a hit.
//
// Recency is a per-entry stamp from a cache-wide monotonic clock,
// refreshed by Get with a single atomic store; eviction (under a shard's
// write lock, in Put) removes the smallest-stamp entry until the new one
// fits. Stamps are unique and monotonic, so eviction order is exactly
// least-recently-used and fully deterministic for a sequential history —
// the stamp scheme trades the linked-list bookkeeping (which forced Get
// to take an exclusive lock) for an approximation that only differs under
// racing Gets, where "recency order" was never well-defined anyway. Cost
// is accounted in exact bytes (bitset.HybridRelation.MemSize), so the
// bound is a real memory budget, not an entry count. Relations larger
// than a shard's whole budget are rejected outright rather than flushing
// the shard.
//
// # Locking
//
// Each shard has one RWMutex: Get and Contains take the read side — a
// warm workload's concurrent readers share every shard — and only Put
// takes the write side. Lock acquisitions try the uncontended fast path
// first and fall back to a timed wait whose duration feeds per-shard
// lock-wait tallies (Stats.LockWaitNs, Stats.ShardLockWaitNs), so shard
// contention is observable in production stats, not just in mutex
// profiles.
//
// A cache is bound to one graph: keys carry no graph identity, so sharing
// a cache across graphs returns wrong relations. Owners (an Estimator, a
// batch run) must create one cache per graph.
package relcache

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/paths"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxBytes is the default total byte budget (64 MiB).
	DefaultMaxBytes = 64 << 20
	// DefaultShards is the default shard count. Shards bound lock
	// contention when batch workers execute queries concurrently; each
	// shard owns 1/DefaultShards of the byte budget.
	DefaultShards = 8
	// maxShards caps the shard count: beyond this, per-shard budgets get
	// so small that sharding evicts entries a unified cache would keep.
	maxShards = 256
)

// Options configures a Cache.
type Options struct {
	// MaxBytes is the total byte budget across all shards (≤ 0 selects
	// DefaultMaxBytes). Entry cost is the cached relation's exact
	// MemSize plus key and bookkeeping overhead.
	MaxBytes int64
	// Shards is the number of independently locked LRU shards (≤ 0
	// selects DefaultShards). Rounded up to a power of two and capped at
	// 256.
	Shards int
}

// Stats is a point-in-time snapshot of the cache's counters. Hits,
// Misses, Puts, Evictions, Rejected, and the lock-wait tallies are
// cumulative; Entries, Bytes, and MaxBytes describe current occupancy.
type Stats struct {
	Hits      uint64 // Get calls that returned a relation
	Misses    uint64 // Get calls that found nothing adoptable
	Puts      uint64 // successful inserts (including overwrites)
	Evictions uint64 // entries evicted to make room
	Rejected  uint64 // Put calls refused (relation larger than a shard budget)
	Entries   int    // live entries right now
	Bytes     int64  // accounted bytes right now
	MaxBytes  int64  // configured budget
	Shards    int    // configured shard count (after power-of-two rounding)
	// LockWaitNs is the total time callers spent blocked acquiring shard
	// locks (read and write side), summed across shards. Zero under an
	// uncontended workload — the fast path never starts a timer.
	LockWaitNs int64
	// ShardLockWaitNs breaks LockWaitNs down by shard, exposing skew: one
	// hot shard (a popular segment hashing with its neighbors) shows up
	// here while the aggregate still looks tame.
	ShardLockWaitNs []int64
}

// entry is one cached relation. reversed records which orientation of
// the label sequence rel holds; the other is derived by the consumer on
// adoption. used is the recency stamp — the cache clock's value at the
// entry's last Get (or its insertion) — written with a plain atomic
// store so readers holding only the shard's read lock can refresh it.
type entry struct {
	key      string
	rel      *bitset.HybridRelation
	reversed bool
	cost     int64
	used     atomic.Int64
}

// shard is one independently locked slice of the cache. bytes is written
// only under mu's write side but read lock-free by Stats, hence atomic.
type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
	bytes   atomic.Int64
	cap     int64
	waitNs  atomic.Int64
}

// rlock acquires the read side, tallying wait time when contended.
func (sh *shard) rlock() {
	if sh.mu.TryRLock() {
		return
	}
	start := time.Now()
	sh.mu.RLock()
	sh.waitNs.Add(time.Since(start).Nanoseconds())
}

// lock acquires the write side, tallying wait time when contended.
func (sh *shard) lock() {
	if sh.mu.TryLock() {
		return
	}
	start := time.Now()
	sh.mu.Lock()
	sh.waitNs.Add(time.Since(start).Nanoseconds())
}

// Cache is the sharded segment-relation cache. All methods are safe for
// concurrent use.
type Cache struct {
	shards []shard
	mask   uint32

	// clock is the cache-wide recency counter: every hit and insert takes
	// the next tick, so entry stamps are unique and monotonic.
	clock atomic.Int64

	hits, misses, puts, evictions, rejected atomic.Uint64
}

// New returns an empty cache with the given budget and shard count
// (zero-valued Options select the defaults).
func New(opt Options) *Cache {
	maxBytes := opt.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	n := opt.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so shard selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{shards: make([]shard, pow), mask: uint32(pow - 1)}
	per := maxBytes / int64(pow)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].cap = per
	}
	return c
}

// key builds the canonical cache key: the label sequence varint-encoded.
// Canonical means position- and orientation-independent — equal label
// subsequences key the same entry wherever they sit in their queries and
// whichever direction their relation was built in (the entry records
// which orientation it holds) — and unambiguous (varints self-delimit).
func key(p paths.Path) string {
	buf := make([]byte, 0, 2*len(p))
	for _, l := range p {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	return string(buf)
}

// shardFor hashes a key to its shard (FNV-1a).
func (c *Cache) shardFor(k string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return &c.shards[h&c.mask]
}

// Get returns the cached relation for the segment's label sequence,
// along with the orientation it holds (true = the reversed pair set), or
// (nil, false, false). A caller wanting the other orientation derives it
// (bitset.HybridRelation.ReverseInto) — which is why one entry serves
// both directions. The returned relation is shared and immutable: the
// caller must copy it (CopyInto / ReverseInto) before any mutation, and
// must verify it matches the caller's representation regime (Universe,
// SparseMax) before adopting it.
//
// Get takes only the shard's read lock — a hit refreshes recency with an
// atomic stamp, not a list splice — so concurrent warm readers never
// serialize on each other, only on a simultaneous Put to the same shard.
func (c *Cache) Get(p paths.Path) (rel *bitset.HybridRelation, reversed, ok bool) {
	k := key(p)
	sh := c.shardFor(k)
	sh.rlock()
	e, ok := sh.entries[k]
	if ok {
		e.used.Store(c.clock.Add(1))
		rel, reversed = e.rel, e.reversed
	}
	sh.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, false, false
	}
	c.hits.Add(1)
	return rel, reversed, true
}

// Contains reports whether the segment is cached (in either
// orientation), without touching the recency stamps or the hit/miss
// counters — the planner's cost probe (exec.Planner.Cached) must not
// perturb recency while enumerating O(k²) candidate segments.
func (c *Cache) Contains(p paths.Path) bool {
	k := key(p)
	sh := c.shardFor(k)
	sh.rlock()
	_, ok := sh.entries[k]
	sh.mu.RUnlock()
	return ok
}

// entryOverhead approximates an entry's bookkeeping bytes beyond the
// relation itself: the entry struct, the map slot, and the key header.
const entryOverhead = 96

// Put stores the segment's relation in the given orientation, cloning it
// so the cache entry stays valid while the caller's pooled buffers are
// reused (the clone is exact-size, so accounting is tight). An existing
// entry under the same label sequence is replaced whatever orientation
// it held — the canonical key keeps exactly one relation per sequence,
// and replacement (rather than skip) lets a fresh-regime relation oust a
// stale one that adoption guards were rejecting. Relations whose cost
// exceeds one shard's whole budget are rejected — caching them would
// flush everything else for an entry that cannot amortize — and the cost
// is priced from the source relation (CloneMemSize) before any copying,
// so an oversized relation published on every query of a workload costs
// a size computation, not a discarded multi-megabyte clone each time.
// The relcache.put fault site models the clone failing to allocate: a
// triggered injection turns the call into a counted rejection, the same
// graceful degradation as an oversized entry (service continues, the
// segment just stays uncached).
//
// Eviction scans the shard for the smallest recency stamp. The scan is
// O(entries), but it runs under the write lock Put already holds, only
// when over budget, and shard entry counts are small by construction
// (the byte budget divided by relation sizes) — the trade buys Get its
// read-lock-only hot path.
func (c *Cache) Put(p paths.Path, reversed bool, rel *bitset.HybridRelation) {
	k := key(p)
	cost := int64(rel.CloneMemSize()) + int64(len(k)) + entryOverhead
	sh := c.shardFor(k)
	if cost > sh.cap || faultinject.Fail("relcache.put") {
		c.rejected.Add(1)
		return
	}
	clone := rel.Clone()
	e := &entry{key: k, rel: clone, reversed: reversed, cost: cost}
	e.used.Store(c.clock.Add(1))
	sh.lock()
	if old, ok := sh.entries[k]; ok {
		sh.bytes.Add(-old.cost)
		delete(sh.entries, k)
	}
	var evicted uint64
	for sh.bytes.Load()+cost > sh.cap && len(sh.entries) > 0 {
		var victim *entry
		for _, cand := range sh.entries {
			if victim == nil || cand.used.Load() < victim.used.Load() {
				victim = cand
			}
		}
		sh.bytes.Add(-victim.cost)
		delete(sh.entries, victim.key)
		evicted++
	}
	sh.entries[k] = e
	sh.bytes.Add(cost)
	sh.mu.Unlock()
	c.puts.Add(1)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Stats snapshots the counters and occupancy. Occupancy is summed shard
// by shard without a global lock, so a concurrent snapshot is internally
// consistent per shard, not across shards — fine for reporting.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejected.Load(),
		Shards:    len(c.shards),
	}
	st.ShardLockWaitNs = make([]int64, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.rlock()
		st.Entries += len(sh.entries)
		sh.mu.RUnlock()
		st.Bytes += sh.bytes.Load()
		st.MaxBytes += sh.cap
		w := sh.waitNs.Load()
		st.ShardLockWaitNs[i] = w
		st.LockWaitNs += w
	}
	return st
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.rlock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}
