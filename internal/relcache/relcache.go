// Package relcache is the workload-level segment-relation cache: a
// sharded, size-bounded LRU of materialized label-segment relations
// (bitset.HybridRelation), keyed by the canonical label sequence alone
// — one entry per sequence, whichever direction it was built in. The
// executor (internal/exec) consults it at every
// segment boundary — a query that re-walks a label subsequence another
// query already materialized adopts the finished relation instead of
// recomputing it — and the batch API (pathsel.Estimator.ExecuteBatch)
// runs a whole workload through one shared cache, which is where the
// amortization pays: real path-query workloads repeat label subsequences
// constantly.
//
// # Immutability and the pools
//
// Execution relations live in per-call pooled buffers that are reused and
// rewritten step after step, so the cache can alias nothing: Put clones
// the relation into a private exact-size copy (copy-on-adopt going in),
// and consumers copy a Get result into their own pooled buffer before
// touching it (copy-on-adopt coming out). Cached relations are therefore
// immutable for their whole lifetime, which is what makes a cache hit
// bit-identical to recomputation: relation construction is deterministic
// and representation (sparse/dense per row, active order) is a pure
// function of the pair set and the promotion limit, so a copied cache
// entry is structurally indistinguishable from a freshly built relation.
//
// # Keys and eviction
//
// Keys are position-independent: the segment p[2:4) of one query and
// p[0:2) of another share an entry when their label sequences match.
// Keys are also orientation-canonical: the executor's leftward growth
// operates on reversed relations — reversed(p[i:k)) is the inverse pair
// set of p[i:k) — but the two forms are pure derivations of each other
// (bitset.HybridRelation.ReverseInto), so the cache stores exactly one
// relation per label sequence, tagged with the orientation it holds, and
// a consumer wanting the other form derives it on adoption. One entry
// then serves forward and backward plans alike, which both halves the
// byte footprint of mixed-direction workloads and turns what used to be
// a cross-orientation miss into a hit. Entries are evicted
// least-recently-used per shard,
// with cost accounted in exact bytes (bitset.HybridRelation.MemSize), so
// the bound is a real memory budget, not an entry count. Relations larger
// than a shard's whole budget are rejected outright rather than flushing
// the shard.
//
// A cache is bound to one graph: keys carry no graph identity, so sharing
// a cache across graphs returns wrong relations. Owners (an Estimator, a
// batch run) must create one cache per graph.
package relcache

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/paths"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxBytes is the default total byte budget (64 MiB).
	DefaultMaxBytes = 64 << 20
	// DefaultShards is the default shard count. Shards bound lock
	// contention when batch workers execute queries concurrently; each
	// shard owns 1/DefaultShards of the byte budget.
	DefaultShards = 8
	// maxShards caps the shard count: beyond this, per-shard budgets get
	// so small that sharding evicts entries a unified cache would keep.
	maxShards = 256
)

// Options configures a Cache.
type Options struct {
	// MaxBytes is the total byte budget across all shards (≤ 0 selects
	// DefaultMaxBytes). Entry cost is the cached relation's exact
	// MemSize plus key and bookkeeping overhead.
	MaxBytes int64
	// Shards is the number of independently locked LRU shards (≤ 0
	// selects DefaultShards). Rounded up to a power of two and capped at
	// 256.
	Shards int
}

// Stats is a point-in-time snapshot of the cache's counters. Hits,
// Misses, Puts, Evictions, and Rejected are cumulative; Entries, Bytes,
// and MaxBytes describe current occupancy.
type Stats struct {
	Hits      uint64 // Get calls that returned a relation
	Misses    uint64 // Get calls that found nothing adoptable
	Puts      uint64 // successful inserts (including overwrites)
	Evictions uint64 // entries evicted to make room
	Rejected  uint64 // Put calls refused (relation larger than a shard budget)
	Entries   int    // live entries right now
	Bytes     int64  // accounted bytes right now
	MaxBytes  int64  // configured budget
}

// entry is one cached relation on a shard's LRU list. reversed records
// which orientation of the label sequence rel holds; the other is
// derived by the consumer on adoption.
type entry struct {
	key        string
	rel        *bitset.HybridRelation
	reversed   bool
	cost       int64
	prev, next *entry // LRU list: front = most recent, back = next victim
}

// shard is one independently locked LRU.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	front   *entry // most recently used
	back    *entry // least recently used
	bytes   int64
	cap     int64
}

// Cache is the sharded segment-relation cache. All methods are safe for
// concurrent use.
type Cache struct {
	shards []shard
	mask   uint32

	hits, misses, puts, evictions, rejected atomic.Uint64
}

// New returns an empty cache with the given budget and shard count
// (zero-valued Options select the defaults).
func New(opt Options) *Cache {
	maxBytes := opt.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	n := opt.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so shard selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{shards: make([]shard, pow), mask: uint32(pow - 1)}
	per := maxBytes / int64(pow)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].cap = per
	}
	return c
}

// key builds the canonical cache key: the label sequence varint-encoded.
// Canonical means position- and orientation-independent — equal label
// subsequences key the same entry wherever they sit in their queries and
// whichever direction their relation was built in (the entry records
// which orientation it holds) — and unambiguous (varints self-delimit).
func key(p paths.Path) string {
	buf := make([]byte, 0, 2*len(p))
	for _, l := range p {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	return string(buf)
}

// shardFor hashes a key to its shard (FNV-1a).
func (c *Cache) shardFor(k string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return &c.shards[h&c.mask]
}

// Get returns the cached relation for the segment's label sequence,
// along with the orientation it holds (true = the reversed pair set), or
// (nil, false, false). A caller wanting the other orientation derives it
// (bitset.HybridRelation.ReverseInto) — which is why one entry serves
// both directions. The returned relation is shared and immutable: the
// caller must copy it (CopyInto / ReverseInto) before any mutation, and
// must verify it matches the caller's representation regime (Universe,
// SparseMax) before adopting it.
func (c *Cache) Get(p paths.Path) (rel *bitset.HybridRelation, reversed, ok bool) {
	k := key(p)
	sh := c.shardFor(k)
	sh.mu.Lock()
	e, ok := sh.entries[k]
	if ok {
		sh.moveToFront(e)
		rel, reversed = e.rel, e.reversed
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false, false
	}
	c.hits.Add(1)
	return rel, reversed, true
}

// Contains reports whether the segment is cached (in either
// orientation), without touching the LRU order or the hit/miss counters
// — the planner's cost probe (exec.Planner.Cached) must not perturb
// recency while enumerating O(k²) candidate segments.
func (c *Cache) Contains(p paths.Path) bool {
	k := key(p)
	sh := c.shardFor(k)
	sh.mu.Lock()
	_, ok := sh.entries[k]
	sh.mu.Unlock()
	return ok
}

// entryOverhead approximates an entry's bookkeeping bytes beyond the
// relation itself: the entry struct, the map slot, and the key header.
const entryOverhead = 96

// Put stores the segment's relation in the given orientation, cloning it
// so the cache entry stays valid while the caller's pooled buffers are
// reused (the clone is exact-size, so accounting is tight). An existing
// entry under the same label sequence is replaced whatever orientation
// it held — the canonical key keeps exactly one relation per sequence,
// and replacement (rather than skip) lets a fresh-regime relation oust a
// stale one that adoption guards were rejecting. Relations whose cost
// exceeds one shard's whole budget are rejected — caching them would
// flush everything else for an entry that cannot amortize — and the cost
// is priced from the source relation (CloneMemSize) before any copying,
// so an oversized relation published on every query of a workload costs
// a size computation, not a discarded multi-megabyte clone each time.
// The relcache.put fault site models the clone failing to allocate: a
// triggered injection turns the call into a counted rejection, the same
// graceful degradation as an oversized entry (service continues, the
// segment just stays uncached).
func (c *Cache) Put(p paths.Path, reversed bool, rel *bitset.HybridRelation) {
	k := key(p)
	cost := int64(rel.CloneMemSize()) + int64(len(k)) + entryOverhead
	sh := c.shardFor(k)
	if cost > sh.cap || faultinject.Fail("relcache.put") {
		c.rejected.Add(1)
		return
	}
	clone := rel.Clone()
	sh.mu.Lock()
	if old, ok := sh.entries[k]; ok {
		sh.unlink(old)
		sh.bytes -= old.cost
		delete(sh.entries, k)
	}
	var evicted uint64
	for sh.bytes+cost > sh.cap && sh.back != nil {
		victim := sh.back
		sh.unlink(victim)
		sh.bytes -= victim.cost
		delete(sh.entries, victim.key)
		evicted++
	}
	e := &entry{key: k, rel: clone, reversed: reversed, cost: cost}
	sh.entries[k] = e
	sh.pushFront(e)
	sh.bytes += cost
	sh.mu.Unlock()
	c.puts.Add(1)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// Stats snapshots the counters and occupancy. Occupancy is summed shard
// by shard without a global lock, so a concurrent snapshot is internally
// consistent per shard, not across shards — fine for reporting.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejected.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.bytes
		st.MaxBytes += sh.cap
		sh.mu.Unlock()
	}
	return st
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// pushFront links e as the most recently used entry. Caller holds mu.
func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.front
	if sh.front != nil {
		sh.front.prev = e
	}
	sh.front = e
	if sh.back == nil {
		sh.back = e
	}
}

// unlink removes e from the LRU list. Caller holds mu.
func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.back = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks e most recently used. Caller holds mu.
func (sh *shard) moveToFront(e *entry) {
	if sh.front == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
