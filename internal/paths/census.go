package paths

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/combinat"
	"repro/internal/graph"
)

// Census holds the exact selectivity f(ℓ) of every label path ℓ ∈ Lk over
// a graph — the complete data distribution from which label-path
// histograms are built. Frequencies are indexed by CanonicalIndex, so a
// Census is independent of any domain ordering; orderings permute it.
type Census struct {
	numLabels int
	k         int
	freq      []int64
}

// NewCensus computes the full selectivity census of g for paths of length
// 1…k by trie DFS with relational composition. Empty prefixes prune their
// whole subtree (their extensions all have selectivity 0, which the dense
// frequency array already records).
func NewCensus(g *graph.CSR, k int) *Census {
	if k < 1 {
		panic(fmt.Sprintf("paths: census needs k ≥ 1, got %d", k))
	}
	c := &Census{
		numLabels: g.NumLabels(),
		k:         k,
		freq:      make([]int64, combinat.GeometricSum(int64(g.NumLabels()), int64(k))),
	}
	p := make(Path, 0, k)
	for l := 0; l < g.NumLabels(); l++ {
		rel := g.EdgeRelation(l)
		c.censusDFS(g, append(p, l), rel)
	}
	return c
}

func (c *Census) censusDFS(g *graph.CSR, p Path, rel *bitset.Relation) {
	n := rel.Pairs()
	c.freq[CanonicalIndex(p, c.numLabels, c.k)] = n
	if len(p) == c.k || n == 0 {
		return
	}
	for l := 0; l < c.numLabels; l++ {
		next := rel.Compose(g.SuccessorSets(l))
		c.censusDFS(g, append(p, l), next)
	}
}

// NumLabels returns |L|.
func (c *Census) NumLabels() int { return c.numLabels }

// K returns the maximum path length covered.
func (c *Census) K() int { return c.k }

// Size returns |Lk|, the number of label paths in the census.
func (c *Census) Size() int64 { return int64(len(c.freq)) }

// Selectivity returns f(ℓ).
func (c *Census) Selectivity(p Path) int64 {
	return c.freq[CanonicalIndex(p, c.numLabels, c.k)]
}

// AtCanonical returns f(ℓ) for the path with the given canonical index.
func (c *Census) AtCanonical(idx int64) int64 { return c.freq[idx] }

// LabelFrequencies returns f(l) for each length-1 path, the input to the
// cardinality ranking rule.
func (c *Census) LabelFrequencies() []int64 {
	out := make([]int64, c.numLabels)
	for l := 0; l < c.numLabels; l++ {
		out[l] = c.freq[CanonicalIndex(Path{l}, c.numLabels, c.k)]
	}
	return out
}

// Total returns Σ_ℓ f(ℓ) over the whole census.
func (c *Census) Total() int64 {
	var t int64
	for _, f := range c.freq {
		t += f
	}
	return t
}

// MaxSelectivity returns the largest f(ℓ) in the census.
func (c *Census) MaxSelectivity() int64 {
	var mx int64
	for _, f := range c.freq {
		if f > mx {
			mx = f
		}
	}
	return mx
}

// PrefixSelectivity returns Σ f(ℓ) over p and every extension of p within
// Lk — the ground truth of a prefix wildcard query "p/*".
func (c *Census) PrefixSelectivity(p Path) int64 {
	total := c.Selectivity(p)
	if len(p) < c.k {
		ext := append(p.Clone(), 0)
		for l := 0; l < c.numLabels; l++ {
			ext[len(ext)-1] = l
			total += c.PrefixSelectivity(ext)
		}
	}
	return total
}

// ForEach calls fn for every path in canonical order with its selectivity.
// It stops early when fn returns false.
func (c *Census) ForEach(fn func(p Path, f int64) bool) {
	for idx := int64(0); idx < int64(len(c.freq)); idx++ {
		if !fn(FromCanonicalIndex(idx, c.numLabels, c.k), c.freq[idx]) {
			return
		}
	}
}

// FromFrequencies builds a census directly from a canonical-order
// frequency vector; used by tests and synthetic-distribution experiments.
// The slice is not copied.
func FromFrequencies(numLabels, k int, freq []int64) *Census {
	want := combinat.GeometricSum(int64(numLabels), int64(k))
	if int64(len(freq)) != want {
		panic(fmt.Sprintf("paths: frequency vector has %d entries, want %d", len(freq), want))
	}
	return &Census{numLabels: numLabels, k: k, freq: freq}
}
