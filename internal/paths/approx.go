package paths

import (
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// ApproxSelectivity estimates f(ℓ) by evaluating the path from a uniform
// sample of candidate source vertices (those with at least one out-edge on
// the path's first label) and scaling the distinct-pair count by the
// inverse sampling fraction. With fraction ≥ 1 it returns the exact value.
//
// This source-sampling estimator is a substrate for graphs too large for a
// full census (the paper's experiments are all exact; this is the scale
// escape hatch DESIGN.md §4 documents).
func ApproxSelectivity(g *graph.CSR, p Path, fraction float64, seed int64) int64 {
	if len(p) == 0 {
		panic("paths: approx selectivity of empty path")
	}
	if fraction <= 0 {
		panic(fmt.Sprintf("paths: non-positive sampling fraction %v", fraction))
	}
	if fraction >= 1 {
		return Selectivity(g, p)
	}
	var candidates []int
	for v := 0; v < g.NumVertices(); v++ {
		if g.OutDegree(v, p[0]) > 0 {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return 0
	}
	sampleSize := int(float64(len(candidates)) * fraction)
	if sampleSize < 1 {
		sampleSize = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(candidates))

	rel := bitset.NewRelation(g.NumVertices())
	for _, i := range perm[:sampleSize] {
		v := candidates[i]
		for _, t := range g.Successors(v, p[0]) {
			rel.Add(v, int(t))
		}
	}
	for _, l := range p[1:] {
		rel = rel.Compose(g.SuccessorSets(l))
	}
	scaled := float64(rel.Pairs()) * float64(len(candidates)) / float64(sampleSize)
	return int64(scaled + 0.5)
}
