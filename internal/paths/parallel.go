package paths

import "repro/internal/graph"

// NewCensusParallel computes the same census as NewCensus using up to
// `workers` goroutines (≤ 0 means GOMAXPROCS). It is the compatibility
// entry point onto the hybrid engine (NewCensusHybrid): pooled hybrid
// sparse/dense relations with a work-stealing scheduler that splits
// subtrees at any trie depth, so workers are no longer capped at |L| and
// skewed first-label distributions no longer serialize on one goroutine.
// Every trie node is still computed exactly once by exactly one worker, so
// the result is bit-identical to the sequential census. Lazy successor-set
// initialization in graph.CSR is sync.Once-guarded, so no up-front forcing
// is needed.
func NewCensusParallel(g *graph.CSR, k, workers int) *Census {
	return NewCensusHybrid(g, k, CensusOptions{Workers: workers})
}
