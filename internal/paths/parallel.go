package paths

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/combinat"
	"repro/internal/graph"
)

// NewCensusParallel computes the same census as NewCensus using up to
// `workers` goroutines (≤ 0 means GOMAXPROCS). The label trie decomposes
// into |L| independent subtrees — one per first label — and every path has
// exactly one first label, so the workers write disjoint regions of the
// frequency vector and the result is bit-identical to the sequential
// census. This is the scale lever for the paper-size runs (DBpedia at
// k = 6 visits ~300k trie nodes with ~40k-row relations).
func NewCensusParallel(g *graph.CSR, k, workers int) *Census {
	if k < 1 {
		panic(fmt.Sprintf("paths: census needs k ≥ 1, got %d", k))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > g.NumLabels() {
		workers = g.NumLabels()
	}
	// SuccessorSets builds lazily and is not safe for concurrent first
	// calls; force construction up front.
	for l := 0; l < g.NumLabels(); l++ {
		g.SuccessorSets(l)
	}
	c := &Census{
		numLabels: g.NumLabels(),
		k:         k,
		freq:      make([]int64, combinat.GeometricSum(int64(g.NumLabels()), int64(k))),
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := range jobs {
				p := make(Path, 0, k)
				c.censusDFS(g, append(p, l), g.EdgeRelation(l))
			}
		}()
	}
	for l := 0; l < g.NumLabels(); l++ {
		jobs <- l
	}
	close(jobs)
	wg.Wait()
	return c
}
