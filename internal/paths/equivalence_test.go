package paths

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/graph"
)

// randomGraph builds a random labeled graph from a packed parameter tuple,
// shared by the property test and the fuzz target.
func randomGraph(seed int64, vertices, labels, edges int) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(vertices, labels)
	for i := 0; i < edges; i++ {
		g.AddEdge(rng.Intn(vertices), rng.Intn(labels), rng.Intn(vertices))
	}
	return g.Freeze()
}

func assertCensusEqual(t *testing.T, ctx string, want, got *Census) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d != %d", ctx, got.Size(), want.Size())
	}
	for idx := int64(0); idx < want.Size(); idx++ {
		if got.AtCanonical(idx) != want.AtCanonical(idx) {
			t.Fatalf("%s: freq[%d] = %d, want %d (path %v)",
				ctx, idx, got.AtCanonical(idx), want.AtCanonical(idx),
				FromCanonicalIndex(idx, want.NumLabels(), want.K()))
		}
	}
}

// TestCensusHybridPropertyRandomGraphs is the bit-identity property test
// demanded by the engine contract: on random graphs across sizes, label
// counts, worker counts, density thresholds, and split granularities, the
// pooled work-stealing hybrid census must equal the sequential reference
// census entry for entry.
func TestCensusHybridPropertyRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		vertices := 2 + rng.Intn(120)
		labels := 1 + rng.Intn(5)
		edges := 1 + rng.Intn(6*vertices)
		k := 1 + rng.Intn(3)
		g := randomGraph(int64(trial), vertices, labels, edges)
		want := NewCensus(g, k)
		for _, workers := range []int{1, 2, 3, 8} {
			for _, density := range []float64{0, 1e-9, 0.25, 1.0} {
				opt := CensusOptions{
					Workers:          workers,
					DensityThreshold: density,
					// Alternate split granularity so both the inline and
					// the stealable paths are exercised.
					SplitPairs: int64(1 + trial%2*256),
				}
				got := NewCensusHybrid(g, k, opt)
				assertCensusEqual(t,
					fmt.Sprintf("trial %d workers %d density %v", trial, workers, density),
					want, got)
			}
		}
	}
}

// TestCensusParallelSkewedLabels pins the load-imbalance case the
// work-stealing scheduler exists for: nearly every edge carries one label,
// so per-first-label sharding would serialize, and correctness must still
// hold with many more workers than labels.
func TestCensusParallelSkewedLabels(t *testing.T) {
	g := dataset.ErdosRenyi(120, 900, dataset.NewZipfLabels(4, 1.8), 7).Freeze()
	want := NewCensus(g, 3)
	for _, workers := range []int{1, 2, 4, 16} {
		got := NewCensusParallel(g, 3, workers)
		assertCensusEqual(t, "skewed workers", want, got)
	}
}

// TestCensusHybridTinySplit forces every non-leaf subtree through the
// deques (SplitPairs=1), maximizing steal traffic.
func TestCensusHybridTinySplit(t *testing.T) {
	g := dataset.ErdosRenyi(60, 400, dataset.UniformLabels{L: 3}, 11).Freeze()
	want := NewCensus(g, 3)
	got := NewCensusHybrid(g, 3, CensusOptions{Workers: 8, SplitPairs: 1})
	assertCensusEqual(t, "tiny split", want, got)
}

// TestCensusHybridEmptyGraph covers the no-task fast path.
func TestCensusHybridEmptyGraph(t *testing.T) {
	g := graph.New(5, 2).Freeze()
	got := NewCensusHybrid(g, 3, CensusOptions{Workers: 4})
	if got.Total() != 0 {
		t.Fatalf("empty graph census total = %d", got.Total())
	}
}

// FuzzCensusEquivalence fuzzes the graph shape and engine knobs, asserting
// hybrid ≡ sequential on every input.
func FuzzCensusEquivalence(f *testing.F) {
	f.Add(int64(1), 20, 2, 60, 2, 4, int64(8))
	f.Add(int64(2), 50, 3, 200, 3, 1, int64(1))
	f.Add(int64(3), 5, 1, 10, 2, 7, int64(300))
	f.Fuzz(func(t *testing.T, seed int64, vertices, labels, edges, k, workers int, split int64) {
		if vertices < 1 || vertices > 80 || labels < 1 || labels > 4 ||
			edges < 0 || edges > 400 || k < 1 || k > 3 ||
			workers < 1 || workers > 8 {
			t.Skip()
		}
		g := randomGraph(seed, vertices, labels, edges)
		want := NewCensus(g, k)
		got := NewCensusHybrid(g, k, CensusOptions{Workers: workers, SplitPairs: split})
		assertCensusEqual(t, "fuzz", want, got)
	})
}

// TestEvaluateHybridMatchesDense pins the hybrid Evaluate bit-identical to
// the retired dense evaluator across random graphs, path lengths, and
// density thresholds.
func TestEvaluateHybridMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		vertices := 2 + rng.Intn(120)
		labels := 1 + rng.Intn(5)
		edges := 1 + rng.Intn(6*vertices)
		g := randomGraph(int64(200+trial), vertices, labels, edges)
		p := make(Path, 1+rng.Intn(4))
		for i := range p {
			p[i] = rng.Intn(labels)
		}
		want := EvaluateDense(g, p)
		for _, density := range []float64{0, 1e-9, 0.25, 1.0} {
			got := EvaluateWithDensity(g, p, density)
			if !got.EqualRelation(want) {
				t.Fatalf("trial %d density %v: hybrid Evaluate(%v) differs from dense", trial, density, p)
			}
		}
		if Selectivity(g, p) != want.Pairs() {
			t.Fatalf("trial %d: Selectivity(%v) != dense pair count", trial, p)
		}
	}
}

// TestUnionSelectivityMatchesDense pins the hybrid union accumulation
// against the dense reference: evaluate each path densely, pour all pairs
// into one dense relation, and compare counts.
func TestUnionSelectivityMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		vertices := 2 + rng.Intn(80)
		labels := 1 + rng.Intn(4)
		g := randomGraph(int64(300+trial), vertices, labels, 1+rng.Intn(5*vertices))
		ps := make([]Path, 1+rng.Intn(5))
		for i := range ps {
			p := make(Path, 1+rng.Intn(3))
			for j := range p {
				p[j] = rng.Intn(labels)
			}
			ps[i] = p
		}
		acc := bitset.NewRelation(g.NumVertices())
		for _, p := range ps {
			EvaluateDense(g, p).ForEachRow(func(s int, targets *bitset.Set) bool {
				targets.ForEach(func(tt int) bool {
					acc.Add(s, tt)
					return true
				})
				return true
			})
		}
		if got, want := UnionSelectivity(g, ps), acc.Pairs(); got != want {
			t.Fatalf("trial %d: UnionSelectivity = %d, dense reference %d (paths %v)", trial, got, want, ps)
		}
	}
}

// FuzzEvaluateEquivalence fuzzes graph shape, path, and density threshold,
// asserting hybrid Evaluate ≡ dense on every input.
func FuzzEvaluateEquivalence(f *testing.F) {
	f.Add(int64(1), 20, 2, 60, uint16(0x3121), float64(0))
	f.Add(int64(2), 50, 3, 200, uint16(0x0002), float64(1))
	f.Add(int64(3), 5, 1, 10, uint16(0x1000), float64(1e-9))
	f.Fuzz(func(t *testing.T, seed int64, vertices, labels, edges int, pathBits uint16, density float64) {
		if vertices < 1 || vertices > 80 || labels < 1 || labels > 4 ||
			edges < 0 || edges > 400 || density < 0 || density > 1 {
			t.Skip()
		}
		g := randomGraph(seed, vertices, labels, edges)
		k := 1 + int(pathBits>>12)%4
		p := make(Path, k)
		for i := range p {
			p[i] = int(pathBits>>(4*i)) % labels
		}
		if !EvaluateWithDensity(g, p, density).EqualRelation(EvaluateDense(g, p)) {
			t.Fatalf("hybrid Evaluate(%v) differs from dense (density %v)", p, density)
		}
	})
}
