// Package paths is the path-evaluation layer of the reproduction (graph →
// bitset → paths → exec → pathsel): label paths, single-path evaluation,
// and the exact path-selectivity census.
//
// A k-label path ℓ = l1/l2/…/lk is a sequence of edge labels. Its
// evaluation ℓ(G) is the set of distinct vertex pairs (vs, vt) connected by
// a path spelling ℓ; the selectivity f(ℓ) = |ℓ(G)|. The census computes
// f(ℓ) for every ℓ ∈ Lk (all label paths of length 1…k) by a DFS over the
// label trie, extending each prefix's pair relation by one label via
// relational composition.
//
// Two census engines compute identical results: NewCensus, the simple
// allocating reference implementation on dense bitset.Relation rows, and
// NewCensusHybrid (reached via NewCensusParallel), the production engine
// on pooled hybrid sparse/dense relations with work-stealing trie
// parallelism over the shared scheduling layer (internal/sched). Single-path evaluation mirrors the split: Evaluate,
// Selectivity, and UnionSelectivity run on the hybrid substrate, while
// EvaluateDense survives as the dense reference. Property and fuzz tests
// in equivalence_test.go pin every hybrid entry point bit-identical to
// its reference.
//
// Knobs (CensusOptions):
//
//   - Workers: census goroutine count; ≤ 0 means GOMAXPROCS. Workers are
//     not capped at |L| — subtrees split at any trie depth.
//   - DensityThreshold: the hybrid rows' sparse→dense promotion point as
//     a fraction of |V| in (0, 1]; ≤ 0 selects
//     bitset.DefaultDensityThreshold (1/32), ≥ 1 keeps every row sparse.
//   - SplitPairs: minimum prefix selectivity, in vertex pairs, for a
//     census subtree to be offered to the work-stealing deques; ≤ 0
//     selects DefaultSplitPairs (128). Smaller subtrees expand inline on
//     pooled relations.
//
// All three change performance only, never results.
package paths

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/combinat"
	"repro/internal/graph"
)

// Path is a label path: a sequence of dense label ids.
type Path []int

// String renders the path in the paper's l1/l2/…/lk notation using the
// graph's label names.
func (p Path) String(g interface{ LabelName(int) string }) string {
	parts := make([]string, len(p))
	for i, l := range p {
		parts[i] = g.LabelName(l)
	}
	return strings.Join(parts, "/")
}

// Key renders the path with 1-based numeric labels, independent of a
// graph, e.g. "1/2/3". Useful for map keys and tests.
func (p Path) Key() string {
	parts := make([]string, len(p))
	for i, l := range p {
		parts[i] = fmt.Sprintf("%d", l+1)
	}
	return strings.Join(parts, "/")
}

// Clone returns a copy of p.
func (p Path) Clone() Path {
	c := make(Path, len(p))
	copy(c, p)
	return c
}

// Equal reports whether p and q are the same label sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Parse parses the "a/b/c" notation produced by Key (1-based numeric
// labels) into a Path, validating labels against numLabels.
func Parse(s string, numLabels int) (Path, error) {
	if s == "" {
		return nil, fmt.Errorf("paths: empty path")
	}
	parts := strings.Split(s, "/")
	p := make(Path, len(parts))
	for i, part := range parts {
		var l int
		if _, err := fmt.Sscanf(part, "%d", &l); err != nil {
			return nil, fmt.Errorf("paths: bad label %q in %q", part, s)
		}
		if l < 1 || l > numLabels {
			return nil, fmt.Errorf("paths: label %d in %q out of range [1,%d]", l, s, numLabels)
		}
		p[i] = l - 1
	}
	return p, nil
}

// CanonicalIndex returns the position of p in the canonical domain: all
// paths of length 1…k over numLabels labels, ordered by length first, then
// positionally by label id (this coincides with the paper's num-alph
// ordering when label names sort like their ids). It panics when p is
// empty, longer than k, or contains an out-of-range label.
func CanonicalIndex(p Path, numLabels, k int) int64 {
	if len(p) == 0 || len(p) > k {
		panic(fmt.Sprintf("paths: path length %d out of [1,%d]", len(p), k))
	}
	var offset int64
	for i := 1; i < len(p); i++ {
		offset += combinat.Pow(int64(numLabels), int64(i))
	}
	var val int64
	for _, l := range p {
		if l < 0 || l >= numLabels {
			panic(fmt.Sprintf("paths: label %d out of range [0,%d)", l, numLabels))
		}
		val = val*int64(numLabels) + int64(l)
	}
	return offset + val
}

// FromCanonicalIndex inverts CanonicalIndex.
func FromCanonicalIndex(idx int64, numLabels, k int) Path {
	if idx < 0 || idx >= combinat.GeometricSum(int64(numLabels), int64(k)) {
		panic(fmt.Sprintf("paths: canonical index %d out of range", idx))
	}
	length := 1
	for {
		block := combinat.Pow(int64(numLabels), int64(length))
		if idx < block {
			break
		}
		idx -= block
		length++
	}
	p := make(Path, length)
	for i := length - 1; i >= 0; i-- {
		p[i] = int(idx % int64(numLabels))
		idx /= int64(numLabels)
	}
	return p
}

// Evaluate returns ℓ(G) as a hybrid relation of distinct vertex pairs,
// computed left-to-right on the hybrid sparse/dense substrate: two pooled
// relations double-buffer through the specialized compose kernels, and
// each row adapts its representation per step. It panics on an empty
// path. Equivalent to EvaluateWithDensity with the default threshold.
func Evaluate(g *graph.CSR, p Path) *bitset.HybridRelation {
	return EvaluateWithDensity(g, p, 0)
}

// EvaluateWithDensity is Evaluate with an explicit sparse→dense promotion
// threshold (fraction of |V|; ≤ 0 selects bitset.DefaultDensityThreshold,
// ≥ 1 keeps every row sparse). Purely a performance knob — results are
// identical at any setting.
func EvaluateWithDensity(g *graph.CSR, p Path, density float64) *bitset.HybridRelation {
	if len(p) == 0 {
		panic("paths: evaluate empty path")
	}
	cur := bitset.HybridFromCSR(g.LabelOperand(p[0]), density)
	if len(p) == 1 {
		return cur
	}
	buf := bitset.NewHybrid(g.NumVertices(), density)
	scr := bitset.NewComposeScratch(g.NumVertices())
	for _, l := range p[1:] {
		cur.ComposeInto(buf, g.LabelOperand(l), scr)
		cur, buf = buf, cur
	}
	return cur
}

// EvaluateDense is the retired dense-only evaluator, kept solely as the
// reference implementation that equivalence tests pin Evaluate against.
// It allocates a fresh dense bitset.Relation per join step; production
// callers use Evaluate.
func EvaluateDense(g *graph.CSR, p Path) *bitset.Relation {
	if len(p) == 0 {
		panic("paths: evaluate empty path")
	}
	rel := g.EdgeRelation(p[0])
	for _, l := range p[1:] {
		rel = rel.Compose(g.SuccessorSets(l))
	}
	return rel
}

// Selectivity returns f(ℓ) = |ℓ(G)|.
func Selectivity(g *graph.CSR, p Path) int64 {
	return Evaluate(g, p).Pairs()
}

// UnionSelectivity returns the number of distinct vertex pairs connected
// by at least one of the given paths — the exact answer of a pattern
// (disjunction) query under set semantics. Each path evaluates on the
// hybrid substrate and accumulates into the first result by row-wise
// union (bitset.HybridRelation.UnionWith). It panics when ps is empty.
func UnionSelectivity(g *graph.CSR, ps []Path) int64 {
	if len(ps) == 0 {
		panic("paths: union of no paths")
	}
	acc := Evaluate(g, ps[0])
	for _, p := range ps[1:] {
		acc.UnionWith(Evaluate(g, p))
	}
	return acc.Pairs()
}
