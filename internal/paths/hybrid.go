package paths

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/combinat"
	"repro/internal/graph"
)

// DefaultSplitPairs is the minimum prefix selectivity at which a census
// subtree becomes a stealable task instead of being expanded inline. Below
// it, a subtree composes in roughly the time a deque handoff costs, so
// splitting would only add overhead.
const DefaultSplitPairs = 128

// CensusOptions tunes the hybrid census engine.
type CensusOptions struct {
	// Workers is the goroutine count (≤ 0 means GOMAXPROCS). Unlike the
	// old per-first-label parallelism, workers are not capped at |L|:
	// subtrees split at any trie depth.
	Workers int
	// DensityThreshold is the sparse→dense promotion threshold as a
	// fraction of |V| (≤ 0 selects bitset.DefaultDensityThreshold, ≥ 1
	// keeps every row sparse).
	DensityThreshold float64
	// SplitPairs is the minimum f(prefix) for a subtree to be offered to
	// the work-stealing deques (≤ 0 selects DefaultSplitPairs). Smaller
	// subtrees are expanded inline on pooled relations.
	SplitPairs int64
}

func (o CensusOptions) fill() CensusOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SplitPairs <= 0 {
		o.SplitPairs = DefaultSplitPairs
	}
	return o
}

// censusTask is one stealable unit of census work: a label-path prefix
// whose frequency is already recorded and whose relation is rel; the task
// is to expand its subtree. Ownership of rel transfers with the task.
type censusTask struct {
	p   Path
	rel *bitset.HybridRelation
}

// taskDeque is a mutex-guarded work-stealing deque: the owner pushes and
// pops at the tail (LIFO, preserving DFS locality), thieves take from the
// head (FIFO, so the shallowest — largest — subtrees migrate first).
type taskDeque struct {
	mu    sync.Mutex
	tasks []censusTask
	head  int
}

func (d *taskDeque) push(t censusTask) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *taskDeque) pop() (censusTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.tasks) {
		return censusTask{}, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks[len(d.tasks)-1] = censusTask{}
	d.tasks = d.tasks[:len(d.tasks)-1]
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t, true
}

func (d *taskDeque) steal() (censusTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.tasks) {
		return censusTask{}, false
	}
	t := d.tasks[d.head]
	d.tasks[d.head] = censusTask{}
	d.head++
	if d.head == len(d.tasks) {
		d.tasks = d.tasks[:0]
		d.head = 0
	}
	return t, true
}

// relPool is a per-worker free list of hybrid relations. Relations keep
// row capacity across reuse, so the steady-state DFS allocates nothing.
// Stolen tasks carry their relation across workers; it simply retires into
// the thief's pool.
type relPool struct {
	free    []*bitset.HybridRelation
	n       int
	density float64
}

func (p *relPool) get() *bitset.HybridRelation {
	if k := len(p.free); k > 0 {
		r := p.free[k-1]
		p.free = p.free[:k-1]
		return r
	}
	return bitset.NewHybrid(p.n, p.density)
}

func (p *relPool) put(r *bitset.HybridRelation) { p.free = append(p.free, r) }

type censusWorker struct {
	deque   taskDeque
	pool    relPool
	scratch *bitset.ComposeScratch
}

type censusEngine struct {
	c           *Census
	ops         []bitset.CSROperand
	workers     []*censusWorker
	outstanding atomic.Int64
	splitPairs  int64

	// Idle workers park on cond instead of busy-polling; spawn signals it
	// when sleeping > 0, and the worker that retires the last task
	// broadcasts so parked workers observe termination.
	mu       sync.Mutex
	cond     *sync.Cond
	sleeping atomic.Int64
}

// NewCensusHybrid computes the same census as NewCensus on the hybrid
// sparse/dense substrate: per-row adaptive representations, per-worker
// relation pools (allocation-free steady state), and a work-stealing
// scheduler that splits subtrees at any trie depth, so skewed label
// distributions keep every worker busy. The result is bit-identical to
// NewCensus — the engine changes how frequencies are computed, never their
// values.
func NewCensusHybrid(g *graph.CSR, k int, opt CensusOptions) *Census {
	if k < 1 {
		panic(fmt.Sprintf("paths: census needs k ≥ 1, got %d", k))
	}
	opt = opt.fill()
	c := &Census{
		numLabels: g.NumLabels(),
		k:         k,
		freq:      make([]int64, combinat.GeometricSum(int64(g.NumLabels()), int64(k))),
	}
	// Eager operand build: the hot loop never pays (or races on) lazy
	// initialization. DensityThreshold ≥ 1 pins every row sparse, so the
	// dense kernel — the only consumer of the dense successor tables —
	// can never run and those tables are skipped entirely.
	e := &censusEngine{
		c:          c,
		ops:        g.Operands(opt.DensityThreshold < 1),
		workers:    make([]*censusWorker, opt.Workers),
		splitPairs: opt.SplitPairs,
	}
	e.cond = sync.NewCond(&e.mu)
	for i := range e.workers {
		e.workers[i] = &censusWorker{
			pool:    relPool{n: g.NumVertices(), density: opt.DensityThreshold},
			scratch: bitset.NewComposeScratch(g.NumVertices()),
		}
	}
	// Seed: one task per non-empty first-label subtree, round-robin across
	// deques. Deeper splits happen dynamically as workers expand.
	for l := 0; l < c.numLabels; l++ {
		rel := bitset.HybridFromCSR(e.ops[l], opt.DensityThreshold)
		p := make(Path, 1, k)
		p[0] = l
		c.freq[CanonicalIndex(p, c.numLabels, c.k)] = rel.Pairs()
		if k == 1 || rel.Pairs() == 0 {
			continue
		}
		e.outstanding.Add(1)
		e.workers[l%len(e.workers)].deque.push(censusTask{p: p, rel: rel})
	}
	if e.outstanding.Load() == 0 {
		return c
	}
	var wg sync.WaitGroup
	for id := range e.workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.run(id)
		}()
	}
	wg.Wait()
	return c
}

// run is the worker loop: drain the local deque LIFO, steal FIFO from
// others when empty, park when no work is visible, exit when no task is
// outstanding anywhere.
func (e *censusEngine) run(id int) {
	w := e.workers[id]
	for {
		t, ok := w.deque.pop()
		if !ok {
			t, ok = e.steal(id)
		}
		if !ok {
			if e.outstanding.Load() == 0 {
				e.wakeAll()
				return
			}
			if !e.park(id) {
				e.wakeAll()
				return
			}
			continue
		}
		e.expand(w, t.p, t.rel)
		w.pool.put(t.rel)
		if e.outstanding.Add(-1) == 0 {
			e.wakeAll()
		}
	}
}

// park blocks until new work may exist. It returns false when the census
// is complete. Announcing sleeping before the final re-scan closes the
// race with spawn: a spawner that missed the sleeping count pushed before
// our announcement, so the re-scan (which acquires the same deque locks)
// observes its task.
func (e *censusEngine) park(id int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sleeping.Add(1)
	defer e.sleeping.Add(-1)
	if e.hasWork(id) {
		return true // let the caller re-scan and actually steal it
	}
	if e.outstanding.Load() == 0 {
		return false
	}
	e.cond.Wait()
	return true
}

// hasWork reports whether any other worker's deque is non-empty, without
// consuming anything.
func (e *censusEngine) hasWork(id int) bool {
	for i := 1; i < len(e.workers); i++ {
		d := &e.workers[(id+i)%len(e.workers)].deque
		d.mu.Lock()
		n := len(d.tasks) - d.head
		d.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

func (e *censusEngine) wakeAll() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// spawn enqueues a subtree task on the worker's own deque and wakes a
// parked worker to steal it.
func (e *censusEngine) spawn(w *censusWorker, t censusTask) {
	e.outstanding.Add(1)
	w.deque.push(t)
	if e.sleeping.Load() > 0 {
		e.mu.Lock()
		e.cond.Signal()
		e.mu.Unlock()
	}
}

func (e *censusEngine) steal(id int) (censusTask, bool) {
	for i := 1; i < len(e.workers); i++ {
		if t, ok := e.workers[(id+i)%len(e.workers)].deque.steal(); ok {
			return t, ok
		}
	}
	return censusTask{}, false
}

// expand records the frequency of every child of prefix p and either
// recurses inline (reusing pooled relations) or re-enqueues large subtrees
// for stealing. p must have capacity ≥ k so appends never reallocate.
func (e *censusEngine) expand(w *censusWorker, p Path, rel *bitset.HybridRelation) {
	depth := len(p)
	for l := 0; l < e.c.numLabels; l++ {
		child := w.pool.get()
		pairs := rel.ComposeInto(child, e.ops[l], w.scratch)
		cp := append(p, l)
		e.c.freq[CanonicalIndex(cp, e.c.numLabels, e.c.k)] = pairs
		if pairs == 0 || depth+1 == e.c.k {
			w.pool.put(child)
			continue
		}
		if pairs >= e.splitPairs {
			tp := make(Path, len(cp), e.c.k)
			copy(tp, cp)
			e.spawn(w, censusTask{p: tp, rel: child})
		} else {
			e.expand(w, cp, child)
			w.pool.put(child)
		}
	}
}
