package paths

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/combinat"
	"repro/internal/graph"
	"repro/internal/sched"
)

// DefaultSplitPairs is the minimum prefix selectivity at which a census
// subtree becomes a stealable task instead of being expanded inline. Below
// it, a subtree composes in roughly the time a deque handoff costs, so
// splitting would only add overhead.
const DefaultSplitPairs = 128

// CensusOptions tunes the hybrid census engine.
type CensusOptions struct {
	// Workers is the goroutine count (≤ 0 means GOMAXPROCS). Unlike the
	// old per-first-label parallelism, workers are not capped at |L|:
	// subtrees split at any trie depth.
	Workers int
	// DensityThreshold is the sparse→dense promotion threshold as a
	// fraction of |V| (≤ 0 selects bitset.DefaultDensityThreshold, ≥ 1
	// keeps every row sparse).
	DensityThreshold float64
	// SplitPairs is the minimum f(prefix) for a subtree to be offered to
	// the work-stealing deques (≤ 0 selects DefaultSplitPairs). Smaller
	// subtrees are expanded inline on pooled relations.
	SplitPairs int64
}

func (o CensusOptions) fill() CensusOptions {
	o.Workers = sched.WorkerCount(o.Workers)
	if o.SplitPairs <= 0 {
		o.SplitPairs = DefaultSplitPairs
	}
	return o
}

// censusTask is one stealable unit of census work: a label-path prefix
// whose frequency is already recorded and whose relation is rel; the task
// is to expand its subtree. Ownership of rel transfers with the task.
type censusTask struct {
	p   Path
	rel *bitset.HybridRelation
}

// censusWorker is one worker's private state: a relation free list and a
// compose accumulator, indexed by the scheduler's worker id so no
// synchronization is ever needed.
type censusWorker struct {
	pool    sched.Pool[*bitset.HybridRelation]
	scratch *bitset.ComposeScratch
}

// censusEngine is the census client of the shared work-stealing scheduler
// (internal/sched): tasks are trie subtrees, spawned dynamically whenever
// a prefix's selectivity reaches splitPairs.
type censusEngine struct {
	c          *Census
	ops        []bitset.CSROperand
	sch        *sched.Scheduler[censusTask]
	workers    []censusWorker
	splitPairs int64
}

// NewCensusHybrid computes the same census as NewCensus on the hybrid
// sparse/dense substrate: per-row adaptive representations, per-worker
// relation pools (allocation-free steady state), and the shared
// work-stealing scheduler (internal/sched) splitting subtrees at any trie
// depth, so skewed label distributions keep every worker busy. The result
// is bit-identical to NewCensus — the engine changes how frequencies are
// computed, never their values.
func NewCensusHybrid(g *graph.CSR, k int, opt CensusOptions) *Census {
	c, err := NewCensusHybridChecked(g, k, opt)
	if err != nil {
		// The census runs no caller code, so the only failure is a
		// contained worker panic — re-raise it on the caller.
		panic(fmt.Sprintf("paths: census build failed: %v", err))
	}
	return c
}

// NewCensusHybridChecked is NewCensusHybrid with failure containment: a
// panic in any census worker (including one injected at the sched.task
// fault site) is recovered by the scheduler, cancels the sibling
// workers, and comes back as a typed *sched.PanicError instead of
// crashing the process — with every in-flight subtree relation retired
// into a worker pool via the scheduler's Abandon hook, so an aborted
// build leaks neither goroutines nor relations.
func NewCensusHybridChecked(g *graph.CSR, k int, opt CensusOptions) (*Census, error) {
	if k < 1 {
		panic(fmt.Sprintf("paths: census needs k ≥ 1, got %d", k))
	}
	opt = opt.fill()
	c := &Census{
		numLabels: g.NumLabels(),
		k:         k,
		freq:      make([]int64, combinat.GeometricSum(int64(g.NumLabels()), int64(k))),
	}
	// Eager operand build: the hot loop never pays (or races on) lazy
	// initialization. DensityThreshold ≥ 1 pins every row sparse, so the
	// dense kernel — the only consumer of the dense successor tables —
	// can never run and those tables are skipped entirely.
	e := &censusEngine{
		c:          c,
		ops:        g.Operands(opt.DensityThreshold < 1),
		workers:    make([]censusWorker, opt.Workers),
		splitPairs: opt.SplitPairs,
	}
	e.sch = sched.New(opt.Workers, e.runTask)
	// An abandoned task still owns its subtree relation; retire it into
	// worker 0's pool. The hook runs on the drain coordinator after every
	// worker has exited, so the unsynchronized pool access is safe.
	e.sch.Abandon = func(t censusTask) { e.workers[0].pool.Put(t.rel) }
	n, density := g.NumVertices(), opt.DensityThreshold
	for i := range e.workers {
		e.workers[i] = censusWorker{
			pool:    sched.Pool[*bitset.HybridRelation]{New: func() *bitset.HybridRelation { return bitset.NewHybrid(n, density) }},
			scratch: bitset.NewComposeScratch(n),
		}
	}
	// Seed: one task per non-empty first-label subtree, round-robin across
	// deques. Deeper splits happen dynamically as workers expand.
	for l := 0; l < c.numLabels; l++ {
		rel := bitset.HybridFromCSR(e.ops[l], opt.DensityThreshold)
		p := make(Path, 1, k)
		p[0] = l
		c.freq[CanonicalIndex(p, c.numLabels, c.k)] = rel.Pairs()
		if k == 1 || rel.Pairs() == 0 {
			continue
		}
		e.sch.Spawn(l, censusTask{p: p, rel: rel})
	}
	if err := e.sch.Drain(); err != nil {
		return nil, err
	}
	return c, nil
}

// runTask is the scheduler task body: expand the subtree on the executing
// worker's pooled state, then retire the task's relation into that
// worker's pool (stolen tasks carry their relation across workers).
func (e *censusEngine) runTask(worker int, t censusTask) {
	w := &e.workers[worker]
	e.expand(worker, w, t.p, t.rel)
	w.pool.Put(t.rel)
}

// expand records the frequency of every child of prefix p and either
// recurses inline (reusing pooled relations) or re-enqueues large subtrees
// for stealing. p must have capacity ≥ k so appends never reallocate.
func (e *censusEngine) expand(worker int, w *censusWorker, p Path, rel *bitset.HybridRelation) {
	depth := len(p)
	for l := 0; l < e.c.numLabels; l++ {
		child := w.pool.Get()
		pairs := rel.ComposeInto(child, e.ops[l], w.scratch)
		cp := append(p, l)
		e.c.freq[CanonicalIndex(cp, e.c.numLabels, e.c.k)] = pairs
		if pairs == 0 || depth+1 == e.c.k {
			w.pool.Put(child)
			continue
		}
		if pairs >= e.splitPairs {
			tp := make(Path, len(cp), e.c.k)
			copy(tp, cp)
			e.sch.Spawn(worker, censusTask{p: tp, rel: child})
		} else {
			e.expand(worker, w, cp, child)
			w.pool.Put(child)
		}
	}
}
