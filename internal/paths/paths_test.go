package paths

import (
	"math/rand"
	"testing"

	"repro/internal/combinat"
	"repro/internal/dataset"
	"repro/internal/graph"
)

func TestPathStringAndKey(t *testing.T) {
	g := graph.New(2, 3)
	g.SetLabelName(0, "a")
	g.SetLabelName(2, "c")
	p := Path{0, 2, 0}
	if got := p.String(g); got != "a/c/a" {
		t.Fatalf("String = %q", got)
	}
	if got := p.Key(); got != "1/3/1" {
		t.Fatalf("Key = %q", got)
	}
}

func TestPathCloneEqual(t *testing.T) {
	p := Path{1, 2}
	c := p.Clone()
	if !p.Equal(c) {
		t.Fatal("clone should be equal")
	}
	c[0] = 9
	if p[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if p.Equal(Path{1}) || p.Equal(Path{1, 3}) {
		t.Fatal("Equal false positives")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("1/3/2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 2, 1}) {
		t.Fatalf("Parse = %v", p)
	}
	for _, bad := range []string{"", "0/1", "4", "x/y", "1//2"} {
		if _, err := Parse(bad, 3); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		p := make(Path, n)
		for i := range p {
			p[i] = rng.Intn(6)
		}
		q, err := Parse(p.Key(), 6)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip %v != %v", p, q)
		}
	}
}

func TestCanonicalIndexOrder(t *testing.T) {
	// Over 3 labels, k=2, the canonical order is: 1,2,3,1/1,1/2,…,3/3.
	want := []string{"1", "2", "3", "1/1", "1/2", "1/3", "2/1", "2/2", "2/3", "3/1", "3/2", "3/3"}
	for i, key := range want {
		p, err := Parse(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got := CanonicalIndex(p, 3, 2); got != int64(i) {
			t.Errorf("CanonicalIndex(%s) = %d, want %d", key, got, i)
		}
		back := FromCanonicalIndex(int64(i), 3, 2)
		if !back.Equal(p) {
			t.Errorf("FromCanonicalIndex(%d) = %v, want %s", i, back.Key(), key)
		}
	}
}

func TestCanonicalIndexRoundTripExhaustive(t *testing.T) {
	numLabels, k := 4, 3
	size := combinat.GeometricSum(int64(numLabels), int64(k))
	for idx := int64(0); idx < size; idx++ {
		p := FromCanonicalIndex(idx, numLabels, k)
		if got := CanonicalIndex(p, numLabels, k); got != idx {
			t.Fatalf("round trip failed at %d: path %v → %d", idx, p, got)
		}
	}
}

func TestCanonicalIndexPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":     func() { CanonicalIndex(Path{}, 3, 2) },
		"too long":  func() { CanonicalIndex(Path{0, 1, 2}, 3, 2) },
		"bad label": func() { CanonicalIndex(Path{3}, 3, 2) },
		"neg idx":   func() { FromCanonicalIndex(-1, 3, 2) },
		"big idx":   func() { FromCanonicalIndex(12, 3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// lineGraph builds 0 --l0--> 1 --l1--> 2 --l2--> 3 ... with given labels.
func lineGraph(labels []int, numLabels int) *graph.CSR {
	g := graph.New(len(labels)+1, numLabels)
	for i, l := range labels {
		g.AddEdge(i, l, i+1)
	}
	return g.Freeze()
}

func TestEvaluateLine(t *testing.T) {
	// 0 -a-> 1 -b-> 2: path a/b connects exactly (0,2).
	g := lineGraph([]int{0, 1}, 2)
	rel := Evaluate(g, Path{0, 1})
	if rel.Pairs() != 1 || !rel.Contains(0, 2) {
		t.Fatalf("a/b evaluation wrong: %d pairs", rel.Pairs())
	}
	if Selectivity(g, Path{1, 0}) != 0 {
		t.Fatal("b/a should be empty")
	}
	if Selectivity(g, Path{0}) != 1 {
		t.Fatal("single-label selectivity wrong")
	}
}

func TestEvaluateDistinctPairs(t *testing.T) {
	// Diamond: 0-a->1, 0-a->2, 1-b->3, 2-b->3. a/b yields ONE pair (0,3).
	g := graph.New(4, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 0, 2)
	g.AddEdge(1, 1, 3)
	g.AddEdge(2, 1, 3)
	c := g.Freeze()
	if got := Selectivity(c, Path{0, 1}); got != 1 {
		t.Fatalf("diamond a/b selectivity = %d, want 1 (distinct pairs)", got)
	}
}

func TestEvaluateCycle(t *testing.T) {
	// 0-a->1-a->0: a/a connects (0,0) and (1,1); a/a/a = (0,1),(1,0), etc.
	g := graph.New(2, 1)
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 0, 0)
	c := g.Freeze()
	if got := Selectivity(c, Path{0}); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
	if got := Selectivity(c, Path{0, 0}); got != 2 {
		t.Fatalf("a/a = %d, want 2", got)
	}
	if got := Selectivity(c, Path{0, 0, 0}); got != 2 {
		t.Fatalf("a/a/a = %d, want 2", got)
	}
}

func TestEvaluateEmptyPathPanics(t *testing.T) {
	g := lineGraph([]int{0}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("empty path should panic")
		}
	}()
	Evaluate(g, Path{})
}

// bruteForceSelectivity enumerates all paths explicitly via DFS over
// vertices — the reference for the bit-parallel engine.
func bruteForceSelectivity(g *graph.CSR, p Path) int64 {
	pairs := map[[2]int]bool{}
	var walk func(v, depth int, start int)
	walk = func(v, depth, start int) {
		if depth == len(p) {
			pairs[[2]int{start, v}] = true
			return
		}
		for _, t := range g.Successors(v, p[depth]) {
			walk(int(t), depth+1, start)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		walk(v, 0, v)
	}
	return int64(len(pairs))
}

func TestSelectivityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		labels := 2 + rng.Intn(3)
		g := graph.New(n, labels)
		for i := 0; i < n*3; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(labels), rng.Intn(n))
		}
		c := g.Freeze()
		for pl := 1; pl <= 4; pl++ {
			p := make(Path, pl)
			for i := range p {
				p[i] = rng.Intn(labels)
			}
			got := Selectivity(c, p)
			want := bruteForceSelectivity(c, p)
			if got != want {
				t.Fatalf("trial %d path %v: engine %d, brute force %d", trial, p, got, want)
			}
		}
	}
}

func TestUnionSelectivity(t *testing.T) {
	// 0-a->1, 0-b->1: union of {a} and {b} is one distinct pair.
	g := graph.New(2, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(0, 1, 1)
	c := g.Freeze()
	if got := UnionSelectivity(c, []Path{{0}, {1}}); got != 1 {
		t.Fatalf("union = %d, want 1 (distinct pairs)", got)
	}
	if got := UnionSelectivity(c, []Path{{0}}); got != 1 {
		t.Fatalf("singleton union = %d, want 1", got)
	}
	// Disjoint unions add up.
	g2 := graph.New(4, 2)
	g2.AddEdge(0, 0, 1)
	g2.AddEdge(2, 1, 3)
	if got := UnionSelectivity(g2.Freeze(), []Path{{0}, {1}}); got != 2 {
		t.Fatalf("disjoint union = %d, want 2", got)
	}
}

func TestUnionSelectivityEmptyPanics(t *testing.T) {
	g := lineGraph([]int{0}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("empty union should panic")
		}
	}()
	UnionSelectivity(g, nil)
}

func TestCensusMatchesDirectEvaluation(t *testing.T) {
	g := dataset.ErdosRenyi(60, 300, dataset.UniformLabels{L: 3}, 9).Freeze()
	k := 3
	census := NewCensus(g, k)
	if census.NumLabels() != 3 || census.K() != 3 {
		t.Fatal("census metadata wrong")
	}
	if census.Size() != combinat.GeometricSum(3, 3) {
		t.Fatalf("census size = %d", census.Size())
	}
	census.ForEach(func(p Path, f int64) bool {
		if want := Selectivity(g, p); f != want {
			t.Fatalf("census f(%s) = %d, direct = %d", p.Key(), f, want)
		}
		return true
	})
}

func TestCensusPruningCorrect(t *testing.T) {
	// A graph where label 1 never occurs: every path containing it is 0,
	// and the subtree must be pruned but still report zeros.
	g := graph.New(4, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 0, 2)
	c := NewCensus(g.Freeze(), 3)
	if c.Selectivity(Path{1}) != 0 {
		t.Fatal("missing label should have zero selectivity")
	}
	if c.Selectivity(Path{1, 0, 0}) != 0 {
		t.Fatal("pruned subtree should be zero")
	}
	if c.Selectivity(Path{0, 0}) != 1 {
		t.Fatal("a/a should be 1")
	}
}

func TestCensusLabelFrequencies(t *testing.T) {
	g := dataset.ErdosRenyi(40, 200, dataset.UniformLabels{L: 4}, 10)
	c := NewCensus(g.Freeze(), 2)
	want := g.LabelFrequencies()
	got := c.LabelFrequencies()
	for l := range want {
		if got[l] != want[l] {
			t.Fatalf("label %d frequency %d, want %d", l, got[l], want[l])
		}
	}
}

func TestCensusTotalsAndMax(t *testing.T) {
	freq := []int64{5, 3, 0, 7, 1, 2, 9, 0, 4, 6, 8, 2} // |L2| over 3 labels
	c := FromFrequencies(3, 2, freq)
	if c.Total() != 47 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.MaxSelectivity() != 9 {
		t.Fatalf("MaxSelectivity = %d", c.MaxSelectivity())
	}
	if c.AtCanonical(3) != 7 {
		t.Fatalf("AtCanonical(3) = %d", c.AtCanonical(3))
	}
}

func TestFromFrequenciesValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size frequency vector should panic")
		}
	}()
	FromFrequencies(3, 2, make([]int64, 5))
}

func TestNewCensusBadK(t *testing.T) {
	g := lineGraph([]int{0}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 should panic")
		}
	}()
	NewCensus(g, 0)
}

func TestCensusForEachEarlyStop(t *testing.T) {
	c := FromFrequencies(3, 1, []int64{1, 2, 3})
	n := 0
	c.ForEach(func(Path, int64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestApproxSelectivityExactWhenFractionOne(t *testing.T) {
	g := dataset.ErdosRenyi(80, 400, dataset.UniformLabels{L: 3}, 12).Freeze()
	p := Path{0, 1}
	if got, want := ApproxSelectivity(g, p, 1.0, 1), Selectivity(g, p); got != want {
		t.Fatalf("fraction 1.0: %d != exact %d", got, want)
	}
}

func TestApproxSelectivityReasonable(t *testing.T) {
	g := dataset.ErdosRenyi(200, 3000, dataset.UniformLabels{L: 2}, 13).Freeze()
	p := Path{0, 1}
	exact := Selectivity(g, p)
	approx := ApproxSelectivity(g, p, 0.5, 7)
	if exact == 0 {
		t.Skip("degenerate sample")
	}
	ratio := float64(approx) / float64(exact)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("approx %d vs exact %d (ratio %.2f) outside sanity band", approx, exact, ratio)
	}
}

func TestApproxSelectivityEmptyLabel(t *testing.T) {
	g := graph.New(5, 2)
	g.AddEdge(0, 0, 1)
	c := g.Freeze()
	if got := ApproxSelectivity(c, Path{1, 0}, 0.5, 1); got != 0 {
		t.Fatalf("no candidate sources should yield 0, got %d", got)
	}
}

func TestApproxSelectivityPanics(t *testing.T) {
	g := lineGraph([]int{0}, 1)
	for name, fn := range map[string]func(){
		"empty path":    func() { ApproxSelectivity(g, Path{}, 0.5, 1) },
		"zero fraction": func() { ApproxSelectivity(g, Path{0}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}
