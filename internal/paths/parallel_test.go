package paths

import (
	"testing"

	"repro/internal/dataset"
)

func TestParallelCensusMatchesSequential(t *testing.T) {
	for _, specIdx := range []int{0, 2} {
		g := dataset.Generate(dataset.Table3()[specIdx], 0.05, 13).Freeze()
		for _, k := range []int{1, 2, 3} {
			seq := NewCensus(g, k)
			for _, workers := range []int{1, 2, 8, 0} {
				par := NewCensusParallel(g, k, workers)
				if par.Size() != seq.Size() {
					t.Fatalf("spec %d k=%d workers=%d: size %d != %d",
						specIdx, k, workers, par.Size(), seq.Size())
				}
				for idx := int64(0); idx < seq.Size(); idx++ {
					if par.AtCanonical(idx) != seq.AtCanonical(idx) {
						t.Fatalf("spec %d k=%d workers=%d: freq[%d] = %d != %d",
							specIdx, k, workers, idx, par.AtCanonical(idx), seq.AtCanonical(idx))
					}
				}
			}
		}
	}
}

func TestParallelCensusMoreWorkersThanLabels(t *testing.T) {
	g := dataset.ErdosRenyi(30, 100, dataset.UniformLabels{L: 2}, 5).Freeze()
	par := NewCensusParallel(g, 2, 64)
	seq := NewCensus(g, 2)
	if par.Total() != seq.Total() {
		t.Fatalf("totals differ: %d != %d", par.Total(), seq.Total())
	}
}

func TestParallelCensusBadK(t *testing.T) {
	g := dataset.ErdosRenyi(10, 20, dataset.UniformLabels{L: 2}, 1).Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 should panic")
		}
	}()
	NewCensusParallel(g, 0, 2)
}
