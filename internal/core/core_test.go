package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/ordering"
	"repro/internal/paths"
)

func testCensus(t *testing.T) (*paths.Census, *ordering.Ranking) {
	t.Helper()
	g := dataset.ErdosRenyi(60, 300, dataset.NewZipfLabels(3, 1.0), 17).Freeze()
	c := paths.NewCensus(g, 3)
	return c, ordering.CardinalityRanking(c.LabelFrequencies())
}

func TestDomainVectorIsPermutation(t *testing.T) {
	c, card := testCensus(t)
	for _, ord := range []ordering.Ordering{
		ordering.NewNumerical(card, 3),
		ordering.NewLexicographic(card, 3),
		ordering.NewSumBased(card, 3),
	} {
		data := DomainVector(c, ord)
		if int64(len(data)) != c.Size() {
			t.Fatalf("%s: domain size %d, want %d", ord.Name(), len(data), c.Size())
		}
		var sum int64
		for _, x := range data {
			sum += x
		}
		if sum != c.Total() {
			t.Fatalf("%s: domain mass %d, want %d (must be a permutation)", ord.Name(), sum, c.Total())
		}
		// Spot-check: the value at each path's index is its selectivity.
		c.ForEach(func(p paths.Path, f int64) bool {
			if data[ord.Index(p)] != f {
				t.Fatalf("%s: domain[%d] = %d, want f(%s) = %d",
					ord.Name(), ord.Index(p), data[ord.Index(p)], p.Key(), f)
			}
			return true
		})
	}
}

func TestDomainVectorMismatchPanics(t *testing.T) {
	c, card := testCensus(t)
	wrong := ordering.NewNumerical(card, 2) // k mismatch
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched census/ordering should panic")
		}
	}()
	DomainVector(c, wrong)
}

func TestBuildAllBuilders(t *testing.T) {
	c, card := testCensus(t)
	ord := ordering.NewSumBased(card, 3)
	for _, builder := range Builders() {
		ph, err := Build(c, ord, builder, 16)
		if err != nil {
			t.Fatalf("%s: %v", builder, err)
		}
		if ph.Builder() != builder || ph.Beta() != 16 {
			t.Fatalf("%s: metadata wrong", builder)
		}
		if ph.Buckets() < 1 || ph.Buckets() > 17 {
			t.Fatalf("%s: %d buckets outside sanity band", builder, ph.Buckets())
		}
		// Estimates are finite and non-negative for every path.
		c.ForEach(func(p paths.Path, f int64) bool {
			e := ph.Estimate(p)
			if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
				t.Fatalf("%s: bad estimate %v for %s", builder, e, p.Key())
			}
			return true
		})
	}
}

func TestBuildUnknownBuilder(t *testing.T) {
	c, card := testCensus(t)
	if _, err := Build(c, ordering.NewNumerical(card, 3), "nonsense", 8); err == nil {
		t.Fatal("unknown builder should error")
	}
}

func TestBuildForGraph(t *testing.T) {
	g := dataset.ErdosRenyi(40, 200, dataset.UniformLabels{L: 3}, 23).Freeze()
	ph, c, err := BuildForGraph(g, ordering.MethodSumBased, BuilderVOptimal, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Ordering().Name() != ordering.MethodSumBased {
		t.Fatal("wrong ordering")
	}
	if c.K() != 2 {
		t.Fatal("census k wrong")
	}
	if _, _, err := BuildForGraph(g, "bogus", BuilderVOptimal, 2, 8); err == nil {
		t.Fatal("bad method should error")
	}
	if _, _, err := BuildForGraph(g, ordering.MethodNumAlph, "bogus", 2, 8); err == nil {
		t.Fatal("bad builder should error")
	}
}

func TestEstimateExactWithMaxBuckets(t *testing.T) {
	// β = |Lk| → every bucket is a singleton → estimates are exact.
	c, card := testCensus(t)
	ord := ordering.NewNumerical(card, 3)
	ph, err := Build(c, ord, BuilderVOptimal, int(c.Size()))
	if err != nil {
		t.Fatal(err)
	}
	c.ForEach(func(p paths.Path, f int64) bool {
		if got := ph.Estimate(p); got != float64(f) {
			t.Fatalf("singleton-bucket estimate %v != f(%s) = %d", got, p.Key(), f)
		}
		return true
	})
	ev := Evaluate(ph, c)
	if ev.MeanErrorRate != 0 || ev.MaxAbsError != 0 {
		t.Fatalf("exact histogram should have zero error: %+v", ev)
	}
	if ev.MeanQError != 1 {
		t.Fatalf("exact histogram q-error should be 1, got %v", ev.MeanQError)
	}
}

func TestEvaluateRange(t *testing.T) {
	c, card := testCensus(t)
	ph, err := Build(c, ordering.NewNumerical(card, 3), BuilderEquiWidth, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(ph, c)
	if ev.MeanErrorRate < 0 || ev.MeanErrorRate > 1 {
		t.Fatalf("mean error rate %v outside [0,1]", ev.MeanErrorRate)
	}
	if ev.MaxAbsError < ev.MeanErrorRate {
		t.Fatal("max < mean is impossible")
	}
	if ev.MeanQError < 1 {
		t.Fatalf("mean q-error %v below 1", ev.MeanQError)
	}
}

func TestIdealOrderingBeatsOrMatchesNumAlph(t *testing.T) {
	// The accuracy ranking the paper's framework predicts: ideal ordering
	// (sorted by selectivity) is the lower envelope of error for a fixed
	// V-Optimal budget.
	g := dataset.Generate(dataset.Table3()[0], 0.08, 5).Freeze()
	c := paths.NewCensus(g, 3)
	alphNames := make([]string, g.NumLabels())
	for l := range alphNames {
		alphNames[l] = g.LabelName(l)
	}
	numAlph := ordering.NewNumerical(ordering.AlphabeticalRanking(alphNames), 3)
	ideal := ordering.NewIdeal(c)

	beta := 8
	phA, err := Build(c, numAlph, BuilderVOptimal, beta)
	if err != nil {
		t.Fatal(err)
	}
	phI, err := Build(c, ideal, BuilderVOptimal, beta)
	if err != nil {
		t.Fatal(err)
	}
	evA, evI := Evaluate(phA, c), Evaluate(phI, c)
	if evI.MeanErrorRate > evA.MeanErrorRate+0.02 {
		t.Fatalf("ideal ordering (%.4f) should not lose to num-alph (%.4f)",
			evI.MeanErrorRate, evA.MeanErrorRate)
	}
}

func TestEstimatorAccessor(t *testing.T) {
	c, card := testCensus(t)
	ph, err := Build(c, ordering.NewNumerical(card, 3), BuilderVOptimal, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := ph.Estimator().(*histogram.Histogram)
	if !ok {
		t.Fatal("v-optimal estimator should be a *histogram.Histogram")
	}
	if h.Buckets() != ph.Buckets() {
		t.Fatal("bucket counts disagree")
	}
}
