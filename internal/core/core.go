// Package core assembles the paper's system: a label-path histogram built
// by laying out the exact selectivity distribution of Lk on an integer
// domain with a chosen ordering method, partitioning that domain with a
// chosen histogram builder, and answering point selectivity queries e(ℓ).
//
// This is the layer the paper's experiments exercise: Table 4 measures
// Estimate latency across ordering methods; Figure 2 measures mean error
// rate of Estimate against the census ground truth.
//
// In the layer map (graph → bitset → paths → exec → pathsel), core sits
// between paths and pathsel: it consumes the paths census and composes
// internal/ordering with internal/histogram into the estimator that
// pathsel (and exec's planner, via an Estimator adapter) consume.
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/histogram"
	"repro/internal/ordering"
	"repro/internal/paths"
	"repro/internal/stats"
)

// Builder names accepted by Build.
const (
	BuilderVOptimal   = "v-optimal"
	BuilderVOptimalDP = "v-optimal-dp"
	BuilderEquiWidth  = "equi-width"
	BuilderEquiDepth  = "equi-depth"
	BuilderMaxDiff    = "max-diff"
	BuilderEndBiased  = "end-biased"
)

// Builders lists all supported histogram builder names.
func Builders() []string {
	return []string{BuilderVOptimal, BuilderVOptimalDP, BuilderEquiWidth,
		BuilderEquiDepth, BuilderMaxDiff, BuilderEndBiased}
}

// DomainVector lays the census frequencies out on the histogram domain of
// an ordering: result[ord.Index(ℓ)] = f(ℓ).
func DomainVector(c *paths.Census, ord ordering.Ordering) []int64 {
	if int64(c.Size()) != ord.Size() || c.NumLabels() != ord.NumLabels() || c.K() != ord.K() {
		panic(fmt.Sprintf("core: census (L=%d,k=%d,N=%d) and ordering %s (L=%d,k=%d,N=%d) disagree",
			c.NumLabels(), c.K(), c.Size(), ord.Name(), ord.NumLabels(), ord.K(), ord.Size()))
	}
	data := make([]int64, ord.Size())
	for can := int64(0); can < c.Size(); can++ {
		p := paths.FromCanonicalIndex(can, c.NumLabels(), c.K())
		data[ord.Index(p)] = c.AtCanonical(can)
	}
	return data
}

// PathHistogram is a label-path histogram: an ordering plus a bucket
// synopsis over the ordered domain. Estimation of a path ℓ costs one
// Index computation plus one bucket lookup — no access to the original
// distribution.
type PathHistogram struct {
	ord     ordering.Ordering
	est     histogram.Estimator
	builder string
	beta    int
}

// Build constructs a PathHistogram from a census, an ordering method, a
// builder name, and a bucket budget β.
func Build(c *paths.Census, ord ordering.Ordering, builder string, beta int) (*PathHistogram, error) {
	data := DomainVector(c, ord)
	var est histogram.Estimator
	switch builder {
	case BuilderVOptimal:
		est = histogram.VOptimal(data, beta)
	case BuilderVOptimalDP:
		est = histogram.VOptimalDP(data, beta)
	case BuilderEquiWidth:
		est = histogram.EquiWidth(data, beta)
	case BuilderEquiDepth:
		est = histogram.EquiDepth(data, beta)
	case BuilderMaxDiff:
		est = histogram.MaxDiff(data, beta)
	case BuilderEndBiased:
		est = histogram.NewEndBiased(data, beta)
	default:
		return nil, fmt.Errorf("core: unknown histogram builder %q", builder)
	}
	return &PathHistogram{ord: ord, est: est, builder: builder, beta: beta}, nil
}

// BuildForGraph computes the census of g up to k and builds a
// PathHistogram with the named ordering method. It returns the census too,
// since callers typically need the ground truth for evaluation. The census
// runs on the hybrid engine with default options; use
// BuildForGraphOptions to tune workers or the density threshold.
func BuildForGraph(g *graph.CSR, method, builder string, k, beta int) (*PathHistogram, *paths.Census, error) {
	return BuildForGraphOptions(g, method, builder, k, beta, paths.CensusOptions{})
}

// BuildForGraphOptions is BuildForGraph with explicit census engine
// options (worker count, sparse→dense promotion threshold, split
// granularity).
func BuildForGraphOptions(g *graph.CSR, method, builder string, k, beta int, opt paths.CensusOptions) (*PathHistogram, *paths.Census, error) {
	ord, err := ordering.ForGraph(method, g, k)
	if err != nil {
		return nil, nil, err
	}
	c, err := paths.NewCensusHybridChecked(g, k, opt)
	if err != nil {
		return nil, nil, err
	}
	ph, err := Build(c, ord, builder, beta)
	if err != nil {
		return nil, nil, err
	}
	return ph, c, nil
}

// Ordering returns the domain ordering in use.
func (ph *PathHistogram) Ordering() ordering.Ordering { return ph.ord }

// Builder returns the histogram builder name.
func (ph *PathHistogram) Builder() string { return ph.builder }

// Beta returns the requested bucket budget.
func (ph *PathHistogram) Beta() int { return ph.beta }

// Buckets returns the realized bucket count.
func (ph *PathHistogram) Buckets() int { return ph.est.Buckets() }

// Estimator exposes the underlying synopsis (for bucket inspection).
func (ph *PathHistogram) Estimator() histogram.Estimator { return ph.est }

// Estimate returns e(ℓ), the estimated selectivity of path p.
func (ph *PathHistogram) Estimate(p paths.Path) float64 {
	return ph.est.Estimate(ph.ord.Index(p))
}

// EstimatePrefix answers a prefix wildcard query: the estimated total
// selectivity of p and all of its extensions, as a single histogram range
// query. It requires a lexicographic domain ordering (the only rule under
// which a prefix's extensions are contiguous) and a serial histogram.
func (ph *PathHistogram) EstimatePrefix(p paths.Path) (float64, error) {
	lex, ok := ph.ord.(*ordering.Lexicographic)
	if !ok {
		return 0, fmt.Errorf("core: prefix queries need a lexicographic ordering, have %s", ph.ord.Name())
	}
	h, ok := ph.est.(*histogram.Histogram)
	if !ok {
		return 0, fmt.Errorf("core: prefix queries need a serial histogram, have %s", ph.builder)
	}
	lo, hi := lex.PrefixRange(p)
	return h.EstimateRange(lo, hi), nil
}

// Evaluation aggregates estimation quality over the full path domain.
type Evaluation struct {
	// MeanErrorRate is the mean of |err(ℓ)| (Eq. 6) over all ℓ ∈ Lk — the
	// y-axis of the paper's Figure 2.
	MeanErrorRate float64
	// MeanQError is the mean q-error over all ℓ ∈ Lk.
	MeanQError float64
	// MaxAbsError is the largest |err(ℓ)|.
	MaxAbsError float64
}

// Evaluate measures estimation quality of ph against the census ground
// truth, over every label path in Lk.
func Evaluate(ph *PathHistogram, c *paths.Census) Evaluation {
	var ev Evaluation
	var n int64
	c.ForEach(func(p paths.Path, f int64) bool {
		e := ph.Estimate(p)
		abs := stats.Err(e, float64(f))
		if abs < 0 {
			abs = -abs
		}
		ev.MeanErrorRate += abs
		ev.MeanQError += stats.QError(e, float64(f))
		if abs > ev.MaxAbsError {
			ev.MaxAbsError = abs
		}
		n++
		return true
	})
	ev.MeanErrorRate /= float64(n)
	ev.MeanQError /= float64(n)
	return ev
}
