package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ordering"
	"repro/internal/paths"
)

func TestCodecRoundTripAllMethods(t *testing.T) {
	g := dataset.ErdosRenyi(50, 250, dataset.NewZipfLabels(4, 1.0), 31).Freeze()
	k := 3
	census := paths.NewCensus(g, k)
	for _, method := range ordering.PaperMethods() {
		ord, err := ordering.ForGraph(method, g, k)
		if err != nil {
			t.Fatal(err)
		}
		ph, err := Build(census, ord, BuilderVOptimal, 9)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ph.Encode(&buf); err != nil {
			t.Fatalf("%s: encode: %v", method, err)
		}
		ph2, err := ReadPathHistogram(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", method, err)
		}
		if ph2.Ordering().Name() != method || ph2.Beta() != 9 || ph2.Builder() != BuilderVOptimal {
			t.Fatalf("%s: metadata lost", method)
		}
		// Every domain position estimates identically.
		census.ForEach(func(p paths.Path, _ int64) bool {
			if ph.Estimate(p) != ph2.Estimate(p) {
				t.Fatalf("%s: estimate of %s changed", method, p.Key())
			}
			return true
		})
	}
}

func TestCodecRejectsMaterialized(t *testing.T) {
	g := dataset.ErdosRenyi(20, 60, dataset.UniformLabels{L: 2}, 1).Freeze()
	census := paths.NewCensus(g, 2)
	ph, err := Build(census, ordering.NewIdeal(census), BuilderVOptimal, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ph.Encode(&buf); err == nil {
		t.Fatal("ideal (materialized) ordering should not encode")
	}
}

func TestCodecRejectsEndBiased(t *testing.T) {
	g := dataset.ErdosRenyi(20, 60, dataset.UniformLabels{L: 2}, 1).Freeze()
	census := paths.NewCensus(g, 2)
	ord, err := ordering.ForGraph(ordering.MethodNumAlph, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Build(census, ord, BuilderEndBiased, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ph.Encode(&buf); err == nil {
		t.Fatal("end-biased synopsis should not encode")
	}
}

func TestReadPathHistogramCorrupt(t *testing.T) {
	// Bad magic.
	if _, err := ReadPathHistogram(bytes.NewReader([]byte("XXXXYYYY"))); err == nil {
		t.Fatal("bad magic should error")
	}
	// Truncations of a valid blob must all error.
	g := dataset.ErdosRenyi(20, 60, dataset.UniformLabels{L: 3}, 2).Freeze()
	census := paths.NewCensus(g, 2)
	ord, _ := ordering.ForGraph(ordering.MethodSumBased, g, 2)
	ph, err := Build(census, ord, BuilderVOptimal, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ph.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for cut := 0; cut < len(blob); cut++ {
		if _, err := ReadPathHistogram(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
	// A flipped version byte must error.
	bad := append([]byte(nil), blob...)
	bad[4] = 99
	if _, err := ReadPathHistogram(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version should error")
	}
}

// failingWriter errors after n bytes — write-side failure injection.
type failingWriter struct {
	n       int
	written int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		allowed := w.n - w.written
		if allowed < 0 {
			allowed = 0
		}
		w.written += allowed
		return allowed, bytes.ErrTooLarge
	}
	w.written += len(p)
	return len(p), nil
}

func TestEncodeWriteFailures(t *testing.T) {
	g := dataset.ErdosRenyi(20, 60, dataset.UniformLabels{L: 3}, 2).Freeze()
	census := paths.NewCensus(g, 2)
	ord, err := ordering.ForGraph(ordering.MethodSumBased, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Build(census, ord, BuilderVOptimal, 4)
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := ph.Encode(&full); err != nil {
		t.Fatal(err)
	}
	// Every truncation point must surface an error (bufio may defer the
	// failure to Flush, but it must never be silently swallowed).
	for n := 0; n < full.Len(); n += 7 {
		if err := ph.Encode(&failingWriter{n: n}); err == nil {
			t.Fatalf("write failing at byte %d should error", n)
		}
	}
}

func TestEstimatePrefixCore(t *testing.T) {
	g := dataset.ErdosRenyi(40, 160, dataset.UniformLabels{L: 3}, 6).Freeze()
	census := paths.NewCensus(g, 3)

	lex, err := ordering.ForGraph(ordering.MethodLexCard, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Build(census, lex, BuilderVOptimal, int(census.Size()))
	if err != nil {
		t.Fatal(err)
	}
	// Exact budget: prefix estimate equals the census prefix sum.
	got, err := ph.EstimatePrefix(paths.Path{0})
	if err != nil {
		t.Fatal(err)
	}
	if want := census.PrefixSelectivity(paths.Path{0}); got != float64(want) {
		t.Fatalf("EstimatePrefix = %v, want %d", got, want)
	}

	// Non-lex ordering refuses.
	num, err := ordering.ForGraph(ordering.MethodNumAlph, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	phNum, err := Build(census, num, BuilderVOptimal, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := phNum.EstimatePrefix(paths.Path{0}); err == nil {
		t.Fatal("num ordering should refuse prefix queries")
	}

	// Non-serial synopsis refuses.
	phEB, err := Build(census, lex, BuilderEndBiased, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := phEB.EstimatePrefix(paths.Path{0}); err == nil {
		t.Fatal("end-biased synopsis should refuse prefix queries")
	}
}

func TestOrderingFromMethodValidation(t *testing.T) {
	rank := ordering.IdentityRanking(3)
	if _, err := orderingFromMethod("bogus", rank, 2); err == nil {
		t.Fatal("unknown method should error")
	}
	if _, err := orderingFromMethod(ordering.MethodNumAlph, rank, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := orderingFromMethod(ordering.MethodNumAlph, rank, 99); err == nil {
		t.Fatal("huge k should error")
	}
	ord, err := orderingFromMethod("sum-id", rank, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ord.(*ordering.SumBased); !ok {
		t.Fatal("sum-* should reconstruct a SumBased ordering")
	}
}
