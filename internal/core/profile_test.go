package core

import (
	"math"
	"testing"

	"repro/internal/ordering"
	"repro/internal/paths"
)

func TestProfileExactHistogramIsZero(t *testing.T) {
	c, card := testCensus(t)
	ph, err := Build(c, ordering.NewSumBased(card, 3), BuilderVOptimal, int(c.Size()))
	if err != nil {
		t.Fatal(err)
	}
	prof := Profile(ph, c)
	if len(prof.ByLength) != 3 {
		t.Fatalf("length buckets = %d, want 3", len(prof.ByLength))
	}
	for _, lb := range prof.ByLength {
		if lb.MeanErrorRate != 0 {
			t.Fatalf("exact histogram should have zero error at length %d", lb.Length)
		}
	}
	for _, db := range prof.ByDecile {
		if db.MeanErrorRate != 0 {
			t.Fatalf("exact histogram should have zero error in decile %d", db.Decile)
		}
	}
}

func TestProfileStructure(t *testing.T) {
	c, card := testCensus(t)
	ph, err := Build(c, ordering.NewSumBased(card, 3), BuilderVOptimal, 8)
	if err != nil {
		t.Fatal(err)
	}
	prof := Profile(ph, c)

	// Length classes tile the domain: 3, 9, 27 paths for |L|=3, k=3.
	wantPaths := []int64{3, 9, 27}
	var total int64
	for i, lb := range prof.ByLength {
		if lb.Length != i+1 {
			t.Fatalf("length bucket %d has length %d", i, lb.Length)
		}
		if lb.Paths != wantPaths[i] {
			t.Fatalf("length %d: %d paths, want %d", lb.Length, lb.Paths, wantPaths[i])
		}
		total += lb.Paths
	}
	if total != c.Size() {
		t.Fatalf("length buckets cover %d paths, want %d", total, c.Size())
	}

	// Deciles are ordered by true selectivity and cover the domain.
	var decTotal int64
	prevMax := int64(-1)
	for _, db := range prof.ByDecile {
		if db.MinF < prevMax {
			t.Fatalf("decile %d overlaps previous (min %d < prev max %d)", db.Decile, db.MinF, prevMax)
		}
		if db.MinF > db.MaxF {
			t.Fatalf("decile %d has min %d > max %d", db.Decile, db.MinF, db.MaxF)
		}
		prevMax = db.MaxF
		decTotal += db.Paths
		if db.MeanErrorRate < 0 || db.MeanErrorRate > 1 {
			t.Fatalf("decile %d error %v outside [0,1]", db.Decile, db.MeanErrorRate)
		}
	}
	if decTotal != c.Size() {
		t.Fatalf("deciles cover %d paths, want %d", decTotal, c.Size())
	}

	// The profile means must reconstruct the overall mean error.
	ev := Evaluate(ph, c)
	var weighted float64
	for _, lb := range prof.ByLength {
		weighted += lb.MeanErrorRate * float64(lb.Paths)
	}
	if math.Abs(weighted/float64(c.Size())-ev.MeanErrorRate) > 1e-9 {
		t.Fatalf("length-profile mean %v != overall %v", weighted/float64(c.Size()), ev.MeanErrorRate)
	}
}

func TestProfileTinyDomain(t *testing.T) {
	// Fewer than 10 paths: deciles collapse without panicking.
	freq := []int64{5, 2}
	c := paths.FromFrequencies(2, 1, freq)
	ord := ordering.NewNumerical(ordering.IdentityRanking(2), 1)
	ph, err := Build(c, ord, BuilderVOptimal, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := Profile(ph, c)
	var n int64
	for _, db := range prof.ByDecile {
		n += db.Paths
	}
	if n != 2 {
		t.Fatalf("deciles cover %d paths, want 2", n)
	}
}
