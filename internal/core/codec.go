package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/histogram"
	"repro/internal/ordering"
)

// The persistence codec writes a PathHistogram as a compact, versioned
// binary blob: the ordering method, its ranking permutation, and the
// bucket list. That is the *whole* synopsis — the original distribution is
// not stored, which is the point of a histogram. Only the five paper
// methods with serial histograms are serializable; materialized orderings
// would require O(|Lk|) permutations (the memory cost the paper rules
// out), and non-serial synopses are ablation baselines.

const (
	codecMagic   = uint32(0x50534831) // "PSH1"
	codecVersion = byte(1)
)

// writeString writes a uvarint-length-prefixed UTF-8 string.
func writeString(w *bufio.Writer, s string) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("core: string length %d exceeds sanity cap", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w *bufio.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// rankedOrdering is implemented by the three serializable ordering rules.
type rankedOrdering interface {
	ordering.Ordering
	Ranking() *ordering.Ranking
}

// Encode serializes the path histogram. It fails for materialized
// orderings and non-serial synopses (see the codec comment).
func (ph *PathHistogram) Encode(w io.Writer) error {
	ro, ok := ph.ord.(rankedOrdering)
	if !ok {
		return fmt.Errorf("core: ordering %s is not serializable (materialized permutation)", ph.ord.Name())
	}
	h, ok := ph.est.(*histogram.Histogram)
	if !ok {
		return fmt.Errorf("core: synopsis %s is not a serial histogram", ph.builder)
	}
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, codecMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return err
	}
	if err := writeString(bw, ph.ord.Name()); err != nil {
		return err
	}
	rank := ro.Ranking()
	if err := writeString(bw, rank.Name()); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(ph.ord.K())); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(rank.NumLabels())); err != nil {
		return err
	}
	for _, l := range rank.Order() {
		if err := writeUvarint(bw, uint64(l)); err != nil {
			return err
		}
	}
	if err := writeString(bw, ph.builder); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(ph.beta)); err != nil {
		return err
	}
	if err := writeString(bw, h.Kind()); err != nil {
		return err
	}
	if err := writeVarint(bw, h.DomainSize()); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(h.Buckets())); err != nil {
		return err
	}
	for i := 0; i < h.Buckets(); i++ {
		b := h.Bucket(i)
		if err := writeVarint(bw, b.Lo); err != nil {
			return err
		}
		if err := writeVarint(bw, b.Hi); err != nil {
			return err
		}
		if err := writeVarint(bw, b.Sum); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(b.SSE)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPathHistogram deserializes a path histogram written by Encode.
func ReadPathHistogram(r io.Reader) (*PathHistogram, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != codecMagic {
		return nil, fmt.Errorf("core: bad magic 0x%08x (not a path-histogram file)", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != codecVersion {
		return nil, fmt.Errorf("core: unsupported codec version %d", version)
	}
	method, err := readString(br)
	if err != nil {
		return nil, err
	}
	rankName, err := readString(br)
	if err != nil {
		return nil, err
	}
	k64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	numLabels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if numLabels == 0 || numLabels > 1<<16 {
		return nil, fmt.Errorf("core: implausible label count %d", numLabels)
	}
	order := make([]int, numLabels)
	for i := range order {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		order[i] = int(v)
	}
	rank, err := ordering.RankingFromOrder(rankName, order)
	if err != nil {
		return nil, err
	}
	ord, err := orderingFromMethod(method, rank, int(k64))
	if err != nil {
		return nil, err
	}
	builder, err := readString(br)
	if err != nil {
		return nil, err
	}
	beta, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	kind, err := readString(br)
	if err != nil {
		return nil, err
	}
	domain, err := binary.ReadVarint(br)
	if err != nil {
		return nil, err
	}
	if domain != ord.Size() {
		return nil, fmt.Errorf("core: domain size %d disagrees with ordering (%d)", domain, ord.Size())
	}
	nBuckets, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nBuckets == 0 || int64(nBuckets) > domain {
		return nil, fmt.Errorf("core: implausible bucket count %d for domain %d", nBuckets, domain)
	}
	buckets := make([]histogram.Bucket, nBuckets)
	for i := range buckets {
		if buckets[i].Lo, err = binary.ReadVarint(br); err != nil {
			return nil, err
		}
		if buckets[i].Hi, err = binary.ReadVarint(br); err != nil {
			return nil, err
		}
		if buckets[i].Sum, err = binary.ReadVarint(br); err != nil {
			return nil, err
		}
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, err
		}
		buckets[i].SSE = math.Float64frombits(bits)
	}
	h, err := histogram.FromBuckets(kind, domain, buckets)
	if err != nil {
		return nil, err
	}
	return &PathHistogram{ord: ord, est: h, builder: builder, beta: int(beta)}, nil
}

// orderingFromMethod reconstructs an ordering rule from its method name
// and a ranking.
func orderingFromMethod(method string, rank *ordering.Ranking, k int) (ordering.Ordering, error) {
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("core: implausible k = %d", k)
	}
	switch {
	case strings.HasPrefix(method, "num-"):
		return ordering.NewNumerical(rank, k), nil
	case strings.HasPrefix(method, "lex-"):
		return ordering.NewLexicographic(rank, k), nil
	case method == ordering.MethodSumBased || strings.HasPrefix(method, "sum-"):
		return ordering.NewSumBased(rank, k), nil
	default:
		return nil, fmt.Errorf("core: unknown ordering method %q", method)
	}
}
