package core

import (
	"sort"

	"repro/internal/paths"
	"repro/internal/stats"
)

// LengthBucket aggregates estimation error over one path length class.
type LengthBucket struct {
	Length        int
	Paths         int64
	MeanErrorRate float64
}

// DecileBucket aggregates estimation error over one decile of the true
// selectivity distribution (decile 0 = least selective tenth of paths,
// decile 9 = the heaviest hitters).
type DecileBucket struct {
	Decile        int
	MinF, MaxF    int64
	Paths         int64
	MeanErrorRate float64
}

// ErrorProfile decomposes whole-domain estimation error along the two axes
// that matter for diagnosis: path length (longer paths share buckets with
// more neighbours under every ordering) and true-selectivity magnitude
// (histogram compression hurts heavy and light paths differently). This is
// the analysis lens of the thesis underlying the paper [12].
type ErrorProfile struct {
	ByLength []LengthBucket
	ByDecile []DecileBucket
}

// Profile computes the error profile of ph against the census.
func Profile(ph *PathHistogram, c *paths.Census) ErrorProfile {
	type obs struct {
		f   int64
		abs float64
	}
	byLen := make(map[int][]float64)
	all := make([]obs, 0, c.Size())
	c.ForEach(func(p paths.Path, f int64) bool {
		e := ph.Estimate(p)
		abs := stats.Err(e, float64(f))
		if abs < 0 {
			abs = -abs
		}
		byLen[len(p)] = append(byLen[len(p)], abs)
		all = append(all, obs{f: f, abs: abs})
		return true
	})

	var profile ErrorProfile
	lengths := make([]int, 0, len(byLen))
	for l := range byLen {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	for _, l := range lengths {
		errs := byLen[l]
		var sum float64
		for _, a := range errs {
			sum += a
		}
		profile.ByLength = append(profile.ByLength, LengthBucket{
			Length:        l,
			Paths:         int64(len(errs)),
			MeanErrorRate: sum / float64(len(errs)),
		})
	}

	sort.Slice(all, func(i, j int) bool { return all[i].f < all[j].f })
	n := len(all)
	for d := 0; d < 10; d++ {
		lo, hi := d*n/10, (d+1)*n/10
		if hi <= lo {
			continue
		}
		slice := all[lo:hi]
		var sum float64
		for _, o := range slice {
			sum += o.abs
		}
		profile.ByDecile = append(profile.ByDecile, DecileBucket{
			Decile:        d,
			MinF:          slice[0].f,
			MaxF:          slice[len(slice)-1].f,
			Paths:         int64(len(slice)),
			MeanErrorRate: sum / float64(len(slice)),
		})
	}
	return profile
}
