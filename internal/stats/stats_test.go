package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErrExact(t *testing.T) {
	if Err(5, 5) != 0 {
		t.Fatal("exact estimate should have zero error")
	}
	if Err(0, 0) != 0 {
		t.Fatal("0/0 should be zero error")
	}
}

func TestErrDirection(t *testing.T) {
	// Over-estimate → positive, under-estimate → negative.
	if got := Err(10, 5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Err(10,5) = %v, want 0.5", got)
	}
	if got := Err(5, 10); math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("Err(5,10) = %v, want -0.5", got)
	}
	if got := Err(0, 10); got != -1 {
		t.Fatalf("Err(0,10) = %v, want -1", got)
	}
	if got := Err(10, 0); got != 1 {
		t.Fatalf("Err(10,0) = %v, want 1", got)
	}
}

func TestErrBounded(t *testing.T) {
	f := func(e, fr uint16) bool {
		v := Err(float64(e), float64(fr))
		return v >= -1 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrAntisymmetric(t *testing.T) {
	f := func(a, b uint16) bool {
		return math.Abs(Err(float64(a), float64(b))+Err(float64(b), float64(a))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQError(t *testing.T) {
	cases := []struct{ e, f, want float64 }{
		{10, 10, 1}, {20, 10, 2}, {10, 20, 2}, {0, 0, 1}, {0, 5, 5}, {100, 1, 100},
	}
	for _, c := range cases {
		if got := QError(c.e, c.f); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QError(%v,%v) = %v, want %v", c.e, c.f, got, c.want)
		}
	}
}

func TestQErrorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative q-error input should panic")
		}
	}()
	QError(-1, 5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("Std = %v, want √2", s.Std)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P99 != 7 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample should panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { Quantile(nil, 0.5) },
		"q > 1": func() { Quantile([]float64{1}, 1.5) },
		"q < 0": func() { Quantile([]float64{1}, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-1, 1, -3, 3}); got != 2 {
		t.Fatalf("MeanAbs = %v, want 2", got)
	}
}

func TestMeanAbsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample should panic")
		}
	}()
	MeanAbs(nil)
}
