// Package stats implements the evaluation metrics of the reproduction:
// the paper's relative error metric (Eq. 6), aggregate error rates,
// q-error, and basic summary statistics. A leaf utility of the layer map
// (graph → bitset → paths → exec → pathsel), consumed by internal/core's
// evaluator and internal/experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Err computes the paper's estimation error metric (Eq. 6) for an
// estimate e of true selectivity f:
//
//	err = 0                       when e == f
//	err = (e − f) / max(e, f)     otherwise
//
// The result lies in (−1, 1): positive means over-estimation. Mean error
// *rate* aggregations use |Err|.
func Err(e, f float64) float64 {
	if e == f {
		return 0
	}
	m := math.Max(e, f)
	if m == 0 {
		// Both non-positive and unequal; fall back to the dominant
		// magnitude so the metric stays in (−1, 1).
		m = math.Max(math.Abs(e), math.Abs(f))
	}
	return (e - f) / m
}

// QError computes the q-error max(e/f, f/e), the standard cardinality-
// estimation quality metric, with the usual guard: zero values are lifted
// to one so exact zero matches score 1 (perfect).
func QError(e, f float64) float64 {
	if e < 0 || f < 0 {
		panic(fmt.Sprintf("stats: q-error of negative values (%v, %v)", e, f))
	}
	if e < 1 {
		e = 1
	}
	if f < 1 {
		f = 1
	}
	return math.Max(e/f, f/e)
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes descriptive statistics. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: summarize empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	variance := sumSq/float64(len(xs)) - s.Mean*s.Mean
	if variance < 0 {
		variance = 0 // numeric noise
	}
	s.Std = math.Sqrt(variance)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample by linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanAbs returns the mean of |x| over the sample.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty sample")
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}
