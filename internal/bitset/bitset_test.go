package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", s.Count())
	}
}

func TestNewZeroCapacity(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || !s.Empty() {
		t.Fatal("zero-capacity set should be empty")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAddContainsRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("!Contains(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count() = %d after double Add, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Add(10)":       func() { s.Add(10) },
		"Add(-1)":       func() { s.Add(-1) },
		"Contains(10)":  func() { s.Contains(10) },
		"Remove(1000)":  func() { s.Remove(1000) },
		"Contains(-5)":  func() { s.Contains(-5) },
		"Remove(-1)":    func() { s.Remove(-1) },
		"Add(overflow)": func() { s.Add(1 << 40) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClear(t *testing.T) {
	s := New(70)
	s.Add(1)
	s.Add(69)
	s.Clear()
	if !s.Empty() {
		t.Fatal("set not empty after Clear")
	}
	if s.Len() != 70 {
		t.Fatal("Clear changed capacity")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(64)
	s.Add(5)
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone not equal to original")
	}
	c.Add(6)
	if s.Contains(6) {
		t.Fatal("mutating clone affected original")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(64), New(64)
	a.Add(1)
	b.Add(2)
	a.CopyFrom(b)
	if a.Contains(1) || !a.Contains(2) {
		t.Fatal("CopyFrom did not overwrite")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch should panic")
		}
	}()
	New(64).CopyFrom(New(65))
}

func TestSetAlgebra(t *testing.T) {
	mk := func(xs ...int) *Set {
		s := New(100)
		for _, x := range xs {
			s.Add(x)
		}
		return s
	}
	u := mk(1, 2, 3)
	u.UnionWith(mk(3, 4))
	if !u.Equal(mk(1, 2, 3, 4)) {
		t.Fatalf("union = %v", u)
	}
	i := mk(1, 2, 3)
	i.IntersectWith(mk(2, 3, 4))
	if !i.Equal(mk(2, 3)) {
		t.Fatalf("intersection = %v", i)
	}
	d := mk(1, 2, 3)
	d.DifferenceWith(mk(2))
	if !d.Equal(mk(1, 3)) {
		t.Fatalf("difference = %v", d)
	}
}

func TestEqualDifferentCapacity(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Fatal("sets with different capacity must not be Equal")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(200)
	want := []int{0, 63, 64, 100, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	var n int
	s.ForEach(func(int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestMembers(t *testing.T) {
	s := New(66)
	s.Add(65)
	s.Add(0)
	m := s.Members()
	if len(m) != 2 || m[0] != 0 || m[1] != 65 {
		t.Fatalf("Members() = %v", m)
	}
}

func TestNext(t *testing.T) {
	s := New(200)
	s.Add(5)
	s.Add(64)
	s.Add(199)
	cases := []struct{ from, want int }{
		{-3, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if New(10).Next(0) != -1 {
		t.Error("Next on empty set should be -1")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(7)
	if got := s.String(); got != "{1, 7}" {
		t.Fatalf("String() = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String() = %q", got)
	}
}

// Property: Count equals the number of distinct indices added.
func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		seen := map[uint16]bool{}
		for _, i := range idx {
			s.Add(int(i))
			seen[i] = true
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and intersection distributes over union.
func TestQuickAlgebraLaws(t *testing.T) {
	gen := func(r *rand.Rand, n int) *Set {
		s := New(n)
		for i := 0; i < n/4; i++ {
			s.Add(r.Intn(n))
		}
		return s
	}
	r := rand.New(rand.NewSource(42))
	const n = 257
	for trial := 0; trial < 200; trial++ {
		a, b, c := gen(r, n), gen(r, n), gen(r, n)

		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		if !ab.Equal(ba) {
			t.Fatal("union not commutative")
		}

		// a ∩ (b ∪ c) == (a ∩ b) ∪ (a ∩ c)
		bc := b.Clone()
		bc.UnionWith(c)
		lhs := a.Clone()
		lhs.IntersectWith(bc)
		abI := a.Clone()
		abI.IntersectWith(b)
		acI := a.Clone()
		acI.IntersectWith(c)
		rhs := abI.Clone()
		rhs.UnionWith(acI)
		if !lhs.Equal(rhs) {
			t.Fatal("intersection does not distribute over union")
		}

		// (a \ b) ∩ b == ∅
		diff := a.Clone()
		diff.DifferenceWith(b)
		diff.IntersectWith(b)
		if !diff.Empty() {
			t.Fatal("difference law violated")
		}
	}
}
