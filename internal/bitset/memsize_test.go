package bitset

import (
	"math/rand"
	"testing"
	"unsafe"
)

// manualMemSize recomputes MemSize from first principles, so the test
// fails if either side forgets a component.
func manualMemSize(h *HybridRelation) int {
	size := int(unsafe.Sizeof(*h)) + cap(h.active)*4 + len(h.rows)*int(unsafe.Sizeof(hrow{}))
	for i := range h.rows {
		size += cap(h.rows[i].ids)*4 + cap(h.rows[i].words)*8
	}
	return size
}

func TestMemSizeExactAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 64, 65, 300} {
		for _, density := range []float64{1e-9, 0.03125, 0.5, 1.0} {
			op := randomOperand(rng, n, n*3)
			h := HybridFromCSR(op, density)
			if got, want := h.MemSize(), manualMemSize(h); got != want {
				t.Fatalf("n=%d density=%v: MemSize %d, manual %d", n, density, got, want)
			}
			// Reset keeps capacity, so the footprint must not shrink.
			before := h.MemSize()
			h.Reset()
			if after := h.MemSize(); after != before {
				t.Fatalf("n=%d density=%v: MemSize changed across Reset: %d -> %d",
					n, density, before, after)
			}
		}
	}
}

func TestMemSizeComponents(t *testing.T) {
	// An empty relation is headers only.
	h := NewHybrid(100, 0)
	base := int(unsafe.Sizeof(HybridRelation{})) + 100*int(unsafe.Sizeof(hrow{}))
	if got := h.MemSize(); got != base {
		t.Fatalf("empty relation MemSize %d, want %d", got, base)
	}
	// One sparse row: + active entry + ids capacity.
	op := CSROperand{N: 100, Offsets: make([]int32, 101)}
	for v := 1; v <= 100; v++ {
		op.Offsets[v] = 2 // all edges from vertex 0
	}
	op.Targets = []int32{3, 7}
	s := HybridFromCSR(op, 1.0) // everything sparse
	want := base + cap(s.active)*4 + cap(s.rows[0].ids)*4
	if got := s.MemSize(); got != want {
		t.Fatalf("sparse relation MemSize %d, want %d", got, want)
	}
	// A dense row is charged for its word array.
	d := HybridFromCSR(op, 1e-9) // everything dense
	want = base + cap(d.active)*4 + cap(d.rows[0].words)*8
	if got := d.MemSize(); got != want {
		t.Fatalf("dense relation MemSize %d, want %d", got, want)
	}
}

func TestCloneExactSizeReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 64, 200} {
		for _, density := range []float64{1e-9, 0.1, 1.0} {
			op := randomOperand(rng, n, n*4)
			h := HybridFromCSR(op, density)
			c := h.Clone()
			if !c.Equal(h) {
				t.Fatalf("n=%d density=%v: clone pairs differ", n, density)
			}
			if c.SparseMax() != h.SparseMax() || c.Universe() != h.Universe() {
				t.Fatalf("n=%d density=%v: clone regime differs", n, density)
			}
			for v := 0; v < n; v++ {
				if c.RowDense(v) != h.RowDense(v) || c.RowCount(v) != h.RowCount(v) {
					t.Fatalf("n=%d density=%v: row %d representation differs", n, density, v)
				}
			}
			// CloneMemSize prices the clone without building it.
			cloneSize := h.CloneMemSize()
			// The clone is private: resetting the original must not touch it.
			pairs := c.Pairs()
			h.Reset()
			if c.Pairs() != pairs || !c.EqualRelation(legacyFromOperand(op)) {
				t.Fatalf("n=%d density=%v: clone shares storage with original", n, density)
			}
			// Exact-size: every slice trimmed to its content.
			tight := int(unsafe.Sizeof(*c)) + len(c.active)*4 + len(c.rows)*int(unsafe.Sizeof(hrow{}))
			for i := range c.rows {
				tight += len(c.rows[i].ids)*4 + len(c.rows[i].words)*8
			}
			if got := c.MemSize(); got != tight {
				t.Fatalf("n=%d density=%v: clone MemSize %d, tight %d", n, density, got, tight)
			}
			if cloneSize != tight {
				t.Fatalf("n=%d density=%v: CloneMemSize %d, actual clone occupies %d", n, density, cloneSize, tight)
			}
		}
	}
}

func TestCopyIntoReplicaAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 64, 200} {
		src := HybridFromCSR(randomOperand(rng, n, n*4), 0.1)
		// dst built at a different threshold: CopyInto must still replicate
		// src's representations (it adopts src's promotion limit).
		dst := NewHybrid(n, 1.0)
		src.CopyInto(dst)
		if !dst.Equal(src) || dst.SparseMax() != src.SparseMax() {
			t.Fatalf("n=%d: CopyInto not a replica", n)
		}
		for v := 0; v < n; v++ {
			if dst.RowDense(v) != src.RowDense(v) || dst.RowCount(v) != src.RowCount(v) {
				t.Fatalf("n=%d: row %d representation differs after CopyInto", n, v)
			}
		}
		// Reuse: copying a second, different relation into the same buffer
		// fully replaces the first.
		src2 := HybridFromCSR(randomOperand(rng, n, n*2), 0.1)
		src2.CopyInto(dst)
		if !dst.Equal(src2) {
			t.Fatalf("n=%d: CopyInto reuse left stale state", n)
		}
		// The copy is independent of the source's storage.
		src2.Reset()
		if dst.Pairs() == 0 && n > 1 {
			t.Fatalf("n=%d: CopyInto aliased the source", n)
		}
	}
}

func TestSparseLimitMatchesNewHybrid(t *testing.T) {
	for _, n := range []int{1, 10, 64, 1000} {
		for _, density := range []float64{-1, 0, 1e-9, 1.0 / 32, 0.5, 1, 2} {
			h := NewHybrid(n, density)
			if got, want := SparseLimit(n, density), h.SparseMax(); got != want {
				t.Fatalf("n=%d density=%v: SparseLimit %d != relation sparseMax %d",
					n, density, got, want)
			}
		}
	}
}
