package bitset

import (
	"fmt"
	"math/bits"
)

// This file holds the relation×relation join kernel: composing two
// HybridRelations with each other, as opposed to composing a relation with
// a CSR label operand (hybrid.go). The census and the zig-zag executor
// only ever extend a relation by one label — a relation×CSR compose — but
// bushy join plans (internal/exec.ExecuteTree) build two path segments
// independently and then join segment×segment, which is exactly this
// kernel. Like ComposeInto it is representation-adaptive: every
// left-row × right-row combination (sparse×sparse, sparse×dense,
// dense×sparse, dense×dense) dispatches to a specialized accumulation
// path, and JoinShardInto is the partitioned form that lets the final
// join of a bushy plan shard across workers bit-identically.

// JoinInto computes the relational composition h ∘ r into dst:
//
//	(s, u) ∈ dst  ⇔  ∃t: (s, t) ∈ h ∧ (t, u) ∈ r
//
// where both operands are hybrid relations. dst is reset first and its
// rows are reused in place, so steady-state joins allocate nothing beyond
// the scratch's first use. Output rows whose right-side inputs are all
// sparse accumulate through the touched-word scatter (the sparse×CSR
// kernel's accumulator); a single dense right-side row switches the output
// row to a full-width word accumulator, since dense unions touch words
// wholesale. Returns the distinct-pair count of dst. dst must be distinct
// from both operands and share their universe; h and r may alias (a
// self-join is legal).
func (h *HybridRelation) JoinInto(dst, r *HybridRelation, scr *ComposeScratch) int64 {
	h.checkJoin(dst, r)
	dst.Reset()
	for _, s := range h.active {
		count := h.joinRow(dst, r, scr, s)
		if count > 0 {
			dst.active = append(dst.active, s)
			dst.pairs += int64(count)
		}
		if scr.cancelled(count) {
			// dst holds a partial join the caller must discard.
			return dst.pairs
		}
	}
	return dst.pairs
}

// checkJoin validates the shared preconditions of JoinInto and
// JoinShardInto.
func (h *HybridRelation) checkJoin(dst, r *HybridRelation) {
	if r.n != h.n {
		panic(fmt.Sprintf("bitset: join operand universe %d != relation universe %d", r.n, h.n))
	}
	if dst == h || dst == r {
		panic("bitset: join aliasing dst == operand")
	}
	if dst.n != h.n {
		panic(fmt.Sprintf("bitset: join destination universe %d != relation universe %d", dst.n, h.n))
	}
}

// JoinShardInto joins one shard of h ∘ r — the rows of h's active-source
// slice in index positions [lo, hi) — into dst's row array. It is the
// partitioned form of JoinInto, with the same contract as
// ComposeShardInto: shards with disjoint ranges may run concurrently
// against the same dst (each with its own scratch) because every output
// row is written by exactly one shard; dst must have been Reset by the
// coordinator, which merges the returned per-shard sources and pair
// counts with AdoptShard in ascending shard order to stay bit-identical
// to sequential JoinInto.
func (h *HybridRelation) JoinShardInto(dst, r *HybridRelation, scr *ComposeScratch, lo, hi int, buf []int32) ([]int32, int64) {
	h.checkJoin(dst, r)
	if lo < 0 || hi > len(h.active) || lo > hi {
		panic(fmt.Sprintf("bitset: join shard [%d,%d) out of active range [0,%d)", lo, hi, len(h.active)))
	}
	buf = buf[:0]
	var pairs int64
	for _, s := range h.active[lo:hi] {
		count := h.joinRow(dst, r, scr, s)
		if count > 0 {
			buf = append(buf, s)
			pairs += int64(count)
		}
		if scr.cancelled(count) {
			return buf, pairs // partial shard; the coordinator discards it
		}
	}
	return buf, pairs
}

// Join is the allocating convenience form of JoinInto, for callers outside
// the pooled execution loop.
func (h *HybridRelation) Join(r *HybridRelation, density float64) *HybridRelation {
	dst := NewHybrid(h.n, density)
	h.JoinInto(dst, r, NewComposeScratch(h.n))
	return dst
}

// joinRow computes row s of h ∘ r into dst.rows[s] and returns the row's
// target count (0 leaves dst.rows[s] in its Reset state). Like composeRow
// it touches nothing of dst but the one row, so calls on distinct rows may
// run concurrently against a shared dst as long as each caller owns its
// scratch.
func (h *HybridRelation) joinRow(dst, r *HybridRelation, scr *ComposeScratch, s int32) int {
	row := &h.rows[s]
	ts := row.ids
	if row.dense {
		// Expand the dense left row into the reusable id buffer so the
		// accumulation loops below handle one shape.
		scr.tbuf = scr.tbuf[:0]
		for wi, w := range row.words {
			base := int32(wi * wordBits)
			for w != 0 {
				scr.tbuf = append(scr.tbuf, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		ts = scr.tbuf
	}
	// First pass: does any intermediate vertex contribute a dense right
	// row? Dense contributions union whole words, which the touched-word
	// scatter accumulator cannot track, so they divert the output row to
	// the full-width path.
	any, anyDense := false, false
	for _, t := range ts {
		rr := &r.rows[t]
		if rr.count == 0 {
			continue
		}
		any = true
		if rr.dense {
			anyDense = true
			break
		}
	}
	if !any {
		return 0
	}
	if !anyDense {
		count := scr.scatterSparseRows(ts, r)
		scr.emitRow(dst, s, count)
		return count
	}
	// Full-width accumulation: clear once, union every contributing right
	// row (dense rows word-parallel, sparse rows bit by bit), then count.
	// A dense right row already populates ≥ r.sparseMax targets, so the
	// O(|V|/64) clear and popcount are amortized by the row's size.
	if scr.joinWords == nil {
		scr.joinWords = make([]uint64, len(scr.words))
	}
	clear(scr.joinWords)
	for _, t := range ts {
		rr := &r.rows[t]
		if rr.count == 0 {
			continue
		}
		if rr.dense {
			for i, w := range rr.words {
				scr.joinWords[i] |= w
			}
		} else {
			for _, u := range rr.ids {
				scr.joinWords[u>>6] |= 1 << (uint(u) & 63)
			}
		}
	}
	count := 0
	for _, w := range scr.joinWords {
		count += bits.OnesCount64(w)
	}
	emitWordsRow(dst, s, count, scr.joinWords)
	return count
}

// scatterSparseRows is the sparse×sparse join kernel: for each
// intermediate vertex t in ts, scatter right's sparse row of t into the
// touched-word accumulator. Every right row must currently be sparse (or
// empty); the caller's first pass guarantees it. Returns the number of
// distinct targets accumulated.
func (scr *ComposeScratch) scatterSparseRows(ts []int32, r *HybridRelation) int {
	count := 0
	scr.wMin, scr.wMax = int32(len(scr.words)), -1
	for _, t := range ts {
		for _, u := range r.rows[t].ids {
			wi := u >> 6
			bit := uint64(1) << (uint(u) & 63)
			if scr.words[wi]&bit == 0 {
				if scr.words[wi] == 0 {
					scr.touched = append(scr.touched, wi)
					if wi < scr.wMin {
						scr.wMin = wi
					}
					if wi > scr.wMax {
						scr.wMax = wi
					}
				}
				scr.words[wi] |= bit
				count++
			}
		}
	}
	return count
}

// emitWordsRow stores a fully-populated word accumulator with a known
// count into dst's row s, choosing the sparse or dense form by dst's
// threshold. count must be ≥ 1; the accumulator is left untouched (the
// caller clears it per row).
func emitWordsRow(dst *HybridRelation, s int32, count int, words []uint64) {
	row := &dst.rows[s]
	row.count = int32(count)
	if count <= dst.sparseMax {
		row.dense = false
		row.ids = row.ids[:0]
		for wi, w := range words {
			base := int32(wi * wordBits)
			for w != 0 {
				row.ids = append(row.ids, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	} else {
		row.dense = true
		if row.words == nil {
			row.words = make([]uint64, len(words))
		}
		copy(row.words, words)
	}
}
