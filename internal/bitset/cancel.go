package bitset

import "sync/atomic"

// CancelFlag is the cooperative cancellation signal the compose and join
// kernels poll mid-row-loop. It lives in bitset (the lowest executing
// layer) so abort latency is bounded even inside one huge kernel
// invocation: the execution layer sets the flag, and every kernel
// observing it returns early with a partial destination the caller
// discards. The nil *CancelFlag is a valid never-set flag, so
// cancellation stays strictly opt-in — unwired call sites pay one nil
// check per amortization window and nothing else.
type CancelFlag struct {
	stopped atomic.Bool
}

// Set raises the flag. Safe from any goroutine; idempotent.
func (c *CancelFlag) Set() { c.stopped.Store(true) }

// Stopped reports whether the flag has been raised. Safe on a nil
// receiver, which reports false forever.
func (c *CancelFlag) Stopped() bool { return c != nil && c.stopped.Load() }

// cancelCheckInterval is the work budget (in weighted row-output units)
// consumed between consecutive flag loads. The weight of one row is
// 1 + count/64, so a window covers either ~4k tiny rows or ~256k emitted
// pairs — at the kernels' throughput that bounds abort latency well
// under a millisecond while keeping the common-case overhead (one
// predictable branch per row) below the benchdiff gate's noise floor.
const cancelCheckInterval = 4096

// SetCancel attaches (or, with nil, detaches) a cancellation flag to the
// scratch, so kernels poll it amortized during their row loops without
// any kernel signature changing. Scratches are per-worker, so the budget
// counter needs no synchronization.
func (scr *ComposeScratch) SetCancel(f *CancelFlag) {
	scr.cancel = f
	scr.cancelBudget = 0
}

// cancelled is the kernels' amortized poll: it charges the given row
// output against the window budget and loads the flag only when the
// window is exhausted. work is the row's emitted target count; charging
// 1 + work/64 makes the window track real work (words touched), so
// dense universes and sparse ones see similar abort latency.
func (scr *ComposeScratch) cancelled(work int) bool {
	if scr.cancel == nil {
		return false
	}
	scr.cancelBudget -= 1 + work>>6
	if scr.cancelBudget > 0 {
		return false
	}
	scr.cancelBudget = cancelCheckInterval
	return scr.cancel.Stopped()
}
