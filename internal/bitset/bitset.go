package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, Len()). The zero value is an
// empty set of capacity zero; use New to allocate capacity.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits. It panics if n is
// negative.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// check panics when i is outside the capacity.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear resets all bits to zero, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. Both sets must have the
// same capacity.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, o.n))
	}
}

// UnionWith sets s to s ∪ o.
func (s *Set) UnionWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s to s ∩ o.
func (s *Set) IntersectWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DifferenceWith sets s to s \ o.
func (s *Set) DifferenceWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and o contain exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order. It stops early if
// fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Next returns the smallest set bit ≥ i, or -1 when none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as {a, b, c} for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
