package bitset

import (
	"fmt"
	"math/bits"
	"slices"
)

// This file holds the executor-facing HybridRelation operations — reversal
// and row-wise union — added when query execution (internal/exec,
// paths.Evaluate, paths.UnionSelectivity) moved off the legacy dense
// Relation onto the hybrid substrate. The census engine needs only
// ComposeInto (hybrid.go); the executor additionally reverses relations
// (to grow a zig-zag join leftward via predecessor operands) and unions
// them (to answer pattern/disjunction queries under set semantics).

// ReverseInto computes the inverse relation into dst: (t, s) ∈ dst for
// every (s, t) ∈ h. dst is reset first and its rows are reused in place,
// so a pooled destination makes steady-state reversal allocation-free
// apart from one transient per-universe count array. Each output row picks
// its sparse or dense form up front from an exact count, so no row is
// built twice. h and dst must be distinct objects over the same universe.
func (h *HybridRelation) ReverseInto(dst *HybridRelation) {
	if dst == h {
		panic("bitset: ReverseInto aliasing dst == receiver")
	}
	if dst.n != h.n {
		panic(fmt.Sprintf("bitset: ReverseInto universe %d != %d", dst.n, h.n))
	}
	dst.Reset()
	if h.pairs == 0 {
		return
	}
	// Pass 1: per-target counts fix every output row's final population,
	// and therefore its representation, before any id is written.
	counts := make([]int32, h.n)
	for _, s := range h.active {
		row := &h.rows[s]
		if row.dense {
			for wi, w := range row.words {
				for w != 0 {
					counts[wi*wordBits+bits.TrailingZeros64(w)]++
					w &= w - 1
				}
			}
		} else {
			for _, t := range row.ids {
				counts[t]++
			}
		}
	}
	words := (h.n + wordBits - 1) / wordBits
	for t, c := range counts {
		if c == 0 {
			continue
		}
		row := &dst.rows[t]
		row.count = c
		if int(c) > dst.sparseMax {
			row.dense = true
			if row.words == nil {
				row.words = make([]uint64, words)
			} else {
				clear(row.words)
			}
		} else {
			row.ids = slices.Grow(row.ids[:0], int(c))
		}
		dst.active = append(dst.active, int32(t))
		dst.pairs += int64(c)
	}
	// Pass 2: pairs arrive in ascending (s, t) order, so per output row t
	// the sources s arrive ascending and sparse appends stay sorted.
	h.ForEachPair(func(s, t int) bool {
		row := &dst.rows[t]
		if row.dense {
			row.words[s>>6] |= 1 << (uint(s) & 63)
		} else {
			row.ids = append(row.ids, int32(s))
		}
		return true
	})
}

// Reverse is the allocating convenience form of ReverseInto. The result
// inherits h's density threshold.
func (h *HybridRelation) Reverse() *HybridRelation {
	dst := &HybridRelation{n: h.n, sparseMax: h.sparseMax, rows: make([]hrow, h.n)}
	h.ReverseInto(dst)
	return dst
}

// Equal reports whether h and o contain exactly the same pairs,
// regardless of per-row representation or density threshold.
func (h *HybridRelation) Equal(o *HybridRelation) bool {
	if h.n != o.n || h.pairs != o.pairs {
		return false
	}
	equal := true
	h.ForEachPair(func(s, t int) bool {
		if !o.Contains(s, t) {
			equal = false
		}
		return equal
	})
	return equal
}

// UnionWith sets h to h ∪ o row by row: sparse rows merge sorted id lists,
// dense rows union word-parallel, and a row whose merged population
// crosses h's threshold promotes to dense in place (union never demotes —
// populations only grow). Both relations must share a universe; o is left
// untouched. This is the set-semantics accumulation step of
// paths.UnionSelectivity.
func (h *HybridRelation) UnionWith(o *HybridRelation) {
	if o.n != h.n {
		panic(fmt.Sprintf("bitset: UnionWith universe %d != %d", o.n, h.n))
	}
	if o == h || o.pairs == 0 {
		return
	}
	var merged []int32 // scratch for sparse∪sparse, reused across rows
	grew := false
	for _, s := range o.active {
		src := &o.rows[s]
		row := &h.rows[s]
		before := row.count
		switch {
		case row.count == 0:
			// Fresh row: copy src's representation verbatim.
			row.count = src.count
			if src.dense {
				row.dense = true
				if row.words == nil {
					row.words = make([]uint64, len(src.words))
				}
				copy(row.words, src.words)
			} else {
				row.ids = append(row.ids[:0], src.ids...)
			}
			h.active = append(h.active, s)
			grew = true
		case row.dense && src.dense:
			n := 0
			for i, w := range src.words {
				row.words[i] |= w
				n += bits.OnesCount64(row.words[i])
			}
			row.count = int32(n)
		case row.dense: // src sparse
			for _, t := range src.ids {
				wi, bit := t>>6, uint64(1)<<(uint(t)&63)
				if row.words[wi]&bit == 0 {
					row.words[wi] |= bit
					row.count++
				}
			}
		case src.dense: // row sparse: promote, then OR
			ids := row.ids
			if row.words == nil {
				row.words = make([]uint64, len(src.words))
				copy(row.words, src.words)
			} else {
				copy(row.words, src.words)
			}
			row.dense = true
			row.ids = ids[:0]
			for _, t := range ids {
				row.words[t>>6] |= 1 << (uint(t) & 63)
			}
			n := 0
			for _, w := range row.words {
				n += bits.OnesCount64(w)
			}
			row.count = int32(n)
		default: // both sparse: linear merge of two sorted lists
			merged = merged[:0]
			a, b := row.ids, src.ids
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					merged = append(merged, a[i])
					i++
				case a[i] > b[j]:
					merged = append(merged, b[j])
					j++
				default:
					merged = append(merged, a[i])
					i++
					j++
				}
			}
			merged = append(merged, a[i:]...)
			merged = append(merged, b[j:]...)
			row.count = int32(len(merged))
			if len(merged) > h.sparseMax {
				// Crossed the density threshold: promote in place.
				if row.words == nil {
					row.words = make([]uint64, (h.n+wordBits-1)/wordBits)
				} else {
					clear(row.words)
				}
				for _, t := range merged {
					row.words[t>>6] |= 1 << (uint(t) & 63)
				}
				row.dense = true
				row.ids = row.ids[:0]
			} else {
				row.ids = append(row.ids[:0], merged...)
			}
		}
		h.pairs += int64(row.count - before)
	}
	if grew {
		slices.Sort(h.active) // restore the ascending-source invariant
	}
}
