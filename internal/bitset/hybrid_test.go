package bitset

import (
	"math/rand"
	"testing"
)

// randomOperand builds a CSROperand with ~m random edges over n vertices,
// plus the matching dense sets, mirroring graph.CSR.LabelOperand.
func randomOperand(rng *rand.Rand, n, m int) CSROperand {
	adj := make(map[int]map[int]bool)
	for i := 0; i < m; i++ {
		s, t := rng.Intn(n), rng.Intn(n)
		if adj[s] == nil {
			adj[s] = make(map[int]bool)
		}
		adj[s][t] = true
	}
	op := CSROperand{N: n, Offsets: make([]int32, n+1), Dense: make([]*Set, n)}
	for v := 0; v < n; v++ {
		op.Offsets[v+1] = op.Offsets[v]
		if len(adj[v]) == 0 {
			continue
		}
		d := New(n)
		for t := range adj[v] {
			d.Add(t)
		}
		op.Dense[v] = d
		d.ForEach(func(t int) bool {
			op.Targets = append(op.Targets, int32(t))
			op.Offsets[v+1]++
			return true
		})
	}
	return op
}

// legacyFromOperand builds the dense reference relation of an operand.
func legacyFromOperand(op CSROperand) *Relation {
	r := NewRelation(op.N)
	for v := 0; v < op.N; v++ {
		for _, t := range op.Targets[op.Offsets[v]:op.Offsets[v+1]] {
			r.Add(v, int(t))
		}
	}
	return r
}

func TestHybridFromCSRMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 64, 65, 300} {
		for _, density := range []float64{1e-9, 0.03125, 0.5, 1.0} {
			op := randomOperand(rng, n, n*3)
			h := HybridFromCSR(op, density)
			want := legacyFromOperand(op)
			if !h.EqualRelation(want) {
				t.Fatalf("n=%d density=%v: hybrid != legacy", n, density)
			}
			if h.Pairs() != want.Pairs() {
				t.Fatalf("n=%d density=%v: pairs %d != %d", n, density, h.Pairs(), want.Pairs())
			}
		}
	}
}

// TestHybridComposeMatchesLegacy is the core kernel property test: the
// hybrid compose (whatever mix of sparse×CSR and dense×CSR kernels it
// dispatches) must produce exactly the pairs of the legacy dense compose,
// across densities that force all-sparse, mixed, and all-dense rows.
func TestHybridComposeMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(200)
		opA := randomOperand(rng, n, 1+rng.Intn(4*n))
		opB := randomOperand(rng, n, 1+rng.Intn(4*n))
		want := legacyFromOperand(opA).Compose(opB.Dense)
		for _, density := range []float64{1e-9, 0.03125, 0.25, 1.0} {
			h := HybridFromCSR(opA, density)
			got := h.Compose(opB, density)
			if !got.EqualRelation(want) {
				t.Fatalf("trial %d n=%d density=%v: compose mismatch", trial, n, density)
			}
			if got.Pairs() != want.Pairs() {
				t.Fatalf("trial %d n=%d density=%v: pairs %d != %d",
					trial, n, density, got.Pairs(), want.Pairs())
			}
		}
	}
}

// TestHybridComposeIntoReuse checks the pooling contract: a destination
// reused across many ComposeInto calls (including after holding dense rows)
// always equals a freshly allocated result.
func TestHybridComposeIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 150
	dst := NewHybrid(n, 0.1)
	scr := NewComposeScratch(n)
	for trial := 0; trial < 30; trial++ {
		opA := randomOperand(rng, n, 1+rng.Intn(6*n))
		opB := randomOperand(rng, n, 1+rng.Intn(6*n))
		h := HybridFromCSR(opA, 0.1)
		h.ComposeInto(dst, opB, scr)
		want := legacyFromOperand(opA).Compose(opB.Dense)
		if !dst.EqualRelation(want) {
			t.Fatalf("trial %d: reused dst diverged from fresh compose", trial)
		}
	}
}

func TestHybridPromotionRule(t *testing.T) {
	const n = 640
	op := CSROperand{N: n, Offsets: make([]int32, n+1), Dense: make([]*Set, n)}
	// Source 0 has exactly n/32 targets (at the memory-parity threshold);
	// source 1 has n/32 + 1 (just past it).
	limit := n / 32
	d0, d1 := New(n), New(n)
	for i := 0; i < limit; i++ {
		op.Targets = append(op.Targets, int32(i))
		d0.Add(i)
	}
	op.Offsets[1] = int32(limit)
	for i := 0; i <= limit; i++ {
		op.Targets = append(op.Targets, int32(i))
		d1.Add(i)
	}
	for v := 1; v < n; v++ {
		op.Offsets[v+1] = op.Offsets[v]
	}
	op.Offsets[2] = op.Offsets[1] + int32(limit) + 1
	for v := 2; v <= n; v++ {
		op.Offsets[v] = op.Offsets[2]
	}
	op.Dense[0], op.Dense[1] = d0, d1
	h := HybridFromCSR(op, 0) // default threshold = 1/32
	if h.RowDense(0) {
		t.Fatalf("row with count=|V|/32 should stay sparse")
	}
	if !h.RowDense(1) {
		t.Fatalf("row with count=|V|/32+1 should promote to dense")
	}
	if h.RowCount(0) != limit || h.RowCount(1) != limit+1 {
		t.Fatalf("cached counts wrong: %d, %d", h.RowCount(0), h.RowCount(1))
	}
}

func TestHybridPairsCached(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	op := randomOperand(rng, 128, 500)
	h := HybridFromCSR(op, 0.1)
	want := legacyFromOperand(op).Pairs()
	for i := 0; i < 3; i++ {
		if h.Pairs() != want {
			t.Fatalf("Pairs() = %d, want %d", h.Pairs(), want)
		}
	}
}

func TestHybridResetKeepsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	op := randomOperand(rng, 64, 300)
	h := HybridFromCSR(op, 0.5)
	h.Reset()
	if h.Pairs() != 0 || h.Sources() != 0 {
		t.Fatalf("reset relation not empty: pairs=%d sources=%d", h.Pairs(), h.Sources())
	}
	h.ForEachPair(func(s, t2 int) bool {
		t.Fatalf("reset relation yielded pair (%d,%d)", s, t2)
		return false
	})
}

func TestHybridComposeAliasPanics(t *testing.T) {
	op := randomOperand(rand.New(rand.NewSource(6)), 32, 50)
	h := HybridFromCSR(op, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("aliased ComposeInto should panic")
		}
	}()
	h.ComposeInto(h, op, NewComposeScratch(32))
}

func TestHybridContains(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	op := randomOperand(rng, 90, 400)
	want := legacyFromOperand(op)
	for _, density := range []float64{1e-9, 1.0} {
		h := HybridFromCSR(op, density)
		for s := 0; s < 90; s++ {
			for t2 := 0; t2 < 90; t2++ {
				if h.Contains(s, t2) != want.Contains(s, t2) {
					t.Fatalf("density=%v: Contains(%d,%d) mismatch", density, s, t2)
				}
			}
		}
	}
}
