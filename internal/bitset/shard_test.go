package bitset

import (
	"math/rand"
	"sync"
	"testing"
)

// pairList flattens a relation in iteration order, capturing both content
// and the active-source ordering that bit-identity depends on.
func pairList(h *HybridRelation) [][2]int {
	var out [][2]int
	h.ForEachPair(func(s, t int) bool {
		out = append(out, [2]int{s, t})
		return true
	})
	return out
}

// assertIdentical fails unless got and want hold the same pairs in the
// same iteration order with the same aggregates.
func assertIdentical(t *testing.T, ctx string, got, want *HybridRelation) {
	t.Helper()
	if got.Pairs() != want.Pairs() || got.Sources() != want.Sources() {
		t.Fatalf("%s: pairs/sources %d/%d != %d/%d",
			ctx, got.Pairs(), got.Sources(), want.Pairs(), want.Sources())
	}
	gp, wp := pairList(got), pairList(want)
	for i := range wp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: pair[%d] = %v, want %v", ctx, i, gp[i], wp[i])
		}
	}
}

// shardBounds splits [0, n) into shards even-count shards.
func shardBounds(n, shards int) []int {
	bounds := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		bounds[i] = i * n / shards
	}
	return bounds
}

// TestComposeShardMatchesCompose pins the partitioned composition
// bit-identical to sequential ComposeInto: any shard partition of the
// active-source list, composed shard by shard and adopted in ascending
// order, must reproduce the sequential result exactly — same rows, same
// active order, same pair count.
func TestComposeShardMatchesCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(250)
		opA := randomOperand(rng, n, 1+rng.Intn(5*n))
		opB := randomOperand(rng, n, 1+rng.Intn(5*n))
		for _, density := range []float64{1e-9, 0.03125, 0.5, 1.0} {
			h := HybridFromCSR(opA, density)
			want := NewHybrid(n, density)
			h.ComposeInto(want, opB, NewComposeScratch(n))
			for _, shards := range []int{1, 2, 3, 7} {
				if shards > h.Sources() && h.Sources() > 0 {
					shards = h.Sources()
				}
				if shards < 1 {
					shards = 1
				}
				dst := NewHybrid(n, density)
				dst.Reset()
				bounds := shardBounds(h.Sources(), shards)
				scr := NewComposeScratch(n)
				for i := 0; i < shards; i++ {
					srcs, pairs := h.ComposeShardInto(dst, opB, scr, bounds[i], bounds[i+1], nil)
					dst.AdoptShard(srcs, pairs)
				}
				assertIdentical(t, "sequential shards", dst, want)
			}
		}
	}
}

// TestComposeShardConcurrent runs disjoint shards concurrently against one
// shared destination — the parallel executor's access pattern — and
// verifies the adopted result is bit-identical to sequential ComposeInto.
// Run under -race this doubles as the proof that disjoint row ranges
// really are disjoint writes.
func TestComposeShardConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(300)
		opA := randomOperand(rng, n, 1+rng.Intn(6*n))
		opB := randomOperand(rng, n, 1+rng.Intn(6*n))
		for _, density := range []float64{0, 0.03125, 1.0} {
			h := HybridFromCSR(opA, density)
			want := NewHybrid(n, density)
			h.ComposeInto(want, opB, NewComposeScratch(n))
			shards := 4
			if h.Sources() < shards {
				continue
			}
			dst := NewHybrid(n, density)
			dst.Reset()
			bounds := shardBounds(h.Sources(), shards)
			srcs := make([][]int32, shards)
			pairs := make([]int64, shards)
			var wg sync.WaitGroup
			for i := 0; i < shards; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					srcs[i], pairs[i] = h.ComposeShardInto(dst, opB, NewComposeScratch(n),
						bounds[i], bounds[i+1], nil)
				}()
			}
			wg.Wait()
			for i := 0; i < shards; i++ {
				dst.AdoptShard(srcs[i], pairs[i])
			}
			assertIdentical(t, "concurrent shards", dst, want)
		}
	}
}

// TestAdoptShardAtMatchesAdoptShard pins the pre-sized merge path
// (BeginAdopt / AdoptShardAt / FinishAdopt) bit-identical to the serial
// ascending-order AdoptShard loop at every shard count 1..16 — including
// partitions degenerate enough that shards hold one row or none, which
// is where off-by-one offsets would surface.
func TestAdoptShardAtMatchesAdoptShard(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		opA := randomOperand(rng, n, 1+rng.Intn(5*n))
		opB := randomOperand(rng, n, 1+rng.Intn(5*n))
		h := HybridFromCSR(opA, 0.25)
		scr := NewComposeScratch(n)
		for shards := 1; shards <= 16; shards++ {
			// Serial reference: compose shard by shard, adopt in order.
			want := NewHybrid(n, 0.25)
			want.Reset()
			bounds := shardBounds(h.Sources(), shards)
			srcs := make([][]int32, shards)
			pairs := make([]int64, shards)
			for i := 0; i < shards; i++ {
				srcs[i], pairs[i] = h.ComposeShardInto(want, opB, scr, bounds[i], bounds[i+1], nil)
			}
			for i := 0; i < shards; i++ {
				want.AdoptShard(srcs[i], pairs[i])
			}
			// Pre-sized merge of the identical shard outputs.
			dst := NewHybrid(n, 0.25)
			dst.Reset()
			srcs2 := make([][]int32, shards)
			pairs2 := make([]int64, shards)
			for i := 0; i < shards; i++ {
				srcs2[i], pairs2[i] = h.ComposeShardInto(dst, opB, scr, bounds[i], bounds[i+1], nil)
			}
			total := 0
			offs := make([]int, shards)
			var sum int64
			for i := 0; i < shards; i++ {
				offs[i] = total
				total += len(srcs2[i])
				sum += pairs2[i]
			}
			dst.BeginAdopt(total)
			for i := 0; i < shards; i++ {
				dst.AdoptShardAt(offs[i], srcs2[i])
			}
			dst.FinishAdopt(sum)
			assertIdentical(t, "pre-sized merge", dst, want)
		}
	}
}

// TestAdoptShardAtConcurrent runs the merge round the way the executor
// does — every shard's copy on its own goroutine against one pre-sized
// destination. Under -race this is the proof that prefix-sum offsets
// really are disjoint writes. Shard counts above the source count force
// empty shards into the round.
func TestAdoptShardAtConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 10; trial++ {
		n := 60 + rng.Intn(200)
		opA := randomOperand(rng, n, 1+rng.Intn(6*n))
		opB := randomOperand(rng, n, 1+rng.Intn(6*n))
		h := HybridFromCSR(opA, 0.25)
		want := NewHybrid(n, 0.25)
		h.ComposeInto(want, opB, NewComposeScratch(n))
		for _, shards := range []int{2, 16, h.Sources() + 3} {
			dst := NewHybrid(n, 0.25)
			dst.Reset()
			bounds := shardBounds(h.Sources(), shards)
			srcs := make([][]int32, shards)
			pairs := make([]int64, shards)
			var wg sync.WaitGroup
			for i := 0; i < shards; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					srcs[i], pairs[i] = h.ComposeShardInto(dst, opB, NewComposeScratch(n),
						bounds[i], bounds[i+1], nil)
				}()
			}
			wg.Wait()
			total := 0
			offs := make([]int, shards)
			var sum int64
			for i := 0; i < shards; i++ {
				offs[i] = total
				total += len(srcs[i])
				sum += pairs[i]
			}
			dst.BeginAdopt(total)
			for i := 0; i < shards; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					dst.AdoptShardAt(offs[i], srcs[i])
				}()
			}
			wg.Wait()
			dst.FinishAdopt(sum)
			assertIdentical(t, "concurrent merge", dst, want)
		}
	}
}

// TestBeginAdoptGuards pins the merge API's misuse panics: BeginAdopt on
// a relation that already adopted sources, and AdoptShardAt outside the
// pre-sized range.
func TestBeginAdoptGuards(t *testing.T) {
	op := randomOperand(rand.New(rand.NewSource(17)), 32, 60)
	h := HybridFromCSR(op, 0.5)
	if h.Sources() == 0 {
		t.Fatal("test operand produced no sources")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("BeginAdopt on a non-empty relation should panic")
			}
		}()
		h.BeginAdopt(4)
	}()
	dst := NewHybrid(32, 0.5)
	dst.Reset()
	dst.BeginAdopt(2)
	defer func() {
		if recover() == nil {
			t.Fatal("AdoptShardAt outside the pre-sized range should panic")
		}
	}()
	dst.AdoptShardAt(1, []int32{1, 2})
}

// TestComposeShardReusedDestination checks the pooling contract of the
// shard path: a destination that previously held rows (including dense
// ones) and is Reset by the coordinator produces the same result as a
// fresh relation.
func TestComposeShardReusedDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 180
	dst := NewHybrid(n, 0.1)
	scr := NewComposeScratch(n)
	for trial := 0; trial < 15; trial++ {
		opA := randomOperand(rng, n, 1+rng.Intn(6*n))
		opB := randomOperand(rng, n, 1+rng.Intn(6*n))
		h := HybridFromCSR(opA, 0.1)
		want := NewHybrid(n, 0.1)
		h.ComposeInto(want, opB, NewComposeScratch(n))
		dst.Reset()
		bounds := shardBounds(h.Sources(), 3)
		for i := 0; i < 3; i++ {
			srcs, pairs := h.ComposeShardInto(dst, opB, scr, bounds[i], bounds[i+1], nil)
			dst.AdoptShard(srcs, pairs)
		}
		assertIdentical(t, "reused dst", dst, want)
	}
}

// TestComposeShardBadRange pins the range validation.
func TestComposeShardBadRange(t *testing.T) {
	op := randomOperand(rand.New(rand.NewSource(14)), 32, 60)
	h := HybridFromCSR(op, 0.5)
	dst := NewHybrid(32, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shard should panic")
		}
	}()
	h.ComposeShardInto(dst, op, NewComposeScratch(32), 0, h.Sources()+1, nil)
}
