package bitset

import (
	"math/rand"
	"sync"
	"testing"
)

// pairList flattens a relation in iteration order, capturing both content
// and the active-source ordering that bit-identity depends on.
func pairList(h *HybridRelation) [][2]int {
	var out [][2]int
	h.ForEachPair(func(s, t int) bool {
		out = append(out, [2]int{s, t})
		return true
	})
	return out
}

// assertIdentical fails unless got and want hold the same pairs in the
// same iteration order with the same aggregates.
func assertIdentical(t *testing.T, ctx string, got, want *HybridRelation) {
	t.Helper()
	if got.Pairs() != want.Pairs() || got.Sources() != want.Sources() {
		t.Fatalf("%s: pairs/sources %d/%d != %d/%d",
			ctx, got.Pairs(), got.Sources(), want.Pairs(), want.Sources())
	}
	gp, wp := pairList(got), pairList(want)
	for i := range wp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: pair[%d] = %v, want %v", ctx, i, gp[i], wp[i])
		}
	}
}

// shardBounds splits [0, n) into shards even-count shards.
func shardBounds(n, shards int) []int {
	bounds := make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		bounds[i] = i * n / shards
	}
	return bounds
}

// TestComposeShardMatchesCompose pins the partitioned composition
// bit-identical to sequential ComposeInto: any shard partition of the
// active-source list, composed shard by shard and adopted in ascending
// order, must reproduce the sequential result exactly — same rows, same
// active order, same pair count.
func TestComposeShardMatchesCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(250)
		opA := randomOperand(rng, n, 1+rng.Intn(5*n))
		opB := randomOperand(rng, n, 1+rng.Intn(5*n))
		for _, density := range []float64{1e-9, 0.03125, 0.5, 1.0} {
			h := HybridFromCSR(opA, density)
			want := NewHybrid(n, density)
			h.ComposeInto(want, opB, NewComposeScratch(n))
			for _, shards := range []int{1, 2, 3, 7} {
				if shards > h.Sources() && h.Sources() > 0 {
					shards = h.Sources()
				}
				if shards < 1 {
					shards = 1
				}
				dst := NewHybrid(n, density)
				dst.Reset()
				bounds := shardBounds(h.Sources(), shards)
				scr := NewComposeScratch(n)
				for i := 0; i < shards; i++ {
					srcs, pairs := h.ComposeShardInto(dst, opB, scr, bounds[i], bounds[i+1], nil)
					dst.AdoptShard(srcs, pairs)
				}
				assertIdentical(t, "sequential shards", dst, want)
			}
		}
	}
}

// TestComposeShardConcurrent runs disjoint shards concurrently against one
// shared destination — the parallel executor's access pattern — and
// verifies the adopted result is bit-identical to sequential ComposeInto.
// Run under -race this doubles as the proof that disjoint row ranges
// really are disjoint writes.
func TestComposeShardConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(300)
		opA := randomOperand(rng, n, 1+rng.Intn(6*n))
		opB := randomOperand(rng, n, 1+rng.Intn(6*n))
		for _, density := range []float64{0, 0.03125, 1.0} {
			h := HybridFromCSR(opA, density)
			want := NewHybrid(n, density)
			h.ComposeInto(want, opB, NewComposeScratch(n))
			shards := 4
			if h.Sources() < shards {
				continue
			}
			dst := NewHybrid(n, density)
			dst.Reset()
			bounds := shardBounds(h.Sources(), shards)
			srcs := make([][]int32, shards)
			pairs := make([]int64, shards)
			var wg sync.WaitGroup
			for i := 0; i < shards; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					srcs[i], pairs[i] = h.ComposeShardInto(dst, opB, NewComposeScratch(n),
						bounds[i], bounds[i+1], nil)
				}()
			}
			wg.Wait()
			for i := 0; i < shards; i++ {
				dst.AdoptShard(srcs[i], pairs[i])
			}
			assertIdentical(t, "concurrent shards", dst, want)
		}
	}
}

// TestComposeShardReusedDestination checks the pooling contract of the
// shard path: a destination that previously held rows (including dense
// ones) and is Reset by the coordinator produces the same result as a
// fresh relation.
func TestComposeShardReusedDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 180
	dst := NewHybrid(n, 0.1)
	scr := NewComposeScratch(n)
	for trial := 0; trial < 15; trial++ {
		opA := randomOperand(rng, n, 1+rng.Intn(6*n))
		opB := randomOperand(rng, n, 1+rng.Intn(6*n))
		h := HybridFromCSR(opA, 0.1)
		want := NewHybrid(n, 0.1)
		h.ComposeInto(want, opB, NewComposeScratch(n))
		dst.Reset()
		bounds := shardBounds(h.Sources(), 3)
		for i := 0; i < 3; i++ {
			srcs, pairs := h.ComposeShardInto(dst, opB, scr, bounds[i], bounds[i+1], nil)
			dst.AdoptShard(srcs, pairs)
		}
		assertIdentical(t, "reused dst", dst, want)
	}
}

// TestComposeShardBadRange pins the range validation.
func TestComposeShardBadRange(t *testing.T) {
	op := randomOperand(rand.New(rand.NewSource(14)), 32, 60)
	h := HybridFromCSR(op, 0.5)
	dst := NewHybrid(32, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shard should panic")
		}
	}()
	h.ComposeShardInto(dst, op, NewComposeScratch(32), 0, h.Sources()+1, nil)
}
