package bitset

import "fmt"

// Relation is a binary relation over the vertex universe [0, n): a set of
// ordered pairs (source, target). Rows are allocated lazily — a source with
// no targets costs one nil pointer — which matters because label-path
// relations are typically sparse in their source dimension.
type Relation struct {
	rows []*Set
	n    int
}

// NewRelation returns an empty relation over an n-vertex universe.
func NewRelation(n int) *Relation {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe %d", n))
	}
	return &Relation{rows: make([]*Set, n), n: n}
}

// Universe returns the vertex-universe size n.
func (r *Relation) Universe() int { return r.n }

// Add inserts the pair (s, t).
func (r *Relation) Add(s, t int) {
	if r.rows[s] == nil {
		r.rows[s] = New(r.n)
	}
	r.rows[s].Add(t)
}

// Contains reports whether the pair (s, t) is present.
func (r *Relation) Contains(s, t int) bool {
	return r.rows[s] != nil && r.rows[s].Contains(t)
}

// Row returns the target set of source s, or nil when s has no targets.
// The returned set is shared, not a copy.
func (r *Relation) Row(s int) *Set { return r.rows[s] }

// Pairs returns the total number of pairs (distinct by construction).
func (r *Relation) Pairs() int64 {
	var c int64
	for _, row := range r.rows {
		if row != nil {
			c += int64(row.Count())
		}
	}
	return c
}

// Sources returns the number of sources with at least one target.
func (r *Relation) Sources() int {
	c := 0
	for _, row := range r.rows {
		if row != nil && !row.Empty() {
			c++
		}
	}
	return c
}

// ForEachRow calls fn once per non-empty source row in ascending source
// order. The set passed to fn is shared, not a copy.
func (r *Relation) ForEachRow(fn func(s int, targets *Set) bool) {
	for s, row := range r.rows {
		if row == nil || row.Empty() {
			continue
		}
		if !fn(s, row) {
			return
		}
	}
}

// Compose returns the relational composition r ∘ succ, where succ[t] is the
// successor set of vertex t (e.g. the adjacency rows of one edge label):
//
//	(s, u) ∈ result  ⇔  ∃t: (s, t) ∈ r ∧ u ∈ succ[t]
//
// succ must have length equal to the universe; nil entries mean "no
// successors". Distinctness of result pairs is inherent in the bit-set
// representation.
func (r *Relation) Compose(succ []*Set) *Relation {
	if len(succ) != r.n {
		panic(fmt.Sprintf("bitset: successor table size %d != universe %d", len(succ), r.n))
	}
	out := NewRelation(r.n)
	for s, row := range r.rows {
		if row == nil || row.Empty() {
			continue
		}
		var acc *Set
		row.ForEach(func(t int) bool {
			if succ[t] != nil {
				if acc == nil {
					acc = New(r.n)
				}
				acc.UnionWith(succ[t])
			}
			return true
		})
		if acc != nil && !acc.Empty() {
			out.rows[s] = acc
		}
	}
	return out
}

// Reverse returns the inverse relation: (t, s) for every (s, t).
func (r *Relation) Reverse() *Relation {
	out := NewRelation(r.n)
	for s, row := range r.rows {
		if row == nil {
			continue
		}
		row.ForEach(func(t int) bool {
			out.Add(t, s)
			return true
		})
	}
	return out
}

// Equal reports whether two relations contain the same pairs.
func (r *Relation) Equal(o *Relation) bool {
	if r.n != o.n {
		return false
	}
	for s := 0; s < r.n; s++ {
		a, b := r.rows[s], o.rows[s]
		switch {
		case a == nil || a.Empty():
			if b != nil && !b.Empty() {
				return false
			}
		case b == nil || b.Empty():
			return false
		default:
			if !a.Equal(b) {
				return false
			}
		}
	}
	return true
}
