package bitset

import (
	"fmt"
	"math/rand"
	"testing"
)

// referenceJoin computes A ∘ B pair by pair on the dense reference
// representation — the oracle every hybrid join kernel is pinned against.
func referenceJoin(a, b *Relation) *Relation {
	out := NewRelation(a.Universe())
	a.ForEachRow(func(s int, targets *Set) bool {
		targets.ForEach(func(t int) bool {
			if row := b.Row(t); row != nil {
				row.ForEach(func(u int) bool {
					out.Add(s, u)
					return true
				})
			}
			return true
		})
		return true
	})
	return out
}

// TestJoinMatchesReference pins JoinInto against the pairwise reference
// across universe sizes and every density-threshold combination of the
// three relations involved, so sparse×sparse, sparse×dense, dense×sparse,
// and dense×dense row pairings all occur, as do both output-row forms.
func TestJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	densities := []float64{0, 1e-9, 0.1, 1.0}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(140)
		da := densities[trial%4]
		db := densities[(trial/4)%4]
		dd := densities[(trial/16)%4]
		ha, ra := randomHybridAndDense(rng, n, rng.Intn(5*n), da)
		hb, rb := randomHybridAndDense(rng, n, rng.Intn(5*n), db)
		want := referenceJoin(ra, rb)
		dst := NewHybrid(n, dd)
		pairs := ha.JoinInto(dst, hb, NewComposeScratch(n))
		ctx := fmt.Sprintf("trial %d n %d densities %v/%v/%v", trial, n, da, db, dd)
		if pairs != want.Pairs() {
			t.Fatalf("%s: join pairs %d, reference %d", ctx, pairs, want.Pairs())
		}
		if !dst.EqualRelation(want) {
			t.Fatalf("%s: join content differs from reference", ctx)
		}
		// The allocating convenience form must agree.
		if got := ha.Join(hb, dd); !got.EqualRelation(want) {
			t.Fatalf("%s: Join convenience form differs from reference", ctx)
		}
	}
}

// TestJoinSelf pins the self-join (h ∘ h), the aliasing case JoinInto
// explicitly permits.
func TestJoinSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(100)
		h, r := randomHybridAndDense(rng, n, rng.Intn(4*n), []float64{0, 1.0}[trial%2])
		want := referenceJoin(r, r)
		dst := NewHybrid(n, 0)
		h.JoinInto(dst, h, NewComposeScratch(n))
		if !dst.EqualRelation(want) {
			t.Fatalf("trial %d: self-join differs from reference", trial)
		}
	}
}

// TestJoinIntoReuse pins the pooling contract: a destination reused across
// joins of different relations holds exactly the latest result.
func TestJoinIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 90
	dst := NewHybrid(n, 0)
	scr := NewComposeScratch(n)
	for round := 0; round < 10; round++ {
		ha, ra := randomHybridAndDense(rng, n, rng.Intn(4*n), 0.1)
		hb, rb := randomHybridAndDense(rng, n, rng.Intn(4*n), 1.0)
		ha.JoinInto(dst, hb, scr)
		if want := referenceJoin(ra, rb); !dst.EqualRelation(want) {
			t.Fatalf("round %d: reused destination differs from reference", round)
		}
	}
}

// TestJoinShardMatchesSequential pins the partitioned form: any shard
// decomposition of the active range, adopted in ascending shard order,
// must reproduce sequential JoinInto exactly — content, pair count, and
// active-source order.
func TestJoinShardMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(150)
		ha, _ := randomHybridAndDense(rng, n, n+rng.Intn(5*n), 0)
		hb, _ := randomHybridAndDense(rng, n, n+rng.Intn(5*n), []float64{0, 1e-9, 1.0}[trial%3])
		seq := NewHybrid(n, 0)
		ha.JoinInto(seq, hb, NewComposeScratch(n))

		shards := 1 + rng.Intn(7)
		dst := NewHybrid(n, 0)
		dst.Reset()
		nact := ha.Sources()
		srcs := make([][]int32, shards)
		pairs := make([]int64, shards)
		for i := 0; i < shards; i++ {
			lo, hi := i*nact/shards, (i+1)*nact/shards
			srcs[i], pairs[i] = ha.JoinShardInto(dst, hb, NewComposeScratch(n), lo, hi, nil)
		}
		for i := 0; i < shards; i++ {
			dst.AdoptShard(srcs[i], pairs[i])
		}
		if dst.Pairs() != seq.Pairs() || !dst.Equal(seq) {
			t.Fatalf("trial %d shards %d: sharded join differs from sequential", trial, shards)
		}
		// Active order must match too: walk both pair streams in lockstep.
		type pr struct{ s, t int }
		var a, b []pr
		seq.ForEachPair(func(s, t int) bool { a = append(a, pr{s, t}); return true })
		dst.ForEachPair(func(s, t int) bool { b = append(b, pr{s, t}); return true })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d shards %d: pair stream diverges at %d", trial, shards, i)
			}
		}
	}
}

// TestJoinPanics pins the precondition checks.
func TestJoinPanics(t *testing.T) {
	h := NewHybrid(8, 0)
	r := NewHybrid(8, 0)
	bad := NewHybrid(9, 0)
	scr := NewComposeScratch(8)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("dst==h", func() { h.JoinInto(h, r, scr) })
	expectPanic("dst==r", func() { h.JoinInto(r, r, scr) })
	expectPanic("universe mismatch", func() { h.JoinInto(NewHybrid(8, 0), bad, scr) })
	expectPanic("dst universe mismatch", func() { h.JoinInto(bad, r, scr) })
	expectPanic("shard range", func() { h.JoinShardInto(NewHybrid(8, 0), r, scr, 0, 5, nil) })
}

// FuzzJoinEquivalence fuzzes both operands' shapes, all three density
// thresholds, and the shard decomposition, asserting hybrid join ≡ dense
// reference and sharded ≡ sequential on every input.
func FuzzJoinEquivalence(f *testing.F) {
	f.Add(int64(1), 40, 120, 90, float64(0), float64(1), float64(0), uint8(3))
	f.Add(int64(2), 8, 20, 300, float64(1e-9), float64(0), float64(1), uint8(1))
	f.Add(int64(3), 100, 0, 50, float64(0.1), float64(0.1), float64(1e-9), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, n, pairsA, pairsB int, da, db, dd float64, shards uint8) {
		if n < 1 || n > 200 || pairsA < 0 || pairsA > 1000 || pairsB < 0 || pairsB > 1000 ||
			da < 0 || da > 1 || db < 0 || db > 1 || dd < 0 || dd > 1 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		ha, ra := randomHybridAndDense(rng, n, pairsA, da)
		hb, rb := randomHybridAndDense(rng, n, pairsB, db)
		want := referenceJoin(ra, rb)
		dst := NewHybrid(n, dd)
		ha.JoinInto(dst, hb, NewComposeScratch(n))
		if !dst.EqualRelation(want) {
			t.Fatalf("join differs from dense reference (n=%d)", n)
		}
		ns := int(shards%8) + 1
		sharded := NewHybrid(n, dd)
		sharded.Reset()
		nact := ha.Sources()
		scr := NewComposeScratch(n)
		type res struct {
			srcs  []int32
			pairs int64
		}
		results := make([]res, ns)
		for i := 0; i < ns; i++ {
			results[i].srcs, results[i].pairs = ha.JoinShardInto(
				sharded, hb, scr, i*nact/ns, (i+1)*nact/ns, nil)
		}
		for _, r := range results {
			sharded.AdoptShard(r.srcs, r.pairs)
		}
		if !sharded.Equal(dst) || sharded.Pairs() != dst.Pairs() {
			t.Fatalf("sharded join differs from sequential (n=%d shards=%d)", n, ns)
		}
	})
}
