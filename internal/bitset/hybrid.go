package bitset

import (
	"fmt"
	"math/bits"
	"slices"
)

// DefaultDensityThreshold is the fraction of the vertex universe at which a
// sparse row promotes to the dense word-array form. At count = |V|/32 the
// sorted-int32 form and the dense form occupy the same memory (32 bits per
// id vs 1 bit per universe slot), so the default promotes exactly at the
// memory crossover.
const DefaultDensityThreshold = 1.0 / 32

// CSROperand is one edge label's adjacency in the two forms the compose
// kernels choose between: the CSR arrays (Offsets/Targets) drive the
// sparse×CSR scatter kernel, and the per-source dense successor sets drive
// the dense×CSR word-parallel union kernel. All slices are read-only shared
// views.
type CSROperand struct {
	N       int     // vertex universe size
	Offsets []int32 // len N+1; Targets[Offsets[v]:Offsets[v+1]] = successors of v, ascending
	Targets []int32
	Dense   []*Set // per-source dense rows; nil entries mean "no successors"
}

// OutDegree returns the number of successors of v in the operand.
func (op CSROperand) OutDegree(v int) int {
	return int(op.Offsets[v+1] - op.Offsets[v])
}

// hrow is one source row of a HybridRelation: either a sorted sparse id
// list or a dense word array, never both, with its population count cached
// so distinct-pair counting never rescans words.
type hrow struct {
	ids   []int32  // sparse form: target ids, ascending; nil/empty when dense
	words []uint64 // dense form; retained (dirty) across reuses and fully overwritten on each dense fill
	count int32
	dense bool
}

// HybridRelation is a binary relation over [0, n) whose rows adaptively
// switch between a sparse sorted-id representation and a dense bit-set
// representation at a configurable density threshold. It is the pooled,
// allocation-free-in-steady-state substrate of the census engine: rows and
// the active-source list keep their capacity across Reset, and compose
// kernels write into a destination relation instead of allocating one.
type HybridRelation struct {
	n         int
	sparseMax int // rows with count ≤ sparseMax stay sparse
	rows      []hrow
	active    []int32 // sources with ≥1 target, ascending after compose
	pairs     int64   // Σ row counts, maintained incrementally
}

// sparseLimit converts a density threshold (fraction of n) into the
// maximum sparse row count. A non-positive threshold selects the default;
// thresholds ≥ 1 disable promotion entirely.
func sparseLimit(n int, density float64) int {
	if density <= 0 {
		density = DefaultDensityThreshold
	}
	if density >= 1 {
		return n
	}
	m := int(density * float64(n))
	if m < 1 {
		m = 1
	}
	return m
}

// NewHybrid returns an empty hybrid relation over an n-vertex universe.
// density is the promotion threshold as a fraction of n (≤ 0 selects
// DefaultDensityThreshold, ≥ 1 keeps every row sparse).
func NewHybrid(n int, density float64) *HybridRelation {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe %d", n))
	}
	return &HybridRelation{n: n, sparseMax: sparseLimit(n, density), rows: make([]hrow, n)}
}

// HybridFromCSR builds the length-1 path relation of one label directly
// from its CSR operand: row v holds op's successors of v, sparse or dense
// per the threshold. Target slices are copied, never aliased, so the
// relation can be pooled and its rows rewritten without corrupting the
// operand.
func HybridFromCSR(op CSROperand, density float64) *HybridRelation {
	h := NewHybrid(op.N, density)
	h.FillFromCSR(op)
	return h
}

// FillFromCSR fills h with the length-1 path relation of one label — the
// pooled form of HybridFromCSR: h is Reset first and its row storage is
// reused in place, so executions drawing their buffers from a pool start
// a query without allocating. h's universe must equal op.N.
func (h *HybridRelation) FillFromCSR(op CSROperand) {
	if op.N != h.n {
		panic(fmt.Sprintf("bitset: operand universe %d != relation universe %d", op.N, h.n))
	}
	h.Reset()
	for v := 0; v < op.N; v++ {
		ts := op.Targets[op.Offsets[v]:op.Offsets[v+1]]
		if len(ts) == 0 {
			continue
		}
		row := &h.rows[v]
		row.count = int32(len(ts))
		if len(ts) <= h.sparseMax {
			row.ids = append(row.ids[:0], ts...)
		} else {
			row.dense = true
			if row.words == nil {
				row.words = make([]uint64, (op.N+wordBits-1)/wordBits)
			} else {
				clear(row.words)
			}
			for _, t := range ts {
				row.words[t>>6] |= 1 << (uint(t) & 63)
			}
		}
		h.active = append(h.active, int32(v))
		h.pairs += int64(len(ts))
	}
}

// Universe returns the vertex-universe size n.
func (h *HybridRelation) Universe() int { return h.n }

// Pairs returns the total number of distinct pairs. O(1): per-row counts
// are cached at construction time.
func (h *HybridRelation) Pairs() int64 { return h.pairs }

// Sources returns the number of sources with at least one target.
func (h *HybridRelation) Sources() int { return len(h.active) }

// RowCount returns the cached target count of source s.
func (h *HybridRelation) RowCount(s int) int { return int(h.rows[s].count) }

// RowDense reports whether source s is currently in dense form.
func (h *HybridRelation) RowDense(s int) bool { return h.rows[s].dense }

// Contains reports whether the pair (s, t) is present.
func (h *HybridRelation) Contains(s, t int) bool {
	row := &h.rows[s]
	if row.count == 0 {
		return false
	}
	if row.dense {
		return row.words[t>>6]&(1<<(uint(t)&63)) != 0
	}
	_, ok := slices.BinarySearch(row.ids, int32(t))
	return ok
}

// Reset empties the relation while keeping row and list capacity, readying
// it for reuse from a pool. Dense word arrays are left dirty; every dense
// fill overwrites them in full.
func (h *HybridRelation) Reset() {
	for _, s := range h.active {
		row := &h.rows[s]
		row.count = 0
		row.dense = false
		row.ids = row.ids[:0]
	}
	h.active = h.active[:0]
	h.pairs = 0
}

// ForEachPair calls fn for every pair in ascending (s, t) order; it stops
// early when fn returns false.
func (h *HybridRelation) ForEachPair(fn func(s, t int) bool) {
	for _, s := range h.active {
		row := &h.rows[s]
		if row.dense {
			for wi, w := range row.words {
				for w != 0 {
					if !fn(int(s), wi*wordBits+bits.TrailingZeros64(w)) {
						return
					}
					w &= w - 1
				}
			}
		} else {
			for _, t := range row.ids {
				if !fn(int(s), int(t)) {
					return
				}
			}
		}
	}
}

// ToRelation converts to the dense reference representation (for tests and
// interop with the legacy compose path).
func (h *HybridRelation) ToRelation() *Relation {
	r := NewRelation(h.n)
	h.ForEachPair(func(s, t int) bool {
		r.Add(s, t)
		return true
	})
	return r
}

// EqualRelation reports whether h contains exactly the pairs of the dense
// reference relation r.
func (h *HybridRelation) EqualRelation(r *Relation) bool {
	if h.n != r.Universe() || h.pairs != r.Pairs() {
		return false
	}
	equal := true
	h.ForEachPair(func(s, t int) bool {
		if !r.Contains(s, t) {
			equal = false
		}
		return equal
	})
	return equal
}

// ComposeScratch is the per-worker accumulator of the sparse×CSR kernel: a
// dense bitmap plus the list of words touched by the scatter, so resetting
// costs O(touched) instead of O(|V|/64). The dense×CSR kernel bypasses it
// and unions directly into the destination row.
type ComposeScratch struct {
	words      []uint64
	touched    []int32
	wMin, wMax int32 // touched word index range of the current scatter

	// Relation×relation join state (join.go), lazily allocated on first
	// use: a full-width accumulator for output rows with dense right-side
	// inputs (where touched-word tracking would be incomplete), and the
	// expansion buffer for dense left rows.
	joinWords []uint64
	tbuf      []int32

	// Cooperative cancellation state (cancel.go): the attached flag and
	// the remaining work budget of the current amortization window.
	cancel       *CancelFlag
	cancelBudget int
}

// NewComposeScratch returns a scratch accumulator for an n-vertex universe.
func NewComposeScratch(n int) *ComposeScratch {
	return &ComposeScratch{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// reset zeroes exactly the words the last scatter touched.
func (scr *ComposeScratch) reset() {
	for _, wi := range scr.touched {
		scr.words[wi] = 0
	}
	scr.touched = scr.touched[:0]
}

// scatterSparse is the sparse×CSR kernel: for each intermediate vertex t in
// the sorted id list, scatter t's CSR adjacency into the accumulator.
// Returns the number of distinct targets accumulated. Cost is
// O(Σ_t deg(t)), independent of |V|.
func (scr *ComposeScratch) scatterSparse(ids []int32, op CSROperand) int {
	count := 0
	scr.wMin, scr.wMax = int32(len(scr.words)), -1
	for _, t := range ids {
		for _, u := range op.Targets[op.Offsets[t]:op.Offsets[t+1]] {
			wi := u >> 6
			bit := uint64(1) << (uint(u) & 63)
			if scr.words[wi]&bit == 0 {
				if scr.words[wi] == 0 {
					scr.touched = append(scr.touched, wi)
					if wi < scr.wMin {
						scr.wMin = wi
					}
					if wi > scr.wMax {
						scr.wMax = wi
					}
				}
				scr.words[wi] |= bit
				count++
			}
		}
	}
	return count
}

// denseRowCompose is the dense×CSR kernel: for each set bit t of the dense
// source row, union t's dense successor set into out word-parallel. out may
// hold stale data — the first union overwrites it in full (copy), so no
// pre-clearing is needed. Returns the population count of out, or 0 when no
// bit had successors (out is then untouched garbage and must be ignored).
func denseRowCompose(src []uint64, op CSROperand, out []uint64) int {
	first := true
	for wi, w := range src {
		for w != 0 {
			t := wi*wordBits + bits.TrailingZeros64(w)
			w &= w - 1
			d := op.Dense[t]
			if d == nil {
				continue
			}
			if first {
				copy(out, d.words)
				first = false
			} else {
				for i, dw := range d.words {
					out[i] |= dw
				}
			}
		}
	}
	if first {
		return 0
	}
	count := 0
	for _, w := range out {
		count += bits.OnesCount64(w)
	}
	return count
}

// emitRow stores the scatter accumulator into dst's row s, choosing the
// sparse or dense form by dst's threshold, and resets the accumulator. It
// touches only the row itself — the caller accounts for dst's active list
// and pair count, so sharded compositions can run rows concurrently.
func (scr *ComposeScratch) emitRow(dst *HybridRelation, s int32, count int) {
	row := &dst.rows[s]
	row.count = int32(count)
	if count <= dst.sparseMax {
		row.dense = false
		row.ids = row.ids[:0]
		if span := int(scr.wMax-scr.wMin) + 1; span <= 4*len(scr.touched) {
			// Touched words are clustered: a bounded ascending scan is
			// cheaper than sorting the touched list.
			for wi := scr.wMin; wi <= scr.wMax; wi++ {
				w := scr.words[wi]
				base := wi * wordBits
				for w != 0 {
					row.ids = append(row.ids, base+int32(bits.TrailingZeros64(w)))
					w &= w - 1
				}
			}
		} else {
			slices.Sort(scr.touched)
			for _, wi := range scr.touched {
				w := scr.words[wi]
				base := wi * wordBits
				for w != 0 {
					row.ids = append(row.ids, base+int32(bits.TrailingZeros64(w)))
					w &= w - 1
				}
			}
		}
	} else {
		row.dense = true
		if row.words == nil {
			row.words = make([]uint64, len(scr.words))
		}
		// Full overwrite: untouched scratch words are zero, so this is the
		// complete row.
		copy(row.words, scr.words)
	}
	scr.reset()
}

// ComposeInto computes the relational composition h ∘ op into dst:
//
//	(s, u) ∈ dst  ⇔  ∃t: (s, t) ∈ h ∧ u ∈ op.successors(t)
//
// dst is reset first and its rows are reused in place, so steady-state
// composition allocates nothing. Each input row dispatches to the kernel
// matching its representation: sparse rows scatter through the CSR arrays,
// dense rows union the operand's dense sets word-parallel. Returns the
// distinct-pair count of dst. h and dst must be distinct objects over the
// same universe as op.
func (h *HybridRelation) ComposeInto(dst *HybridRelation, op CSROperand, scr *ComposeScratch) int64 {
	h.checkCompose(dst, op)
	dst.Reset()
	for _, s := range h.active {
		count := h.composeRow(dst, op, scr, s)
		if count > 0 {
			dst.active = append(dst.active, s)
			dst.pairs += int64(count)
		}
		if scr.cancelled(count) {
			// dst holds a partial composition the caller must discard;
			// the caller's cancellation cause says why.
			return dst.pairs
		}
	}
	return dst.pairs
}

// checkCompose validates the shared preconditions of ComposeInto and
// ComposeShardInto.
func (h *HybridRelation) checkCompose(dst *HybridRelation, op CSROperand) {
	if op.N != h.n {
		panic(fmt.Sprintf("bitset: operand universe %d != relation universe %d", op.N, h.n))
	}
	if dst == h {
		panic("bitset: compose aliasing dst == receiver")
	}
}

// composeRow computes row s of h ∘ op into dst.rows[s], dispatching to the
// kernel matching s's representation, and returns the row's target count
// (0 leaves dst.rows[s] in its Reset state, possibly with dirty dense
// words that the count field marks as garbage). It touches nothing of dst
// but the one row, so calls on distinct rows may run concurrently against
// a shared dst as long as each caller owns its scratch.
func (h *HybridRelation) composeRow(dst *HybridRelation, op CSROperand, scr *ComposeScratch, s int32) int {
	row := &h.rows[s]
	if row.dense {
		drow := &dst.rows[s]
		if drow.words == nil {
			drow.words = make([]uint64, len(scr.words))
		}
		count := denseRowCompose(row.words, op, drow.words)
		if count == 0 {
			return 0
		}
		drow.count = int32(count)
		if count <= dst.sparseMax {
			// Demote: extract the sorted ids; the dirty words are
			// ignored until the next dense fill overwrites them.
			drow.dense = false
			drow.ids = drow.ids[:0]
			for wi, w := range drow.words {
				base := int32(wi * wordBits)
				for w != 0 {
					drow.ids = append(drow.ids, base+int32(bits.TrailingZeros64(w)))
					w &= w - 1
				}
			}
		} else {
			drow.dense = true
		}
		return count
	}
	count := scr.scatterSparse(row.ids, op)
	if count == 0 {
		scr.reset()
		return 0
	}
	scr.emitRow(dst, s, count)
	return count
}

// ComposeShardInto composes one shard of h ∘ op — the rows of h's
// active-source slice in index positions [lo, hi) — into dst's row array.
// It is the partitioned form of ComposeInto for parallel execution:
// shards with disjoint [lo, hi) ranges may run concurrently against the
// same dst (each with its own scratch) because every row is written by
// exactly one shard. dst must have been Reset by the coordinator first,
// and dst's aggregate state (active list, pair count) is not touched —
// the produced sources are appended to buf and returned with the shard's
// pair count, for the coordinator to merge deterministically with
// AdoptShard in ascending shard order.
func (h *HybridRelation) ComposeShardInto(dst *HybridRelation, op CSROperand, scr *ComposeScratch, lo, hi int, buf []int32) ([]int32, int64) {
	h.checkCompose(dst, op)
	if lo < 0 || hi > len(h.active) || lo > hi {
		panic(fmt.Sprintf("bitset: shard [%d,%d) out of active range [0,%d)", lo, hi, len(h.active)))
	}
	buf = buf[:0]
	var pairs int64
	for _, s := range h.active[lo:hi] {
		count := h.composeRow(dst, op, scr, s)
		if count > 0 {
			buf = append(buf, s)
			pairs += int64(count)
		}
		if scr.cancelled(count) {
			return buf, pairs // partial shard; the coordinator discards it
		}
	}
	return buf, pairs
}

// AdoptShard merges one shard's outcome (as returned by ComposeShardInto)
// into the relation's aggregate state. Shards must be adopted sequentially
// in ascending shard order so the active-source list stays sorted — the
// concatenation of per-shard ascending source runs over ascending disjoint
// ranges is exactly the list sequential ComposeInto would have built,
// which is what keeps parallel composition bit-identical. For merges large
// enough to be worth parallelizing, BeginAdopt / AdoptShardAt / FinishAdopt
// write the same concatenation through pre-sized disjoint ranges instead
// of serializing on the coordinator.
func (h *HybridRelation) AdoptShard(sources []int32, pairs int64) {
	h.active = append(h.active, sources...)
	h.pairs += pairs
}

// BeginAdopt pre-sizes the active-source list for a parallel shard merge:
// called on a freshly Reset relation (it panics otherwise — a non-empty
// list means shards were already adopted the serial way), it extends the
// list to total entries of unspecified content. Shards then write their
// source runs into disjoint ranges with AdoptShardAt — concurrently,
// because no two ranges overlap — and the coordinator finishes with
// FinishAdopt. The filled list is the same ascending-shard-order
// concatenation AdoptShard builds, so the merged relation stays
// bit-identical to sequential composition; only the copying parallelizes.
func (h *HybridRelation) BeginAdopt(total int) {
	if len(h.active) != 0 {
		panic(fmt.Sprintf("bitset: BeginAdopt on a relation with %d adopted sources", len(h.active)))
	}
	if cap(h.active) < total {
		h.active = make([]int32, total)
	} else {
		h.active = h.active[:total]
	}
}

// AdoptShardAt copies one shard's produced sources into the pre-sized
// active list at offset — the prefix sum of every earlier shard's source
// count, so shard i's range starts exactly where shard i−1's ends. Calls
// with disjoint [offset, offset+len(sources)) ranges may run concurrently;
// the range must fit the BeginAdopt pre-sizing (it panics otherwise,
// because a short write would leave unspecified garbage in the list).
func (h *HybridRelation) AdoptShardAt(offset int, sources []int32) {
	if offset < 0 || offset+len(sources) > len(h.active) {
		panic(fmt.Sprintf("bitset: AdoptShardAt range [%d,%d) outside pre-sized active list [0,%d)",
			offset, offset+len(sources), len(h.active)))
	}
	copy(h.active[offset:], sources)
}

// FinishAdopt completes a BeginAdopt merge by recording the summed pair
// count of every adopted shard. Call it once, after every AdoptShardAt
// has returned.
func (h *HybridRelation) FinishAdopt(pairs int64) {
	h.pairs += pairs
}

// Compose is the allocating convenience form of ComposeInto, for callers
// outside the pooled census loop.
func (h *HybridRelation) Compose(op CSROperand, density float64) *HybridRelation {
	dst := NewHybrid(h.n, density)
	h.ComposeInto(dst, op, NewComposeScratch(h.n))
	return dst
}
