package bitset

import (
	"math/rand"
	"testing"
)

func TestRelationBasics(t *testing.T) {
	r := NewRelation(10)
	if r.Universe() != 10 {
		t.Fatalf("Universe() = %d", r.Universe())
	}
	if r.Pairs() != 0 || r.Sources() != 0 {
		t.Fatal("new relation should be empty")
	}
	r.Add(1, 2)
	r.Add(1, 3)
	r.Add(4, 2)
	if !r.Contains(1, 2) || !r.Contains(4, 2) || r.Contains(2, 1) {
		t.Fatal("Contains wrong")
	}
	if r.Pairs() != 3 {
		t.Fatalf("Pairs() = %d, want 3", r.Pairs())
	}
	if r.Sources() != 2 {
		t.Fatalf("Sources() = %d, want 2", r.Sources())
	}
	if r.Row(0) != nil {
		t.Fatal("Row(0) should be nil")
	}
	if r.Row(1).Count() != 2 {
		t.Fatal("Row(1) should have 2 targets")
	}
}

func TestRelationAddDuplicate(t *testing.T) {
	r := NewRelation(5)
	r.Add(0, 1)
	r.Add(0, 1)
	if r.Pairs() != 1 {
		t.Fatalf("Pairs() = %d after duplicate add, want 1", r.Pairs())
	}
}

func TestRelationForEachRow(t *testing.T) {
	r := NewRelation(6)
	r.Add(5, 0)
	r.Add(2, 3)
	var order []int
	r.ForEachRow(func(s int, targets *Set) bool {
		order = append(order, s)
		return true
	})
	if len(order) != 2 || order[0] != 2 || order[1] != 5 {
		t.Fatalf("ForEachRow order = %v", order)
	}
	n := 0
	r.ForEachRow(func(int, *Set) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d rows", n)
	}
}

// naiveCompose is the reference implementation against which Compose is
// property-tested.
func naiveCompose(r *Relation, succ []*Set) map[[2]int]bool {
	out := map[[2]int]bool{}
	for s := 0; s < r.Universe(); s++ {
		row := r.Row(s)
		if row == nil {
			continue
		}
		row.ForEach(func(t int) bool {
			if succ[t] != nil {
				succ[t].ForEach(func(u int) bool {
					out[[2]int{s, u}] = true
					return true
				})
			}
			return true
		})
	}
	return out
}

func TestComposeSimple(t *testing.T) {
	// r = {(0,1)}, succ(1) = {2,3} → {(0,2),(0,3)}
	r := NewRelation(4)
	r.Add(0, 1)
	succ := make([]*Set, 4)
	succ[1] = New(4)
	succ[1].Add(2)
	succ[1].Add(3)
	got := r.Compose(succ)
	if got.Pairs() != 2 || !got.Contains(0, 2) || !got.Contains(0, 3) {
		t.Fatalf("Compose wrong: pairs=%d", got.Pairs())
	}
}

func TestComposeDeduplicates(t *testing.T) {
	// Two intermediate vertices leading to the same target must count once.
	r := NewRelation(4)
	r.Add(0, 1)
	r.Add(0, 2)
	succ := make([]*Set, 4)
	succ[1] = New(4)
	succ[1].Add(3)
	succ[2] = New(4)
	succ[2].Add(3)
	got := r.Compose(succ)
	if got.Pairs() != 1 {
		t.Fatalf("Pairs() = %d, want 1 (dedup)", got.Pairs())
	}
}

func TestComposeEmpty(t *testing.T) {
	r := NewRelation(4)
	succ := make([]*Set, 4)
	if got := r.Compose(succ); got.Pairs() != 0 {
		t.Fatal("composition of empty relation should be empty")
	}
	r.Add(0, 1) // succ all nil
	if got := r.Compose(succ); got.Pairs() != 0 {
		t.Fatal("composition with empty successors should be empty")
	}
}

func TestComposeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch should panic")
		}
	}()
	NewRelation(4).Compose(make([]*Set, 3))
}

func TestComposeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		r := NewRelation(n)
		for i := 0; i < n; i++ {
			r.Add(rng.Intn(n), rng.Intn(n))
		}
		succ := make([]*Set, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				continue // leave nil
			}
			succ[i] = New(n)
			for j := 0; j < rng.Intn(4); j++ {
				succ[i].Add(rng.Intn(n))
			}
		}
		got := r.Compose(succ)
		want := naiveCompose(r, succ)
		if got.Pairs() != int64(len(want)) {
			t.Fatalf("trial %d: Pairs() = %d, want %d", trial, got.Pairs(), len(want))
		}
		for p := range want {
			if !got.Contains(p[0], p[1]) {
				t.Fatalf("trial %d: missing pair %v", trial, p)
			}
		}
	}
}

func TestRelationReverse(t *testing.T) {
	r := NewRelation(5)
	r.Add(0, 3)
	r.Add(2, 2)
	r.Add(4, 0)
	rev := r.Reverse()
	if rev.Pairs() != 3 || !rev.Contains(3, 0) || !rev.Contains(2, 2) || !rev.Contains(0, 4) {
		t.Fatal("Reverse wrong")
	}
	// Double reversal is the identity.
	if !rev.Reverse().Equal(r) {
		t.Fatal("Reverse is not an involution")
	}
	if NewRelation(3).Reverse().Pairs() != 0 {
		t.Fatal("empty relation should reverse to empty")
	}
}

func TestRelationEqual(t *testing.T) {
	a, b := NewRelation(5), NewRelation(5)
	if !a.Equal(b) {
		t.Fatal("empty relations should be equal")
	}
	a.Add(1, 2)
	if a.Equal(b) {
		t.Fatal("different relations reported equal")
	}
	b.Add(1, 2)
	if !a.Equal(b) {
		t.Fatal("same relations reported unequal")
	}
	// A row that exists but is empty equals a nil row.
	a.Add(3, 4)
	a.Row(3).Remove(4)
	if !a.Equal(b) {
		t.Fatal("empty row should equal nil row")
	}
	if a.Equal(NewRelation(6)) {
		t.Fatal("different universes reported equal")
	}
}

func TestComposeAssociativity(t *testing.T) {
	// (r ∘ f) ∘ g == r ∘ (f;g) on random data, where f;g is composed
	// per-vertex. This is the algebraic core the path engine relies on.
	rng := rand.New(rand.NewSource(99))
	n := 30
	r := NewRelation(n)
	for i := 0; i < 60; i++ {
		r.Add(rng.Intn(n), rng.Intn(n))
	}
	mkSucc := func() []*Set {
		succ := make([]*Set, n)
		for i := 0; i < n; i++ {
			succ[i] = New(n)
			for j := 0; j < 3; j++ {
				succ[i].Add(rng.Intn(n))
			}
		}
		return succ
	}
	f, g := mkSucc(), mkSucc()

	lhs := r.Compose(f).Compose(g)

	// fg[v] = ∪_{t∈f[v]} g[t]
	fg := make([]*Set, n)
	for v := 0; v < n; v++ {
		fg[v] = New(n)
		f[v].ForEach(func(t int) bool {
			fg[v].UnionWith(g[t])
			return true
		})
	}
	rhs := r.Compose(fg)
	if !lhs.Equal(rhs) {
		t.Fatal("composition is not associative")
	}
}
