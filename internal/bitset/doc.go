// Package bitset is the relation-representation layer of the
// reproduction (graph → bitset → paths → exec → pathsel): vertex sets and
// binary vertex relations, represented so that relational composition —
// the innermost operation of both the selectivity census and query
// execution — runs as tight array kernels.
//
// Two representations coexist:
//
//   - Set and Relation are the dense, fixed-capacity reference forms:
//     every row is a bit array, composition is word-parallel unions, and
//     distinct-pair counting is popcounts. They are the simple baseline
//     that the equivalence tests pin the production engine against, and
//     the form retired executors (exec.ExecuteDense, paths.EvaluateDense)
//     still allocate.
//
//   - HybridRelation is the production form: each source row adaptively
//     switches between a sorted sparse id list and a dense bit array at a
//     density threshold, rows and destination relations are pooled
//     (ComposeInto, ReverseInto reuse capacity), and the compose kernels
//     are specialized per representation — sparse rows scatter through a
//     label's CSR adjacency (CSROperand), dense rows union precomputed
//     successor bit sets word-parallel. Executor operations (Reverse,
//     UnionWith, Equal) live in hybridops.go.
//
// Knobs: the density threshold, set per relation at construction
// (NewHybrid, HybridFromCSR) as a fraction of the vertex universe |V|.
// A row promotes to dense when its population exceeds threshold × |V|.
// ≤ 0 selects DefaultDensityThreshold = 1/32 — the memory crossover,
// since a sorted int32 id costs 32 bits against 1 bit per universe slot —
// and ≥ 1 pins every row sparse. The threshold changes performance only,
// never results.
package bitset
