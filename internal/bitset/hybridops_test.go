package bitset

import (
	"math/rand"
	"testing"
)

// randomHybridAndDense builds the same random relation in both
// representations. density varies so rows land on both sides of the
// promotion threshold.
func randomHybridAndDense(rng *rand.Rand, n int, pairs int, density float64) (*HybridRelation, *Relation) {
	h := NewHybrid(n, density)
	r := NewRelation(n)
	type pair struct{ s, t int }
	seen := map[pair]bool{}
	var ps []pair
	for i := 0; i < pairs; i++ {
		p := pair{rng.Intn(n), rng.Intn(n)}
		if seen[p] {
			continue
		}
		seen[p] = true
		ps = append(ps, p)
		r.Add(p.s, p.t)
	}
	// Feed the hybrid via a one-off CSR operand so row forms are chosen by
	// the same code paths production uses.
	offsets := make([]int32, n+1)
	for _, p := range ps {
		offsets[p.s+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]int32, len(ps))
	fill := make([]int32, n)
	for _, p := range ps {
		targets[offsets[p.s]+fill[p.s]] = int32(p.t)
		fill[p.s]++
	}
	for v := 0; v < n; v++ {
		row := targets[offsets[v]:offsets[v+1]]
		for i := 1; i < len(row); i++ {
			for j := i; j > 0 && row[j] < row[j-1]; j-- {
				row[j], row[j-1] = row[j-1], row[j]
			}
		}
	}
	op := CSROperand{N: n, Offsets: offsets, Targets: targets}
	got := HybridFromCSR(op, density)
	h = got
	return h, r
}

func TestHybridReverseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(150)
		pairs := rng.Intn(4 * n)
		density := []float64{0, 1e-9, 0.1, 1.0}[trial%4]
		h, r := randomHybridAndDense(rng, n, pairs, density)
		rev := h.Reverse()
		if !rev.EqualRelation(r.Reverse()) {
			t.Fatalf("trial %d (n=%d density=%v): hybrid reverse differs from dense", trial, n, density)
		}
		// Round trip returns the original.
		if !rev.Reverse().EqualRelation(r) {
			t.Fatalf("trial %d: double reverse is not the identity", trial)
		}
	}
}

func TestHybridReverseIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 80
	dst := NewHybrid(n, 0)
	for trial := 0; trial < 10; trial++ {
		h, r := randomHybridAndDense(rng, n, rng.Intn(300), 0)
		h.ReverseInto(dst) // same dst every time: rows must fully reset
		if !dst.EqualRelation(r.Reverse()) {
			t.Fatalf("trial %d: pooled ReverseInto differs from dense reverse", trial)
		}
	}
}

func TestHybridReversePanics(t *testing.T) {
	h := NewHybrid(4, 0)
	for name, fn := range map[string]func(){
		"aliased dst":       func() { h.ReverseInto(h) },
		"universe mismatch": func() { h.ReverseInto(NewHybrid(5, 0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHybridUnionWithMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(150)
		// Mixed thresholds force every union case: sparse∪sparse (with and
		// without promotion), sparse∪dense, dense∪sparse, dense∪dense.
		da := []float64{0, 1e-9, 0.05, 1.0}[trial%4]
		db := []float64{0.05, 1.0, 0, 1e-9}[trial%4]
		a, ra := randomHybridAndDense(rng, n, rng.Intn(3*n), da)
		b, rb := randomHybridAndDense(rng, n, rng.Intn(3*n), db)
		a.UnionWith(b)
		want := NewRelation(n)
		for _, r := range []*Relation{ra, rb} {
			r.ForEachRow(func(s int, targets *Set) bool {
				targets.ForEach(func(t int) bool {
					want.Add(s, t)
					return true
				})
				return true
			})
		}
		if !a.EqualRelation(want) {
			t.Fatalf("trial %d (n=%d): hybrid union differs from dense union", trial, n)
		}
		// b must be untouched.
		if !b.EqualRelation(rb) {
			t.Fatalf("trial %d: UnionWith mutated its argument", trial)
		}
		// Active list must stay ascending: ForEachPair asserts order below.
		last := -1
		ordered := true
		a.ForEachPair(func(s, tgt int) bool {
			key := s*n + tgt
			if key <= last {
				ordered = false
			}
			last = key
			return ordered
		})
		if !ordered {
			t.Fatalf("trial %d: ForEachPair out of order after union", trial)
		}
	}
}

func TestHybridUnionWithSelfAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, r := randomHybridAndDense(rng, 50, 120, 0)
	before := h.Pairs()
	h.UnionWith(h) // no-op by definition
	if h.Pairs() != before || !h.EqualRelation(r) {
		t.Fatal("self-union changed the relation")
	}
	h.UnionWith(NewHybrid(50, 0)) // empty argument is a no-op
	if !h.EqualRelation(r) {
		t.Fatal("union with empty changed the relation")
	}
	empty := NewHybrid(50, 0)
	empty.UnionWith(h)
	if !empty.EqualRelation(r) {
		t.Fatal("union into empty should copy")
	}
}

func TestHybridUnionWithPanicsOnUniverseMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("universe mismatch should panic")
		}
	}()
	NewHybrid(4, 0).UnionWith(NewHybrid(5, 0))
}
