package bitset

import (
	"fmt"
	"unsafe"
)

// This file holds the memory-accounting and replication operations added
// for the workload-level relation cache (internal/relcache): MemSize is
// the cache's byte-accounting primitive, Clone builds the immutable
// exact-size copy the cache stores, and CopyInto adopts a cached relation
// back into a pooled buffer without disturbing the pool discipline.

// SparseLimit returns the maximum sparse row population implied by a
// density threshold over an n-vertex universe — the exported form of the
// rule NewHybrid applies (≤ 0 selects DefaultDensityThreshold, ≥ 1 keeps
// every row sparse). Two relations over the same universe with equal
// SparseLimit values materialize every pair set with identical row
// representations, which is the compatibility test the relation cache
// applies before adopting a cached entry.
func SparseLimit(n int, density float64) int {
	return sparseLimit(n, density)
}

// SparseMax returns the relation's sparse→dense promotion limit: rows
// with more targets than this are dense. Together with Universe it
// identifies the representation regime, so a caller can check that two
// relations are structurally interchangeable.
func (h *HybridRelation) SparseMax() int { return h.sparseMax }

// MemSize returns the exact heap footprint of the relation in bytes: the
// struct header, the row-header array (one hrow per universe vertex), the
// active-source index, and every row's sparse id list and dense word
// array at their allocated capacities. Demoted rows that retain a dirty
// dense word array are charged for it — the memory is still held. This is
// the byte cost the relation cache accounts entries by, and it answers
// the census memory question directly: a relation's footprint is dominated
// by n row headers plus the pair payload in whichever form each row holds.
func (h *HybridRelation) MemSize() int {
	size := int(unsafe.Sizeof(*h))
	size += cap(h.active) * 4
	size += len(h.rows) * int(unsafe.Sizeof(hrow{}))
	for i := range h.rows {
		row := &h.rows[i]
		size += cap(row.ids)*4 + cap(row.words)*8
	}
	return size
}

// CloneMemSize returns the exact MemSize a Clone of the relation would
// occupy, without building one: every slice counted at content length
// (sparse ids or dense words per each row's current form), so a cache
// can price an entry — and reject an oversized one — before paying for
// the copy.
func (h *HybridRelation) CloneMemSize() int {
	size := int(unsafe.Sizeof(*h)) + len(h.active)*4 + len(h.rows)*int(unsafe.Sizeof(hrow{}))
	for _, s := range h.active {
		row := &h.rows[s]
		if row.dense {
			size += len(row.words) * 8
		} else {
			size += len(row.ids) * 4
		}
	}
	return size
}

// CopyInto makes dst an exact logical replica of h: same universe, same
// promotion limit, same rows in the same representations, same active
// list and pair count. dst is reset first and its row storage is reused
// in place, so adopting a cached relation into a pooled execution buffer
// allocates only where the buffer lacks capacity. dst must be a distinct
// relation over the same universe; its own density threshold is
// overwritten by h's, keeping the replica bit-identical to h no matter
// how dst was constructed.
func (h *HybridRelation) CopyInto(dst *HybridRelation) {
	if dst == h {
		panic("bitset: CopyInto aliasing dst == receiver")
	}
	if dst.n != h.n {
		panic(fmt.Sprintf("bitset: CopyInto universe %d != %d", dst.n, h.n))
	}
	dst.Reset()
	dst.sparseMax = h.sparseMax
	dst.active = append(dst.active[:0], h.active...)
	dst.pairs = h.pairs
	for _, s := range h.active {
		src := &h.rows[s]
		row := &dst.rows[s]
		row.count = src.count
		if src.dense {
			row.dense = true
			if row.words == nil {
				row.words = make([]uint64, len(src.words))
			}
			copy(row.words, src.words)
		} else {
			row.ids = append(row.ids[:0], src.ids...)
		}
	}
}

// Clone returns a private exact-size copy of the relation: every slice is
// allocated at its content length, so the clone's MemSize is the tightest
// footprint the pair set admits (dirty dense words of demoted rows are
// dropped, spare capacity is trimmed). The clone shares no storage with
// the receiver — this is the copy the relation cache stores, immutable by
// convention while the originating pooled buffers are reused.
func (h *HybridRelation) Clone() *HybridRelation {
	c := &HybridRelation{n: h.n, sparseMax: h.sparseMax, rows: make([]hrow, h.n), pairs: h.pairs}
	if len(h.active) > 0 {
		c.active = make([]int32, len(h.active))
		copy(c.active, h.active)
	}
	for _, s := range h.active {
		src := &h.rows[s]
		row := &c.rows[s]
		row.count = src.count
		if src.dense {
			row.dense = true
			row.words = make([]uint64, len(src.words))
			copy(row.words, src.words)
		} else {
			row.ids = make([]int32, len(src.ids))
			copy(row.ids, src.ids)
		}
	}
	return c
}
