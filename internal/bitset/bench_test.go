package bitset

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkSetAdd(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < b.N; i++ {
		s.Add(i & (1<<16 - 1))
	}
}

func BenchmarkSetContains(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<14; i++ {
		s.Add(i * 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Contains(i & (1<<16 - 1))
	}
}

func BenchmarkSetUnionWith(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x, y := New(n), New(n)
			for i := 0; i < n/8; i++ {
				x.Add(rng.Intn(n))
				y.Add(rng.Intn(n))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.UnionWith(y)
			}
		})
	}
}

func BenchmarkSetCount(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := New(1 << 16)
	for i := 0; i < 1<<13; i++ {
		s.Add(rng.Intn(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Count()
	}
}

func BenchmarkRelationCompose(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			r := NewRelation(n)
			for i := 0; i < n*4; i++ {
				r.Add(rng.Intn(n), rng.Intn(n))
			}
			succ := make([]*Set, n)
			for v := 0; v < n; v++ {
				succ[v] = New(n)
				for j := 0; j < 4; j++ {
					succ[v].Add(rng.Intn(n))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := r.Compose(succ)
				if out.Pairs() == 0 {
					b.Fatal("empty composition")
				}
			}
		})
	}
}

func BenchmarkRelationPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	r := NewRelation(2048)
	for i := 0; i < 8192; i++ {
		r.Add(rng.Intn(2048), rng.Intn(2048))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Pairs()
	}
}
