package exec

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/paths"
)

// ExecuteDense is the retired dense-only executor, kept solely as the
// reference implementation: equivalence tests pin ExecutePlan bit-identical
// to it, and the perf bench measures the hybrid engine's speedup against
// it. It supports only the two endpoint plans and allocates a fresh dense
// bitset.Relation per join step. Production callers use Execute or
// ExecutePlan.
func ExecuteDense(g *graph.CSR, p paths.Path, dir Direction) (*bitset.Relation, Stats) {
	if len(p) == 0 {
		panic("exec: empty path query")
	}
	st := Stats{Plan: dir.Plan(len(p))}
	var rel *bitset.Relation
	switch dir {
	case Forward:
		rel = g.EdgeRelation(p[0])
		for _, l := range p[1:] {
			st.Intermediates = append(st.Intermediates, rel.Pairs())
			rel = rel.Compose(g.SuccessorSets(l))
		}
	case Backward:
		// Build the suffix relation reversed (target → source) so each
		// prepend step is a composition with predecessor sets; un-reverse
		// at the end.
		rev := g.EdgeRelation(p[len(p)-1]).Reverse()
		for i := len(p) - 2; i >= 0; i-- {
			st.Intermediates = append(st.Intermediates, rev.Pairs())
			rev = rev.Compose(g.PredecessorSets(p[i]))
		}
		rel = rev.Reverse()
	default:
		panic(fmt.Sprintf("exec: unknown direction %d", int(dir)))
	}
	for _, n := range st.Intermediates {
		st.Work += n
	}
	st.Result = rel.Pairs()
	return rel, st
}
