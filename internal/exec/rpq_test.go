package exec

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/relcache"
)

// randomDag draws a small well-formed RPQ over numLabels labels:
// 1–3 elements mixing plain labels, alternations, optionals, and
// bounded repetitions, re-drawn until MinLen ≥ 1.
func randomDag(rng *rand.Rand, numLabels int) *RPQDag {
	for {
		d := &RPQDag{}
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			var labels []int
			for _, l := range rng.Perm(numLabels)[:1+rng.Intn(2)] {
				labels = append(labels, l)
			}
			sortInts(labels)
			lo := rng.Intn(2)
			hi := max(1, lo+rng.Intn(3-lo))
			d.Elems = append(d.Elems, RPQElem{Labels: labels, MinRep: lo, MaxRep: hi})
		}
		if d.MinLen() >= 1 && d.MaxLen() <= 6 {
			return d
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// expansionUnion is the oracle: the union of every enumerated concrete
// path's relation, each built by the plain checked executor.
func expansionUnion(t *testing.T, g *graph.CSR, d *RPQDag, opt Options) *bitset.HybridRelation {
	t.Helper()
	exps, ok := d.Expansions(100000)
	if !ok {
		t.Fatalf("dag %s: expansion overflow", d.Describe())
	}
	out := bitset.NewHybrid(g.NumVertices(), opt.DensityThreshold)
	for _, p := range exps {
		rel, _, err := ExecutePlanChecked(g, p, Plan{Start: 0}, Options{DensityThreshold: opt.DensityThreshold})
		if err != nil {
			t.Fatalf("oracle path %v: %v", p, err)
		}
		out.UnionWith(rel)
	}
	return out
}

// TestExecuteDagMatchesExpansionUnion pins the tentpole equivalence:
// the DAG fold is bit-identical to the union of its enumerated
// concrete-path expansions, at workers 1–8, planned and unplanned,
// cached and uncached.
func TestExecuteDagMatchesExpansionUnion(t *testing.T) {
	g := testGraph(t)
	est := EstimatorFunc(func(p paths.Path) float64 { return float64(paths.Selectivity(g, p)) })
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		d := randomDag(rng, g.NumLabels())
		want := expansionUnion(t, g, d, Options{})
		for _, workers := range []int{1, 2, 4, 8} {
			for _, bushy := range []bool{false, true} {
				dp := Planner{Est: est}.PlanDag(d, g.NumVertices(), bushy)
				got, st, err := ExecuteDagChecked(g, d, dp, Options{Workers: workers})
				if err != nil {
					t.Fatalf("dag %s workers=%d bushy=%v: %v", d.Describe(), workers, bushy, err)
				}
				if !got.Equal(want) {
					t.Fatalf("dag %s workers=%d bushy=%v: result differs from expansion union",
						d.Describe(), workers, bushy)
				}
				if st.Result != want.Pairs() {
					t.Fatalf("dag %s: Result %d != %d", d.Describe(), st.Result, want.Pairs())
				}
			}
		}
		// Unplanned (nil DagPlan) and cache-warmed runs must agree too.
		got, _, err := ExecuteDagChecked(g, d, nil, Options{})
		if err != nil {
			t.Fatalf("dag %s unplanned: %v", d.Describe(), err)
		}
		if !got.Equal(want) {
			t.Fatalf("dag %s: unplanned result differs", d.Describe())
		}
		cache := relcache.New(relcache.Options{MaxBytes: 1 << 20})
		for pass := 0; pass < 2; pass++ {
			got, _, err := ExecuteDagChecked(g, d, nil, Options{Cache: cache})
			if err != nil {
				t.Fatalf("dag %s cached pass %d: %v", d.Describe(), pass, err)
			}
			if !got.Equal(want) {
				t.Fatalf("dag %s: cached pass %d differs", d.Describe(), pass)
			}
		}
	}
}

// TestExecuteDagRepetitionSharesCache pins the cache-sharing rule: a
// warm b{1,3} adopts the b^2 and b^3 power relations a previous run (or
// a concrete b/b/b query) published under their repeated-label keys.
func TestExecuteDagRepetitionSharesCache(t *testing.T) {
	g := testGraph(t)
	cache := relcache.New(relcache.Options{MaxBytes: 1 << 20})
	d := &RPQDag{Elems: []RPQElem{{Labels: []int{1}, MinRep: 1, MaxRep: 3}}}
	_, cold, err := ExecuteDagChecked(g, d, nil, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheMisses != 2 || cold.CacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/2 (b², b³ published)", cold.CacheHits, cold.CacheMisses)
	}
	_, warm, err := ExecuteDagChecked(g, d, nil, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 2 || warm.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 2/0", warm.CacheHits, warm.CacheMisses)
	}
	// A concrete b/b query adopts the power the unroll published.
	_, cst, err := ExecutePlanChecked(g, paths.Path{1, 1}, Plan{Start: 0}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cst.CacheHits != 1 {
		t.Fatalf("concrete b/b after b{1,3}: hits=%d, want 1", cst.CacheHits)
	}
}

// TestExecuteDagCancelHygiene pins pool hygiene on aborted DAG runs: a
// pre-cancelled execution returns the typed cause with zero relations
// checked out.
func TestExecuteDagCancelHygiene(t *testing.T) {
	g := testGraph(t)
	pool := NewRelPool(g.NumVertices(), 0)
	d := &RPQDag{Elems: []RPQElem{
		{Labels: []int{0, 1}, MinRep: 1, MaxRep: 3},
		{Labels: []int{2}, MinRep: 0, MaxRep: 2},
	}}
	canc := &Canceller{}
	canc.Cancel(nil)
	if _, _, err := ExecuteDagChecked(g, d, nil, Options{Cancel: canc, Pool: pool}); !errors.Is(err, ErrCancelled) {
		t.Fatalf("pre-cancelled run: err=%v, want ErrCancelled", err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool has %d relations checked out after abort", pool.InUse())
	}
	// Budget abort mid-run must release everything too.
	if _, _, err := ExecuteDagChecked(g, d, nil, Options{MaxResultBytes: 1, Pool: pool, Cancel: &Canceller{}}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("tiny budget: err=%v, want ErrBudgetExceeded", err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool has %d relations checked out after budget abort", pool.InUse())
	}
	rel, _, err := ExecuteDagChecked(g, d, nil, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(rel)
	if pool.InUse() != 0 {
		t.Fatalf("pool has %d relations checked out after success", pool.InUse())
	}
}

// TestDagExpansions pins the enumeration: order-determinism, dedup of
// overlapping repetition windows, and the overflow signal.
func TestDagExpansions(t *testing.T) {
	d := &RPQDag{Elems: []RPQElem{
		{Labels: []int{0}, MinRep: 0, MaxRep: 1},
		{Labels: []int{1, 2}, MinRep: 1, MaxRep: 1},
	}}
	exps, ok := d.Expansions(100)
	if !ok || len(exps) != 4 {
		t.Fatalf("a?/(b|c): got %v ok=%v, want 4 expansions", exps, ok)
	}
	want := []paths.Path{{1}, {2}, {0, 1}, {0, 2}}
	for i := range want {
		if !exps[i].Equal(want[i]) {
			t.Fatalf("expansion %d = %v, want %v", i, exps[i], want[i])
		}
	}
	// a{1,2}/a{1,2} reaches a³ twice; the enumeration dedups it.
	dd := &RPQDag{Elems: []RPQElem{
		{Labels: []int{0}, MinRep: 1, MaxRep: 2},
		{Labels: []int{0}, MinRep: 1, MaxRep: 2},
	}}
	exps, ok = dd.Expansions(100)
	if !ok || len(exps) != 3 {
		t.Fatalf("a{1,2}/a{1,2}: got %d expansions, want 3 (a², a³, a⁴)", len(exps))
	}
	if _, ok := dd.Expansions(2); ok {
		t.Fatal("limit 2 should overflow")
	}
}

// TestPlanDagRunDecomposition pins the block decomposition: maximal
// plain-label runs collapse into one planned block.
func TestPlanDagRunDecomposition(t *testing.T) {
	g := testGraph(t)
	est := EstimatorFunc(func(p paths.Path) float64 { return float64(paths.Selectivity(g, p)) })
	d := &RPQDag{Elems: []RPQElem{
		{Labels: []int{0}, MinRep: 1, MaxRep: 1},
		{Labels: []int{1}, MinRep: 1, MaxRep: 1},
		{Labels: []int{1, 2}, MinRep: 1, MaxRep: 1},
		{Labels: []int{2}, MinRep: 1, MaxRep: 1},
	}}
	dp := Planner{Est: est}.PlanDag(d, g.NumVertices(), true)
	if len(dp.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (run[0,2), (1|2), run[3,4))", len(dp.Blocks))
	}
	if dp.Blocks[0].Run == nil || len(dp.Blocks[0].Run) != 2 {
		t.Fatalf("block 0 = %+v, want a length-2 run", dp.Blocks[0])
	}
	if dp.Blocks[1].Run != nil {
		t.Fatalf("block 1 = %+v, want the alternation element", dp.Blocks[1])
	}
	if dp.Cost <= 0 || dp.ResultEst < 0 {
		t.Fatalf("plan cost %f / est %f not positive", dp.Cost, dp.ResultEst)
	}
}
