package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/paths"
)

// allTrees enumerates every plan tree over segment [lo, hi): all zig-zag
// leaves and all bushy splits, recursively — the full plan space the
// equivalence property quantifies over.
func allTrees(lo, hi int) []*PlanTree {
	var out []*PlanTree
	for s := lo; s < hi; s++ {
		out = append(out, &PlanTree{Lo: lo, Hi: hi, Start: s})
	}
	for m := lo + 1; m < hi; m++ {
		for _, l := range allTrees(lo, m) {
			for _, r := range allTrees(m, hi) {
				out = append(out, &PlanTree{Lo: lo, Hi: hi, Start: -1, Left: l, Right: r})
			}
		}
	}
	return out
}

// randomTree draws one plan tree over [lo, hi) — shared by the fuzz
// harness, which cannot afford the full enumeration per input.
func randomTree(rng *rand.Rand, lo, hi int) *PlanTree {
	if hi-lo == 1 || rng.Intn(2) == 0 {
		return &PlanTree{Lo: lo, Hi: hi, Start: lo + rng.Intn(hi-lo)}
	}
	m := lo + 1 + rng.Intn(hi-lo-1)
	return &PlanTree{Lo: lo, Hi: hi, Start: -1,
		Left: randomTree(rng, lo, m), Right: randomTree(rng, m, hi)}
}

// TestExecuteTreePropertyAllShapes is the bushy executor's bit-identity
// property test: on random graphs, every plan tree of every shape — all
// leaves, all splits, all nested splits — must produce exactly the pairs
// of the retired dense executor, at several density thresholds.
func TestExecuteTreePropertyAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		vertices := 2 + rng.Intn(100)
		labels := 1 + rng.Intn(4)
		edges := 1 + rng.Intn(6*vertices)
		g := randomGraph(int64(200+trial), vertices, labels, edges)
		k := 2 + rng.Intn(3) // 2..4: 3 to 31 tree shapes
		p := make(paths.Path, k)
		for i := range p {
			p[i] = rng.Intn(labels)
		}
		dref, dst := ExecuteDense(g, p, Forward)
		density := []float64{0, 1e-9, 1.0}[trial%3]
		for ti, tree := range allTrees(0, k) {
			rel, st := ExecuteTree(g, p, tree, Options{DensityThreshold: density, Workers: 1})
			ctx := fmt.Sprintf("trial %d path %v tree %d %s", trial, p, ti, tree.Describe(k))
			if !rel.EqualRelation(dref) {
				t.Fatalf("%s: pairs differ from dense reference", ctx)
			}
			if st.Result != dst.Result {
				t.Fatalf("%s: result %d != dense %d", ctx, st.Result, dst.Result)
			}
			if st.Tree != tree {
				t.Fatalf("%s: stats lost the executed tree", ctx)
			}
		}
	}
}

// TestExecuteTreeParallelMatchesSequential pins the parallel bushy
// executor bit-identical to its sequential mode at workers 1–8: same
// relation, same intermediates, same work. Run under -race (as CI does)
// it also proves the concurrent segment builds and the sharded final join
// are data-race-free.
func TestExecuteTreeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		vertices := 60 + rng.Intn(200)
		labels := 1 + rng.Intn(3)
		edges := vertices + rng.Intn(8*vertices)
		g := randomGraph(int64(300+trial), vertices, labels, edges)
		k := 2 + rng.Intn(3)
		p := make(paths.Path, k)
		for i := range p {
			p[i] = rng.Intn(labels)
		}
		for ti, tree := range allTrees(0, k) {
			if tree.IsLeaf() {
				continue // covered by the zig-zag parallel suite
			}
			seqRel, seqSt := ExecuteTree(g, p, tree, Options{Workers: 1})
			for workers := 2; workers <= 8; workers *= 2 {
				ctx := fmt.Sprintf("trial %d tree %d %s workers %d", trial, ti, tree.Describe(k), workers)
				rel, st := ExecuteTree(g, p, tree, Options{Workers: workers})
				if !rel.Equal(seqRel) {
					t.Fatalf("%s: parallel relation differs from sequential", ctx)
				}
				assertStatsEqual(t, ctx, st, seqSt)
			}
		}
	}
}

// TestCostTreeMatchesExecutedWork pins the planner's cost model to the
// executor's accounting: with an exact estimator, CostTree must equal the
// Stats.Work of executing the chosen tree.
func TestCostTreeMatchesExecutedWork(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		vertices := 10 + rng.Intn(120)
		labels := 1 + rng.Intn(4)
		edges := 1 + rng.Intn(7*vertices)
		g := randomGraph(int64(400+trial), vertices, labels, edges)
		pl := Planner{Est: EstimatorFunc(func(p paths.Path) float64 {
			return float64(paths.Selectivity(g, p))
		})}
		for k := 1; k <= 4; k++ {
			p := make(paths.Path, k)
			for i := range p {
				p[i] = rng.Intn(labels)
			}
			tree := pl.ChooseTree(p)
			cost := pl.CostTree(p)
			_, st := ExecuteTree(g, p, tree, Options{})
			if float64(st.Work) != cost {
				t.Fatalf("trial %d path %v tree %s: CostTree %v != executed work %d",
					trial, p, tree.Describe(k), cost, st.Work)
			}
			// The tree plan can never be estimated worse than the best
			// zig-zag plan — the leaf space is contained in the tree space.
			if lin := pl.PlanCost(p, pl.ChoosePlan(p).Start); cost > lin {
				t.Fatalf("trial %d path %v: tree cost %v exceeds linear cost %v", trial, p, cost, lin)
			}
		}
	}
}

// TestChooseTreeFallsBack pins the linear fallback: with a uniform
// estimator a bushy join (which pays for both materialized inputs) can
// never beat linear growth (whose right-hand operand is free), so the
// chosen tree must be a single leaf — and by the tie-break rule, the
// forward plan.
func TestChooseTreeFallsBack(t *testing.T) {
	pl := Planner{Est: EstimatorFunc(func(p paths.Path) float64 { return 7 })}
	for k := 1; k <= 6; k++ {
		p := make(paths.Path, k)
		tree := pl.ChooseTree(p)
		if !tree.IsLeaf() || tree.Start != 0 {
			t.Fatalf("k=%d: expected forward leaf, got %s", k, tree.Describe(k))
		}
		if got, want := pl.CostTree(p), pl.PlanCost(p, 0); got != want {
			t.Fatalf("k=%d: CostTree %v != forward cost %v", k, got, want)
		}
	}
}

// TestChooseTreePrefersBushy hands the planner a cost landscape where
// every length-3 segment is catastrophically large but both halves of the
// query are tiny: the only cheap plan joins the two halves, which no
// zig-zag plan can express.
func TestChooseTreePrefersBushy(t *testing.T) {
	est := EstimatorFunc(func(p paths.Path) float64 {
		switch len(p) {
		case 1:
			return 10
		case 2:
			return 1
		default:
			return 100
		}
	})
	pl := Planner{Est: est}
	p := paths.Path{0, 1, 2, 3}
	tree := pl.ChooseTree(p)
	if tree.IsLeaf() || tree.Left.Hi != 2 || !tree.Left.IsLeaf() || !tree.Right.IsLeaf() {
		t.Fatalf("expected ([0,2) ⋈ [2,4)) split, got %s", tree.Describe(len(p)))
	}
	// dp[0][2] = dp[2][4] = 10 (one single-label intermediate each), plus
	// both join inputs at 1 each: 22. Best zig-zag: 10 + 1 + 100 = 111.
	if got := pl.CostTree(p); got != 22 {
		t.Fatalf("CostTree = %v, want 22", got)
	}
	if got := pl.PlanCost(p, pl.ChoosePlan(p).Start); got != 111 {
		t.Fatalf("best linear cost = %v, want 111", got)
	}
}

// TestExecuteTreeValidation pins the malformed-tree panics.
func TestExecuteTreeValidation(t *testing.T) {
	g := randomGraph(5, 20, 2, 40)
	p := paths.Path{0, 1, 0}
	expectPanic := func(name string, tree *PlanTree) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		ExecuteTree(g, p, tree, Options{})
	}
	expectPanic("wrong span", &PlanTree{Lo: 0, Hi: 2, Start: 0})
	expectPanic("start out of range", &PlanTree{Lo: 0, Hi: 3, Start: 3})
	expectPanic("one child", &PlanTree{Lo: 0, Hi: 3, Start: -1,
		Left: &PlanTree{Lo: 0, Hi: 2, Start: 0}})
	expectPanic("child span gap", &PlanTree{Lo: 0, Hi: 3, Start: -1,
		Left:  &PlanTree{Lo: 0, Hi: 1, Start: 0},
		Right: &PlanTree{Lo: 2, Hi: 3, Start: 2}})
}

// FuzzExecTreeEquivalence fuzzes the graph shape, path, tree shape,
// density, and worker count, asserting bushy ≡ sequential bushy ≡ dense
// on every input.
func FuzzExecTreeEquivalence(f *testing.F) {
	f.Add(int64(1), 40, 2, 160, uint16(0x3121), int64(5), float64(0), uint8(4))
	f.Add(int64(2), 90, 3, 500, uint16(0x0042), int64(9), float64(1), uint8(7))
	f.Add(int64(3), 12, 1, 30, uint16(0x2000), int64(2), float64(1e-9), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, vertices, labels, edges int, pathBits uint16, treeSeed int64, density float64, workers uint8) {
		if vertices < 1 || vertices > 200 || labels < 1 || labels > 4 ||
			edges < 0 || edges > 1500 || density < 0 || density > 1 {
			t.Skip()
		}
		g := randomGraph(seed, vertices, labels, edges)
		k := 1 + int(pathBits>>12)%4
		p := make(paths.Path, k)
		for i := range p {
			p[i] = int(pathBits>>(4*i)) % labels
		}
		tree := randomTree(rand.New(rand.NewSource(treeSeed)), 0, k)
		w := int(workers%8) + 1
		dref, _ := ExecuteDense(g, p, Forward)
		seqRel, seqSt := ExecuteTree(g, p, tree, Options{DensityThreshold: density, Workers: 1})
		rel, st := ExecuteTree(g, p, tree, Options{DensityThreshold: density, Workers: w})
		if !seqRel.EqualRelation(dref) {
			t.Fatalf("path %v tree %s: bushy differs from dense", p, tree.Describe(k))
		}
		if !rel.Equal(seqRel) {
			t.Fatalf("path %v tree %s workers %d: parallel diverged", p, tree.Describe(k), w)
		}
		if st.Result != seqSt.Result || st.Work != seqSt.Work {
			t.Fatalf("path %v tree %s workers %d: stats diverged", p, tree.Describe(k), w)
		}
	})
}
