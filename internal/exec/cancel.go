package exec

import (
	"context"
	"errors"
	"sync"

	"repro/internal/bitset"
	"repro/internal/sched"
)

// This file holds the execution layer's cancellation substrate: the typed
// abort errors, the Canceller that carries an abort cause down to the
// bitset kernels' cooperative flag, the context bridge that turns a
// context deadline into a Canceller, and the relation pool that abort
// paths release their buffers into so a killed query leaks nothing.

// Typed abort causes. Every error returned by ExecutePlanChecked /
// ExecuteTreeChecked matches exactly one of these under errors.Is (a
// contained worker panic additionally matches as *sched.PanicError via
// errors.As, and unwraps to sched.ErrStopped).
var (
	// ErrCancelled is the cause of an execution aborted by an explicit
	// Canceller.Cancel or a cancelled (non-deadline) context.
	ErrCancelled = errors.New("exec: execution cancelled")
	// ErrDeadlineExceeded is the cause of an execution aborted because
	// its context's deadline passed mid-flight.
	ErrDeadlineExceeded = errors.New("exec: execution deadline exceeded")
	// ErrBudgetExceeded is the cause of an execution aborted because a
	// materialized relation outgrew Options.MaxResultBytes.
	ErrBudgetExceeded = errors.New("exec: result size budget exceeded")
)

// Canceller is the execution-layer cancellation handle: an abort cause
// plus the cooperative flag (bitset.CancelFlag) the compose and join
// kernels poll mid-row-loop, so one Cancel call bounds the abort latency
// of every worker of every step sharing the canceller. The zero
// Canceller is ready to use; the nil *Canceller is a valid
// never-cancelled handle, which is how unwired call sites stay
// zero-cost.
type Canceller struct {
	flag  bitset.CancelFlag
	mu    sync.Mutex
	cause error
}

// Cancel aborts the executions sharing the canceller with the given
// cause (nil selects ErrCancelled). The first cause wins; later calls
// only re-raise the flag. Safe from any goroutine.
func (c *Canceller) Cancel(cause error) {
	if cause == nil {
		cause = ErrCancelled
	}
	c.mu.Lock()
	if c.cause == nil {
		c.cause = cause
	}
	c.mu.Unlock()
	// Raise the flag only after the cause is stored: an executor that
	// observes the flag always finds a non-nil cause behind it.
	c.flag.Set()
}

// Err returns the abort cause, or nil while the canceller is unset. Safe
// on a nil receiver (always nil) and from any goroutine; the uncancelled
// fast path is one atomic load.
func (c *Canceller) Err() error {
	if c == nil || !c.flag.Stopped() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// Flag returns the kernel-level cooperative flag (nil for a nil
// canceller) for wiring into compose scratches.
func (c *Canceller) Flag() *bitset.CancelFlag {
	if c == nil {
		return nil
	}
	return &c.flag
}

// NewCancellerContext bridges a context into a Canceller: a goroutine
// watches ctx.Done and cancels with ErrDeadlineExceeded or ErrCancelled
// to match ctx.Err. The returned release func stops the watcher and must
// be called (typically deferred) when the execution returns; it is
// idempotent. A nil or never-done context needs no watcher — release is
// then a no-op.
func NewCancellerContext(ctx context.Context) (*Canceller, func()) {
	c := &Canceller{}
	if ctx == nil || ctx.Done() == nil {
		return c, func() {}
	}
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				c.Cancel(ErrDeadlineExceeded)
			} else {
				c.Cancel(ErrCancelled)
			}
		case <-stop:
		}
	}()
	return c, func() { once.Do(func() { close(stop) }) }
}

// RelPool is a shared free list of hybrid relations over one
// representation regime (universe size and density threshold fixed at
// construction). Executions draw every relation they materialize from
// the pool and release them on completion and on every abort path, so a
// cancelled or panicked query returns the pool to its baseline
// occupancy — the leak-hygiene property the abort tests pin via InUse.
// All methods are safe for concurrent use; the underlying free list is a
// sched.Pool behind the pool's own mutex.
type RelPool struct {
	mu    sync.Mutex
	free  sched.Pool[*bitset.HybridRelation]
	inUse int
}

// NewRelPool returns a pool of relations over an n-vertex universe at
// the given density threshold.
func NewRelPool(n int, density float64) *RelPool {
	p := &RelPool{}
	p.free.New = func() *bitset.HybridRelation { return bitset.NewHybrid(n, density) }
	return p
}

// Get returns an empty relation, reusing a released one when available.
func (p *RelPool) Get() *bitset.HybridRelation {
	p.mu.Lock()
	p.inUse++
	rel := p.free.Get()
	p.mu.Unlock()
	rel.Reset()
	return rel
}

// Put releases a relation back to the pool. A nil relation is ignored,
// so abort paths release unconditionally.
func (p *RelPool) Put(rel *bitset.HybridRelation) {
	if rel == nil {
		return
	}
	p.mu.Lock()
	p.inUse--
	p.free.Put(rel)
	p.mu.Unlock()
}

// InUse returns the number of relations currently checked out — zero
// when every execution has completed or aborted cleanly.
func (p *RelPool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// getRel draws a relation from the pool, or allocates one when the
// execution runs unpooled.
func getRel(pool *RelPool, n int, density float64) *bitset.HybridRelation {
	if pool == nil {
		return bitset.NewHybrid(n, density)
	}
	return pool.Get()
}

// putRel releases a relation when the execution is pooled; unpooled
// relations are left to the garbage collector.
func putRel(pool *RelPool, rel *bitset.HybridRelation) {
	if pool != nil {
		pool.Put(rel)
	}
}

// checkBudget enforces Options.MaxResultBytes against one materialized
// relation, pricing it at clone size (content bytes, the same measure
// the relation cache accounts by). Over budget it cancels the
// execution's canceller — so sibling subtree builds abort too — and
// returns ErrBudgetExceeded.
func (opt *Options) checkBudget(rel *bitset.HybridRelation) error {
	if opt.MaxResultBytes <= 0 || int64(rel.CloneMemSize()) <= opt.MaxResultBytes {
		return nil
	}
	opt.Cancel.CancelIfSet(ErrBudgetExceeded)
	return ErrBudgetExceeded
}

// CancelIfSet is Cancel tolerating a nil receiver, for internal abort
// paths that run with or without a caller-provided canceller.
func (c *Canceller) CancelIfSet(cause error) {
	if c != nil {
		c.Cancel(cause)
	}
}
