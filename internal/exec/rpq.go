package exec

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/paths"
)

// This file is the execution layer's regular-path-query (RPQ) surface:
// a compiled expression DAG over the existing segment primitives, the
// planner extension that costs and decomposes it, and the checked
// executor that folds it left-to-right on the hybrid substrate.
//
// The algebra is small and exact. An RPQ is a '/'-separated sequence of
// elements; each element is a label set (alternation — a single label is
// the singleton set) under a bounded repetition [MinRep, MaxRep]
// (optional is [0,1], a plain label [1,1]). The relation of an element
// is U = ⋃_{r=max(1,MinRep)..MaxRep} A^r with A the union of the label
// relations; the relation of the whole query is the fold
//
//	R_i = R_{i-1}∘U_i ∪ (eps_{i-1} ? U_i : ∅) ∪ (skip_i ? R_{i-1} : ∅)
//	eps_i = eps_{i-1} ∧ skip_i            (skip_i ⇔ MinRep_i = 0)
//
// with R_0 = ∅, eps_0 = true. Because composition distributes over
// union — R∘(S∪T) = R∘S ∪ R∘T — this fold is exactly the union of the
// relations of every concrete path the expression expands to, which is
// what the equivalence tests pin (bit-identical, since UnionWith is
// representation-canonical). A whole-query MinLen of 0 (every element
// optional) would make the identity relation a member of the union;
// compilers must reject it, and validate panics on it.

// MaxRepetition bounds an element's repetition upper bound. Unrolled
// powers are materialized relations, so an unbounded (or absurd) MaxRep
// is a resource bug, not a feature; 64 is far beyond any census-bounded
// path length while still catching `a{1,1000000}` at parse time.
const MaxRepetition = 64

// RPQElem is one '/'-separated element of a compiled RPQ: an
// alternation over Labels (sorted ascending, deduplicated) repeated
// between MinRep and MaxRep times. A plain label is {l} with bounds
// [1,1]; `x?` is bounds [0,1]; `x{2,3}` is bounds [2,3]; `*` is the
// whole vocabulary with bounds [1,1].
type RPQElem struct {
	// Labels is the alternation's label set, sorted ascending and
	// deduplicated (so equal elements compare equal and estimates are
	// order-independent).
	Labels []int
	// MinRep and MaxRep bound the repetition count, 0 ≤ MinRep ≤ MaxRep,
	// 1 ≤ MaxRep ≤ MaxRepetition. MinRep 0 makes the element skippable.
	MinRep, MaxRep int
}

// simple reports whether the element is a plain single label — the case
// the zig-zag/bushy machinery already handles natively.
func (e RPQElem) simple() bool {
	return len(e.Labels) == 1 && e.MinRep == 1 && e.MaxRep == 1
}

// skippable reports whether the element may match the empty path.
func (e RPQElem) skippable() bool { return e.MinRep == 0 }

// describe renders the element with numeric label ids (the graph-free
// form; callers with a vocabulary render their own).
func (e RPQElem) describe() string {
	var b strings.Builder
	if len(e.Labels) == 1 {
		fmt.Fprintf(&b, "%d", e.Labels[0])
	} else {
		b.WriteByte('(')
		for i, l := range e.Labels {
			if i > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%d", l)
		}
		b.WriteByte(')')
	}
	switch {
	case e.MinRep == 1 && e.MaxRep == 1:
	case e.MinRep == 0 && e.MaxRep == 1:
		b.WriteByte('?')
	case e.MinRep == e.MaxRep:
		fmt.Fprintf(&b, "{%d}", e.MinRep)
	default:
		fmt.Fprintf(&b, "{%d,%d}", e.MinRep, e.MaxRep)
	}
	return b.String()
}

// RPQDag is a compiled regular path query: the element sequence of the
// expression DAG. It is immutable after construction and safe to share
// across goroutines; compile it once (pathsel.Compile) and execute it
// many times.
type RPQDag struct {
	// Elems are the '/'-separated elements in query order.
	Elems []RPQElem
}

// Validate panics unless the DAG is well-formed over a numLabels-label
// vocabulary: at least one element, every element with a sorted
// deduplicated non-empty in-range label set and sane repetition bounds,
// and a whole-query MinLen ≥ 1 (an all-optional query would match the
// empty path, whose relation is the identity — compilers reject it
// before a DAG exists). Malformed DAGs are caller bugs, not runtime
// failures, matching the executor's precondition contract.
func (d *RPQDag) Validate(numLabels int) {
	if d == nil || len(d.Elems) == 0 {
		panic("exec: empty RPQ dag")
	}
	for i, e := range d.Elems {
		if len(e.Labels) == 0 {
			panic(fmt.Sprintf("exec: RPQ element %d has no labels", i))
		}
		for j, l := range e.Labels {
			if l < 0 || l >= numLabels {
				panic(fmt.Sprintf("exec: RPQ element %d label %d out of range [0,%d)", i, l, numLabels))
			}
			if j > 0 && e.Labels[j-1] >= l {
				panic(fmt.Sprintf("exec: RPQ element %d labels not sorted/deduplicated", i))
			}
		}
		if e.MinRep < 0 || e.MaxRep < 1 || e.MinRep > e.MaxRep || e.MaxRep > MaxRepetition {
			panic(fmt.Sprintf("exec: RPQ element %d repetition bounds {%d,%d} invalid", i, e.MinRep, e.MaxRep))
		}
	}
	if d.MinLen() == 0 {
		panic("exec: RPQ dag may match the empty path")
	}
}

// MinLen is the shortest concrete path length the expression matches.
func (d *RPQDag) MinLen() int {
	n := 0
	for _, e := range d.Elems {
		n += e.MinRep
	}
	return n
}

// MaxLen is the longest concrete path length the expression matches.
func (d *RPQDag) MaxLen() int {
	n := 0
	for _, e := range d.Elems {
		n += e.MaxRep
	}
	return n
}

// ConcretePath returns the query's single concrete path when every
// element is a plain label — the case that bypasses the DAG machinery
// entirely and runs on the existing path executors.
func (d *RPQDag) ConcretePath() (paths.Path, bool) {
	p := make(paths.Path, 0, len(d.Elems))
	for _, e := range d.Elems {
		if !e.simple() {
			return nil, false
		}
		p = append(p, e.Labels[0])
	}
	return p, true
}

// Describe renders the DAG with numeric label ids.
func (d *RPQDag) Describe() string {
	parts := make([]string, len(d.Elems))
	for i, e := range d.Elems {
		parts[i] = e.describe()
	}
	return strings.Join(parts, "/")
}

// Expansions enumerates the concrete label paths the expression matches,
// deduplicated (overlapping repetition windows like `a{1,2}/a{1,2}`
// reach the same path twice) in deterministic first-reached order:
// repetition counts ascending per element, labels in stored (sorted)
// order, earlier elements varying slowest. It returns ok=false without
// a partial result when the expansion exceeds limit — the cross-product
// blowup the DAG execution path exists to avoid.
func (d *RPQDag) Expansions(limit int) (exps []paths.Path, ok bool) {
	seen := make(map[string]bool)
	prefix := make(paths.Path, 0, d.MaxLen())
	var elem func(i int) bool
	elem = func(i int) bool {
		if i == len(d.Elems) {
			k := prefix.Key()
			if seen[k] {
				return true
			}
			if len(exps) >= limit {
				return false
			}
			seen[k] = true
			exps = append(exps, prefix.Clone())
			return true
		}
		e := d.Elems[i]
		var rep func(r int) bool
		rep = func(r int) bool {
			if r == 0 {
				return elem(i + 1)
			}
			for _, l := range e.Labels {
				prefix = append(prefix, l)
				if !rep(r - 1) {
					return false
				}
				prefix = prefix[:len(prefix)-1]
			}
			return true
		}
		for r := e.MinRep; r <= e.MaxRep; r++ {
			if !rep(r) {
				return false
			}
		}
		return true
	}
	if !elem(0) {
		return nil, false
	}
	return exps, true
}

// DagBlockPlan is one block of a planned DAG: either a maximal run of
// plain-label elements (Run non-empty), executed as an ordinary path
// segment under Tree — a leaf is a zig-zag plan, a join node a bushy
// tree, exactly the existing plan space — or one complex element (Elem),
// whose relation is built by alternation-union and repetition-unroll.
type DagBlockPlan struct {
	// Lo, Hi delimit the element range [Lo, Hi) of the DAG this block
	// covers; complex-element blocks always span exactly one element.
	Lo, Hi int
	// Run is the run block's concrete label path (nil for element
	// blocks); Tree is its plan, spanning [0, len(Run)).
	Run  paths.Path
	Tree *PlanTree
	// Elem is the element of a complex-element block.
	Elem RPQElem
	// Est is the estimated pair count of the block's finished relation.
	Est float64
}

// DagPlan is the planned form of an RPQDag: its block decomposition plus
// the plan-wide cost estimate. Build it with Planner.PlanDag; pass nil
// to ExecuteDagChecked to plan with a zero estimator (every leaf runs
// forward).
type DagPlan struct {
	Blocks []DagBlockPlan
	// Cost is the estimated total intermediate volume: run-block plan
	// costs (the zig-zag/bushy DP objective), the unrolled power
	// intermediates of element blocks, and both inputs of every
	// block-boundary join.
	Cost float64
	// ResultEst is the estimated pair count of the final relation under
	// the independence model (exact per-block estimates folded with an
	// n-normalized join).
	ResultEst float64
}

// Describe renders the plan: run blocks by their tree plan, element
// blocks by their element, joined by the fold operator.
func (dp *DagPlan) Describe() string {
	parts := make([]string, len(dp.Blocks))
	for i, b := range dp.Blocks {
		if b.Run != nil {
			parts[i] = b.Tree.Describe(len(b.Run))
		} else {
			parts[i] = b.Elem.describe()
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, " ⋈ ") + ")"
}

// validateFor panics unless the plan decomposes exactly the given DAG —
// a mismatched plan (planned from a different expression) is a caller
// bug that would silently execute the wrong query.
func (dp *DagPlan) validateFor(d *RPQDag) {
	at := 0
	for i, b := range dp.Blocks {
		if b.Lo != at || b.Hi <= b.Lo || b.Hi > len(d.Elems) {
			panic(fmt.Sprintf("exec: dag plan block %d spans [%d,%d) at element %d", i, b.Lo, b.Hi, at))
		}
		if b.Run != nil {
			if len(b.Run) != b.Hi-b.Lo {
				panic(fmt.Sprintf("exec: dag plan block %d run length %d over %d elements", i, len(b.Run), b.Hi-b.Lo))
			}
			for j, l := range b.Run {
				e := d.Elems[b.Lo+j]
				if !e.simple() || e.Labels[0] != l {
					panic(fmt.Sprintf("exec: dag plan block %d run mismatches element %d", i, b.Lo+j))
				}
			}
			b.Tree.validate(0, len(b.Run))
		} else {
			if b.Hi != b.Lo+1 {
				panic(fmt.Sprintf("exec: dag plan element block %d spans %d elements", i, b.Hi-b.Lo))
			}
		}
		at = b.Hi
	}
	if at != len(d.Elems) {
		panic(fmt.Sprintf("exec: dag plan covers %d of %d elements", at, len(d.Elems)))
	}
}

// elemEst estimates the pair count of one complex element's relation
// U = ⋃_{r=lo..MaxRep} A^r. Single-label powers are estimated exactly by
// the estimator (the power of label l is the repeated-label path l^r —
// the same key its relations are cached under); multi-label powers use
// the independence model s·(s/n)^(r-1) over the alternation estimate
// s = Σ_l Est({l}). Union sizes are summed (an upper bound; overlap is
// workload-dependent and a bound is what admission wants).
func (pl Planner) elemEst(e RPQElem, n int) (est float64, buildCost float64) {
	single := len(e.Labels) == 1
	var s1 float64
	power := make(paths.Path, 0, e.MaxRep)
	for _, l := range e.Labels {
		s1 += pl.Est.Estimate(paths.Path{l})
	}
	lo := max(1, e.MinRep)
	pow := s1
	for r := 1; r <= e.MaxRep; r++ {
		if r > 1 {
			if single {
				power = power[:0]
				for i := 0; i < r; i++ {
					power = append(power, e.Labels[0])
				}
				pow = pl.Est.Estimate(power)
			} else if n > 0 {
				pow *= s1 / float64(n)
			}
		}
		if r >= lo {
			est += pow
		}
		if r < e.MaxRep {
			buildCost += pow // unrolled power intermediate entering the next step
		}
	}
	return est, buildCost
}

// PlanDag extends the planner DP over a compiled RPQ: the element
// sequence is decomposed into maximal plain-label runs — each planned
// with the existing zig-zag/bushy machinery (ChooseTreeWithCost when
// bushy, the cheapest zig-zag otherwise), so cached segments, interior
// starts, and bushy joins all apply inside a run — and single complex
// elements, costed by their unroll intermediates. Block relations are
// folded left-to-right; the fold's size recurrence mirrors the
// executor's union algebra under the independence model, and every
// block-boundary join charges both materialized inputs, matching the
// bushy DP's cost model. n is the vertex universe (join normalization);
// the DAG must be valid.
func (pl Planner) PlanDag(d *RPQDag, n int, bushy bool) *DagPlan {
	dp := &DagPlan{}
	for i := 0; i < len(d.Elems); {
		if d.Elems[i].simple() {
			j := i
			run := paths.Path{}
			for j < len(d.Elems) && d.Elems[j].simple() {
				run = append(run, d.Elems[j].Labels[0])
				j++
			}
			var tree *PlanTree
			var cost float64
			if bushy {
				tree, cost = pl.ChooseTreeWithCost(run)
			} else {
				plan := pl.ChoosePlan(run)
				tree = &PlanTree{Lo: 0, Hi: len(run), Start: plan.Start}
				cost = pl.PlanCost(run, plan.Start)
			}
			dp.Blocks = append(dp.Blocks, DagBlockPlan{
				Lo: i, Hi: j, Run: run, Tree: tree, Est: pl.Est.Estimate(run),
			})
			dp.Cost += cost
			i = j
			continue
		}
		e := d.Elems[i]
		est, buildCost := pl.elemEst(e, n)
		dp.Blocks = append(dp.Blocks, DagBlockPlan{Lo: i, Hi: i + 1, Elem: e, Est: est})
		dp.Cost += buildCost
		i++
	}
	// Fold the block sizes: size_i = size·est/n (join) + est when the
	// prefix may be empty + size when the block is skippable — the
	// estimator's image of the executor's R_i recurrence. Joins after the
	// first block consume both materialized inputs.
	size, eps := 0.0, true
	for i, b := range dp.Blocks {
		skip := b.Run == nil && b.Elem.skippable()
		if i == 0 {
			size, eps = b.Est, skip
			continue
		}
		dp.Cost += size + b.Est
		next := 0.0
		if n > 0 {
			next = size * b.Est / float64(n)
		}
		if eps {
			next += b.Est
		}
		if skip {
			next += size
		}
		size, eps = next, eps && skip
	}
	dp.ResultEst = size
	return dp
}

// dagExec carries one ExecuteDagChecked call's state: the execution
// view of the cache, the shared stepper, the stats accumulator, and the
// set of live pooled relations, released wholesale on every abort path
// (including contained panics) so a killed RPQ leaks nothing.
type dagExec struct {
	g    *graph.CSR
	opt  Options
	sc   *segCache
	stp  *stepper
	st   *Stats
	live []*bitset.HybridRelation
}

// take checks a fresh relation out of the pool and tracks it live.
func (dx *dagExec) take() *bitset.HybridRelation {
	rel := getRel(dx.opt.Pool, dx.g.NumVertices(), dx.opt.DensityThreshold)
	dx.live = append(dx.live, rel)
	return rel
}

// adopt tracks a relation produced by a nested executor (already checked
// out of the same pool) live.
func (dx *dagExec) adopt(rel *bitset.HybridRelation) {
	dx.live = append(dx.live, rel)
}

// drop releases one live relation back to the pool.
func (dx *dagExec) drop(rel *bitset.HybridRelation) {
	if rel == nil {
		return
	}
	for i, r := range dx.live {
		if r == rel {
			dx.live[i] = dx.live[len(dx.live)-1]
			dx.live = dx.live[:len(dx.live)-1]
			break
		}
	}
	putRel(dx.opt.Pool, rel)
}

// releaseAll releases every live relation — the abort path.
func (dx *dagExec) releaseAll() {
	for _, r := range dx.live {
		putRel(dx.opt.Pool, r)
	}
	dx.live = dx.live[:0]
}

// buildBlock materializes one block's relation. Run blocks delegate to
// the existing checked executors (whole-segment cache fast path, bushy
// subtrees, sharded compose — everything applies). Element blocks build
// the alternation base A as a union of label relations, then unroll
// powers A^r up to MaxRep, accumulating U = ⋃_{r≥max(1,MinRep)} A^r.
// Single-label powers step through the segment cache under their
// repeated-label path key — the same key a concrete query's segments
// use, so a warm `b{1,3}` adopts the cached `bb` and `bbb` relations and
// a warm `b/b` adopts a power this block published.
func (dx *dagExec) buildBlock(b DagBlockPlan) (*bitset.HybridRelation, error) {
	if b.Run != nil {
		var (
			rel *bitset.HybridRelation
			st  Stats
			err error
		)
		if b.Tree.IsLeaf() {
			rel, st, err = ExecutePlanChecked(dx.g, b.Run, Plan{Start: b.Tree.Start}, dx.opt)
		} else {
			rel, st, err = ExecuteTreeChecked(dx.g, b.Run, b.Tree, dx.opt)
		}
		dx.st.Intermediates = append(dx.st.Intermediates, st.Intermediates...)
		dx.st.CacheHits += st.CacheHits
		dx.st.CacheMisses += st.CacheMisses
		dx.st.Sched.merge(st.Sched)
		if err != nil {
			return nil, err
		}
		dx.adopt(rel)
		return rel, nil
	}
	e := b.Elem
	// Alternation base A = ⋃ label relations. Single-label relations are
	// CSR copies (never cached, matching the segment cache's length ≥ 2
	// rule).
	a := dx.take()
	a.FillFromCSR(dx.g.LabelOperand(e.Labels[0]))
	if len(e.Labels) > 1 {
		tmp := dx.take()
		for _, l := range e.Labels[1:] {
			tmp.FillFromCSR(dx.g.LabelOperand(l))
			a.UnionWith(tmp)
		}
		dx.drop(tmp)
	}
	if err := dx.opt.checkBudget(a); err != nil {
		return nil, err
	}
	if e.MaxRep == 1 {
		return a, nil
	}
	lo := max(1, e.MinRep)
	u := dx.take()
	if lo == 1 {
		u.UnionWith(a)
	}
	single := len(e.Labels) == 1
	power := make(paths.Path, 0, e.MaxRep)
	if single {
		power = append(power, e.Labels[0])
	}
	pow := a
	for r := 2; r <= e.MaxRep; r++ {
		faultinject.Fire("exec.step")
		if err := dx.opt.Cancel.Err(); err != nil {
			return nil, err
		}
		next := dx.take()
		if single {
			// The power of label l is the concrete segment l^r: step it
			// through the cache under that path key, shared with ordinary
			// queries over repeated labels — the repetition-unroll
			// cache-sharing rule.
			power = append(power, e.Labels[0])
			dx.st.Intermediates = append(dx.st.Intermediates, pow.Pairs())
			if !dx.sc.adopt(power, false, next) {
				if err := dx.stp.compose(pow, next, dx.g.LabelOperand(e.Labels[0])); err != nil {
					return nil, err
				}
				if err := dx.opt.Cancel.Err(); err != nil {
					return nil, err // partial step output: discard, never cache
				}
				dx.sc.put(power, false, next)
			}
		} else {
			dx.st.Intermediates = append(dx.st.Intermediates, pow.Pairs(), a.Pairs())
			if err := dx.stp.join(pow, next, a); err != nil {
				return nil, err
			}
			if err := dx.opt.Cancel.Err(); err != nil {
				return nil, err
			}
		}
		if pow != a {
			dx.drop(pow)
		}
		pow = next
		if err := dx.opt.checkBudget(pow); err != nil {
			return nil, err
		}
		if r >= lo {
			u.UnionWith(pow)
		}
	}
	if pow != a {
		dx.drop(pow)
	}
	dx.drop(a)
	if err := dx.opt.checkBudget(u); err != nil {
		return nil, err
	}
	return u, nil
}

// run executes the planned fold and returns the final relation.
func (dx *dagExec) run(dp *DagPlan) (*bitset.HybridRelation, error) {
	var cur *bitset.HybridRelation
	eps := true
	for i, b := range dp.Blocks {
		faultinject.Fire("exec.step")
		if err := dx.opt.Cancel.Err(); err != nil {
			return nil, err
		}
		u, err := dx.buildBlock(b)
		if err != nil {
			return nil, err
		}
		skip := b.Run == nil && b.Elem.skippable()
		if i == 0 {
			// R_1 = U_1 (eps_0 is true and R_0 empty).
			cur, eps = u, skip
			continue
		}
		dx.st.Intermediates = append(dx.st.Intermediates, cur.Pairs(), u.Pairs())
		dst := dx.take()
		if err := dx.stp.join(cur, dst, u); err != nil {
			return nil, err
		}
		if err := dx.opt.Cancel.Err(); err != nil {
			return nil, err // partial join output: discard
		}
		if eps {
			dst.UnionWith(u)
		}
		if skip {
			dst.UnionWith(cur)
		}
		dx.drop(cur)
		dx.drop(u)
		cur = dst
		eps = eps && skip
		if err := dx.opt.checkBudget(cur); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// ExecuteDagChecked evaluates a compiled RPQ over g under the checked
// contract of ExecutePlanChecked: cancellation and deadline checks at
// every block and power boundary (plus the kernels' cooperative flag
// mid-step), budget enforcement on every materialized relation,
// contained panics as typed errors, and every pooled relation released
// on abort. dp must have been planned for d (Planner.PlanDag); nil
// plans with a zero estimator. The result is the union of the relations
// of every concrete path d expands to — bit-identical to enumerating
// the expansions through ExecutePlanChecked and folding UnionWith, at
// every worker count. It panics on a malformed DAG or a plan/DAG
// mismatch (caller bugs).
func ExecuteDagChecked(g *graph.CSR, d *RPQDag, dp *DagPlan, opt Options) (rel *bitset.HybridRelation, st Stats, err error) {
	d.Validate(g.NumLabels())
	if dp == nil {
		dp = Planner{Est: EstimatorFunc(func(paths.Path) float64 { return 0 })}.
			PlanDag(d, g.NumVertices(), false)
	}
	dp.validateFor(d)
	st = Stats{Plan: Plan{Start: -1}}
	if err := opt.Cancel.Err(); err != nil {
		return nil, st, err
	}
	n := g.NumVertices()
	dx := &dagExec{g: g, opt: opt, sc: newSegCache(opt.Cache, n, opt.DensityThreshold), st: &st}
	dx.stp = newStepper(n, opt.Workers)
	dx.stp.setCancel(opt.Cancel.Flag())
	// Preconditions are validated; from here every panic is contained as
	// a typed error with the in-flight relations released.
	err = containPanics(func() (e error) {
		rel, e = dx.run(dp)
		return e
	})
	st.Sched.add(dx.stp.counters())
	hits, misses := dx.sc.counters()
	st.CacheHits += hits
	st.CacheMisses += misses
	if err != nil {
		dx.releaseAll()
		return nil, st, err
	}
	st.Result = rel.Pairs()
	for _, v := range st.Intermediates {
		st.Work += v
	}
	return rel, st, nil
}
