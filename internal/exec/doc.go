// Package exec evaluates path queries with explicit join plans — the
// query-engine layer of the reproduction (graph → bitset → paths → exec →
// pathsel): a graph database's optimizer uses cardinality estimates to
// choose among execution plans, and estimate quality shows up as plan
// quality.
//
// A length-k path query has k zig-zag plans, one per start position: begin
// with the single-label relation at the start, extend rightward to the end
// of the path, then prepend the remaining labels leftward. Start 0 is the
// classic forward (left-to-right) join, start k−1 the backward
// (right-to-left) join, and interior starts let the join begin at the most
// selective label. All plans produce the same answer; their costs differ
// by the sizes of the intermediate results, which are exactly the
// selectivities of the plan's intermediate segments. A Planner costs every
// plan from a selectivity estimator and picks the cheapest; ExecutePlan
// carries the plan out and reports the actual intermediate sizes, so
// planning quality is measurable end to end.
//
// Beyond the linear space, a PlanTree is a bushy plan: leaves build query
// segments with zig-zag plans, and join nodes build their two child
// segments independently — concurrently when the worker budget allows —
// then join the finished relations with the sharded relation×relation
// kernel (bitset.JoinInto / JoinShardInto). Planner.ChooseTree searches
// the tree space with a dynamic program over segment splits (bounded by
// MaxTreeLength) and falls back to the best zig-zag plan whenever linear
// growth is estimated cheaper; ExecuteTree carries a tree out,
// bit-identical to ExecutePlan and ExecuteDense.
//
// Execution runs on the hybrid sparse/dense relation substrate
// (bitset.HybridRelation): two pooled relations double-buffer through the
// specialized sparse×CSR / dense×CSR compose kernels, rightward steps use
// successor operands, leftward steps use predecessor operands on the
// reversed relation, and every row adapts its representation per step.
// Each compose step is parallelized over the shared work-stealing
// scheduler (internal/sched): the input relation's source rows are
// partitioned into shards, composed concurrently into a shared
// destination (rows are disjoint across shards), and merged
// deterministically in shard order, so parallel output is bit-identical
// to sequential execution. The retired dense-only executor survives as
// ExecuteDense, the reference that equivalence tests
// (equivalence_test.go, parallel_test.go) pin the hybrid engine against.
//
// Knobs: Options.DensityThreshold (fraction of |V| in (0,1]; ≤ 0 selects
// the default 1/32, ≥ 1 keeps every row sparse) tunes the hybrid rows'
// sparse→dense promotion point; Options.Workers (≤ 0 selects GOMAXPROCS,
// 1 runs sequential) sets the join-step parallelism. Both are purely
// performance knobs — results are bit-identical at any setting.
package exec
