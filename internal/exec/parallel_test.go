package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/paths"
	"repro/internal/sched"
)

// assertStatsEqual pins two executions' observable statistics identical.
func assertStatsEqual(t *testing.T, ctx string, got, want Stats) {
	t.Helper()
	if got.Result != want.Result || got.Work != want.Work {
		t.Fatalf("%s: result/work %d/%d != sequential %d/%d",
			ctx, got.Result, got.Work, want.Result, want.Work)
	}
	if len(got.Intermediates) != len(want.Intermediates) {
		t.Fatalf("%s: %d intermediates, sequential has %d",
			ctx, len(got.Intermediates), len(want.Intermediates))
	}
	for i := range want.Intermediates {
		if got.Intermediates[i] != want.Intermediates[i] {
			t.Fatalf("%s: intermediate[%d] = %d, sequential %d",
				ctx, i, got.Intermediates[i], want.Intermediates[i])
		}
	}
}

// TestExecuteParallelMatchesSequential is the parallel executor's
// bit-identity property test: on random graphs across sizes, path
// lengths, density thresholds, every zig-zag start, and worker counts
// 1–16, ExecutePlan must produce exactly the relation and statistics of
// its sequential (Workers: 1) mode. Run under -race (as CI does) it also
// proves the sharded compose steps are data-race-free.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		vertices := 40 + rng.Intn(200)
		labels := 1 + rng.Intn(4)
		edges := vertices + rng.Intn(8*vertices)
		g := randomGraph(int64(100+trial), vertices, labels, edges)
		n := 2 + rng.Intn(3)
		p := make(paths.Path, n)
		for i := range p {
			p[i] = rng.Intn(labels)
		}
		for _, density := range []float64{0, 1.0} {
			for s := 0; s < len(p); s++ {
				seqRel, seqSt := ExecutePlan(g, p, Plan{Start: s},
					Options{DensityThreshold: density, Workers: 1})
				for workers := 2; workers <= 16; workers += 2 {
					ctx := fmt.Sprintf("trial %d density %v start %d workers %d",
						trial, density, s, workers)
					rel, st := ExecutePlan(g, p, Plan{Start: s},
						Options{DensityThreshold: density, Workers: workers})
					if !rel.Equal(seqRel) {
						t.Fatalf("%s: parallel relation differs from sequential", ctx)
					}
					assertStatsEqual(t, ctx, st, seqSt)
				}
			}
		}
	}
}

// TestExecuteParallelLargeFanout forces the sharded path hard: a dense
// random graph whose intermediate relations activate most sources, so
// every join step actually partitions, at a worker count above GOMAXPROCS.
func TestExecuteParallelLargeFanout(t *testing.T) {
	g := randomGraph(7, 400, 2, 6000)
	p := paths.Path{0, 1, 0, 1}
	for s := range p {
		seqRel, seqSt := ExecutePlan(g, p, Plan{Start: s}, Options{Workers: 1})
		rel, st := ExecutePlan(g, p, Plan{Start: s}, Options{Workers: 16})
		if !rel.Equal(seqRel) {
			t.Fatalf("start %d: 16-worker relation differs from sequential", s)
		}
		assertStatsEqual(t, fmt.Sprintf("start %d", s), st, seqSt)
	}
}

// TestParallelMergePathMatchesSequential drives the two-round parallel
// merge (BeginAdopt/AdoptShardAt) on ordinary test graphs by lowering
// the merge and granularity floors — package vars exactly so this test
// can exist — and asserts bit-identity to sequential execution at
// workers 1–16. With MinItems 1 the shard bounds routinely produce
// one-row and empty shards, covering the degenerate partitions.
func TestParallelMergePathMatchesSequential(t *testing.T) {
	defer func(g sched.Granularity, m int) { shardGrain, minMergeSources = g, m }(shardGrain, minMergeSources)
	shardGrain = sched.Granularity{MinItems: 1, MinWork: 0, PerWorker: 4}
	minMergeSources = 1
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		vertices := 10 + rng.Intn(200)
		labels := 1 + rng.Intn(3)
		edges := vertices + rng.Intn(6*vertices)
		g := randomGraph(int64(500+trial), vertices, labels, edges)
		p := make(paths.Path, 2+rng.Intn(3))
		for i := range p {
			p[i] = rng.Intn(labels)
		}
		seqRel, seqSt := ExecutePlan(g, p, Plan{Start: 0}, Options{Workers: 1})
		for workers := 1; workers <= 16; workers++ {
			rel, st := ExecutePlan(g, p, Plan{Start: 0}, Options{Workers: workers})
			ctx := fmt.Sprintf("trial %d workers %d", trial, workers)
			if !rel.Equal(seqRel) {
				t.Fatalf("%s: merged relation differs from sequential", ctx)
			}
			assertStatsEqual(t, ctx, st, seqSt)
		}
	}
}

// TestGranularityFloorSkipsScheduler pins the adaptive sequential floor
// observably: a small query at a high worker count must run every step
// sequentially — zero scheduler tasks, steals, and parks in Stats.Sched —
// because its relations sit under the row and pair floors, while the
// same query with the floors lowered does shard.
func TestGranularityFloorSkipsScheduler(t *testing.T) {
	g := randomGraph(41, 80, 2, 400) // far below 2×minShardPairs pairs per step
	p := paths.Path{0, 1, 0}
	_, st := ExecutePlan(g, p, Plan{Start: 0}, Options{Workers: 8})
	if st.Sched.Tasks != 0 || st.Sched.Steals != 0 {
		t.Fatalf("small query sharded anyway: %+v", st.Sched)
	}
	defer func(gr sched.Granularity) { shardGrain = gr }(shardGrain)
	shardGrain = sched.Granularity{MinItems: 1, MinWork: 0, PerWorker: 4}
	_, st = ExecutePlan(g, p, Plan{Start: 0}, Options{Workers: 8})
	if st.Sched.Tasks == 0 {
		t.Fatal("lowered floors did not shard — the floor test is vacuous")
	}
	if len(st.Sched.TasksPerWorker) == 0 {
		t.Fatal("per-worker task breakdown missing")
	}
}

// TestExecuteParallelLargeMerge exercises the real (un-lowered) parallel
// merge threshold end to end: a graph large enough that compose tails
// exceed minMergeSources, executed at several worker counts against the
// sequential reference. This is the only test that reaches the merge
// round with production constants.
func TestExecuteParallelLargeMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph merge test")
	}
	g := randomGraph(43, 3*minMergeSources, 2, 15*minMergeSources)
	p := paths.Path{0, 1, 0}
	seqRel, seqSt := ExecutePlan(g, p, Plan{Start: 0}, Options{Workers: 1})
	if seqRel.Sources() < minMergeSources {
		t.Fatalf("graph too small to reach the merge round: %d sources", seqRel.Sources())
	}
	for _, workers := range []int{2, 4, 16} {
		rel, st := ExecutePlan(g, p, Plan{Start: 0}, Options{Workers: workers})
		ctx := fmt.Sprintf("workers %d", workers)
		if !rel.Equal(seqRel) {
			t.Fatalf("%s: merged relation differs from sequential", ctx)
		}
		assertStatsEqual(t, ctx, st, seqSt)
		if st.Sched.Tasks == 0 {
			t.Fatalf("%s: no scheduler tasks on a graph this size", ctx)
		}
	}
}

// TestExecuteDefaultsParallel pins the Workers ≤ 0 → GOMAXPROCS default:
// the convenience entry points run the parallel engine and still match
// the dense reference (the existing equivalence suite covers this too;
// this test exists so the default's semantics are named somewhere).
func TestExecuteDefaultsParallel(t *testing.T) {
	g := randomGraph(9, 150, 3, 2000)
	p := paths.Path{0, 1, 2}
	dref, _ := ExecuteDense(g, p, Forward)
	rel, _ := Execute(g, p, Forward)
	if !rel.EqualRelation(dref) {
		t.Fatal("default-options Execute differs from dense reference")
	}
}

// FuzzExecParallelEquivalence fuzzes graph shape, path, plan start,
// density, and worker count, asserting parallel ≡ sequential ≡ dense on
// every input.
func FuzzExecParallelEquivalence(f *testing.F) {
	f.Add(int64(1), 60, 2, 300, uint16(0x1234), 0, float64(0), uint8(4))
	f.Add(int64(2), 120, 3, 900, uint16(0x0042), 1, float64(1), uint8(8))
	f.Add(int64(3), 40, 1, 80, uint16(0x0000), 0, float64(1e-9), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, vertices, labels, edges int, pathBits uint16, start int, density float64, workers uint8) {
		if vertices < 1 || vertices > 250 || labels < 1 || labels > 4 ||
			edges < 0 || edges > 2000 || density < 0 || density > 1 {
			t.Skip()
		}
		g := randomGraph(seed, vertices, labels, edges)
		k := 1 + int(pathBits>>12)%4
		p := make(paths.Path, k)
		for i := range p {
			p[i] = int(pathBits>>(4*i)) % labels
		}
		if start < 0 || start >= k {
			t.Skip()
		}
		w := int(workers%16) + 1
		dref, _ := ExecuteDense(g, p, Forward)
		seqRel, seqSt := ExecutePlan(g, p, Plan{Start: start},
			Options{DensityThreshold: density, Workers: 1})
		rel, st := ExecutePlan(g, p, Plan{Start: start},
			Options{DensityThreshold: density, Workers: w})
		if !rel.Equal(seqRel) || !rel.EqualRelation(dref) {
			t.Fatalf("path %v start %d workers %d: parallel diverged", p, start, w)
		}
		if st.Result != seqSt.Result || st.Work != seqSt.Work {
			t.Fatalf("path %v start %d workers %d: stats diverged", p, start, w)
		}
	})
}
