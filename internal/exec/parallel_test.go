package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/paths"
)

// assertStatsEqual pins two executions' observable statistics identical.
func assertStatsEqual(t *testing.T, ctx string, got, want Stats) {
	t.Helper()
	if got.Result != want.Result || got.Work != want.Work {
		t.Fatalf("%s: result/work %d/%d != sequential %d/%d",
			ctx, got.Result, got.Work, want.Result, want.Work)
	}
	if len(got.Intermediates) != len(want.Intermediates) {
		t.Fatalf("%s: %d intermediates, sequential has %d",
			ctx, len(got.Intermediates), len(want.Intermediates))
	}
	for i := range want.Intermediates {
		if got.Intermediates[i] != want.Intermediates[i] {
			t.Fatalf("%s: intermediate[%d] = %d, sequential %d",
				ctx, i, got.Intermediates[i], want.Intermediates[i])
		}
	}
}

// TestExecuteParallelMatchesSequential is the parallel executor's
// bit-identity property test: on random graphs across sizes, path
// lengths, density thresholds, every zig-zag start, and worker counts
// 1–8, ExecutePlan must produce exactly the relation and statistics of
// its sequential (Workers: 1) mode. Run under -race (as CI does) it also
// proves the sharded compose steps are data-race-free.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		vertices := 40 + rng.Intn(200)
		labels := 1 + rng.Intn(4)
		edges := vertices + rng.Intn(8*vertices)
		g := randomGraph(int64(100+trial), vertices, labels, edges)
		n := 2 + rng.Intn(3)
		p := make(paths.Path, n)
		for i := range p {
			p[i] = rng.Intn(labels)
		}
		for _, density := range []float64{0, 1.0} {
			for s := 0; s < len(p); s++ {
				seqRel, seqSt := ExecutePlan(g, p, Plan{Start: s},
					Options{DensityThreshold: density, Workers: 1})
				for workers := 2; workers <= 8; workers++ {
					ctx := fmt.Sprintf("trial %d density %v start %d workers %d",
						trial, density, s, workers)
					rel, st := ExecutePlan(g, p, Plan{Start: s},
						Options{DensityThreshold: density, Workers: workers})
					if !rel.Equal(seqRel) {
						t.Fatalf("%s: parallel relation differs from sequential", ctx)
					}
					assertStatsEqual(t, ctx, st, seqSt)
				}
			}
		}
	}
}

// TestExecuteParallelLargeFanout forces the sharded path hard: a dense
// random graph whose intermediate relations activate most sources, so
// every join step actually partitions, at a worker count above GOMAXPROCS.
func TestExecuteParallelLargeFanout(t *testing.T) {
	g := randomGraph(7, 400, 2, 6000)
	p := paths.Path{0, 1, 0, 1}
	for s := range p {
		seqRel, seqSt := ExecutePlan(g, p, Plan{Start: s}, Options{Workers: 1})
		rel, st := ExecutePlan(g, p, Plan{Start: s}, Options{Workers: 16})
		if !rel.Equal(seqRel) {
			t.Fatalf("start %d: 16-worker relation differs from sequential", s)
		}
		assertStatsEqual(t, fmt.Sprintf("start %d", s), st, seqSt)
	}
}

// TestExecuteDefaultsParallel pins the Workers ≤ 0 → GOMAXPROCS default:
// the convenience entry points run the parallel engine and still match
// the dense reference (the existing equivalence suite covers this too;
// this test exists so the default's semantics are named somewhere).
func TestExecuteDefaultsParallel(t *testing.T) {
	g := randomGraph(9, 150, 3, 2000)
	p := paths.Path{0, 1, 2}
	dref, _ := ExecuteDense(g, p, Forward)
	rel, _ := Execute(g, p, Forward)
	if !rel.EqualRelation(dref) {
		t.Fatal("default-options Execute differs from dense reference")
	}
}

// FuzzExecParallelEquivalence fuzzes graph shape, path, plan start,
// density, and worker count, asserting parallel ≡ sequential ≡ dense on
// every input.
func FuzzExecParallelEquivalence(f *testing.F) {
	f.Add(int64(1), 60, 2, 300, uint16(0x1234), 0, float64(0), uint8(4))
	f.Add(int64(2), 120, 3, 900, uint16(0x0042), 1, float64(1), uint8(8))
	f.Add(int64(3), 40, 1, 80, uint16(0x0000), 0, float64(1e-9), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, vertices, labels, edges int, pathBits uint16, start int, density float64, workers uint8) {
		if vertices < 1 || vertices > 250 || labels < 1 || labels > 4 ||
			edges < 0 || edges > 2000 || density < 0 || density > 1 {
			t.Skip()
		}
		g := randomGraph(seed, vertices, labels, edges)
		k := 1 + int(pathBits>>12)%4
		p := make(paths.Path, k)
		for i := range p {
			p[i] = int(pathBits>>(4*i)) % labels
		}
		if start < 0 || start >= k {
			t.Skip()
		}
		w := int(workers%8) + 1
		dref, _ := ExecuteDense(g, p, Forward)
		seqRel, seqSt := ExecutePlan(g, p, Plan{Start: start},
			Options{DensityThreshold: density, Workers: 1})
		rel, st := ExecutePlan(g, p, Plan{Start: start},
			Options{DensityThreshold: density, Workers: w})
		if !rel.Equal(seqRel) || !rel.EqualRelation(dref) {
			t.Fatalf("path %v start %d workers %d: parallel diverged", p, start, w)
		}
		if st.Result != seqSt.Result || st.Work != seqSt.Work {
			t.Fatalf("path %v start %d workers %d: stats diverged", p, start, w)
		}
	})
}
